// WCMP traffic load balancing as a pluggable HeuristicCase — the fourth
// registered case study, and the first from the data-plane family (the
// DP/FF/BF trio are control-plane allocation heuristics).
//
// The analyzer input is per-commodity traffic rates plus a capacity-skew
// dimension (lb::LbInstance): the subspace generator can localize WCMP's
// underperformance jointly in "how much traffic" and "how squeezed the
// core tier is".  The benchmark is the optimal splittable routing solved
// through the model layer.
//
// Registered in the CaseRegistry as "wcmp" with a fat-tree(4) scenario
// (8 inter-rack commodities, core uplinks skewed over [0.25, 1]).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analyzer/evaluator.h"
#include "lb/network.h"
#include "scenario/spec.h"
#include "lb/optimal.h"
#include "lb/wcmp.h"
#include "xplain/case.h"

namespace xplain::cases {

/// WCMP local-greedy split vs optimal splittable routing on an LB instance.
class LbGapEvaluator : public analyzer::GapEvaluator {
 public:
  explicit LbGapEvaluator(lb::LbInstance inst, double rate_quantum = 1.0,
                          double skew_quantum = 0.01);

  int dim() const override;
  analyzer::Box input_box() const override;
  double gap(const std::vector<double>& x) const override;
  std::vector<double> quantize(const std::vector<double>& x) const override;
  std::vector<std::string> dim_names() const override;
  std::string name() const override { return "wcmp"; }

  const lb::LbInstance& instance() const { return inst_; }

 private:
  lb::LbInstance inst_;
  double rate_quantum_;
  double skew_quantum_;
  /// Identity for the per-thread optimal-routing structure cache (see
  /// lb_case.cpp; same scheme as DpGapEvaluator's max-flow cache).
  std::uint64_t cache_id_ = 0;
};

/// LB oracle: heuristic = WCMP split, benchmark = optimal splittable
/// routing, both mapped onto the LB network's edges.  The referenced
/// network and instance must outlive the oracle.
explain::FlowOracle make_lb_oracle(const lb::LbNetwork& lbn,
                                   const lb::LbInstance& inst);

class LbCase : public HeuristicCase {
 public:
  explicit LbCase(lb::LbInstance inst, double rate_quantum = 1.0);

  /// The registry default: fat-tree(4), 8 inter-rack commodities, 3
  /// candidate paths each, rates in [0, 100], core uplinks skewed over
  /// [0.25, 1].
  static std::shared_ptr<LbCase> fat_tree4();

  /// WCMP over any generated scenario (the registry's spec path): the
  /// fat_tree4 commodity/path/skew regime transplanted onto `spec`'s
  /// topology — 8 commodities, 3 candidate paths, rates in [0, 100], top
  /// capacity tier skewed over [0.25, 1].
  static std::shared_ptr<LbCase> from_scenario(
      const scenario::ScenarioSpec& spec);

  std::string name() const override { return "wcmp"; }
  std::string description() const override {
    return "WCMP local-greedy traffic split vs optimal splittable routing";
  }
  std::unique_ptr<analyzer::GapEvaluator> make_evaluator() const override;
  std::unique_ptr<analyzer::HeuristicAnalyzer> make_analyzer(
      std::uint64_t seed_salt = 0) const override;
  const flowgraph::FlowNetwork& network() const override { return lbnet_.net; }
  explain::FlowOracle make_oracle() const override;
  std::map<std::string, double> features() const override;
  double gap_scale() const override { return inst_.t_max; }

  const lb::LbInstance& instance() const { return inst_; }
  const lb::LbNetwork& lb_network() const { return lbnet_; }

 private:
  lb::LbInstance inst_;
  double rate_quantum_;
  lb::LbNetwork lbnet_;
};

}  // namespace xplain::cases
