#include "cases/dp_case.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>

#include "generalize/features.h"
#include "generalize/instance_generator.h"
#include "scenario/scenario.h"
#include "te/maxflow.h"

namespace xplain::cases {

namespace {

/// Per-thread max-flow structure cache for the dp_gap sampling hot loop.
///
/// A gap() call solves two max-flow LPs on the SAME instance (the residual
/// flow inside run_demand_pinning and the OPT benchmark); with thousands of
/// samples per pipeline stage, rebuilding the LpProblem per call was pure
/// front-end overhead (the PR 3 headroom note in ROADMAP.md).  Each thread
/// keeps one MaxFlowSolver per live evaluator identity: structure is built
/// once, every sample's solves just move column bounds and warm-start from
/// the solver's fixed reference basis.  Keyed by a process-unique id rather
/// than the evaluator pointer so a recycled allocation can never alias a
/// dead evaluator's cache entry; the single slot is enough because sampling
/// stages drive one evaluator at a time.  Determinism: the reference-basis
/// warm start makes every solve a pure function of its inputs, so worker
/// count and sample order never change results (test_parallel_determinism).
std::uint64_t next_evaluator_id() {
  static std::atomic<std::uint64_t> counter{0};
  // Relaxed: ids only need uniqueness, not ordering against other memory.
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

te::MaxFlowSolver& thread_max_flow_solver(std::uint64_t id,
                                          const te::TeInstance& inst) {
  thread_local std::uint64_t cached_id = 0;
  thread_local std::unique_ptr<te::MaxFlowSolver> solver;
  if (cached_id != id) {
    solver = std::make_unique<te::MaxFlowSolver>(inst);
    cached_id = id;
  }
  return *solver;
}

}  // namespace

DpGapEvaluator::DpGapEvaluator(te::TeInstance inst, te::DpConfig cfg,
                               double quantum)
    : inst_(std::move(inst)),
      cfg_(cfg),
      quantum_(quantum),
      cache_id_(next_evaluator_id()) {}

int DpGapEvaluator::dim() const { return inst_.num_pairs(); }

analyzer::Box DpGapEvaluator::input_box() const {
  analyzer::Box b;
  b.lo.assign(dim(), 0.0);
  b.hi.assign(dim(), inst_.d_max);
  return b;
}

double DpGapEvaluator::gap(const std::vector<double>& x) const {
  return te::dp_gap(inst_, cfg_, x,
                    &thread_max_flow_solver(cache_id_, inst_));
}

std::vector<double> DpGapEvaluator::quantize(
    const std::vector<double>& x) const {
  std::vector<double> q(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    q[i] = std::clamp(std::round(x[i] / quantum_) * quantum_, 0.0,
                      inst_.d_max);
  return q;
}

std::vector<std::string> DpGapEvaluator::dim_names() const {
  std::vector<std::string> names;
  names.reserve(inst_.num_pairs());
  for (const auto& p : inst_.pairs) names.push_back("d[" + p.name() + "]");
  return names;
}

explain::FlowOracle make_dp_oracle(const te::DpNetwork& dp,
                                   const te::TeInstance& inst,
                                   const te::DpConfig& cfg) {
  return [&dp, &inst, cfg](const std::vector<double>& x,
                           std::vector<double>& hflow,
                           std::vector<double>& bflow) {
    auto heur = te::run_demand_pinning(inst, cfg, x);
    if (!heur.feasible) return false;
    auto opt = te::solve_max_flow(inst, x);
    if (!opt.feasible) return false;
    hflow = te::dp_network_flows(dp, inst, x, heur.flow);
    bflow = te::dp_network_flows(dp, inst, x, opt.flow);
    return true;
  };
}

DpCase::DpCase(te::TeInstance inst, te::DpConfig cfg, double quantum)
    : inst_(std::move(inst)),
      cfg_(cfg),
      quantum_(quantum),
      dpnet_(te::build_dp_network(inst_)) {}

std::shared_ptr<DpCase> DpCase::fig1a() {
  return std::make_shared<DpCase>(te::TeInstance::fig1a_example(),
                                  te::DpConfig{50.0});
}

std::shared_ptr<DpCase> DpCase::from_scenario(
    const scenario::ScenarioSpec& spec) {
  // The Fig. 1a regime (d_max 100, pinning threshold at half of it)
  // transplanted onto the generated topology; 6 pairs keeps the analyzer
  // input space grid-sweepable while still contending for shared links.
  constexpr double kDmax = 100.0;
  te::TeInstance inst =
      scenario::make_te_instance(spec, /*num_pairs=*/6, /*k_paths=*/2, kDmax);
  return std::make_shared<DpCase>(std::move(inst), te::DpConfig{kDmax / 2});
}

std::shared_ptr<DpCase> DpCase::chain_from_scenario(
    const scenario::ScenarioSpec& spec) {
  generalize::DpFamilyParams params;
  params.chain_len = std::max(2, spec.size);
  params.detour_capacity = spec.capacity;
  return std::make_shared<DpCase>(generalize::make_dp_family_instance(params),
                                  te::DpConfig{params.threshold});
}

std::unique_ptr<analyzer::GapEvaluator> DpCase::make_evaluator() const {
  return std::make_unique<DpGapEvaluator>(inst_, cfg_, quantum_);
}

explain::FlowOracle DpCase::make_oracle() const {
  return make_dp_oracle(dpnet_, inst_, cfg_);
}

std::map<std::string, double> DpCase::features() const {
  return generalize::dp_instance_features(inst_, cfg_);
}

namespace {
[[maybe_unused]] const CaseRegistrar dp_registrar(
    "demand_pinning", [](const scenario::ScenarioSpec* spec) {
      return spec ? DpCase::from_scenario(*spec) : DpCase::fig1a();
    });
[[maybe_unused]] const CaseRegistrar dp_chain_registrar(
    "demand_pinning_chain", [](const scenario::ScenarioSpec* spec) {
      return spec ? DpCase::chain_from_scenario(*spec)
                  : DpCase::chain_from_scenario(scenario::ScenarioSpec{
                        scenario::TopologyKind::kLine, /*size=*/2});
    });
}  // namespace

}  // namespace xplain::cases
