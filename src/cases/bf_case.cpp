#include "cases/bf_case.h"

namespace xplain::cases {

namespace {
[[maybe_unused]] const CaseRegistrar bf_registrar(
    "best_fit", [] { return BestFitCase::paper(); });
}  // namespace

}  // namespace xplain::cases
