#include "cases/bf_case.h"

namespace xplain::cases {

namespace {
[[maybe_unused]] const CaseRegistrar bf_registrar(
    "best_fit", [](const scenario::ScenarioSpec* spec) {
      return spec ? std::make_shared<BestFitCase>(
                        VbpCase::scenario_instance(*spec))
                  : BestFitCase::paper();
    });
}  // namespace

}  // namespace xplain::cases
