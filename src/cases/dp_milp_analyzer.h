// Exact MetaOpt-style analyzer for Demand Pinning (paper §2: "MetaOpt
// solves a bi-level optimization that produces the performance gap and the
// demand that causes it").
//
// The bi-level problem  max_d [ OPT(d) - DP(d) ]  is rewritten single-level:
//   * OPT(d) enters the objective positively, so primal feasibility of a
//     max-flow suffices (the outer maximization chooses the best flow);
//   * DP(d)'s residual max-flow enters negatively, so it must be *certified
//     optimal*: we add its dual (z per demand, y per link, both in [0,1])
//     and force primal objective >= dual objective (strong duality);
//   * pinning indicators pin_k <=> d_k <= T are big-M indicators, exact
//     because demands are quantized to a grid;
//   * the d*z and pin*d*y bilinear terms become exact McCormick products of
//     quantization bits with the bounded duals.
//
// This mirrors MetaOpt's quantization+duality rewrite and is exact on the
// demand grid.  Cost grows quickly with pairs x bits; intended for the
// small instances the paper's figures use (the search analyzer scales).
#pragma once

#include "analyzer/analyzer.h"
#include "te/demand_pinning.h"

namespace xplain::cases {

using analyzer::AdversarialExample;
using analyzer::Box;
using analyzer::GapEvaluator;
using analyzer::HeuristicAnalyzer;

struct DpMilpOptions {
  double quantum = 5.0;       // demand grid
  double time_limit_s = 60.0;
  long max_nodes = 200'000;
};

class DpMilpAnalyzer : public HeuristicAnalyzer {
 public:
  DpMilpAnalyzer(te::TeInstance inst, te::DpConfig cfg, DpMilpOptions opts = {});

  std::optional<AdversarialExample> find_adversarial(
      const GapEvaluator& eval, double min_gap,
      const std::vector<Box>& excluded) override;

  /// Direct entry point (the evaluator argument above is only used to
  /// cross-check the reported gap by simulation).
  std::optional<AdversarialExample> solve(const std::vector<Box>& excluded);

  std::string name() const override { return "dp_milp"; }

 private:
  te::TeInstance inst_;
  te::DpConfig cfg_;
  DpMilpOptions opts_;
};

}  // namespace xplain::cases
