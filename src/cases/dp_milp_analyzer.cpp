#include "cases/dp_milp_analyzer.h"

#include <cmath>

#include "model/helpers.h"
#include "model/model.h"
#include "util/logging.h"

namespace xplain::cases {

using model::LinExpr;
using model::Var;

namespace {

// Quantized non-negative variable: value = quantum * sum_b 2^b * bit_b,
// clamped to [0, max_value].
struct QuantizedVar {
  std::vector<Var> bits;
  std::vector<double> weights;  // quantum * 2^b
  LinExpr value;
};

QuantizedVar add_quantized(model::Model& m, double quantum, double max_value,
                           const std::string& name) {
  QuantizedVar q;
  const int levels = static_cast<int>(std::floor(max_value / quantum + 1e-9));
  int bits = 1;
  while ((1 << bits) - 1 < levels) ++bits;
  for (int b = 0; b < bits; ++b) {
    Var bit = m.add_binary(name + "_b" + std::to_string(b));
    q.bits.push_back(bit);
    q.weights.push_back(quantum * static_cast<double>(1 << b));
    q.value += q.weights.back() * LinExpr(bit);
  }
  m.add(q.value <= LinExpr(max_value));
  return q;
}

}  // namespace

DpMilpAnalyzer::DpMilpAnalyzer(te::TeInstance inst, te::DpConfig cfg,
                               DpMilpOptions opts)
    : inst_(std::move(inst)), cfg_(cfg), opts_(opts) {}

std::optional<AdversarialExample> DpMilpAnalyzer::solve(
    const std::vector<Box>& excluded) {
  const int K = inst_.num_pairs();
  const int L = inst_.topo.num_links();
  model::Model m;
  model::HelperConfig hcfg;
  hcfg.big_m = 4.0 * inst_.d_max * std::max(1, K);
  hcfg.eps = opts_.quantum / 2.0;

  // --- Input: quantized demands. ---
  std::vector<QuantizedVar> d(K);
  for (int k = 0; k < K; ++k)
    d[k] = add_quantized(m, opts_.quantum, inst_.d_max,
                         "d" + std::to_string(k));

  // --- pin_k <=> d_k <= T (exact on the grid since eps < quantum). ---
  std::vector<Var> pin(K);
  for (int k = 0; k < K; ++k)
    pin[k] = model::indicator_leq(m, d[k].value, cfg_.threshold, hcfg);

  // omega_kb = pin_k AND bit_kb, so pinned_load_k = sum_b w_b * omega_kb
  // equals pin_k * d_k exactly.
  std::vector<std::vector<Var>> omega(K);
  std::vector<LinExpr> pinned_amount(K);
  for (int k = 0; k < K; ++k) {
    for (std::size_t b = 0; b < d[k].bits.size(); ++b) {
      Var w = model::product_binary_binary(m, pin[k], d[k].bits[b]);
      omega[k].push_back(w);
      pinned_amount[k] += d[k].weights[b] * LinExpr(w);
    }
  }

  // --- Benchmark: a feasible max-flow g (optimal by outer maximization). --
  std::vector<std::vector<Var>> g(K);
  std::vector<LinExpr> g_link(L);
  LinExpr opt_total;
  for (int k = 0; k < K; ++k) {
    LinExpr routed;
    for (std::size_t p = 0; p < inst_.pairs[k].paths.size(); ++p) {
      Var v = m.add_continuous(0, solver::kInf,
                               "g" + std::to_string(k) + "_" +
                                   std::to_string(p));
      g[k].push_back(v);
      routed += LinExpr(v);
      for (te::LinkId l : inst_.pairs[k].paths[p].links(inst_.topo))
        g_link[l.v] += LinExpr(v);
    }
    m.add(routed <= d[k].value);
    opt_total += routed;
  }
  for (int l = 0; l < L; ++l)
    m.add(g_link[l] <= LinExpr(inst_.topo.link(te::LinkId{l}).capacity));

  // --- Heuristic primal: residual max-flow u over unpinned demands. ---
  // Residual capacity: rescap_l = cap_l - sum_k [l on sp_k] pin_k d_k >= 0.
  std::vector<LinExpr> rescap(L);
  for (int l = 0; l < L; ++l)
    rescap[l] = LinExpr(inst_.topo.link(te::LinkId{l}).capacity);
  for (int k = 0; k < K; ++k)
    for (te::LinkId l : inst_.pairs[k].paths[0].links(inst_.topo))
      rescap[l.v] -= pinned_amount[k];
  for (int l = 0; l < L; ++l)
    m.add(rescap[l] >= LinExpr(0.0));  // pinned overload => input excluded

  std::vector<std::vector<Var>> u(K);
  std::vector<LinExpr> u_link(L);
  LinExpr heur_residual_total;
  for (int k = 0; k < K; ++k) {
    LinExpr routed;
    for (std::size_t p = 0; p < inst_.pairs[k].paths.size(); ++p) {
      Var v = m.add_continuous(0, solver::kInf,
                               "u" + std::to_string(k) + "_" +
                                   std::to_string(p));
      u[k].push_back(v);
      routed += LinExpr(v);
      for (te::LinkId l : inst_.pairs[k].paths[p].links(inst_.topo))
        u_link[l.v] += LinExpr(v);
    }
    // Unpinned cap: routed <= d_k - pin_k d_k  (0 when pinned).
    m.add(routed <= d[k].value - pinned_amount[k]);
    heur_residual_total += routed;
  }
  for (int l = 0; l < L; ++l) m.add(u_link[l] <= rescap[l]);

  // --- Heuristic dual (z per demand, y per link, both in [0,1]). ---
  std::vector<Var> z(K);
  std::vector<Var> y(L);
  for (int k = 0; k < K; ++k)
    z[k] = m.add_continuous(0, 1, "z" + std::to_string(k));
  for (int l = 0; l < L; ++l)
    y[l] = m.add_continuous(0, 1, "y" + std::to_string(l));
  for (int k = 0; k < K; ++k)
    for (std::size_t p = 0; p < inst_.pairs[k].paths.size(); ++p) {
      LinExpr lhs = LinExpr(z[k]);
      for (te::LinkId l : inst_.pairs[k].paths[p].links(inst_.topo))
        lhs += LinExpr(y[l.v]);
      // Disabled for pinned k (their primal columns are forced to zero).
      m.add(lhs >= LinExpr(1.0) - LinExpr(pin[k]));
    }

  // Dual objective with McCormick-linearized products:
  //   D = sum_k (d_k - pin_k d_k) z_k + sum_l rescap_l y_l.
  LinExpr dual_obj;
  for (int k = 0; k < K; ++k) {
    for (std::size_t b = 0; b < d[k].bits.size(); ++b) {
      // (bit_kb - omega_kb) in {0,1}: the unpinned part of the bit.
      Var unpinned_bit = m.add_binary();
      m.add(LinExpr(unpinned_bit) ==
            LinExpr(d[k].bits[b]) - LinExpr(omega[k][b]));
      Var prod = model::product_binary_continuous(m, unpinned_bit,
                                                  LinExpr(z[k]), 1.0);
      dual_obj += d[k].weights[b] * LinExpr(prod);
    }
  }
  for (int l = 0; l < L; ++l) {
    dual_obj += inst_.topo.link(te::LinkId{l}).capacity * LinExpr(y[l]);
    // Subtract pinned load * y_l term by term.
  }
  for (int k = 0; k < K; ++k)
    for (te::LinkId l : inst_.pairs[k].paths[0].links(inst_.topo))
      for (std::size_t b = 0; b < d[k].bits.size(); ++b) {
        Var prod = model::product_binary_continuous(m, omega[k][b],
                                                    LinExpr(y[l.v]), 1.0);
        dual_obj -= d[k].weights[b] * LinExpr(prod);
      }

  // Strong duality: primal >= dual forces the residual flow to be optimal.
  m.add(heur_residual_total >= dual_obj);

  // --- Exclusion of already-found boxes (disjunctive big-M). ---
  for (const auto& box : excluded) {
    LinExpr any_outside;
    for (int k = 0; k < K; ++k) {
      Var below = m.add_binary();
      m.add(d[k].value <= LinExpr(box.lo[k] - opts_.quantum) +
                              hcfg.big_m * (LinExpr(1.0) - LinExpr(below)));
      Var above = m.add_binary();
      m.add(d[k].value >= LinExpr(box.hi[k] + opts_.quantum) -
                              hcfg.big_m * (LinExpr(1.0) - LinExpr(above)));
      any_outside += LinExpr(below) + LinExpr(above);
    }
    m.add(any_outside >= LinExpr(1.0));
  }

  // --- Objective: gap = OPT - DP. ---
  LinExpr dp_total = heur_residual_total;
  for (int k = 0; k < K; ++k) dp_total += pinned_amount[k];
  m.set_objective(solver::Sense::kMaximize, opt_total - dp_total);

  solver::MilpOptions mopts;
  mopts.time_limit_s = opts_.time_limit_s;
  mopts.max_nodes = opts_.max_nodes;
  auto r = m.solve(mopts);
  if (r.status != solver::Status::kOptimal &&
      r.status != solver::Status::kLimit)
    return std::nullopt;
  if (r.x.empty()) return std::nullopt;

  AdversarialExample ex;
  ex.gap = r.obj;
  ex.input.resize(K);
  for (int k = 0; k < K; ++k) ex.input[k] = d[k].value.eval(r.x);
  XPLAIN_INFO << "dp_milp: gap " << ex.gap << " (" << r.nodes << " nodes, "
              << r.lp_solves << " LPs, " << r.lp_iterations << " pivots)";
  return ex;
}

std::optional<AdversarialExample> DpMilpAnalyzer::find_adversarial(
    const GapEvaluator& eval, double min_gap, const std::vector<Box>& excluded) {
  auto ex = solve(excluded);
  if (!ex) return std::nullopt;
  // Report the *simulated* gap at the MILP's point: keeps the analyzer
  // honest against encoding artifacts.
  ex->gap = eval.gap(ex->input);
  if (ex->gap < min_gap) return std::nullopt;
  return ex;
}

}  // namespace xplain::cases
