#include "cases/ff_case.h"

#include <algorithm>
#include <cmath>

#include "generalize/features.h"
#include "vbp/optimal.h"

namespace xplain::cases {

VbpGapEvaluator::VbpGapEvaluator(vbp::VbpInstance inst, vbp::VbpHeuristic h,
                                 double quantum)
    : inst_(std::move(inst)), h_(h), quantum_(quantum) {}

int VbpGapEvaluator::dim() const { return inst_.input_dim(); }

analyzer::Box VbpGapEvaluator::input_box() const {
  analyzer::Box b;
  b.lo.assign(dim(), 0.0);
  b.hi.assign(dim(), inst_.capacity);
  return b;
}

double VbpGapEvaluator::gap(const std::vector<double>& x) const {
  return vbp::vbp_gap(inst_, x, h_);
}

std::vector<double> VbpGapEvaluator::quantize(
    const std::vector<double>& x) const {
  std::vector<double> q(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    q[i] = std::clamp(std::round(x[i] / quantum_) * quantum_, 0.0,
                      inst_.capacity);
  return q;
}

std::vector<std::string> VbpGapEvaluator::dim_names() const {
  std::vector<std::string> names;
  for (int b = 0; b < inst_.num_balls; ++b)
    for (int t = 0; t < inst_.dims; ++t) {
      std::string n = "Y[" + std::to_string(b) + "]";
      if (inst_.dims > 1) n += "[" + std::to_string(t) + "]";
      names.push_back(std::move(n));
    }
  return names;
}

std::string VbpGapEvaluator::name() const {
  return std::string("vbp_") + vbp::to_string(h_);
}

explain::FlowOracle make_vbp_oracle(const vbp::FfNetwork& ff,
                                    const vbp::VbpInstance& inst,
                                    vbp::VbpHeuristic h) {
  return [&ff, inst, h](const std::vector<double>& x,
                        std::vector<double>& hflow,
                        std::vector<double>& bflow) {
    auto heur = vbp::run_heuristic(h, inst, x);
    if (!heur.complete) return false;
    auto opt = vbp::optimal_packing(inst, x);
    hflow = vbp::ff_network_flows(ff, inst, x, heur);
    bflow = vbp::ff_network_flows(ff, inst, x, opt.packing);
    return true;
  };
}

explain::FlowOracle make_ff_oracle(const vbp::FfNetwork& ff,
                                   const vbp::VbpInstance& inst) {
  return make_vbp_oracle(ff, inst, vbp::VbpHeuristic::kFirstFit);
}

VbpCase::VbpCase(vbp::VbpInstance inst, vbp::VbpHeuristic h, double quantum)
    : inst_(std::move(inst)), h_(h), quantum_(quantum),
      ffnet_(vbp::build_ff_network(inst_)) {}

vbp::VbpInstance VbpCase::paper_instance() {
  vbp::VbpInstance inst;
  inst.num_balls = 4;
  inst.num_bins = 3;
  inst.dims = 1;
  inst.capacity = 1.0;
  return inst;
}

vbp::VbpInstance VbpCase::scenario_instance(
    const scenario::ScenarioSpec& spec) {
  vbp::VbpInstance inst;
  inst.num_balls = std::clamp(spec.size, 2, 8);
  inst.num_bins = inst.num_balls - 1;
  inst.dims = 1;
  inst.capacity = 1.0;
  return inst;
}

std::string VbpCase::name() const { return vbp::to_string(h_); }

std::string VbpCase::description() const {
  return std::string(vbp::to_string(h_)) +
         " vector bin packing vs exact optimal packing";
}

std::unique_ptr<analyzer::GapEvaluator> VbpCase::make_evaluator() const {
  return std::make_unique<VbpGapEvaluator>(inst_, h_, quantum_);
}

explain::FlowOracle VbpCase::make_oracle() const {
  return make_vbp_oracle(ffnet_, inst_, h_);
}

std::map<std::string, double> VbpCase::features() const {
  return generalize::vbp_instance_features(inst_);
}

namespace {
[[maybe_unused]] const CaseRegistrar ff_registrar(
    "first_fit", [](const scenario::ScenarioSpec* spec) {
      return spec ? std::make_shared<FfCase>(VbpCase::scenario_instance(*spec))
                  : FfCase::paper();
    });
}  // namespace

}  // namespace xplain::cases
