#include "cases/lb_case.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>

#include "analyzer/search_analyzer.h"
#include "generalize/features.h"
#include "scenario/scenario.h"

namespace xplain::cases {

namespace {

/// Per-thread optimal-routing structure cache for the lb_gap sampling hot
/// loop — the LB twin of dp_case.cpp's MaxFlowSolver cache.  One
/// LbOptimalSolver per (thread, live evaluator identity): the optimal
/// LP's structure is built once, each sample only moves row rhs and
/// warm-starts from the solver's fixed reference basis, so results stay a
/// pure function of the input (parallel determinism holds).
std::uint64_t next_lb_evaluator_id() {
  static std::atomic<std::uint64_t> counter{0};
  // Relaxed: ids only need uniqueness, not ordering against other memory.
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

lb::LbOptimalSolver& thread_lb_solver(std::uint64_t id,
                                      const lb::LbInstance& inst) {
  thread_local std::uint64_t cached_id = 0;
  thread_local std::unique_ptr<lb::LbOptimalSolver> solver;
  if (cached_id != id) {
    solver = std::make_unique<lb::LbOptimalSolver>(inst);
    cached_id = id;
  }
  return *solver;
}

}  // namespace

LbGapEvaluator::LbGapEvaluator(lb::LbInstance inst, double rate_quantum,
                               double skew_quantum)
    : inst_(std::move(inst)),
      rate_quantum_(rate_quantum),
      skew_quantum_(skew_quantum),
      cache_id_(next_lb_evaluator_id()) {}

int LbGapEvaluator::dim() const { return inst_.input_dim(); }

analyzer::Box LbGapEvaluator::input_box() const {
  analyzer::Box b;
  b.lo.assign(dim(), 0.0);
  b.hi.assign(dim(), inst_.t_max);
  if (inst_.has_skew_dim()) {
    b.lo.back() = inst_.skew_lo;
    b.hi.back() = inst_.skew_hi;
  }
  return b;
}

double LbGapEvaluator::gap(const std::vector<double>& x) const {
  return lb::lb_gap_cached(inst_, x, thread_lb_solver(cache_id_, inst_));
}

std::vector<double> LbGapEvaluator::quantize(
    const std::vector<double>& x) const {
  std::vector<double> q(x.size());
  for (int k = 0; k < inst_.num_commodities(); ++k)
    q[k] = std::clamp(std::round(x[k] / rate_quantum_) * rate_quantum_, 0.0,
                      inst_.t_max);
  if (inst_.has_skew_dim()) {
    const int s = inst_.num_commodities();
    q[s] = std::clamp(std::round(x[s] / skew_quantum_) * skew_quantum_,
                      inst_.skew_lo, inst_.skew_hi);
  }
  return q;
}

std::vector<std::string> LbGapEvaluator::dim_names() const {
  std::vector<std::string> names;
  names.reserve(dim());
  for (const auto& c : inst_.commodities) names.push_back("t[" + c.name() + "]");
  if (inst_.has_skew_dim()) names.push_back("cap_skew");
  return names;
}

explain::FlowOracle make_lb_oracle(const lb::LbNetwork& lbn,
                                   const lb::LbInstance& inst) {
  return [&lbn, &inst](const std::vector<double>& x,
                       std::vector<double>& hflow,
                       std::vector<double>& bflow) {
    auto heur = lb::wcmp_split(inst, x);
    auto opt = lb::solve_lb_optimal(inst, x);
    if (!opt.feasible) return false;
    hflow = lb::lb_network_flows(lbn, inst, x, heur.flow);
    bflow = lb::lb_network_flows(lbn, inst, x, opt.flow);
    return true;
  };
}

LbCase::LbCase(lb::LbInstance inst, double rate_quantum)
    : inst_(std::move(inst)),
      rate_quantum_(rate_quantum),
      lbnet_(lb::build_lb_network(inst_)) {}

std::shared_ptr<LbCase> LbCase::fat_tree4() {
  scenario::ScenarioSpec spec;
  spec.kind = scenario::TopologyKind::kFatTree;
  spec.size = 4;
  spec.capacity = 100.0;
  spec.seed = 3;
  return from_scenario(spec);
}

std::shared_ptr<LbCase> LbCase::from_scenario(
    const scenario::ScenarioSpec& spec) {
  lb::LbInstance inst = scenario::make_lb_instance(
      spec, /*num_commodities=*/8, /*k_paths=*/3, /*t_max=*/100.0,
      /*skew_lo=*/0.25, /*skew_hi=*/1.0);
  return std::make_shared<LbCase>(std::move(inst));
}

std::unique_ptr<analyzer::GapEvaluator> LbCase::make_evaluator() const {
  return std::make_unique<LbGapEvaluator>(inst_, rate_quantum_);
}

std::unique_ptr<analyzer::HeuristicAnalyzer> LbCase::make_analyzer(
    std::uint64_t seed_salt) const {
  // WCMP breaks where links saturate: bias the structured seeds toward the
  // top of the rate box (and, through the same fractions, a squeezed skew),
  // where proportional splits fight over shared bottlenecks.
  analyzer::SearchOptions opts;
  opts.seed += seed_salt;
  opts.seed_fracs = {0.01, 0.49, 0.75, 0.9, 0.99};
  return std::make_unique<analyzer::SearchAnalyzer>(opts);
}

explain::FlowOracle LbCase::make_oracle() const {
  return make_lb_oracle(lbnet_, inst_);
}

std::map<std::string, double> LbCase::features() const {
  return generalize::lb_instance_features(inst_);
}

namespace {
[[maybe_unused]] const CaseRegistrar lb_registrar(
    "wcmp", [](const scenario::ScenarioSpec* spec) {
      return spec ? LbCase::from_scenario(*spec) : LbCase::fat_tree4();
    });
}  // namespace

}  // namespace xplain::cases
