// Exact MetaOpt-style analyzer for First-Fit (paper §2 + Fig. 1c).
//
// max_Y [ FF_bins(Y) - OPT_bins(Y) ] over ball sizes Y in [0, C]^n:
//   * FF is deterministic-constructive, so its behavior is *encoded*, not
//     optimized: the Fig. 1c first-fit rule (alpha_ij indicators) pins the
//     placement exactly; bins-used counts load > 0 indicators;
//   * OPT enters the objective negatively, so a feasible packing encoding
//     suffices — the outer maximization drives it to the true minimum;
//     Y_i * o_ij products are exact McCormick envelopes (o binary).
#pragma once

#include "analyzer/analyzer.h"
#include "vbp/ff_model.h"

namespace xplain::cases {

using analyzer::AdversarialExample;
using analyzer::Box;
using analyzer::GapEvaluator;
using analyzer::HeuristicAnalyzer;

struct FfMilpOptions {
  double time_limit_s = 120.0;
  long max_nodes = 400'000;
  /// A bin counts as used when its load exceeds this (keeps the used-bin
  /// indicator off the eps boundary; inputs are effectively quantized).
  double used_eps = 0.02;
};

class FfMilpAnalyzer : public HeuristicAnalyzer {
 public:
  explicit FfMilpAnalyzer(vbp::VbpInstance inst, FfMilpOptions opts = {});

  std::optional<AdversarialExample> find_adversarial(
      const GapEvaluator& eval, double min_gap,
      const std::vector<Box>& excluded) override;

  std::optional<AdversarialExample> solve(const std::vector<Box>& excluded);

  std::string name() const override { return "ff_milp"; }

 private:
  vbp::VbpInstance inst_;
  FfMilpOptions opts_;
};

}  // namespace xplain::cases
