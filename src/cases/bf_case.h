// Best-Fit vector bin packing — the third case study, and the proof that
// the HeuristicCase API extends without touching the core: this file adds
// a heuristic to the pipeline using only public headers (vbp/heuristics.h
// for the greedy rule, ff_case.h for the shared VBP adapter, xplain/case.h
// for registration).  No edits to src/xplain, src/analyzer or src/subspace.
//
// The paper motivates exactly this: "this is harder in FF and other VBP
// heuristics, such as best fit or first fit decreasing" (§2) — Best-Fit
// also wastes bins on the {1%, 49%, 51%, 51%}-style inputs, and the same
// pipeline finds and explains the region.
//
// Registered in the CaseRegistry as "best_fit".
#pragma once

#include <memory>

#include "cases/ff_case.h"

namespace xplain::cases {

class BestFitCase : public VbpCase {
 public:
  explicit BestFitCase(vbp::VbpInstance inst)
      : VbpCase(std::move(inst), vbp::VbpHeuristic::kBestFit) {}

  /// 4 balls / 3 unit bins, like the paper's First-Fit figure.
  static std::shared_ptr<BestFitCase> paper() {
    return std::make_shared<BestFitCase>(paper_instance());
  }

  std::string description() const override {
    return "Best-Fit vector bin packing vs exact optimal packing "
           "(third case study: added without touching the core)";
  }
};

}  // namespace xplain::cases
