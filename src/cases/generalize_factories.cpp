// The generalizer's prebuilt DP/VBP case factories.  Declared in
// generalize/generalizer.h, defined here: they construct concrete
// evaluators, which the generalizer core must stay agnostic of.
#include "cases/dp_case.h"
#include "cases/ff_case.h"
#include "generalize/generalizer.h"

namespace xplain::generalize {

CaseFactory dp_case_factory(DpInstanceGenerator gen) {
  return [gen](util::Rng& rng) {
    const DpFamilyParams params = gen.next_params(rng);
    te::TeInstance inst = make_dp_family_instance(params);
    te::DpConfig cfg{params.threshold};
    Case c;
    c.features = dp_instance_features(inst, cfg);
    c.gap_scale = params.d_max;
    c.eval = std::make_unique<cases::DpGapEvaluator>(
        std::move(inst), cfg, /*quantum=*/params.d_max / 100.0);
    return c;
  };
}

CaseFactory vbp_case_factory(VbpInstanceGenerator gen) {
  return [gen](util::Rng& rng) {
    vbp::VbpInstance inst = gen.next(rng);
    Case c;
    c.features = vbp_instance_features(inst);
    c.gap_scale = 1.0;
    c.eval = std::make_unique<cases::VbpGapEvaluator>(inst);
    return c;
  };
}

}  // namespace xplain::generalize
