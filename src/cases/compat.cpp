// Definitions for the deprecated pre-CaseRegistry runners declared in
// xplain/compat.h.  They live in the cases library (not the xplain core)
// so the core keeps zero link-time dependency on te/ and vbp/.
#include "xplain/compat.h"

#include "cases/dp_case.h"
#include "cases/ff_case.h"

namespace xplain {

DpPipelineOutput run_dp_pipeline(const te::TeInstance& inst,
                                 const te::DpConfig& cfg,
                                 const PipelineOptions& opts) {
  cases::DpCase c(inst, cfg);
  DpPipelineOutput out;
  out.result = run_pipeline(c, opts);
  out.network = c.dp_network();
  return out;
}

FfPipelineOutput run_ff_pipeline(const vbp::VbpInstance& inst,
                                 const PipelineOptions& opts) {
  cases::FfCase c(inst);
  FfPipelineOutput out;
  out.result = run_pipeline(c, opts);
  out.network = c.vbp_network();
  return out;
}

}  // namespace xplain
