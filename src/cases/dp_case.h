// Demand Pinning as a pluggable HeuristicCase (paper §2 / Fig. 1 / Fig. 4a).
//
// Everything DP-specific the pipeline consumes lives here: the gap
// evaluator (DP simulation vs optimal max-flow), the Type-2 flow oracle
// over the Fig. 4a network, and the HeuristicCase bundling them.  The core
// analyzer/subspace/explain layers never see a te/ header.
//
// Registered in the CaseRegistry as "demand_pinning" with the paper's
// Fig. 1a instance as the default.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analyzer/evaluator.h"
#include "scenario/spec.h"
#include "te/demand_pinning.h"
#include "xplain/case.h"

namespace xplain::cases {

/// Demand Pinning vs optimal max-flow on a TE instance.
class DpGapEvaluator : public analyzer::GapEvaluator {
 public:
  DpGapEvaluator(te::TeInstance inst, te::DpConfig cfg, double quantum = 1.0);

  int dim() const override;
  analyzer::Box input_box() const override;
  double gap(const std::vector<double>& x) const override;
  std::vector<double> quantize(const std::vector<double>& x) const override;
  std::vector<std::string> dim_names() const override;
  std::string name() const override { return "demand_pinning"; }

  const te::TeInstance& instance() const { return inst_; }
  const te::DpConfig& config() const { return cfg_; }

 private:
  te::TeInstance inst_;
  te::DpConfig cfg_;
  double quantum_;
  /// Identity for the per-thread max-flow structure cache (see dp_case.cpp).
  std::uint64_t cache_id_ = 0;
};

/// DP oracle: heuristic = demand-pinning simulation, benchmark = optimal
/// max-flow, both mapped onto the Fig. 4a network's edges.  The referenced
/// network and instance must outlive the oracle.
explain::FlowOracle make_dp_oracle(const te::DpNetwork& dp,
                                   const te::TeInstance& inst,
                                   const te::DpConfig& cfg);

class DpCase : public HeuristicCase {
 public:
  explicit DpCase(te::TeInstance inst, te::DpConfig cfg = {},
                  double quantum = 1.0);

  /// The paper's Fig. 1a instance with threshold 50 (the registry default).
  static std::shared_ptr<DpCase> fig1a();

  /// DP over a generated scenario topology (the registry's spec path): 6
  /// demand pairs drawn seed-deterministically from the scenario, 2
  /// candidate paths each, d_max 100 and the Fig. 1a-style threshold at
  /// d_max / 2.  This finally drives Demand Pinning across the scenario
  /// corpus instead of only its private chain-with-detour family.
  static std::shared_ptr<DpCase> from_scenario(
      const scenario::ScenarioSpec& spec);

  /// The paper's §5.4 chain-with-detour family as a scenario-parameterized
  /// case (registered as "demand_pinning_chain"): spec.size is the chain
  /// length (clamped to >= 2), spec.capacity the detour capacity, with the
  /// family's main capacity 100 / threshold 50 / d_max 100.  Experiment
  /// grids over this name sweep exactly the instances the paper's Type-3
  /// section mines increasing(pinned path length) from.
  static std::shared_ptr<DpCase> chain_from_scenario(
      const scenario::ScenarioSpec& spec);

  std::string name() const override { return "demand_pinning"; }
  std::string description() const override {
    return "Demand Pinning vs optimal max-flow on a WAN TE instance";
  }
  std::unique_ptr<analyzer::GapEvaluator> make_evaluator() const override;
  const flowgraph::FlowNetwork& network() const override { return dpnet_.net; }
  explain::FlowOracle make_oracle() const override;
  std::map<std::string, double> features() const override;
  double gap_scale() const override { return inst_.d_max; }

  const te::TeInstance& instance() const { return inst_; }
  const te::DpConfig& config() const { return cfg_; }
  const te::DpNetwork& dp_network() const { return dpnet_; }

 private:
  te::TeInstance inst_;
  te::DpConfig cfg_;
  double quantum_;
  te::DpNetwork dpnet_;
};

}  // namespace xplain::cases
