// Vector bin packing as pluggable HeuristicCases (paper §2 / Fig. 2 / 4b).
//
// VbpGapEvaluator and VbpCase are generic over the greedy rule
// (vbp::VbpHeuristic), so First-Fit — the paper's analyzed heuristic — and
// the Best-Fit / Next-Fit / FFD baselines all share one adapter: a case is
// just (instance, heuristic).  The Fig. 4b ball/bin network is reused for
// every rule, since placements are placements whichever rule produced them.
//
// Registered in the CaseRegistry as "first_fit" (4 balls / 3 unit bins, the
// paper's figure configuration).  Best-Fit registers itself separately in
// bf_case.cpp — the extensibility proof that new heuristics plug in without
// touching the core.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analyzer/evaluator.h"
#include "scenario/spec.h"
#include "vbp/ff_model.h"
#include "vbp/heuristics.h"
#include "xplain/case.h"

namespace xplain::cases {

/// A VBP heuristic vs exact optimal packing.
class VbpGapEvaluator : public analyzer::GapEvaluator {
 public:
  VbpGapEvaluator(vbp::VbpInstance inst,
                  vbp::VbpHeuristic h = vbp::VbpHeuristic::kFirstFit,
                  double quantum = 0.01);

  int dim() const override;
  analyzer::Box input_box() const override;
  double gap(const std::vector<double>& x) const override;
  std::vector<double> quantize(const std::vector<double>& x) const override;
  std::vector<std::string> dim_names() const override;
  std::string name() const override;

  const vbp::VbpInstance& instance() const { return inst_; }
  vbp::VbpHeuristic heuristic() const { return h_; }

 private:
  vbp::VbpInstance inst_;
  vbp::VbpHeuristic h_;
  double quantum_;
};

/// Oracle for any VBP heuristic: heuristic placements vs exact optimal
/// packing, both mapped onto the Fig. 4b network's edges.  The referenced
/// network must outlive the oracle.
explain::FlowOracle make_vbp_oracle(const vbp::FfNetwork& ff,
                                    const vbp::VbpInstance& inst,
                                    vbp::VbpHeuristic h);

/// Deprecated spelling: First-Fit oracle (pre-cases API).
explain::FlowOracle make_ff_oracle(const vbp::FfNetwork& ff,
                                   const vbp::VbpInstance& inst);

/// Any VBP greedy rule vs optimal on one instance (requires dims == 1 for
/// the Type-2 network; the gap path supports arbitrary dims).
class VbpCase : public HeuristicCase {
 public:
  explicit VbpCase(vbp::VbpInstance inst,
                   vbp::VbpHeuristic h = vbp::VbpHeuristic::kFirstFit,
                   double quantum = 0.01);

  /// The paper's Fig. 4b configuration: 4 balls, 3 unit bins.
  static vbp::VbpInstance paper_instance();

  /// A VBP instance scaled by the scenario (the registry's spec path):
  /// `spec.size` balls (clamped to [2, 8] — the exact-optimal benchmark is
  /// exponential in the ball count), one bin fewer than balls, unit
  /// capacity.  Bin packing has no topology, so the scenario contributes
  /// its *size* dimension; generation is deterministic (the seed selects
  /// nothing here).
  static vbp::VbpInstance scenario_instance(const scenario::ScenarioSpec& spec);

  std::string name() const override;
  std::string description() const override;
  std::unique_ptr<analyzer::GapEvaluator> make_evaluator() const override;
  const flowgraph::FlowNetwork& network() const override { return ffnet_.net; }
  explain::FlowOracle make_oracle() const override;
  std::map<std::string, double> features() const override;

  const vbp::VbpInstance& instance() const { return inst_; }
  vbp::VbpHeuristic heuristic() const { return h_; }
  const vbp::FfNetwork& vbp_network() const { return ffnet_; }

 private:
  vbp::VbpInstance inst_;
  vbp::VbpHeuristic h_;
  double quantum_;
  vbp::FfNetwork ffnet_;
};

/// First-Fit on the paper's instance ("first_fit" in the registry).
class FfCase : public VbpCase {
 public:
  explicit FfCase(vbp::VbpInstance inst)
      : VbpCase(std::move(inst), vbp::VbpHeuristic::kFirstFit) {}
  static std::shared_ptr<FfCase> paper() {
    return std::make_shared<FfCase>(paper_instance());
  }
};

}  // namespace xplain::cases
