#include "cases/ff_milp_analyzer.h"

#include "flowgraph/compiler.h"
#include "model/helpers.h"
#include "util/logging.h"

namespace xplain::cases {

using model::LinExpr;
using model::Var;

FfMilpAnalyzer::FfMilpAnalyzer(vbp::VbpInstance inst, FfMilpOptions opts)
    : inst_(std::move(inst)), opts_(opts) {}

std::optional<AdversarialExample> FfMilpAnalyzer::solve(
    const std::vector<Box>& excluded) {
  const int n = inst_.num_balls;
  const int mbins = inst_.num_bins;
  model::HelperConfig hcfg;
  hcfg.big_m = 4.0 * inst_.capacity * std::max(1, n);
  hcfg.eps = 0.01 * inst_.capacity;

  // --- FF side: the Fig. 4b network + Fig. 1c rule over free inputs Y. ---
  auto ffn = vbp::build_ff_network(inst_);
  auto c = flowgraph::compile(ffn.net);
  vbp::add_first_fit_rule(c, ffn, inst_, hcfg);
  model::Model& m = c.model;

  std::vector<LinExpr> y_in(n);
  for (int i = 0; i < n; ++i)
    y_in[i] = LinExpr(c.injection[ffn.ball_nodes[i].v]);

  // Bins used by FF: load_j > used_eps.
  LinExpr ff_bins;
  for (int j = 0; j < mbins; ++j) {
    LinExpr load;
    for (int i = 0; i < n; ++i)
      load += LinExpr(c.flow(ffn.ball_bin_edges[i][j]));
    Var used = model::indicator_geq(m, load, opts_.used_eps, hcfg);
    ff_bins += LinExpr(used);
  }

  // --- OPT side: feasible packing, minimized by the outer objective. ---
  // o[i][j] for j <= i (symmetry breaking), w = Y_i * o_ij by McCormick.
  std::vector<Var> opt_used(mbins);
  for (int j = 0; j < mbins; ++j) opt_used[j] = m.add_binary();
  std::vector<LinExpr> opt_load(mbins);
  for (int i = 0; i < n; ++i) {
    LinExpr one;
    for (int j = 0; j <= i && j < mbins; ++j) {
      Var o = m.add_binary();
      one += LinExpr(o);
      m.add(LinExpr(o) <= LinExpr(opt_used[j]));
      Var w = model::product_binary_continuous(m, o, y_in[i], inst_.capacity);
      opt_load[j] += LinExpr(w);
    }
    m.add(one == LinExpr(1.0));
  }
  LinExpr opt_bins;
  for (int j = 0; j < mbins; ++j) {
    m.add(opt_load[j] <= inst_.capacity * LinExpr(opt_used[j]));
    opt_bins += LinExpr(opt_used[j]);
    if (j + 1 < mbins)
      m.add(LinExpr(opt_used[j + 1]) <= LinExpr(opt_used[j]));
  }

  // --- Exclusion boxes over the inputs. ---
  for (const auto& box : excluded) {
    LinExpr any_outside;
    for (int i = 0; i < n; ++i) {
      Var below = m.add_binary();
      m.add(y_in[i] <= LinExpr(box.lo[i] - 0.01) +
                           hcfg.big_m * (LinExpr(1.0) - LinExpr(below)));
      Var above = m.add_binary();
      m.add(y_in[i] >= LinExpr(box.hi[i] + 0.01) -
                           hcfg.big_m * (LinExpr(1.0) - LinExpr(above)));
      any_outside += LinExpr(below) + LinExpr(above);
    }
    m.add(any_outside >= LinExpr(1.0));
  }

  m.set_objective(solver::Sense::kMaximize, ff_bins - opt_bins);

  solver::MilpOptions mopts;
  mopts.time_limit_s = opts_.time_limit_s;
  mopts.max_nodes = opts_.max_nodes;
  auto r = m.solve(mopts);
  if ((r.status != solver::Status::kOptimal &&
       r.status != solver::Status::kLimit) ||
      r.x.empty())
    return std::nullopt;

  AdversarialExample ex;
  ex.gap = r.obj;
  ex.input.resize(n);
  for (int i = 0; i < n; ++i) ex.input[i] = y_in[i].eval(r.x);
  XPLAIN_INFO << "ff_milp: gap " << ex.gap << " (" << r.nodes << " nodes, "
              << r.lp_solves << " LPs, " << r.lp_iterations << " pivots)";
  return ex;
}

std::optional<AdversarialExample> FfMilpAnalyzer::find_adversarial(
    const GapEvaluator& eval, double min_gap, const std::vector<Box>& excluded) {
  auto ex = solve(excluded);
  if (!ex) return std::nullopt;
  ex->gap = eval.gap(ex->input);  // report the simulated gap
  if (ex->gap < min_gap) return std::nullopt;
  return ex;
}

}  // namespace xplain::cases
