// HeuristicCase: the pluggable unit the XPlain pipeline runs on.
//
// A case bundles everything the Fig. 3 pipeline needs to know about one
// (heuristic, benchmark, problem instance) study:
//   * the input space it searches (a Box plus human-readable dim names),
//   * a GapEvaluator factory (heuristic-vs-benchmark gap at a point),
//   * a default HeuristicAnalyzer factory (pattern search unless the case
//     overrides it with something exact),
//   * the DSL FlowNetwork Type-2 heatmaps are rendered on,
//   * a FlowOracle producing (heuristic, benchmark) edge flows per sample,
//   * instance features + a gap scale feeding Type-3 generalization.
//
// The core layers (analyzer, subspace, explain, xplain) know nothing about
// concrete heuristics: cases adapt themselves to the evaluator interface
// and register in the process-wide CaseRegistry, so new heuristics plug in
// without touching src/xplain, src/analyzer or src/subspace.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "analyzer/analyzer.h"
#include "explain/explainer.h"
#include "scenario/spec.h"  // the dependency-free spec POD only (layering-pinned)
#include "util/thread_annotations.h"

namespace xplain {

class HeuristicCase {
 public:
  virtual ~HeuristicCase() = default;

  /// Registry key, e.g. "demand_pinning" / "first_fit" / "best_fit".
  virtual std::string name() const = 0;
  /// One-line human description (listings, README-style output).
  virtual std::string description() const { return {}; }

  /// Fresh gap evaluator for this case's instance.
  virtual std::unique_ptr<analyzer::GapEvaluator> make_evaluator() const = 0;

  /// Analyzer the pipeline uses; defaults to the scalable pattern search.
  /// `seed_salt` decorrelates stochastic analyzers across batched instances
  /// (run_batch derives it from the instance index); deterministic
  /// analyzers may ignore it.
  virtual std::unique_ptr<analyzer::HeuristicAnalyzer> make_analyzer(
      std::uint64_t seed_salt = 0) const;

  /// The DSL network explanations are scored on. Owned by the case.
  virtual const flowgraph::FlowNetwork& network() const = 0;

  /// Type-2 oracle. May capture `this`; the case must outlive the oracle.
  virtual explain::FlowOracle make_oracle() const = 0;

  /// Input-space description; defaults delegate to a fresh evaluator.
  virtual analyzer::Box input_box() const;
  virtual std::vector<std::string> dim_names() const;

  /// Instance features for Type-3 generalization (empty: not generalizable).
  virtual std::map<std::string, double> features() const { return {}; }
  /// Gaps are divided by this when normalizing across instances.
  virtual double gap_scale() const { return 1.0; }
};

/// Process-wide name -> case factory map.  Thread-safe: Engine workers may
/// look cases up (and trigger lazy builds) concurrently.
///
/// Factories are *scenario-parameterized*: they receive a nullable
/// scenario::ScenarioSpec pointer.  nullptr asks for the case's default
/// instance (DP's Fig. 1a, VBP's 4-ball paper configuration, WCMP's
/// fat-tree(4)); a non-null spec asks the case to construct itself from the
/// generated topology/instance — the hook the experiment engine's
/// (case x scenario) grids expand through.  A factory that cannot build
/// from a spec returns nullptr for non-null specs (zero-argument factories
/// registered through the template overload behave exactly like that), so
/// a scenario grid over a default-only case fails loudly instead of
/// silently running the default instance under a scenario label.
class CaseRegistry {
 public:
  using Factory = std::function<std::shared_ptr<HeuristicCase>(
      const scenario::ScenarioSpec* /*nullable: default instance*/)>;

  /// Registers a spec-aware factory; returns false (keeping the existing
  /// entry) when the name is already taken.
  bool add(const std::string& name, Factory factory) XPLAIN_EXCLUDES(mu_);

  /// Back-compat registration for default-only cases: a zero-argument
  /// callable is wrapped so it serves the default path and declines
  /// (returns nullptr) scenario-parameterized construction.
  template <class F,
            std::enable_if_t<std::is_invocable_v<F&>, int> = 0>
  bool add(const std::string& name, F factory) {
    return add(name,
               Factory([f = std::move(factory)](
                           const scenario::ScenarioSpec* spec)
                           -> std::shared_ptr<HeuristicCase> {
                 if (spec) return nullptr;  // default-only case
                 return f();
               }));
  }

  /// The default-configured case for `name`, built lazily and cached;
  /// nullptr when unknown.  The cache is keyed by (name, scenario), so
  /// scenario-built cases can never be handed out as the default (or vice
  /// versa).
  std::shared_ptr<const HeuristicCase> find(const std::string& name)
      XPLAIN_EXCLUDES(mu_);

  /// The `spec`-configured case for `name`, built lazily and cached under
  /// (name, spec.cache_key()); nullptr when the name is unknown or the
  /// case cannot construct itself from a scenario.  The cache is never
  /// evicted: each distinct spec retains its built case (topology,
  /// prebuilt LP structures) for the process lifetime, so this suits a
  /// small set of specs consulted repeatedly — when sweeping a large
  /// one-shot grid, use create(name, spec) instead (fresh, unretained;
  /// Engine::run does exactly that for its scenario cells).
  std::shared_ptr<const HeuristicCase> find(const std::string& name,
                                            const scenario::ScenarioSpec& spec)
      XPLAIN_EXCLUDES(mu_);

  /// A fresh, uncached default instance; nullptr when unknown.
  std::shared_ptr<HeuristicCase> create(const std::string& name) const
      XPLAIN_EXCLUDES(mu_);

  /// A fresh, uncached scenario-built instance; nullptr when the name is
  /// unknown or the case is default-only.
  std::shared_ptr<HeuristicCase> create(
      const std::string& name, const scenario::ScenarioSpec& spec) const
      XPLAIN_EXCLUDES(mu_);

  bool contains(const std::string& name) const XPLAIN_EXCLUDES(mu_);
  std::vector<std::string> names() const XPLAIN_EXCLUDES(mu_);

 private:
  std::shared_ptr<const HeuristicCase> find_keyed(
      const std::string& name, const scenario::ScenarioSpec* spec)
      XPLAIN_EXCLUDES(mu_);
  /// Factory lookup shared by the create() overloads; empty when unknown.
  Factory factory_for(const std::string& name) const XPLAIN_EXCLUDES(mu_);

  mutable util::Mutex mu_;
  std::map<std::string, Factory> factories_ XPLAIN_GUARDED_BY(mu_);
  /// Keyed by (registry name, spec cache key; "" = the default instance).
  std::map<std::pair<std::string, std::string>,
           std::shared_ptr<const HeuristicCase>>
      cache_ XPLAIN_GUARDED_BY(mu_);
};

/// The process-wide registry the built-in cases register into.
CaseRegistry& registry();

/// Registers at static-initialization time.  Both factory shapes work:
///   static CaseRegistrar reg("my_case",
///       [](const scenario::ScenarioSpec* spec) { ... });   // spec-aware
///   static CaseRegistrar reg("my_case",
///       [] { return std::make_shared<...>(); });           // default-only
struct CaseRegistrar {
  CaseRegistrar(const std::string& name, CaseRegistry::Factory factory);

  template <class F, std::enable_if_t<std::is_invocable_v<F&>, int> = 0>
  CaseRegistrar(const std::string& name, F factory) {
    registry().add(name, std::move(factory));
  }
};

}  // namespace xplain
