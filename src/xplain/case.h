// HeuristicCase: the pluggable unit the XPlain pipeline runs on.
//
// A case bundles everything the Fig. 3 pipeline needs to know about one
// (heuristic, benchmark, problem instance) study:
//   * the input space it searches (a Box plus human-readable dim names),
//   * a GapEvaluator factory (heuristic-vs-benchmark gap at a point),
//   * a default HeuristicAnalyzer factory (pattern search unless the case
//     overrides it with something exact),
//   * the DSL FlowNetwork Type-2 heatmaps are rendered on,
//   * a FlowOracle producing (heuristic, benchmark) edge flows per sample,
//   * instance features + a gap scale feeding Type-3 generalization.
//
// The core layers (analyzer, subspace, explain, xplain) know nothing about
// concrete heuristics: cases adapt themselves to the evaluator interface
// and register in the process-wide CaseRegistry, so new heuristics plug in
// without touching src/xplain, src/analyzer or src/subspace.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analyzer/analyzer.h"
#include "explain/explainer.h"

namespace xplain {

class HeuristicCase {
 public:
  virtual ~HeuristicCase() = default;

  /// Registry key, e.g. "demand_pinning" / "first_fit" / "best_fit".
  virtual std::string name() const = 0;
  /// One-line human description (listings, README-style output).
  virtual std::string description() const { return {}; }

  /// Fresh gap evaluator for this case's instance.
  virtual std::unique_ptr<analyzer::GapEvaluator> make_evaluator() const = 0;

  /// Analyzer the pipeline uses; defaults to the scalable pattern search.
  /// `seed_salt` decorrelates stochastic analyzers across batched instances
  /// (run_batch derives it from the instance index); deterministic
  /// analyzers may ignore it.
  virtual std::unique_ptr<analyzer::HeuristicAnalyzer> make_analyzer(
      std::uint64_t seed_salt = 0) const;

  /// The DSL network explanations are scored on. Owned by the case.
  virtual const flowgraph::FlowNetwork& network() const = 0;

  /// Type-2 oracle. May capture `this`; the case must outlive the oracle.
  virtual explain::FlowOracle make_oracle() const = 0;

  /// Input-space description; defaults delegate to a fresh evaluator.
  virtual analyzer::Box input_box() const;
  virtual std::vector<std::string> dim_names() const;

  /// Instance features for Type-3 generalization (empty: not generalizable).
  virtual std::map<std::string, double> features() const { return {}; }
  /// Gaps are divided by this when normalizing across instances.
  virtual double gap_scale() const { return 1.0; }
};

/// Process-wide name -> case factory map.  Thread-safe: run_batch workers
/// may look cases up concurrently.
class CaseRegistry {
 public:
  using Factory = std::function<std::shared_ptr<HeuristicCase>()>;

  /// Registers a factory; returns false (keeping the existing entry) when
  /// the name is already taken.
  bool add(const std::string& name, Factory factory);

  /// The default-configured case for `name`, built lazily and cached;
  /// nullptr when unknown.
  std::shared_ptr<const HeuristicCase> find(const std::string& name);

  /// A fresh, uncached instance; nullptr when unknown.
  std::shared_ptr<HeuristicCase> create(const std::string& name) const;

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Factory> factories_;
  std::map<std::string, std::shared_ptr<const HeuristicCase>> cache_;
};

/// The process-wide registry the built-in cases register into.
CaseRegistry& registry();

/// Registers at static-initialization time:
///   static CaseRegistrar reg("my_case", [] { return std::make_shared<...>(); });
struct CaseRegistrar {
  CaseRegistrar(const std::string& name, CaseRegistry::Factory factory);
};

}  // namespace xplain
