// XPlain pipeline façade — the Fig. 3 architecture wired end to end:
//
//   DSL --compile--> Heuristic Analyzer --example--> Adversarial Subspace
//   Generator --subspaces--> Significance Checker --Type 1--> Explainer
//   --Type 2-->  (and, across instances, Instance Generator + Generalizer
//   --Type 3--, exposed in src/generalize and fed by the experiment
//   engine).
//
// run_pipeline(case) is the single-job primitive: one HeuristicCase,
// typically obtained from the CaseRegistry —
//   run_pipeline(*registry().find("demand_pinning"));
// The low-level evaluator/analyzer/network/oracle overload remains for
// callers assembling pieces by hand.
//
// Multi-instance sweeps go through xplain::Engine (engine/engine.h): a
// declarative ExperimentSpec expands into (case, scenario) jobs, runs them
// deterministically across workers, and feeds Type-3 automatically.  The
// pre-engine run_batch driver survives as a deprecated shim in
// xplain/compat.h.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "explain/explainer.h"
#include "explain/heatmap.h"
#include "subspace/subspace_generator.h"
#include "xplain/case.h"

namespace xplain {

struct PipelineOptions {
  double min_gap = 1.0;
  subspace::SubspaceOptions subspace;
  explain::ExplainOptions explain;
  /// Passed to HeuristicCase::make_analyzer to decorrelate stochastic
  /// analyzers; run_batch overwrites it per instance (from the index).
  std::uint64_t seed_salt = 0;

  /// Stable, injective serialization of every knob that can change a
  /// pipeline's RESULT (gaps, subspaces, explanations, trends feed) —
  /// thresholds, budgets, and seeds, with doubles encoded by bit pattern.
  /// Worker-count fields are deliberately excluded: the parallel
  /// determinism contract (util/parallel.h) makes them wall-clock-only.
  /// This is the options leg of the server's result-cache key
  /// ((case, scenario.cache_key(), fingerprint)); two options values that
  /// could produce different results must never share a fingerprint, and
  /// the version prefix changes whenever a result-bearing knob is added.
  std::string fingerprint() const;
};

/// Per-stage wall-clock breakdown of one pipeline run, plus the LP solver
/// work the run triggered (from solver::lp_counters deltas; the counters
/// are thread-inclusive, so per-instance attribution is exact even with
/// several batch/engine workers — see LpCounters in solver/lp.h).
struct StageTimes {
  double compile_seconds = 0.0;   // case -> evaluator/analyzer/oracle
  double analyze_seconds = 0.0;   // inside HeuristicAnalyzer::find_adversarial
  double subspace_seconds = 0.0;  // expansion + tree + significance
  double explain_seconds = 0.0;   // Type-2 sampling
  long lp_solves = 0;             // LP relaxations solved during the run
  long lp_iterations = 0;         // simplex pivots across those solves
  long lp_columns_priced = 0;     // reduced costs evaluated by pricing
  long lp_candidate_refills = 0;  // partial-pricing bucket refills

  double total() const {
    return compile_seconds + analyze_seconds + subspace_seconds +
           explain_seconds;
  }
  StageTimes& operator+=(const StageTimes& o);
};

struct PipelineResult {
  /// The case's self-reported name() — not necessarily the key it was
  /// registered or looked up under; empty for the low-level overload.
  std::string case_name;
  /// Type 1: validated adversarial subspaces.
  std::vector<subspace::AdversarialSubspace> subspaces;
  /// Type 2: one per subspace, aligned by index.
  std::vector<explain::Explanation> explanations;
  subspace::GenerationTrace trace;
  StageTimes stages;
  double wall_seconds = 0.0;
  /// Type-3 feed: the case's instance features and gap normalization.
  std::map<std::string, double> features;
  double gap_scale = 1.0;

  /// Largest adversarial gap the analyzer reported, including examples
  /// whose subspaces were later rejected as insignificant.  Still 0 when
  /// the analyzer found nothing at opts.min_gap — Type-3 sweeps should run
  /// with a low min_gap so weak instances contribute their true gaps.
  double best_gap_found = 0.0;

  /// Largest seed gap across *validated* subspaces (0 when none).
  double max_gap() const;
};

/// Offsets every RNG stream in `opts` by `salt` — the one place that knows
/// which PipelineOptions fields carry seeds.  Both the deprecated
/// run_batch driver and the experiment engine derive their per-job options
/// through this, so a newly added seeded stage decorrelates in both (a
/// pure function: same (opts, salt) in, same options out).
PipelineOptions apply_seed_salt(PipelineOptions opts, std::uint64_t salt);

/// Runs the pipeline on any heuristic case.
PipelineResult run_pipeline(const HeuristicCase& c,
                            const PipelineOptions& opts = {});

/// Low-level: pipeline over hand-assembled pieces.
PipelineResult run_pipeline(const analyzer::GapEvaluator& eval,
                            analyzer::HeuristicAnalyzer& an,
                            const flowgraph::FlowNetwork& net,
                            const explain::FlowOracle& oracle,
                            const PipelineOptions& opts = {});

/// Core vocabulary for multi-case drivers (the engine, the compat shims).
using CaseList = std::vector<std::shared_ptr<const HeuristicCase>>;

}  // namespace xplain

// Deprecated pre-Engine entry points (run_dp_pipeline / run_ff_pipeline /
// run_batch), kept so out-of-tree callers compile.  New code: xplain::Engine
// over an ExperimentSpec, or run_pipeline(*registry().find(name)) for one
// case.
#include "xplain/compat.h"
