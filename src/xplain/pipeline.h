// XPlain pipeline façade — the Fig. 3 architecture wired end to end:
//
//   DSL --compile--> Heuristic Analyzer --example--> Adversarial Subspace
//   Generator --subspaces--> Significance Checker --Type 1--> Explainer
//   --Type 2-->  (and, across instances, Instance Generator + Generalizer
//   --Type 3--, exposed separately in src/generalize).
//
// Convenience runners wrap the paper's two case studies; the generic
// `run()` works for any user-supplied evaluator/analyzer/network/oracle.
#pragma once

#include <memory>

#include "analyzer/search_analyzer.h"
#include "explain/explainer.h"
#include "explain/heatmap.h"
#include "subspace/subspace_generator.h"

namespace xplain {

struct PipelineOptions {
  double min_gap = 1.0;
  subspace::SubspaceOptions subspace;
  explain::ExplainOptions explain;
};

struct PipelineResult {
  /// Type 1: validated adversarial subspaces.
  std::vector<subspace::AdversarialSubspace> subspaces;
  /// Type 2: one per subspace, aligned by index.
  std::vector<explain::Explanation> explanations;
  subspace::GenerationTrace trace;
  double wall_seconds = 0.0;
};

/// Generic pipeline over any heuristic modeled in the DSL.
PipelineResult run_pipeline(const analyzer::GapEvaluator& eval,
                            analyzer::HeuristicAnalyzer& an,
                            const flowgraph::FlowNetwork& net,
                            const explain::FlowOracle& oracle,
                            const PipelineOptions& opts = {});

/// Demand Pinning case study (Fig. 4a): builds the DSL network, runs the
/// pattern-search analyzer, returns the result plus the network for
/// rendering.
struct DpPipelineOutput {
  PipelineResult result;
  te::DpNetwork network;
};
DpPipelineOutput run_dp_pipeline(const te::TeInstance& inst,
                                 const te::DpConfig& cfg,
                                 const PipelineOptions& opts = {});

/// First-Fit VBP case study (Fig. 4b).
struct FfPipelineOutput {
  PipelineResult result;
  vbp::FfNetwork network;
};
FfPipelineOutput run_ff_pipeline(const vbp::VbpInstance& inst,
                                 const PipelineOptions& opts = {});

}  // namespace xplain
