#include "xplain/case.h"

#include "analyzer/search_analyzer.h"

namespace xplain {

std::unique_ptr<analyzer::HeuristicAnalyzer> HeuristicCase::make_analyzer(
    std::uint64_t seed_salt) const {
  analyzer::SearchOptions opts;
  opts.seed += seed_salt;
  return std::make_unique<analyzer::SearchAnalyzer>(opts);
}

analyzer::Box HeuristicCase::input_box() const {
  return make_evaluator()->input_box();
}

std::vector<std::string> HeuristicCase::dim_names() const {
  return make_evaluator()->dim_names();
}

bool CaseRegistry::add(const std::string& name, Factory factory) {
  util::MutexLock lock(&mu_);
  return factories_.emplace(name, std::move(factory)).second;
}

std::shared_ptr<const HeuristicCase> CaseRegistry::find_keyed(
    const std::string& name, const scenario::ScenarioSpec* spec) {
  // The cache key separates the default instance ("" suffix) from every
  // scenario-built configuration: a grid job can never poison the default
  // slot, and two specs that generate differently never alias.
  const std::pair<std::string, std::string> key{
      name, spec ? spec->cache_key() : std::string()};
  Factory factory;
  {
    util::MutexLock lock(&mu_);
    if (auto it = cache_.find(key); it != cache_.end()) return it->second;
    auto it = factories_.find(name);
    if (it == factories_.end()) return nullptr;
    factory = it->second;
  }
  // Build outside the lock: factories construct networks and may log.  Two
  // threads racing on an uncached key both build; the emplace below keeps
  // the first insert and hands the loser the winner's instance, so callers
  // always share one cached case per key.
  std::shared_ptr<const HeuristicCase> built = factory(spec);
  if (!built) return nullptr;  // default-only case asked for a scenario
  util::MutexLock lock(&mu_);
  return cache_.emplace(key, std::move(built)).first->second;  // first wins
}

std::shared_ptr<const HeuristicCase> CaseRegistry::find(
    const std::string& name) {
  return find_keyed(name, nullptr);
}

std::shared_ptr<const HeuristicCase> CaseRegistry::find(
    const std::string& name, const scenario::ScenarioSpec& spec) {
  return find_keyed(name, &spec);
}

CaseRegistry::Factory CaseRegistry::factory_for(const std::string& name) const {
  util::MutexLock lock(&mu_);
  auto it = factories_.find(name);
  return it == factories_.end() ? Factory() : it->second;
}

std::shared_ptr<HeuristicCase> CaseRegistry::create(
    const std::string& name) const {
  Factory factory = factory_for(name);
  return factory ? factory(nullptr) : nullptr;  // build outside the lock
}

std::shared_ptr<HeuristicCase> CaseRegistry::create(
    const std::string& name, const scenario::ScenarioSpec& spec) const {
  Factory factory = factory_for(name);
  return factory ? factory(&spec) : nullptr;  // build outside the lock
}

bool CaseRegistry::contains(const std::string& name) const {
  util::MutexLock lock(&mu_);
  return factories_.count(name) > 0;
}

std::vector<std::string> CaseRegistry::names() const {
  util::MutexLock lock(&mu_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

CaseRegistry& registry() {
  static CaseRegistry* instance = new CaseRegistry();
  return *instance;
}

CaseRegistrar::CaseRegistrar(const std::string& name,
                             CaseRegistry::Factory factory) {
  registry().add(name, std::move(factory));
}

}  // namespace xplain
