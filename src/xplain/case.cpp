#include "xplain/case.h"

#include "analyzer/search_analyzer.h"

namespace xplain {

std::unique_ptr<analyzer::HeuristicAnalyzer> HeuristicCase::make_analyzer(
    std::uint64_t seed_salt) const {
  analyzer::SearchOptions opts;
  opts.seed += seed_salt;
  return std::make_unique<analyzer::SearchAnalyzer>(opts);
}

analyzer::Box HeuristicCase::input_box() const {
  return make_evaluator()->input_box();
}

std::vector<std::string> HeuristicCase::dim_names() const {
  return make_evaluator()->dim_names();
}

bool CaseRegistry::add(const std::string& name, Factory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.emplace(name, std::move(factory)).second;
}

std::shared_ptr<const HeuristicCase> CaseRegistry::find_keyed(
    const std::string& name, const scenario::ScenarioSpec* spec) {
  // The cache key separates the default instance ("" suffix) from every
  // scenario-built configuration: a grid job can never poison the default
  // slot, and two specs that generate differently never alias.
  const std::pair<std::string, std::string> key{
      name, spec ? spec->cache_key() : std::string()};
  std::unique_lock<std::mutex> lock(mu_);
  if (auto it = cache_.find(key); it != cache_.end()) return it->second;
  auto it = factories_.find(name);
  if (it == factories_.end()) return nullptr;
  Factory factory = it->second;
  // Build outside the lock: factories construct networks and may log.
  lock.unlock();
  std::shared_ptr<const HeuristicCase> built = factory(spec);
  if (!built) return nullptr;  // default-only case asked for a scenario
  lock.lock();
  return cache_.emplace(key, std::move(built)).first->second;  // first wins
}

std::shared_ptr<const HeuristicCase> CaseRegistry::find(
    const std::string& name) {
  return find_keyed(name, nullptr);
}

std::shared_ptr<const HeuristicCase> CaseRegistry::find(
    const std::string& name, const scenario::ScenarioSpec& spec) {
  return find_keyed(name, &spec);
}

std::shared_ptr<HeuristicCase> CaseRegistry::create(
    const std::string& name) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = factories_.find(name);
    if (it == factories_.end()) return nullptr;
    factory = it->second;
  }
  return factory(nullptr);
}

std::shared_ptr<HeuristicCase> CaseRegistry::create(
    const std::string& name, const scenario::ScenarioSpec& spec) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = factories_.find(name);
    if (it == factories_.end()) return nullptr;
    factory = it->second;
  }
  return factory(&spec);
}

bool CaseRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.count(name) > 0;
}

std::vector<std::string> CaseRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

CaseRegistry& registry() {
  static CaseRegistry* instance = new CaseRegistry();
  return *instance;
}

CaseRegistrar::CaseRegistrar(const std::string& name,
                             CaseRegistry::Factory factory) {
  registry().add(name, std::move(factory));
}

}  // namespace xplain
