#include "xplain/pipeline.h"

#include <algorithm>
#include <cstring>

#include "solver/lp.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace xplain {

namespace {

/// Decorates an analyzer to accumulate the wall time spent inside
/// find_adversarial (so the generator's total splits into analyze vs
/// subspace-construction time) and the best gap observed (so Type-3 sees
/// the raw analyzer signal even when every subspace is later rejected).
class TimedAnalyzer : public analyzer::HeuristicAnalyzer {
 public:
  TimedAnalyzer(analyzer::HeuristicAnalyzer& inner, double& accum,
                double& best_gap)
      : inner_(inner), accum_(accum), best_gap_(best_gap) {}

  std::optional<analyzer::AdversarialExample> find_adversarial(
      const analyzer::GapEvaluator& eval, double min_gap,
      const std::vector<analyzer::Box>& excluded) override {
    util::Timer timer;
    auto out = inner_.find_adversarial(eval, min_gap, excluded);
    accum_ += timer.seconds();
    if (out) best_gap_ = std::max(best_gap_, out->gap);
    return out;
  }

  std::string name() const override { return inner_.name(); }

 private:
  analyzer::HeuristicAnalyzer& inner_;
  double& accum_;
  double& best_gap_;
};

/// Offsets every RNG stream by the instance index so batched instances are
/// decorrelated while staying a pure function of (index, base options).
PipelineOptions reseed(PipelineOptions opts, int index) {
  return apply_seed_salt(std::move(opts),
                         0x9E3779B97F4A7C15ull * (index + 1));
}

}  // namespace

PipelineOptions apply_seed_salt(PipelineOptions opts, std::uint64_t salt) {
  opts.seed_salt = salt;  // consumed by HeuristicCase::make_analyzer
  opts.subspace.seed += salt;
  opts.subspace.significance.seed += salt;
  opts.explain.seed += salt;
  return opts;
}

std::string PipelineOptions::fingerprint() const {
  // Doubles by bit pattern (the ScenarioSpec::cache_key idiom): printing
  // would truncate and alias nearby values, breaking injectivity.
  const auto bits = [](double v) {
    std::uint64_t u = 0;
    std::memcpy(&u, &v, sizeof(u));
    return std::to_string(u);
  };
  const auto u64 = [](std::uint64_t v) { return std::to_string(v); };
  std::string f = "pf1";
  f += ";mg=" + bits(min_gap);
  f += ";salt=" + u64(seed_salt);
  // Subspace generation (worker counts excluded; significance.workers is
  // wall-clock-only by the slot-determinism contract).
  f += ";s.bgf=" + bits(subspace.bad_gap_fraction);
  f += ";s.dt=" + bits(subspace.density_threshold);
  f += ";s.de=" + bits(subspace.dkw_eps);
  f += ";s.dd=" + bits(subspace.dkw_delta);
  f += ";s.ihw=" + bits(subspace.init_half_width_frac);
  f += ";s.sf=" + bits(subspace.slice_frac);
  f += ";s.mer=" + std::to_string(subspace.max_expansion_rounds);
  f += ";s.t.md=" + std::to_string(subspace.tree.max_depth);
  f += ";s.t.msl=" + std::to_string(subspace.tree.min_samples_leaf);
  f += ";s.t.mt=" + std::to_string(subspace.tree.max_thresholds);
  f += ";s.ts=" + std::to_string(subspace.tree_samples);
  f += ";s.tif=" + bits(subspace.tree_inflate_frac);
  f += ";s.sig.p=" + std::to_string(subspace.significance.pairs);
  f += ";s.sig.pt=" + bits(subspace.significance.p_threshold);
  f += ";s.sig.sh=" + bits(subspace.significance.shell_frac);
  f += ";s.sig.seed=" + u64(subspace.significance.seed);
  f += ";s.max=" + std::to_string(subspace.max_subspaces);
  f += ";s.seed=" + u64(subspace.seed);
  f += ";s.ki=" + std::to_string(subspace.keep_insignificant ? 1 : 0);
  // Type-2 explanation sampling.
  f += ";e.n=" + std::to_string(explain.samples);
  f += ";e.eps=" + bits(explain.flow_eps);
  f += ";e.seed=" + u64(explain.seed);
  f += ";e.att=" + std::to_string(explain.attempts_per_sample);
  return f;
}

StageTimes& StageTimes::operator+=(const StageTimes& o) {
  compile_seconds += o.compile_seconds;
  analyze_seconds += o.analyze_seconds;
  subspace_seconds += o.subspace_seconds;
  explain_seconds += o.explain_seconds;
  lp_solves += o.lp_solves;
  lp_iterations += o.lp_iterations;
  lp_columns_priced += o.lp_columns_priced;
  lp_candidate_refills += o.lp_candidate_refills;
  return *this;
}

double PipelineResult::max_gap() const {
  double g = 0.0;
  for (const auto& s : subspaces) g = std::max(g, s.seed_gap);
  return g;
}

int BatchResult::total_subspaces() const {
  int n = 0;
  for (const auto& r : results) n += static_cast<int>(r.subspaces.size());
  return n;
}

PipelineResult run_pipeline(const analyzer::GapEvaluator& eval,
                            analyzer::HeuristicAnalyzer& an,
                            const flowgraph::FlowNetwork& net,
                            const explain::FlowOracle& oracle,
                            const PipelineOptions& opts) {
  util::Timer timer;
  const solver::LpCounters lp0 = solver::lp_counters();
  PipelineResult out;

  TimedAnalyzer timed(an, out.stages.analyze_seconds, out.best_gap_found);
  subspace::SubspaceGenerator gen(timed, opts.subspace);
  {
    util::Timer stage;
    out.subspaces = gen.generate(eval, opts.min_gap);
    out.stages.subspace_seconds = stage.seconds() - out.stages.analyze_seconds;
  }
  out.trace = gen.trace();

  {
    util::Timer stage;
    out.explanations.reserve(out.subspaces.size());
    for (const auto& sub : out.subspaces) {
      out.explanations.push_back(explain::explain_subspace(
          eval, sub.region, net, oracle, opts.explain));
    }
    out.stages.explain_seconds = stage.seconds();
  }
  const solver::LpCounters lp1 = solver::lp_counters();
  out.stages.lp_solves = lp1.solves - lp0.solves;
  out.stages.lp_iterations = lp1.iterations - lp0.iterations;
  out.stages.lp_columns_priced = lp1.columns_priced - lp0.columns_priced;
  out.stages.lp_candidate_refills =
      lp1.candidate_refills - lp0.candidate_refills;
  out.wall_seconds = timer.seconds();
  XPLAIN_INFO << "pipeline: " << out.subspaces.size() << " subspaces in "
              << out.wall_seconds << "s (" << out.stages.lp_solves
              << " LP solves)";
  return out;
}

PipelineResult run_pipeline(const HeuristicCase& c,
                            const PipelineOptions& opts) {
  util::Timer timer;

  util::Timer compile;
  auto eval = c.make_evaluator();
  auto an = c.make_analyzer(opts.seed_salt);
  const flowgraph::FlowNetwork& net = c.network();
  auto oracle = c.make_oracle();
  const double compile_seconds = compile.seconds();

  PipelineResult out = run_pipeline(*eval, *an, net, oracle, opts);
  out.case_name = c.name();
  out.stages.compile_seconds = compile_seconds;
  out.features = c.features();
  out.gap_scale = c.gap_scale();
  out.wall_seconds = timer.seconds();
  return out;
}

BatchResult run_batch(const CaseList& cases, const PipelineOptions& opts,
                      const BatchOptions& batch) {
  util::Timer timer;
  const solver::LpCounters lp0 = solver::lp_counters();
  BatchResult out;
  out.results.resize(cases.size());

  const int workers = std::max(
      1, std::min<int>(batch.workers, static_cast<int>(cases.size())));

  // Scheduling, first-exception-wins propagation, and worker clamping all
  // come from the shared worker-pool helper; determinism holds because
  // results land in slot-indexed storage and every instance's options are a
  // pure function of (opts, i).
  util::parallel_chunks(
      cases.size(), workers, [&](std::size_t begin, std::size_t end, int) {
        for (std::size_t i = begin; i < end; ++i) {
          if (!cases[i]) continue;
          PipelineOptions o = batch.reseed_per_instance
                                  ? reseed(opts, static_cast<int>(i))
                                  : opts;
          // The batch already fans out across instances; an "auto" explain
          // pool inside every concurrent pipeline would oversubscribe the
          // machine workers-fold.  An explicit positive count is respected.
          if (workers > 1 && o.explain.workers <= 0) o.explain.workers = 1;
          out.results[i] = run_pipeline(*cases[i], o);
        }
      });

  for (const auto& r : out.results) {
    out.trace += r.trace;
    out.stages += r.stages;
  }
  // Thread-inclusive counters (lp.h): per-instance deltas are exact, and
  // this batch-level snapshot is too — the pool joined above, flushing
  // every worker's counts.
  const solver::LpCounters lp1 = solver::lp_counters();
  out.stages.lp_solves = lp1.solves - lp0.solves;
  out.stages.lp_iterations = lp1.iterations - lp0.iterations;
  out.stages.lp_columns_priced = lp1.columns_priced - lp0.columns_priced;
  out.stages.lp_candidate_refills =
      lp1.candidate_refills - lp0.candidate_refills;
  out.wall_seconds = timer.seconds();
  XPLAIN_INFO << "batch: " << cases.size() << " instances, "
              << out.total_subspaces() << " subspaces, " << workers
              << " workers, " << out.wall_seconds << "s";
  return out;
}

}  // namespace xplain
