#include "xplain/pipeline.h"

#include "util/logging.h"
#include "util/timer.h"

namespace xplain {

PipelineResult run_pipeline(const analyzer::GapEvaluator& eval,
                            analyzer::HeuristicAnalyzer& an,
                            const flowgraph::FlowNetwork& net,
                            const explain::FlowOracle& oracle,
                            const PipelineOptions& opts) {
  util::Timer timer;
  PipelineResult out;

  subspace::SubspaceGenerator gen(an, opts.subspace);
  out.subspaces = gen.generate(eval, opts.min_gap);
  out.trace = gen.trace();

  out.explanations.reserve(out.subspaces.size());
  for (const auto& sub : out.subspaces) {
    out.explanations.push_back(
        explain::explain_subspace(eval, sub.region, net, oracle, opts.explain));
  }
  out.wall_seconds = timer.seconds();
  XPLAIN_INFO << "pipeline: " << out.subspaces.size() << " subspaces in "
              << out.wall_seconds << "s";
  return out;
}

DpPipelineOutput run_dp_pipeline(const te::TeInstance& inst,
                                 const te::DpConfig& cfg,
                                 const PipelineOptions& opts) {
  DpPipelineOutput out;
  out.network = te::build_dp_network(inst);
  analyzer::DpGapEvaluator eval(inst, cfg);
  analyzer::SearchAnalyzer an;
  auto oracle = explain::make_dp_oracle(out.network, inst, cfg);
  out.result = run_pipeline(eval, an, out.network.net, oracle, opts);
  return out;
}

FfPipelineOutput run_ff_pipeline(const vbp::VbpInstance& inst,
                                 const PipelineOptions& opts) {
  FfPipelineOutput out;
  out.network = vbp::build_ff_network(inst);
  analyzer::VbpGapEvaluator eval(inst);
  analyzer::SearchAnalyzer an;
  auto oracle = explain::make_ff_oracle(out.network, inst);
  out.result = run_pipeline(eval, an, out.network.net, oracle, opts);
  return out;
}

}  // namespace xplain
