// Deprecated pre-CaseRegistry entry points, kept as thin shims over the
// cases layer so out-of-tree callers of run_dp_pipeline / run_ff_pipeline
// keep compiling.  This is the ONLY core header allowed to include te/ or
// vbp/ (tools/check_layering.sh pins that); everything else goes through
// the HeuristicCase API in xplain/case.h.
//
// Definitions live in src/cases/compat.cpp: the core xplain library itself
// has no dependency on the concrete case studies.
#pragma once

#include "te/demand_pinning.h"
#include "vbp/ff_model.h"
#include "xplain/pipeline.h"

namespace xplain {

/// Deprecated: use run_pipeline(*registry().find("demand_pinning")) or
/// construct a cases::DpCase for a custom instance.
struct DpPipelineOutput {
  PipelineResult result;
  te::DpNetwork network;
};
[[deprecated(
    "use run_pipeline(*registry().find(\"demand_pinning\")) or cases::DpCase")]]
DpPipelineOutput run_dp_pipeline(const te::TeInstance& inst,
                                 const te::DpConfig& cfg,
                                 const PipelineOptions& opts = {});

/// Deprecated: use run_pipeline(*registry().find("first_fit")) or construct
/// a cases::VbpCase for a custom instance.
struct FfPipelineOutput {
  PipelineResult result;
  vbp::FfNetwork network;
};
[[deprecated(
    "use run_pipeline(*registry().find(\"first_fit\")) or cases::VbpCase")]]
FfPipelineOutput run_ff_pipeline(const vbp::VbpInstance& inst,
                                 const PipelineOptions& opts = {});

}  // namespace xplain
