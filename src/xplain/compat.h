// Deprecated pre-Engine entry points, kept as thin shims so out-of-tree
// callers of run_dp_pipeline / run_ff_pipeline / run_batch keep compiling.
// This is the ONLY core header allowed to include te/ or vbp/
// (tools/lint/xplain_lint.py pins that); everything else goes through the
// HeuristicCase API in xplain/case.h and the experiment engine in
// engine/engine.h.
//
// The DP/FF runner definitions live in src/cases/compat.cpp (the core
// xplain library has no dependency on the concrete case studies);
// run_batch's stays in pipeline.cpp — it predates the engine and remains
// the engine-independent worker loop its determinism tests pin down.
#pragma once

#include "te/demand_pinning.h"
#include "vbp/ff_model.h"
#include "xplain/pipeline.h"

namespace xplain {

// --- Deprecated batched driver (pre-ExperimentSpec API). ---

struct BatchOptions {
  /// Worker threads; 1 degenerates to the sequential loop.
  int workers = 4;
  /// Decorrelate the per-instance RNG streams by deriving every seed from
  /// the instance index (deterministically — results are identical for any
  /// worker count).  Off: every instance uses opts' seeds verbatim.
  bool reseed_per_instance = true;
};

struct BatchResult {
  /// Per-instance results, in input order regardless of worker scheduling.
  std::vector<PipelineResult> results;
  /// Merged accounting across instances.
  subspace::GenerationTrace trace;
  StageTimes stages;
  double wall_seconds = 0.0;

  int total_subspaces() const;
};

/// Deprecated: describe the sweep as an xplain::ExperimentSpec and run it
/// through xplain::Engine (engine/engine.h) — same determinism contract,
/// plus scenario grids, streaming callbacks and automatic Type-3.
/// run_batch remains for callers holding hand-built case lists.
[[deprecated("use xplain::Engine::run over an ExperimentSpec")]]
BatchResult run_batch(const CaseList& cases, const PipelineOptions& opts = {},
                      const BatchOptions& batch = {});

/// Deprecated: use run_pipeline(*registry().find("demand_pinning")) or
/// construct a cases::DpCase for a custom instance.
struct DpPipelineOutput {
  PipelineResult result;
  te::DpNetwork network;
};
[[deprecated(
    "use run_pipeline(*registry().find(\"demand_pinning\")) or cases::DpCase")]]
DpPipelineOutput run_dp_pipeline(const te::TeInstance& inst,
                                 const te::DpConfig& cfg,
                                 const PipelineOptions& opts = {});

/// Deprecated: use run_pipeline(*registry().find("first_fit")) or construct
/// a cases::VbpCase for a custom instance.
struct FfPipelineOutput {
  PipelineResult result;
  vbp::FfNetwork network;
};
[[deprecated(
    "use run_pipeline(*registry().find(\"first_fit\")) or cases::VbpCase")]]
FfPipelineOutput run_ff_pipeline(const vbp::VbpInstance& inst,
                                 const PipelineOptions& opts = {});

}  // namespace xplain
