// Candidate-path computation: k-shortest simple paths by hop count (Yen's
// algorithm over BFS).  The path-based max-flow/DP formulations route each
// demand over its candidate paths, paths[0] being the shortest path the
// heuristic pins to.
#pragma once

#include <string>
#include <vector>

#include "te/topology.h"

namespace xplain::te {

/// A simple path as a node sequence (front = source, back = destination).
struct Path {
  std::vector<int> nodes;

  int hops() const { return static_cast<int>(nodes.size()) - 1; }
  bool empty() const { return nodes.empty(); }
  /// Link ids along the path (invalid entry if a link is missing).
  std::vector<LinkId> links(const Topology& t) const;
  /// "1-2-3" with 1-based node names (matches the paper's figures).
  std::string name() const;

  friend bool operator==(const Path& a, const Path& b) {
    return a.nodes == b.nodes;
  }
};

/// Shortest path by hops (BFS); empty path when unreachable.
Path shortest_path(const Topology& t, int src, int dst);

/// Up to k loop-free shortest paths in non-decreasing hop count (Yen).
/// Ties are broken deterministically by lexicographic node order.
std::vector<Path> k_shortest_paths(const Topology& t, int src, int dst, int k);

/// Minimum link capacity along the path.
double bottleneck_capacity(const Topology& t, const Path& p);

}  // namespace xplain::te
