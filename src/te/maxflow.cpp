#include "te/maxflow.h"

#include <cassert>

#include "model/model.h"

namespace xplain::te {

std::vector<double> FlowResult::link_utilization(
    const TeInstance& inst) const {
  std::vector<double> util(inst.topo.num_links(), 0.0);
  for (int k = 0; k < inst.num_pairs(); ++k) {
    if (flow[k].empty()) continue;
    for (std::size_t p = 0; p < inst.pairs[k].paths.size(); ++p) {
      for (LinkId l : inst.pairs[k].paths[p].links(inst.topo))
        util[l.v] += flow[k][p];
    }
  }
  return util;
}

FlowResult solve_max_flow(const TeInstance& inst, const std::vector<double>& d,
                          const std::vector<double>* residual_caps,
                          const std::vector<bool>* skip) {
  assert(static_cast<int>(d.size()) == inst.num_pairs());
  model::Model m;
  // Per (pair, path) flow variable.
  std::vector<std::vector<model::Var>> f(inst.num_pairs());
  model::LinExpr total;
  std::vector<model::LinExpr> link_load(inst.topo.num_links());
  for (int k = 0; k < inst.num_pairs(); ++k) {
    if (skip && (*skip)[k]) continue;
    const auto& paths = inst.pairs[k].paths;
    model::LinExpr routed;
    for (std::size_t p = 0; p < paths.size(); ++p) {
      model::Var v = m.add_continuous(0, solver::kInf);
      f[k].push_back(v);
      routed += model::LinExpr(v);
      for (LinkId l : paths[p].links(inst.topo))
        link_load[l.v] += model::LinExpr(v);
    }
    m.add(routed <= model::LinExpr(d[k]));
    total += routed;
  }
  for (int l = 0; l < inst.topo.num_links(); ++l) {
    const double cap =
        residual_caps ? (*residual_caps)[l] : inst.topo.link(LinkId{l}).capacity;
    m.add(link_load[l] <= model::LinExpr(cap));
  }
  m.set_objective(solver::Sense::kMaximize, total);
  auto s = m.solve_lp();

  FlowResult res;
  if (s.status != solver::Status::kOptimal) return res;
  res.feasible = true;
  res.total = s.obj;
  res.flow.resize(inst.num_pairs());
  for (int k = 0; k < inst.num_pairs(); ++k) {
    res.flow[k].assign(inst.pairs[k].paths.size(), 0.0);
    for (std::size_t p = 0; p < f[k].size(); ++p)
      res.flow[k][p] = s.x[f[k][p].index];
  }
  return res;
}

}  // namespace xplain::te
