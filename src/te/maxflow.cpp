#include "te/maxflow.h"

#include <cassert>
#include <utility>

#include "solver/simplex.h"

namespace xplain::te {

std::vector<double> FlowResult::link_utilization(
    const TeInstance& inst) const {
  std::vector<double> util(inst.topo.num_links(), 0.0);
  for (int k = 0; k < inst.num_pairs(); ++k) {
    if (flow[k].empty()) continue;
    for (std::size_t p = 0; p < inst.pairs[k].paths.size(); ++p) {
      for (LinkId l : inst.pairs[k].paths[p].links(inst.topo))
        util[l.v] += flow[k][p];
    }
  }
  return util;
}

FlowResult solve_max_flow(const TeInstance& inst, const std::vector<double>& d,
                          const std::vector<double>* residual_caps,
                          const std::vector<bool>* skip) {
  assert(static_cast<int>(d.size()) == inst.num_pairs());
  // This runs once or twice per gap() evaluation — the innermost loop of
  // the sampling stages — so the LP is assembled directly (no Model /
  // LinExpr temporaries; that front end measurably dominated the solve on
  // these tiny instances).
  solver::LpProblem lp;
  lp.sense = solver::Sense::kMaximize;
  int nvars = 0;
  for (int k = 0; k < inst.num_pairs(); ++k)
    if (!skip || !(*skip)[k])
      nvars += static_cast<int>(inst.pairs[k].paths.size());
  lp.reserve(nvars, inst.num_pairs() + inst.topo.num_links());
  // Per (pair, path) flow variable; objective 1 on each (maximize total).
  std::vector<int> first_var(inst.num_pairs(), -1);
  std::vector<std::vector<std::pair<int, double>>> link_load(
      inst.topo.num_links());
  std::vector<std::pair<int, double>> routed;
  for (int k = 0; k < inst.num_pairs(); ++k) {
    if (skip && (*skip)[k]) continue;
    const auto& paths = inst.pairs[k].paths;
    routed.clear();
    for (std::size_t p = 0; p < paths.size(); ++p) {
      const int v = lp.add_col(0, solver::kInf, 1.0);
      if (p == 0) first_var[k] = v;
      routed.emplace_back(v, 1.0);
      for (LinkId l : paths[p].links(inst.topo))
        link_load[l.v].emplace_back(v, 1.0);
    }
    lp.add_row(routed, solver::RowSense::kLe, d[k]);
  }
  for (int l = 0; l < inst.topo.num_links(); ++l) {
    const double cap =
        residual_caps ? (*residual_caps)[l] : inst.topo.link(LinkId{l}).capacity;
    lp.add_row(std::move(link_load[l]), solver::RowSense::kLe, cap);
  }
  // Neither the duals nor the basis are consumed here — skip extracting
  // them on this innermost-loop solve.
  solver::SimplexOptions sopts;
  sopts.want_duals = false;
  sopts.want_basis = false;
  auto s = solver::solve_lp(lp, sopts);

  FlowResult res;
  if (s.status != solver::Status::kOptimal) return res;
  res.feasible = true;
  res.total = s.obj;
  res.flow.resize(inst.num_pairs());
  for (int k = 0; k < inst.num_pairs(); ++k) {
    res.flow[k].assign(inst.pairs[k].paths.size(), 0.0);
    if (first_var[k] < 0) continue;
    for (std::size_t p = 0; p < inst.pairs[k].paths.size(); ++p)
      res.flow[k][p] = s.x[first_var[k] + static_cast<int>(p)];
  }
  return res;
}

}  // namespace xplain::te
