#include "te/maxflow.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "solver/simplex.h"

namespace xplain::te {

std::vector<double> FlowResult::link_utilization(
    const TeInstance& inst) const {
  std::vector<double> util(inst.topo.num_links(), 0.0);
  for (int k = 0; k < inst.num_pairs(); ++k) {
    if (flow[k].empty()) continue;
    for (std::size_t p = 0; p < inst.pairs[k].paths.size(); ++p) {
      for (LinkId l : inst.pairs[k].paths[p].links(inst.topo))
        util[l.v] += flow[k][p];
    }
  }
  return util;
}

FlowResult solve_max_flow(const TeInstance& inst, const std::vector<double>& d,
                          const std::vector<double>* residual_caps,
                          const std::vector<bool>* skip) {
  assert(static_cast<int>(d.size()) == inst.num_pairs());
  // This runs once or twice per gap() evaluation — the innermost loop of
  // the sampling stages — so the LP is assembled directly (no Model /
  // LinExpr temporaries; that front end measurably dominated the solve on
  // these tiny instances).
  solver::LpProblem lp;
  lp.sense = solver::Sense::kMaximize;
  int nvars = 0;
  for (int k = 0; k < inst.num_pairs(); ++k)
    if (!skip || !(*skip)[k])
      nvars += static_cast<int>(inst.pairs[k].paths.size());
  lp.reserve(nvars, inst.num_pairs() + inst.topo.num_links());
  // Per (pair, path) flow variable; objective 1 on each (maximize total).
  std::vector<int> first_var(inst.num_pairs(), -1);
  std::vector<std::vector<std::pair<int, double>>> link_load(
      inst.topo.num_links());
  std::vector<std::pair<int, double>> routed;
  for (int k = 0; k < inst.num_pairs(); ++k) {
    if (skip && (*skip)[k]) continue;
    const auto& paths = inst.pairs[k].paths;
    routed.clear();
    for (std::size_t p = 0; p < paths.size(); ++p) {
      const int v = lp.add_col(0, solver::kInf, 1.0);
      if (p == 0) first_var[k] = v;
      routed.emplace_back(v, 1.0);
      for (LinkId l : paths[p].links(inst.topo))
        link_load[l.v].emplace_back(v, 1.0);
    }
    lp.add_row(routed, solver::RowSense::kLe, d[k]);
  }
  for (int l = 0; l < inst.topo.num_links(); ++l) {
    const double cap =
        residual_caps ? (*residual_caps)[l] : inst.topo.link(LinkId{l}).capacity;
    lp.add_row(std::move(link_load[l]), solver::RowSense::kLe, cap);
  }
  // Neither the duals nor the basis are consumed here — skip extracting
  // them on this innermost-loop solve.
  solver::SimplexOptions sopts;
  sopts.want_duals = false;
  sopts.want_basis = false;
  auto s = solver::solve_lp(lp, sopts);

  FlowResult res;
  if (s.status != solver::Status::kOptimal) return res;
  res.feasible = true;
  res.total = s.obj;
  res.flow.resize(inst.num_pairs());
  for (int k = 0; k < inst.num_pairs(); ++k) {
    res.flow[k].assign(inst.pairs[k].paths.size(), 0.0);
    if (first_var[k] < 0) continue;
    for (std::size_t p = 0; p < inst.pairs[k].paths.size(); ++p)
      res.flow[k][p] = s.x[first_var[k] + static_cast<int>(p)];
  }
  return res;
}

MaxFlowSolver::MaxFlowSolver(const TeInstance& inst)
    : num_pairs_(inst.num_pairs()), num_links_(inst.topo.num_links()) {
  base_caps_.resize(num_links_);
  for (int l = 0; l < num_links_; ++l)
    base_caps_[l] = inst.topo.link(LinkId{l}).capacity;

  // Same formulation as solve_max_flow, built once with EVERY pair's
  // columns: a skipped pair is expressed per solve by dropping its demand
  // row's rhs to 0 (forcing its flows to 0) instead of by omitting columns,
  // so the structure — and with it the warm-start basis — survives any
  // (d, residual, skip) combination.  Row i is pair i's demand row; row
  // num_pairs_ + l is link l's capacity row.
  lp_.sense = solver::Sense::kMaximize;
  int nflows = 0;
  for (int k = 0; k < num_pairs_; ++k)
    nflows += static_cast<int>(inst.pairs[k].paths.size());
  lp_.reserve(nflows, num_pairs_ + num_links_);

  first_flow_var_.assign(num_pairs_, -1);
  num_paths_.assign(num_pairs_, 0);
  std::vector<std::vector<std::pair<int, double>>> link_load(num_links_);
  std::vector<std::pair<int, double>> routed;
  for (int k = 0; k < num_pairs_; ++k) {
    const auto& paths = inst.pairs[k].paths;
    num_paths_[k] = static_cast<int>(paths.size());
    routed.clear();
    for (std::size_t p = 0; p < paths.size(); ++p) {
      const int v = lp_.add_col(0, solver::kInf, 1.0);
      if (p == 0) first_flow_var_[k] = v;
      routed.emplace_back(v, 1.0);
      for (LinkId l : paths[p].links(inst.topo))
        link_load[l.v].emplace_back(v, 1.0);
    }
    lp_.add_row(routed, solver::RowSense::kLe, 0.0);
  }
  for (int l = 0; l < num_links_; ++l)
    lp_.add_row(std::move(link_load[l]), solver::RowSense::kLe, base_caps_[l]);

  // Reference basis: one cold solve at the center of the demand box (the
  // expected sampling point — uniform sampling concentrates there, so the
  // repair distance from the reference to a typical sample is small).  All
  // later solves warm-start from here, fixed so results never depend on
  // which samples this thread solved before.
  for (int k = 0; k < num_pairs_; ++k)
    lp_.set_row_rhs(k, 0.5 * inst.d_max);
  solver::SimplexOptions sopts;
  sopts.want_duals = false;
  auto ref = solver::solve_lp(lp_, sopts);
  if (ref.status == solver::Status::kOptimal && !ref.basis.empty()) {
    reference_basis_ = std::move(ref.basis);
    has_reference_ = true;
  }
}

FlowResult MaxFlowSolver::solve(const std::vector<double>& d,
                                const std::vector<double>* residual_caps,
                                const std::vector<bool>* skip) {
  assert(static_cast<int>(d.size()) == num_pairs_);
  for (int k = 0; k < num_pairs_; ++k) {
    const double rhs = skip && (*skip)[k] ? 0.0 : std::max(0.0, d[k]);
    lp_.set_row_rhs(k, rhs);
  }
  for (int l = 0; l < num_links_; ++l) {
    const double cap =
        std::max(0.0, residual_caps ? (*residual_caps)[l] : base_caps_[l]);
    lp_.set_row_rhs(num_pairs_ + l, cap);
  }
  solver::SimplexOptions sopts;
  sopts.want_duals = false;
  sopts.want_basis = false;
  auto s = solver::solve_lp(lp_, sopts,
                            has_reference_ ? &reference_basis_ : nullptr);

  FlowResult res;
  if (s.status != solver::Status::kOptimal) return res;
  res.feasible = true;
  res.total = s.obj;
  res.flow.resize(num_pairs_);
  for (int k = 0; k < num_pairs_; ++k) {
    res.flow[k].assign(num_paths_[k], 0.0);
    if (skip && (*skip)[k]) continue;
    for (int p = 0; p < num_paths_[k]; ++p)
      res.flow[k][p] = s.x[first_flow_var_[k] + p];
  }
  return res;
}

}  // namespace xplain::te
