#include "te/demand.h"

namespace xplain::te {

TeInstance TeInstance::make(
    Topology topo, const std::vector<std::pair<int, int>>& demand_pairs,
    int k_paths, double d_max) {
  TeInstance inst;
  inst.topo = std::move(topo);
  inst.d_max = d_max;
  for (const auto& [s, t] : demand_pairs) {
    TePair p;
    p.src = s;
    p.dst = t;
    p.paths = k_shortest_paths(inst.topo, s, t, k_paths);
    if (!p.paths.empty()) inst.pairs.push_back(std::move(p));
  }
  return inst;
}

TeInstance TeInstance::fig1a_example() {
  TeInstance inst = make(Topology::fig1a(), {{0, 2}, {0, 1}, {1, 2}},
                         /*k_paths=*/2, /*d_max=*/100.0);
  // The paper's example gives only the 1~>3 demand an alternate path; 1~>2
  // and 2~>3 route solely on their direct links (Fig. 1a's table).
  inst.pairs[1].paths.resize(1);
  inst.pairs[2].paths.resize(1);
  return inst;
}

TeInstance TeInstance::all_pairs(Topology topo, int k_paths, double d_max) {
  std::vector<std::pair<int, int>> pairs;
  for (int u = 0; u < topo.num_nodes(); ++u)
    for (int v = 0; v < topo.num_nodes(); ++v)
      if (u != v) pairs.emplace_back(u, v);
  return make(std::move(topo), pairs, k_paths, d_max);
}

}  // namespace xplain::te
