// A TE problem *instance* (paper terminology): topology + demand pairs with
// candidate paths.  The analyzer's *input* is the vector of demand values,
// one per pair — the OuterVar in MetaOpt's encoding of Fig. 1b.
#pragma once

#include <string>
#include <vector>

#include "te/paths.h"
#include "te/topology.h"

namespace xplain::te {

struct TePair {
  int src = -1;
  int dst = -1;
  /// Candidate paths; paths[0] is the shortest (the pinning target).
  std::vector<Path> paths;

  std::string name() const {
    return std::to_string(src + 1) + "~>" + std::to_string(dst + 1);
  }
};

struct TeInstance {
  Topology topo;
  std::vector<TePair> pairs;
  /// Upper bound on each demand value (the input box is [0, d_max]^n).
  double d_max = 0.0;

  int num_pairs() const { return static_cast<int>(pairs.size()); }

  /// Builds an instance: computes up to `k` candidate paths per pair and
  /// drops pairs with no path.
  static TeInstance make(Topology topo,
                         const std::vector<std::pair<int, int>>& demand_pairs,
                         int k_paths, double d_max);

  /// The paper's running example: Fig. 1a topology with the demands
  /// 1~>3, 1~>2, 2~>3 (k = 2 candidate paths each, d_max = 100).
  static TeInstance fig1a_example();

  /// All ordered pairs (u, v), u != v, as demand pairs.
  static TeInstance all_pairs(Topology topo, int k_paths, double d_max);
};

}  // namespace xplain::te
