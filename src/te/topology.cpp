#include "te/topology.h"

namespace xplain::te {

namespace {
std::uint64_t link_key(int from, int to) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
         static_cast<std::uint32_t>(to);
}
}  // namespace

LinkId Topology::add_link(int from, int to, double capacity) {
  LinkId id{num_links()};
  links_.push_back({from, to, capacity});
  link_index_.emplace(link_key(from, to), id.v);
  if (static_cast<int>(out_links_.size()) <= from)
    out_links_.resize(from + 1);
  out_links_[from].push_back(id);
  return id;
}

void Topology::add_bidi(int a, int b, double capacity) {
  add_link(a, b, capacity);
  add_link(b, a, capacity);
}

LinkId Topology::find_link(int from, int to) const {
  auto it = link_index_.find(link_key(from, to));
  return it == link_index_.end() ? LinkId{} : LinkId{it->second};
}

std::string Topology::link_name(LinkId l) const {
  const Link& ln = links_[l.v];
  return std::to_string(ln.from + 1) + "-" + std::to_string(ln.to + 1);
}

Topology Topology::fig1a() {
  Topology t(5);
  // Paper numbering: 1,2,3 across the top path; 4,5 along the detour.
  t.add_bidi(0, 1, 100);  // 1-2
  t.add_bidi(1, 2, 100);  // 2-3
  t.add_bidi(0, 3, 50);   // 1-4
  t.add_bidi(3, 4, 50);   // 4-5
  t.add_bidi(4, 2, 50);   // 5-3
  return t;
}

Topology Topology::line(int n, double capacity) {
  Topology t(n);
  for (int i = 0; i + 1 < n; ++i) t.add_bidi(i, i + 1, capacity);
  return t;
}

Topology Topology::ring(int n, double capacity) {
  Topology t(n);
  for (int i = 0; i < n; ++i) t.add_bidi(i, (i + 1) % n, capacity);
  return t;
}

Topology Topology::grid(int w, int h, double capacity) {
  Topology t(w * h);
  auto id = [w](int x, int y) { return y * w + x; };
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      if (x + 1 < w) t.add_bidi(id(x, y), id(x + 1, y), capacity);
      if (y + 1 < h) t.add_bidi(id(x, y), id(x, y + 1), capacity);
    }
  return t;
}

Topology Topology::random_connected(int n, double edge_prob, double cap_lo,
                                    double cap_hi, util::Rng& rng) {
  Topology t(n);
  // Random spanning tree first (guarantees connectivity), then extra edges.
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);
  for (int i = 1; i < n; ++i) {
    const int parent = order[rng.uniform_int(0, i - 1)];
    t.add_bidi(order[i], parent, rng.uniform(cap_lo, cap_hi));
  }
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b) {
      if (t.find_link(a, b).valid()) continue;
      if (rng.bernoulli(edge_prob))
        t.add_bidi(a, b, rng.uniform(cap_lo, cap_hi));
    }
  return t;
}

}  // namespace xplain::te
