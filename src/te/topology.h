// WAN topologies for the traffic-engineering experiments.  Includes the
// paper's Fig. 1a five-node topology plus generators the instance generator
// (paper §5.4) uses to produce diverse problem instances.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/random.h"

namespace xplain::te {

struct Link {
  int from = -1;
  int to = -1;
  double capacity = 0.0;
};

struct LinkId {
  int v = -1;
  bool valid() const { return v >= 0; }
};

/// Directed capacitated graph.  Bidirectional physical links are modeled as
/// two directed links (the convention MetaOpt's TE models use).
class Topology {
 public:
  explicit Topology(int num_nodes = 0)
      : num_nodes_(num_nodes), out_links_(num_nodes > 0 ? num_nodes : 0) {}

  int num_nodes() const { return num_nodes_; }
  int num_links() const { return static_cast<int>(links_.size()); }
  const Link& link(LinkId l) const { return links_[l.v]; }
  const std::vector<Link>& links() const { return links_; }

  LinkId add_link(int from, int to, double capacity);
  /// Adds both directions with the same capacity.
  void add_bidi(int a, int b, double capacity);

  LinkId find_link(int from, int to) const;
  /// Links leaving `node`, in increasing link-id order (the BFS tie-break
  /// contract path search depends on).
  const std::vector<LinkId>& out_links(int node) const {
    return out_links_[node];
  }

  /// Human-readable name like "1-2" (nodes printed 1-based to match the
  /// paper's figures).
  std::string link_name(LinkId l) const;

  // --- Generators. ---
  /// The paper's Fig. 1a topology: nodes 1..5 (stored 0-based), links
  /// 1-2 (100), 2-3 (100), 1-4 (50), 4-5 (50), 5-3 (50), bidirectional.
  static Topology fig1a();
  /// Path graph 0-1-...-(n-1).
  static Topology line(int n, double capacity);
  /// Cycle.
  static Topology ring(int n, double capacity);
  /// w x h grid, all capacities equal.
  static Topology grid(int w, int h, double capacity);
  /// Erdos-Renyi-style random connected graph; capacities uniform in
  /// [cap_lo, cap_hi].
  static Topology random_connected(int n, double edge_prob, double cap_lo,
                                   double cap_hi, util::Rng& rng);

 private:
  int num_nodes_ = 0;
  std::vector<Link> links_;
  // (from, to) -> link index, so find_link is O(1) — it sits inside every
  // path-to-links translation on the sampling hot path.
  std::unordered_map<std::uint64_t, int> link_index_;
  // Per-node adjacency, maintained by add_link.  out_links sits inside the
  // BFS inner loop of every Yen path search: a scan over links_ here turns
  // instance construction quadratic in the link count, which is ~30s of
  // the fat-tree(16) 4096-commodity probe before this cache.
  std::vector<std::vector<LinkId>> out_links_;
};

}  // namespace xplain::te
