#include "te/paths.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <set>

namespace xplain::te {

std::vector<LinkId> Path::links(const Topology& t) const {
  std::vector<LinkId> out;
  out.reserve(nodes.empty() ? 0 : nodes.size() - 1);
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i)
    out.push_back(t.find_link(nodes[i], nodes[i + 1]));
  return out;
}

std::string Path::name() const {
  std::string s;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i) s += "-";
    s += std::to_string(nodes[i] + 1);
  }
  return s;
}

namespace {

// BFS shortest path avoiding `banned_nodes` and `banned_links`, starting
// from `src`.  Deterministic tie-break: parent chosen by first discovery in
// increasing link-id order.
Path bfs_path(const Topology& t, int src, int dst,
              const std::set<int>& banned_nodes,
              const std::set<int>& banned_links) {
  std::vector<int> parent(t.num_nodes(), -2);
  std::deque<int> q;
  if (banned_nodes.count(src) || banned_nodes.count(dst)) return {};
  parent[src] = -1;
  q.push_back(src);
  while (!q.empty()) {
    const int u = q.front();
    q.pop_front();
    if (u == dst) break;
    for (LinkId l : t.out_links(u)) {
      if (banned_links.count(l.v)) continue;
      const int v = t.link(l).to;
      if (banned_nodes.count(v) || parent[v] != -2) continue;
      parent[v] = u;
      q.push_back(v);
    }
  }
  if (parent[dst] == -2) return {};
  Path p;
  for (int u = dst; u != -1; u = parent[u]) p.nodes.push_back(u);
  std::reverse(p.nodes.begin(), p.nodes.end());
  return p;
}

}  // namespace

Path shortest_path(const Topology& t, int src, int dst) {
  return bfs_path(t, src, dst, {}, {});
}

std::vector<Path> k_shortest_paths(const Topology& t, int src, int dst,
                                   int k) {
  std::vector<Path> result;
  Path first = shortest_path(t, src, dst);
  if (first.empty() || k <= 0) return result;
  result.push_back(first);

  auto cmp = [](const Path& a, const Path& b) {
    if (a.hops() != b.hops()) return a.hops() < b.hops();
    return a.nodes < b.nodes;
  };
  std::vector<Path> candidates;

  while (static_cast<int>(result.size()) < k) {
    const Path& prev = result.back();
    // Yen: branch at every spur node of the previous path.
    for (int i = 0; i + 1 < static_cast<int>(prev.nodes.size()); ++i) {
      const int spur = prev.nodes[i];
      Path root;
      root.nodes.assign(prev.nodes.begin(), prev.nodes.begin() + i + 1);

      std::set<int> banned_links, banned_nodes;
      for (const Path& r : result) {
        if (static_cast<int>(r.nodes.size()) > i &&
            std::equal(root.nodes.begin(), root.nodes.end(),
                       r.nodes.begin())) {
          LinkId l = t.find_link(r.nodes[i], r.nodes[i + 1]);
          if (l.valid()) banned_links.insert(l.v);
        }
      }
      for (int j = 0; j < i; ++j) banned_nodes.insert(prev.nodes[j]);

      Path spur_path = bfs_path(t, spur, dst, banned_nodes, banned_links);
      if (spur_path.empty()) continue;
      Path total = root;
      total.nodes.insert(total.nodes.end(), spur_path.nodes.begin() + 1,
                         spur_path.nodes.end());
      if (std::find(result.begin(), result.end(), total) == result.end() &&
          std::find(candidates.begin(), candidates.end(), total) ==
              candidates.end())
        candidates.push_back(total);
    }
    if (candidates.empty()) break;
    auto best = std::min_element(candidates.begin(), candidates.end(), cmp);
    result.push_back(*best);
    candidates.erase(best);
  }
  return result;
}

double bottleneck_capacity(const Topology& t, const Path& p) {
  double cap = std::numeric_limits<double>::infinity();
  for (LinkId l : p.links(t)) cap = std::min(cap, t.link(l).capacity);
  return cap;
}

}  // namespace xplain::te
