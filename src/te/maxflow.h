// Optimal multi-commodity path-based max-flow (the OPT benchmark in the
// paper's DP example): maximize total routed traffic subject to per-demand
// caps and link capacities.
#pragma once

#include <vector>

#include "te/demand.h"

namespace xplain::te {

struct FlowResult {
  bool feasible = false;
  double total = 0.0;
  /// flow[k][p]: flow of pair k on its candidate path p.
  std::vector<std::vector<double>> flow;

  /// Flow on each link aggregated over paths.
  std::vector<double> link_utilization(const TeInstance& inst) const;
};

/// Solves max-flow with demands `d` (one entry per pair).  Residual
/// capacities may be passed to solve the post-pinning subproblem; defaults
/// to the topology's capacities.  `skip[k]` excludes pair k (already-pinned
/// demands).
FlowResult solve_max_flow(const TeInstance& inst, const std::vector<double>& d,
                          const std::vector<double>* residual_caps = nullptr,
                          const std::vector<bool>* skip = nullptr);

}  // namespace xplain::te
