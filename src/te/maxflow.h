// Optimal multi-commodity path-based max-flow (the OPT benchmark in the
// paper's DP example): maximize total routed traffic subject to per-demand
// caps and link capacities.
#pragma once

#include <vector>

#include "solver/lp.h"
#include "te/demand.h"

namespace xplain::te {

struct FlowResult {
  bool feasible = false;
  double total = 0.0;
  /// flow[k][p]: flow of pair k on its candidate path p.
  std::vector<std::vector<double>> flow;

  /// Flow on each link aggregated over paths.
  std::vector<double> link_utilization(const TeInstance& inst) const;
};

/// Solves max-flow with demands `d` (one entry per pair).  Residual
/// capacities may be passed to solve the post-pinning subproblem; defaults
/// to the topology's capacities.  `skip[k]` excludes pair k (already-pinned
/// demands).
FlowResult solve_max_flow(const TeInstance& inst, const std::vector<double>& d,
                          const std::vector<double>* residual_caps = nullptr,
                          const std::vector<bool>* skip = nullptr);

/// Reusable max-flow LP for one TE instance: the column/row structure is
/// built ONCE and every solve only moves row right-hand sides (demands,
/// residual capacities; a skipped pair is a demand rhs of 0) — the
/// structure-preserving perturbation the simplex warm start supports.
///
/// Every solve warm-starts from one fixed *reference basis* (taken from a
/// cold solve at the center of the demand box during construction), never
/// from the previous sample's basis: solve() stays a pure function of its
/// arguments, which is what keeps the parallel sampling loops bitwise
/// deterministic for any worker count even though each worker thread owns
/// its own solver (see the per-thread cache in cases/dp_case.cpp).
///
/// Not thread-safe: use one instance per thread.
class MaxFlowSolver {
 public:
  explicit MaxFlowSolver(const TeInstance& inst);

  /// Same contract as solve_max_flow (demands d, optional residual
  /// capacities, optional skipped pairs).
  FlowResult solve(const std::vector<double>& d,
                   const std::vector<double>* residual_caps = nullptr,
                   const std::vector<bool>* skip = nullptr);

 private:
  int num_pairs_ = 0;
  int num_links_ = 0;
  std::vector<double> base_caps_;
  std::vector<int> first_flow_var_;  // first f[k][p] column per pair
  std::vector<int> num_paths_;       // candidate paths per pair
  solver::LpProblem lp_;
  solver::Basis reference_basis_;
  bool has_reference_ = false;
};

}  // namespace xplain::te
