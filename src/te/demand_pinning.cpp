#include "te/demand_pinning.h"

#include <cassert>

namespace xplain::te {

DpResult run_demand_pinning(const TeInstance& inst, const DpConfig& cfg,
                            const std::vector<double>& d, MaxFlowSolver* mf) {
  assert(static_cast<int>(d.size()) == inst.num_pairs());
  DpResult res;
  res.pinned.assign(inst.num_pairs(), false);
  res.flow.assign(inst.num_pairs(), {});

  // Phase 1: pin everything at or below the threshold to its shortest path.
  std::vector<double> residual(inst.topo.num_links());
  for (int l = 0; l < inst.topo.num_links(); ++l)
    residual[l] = inst.topo.link(LinkId{l}).capacity;
  std::vector<bool> skip(inst.num_pairs(), false);
  for (int k = 0; k < inst.num_pairs(); ++k) {
    res.flow[k].assign(inst.pairs[k].paths.size(), 0.0);
    if (d[k] > cfg.threshold) continue;
    res.pinned[k] = true;
    skip[k] = true;
    res.flow[k][0] = d[k];
    for (LinkId l : inst.pairs[k].paths[0].links(inst.topo)) {
      residual[l.v] -= d[k];
      if (residual[l.v] < -1e-9) return res;  // pinning violates capacity
    }
    res.total += d[k];
  }

  // Phase 2: optimal residual max-flow for the unpinned demands.
  FlowResult rest = mf ? mf->solve(d, &residual, &skip)
                       : solve_max_flow(inst, d, &residual, &skip);
  if (!rest.feasible) return res;
  res.feasible = true;
  res.total += rest.total;
  for (int k = 0; k < inst.num_pairs(); ++k) {
    if (skip[k]) continue;
    res.flow[k] = rest.flow[k];
  }
  return res;
}

double dp_gap(const TeInstance& inst, const DpConfig& cfg,
              const std::vector<double>& d, MaxFlowSolver* mf) {
  DpResult h = run_demand_pinning(inst, cfg, d, mf);
  if (!h.feasible) return 0.0;
  FlowResult opt = mf ? mf->solve(d) : solve_max_flow(inst, d);
  if (!opt.feasible) return 0.0;
  return opt.total - h.total;
}

DpNetwork build_dp_network(const TeInstance& inst) {
  using namespace flowgraph;
  DpNetwork dp;
  FlowNetwork& net = dp.net;
  net = FlowNetwork("demand_pinning");

  NodeId met = net.add_node("met_demand", NodeKind::kSink);
  NodeId unmet = net.add_node("unmet_demand", NodeKind::kSink);

  // Link nodes: split with the link capacity on the edge into `met`.
  std::vector<NodeId> link_nodes(inst.topo.num_links());
  dp.link_edges.resize(inst.topo.num_links());
  for (int l = 0; l < inst.topo.num_links(); ++l) {
    const std::string ln = inst.topo.link_name(LinkId{l});
    link_nodes[l] = net.add_node("link_" + ln, NodeKind::kSplit);
    net.set_node_meta(link_nodes[l], "kind", "link");
    EdgeId e = net.add_edge(link_nodes[l], met, "cap_" + ln);
    net.set_capacity(e, inst.topo.link(LinkId{l}).capacity);
    net.set_edge_meta(e, "kind", "link_capacity");
    dp.link_edges[l] = e;
  }

  // Path nodes (copy behavior: the path's flow appears on every link).
  // One per (pair, candidate path).
  dp.path_edges.resize(inst.num_pairs());
  dp.path_link_edges.resize(inst.num_pairs());
  dp.demand_nodes.resize(inst.num_pairs());
  dp.unmet_edges.resize(inst.num_pairs());
  for (int k = 0; k < inst.num_pairs(); ++k) {
    const TePair& pair = inst.pairs[k];
    NodeId src = net.add_node("demand_" + pair.name(), NodeKind::kSource);
    net.set_injection_range(src, 0.0, inst.d_max, /*is_input=*/true);
    net.set_node_meta(src, "kind", "demand");
    net.set_node_meta(src, "pair", pair.name());
    dp.demand_nodes[k] = src;

    for (std::size_t p = 0; p < pair.paths.size(); ++p) {
      const Path& path = pair.paths[p];
      NodeId pn = net.add_node("path_" + path.name(), NodeKind::kCopy);
      net.set_node_meta(pn, "kind", "path");
      net.set_node_meta(pn, "hops", std::to_string(path.hops()));
      EdgeId de = net.add_edge(src, pn, pair.name() + " via " + path.name());
      net.set_edge_meta(de, "kind", "demand_path");
      net.set_edge_meta(de, "pair", pair.name());
      net.set_edge_meta(de, "path", path.name());
      net.set_edge_meta(de, "shortest", p == 0 ? "yes" : "no");
      dp.path_edges[k].push_back(de);
      std::vector<EdgeId> pls;
      for (LinkId l : path.links(inst.topo)) {
        EdgeId pe = net.add_edge(pn, link_nodes[l.v],
                                 path.name() + " on " +
                                     inst.topo.link_name(l));
        net.set_edge_meta(pe, "kind", "path_link");
        pls.push_back(pe);
      }
      dp.path_link_edges[k].push_back(std::move(pls));
    }
    EdgeId ue = net.add_edge(src, unmet, pair.name() + " unmet");
    net.set_edge_meta(ue, "kind", "unmet");
    dp.unmet_edges[k] = ue;
  }

  net.set_objective(unmet, /*maximize=*/false);
  return dp;
}

std::vector<model::Var> add_pinning_rule(flowgraph::CompiledNetwork& c,
                                         const DpNetwork& dp,
                                         const DpConfig& cfg,
                                         const model::HelperConfig& hcfg) {
  std::vector<model::Var> pinned;
  const int num_pairs = static_cast<int>(dp.demand_nodes.size());
  for (int k = 0; k < num_pairs; ++k) {
    const model::Var d = c.injection[dp.demand_nodes[k].v];
    const model::Var f_short = c.flow(dp.path_edges[k][0]);
    // Fig. 1b: ForceToZeroIfLeq(d_k - f_shortest, d_k, T): pinned demands
    // are fully routed on the shortest path...
    model::Var z = model::force_to_zero_if_leq(
        c.model, model::LinExpr(d) - model::LinExpr(f_short), model::LinExpr(d),
        cfg.threshold, hcfg);
    // ...and on nothing else (no alternate paths, no unmet spill).
    for (std::size_t p = 1; p < dp.path_edges[k].size(); ++p) {
      c.model.add(model::LinExpr(c.flow(dp.path_edges[k][p])) <=
                  hcfg.big_m * (model::LinExpr(1.0) - model::LinExpr(z)));
    }
    pinned.push_back(z);
  }
  return pinned;
}

void fix_demands(flowgraph::CompiledNetwork& c, const DpNetwork& dp,
                 const std::vector<double>& d) {
  assert(d.size() == dp.demand_nodes.size());
  for (std::size_t k = 0; k < d.size(); ++k) {
    const model::Var inj = c.injection[dp.demand_nodes[k].v];
    c.model.lp().set_bounds(inj.index, d[k], d[k]);
  }
}

std::vector<double> dp_network_flows(
    const DpNetwork& dp, const TeInstance& inst, const std::vector<double>& d,
    const std::vector<std::vector<double>>& path_flows) {
  std::vector<double> flows(dp.net.num_edges(), 0.0);
  std::vector<double> link_total(inst.topo.num_links(), 0.0);
  for (int k = 0; k < inst.num_pairs(); ++k) {
    double routed = 0.0;
    for (std::size_t p = 0; p < dp.path_edges[k].size(); ++p) {
      const double f = p < path_flows[k].size() ? path_flows[k][p] : 0.0;
      flows[dp.path_edges[k][p].v] = f;
      routed += f;
      for (flowgraph::EdgeId pl : dp.path_link_edges[k][p])
        flows[pl.v] = f;  // copy node: full path flow on every link edge
      const auto links = inst.pairs[k].paths[p].links(inst.topo);
      for (LinkId l : links) link_total[l.v] += f;
    }
    flows[dp.unmet_edges[k].v] = std::max(0.0, d[k] - routed);
  }
  for (int l = 0; l < inst.topo.num_links(); ++l)
    flows[dp.link_edges[l].v] = link_total[l];
  return flows;
}

}  // namespace xplain::te
