// Demand Pinning (DP), the paper's first running example (§2, Fig. 1).
//
// DP routes every demand at or below a threshold entirely on its shortest
// path ("pins" it), then routes the remaining demands optimally on the
// residual capacity.  Three faces of the heuristic live here:
//   * an executable simulation (used by the search analyzer, the subspace
//     sampler, and the explainer — thousands of evaluations per run);
//   * the Fig. 4a DSL network (demand sources -> path copy nodes -> link
//     nodes -> met/unmet sinks) used by the explainer's heatmaps;
//   * the pinning rule appended onto a compiled network, which is the
//     Fig. 1b MetaOpt encoding (ForceToZeroIfLeq + MaxFlow).
#pragma once

#include <string>
#include <vector>

#include "flowgraph/compiler.h"
#include "flowgraph/network.h"
#include "model/helpers.h"
#include "te/demand.h"
#include "te/maxflow.h"

namespace xplain::te {

struct DpConfig {
  double threshold = 50.0;  // T_d in Fig. 1b
};

struct DpResult {
  /// False when pinned demands alone violate a link capacity (MetaOpt's DP
  /// model treats such inputs as infeasible for the heuristic).
  bool feasible = false;
  double total = 0.0;
  std::vector<bool> pinned;               // per pair
  std::vector<std::vector<double>> flow;  // flow[k][p]
};

/// Runs the DP heuristic on demand vector `d`.  `mf`, when non-null, is a
/// prebuilt MaxFlowSolver for `inst` used for the residual solve (the
/// sampling hot loops keep one per thread instead of rebuilding the LP
/// every call — see cases/dp_case.cpp).
DpResult run_demand_pinning(const TeInstance& inst, const DpConfig& cfg,
                            const std::vector<double>& d,
                            MaxFlowSolver* mf = nullptr);

/// OPT total minus DP total (>= 0 whenever DP is feasible); 0 when DP is
/// infeasible on `d` (such points are excluded, matching MetaOpt).  `mf` as
/// in run_demand_pinning (the same solver serves both embedded max-flows).
double dp_gap(const TeInstance& inst, const DpConfig& cfg,
              const std::vector<double>& d, MaxFlowSolver* mf = nullptr);

// --- DSL face (Fig. 4a). ---

/// Handles into the DP network so rule- and explanation-code can find its
/// pieces without string lookups.
struct DpNetwork {
  flowgraph::FlowNetwork net;
  std::vector<flowgraph::NodeId> demand_nodes;        // per pair
  std::vector<flowgraph::EdgeId> unmet_edges;         // per pair
  /// path_edges[k][p]: demand k -> path-node edge for candidate path p
  /// (p == 0 is the shortest path, DP's pinning target).
  std::vector<std::vector<flowgraph::EdgeId>> path_edges;
  /// path_link_edges[k][p]: the path-node -> link-node edges of that path.
  std::vector<std::vector<std::vector<flowgraph::EdgeId>>> path_link_edges;
  std::vector<flowgraph::EdgeId> link_edges;          // per topology link
};

/// Builds the Fig. 4a network: sources (split) per demand, copy node per
/// candidate path, split node per link with the link capacity on its edge
/// into the "met" sink, plus an "unmet" sink edge per demand.  The
/// objective is minimizing unmet demand (== maximizing routed traffic).
DpNetwork build_dp_network(const TeInstance& inst);

/// Appends the DP pinning rule (Fig. 1b) to a compiled DP network:
/// for every pair k, ForceToZeroIfLeq(d_k - f_shortest, d_k, T) plus
/// "pinned demands use only the shortest path".  Returns the per-pair
/// pinned-indicator variables.
std::vector<model::Var> add_pinning_rule(flowgraph::CompiledNetwork& c,
                                         const DpNetwork& dp,
                                         const DpConfig& cfg,
                                         const model::HelperConfig& hcfg = {});

/// Fixes the network's input injections to a concrete demand vector.
void fix_demands(flowgraph::CompiledNetwork& c, const DpNetwork& dp,
                 const std::vector<double>& d);

/// Maps per-(pair, path) flows (from run_demand_pinning or solve_max_flow)
/// onto the DP network's edges, for the explainer.  Returns one flow value
/// per EdgeId.
std::vector<double> dp_network_flows(
    const DpNetwork& dp, const TeInstance& inst, const std::vector<double>& d,
    const std::vector<std::vector<double>>& path_flows);

}  // namespace xplain::te
