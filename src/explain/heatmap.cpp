#include "explain/heatmap.h"

#include <algorithm>
#include <cmath>

#include "flowgraph/dot.h"
#include "util/csv.h"
#include "util/table.h"

namespace xplain::explain {

void print_heatmap(std::ostream& os, const flowgraph::FlowNetwork& net,
                   const Explanation& ex, const HeatmapRenderOptions& opts) {
  std::vector<int> order(net.num_edges());
  for (int e = 0; e < net.num_edges(); ++e) order[e] = e;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return std::fabs(ex.edges[a].heat) > std::fabs(ex.edges[b].heat);
  });
  util::Table table({"edge", "heat", "reading", "bench_only", "heur_only",
                     "both"});
  int rows = 0;
  for (int e : order) {
    const auto& s = ex.edges[e];
    if (std::fabs(s.heat) < opts.min_heat || rows >= opts.max_rows) break;
    const char* reading = s.heat > 0 ? "benchmark prefers (blue)"
                                     : "heuristic insists (red)";
    table.add_row({net.edge(flowgraph::EdgeId{e}).name,
                   util::format_double(s.heat), reading,
                   std::to_string(s.benchmark_only),
                   std::to_string(s.heuristic_only), std::to_string(s.both)});
    ++rows;
  }
  os << "Type-2 explanation over " << ex.samples_used << " samples:\n";
  table.print(os);
}

void write_heatmap_csv(const std::string& path,
                       const flowgraph::FlowNetwork& net,
                       const Explanation& ex) {
  util::CsvWriter csv(path, {"edge", "heat", "benchmark_only",
                             "heuristic_only", "both", "neither"});
  for (int e = 0; e < net.num_edges(); ++e) {
    const auto& s = ex.edges[e];
    csv.row({net.edge(flowgraph::EdgeId{e}).name, util::format_double(s.heat),
             std::to_string(s.benchmark_only), std::to_string(s.heuristic_only),
             std::to_string(s.both), std::to_string(s.neither)});
  }
}

std::string heatmap_dot(const flowgraph::FlowNetwork& net,
                        const Explanation& ex) {
  const std::vector<double> heat = ex.heat_map();
  flowgraph::DotOptions opts;
  opts.edge_heat = &heat;
  return flowgraph::to_dot(net, opts);
}

}  // namespace xplain::explain
