// The explainer (paper §5.3): runs samples from a contiguous adversarial
// subspace through the DSL network for both the heuristic and the benchmark
// and scores every edge:
//     0  both send flow on the edge,
//    +1  only the benchmark sends flow,
//    -1  only the heuristic sends flow.
// Averaged over samples this yields the Fig. 4 heatmap: intense blue edges
// are where the optimal goes and the heuristic does not; intense red edges
// are the heuristic's (bad) choices.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "flowgraph/network.h"
#include "subspace/region.h"

namespace xplain::explain {

struct ExplainOptions {
  int samples = 3000;       // the paper uses 3000 per figure
  double flow_eps = 1e-6;   // an edge "carries flow" above this
  std::uint64_t seed = 99;
  /// Rejection-sampling attempts per sample slot before the slot is
  /// abandoned (degenerate regions).
  int attempts_per_sample = 64;
  /// Worker threads for the sampling loop; <= 0 = one per hardware thread.
  /// Every sample slot derives its own RNG stream from (seed, slot index)
  /// and edge scores are integer counts, so the result is bitwise identical
  /// for any worker count.
  int workers = 0;
};

struct EdgeScore {
  double heat = 0.0;  // mean score in [-1, +1]
  int benchmark_only = 0;
  int heuristic_only = 0;
  int both = 0;
  int neither = 0;
};

struct Explanation {
  std::vector<EdgeScore> edges;  // indexed by EdgeId::v
  int samples_used = 0;

  /// Heat per edge, indexed by EdgeId::v (direct input to
  /// flowgraph::to_dot's edge_heat).
  std::vector<double> heat_map() const;
};

/// Produces (heuristic flows, benchmark flows) on the network's edges for
/// one input point; returns false when the point is infeasible for the
/// heuristic (it is then skipped).
using FlowOracle =
    std::function<bool(const std::vector<double>& x,
                       std::vector<double>& heuristic_flows,
                       std::vector<double>& benchmark_flows)>;

/// Scores every edge of `net` over samples drawn from `region`.
Explanation explain_subspace(const analyzer::GapEvaluator& eval,
                             const subspace::Polytope& region,
                             const flowgraph::FlowNetwork& net,
                             const FlowOracle& oracle,
                             const ExplainOptions& opts = {});

// The concrete DP/FF oracles live with their case studies: see
// cases::make_dp_oracle / cases::make_vbp_oracle in src/cases.

}  // namespace xplain::explain
