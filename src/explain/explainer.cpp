#include "explain/explainer.h"

#include "subspace/sampler.h"

namespace xplain::explain {

std::map<int, double> Explanation::heat_map() const {
  std::map<int, double> m;
  for (std::size_t e = 0; e < edges.size(); ++e) m[static_cast<int>(e)] =
      edges[e].heat;
  return m;
}

Explanation explain_subspace(const analyzer::GapEvaluator& eval,
                             const subspace::Polytope& region,
                             const flowgraph::FlowNetwork& net,
                             const FlowOracle& oracle,
                             const ExplainOptions& opts) {
  Explanation out;
  out.edges.assign(net.num_edges(), {});
  util::Rng rng(opts.seed);

  std::vector<double> hflow, bflow;
  int collected = 0;
  int attempts = 0;
  const int max_attempts = 64 * opts.samples;
  while (collected < opts.samples && attempts < max_attempts) {
    ++attempts;
    auto x = eval.quantize(rng.uniform_point(region.box.lo, region.box.hi));
    if (!region.contains(x, 1e-9)) continue;
    if (!oracle(x, hflow, bflow)) continue;
    for (int e = 0; e < net.num_edges(); ++e) {
      const bool h = hflow[e] > opts.flow_eps;
      const bool b = bflow[e] > opts.flow_eps;
      EdgeScore& s = out.edges[e];
      if (h && b)
        ++s.both;
      else if (b)
        ++s.benchmark_only;
      else if (h)
        ++s.heuristic_only;
      else
        ++s.neither;
    }
    ++collected;
  }
  out.samples_used = collected;
  for (auto& s : out.edges) {
    const int n = s.both + s.benchmark_only + s.heuristic_only + s.neither;
    if (n > 0)
      s.heat = (static_cast<double>(s.benchmark_only) -
                static_cast<double>(s.heuristic_only)) /
               static_cast<double>(n);
  }
  return out;
}

}  // namespace xplain::explain
