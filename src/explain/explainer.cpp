#include "explain/explainer.h"

#include "subspace/sampler.h"
#include "vbp/optimal.h"

namespace xplain::explain {

std::map<int, double> Explanation::heat_map() const {
  std::map<int, double> m;
  for (std::size_t e = 0; e < edges.size(); ++e) m[static_cast<int>(e)] =
      edges[e].heat;
  return m;
}

Explanation explain_subspace(const analyzer::GapEvaluator& eval,
                             const subspace::Polytope& region,
                             const flowgraph::FlowNetwork& net,
                             const FlowOracle& oracle,
                             const ExplainOptions& opts) {
  Explanation out;
  out.edges.assign(net.num_edges(), {});
  util::Rng rng(opts.seed);

  std::vector<double> hflow, bflow;
  int collected = 0;
  int attempts = 0;
  const int max_attempts = 64 * opts.samples;
  while (collected < opts.samples && attempts < max_attempts) {
    ++attempts;
    auto x = eval.quantize(rng.uniform_point(region.box.lo, region.box.hi));
    if (!region.contains(x, 1e-9)) continue;
    if (!oracle(x, hflow, bflow)) continue;
    for (int e = 0; e < net.num_edges(); ++e) {
      const bool h = hflow[e] > opts.flow_eps;
      const bool b = bflow[e] > opts.flow_eps;
      EdgeScore& s = out.edges[e];
      if (h && b)
        ++s.both;
      else if (b)
        ++s.benchmark_only;
      else if (h)
        ++s.heuristic_only;
      else
        ++s.neither;
    }
    ++collected;
  }
  out.samples_used = collected;
  for (auto& s : out.edges) {
    const int n = s.both + s.benchmark_only + s.heuristic_only + s.neither;
    if (n > 0)
      s.heat = (static_cast<double>(s.benchmark_only) -
                static_cast<double>(s.heuristic_only)) /
               static_cast<double>(n);
  }
  return out;
}

FlowOracle make_dp_oracle(const te::DpNetwork& dp, const te::TeInstance& inst,
                          const te::DpConfig& cfg) {
  return [&dp, &inst, cfg](const std::vector<double>& x,
                           std::vector<double>& hflow,
                           std::vector<double>& bflow) {
    auto heur = te::run_demand_pinning(inst, cfg, x);
    if (!heur.feasible) return false;
    auto opt = te::solve_max_flow(inst, x);
    if (!opt.feasible) return false;
    hflow = te::dp_network_flows(dp, inst, x, heur.flow);
    bflow = te::dp_network_flows(dp, inst, x, opt.flow);
    return true;
  };
}

FlowOracle make_ff_oracle(const vbp::FfNetwork& ff,
                          const vbp::VbpInstance& inst) {
  return [&ff, inst](const std::vector<double>& x, std::vector<double>& hflow,
                     std::vector<double>& bflow) {
    auto heur = vbp::first_fit(inst, x);
    if (!heur.complete) return false;
    auto opt = vbp::optimal_packing(inst, x);
    hflow = vbp::ff_network_flows(ff, inst, x, heur);
    bflow = vbp::ff_network_flows(ff, inst, x, opt.packing);
    return true;
  };
}

}  // namespace xplain::explain
