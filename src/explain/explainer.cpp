#include "explain/explainer.h"

#include <algorithm>

#include "subspace/sampler.h"
#include "util/parallel.h"

namespace xplain::explain {

std::vector<double> Explanation::heat_map() const {
  std::vector<double> m(edges.size(), 0.0);
  for (std::size_t e = 0; e < edges.size(); ++e) m[e] = edges[e].heat;
  return m;
}

Explanation explain_subspace(const analyzer::GapEvaluator& eval,
                             const subspace::Polytope& region,
                             const flowgraph::FlowNetwork& net,
                             const FlowOracle& oracle,
                             const ExplainOptions& opts) {
  Explanation out;
  const int ne = net.num_edges();
  out.edges.assign(ne, {});

  // One sample per slot, each with its own derived RNG stream; a slot that
  // cannot produce an accepted point within attempts_per_sample draws is
  // dropped.  Workers accumulate integer per-edge counts into private
  // partials, merged exactly afterwards — sums of ints are independent of
  // both chunking and merge order, so any worker count produces bitwise
  // identical output.
  const int workers = util::resolve_workers(opts.workers);
  struct Partial {
    std::vector<int> both, bench_only, heur_only, neither;
    int samples_used = 0;
  };
  std::vector<Partial> partials(workers);
  for (auto& p : partials) {
    p.both.assign(ne, 0);
    p.bench_only.assign(ne, 0);
    p.heur_only.assign(ne, 0);
    p.neither.assign(ne, 0);
  }

  util::parallel_chunks(
      static_cast<std::size_t>(std::max(0, opts.samples)), workers,
      [&](std::size_t begin, std::size_t end, int worker) {
        Partial& acc = partials[worker];
        // Thread-local flow scratch, reused across the chunk's oracle calls.
        std::vector<double> hflow, bflow;
        for (std::size_t slot = begin; slot < end; ++slot) {
          util::SlotRng rng(util::Rng::derive_seed(opts.seed, slot));
          bool accepted = false;
          for (int attempt = 0;
               attempt < opts.attempts_per_sample && !accepted; ++attempt) {
            auto x =
                eval.quantize(rng.uniform_point(region.box.lo, region.box.hi));
            if (!region.contains(x, 1e-9)) continue;
            if (!oracle(x, hflow, bflow)) continue;
            accepted = true;
            for (int e = 0; e < ne; ++e) {
              const bool h = hflow[e] > opts.flow_eps;
              const bool b = bflow[e] > opts.flow_eps;
              if (h && b)
                ++acc.both[e];
              else if (b)
                ++acc.bench_only[e];
              else if (h)
                ++acc.heur_only[e];
              else
                ++acc.neither[e];
            }
          }
          if (accepted) ++acc.samples_used;
        }
      });

  for (const Partial& p : partials) {
    out.samples_used += p.samples_used;
    for (int e = 0; e < ne; ++e) {
      out.edges[e].both += p.both[e];
      out.edges[e].benchmark_only += p.bench_only[e];
      out.edges[e].heuristic_only += p.heur_only[e];
      out.edges[e].neither += p.neither[e];
    }
  }
  for (auto& s : out.edges) {
    const int n = s.both + s.benchmark_only + s.heuristic_only + s.neither;
    if (n > 0)
      s.heat = (static_cast<double>(s.benchmark_only) -
                static_cast<double>(s.heuristic_only)) /
               static_cast<double>(n);
  }
  return out;
}

}  // namespace xplain::explain
