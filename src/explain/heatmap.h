// Rendering for Type-2 explanations: ranked text tables, CSV series, and
// Graphviz heatmaps (the three ways to look at Fig. 4).
#pragma once

#include <ostream>
#include <string>

#include "explain/explainer.h"

namespace xplain::explain {

struct HeatmapRenderOptions {
  /// Only edges with |heat| >= this are listed in the text table.
  double min_heat = 0.01;
  int max_rows = 40;
};

/// Ranked table: strongest benchmark-only (blue) and heuristic-only (red)
/// edges first.
void print_heatmap(std::ostream& os, const flowgraph::FlowNetwork& net,
                   const Explanation& ex,
                   const HeatmapRenderOptions& opts = {});

/// CSV: edge, heat, benchmark_only, heuristic_only, both, neither.
void write_heatmap_csv(const std::string& path,
                       const flowgraph::FlowNetwork& net,
                       const Explanation& ex);

/// Graphviz with heat coloring (paper Fig. 4 edge colors).
std::string heatmap_dot(const flowgraph::FlowNetwork& net,
                        const Explanation& ex);

}  // namespace xplain::explain
