// The discovery archive — fuzzer output as a committed regression corpus.
//
// Each Discovery is one (case, scenario spec) pair whose cheap-probe gap
// cleared the significance bar, together with the exact probe result
// (`gap`, bitwise) and the options fingerprint it was measured under, so a
// replay run can assert exact reproduction the way the committed bench
// baselines do.  The archive keeps at most one entry per (case, coverage
// bucket) — the incumbent with the largest normalized gap — and serializes
// in a canonical order (case, then bucket) through util::Json with seeds as
// decimal strings: two archives with equal content dump byte-for-byte equal
// JSON no matter the insertion order, which is what the worker-count
// determinism gate diffs.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "scenario/spec.h"
#include "util/json.h"

namespace xplain::search {

struct Discovery {
  std::string case_name;
  scenario::ScenarioSpec spec;
  /// Raw best analyzer gap under the probe options (bitwise replay target)
  /// and the same normalized by the case's gap_scale().
  double gap = 0.0;
  double norm_gap = 0.0;
  /// Coverage bucket key (search/coverage.h) the spec landed in.
  std::string bucket;
  /// Fuzzer generation that found it (0 = the seed corpus itself).
  int generation = 0;
  /// fingerprint() of the PipelineOptions `gap` was measured under.
  std::string options_fingerprint;
};

class Archive {
 public:
  /// Inserts, keeping one entry per (case, bucket): an incoming duplicate
  /// replaces the incumbent only with a strictly larger norm_gap.
  void add(const Discovery& d);

  /// Canonical (case, bucket) order regardless of insertion history.
  const std::vector<Discovery>& discoveries() const { return entries_; }
  int size() const { return static_cast<int>(entries_.size()); }

  std::string to_json(int indent = 2) const;
  static std::optional<Archive> from_json(const std::string& text,
                                          std::string* err = nullptr);

  /// Whole-file convenience wrappers (false / nullopt on I/O failure).
  bool save(const std::string& path, int indent = 2) const;
  static std::optional<Archive> load(const std::string& path,
                                     std::string* err = nullptr);

 private:
  std::vector<Discovery> entries_;  // kept sorted by (case, bucket)
};

}  // namespace xplain::search
