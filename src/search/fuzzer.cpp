#include "search/fuzzer.h"

#include <set>
#include <utility>

#include "engine/engine.h"
#include "util/logging.h"
#include "util/random.h"

namespace xplain::search {

namespace {

using scenario::ScenarioSpec;
using scenario::TopologyKind;

std::vector<ScenarioSpec> builtin_seed_corpus() {
  std::vector<ScenarioSpec> seeds;
  {
    ScenarioSpec s;
    s.kind = TopologyKind::kFatTree;
    s.size = 4;
    seeds.push_back(s);
  }
  {
    ScenarioSpec s;
    s.kind = TopologyKind::kWaxman;
    s.size = 12;
    s.seed = 7;
    seeds.push_back(s);
  }
  {
    ScenarioSpec s;
    s.kind = TopologyKind::kLine;
    s.size = 6;
    seeds.push_back(s);
  }
  {
    ScenarioSpec s;
    s.kind = TopologyKind::kStar;
    s.size = 8;
    seeds.push_back(s);
  }
  return seeds;
}

int count_significant(const PipelineResult& r) {
  int n = 0;
  for (const auto& s : r.subspaces) n += s.significant;
  return n;
}

/// One (cases x scenarios) probe or deep grid.  reseed_jobs stays OFF: a
/// job's result must be a pure function of (case, spec, options) — not its
/// grid position — or the committed archive could not be replayed exactly.
ExperimentResult run_grid(const std::vector<std::string>& cases,
                          std::vector<ScenarioSpec> scenarios,
                          const PipelineOptions& options, int workers) {
  ExperimentSpec es;
  es.cases = cases;
  es.scenarios = std::move(scenarios);
  es.option_variants = {options};
  es.reseed_jobs = false;
  es.run_generalizer = false;
  es.workers = workers;
  return Engine().run(es);
}

}  // namespace

PipelineOptions FuzzerOptions::probe_defaults() {
  PipelineOptions p;
  p.min_gap = 1.0;
  p.subspace.max_subspaces = 1;
  p.subspace.max_expansion_rounds = 6;
  p.subspace.dkw_eps = 0.15;
  p.subspace.tree_samples = 60;
  p.subspace.significance.pairs = 30;
  p.subspace.significance.workers = 1;
  p.explain.samples = 0;  // probes measure gaps, they don't tell stories
  p.explain.workers = 1;
  return p;
}

PipelineOptions FuzzerOptions::deep_defaults() {
  PipelineOptions p;
  p.min_gap = 1.0;
  return p;
}

FuzzResult run_fuzzer(const FuzzerOptions& opts) {
  FuzzResult out;
  if (opts.cases.empty() || opts.budget_evals <= 0) return out;

  const std::vector<ScenarioSpec> seeds =
      opts.seed_corpus.empty() ? builtin_seed_corpus() : opts.seed_corpus;
  CoverageMap cov(opts.significant_gap, opts.min_gain);

  // Elite pool: every coverage-accepted spec (novel OR incumbent-beating),
  // deduplicated by cache_key.  Sub-threshold novel specs stay in — being
  // mutated from is exactly how a low-gap frontier region leads somewhere.
  std::vector<ScenarioSpec> elites = seeds;
  std::set<std::string> elite_keys;
  for (const auto& s : seeds) elite_keys.insert(s.cache_key());
  std::set<std::string> evaluated;
  std::uint64_t mutation_counter = 0;
  int generation = 0;

  const int per_candidate = static_cast<int>(opts.cases.size());
  while (out.stats.evals < opts.budget_evals) {
    // --- Draw this generation's candidates. ---
    std::vector<ScenarioSpec> candidates;
    if (generation == 0) {
      for (const auto& s : seeds)
        if (evaluated.insert(s.cache_key()).second) candidates.push_back(s);
    } else {
      const int attempts_cap = 8 * opts.generation_size;
      for (int att = 0; att < attempts_cap && static_cast<int>(
                                                  candidates.size()) <
                                                  opts.generation_size;
           ++att) {
        const ScenarioSpec& parent =
            elites[static_cast<std::size_t>(mutation_counter) % elites.size()];
        const std::uint64_t mseed =
            util::Rng::derive_seed(opts.seed, ++mutation_counter);
        const Mutant m = mutate(parent, mseed, opts.limits);
        if (evaluated.insert(m.spec.cache_key()).second)
          candidates.push_back(m.spec);
      }
    }
    const int room = (opts.budget_evals - out.stats.evals) / per_candidate;
    if (candidates.empty() || room <= 0) break;
    if (static_cast<int>(candidates.size()) > room) candidates.resize(room);

    // --- Cheap probe: one Engine grid for the whole generation. ---
    const ExperimentResult res =
        run_grid(opts.cases, candidates, opts.probe_options, opts.workers);
    out.stats.evals += static_cast<int>(res.jobs.size());

    // --- Coverage acceptance, in canonical grid order. ---
    struct Survivor {
      Discovery d;
    };
    std::vector<Survivor> survivors;
    for (const JobResult& jr : res.jobs) {
      if (!jr.ok) {
        ++out.stats.failed_jobs;
        continue;
      }
      const double scale =
          jr.pipeline.gap_scale > 0 ? jr.pipeline.gap_scale : 1.0;
      const double gap = jr.pipeline.best_gap_found;
      const double norm = gap / scale;
      if (!cov.offer(jr.job.case_name, jr.pipeline.features, norm)) continue;
      const ScenarioSpec& spec = *jr.job.scenario;
      if (elite_keys.insert(spec.cache_key()).second) elites.push_back(spec);
      if (norm < opts.significant_gap) continue;
      Survivor s;
      s.d.case_name = jr.job.case_name;
      s.d.spec = spec;
      s.d.gap = gap;
      s.d.norm_gap = norm;
      s.d.bucket = bucket_key(jr.job.case_name, jr.pipeline.features);
      s.d.generation = generation;
      s.d.options_fingerprint = jr.options_fingerprint;
      survivors.push_back(std::move(s));
    }

    // --- Archive survivors (deep mode confirms them first). ---
    for (const Survivor& s : survivors) {
      if (!opts.deep) {
        out.archive.add(s.d);
        continue;
      }
      if (out.stats.evals >= opts.budget_evals) break;
      const ExperimentResult deep = run_grid(
          {s.d.case_name}, {s.d.spec}, opts.deep_options, opts.workers);
      ++out.stats.deep_runs;
      out.stats.evals += static_cast<int>(deep.jobs.size());
      const JobResult& dj = deep.jobs.front();
      if (!dj.ok || count_significant(dj.pipeline) < 1) continue;
      const double dscale =
          dj.pipeline.gap_scale > 0 ? dj.pipeline.gap_scale : 1.0;
      Discovery d = s.d;
      d.gap = dj.pipeline.best_gap_found;
      d.norm_gap = d.gap / dscale;
      d.options_fingerprint = dj.options_fingerprint;
      out.archive.add(d);
    }

    ++generation;
    ++out.stats.generations;
    XPLAIN_INFO << "fuzz: generation " << generation << " evaluated "
                << candidates.size() << " candidates, " << out.stats.evals
                << "/" << opts.budget_evals << " evals, archive "
                << out.archive.size();
  }

  out.stats.coverage = cov.stats();
  return out;
}

ReplayOutcome replay_discovery(const Discovery& d, const FuzzerOptions& opts) {
  ReplayOutcome out;
  const PipelineOptions* options = nullptr;
  if (d.options_fingerprint == opts.probe_options.fingerprint())
    options = &opts.probe_options;
  else if (d.options_fingerprint == opts.deep_options.fingerprint())
    options = &opts.deep_options;
  if (!options) {
    out.error =
        "discovery options_fingerprint matches neither probe nor deep "
        "options (" +
        d.options_fingerprint + ")";
    return out;
  }
  const ExperimentResult res =
      run_grid({d.case_name}, {d.spec}, *options, /*workers=*/1);
  const JobResult& jr = res.jobs.front();
  if (!jr.ok) {
    out.error = jr.error;
    return out;
  }
  out.ok = true;
  out.gap = jr.pipeline.best_gap_found;
  const double scale = jr.pipeline.gap_scale > 0 ? jr.pipeline.gap_scale : 1.0;
  out.norm_gap = out.gap / scale;
  out.bucket = bucket_key(d.case_name, jr.pipeline.features);
  out.options_fingerprint = jr.options_fingerprint;
  return out;
}

}  // namespace xplain::search
