#include "search/mutator.h"

#include <algorithm>
#include <vector>

#include "util/random.h"

namespace xplain::search {

namespace {

using scenario::ScenarioSpec;
using scenario::TopologyKind;

/// Uniform pick in [0, n) from the slot stream (the modulo bias over 2^64
/// is immaterial for single-digit n).
std::size_t pick(util::SlotRng& rng, std::size_t n) {
  return static_cast<std::size_t>(rng.next() % n);
}

int clamp_size(TopologyKind kind, int size, const MutatorLimits& lim) {
  if (kind == TopologyKind::kFatTree) {
    int k = std::clamp(size, lim.min_fat_tree_k, lim.max_fat_tree_k);
    if (k % 2 != 0) --k;  // fat-tree arity must be even
    return std::max(k, lim.min_fat_tree_k);
  }
  return std::clamp(size, lim.min_size, lim.max_size);
}

void apply_topology_swap(ScenarioSpec& s, util::SlotRng& rng,
                         const MutatorLimits& lim) {
  static constexpr TopologyKind kAll[] = {TopologyKind::kFatTree,
                                          TopologyKind::kWaxman,
                                          TopologyKind::kLine,
                                          TopologyKind::kStar};
  std::vector<TopologyKind> others;
  for (const TopologyKind k : kAll)
    if (k != s.kind) others.push_back(k);
  s.kind = others[pick(rng, others.size())];
  s.size = clamp_size(s.kind, s.size, lim);
}

void apply_size_step(ScenarioSpec& s, util::SlotRng& rng,
                     const MutatorLimits& lim) {
  const int magnitude = s.kind == TopologyKind::kFatTree
                            ? 2
                            : 1 + static_cast<int>(pick(rng, 3));
  const int step = rng.next() % 2 == 0 ? magnitude : -magnitude;
  s.size = clamp_size(s.kind, s.size + step, lim);
}

void apply_capacity_scale(ScenarioSpec& s, util::SlotRng& rng,
                          const MutatorLimits& lim) {
  static constexpr double kFactors[] = {0.5, 0.75, 1.5, 2.0};
  s.capacity = std::clamp(s.capacity * kFactors[pick(rng, 4)],
                          lim.min_capacity, lim.max_capacity);
}

void apply_seed_reroll(ScenarioSpec& s, util::SlotRng& rng) {
  s.seed = rng.next();
}

void apply_waxman_jitter(ScenarioSpec& s, util::SlotRng& rng) {
  s.waxman_alpha = std::clamp(s.waxman_alpha * rng.uniform(0.8, 1.25),
                              0.2, 0.95);
  s.waxman_beta = std::clamp(s.waxman_beta * rng.uniform(0.8, 1.25),
                             0.1, 0.8);
}

void apply_link_failure(ScenarioSpec& s, util::SlotRng& rng,
                        const MutatorLimits& lim) {
  static constexpr int kSteps[] = {-1, 1, 2};
  s.failed_links = std::clamp(s.failed_links + kSteps[pick(rng, 3)], 0,
                              lim.max_failed_links);
}

void apply_capacity_degradation(ScenarioSpec& s, util::SlotRng& rng,
                                const MutatorLimits& lim) {
  if (s.capacity_degradation == 1.0) {
    static constexpr double kBrownouts[] = {0.85, 0.7, 0.5, 0.35};
    s.capacity_degradation =
        std::max(kBrownouts[pick(rng, 4)], lim.min_degradation);
    return;
  }
  s.capacity_degradation = std::clamp(
      s.capacity_degradation * rng.uniform(0.8, 1.3), lim.min_degradation,
      1.0);
}

}  // namespace

const char* to_string(MutationOp op) {
  switch (op) {
    case MutationOp::kTopologySwap: return "topology_swap";
    case MutationOp::kSizeStep: return "size_step";
    case MutationOp::kCapacityScale: return "capacity_scale";
    case MutationOp::kSeedReroll: return "seed_reroll";
    case MutationOp::kWaxmanShapeJitter: return "waxman_shape_jitter";
    case MutationOp::kLinkFailure: return "link_failure";
    case MutationOp::kCapacityDegradation: return "capacity_degradation";
  }
  return "?";
}

Mutant mutate(const ScenarioSpec& parent, std::uint64_t seed,
              const MutatorLimits& limits) {
  util::SlotRng rng(seed);
  // The op menu depends only on the parent's kind (Waxman shape jitter is
  // meaningless elsewhere), keeping the choice a pure function of
  // (parent, seed).
  std::vector<MutationOp> menu = {
      MutationOp::kTopologySwap,    MutationOp::kSizeStep,
      MutationOp::kCapacityScale,   MutationOp::kSeedReroll,
      MutationOp::kLinkFailure,     MutationOp::kCapacityDegradation,
  };
  if (parent.kind == TopologyKind::kWaxman)
    menu.push_back(MutationOp::kWaxmanShapeJitter);

  Mutant m;
  m.spec = parent;
  m.spec.size = clamp_size(parent.kind, parent.size, limits);
  m.op = menu[pick(rng, menu.size())];
  switch (m.op) {
    case MutationOp::kTopologySwap:
      apply_topology_swap(m.spec, rng, limits);
      break;
    case MutationOp::kSizeStep:
      apply_size_step(m.spec, rng, limits);
      break;
    case MutationOp::kCapacityScale:
      apply_capacity_scale(m.spec, rng, limits);
      break;
    case MutationOp::kSeedReroll:
      apply_seed_reroll(m.spec, rng);
      break;
    case MutationOp::kWaxmanShapeJitter:
      apply_waxman_jitter(m.spec, rng);
      break;
    case MutationOp::kLinkFailure:
      apply_link_failure(m.spec, rng, limits);
      break;
    case MutationOp::kCapacityDegradation:
      apply_capacity_degradation(m.spec, rng, limits);
      break;
  }
  return m;
}

}  // namespace xplain::search
