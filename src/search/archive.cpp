#include "search/archive.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <tuple>

#include "scenario/spec_json.h"

namespace xplain::search {

namespace {

using util::Json;

bool before(const Discovery& a, const Discovery& b) {
  return std::tie(a.case_name, a.bucket) < std::tie(b.case_name, b.bucket);
}

}  // namespace

void Archive::add(const Discovery& d) {
  const auto it = std::lower_bound(entries_.begin(), entries_.end(), d, before);
  if (it != entries_.end() && it->case_name == d.case_name &&
      it->bucket == d.bucket) {
    if (d.norm_gap > it->norm_gap) *it = d;
    return;
  }
  entries_.insert(it, d);
}

std::string Archive::to_json(int indent) const {
  Json root = Json::object();
  Json arr = Json::array();
  for (const auto& d : entries_) {
    Json e = Json::object();
    e.set("case", d.case_name);
    e.set("scenario", scenario::spec_to_json(d.spec));
    e.set("gap", d.gap);
    e.set("norm_gap", d.norm_gap);
    e.set("bucket", d.bucket);
    e.set("generation", d.generation);
    e.set("options_fingerprint", d.options_fingerprint);
    arr.push(std::move(e));
  }
  root.set("discoveries", std::move(arr));
  return root.dump(indent);
}

std::optional<Archive> Archive::from_json(const std::string& text,
                                          std::string* err) {
  const auto fail = [&](const std::string& message) {
    if (err) *err = message;
    return std::nullopt;
  };
  const std::optional<Json> parsed = Json::parse(text);
  if (!parsed || parsed->kind() != Json::Kind::kObject)
    return fail("archive must be a JSON object");
  const Json* arr = parsed->find("discoveries");
  if (!arr || arr->kind() != Json::Kind::kArray)
    return fail("archive.discoveries must be an array");
  Archive out;
  for (const Json& e : arr->items()) {
    if (e.kind() != Json::Kind::kObject)
      return fail("discovery entries must be objects");
    Discovery d;
    const Json* c = e.find("case");
    if (!c || c->kind() != Json::Kind::kString)
      return fail("discovery.case must be a string");
    d.case_name = c->as_str();
    const Json* scen = e.find("scenario");
    if (!scen) return fail("discovery.scenario is required");
    std::string spec_err;
    const std::optional<scenario::ScenarioSpec> spec =
        scenario::spec_from_json(*scen, &spec_err);
    if (!spec) return fail("discovery.scenario: " + spec_err);
    d.spec = *spec;
    const auto num = [&](const char* key) {
      const Json* v = e.find(key);
      return v ? v->as_num() : 0.0;
    };
    const auto str = [&](const char* key) {
      const Json* v = e.find(key);
      return v ? v->as_str() : std::string();
    };
    d.gap = num("gap");
    d.norm_gap = num("norm_gap");
    d.bucket = str("bucket");
    d.generation = static_cast<int>(num("generation"));
    d.options_fingerprint = str("options_fingerprint");
    out.add(d);
  }
  return out;
}

bool Archive::save(const std::string& path, int indent) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_json(indent) << "\n";
  return static_cast<bool>(f);
}

std::optional<Archive> Archive::load(const std::string& path,
                                     std::string* err) {
  std::ifstream f(path);
  if (!f) {
    if (err) *err = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  return from_json(buf.str(), err);
}

}  // namespace xplain::search
