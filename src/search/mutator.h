// Spec mutation operators — the fuzzer's move set over scenario space.
//
// A closed set of operators, each a small structured edit of one
// ScenarioSpec: topology family swap, size step, capacity scale (which
// shifts the demand/capacity ratio the instances are built against), Waxman
// shape jitter, instance-seed reroll, and the failure dimensions
// (failed_links / capacity_degradation).  mutate() is a PURE FUNCTION of
// (parent spec, 64-bit seed): the same pair yields the bitwise-identical
// mutant on any machine and any worker count — the property that lets the
// fuzzer derive all its randomness from util::Rng::derive_seed counters and
// stay deterministic under XPLAIN_WORKERS (util/parallel.h contract).
//
// Operators draw from util::SlotRng (pure splitmix64 — no
// std::*_distribution, whose outputs are implementation-defined), and every
// numeric edit lands inside MutatorLimits so candidates stay in the regime
// the cheap gap probe can afford (a fat-tree k is worth thousands of LP
// rows; the fuzzer's budget is evaluations, not hours).
#pragma once

#include <cstdint>

#include "scenario/spec.h"

namespace xplain::search {

enum class MutationOp {
  kTopologySwap,         // different topology family, size re-clamped
  kSizeStep,             // +/- size (fat-trees step by 2, staying even)
  kCapacityScale,        // scale base capacity: shifts demand/cap ratio
  kSeedReroll,           // new instance seed: fresh endpoints / Waxman draw
  kWaxmanShapeJitter,    // alpha/beta jitter (offered for Waxman parents)
  kLinkFailure,          // step the failed_links dimension
  kCapacityDegradation,  // move the uniform brownout factor
};

const char* to_string(MutationOp op);

/// Clamp box every mutant lands in.  Defaults keep instances inside the
/// cheap-probe regime: fat-trees at k in {4,6,8} (k=16 is a deep-mode
/// target, not a probe candidate), other shapes at 3..14 nodes.
struct MutatorLimits {
  int min_size = 3;
  int max_size = 14;
  int min_fat_tree_k = 4;
  int max_fat_tree_k = 8;
  double min_capacity = 25.0;
  double max_capacity = 400.0;
  int max_failed_links = 4;
  double min_degradation = 0.3;
};

struct Mutant {
  scenario::ScenarioSpec spec;
  MutationOp op = MutationOp::kSeedReroll;
};

/// The mutant of `parent` under `seed` — pure: same (parent, seed, limits)
/// in, bitwise-identical Mutant out.
Mutant mutate(const scenario::ScenarioSpec& parent, std::uint64_t seed,
              const MutatorLimits& limits = {});

}  // namespace xplain::search
