// The coverage-guided scenario fuzzer — search scenario space instead of
// enumerating it (the ROADMAP's fuzzing item; paper framing: surface the
// gap regions nobody thought to hand-pick).
//
// Generation loop:
//   1. generation 0 evaluates the seed corpus; later generations draw
//      candidates by mutating elite specs (search/mutator.h), each mutant a
//      pure function of (parent, derive_seed(fuzzer seed, counter));
//   2. candidates are evaluated as ONE Engine grid per generation —
//      cases x candidate scenarios x {probe options} via the ExperimentSpec
//      option axis — under cheap gap-probe options (one subspace, no
//      explainer, trimmed sampling budgets);
//   3. the coverage map (search/coverage.h) keeps candidates that land in
//      unseen feature buckets or beat a bucket incumbent; kept specs join
//      the elite pool, and those clearing the significant-gap bar become
//      Discoveries;
//   4. deep mode re-runs each survivor under the full-pipeline options and
//      archives only deep-confirmed specs (>= 1 significant subspace).
//
// Determinism: probes run with reseed_jobs=false, so a job's result is a
// pure function of (case, scenario spec, options) — independent of where
// the spec appears in any grid — which is what lets the committed archive
// be REPLAYED exactly (replay_discovery).  All fuzzer decisions read Engine
// results in canonical grid order, so the archive is bitwise identical for
// any XPLAIN_WORKERS / FuzzerOptions::workers setting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/spec.h"
#include "search/archive.h"
#include "search/coverage.h"
#include "search/mutator.h"
#include "xplain/pipeline.h"

namespace xplain::search {

struct FuzzerOptions {
  /// CaseRegistry keys every candidate is probed under.
  std::vector<std::string> cases = {"wcmp", "demand_pinning"};
  std::uint64_t seed = 1;
  /// Total Engine jobs (probe + deep) the run may spend.  Each candidate
  /// scenario costs cases.size() probe jobs.
  int budget_evals = 96;
  /// Candidate scenarios per generation (after dedup against everything
  /// already evaluated).
  int generation_size = 6;
  /// Normalized-gap bar (gap / case gap_scale) for a discovery.
  double significant_gap = 0.15;
  /// Relative gain needed to displace a coverage-bucket incumbent.
  double min_gain = 0.05;
  /// Deep mode: survivors get a full-pipeline run and only deep-confirmed
  /// specs (>= 1 significant subspace) are archived, under deep_options'
  /// fingerprint.
  bool deep = false;
  /// Engine workers per grid; <= 0 resolves via XPLAIN_WORKERS (the archive
  /// is bitwise identical either way — that is a test).
  int workers = 0;
  MutatorLimits limits;
  /// Generation-0 corpus; empty uses a built-in starter (small fat-tree,
  /// Waxman, line, star).
  std::vector<scenario::ScenarioSpec> seed_corpus;
  PipelineOptions probe_options = probe_defaults();
  PipelineOptions deep_options = deep_defaults();

  /// Cheap gap probe: one subspace, trimmed expansion/significance budgets,
  /// explainer off — an is-there-a-gap-here measurement, not a full story.
  static PipelineOptions probe_defaults();
  /// Full pipeline at the repo's default knobs (what a promoted discovery
  /// gets explained with).
  static PipelineOptions deep_defaults();
};

struct FuzzStats {
  int evals = 0;        // Engine jobs spent (probe + deep)
  int generations = 0;  // completed generation loops
  int deep_runs = 0;
  int failed_jobs = 0;  // jobs with ok=false (unknown case etc.)
  CoverageStats coverage;
};

struct FuzzResult {
  Archive archive;
  FuzzStats stats;
};

FuzzResult run_fuzzer(const FuzzerOptions& opts);

/// Re-evaluates one archived discovery under the fuzzer options whose
/// fingerprint recorded it (probe or deep) with reseed_jobs=false and a
/// single worker: `gap` must equal Discovery::gap bitwise, `bucket` must
/// match — the committed-corpus regression gate.
struct ReplayOutcome {
  bool ok = false;
  std::string error;
  double gap = 0.0;
  double norm_gap = 0.0;
  std::string bucket;
  std::string options_fingerprint;
};

ReplayOutcome replay_discovery(const Discovery& d,
                               const FuzzerOptions& opts = {});

}  // namespace xplain::search
