#include "search/coverage.h"

#include <cmath>

namespace xplain::search {

int feature_bucket(double v) {
  if (v == 0.0 || !std::isfinite(v)) return 0;
  int e = 0;
  std::frexp(std::fabs(v), &e);  // |v| in [2^(e-1), 2^e)
  const int b = 2 * e + 1;       // odd: never collides with the zero bucket
  return v > 0 ? b : -b;
}

std::string bucket_key(const std::string& case_name,
                       const FeatureMap& features) {
  std::string key = case_name;
  for (const auto& [name, value] : features) {
    key += '|';
    key += name;
    key += ':';
    key += std::to_string(feature_bucket(value));
  }
  return key;
}

bool CoverageMap::offer(const std::string& case_name,
                        const FeatureMap& features, double norm_gap) {
  ++offers_;
  const std::string key = bucket_key(case_name, features);
  auto [it, fresh] = best_.try_emplace(key, norm_gap);
  if (fresh) {
    ++accepted_novel_;
    return true;
  }
  const bool improved = norm_gap > it->second * (1.0 + min_gain_);
  if (norm_gap > it->second) it->second = norm_gap;
  if (improved) ++accepted_improved_;
  return improved;
}

double CoverageMap::best(const std::string& key) const {
  const auto it = best_.find(key);
  return it == best_.end() ? 0.0 : it->second;
}

CoverageStats CoverageMap::stats() const {
  CoverageStats s;
  s.buckets = static_cast<int>(best_.size());
  for (const auto& [key, gap] : best_)
    if (gap >= significant_gap_) ++s.significant_buckets;
  s.offers = offers_;
  s.accepted_novel = accepted_novel_;
  s.accepted_improved = accepted_improved_;
  return s;
}

}  // namespace xplain::search
