// Coverage map — the fuzzer's novelty signal.
//
// Every pipeline run already reports the instance's feature vector
// (generalize/features: num_links, path_hops, demand_cap_ratio, ...).  The
// coverage map coarsens each feature to its binary-exponent bucket and keys
// on (case name, bucketed vector): two scenarios land in the same bucket
// iff a case sees them as structurally similar inputs.  A candidate is kept
// iff its bucket is unseen OR its normalized gap beats the bucket's
// incumbent by a relative margin — the classic coverage-guided acceptance
// rule, with gap magnitude standing in for "interesting".
//
// Bucketing is exact floating-point (std::frexp, no log2 rounding) and the
// map is an ordered std::map, so bucket keys, acceptance decisions, and
// iteration order are bitwise deterministic — the lint's result-path
// unordered-container ban applies to this directory for that reason.
#pragma once

#include <map>
#include <string>

namespace xplain::search {

using FeatureMap = std::map<std::string, double>;

/// Coarse deterministic bucket of one feature value: 0 for zero, otherwise
/// sign(v) * (2 * binary_exponent + 1) — odd, so never 0, and exact (frexp
/// returns the exponent without rounding).  Values within the same power of
/// two share a bucket: 40 and 50 links are "the same size", 40 and 80 are
/// not.
int feature_bucket(double v);

/// The novelty key: "case|feat:bucket|feat:bucket|..." over the (ordered)
/// feature map.
std::string bucket_key(const std::string& case_name,
                       const FeatureMap& features);

struct CoverageStats {
  int buckets = 0;              // distinct keys seen
  int significant_buckets = 0;  // keys whose best gap >= significant_gap
  int offers = 0;
  int accepted_novel = 0;     // kept: unseen bucket
  int accepted_improved = 0;  // kept: beat the incumbent gap
};

class CoverageMap {
 public:
  /// `significant_gap` is in normalized-gap units (gap / case gap_scale);
  /// `min_gain` is the relative improvement an incumbent-beating offer
  /// needs (0.05 = 5% better).
  explicit CoverageMap(double significant_gap, double min_gain = 0.05)
      : significant_gap_(significant_gap), min_gain_(min_gain) {}

  /// Records the observation (bucket incumbents always track the max gap)
  /// and returns the acceptance decision: true iff the bucket was unseen or
  /// `norm_gap` beat its incumbent by min_gain relative.
  bool offer(const std::string& case_name, const FeatureMap& features,
             double norm_gap);

  /// Best normalized gap seen in `key` (0 when unseen).
  double best(const std::string& key) const;
  const std::map<std::string, double>& buckets() const { return best_; }
  CoverageStats stats() const;

 private:
  double significant_gap_;
  double min_gain_;
  std::map<std::string, double> best_;
  int offers_ = 0;
  int accepted_novel_ = 0;
  int accepted_improved_ = 0;
};

}  // namespace xplain::search
