#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace xplain::util {

namespace {

// The accumulator registry.  Registration happens from static initializers
// (single-threaded, before main) but the pointers are read by every pool
// worker; relaxed atomics make that pattern TSan-clean by construction
// instead of by the "no registration after threads exist" convention —
// there is no ordering to enforce, a worker either sees the hook or the
// pre-registration nullptr.
std::atomic<PoolCapture> g_pool_capture{nullptr};
std::atomic<PoolAbsorb> g_pool_absorb{nullptr};

/// First-exception-wins slot shared by the pool workers of one
/// parallel_chunks call.  A named struct (rather than locals captured by
/// the worker lambda) so the mutex/payload relationship is visible to
/// clang's thread-safety analysis.
class ErrorSlot {
 public:
  void record(std::exception_ptr e) XPLAIN_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (!error_) error_ = std::move(e);
  }

  /// Callers only use this after the pool joined, but taking the lock
  /// anyway keeps the accessor correct by construction (and satisfies the
  /// analysis without an escape hatch).
  void rethrow_if_set() XPLAIN_EXCLUDES(mu_) {
    std::exception_ptr e;
    {
      MutexLock lock(&mu_);
      e = error_;
    }
    if (e) std::rethrow_exception(e);
  }

 private:
  Mutex mu_;
  std::exception_ptr error_ XPLAIN_GUARDED_BY(mu_);
};

}  // namespace

void register_pool_accumulator(PoolCapture capture, PoolAbsorb absorb) {
  g_pool_capture.store(capture, std::memory_order_relaxed);
  g_pool_absorb.store(absorb, std::memory_order_relaxed);
}

int resolve_workers(int workers) {
  if (workers > 0) return workers;
  // XPLAIN_WORKERS caps the "auto" pool size process-wide (containers and
  // CI runners advertise more hardware threads than they should use).  An
  // explicit positive `workers` argument always wins; unparsable or
  // non-positive values are ignored.
  if (const char* env = std::getenv("XPLAIN_WORKERS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0)
      return static_cast<int>(std::min<long>(v, 4096));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void parallel_chunks(
    std::size_t n, int workers,
    const std::function<void(std::size_t, std::size_t, int)>& fn) {
  if (n == 0) return;
  workers = std::min<std::size_t>(resolve_workers(workers), n);
  if (workers <= 1) {
    fn(0, n, 0);
    return;
  }
  // Dynamic chunking: small enough for load balance across slots of very
  // different cost (rejection sampling, LP solves), large enough that the
  // atomic fetch is noise.
  const std::size_t chunk =
      std::max<std::size_t>(1, n / (static_cast<std::size_t>(workers) * 8));
  std::atomic<std::size_t> next{0};
  ErrorSlot error;
  auto body = [&](int worker) {
    for (std::size_t begin = next.fetch_add(chunk); begin < n;
         begin = next.fetch_add(chunk)) {
      try {
        fn(begin, std::min(begin + chunk, n), worker);
      } catch (...) {
        error.record(std::current_exception());
        next.store(n);
      }
    }
  };
  const PoolCapture capture = g_pool_capture.load(std::memory_order_relaxed);
  const PoolAbsorb absorb = g_pool_absorb.load(std::memory_order_relaxed);
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  // One payload slot per spawned worker: its thread-local tallies, captured
  // on the worker right before it finishes, absorbed into the spawning
  // thread after the join (see register_pool_accumulator).  The join is the
  // synchronization point — each tallies[w] is written by exactly one
  // worker, then read by the spawning thread strictly after t.join().
  std::vector<std::vector<long>> tallies(workers);
  for (int w = 1; w < workers; ++w) {
    pool.emplace_back([&body, &tallies, capture, w] {
      body(w);
      if (capture) capture(tallies[w]);
    });
  }
  body(0);
  for (auto& t : pool) t.join();
  if (absorb)
    for (int w = 1; w < workers; ++w) absorb(tallies[w]);
  error.rethrow_if_set();
}

}  // namespace xplain::util
