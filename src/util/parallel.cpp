#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace xplain::util {

namespace {
PoolCapture g_pool_capture = nullptr;
PoolAbsorb g_pool_absorb = nullptr;
}  // namespace

void register_pool_accumulator(PoolCapture capture, PoolAbsorb absorb) {
  g_pool_capture = capture;
  g_pool_absorb = absorb;
}

int resolve_workers(int workers) {
  if (workers > 0) return workers;
  // XPLAIN_WORKERS caps the "auto" pool size process-wide (containers and
  // CI runners advertise more hardware threads than they should use).  An
  // explicit positive `workers` argument always wins; unparsable or
  // non-positive values are ignored.
  if (const char* env = std::getenv("XPLAIN_WORKERS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0)
      return static_cast<int>(std::min<long>(v, 4096));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void parallel_chunks(
    std::size_t n, int workers,
    const std::function<void(std::size_t, std::size_t, int)>& fn) {
  if (n == 0) return;
  workers = std::min<std::size_t>(resolve_workers(workers), n);
  if (workers <= 1) {
    fn(0, n, 0);
    return;
  }
  // Dynamic chunking: small enough for load balance across slots of very
  // different cost (rejection sampling, LP solves), large enough that the
  // atomic fetch is noise.
  const std::size_t chunk =
      std::max<std::size_t>(1, n / (static_cast<std::size_t>(workers) * 8));
  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mu;
  auto body = [&](int worker) {
    for (std::size_t begin = next.fetch_add(chunk); begin < n;
         begin = next.fetch_add(chunk)) {
      try {
        fn(begin, std::min(begin + chunk, n), worker);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        next.store(n);
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  // One payload slot per spawned worker: its thread-local tallies, captured
  // on the worker right before it finishes, absorbed into the spawning
  // thread after the join (see register_pool_accumulator).
  std::vector<std::vector<long>> tallies(workers);
  for (int w = 1; w < workers; ++w) {
    pool.emplace_back([&body, &tallies, w] {
      body(w);
      if (g_pool_capture) g_pool_capture(tallies[w]);
    });
  }
  body(0);
  for (auto& t : pool) t.join();
  if (g_pool_absorb)
    for (int w = 1; w < workers; ++w) g_pool_absorb(tallies[w]);
  if (error) std::rethrow_exception(error);
}

}  // namespace xplain::util
