// Shared worker-pool helper for the sampling hot loops.
//
// The contract every parallel stage in XPlain follows (first proven out by
// xplain::run_batch): work is split into index-addressed slots, each slot's
// randomness comes from a seed derived purely from (base seed, slot index),
// and slot results land in slot-indexed storage or are merged with exact
// (integer / order-independent) arithmetic.  Under that contract the output
// is bitwise identical for ANY worker count — parallelism changes only the
// wall clock, never the answer.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace xplain::util {

/// Thread-inclusive accumulator hook.  A layer that keeps thread-local
/// tallies (solver's LP counters) registers a pair of functions at
/// static-init time: when a pool worker finishes its share of a
/// parallel_chunks call, `capture` runs ON that worker (read and RESET its
/// thread-local tallies into the payload); after the join, `absorb` runs on
/// the spawning thread once per worker payload.  Tallies thereby flow up
/// the spawn tree instead of into a process-wide bucket, which is what
/// makes per-region counter deltas exact even when sibling regions run
/// concurrently.  util cannot depend on the registering layer, hence the
/// inversion; one registrant (re-registration replaces it).
using PoolCapture = void (*)(std::vector<long>&);
using PoolAbsorb = void (*)(const std::vector<long>&);
void register_pool_accumulator(PoolCapture capture, PoolAbsorb absorb);

/// Resolves a worker-count option: n <= 0 means "one per hardware thread",
/// unless the XPLAIN_WORKERS environment variable holds a positive integer,
/// which then overrides the hardware default (an explicit positive argument
/// always wins over the environment).
int resolve_workers(int workers);

/// Runs fn(begin, end, worker) over dynamic chunks of [0, n) on `workers`
/// threads (after resolve_workers; 1 or tiny n degenerates to an inline
/// call).  `worker` is in [0, workers) — index per-worker accumulators with
/// it.  Exceptions thrown by fn propagate to the caller (first one wins).
void parallel_chunks(
    std::size_t n, int workers,
    const std::function<void(std::size_t, std::size_t, int)>& fn);

}  // namespace xplain::util
