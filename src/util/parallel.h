// Shared worker-pool helper for the sampling hot loops.
//
// The contract every parallel stage in XPlain follows (first proven out by
// xplain::run_batch): work is split into index-addressed slots, each slot's
// randomness comes from a seed derived purely from (base seed, slot index),
// and slot results land in slot-indexed storage or are merged with exact
// (integer / order-independent) arithmetic.  Under that contract the output
// is bitwise identical for ANY worker count — parallelism changes only the
// wall clock, never the answer.
#pragma once

#include <cstddef>
#include <functional>

namespace xplain::util {

/// Resolves a worker-count option: n <= 0 means "one per hardware thread",
/// unless the XPLAIN_WORKERS environment variable holds a positive integer,
/// which then overrides the hardware default (an explicit positive argument
/// always wins over the environment).
int resolve_workers(int workers);

/// Runs fn(begin, end, worker) over dynamic chunks of [0, n) on `workers`
/// threads (after resolve_workers; 1 or tiny n degenerates to an inline
/// call).  `worker` is in [0, workers) — index per-worker accumulators with
/// it.  Exceptions thrown by fn propagate to the caller (first one wins).
void parallel_chunks(
    std::size_t n, int workers,
    const std::function<void(std::size_t, std::size_t, int)>& fn);

}  // namespace xplain::util
