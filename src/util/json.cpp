#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <system_error>

namespace xplain::util {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no NaN/Inf
    return;
  }
  // Integers print exactly (the range check must precede the cast: a
  // float-to-integer conversion outside long long's range is UB);
  // everything else via to_chars' shortest round-trip form, which is also
  // locale-independent — printf-family %g honors LC_NUMERIC and would emit
  // "0,5" under e.g. de_DE.
  if (std::fabs(v) < 1e15 &&
      v == static_cast<double>(static_cast<long long>(v))) {
    out += std::to_string(static_cast<long long>(v));
    return;
  }
  char buf[40];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

}  // namespace

void Json::set(const std::string& key, Json v) {
  kind_ = Kind::kObject;
  for (auto& [k, old] : obj_) {
    if (k == key) {
      old = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

const Json* Json::find(const std::string& key) const {
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad(indent > 0 ? indent * (depth + 1) : 0, ' ');
  const std::string close_pad(indent > 0 ? indent * depth : 0, ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: append_number(out, num_); break;
    case Kind::kString: append_escaped(out, str_); break;
    case Kind::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        out += i ? "," : "";
        out += nl;
        out += pad;
        arr_[i].dump_to(out, indent, depth + 1);
      }
      out += nl;
      out += close_pad;
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        out += first ? "" : ",";
        first = false;
        out += nl;
        out += pad;
        append_escaped(out, k);
        out += indent > 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
      }
      out += nl;
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

struct Parser {
  const char* p;
  const char* end;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
      ++p;
  }

  bool literal(const char* lit) {
    const char* q = p;
    while (*lit) {
      if (q >= end || *q != *lit) return false;
      ++q, ++lit;
    }
    p = q;
    return true;
  }

  bool parse_string(std::string& out) {
    if (p >= end || *p != '"') return false;
    ++p;
    out.clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        if (++p >= end) return false;
        switch (*p) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (end - p < 5) return false;
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char c = p[i];
              code <<= 4;
              if (c >= '0' && c <= '9') code |= c - '0';
              else if (c >= 'a' && c <= 'f') code |= c - 'a' + 10;
              else if (c >= 'A' && c <= 'F') code |= c - 'A' + 10;
              else return false;
            }
            p += 4;
            // Basic-plane code points only (we never emit surrogates).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return false;
        }
        ++p;
      } else {
        out += *p++;
      }
    }
    if (p >= end) return false;
    ++p;  // closing quote
    return true;
  }

  bool parse_value(Json& out) {
    skip_ws();
    if (p >= end) return false;
    switch (*p) {
      case 'n': return literal("null") ? (out = Json(), true) : false;
      case 't': return literal("true") ? (out = Json(true), true) : false;
      case 'f': return literal("false") ? (out = Json(false), true) : false;
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Json(std::move(s));
        return true;
      }
      case '[': {
        ++p;
        out = Json::array();
        skip_ws();
        if (p < end && *p == ']') return ++p, true;
        while (true) {
          Json v;
          if (!parse_value(v)) return false;
          out.push(std::move(v));
          skip_ws();
          if (p >= end) return false;
          if (*p == ',') {
            ++p;
            continue;
          }
          if (*p == ']') return ++p, true;
          return false;
        }
      }
      case '{': {
        ++p;
        out = Json::object();
        skip_ws();
        if (p < end && *p == '}') return ++p, true;
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (p >= end || *p != ':') return false;
          ++p;
          Json v;
          if (!parse_value(v)) return false;
          out.set(key, std::move(v));
          skip_ws();
          if (p >= end) return false;
          if (*p == ',') {
            ++p;
            continue;
          }
          if (*p == '}') return ++p, true;
          return false;
        }
      }
      default: {
        // from_chars is locale-independent (strtod honors LC_NUMERIC and
        // would reject "1.5" under a comma-decimal locale) and does not
        // accept hex floats; it does parse "inf"/"nan", which JSON forbids
        // — the isfinite check rejects those.
        double v = 0.0;
        const auto res = std::from_chars(p, end, v);
        if (res.ec != std::errc() || res.ptr == p || !std::isfinite(v))
          return false;
        p = res.ptr;
        out = Json(v);
        return true;
      }
    }
  }
};

}  // namespace

std::optional<Json> Json::parse(const std::string& text) {
  Parser parser{text.data(), text.data() + text.size()};
  Json out;
  if (!parser.parse_value(out)) return std::nullopt;
  parser.skip_ws();
  if (parser.p != parser.end) return std::nullopt;  // trailing garbage
  return out;
}

}  // namespace xplain::util
