// Minimal leveled logger; kept deliberately tiny (no dependencies) per the
// project's substrate rule.  Thread-safety: the level is a relaxed atomic
// (a config flag — racing readers may see a stale level for a few
// messages, which is harmless and TSan-clean by construction); each
// log_line is a single fprintf, which POSIX makes atomic per call, so
// concurrent lines interleave but never tear.
#pragma once

#include <sstream>
#include <string>

namespace xplain::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one formatted line to stderr (with level tag and elapsed time).
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, os_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace xplain::util

#define XPLAIN_LOG(level)                                 \
  if (::xplain::util::log_level() > (level)) {            \
  } else                                                  \
    ::xplain::util::detail::LogStream(level)

#define XPLAIN_DEBUG XPLAIN_LOG(::xplain::util::LogLevel::kDebug)
#define XPLAIN_INFO XPLAIN_LOG(::xplain::util::LogLevel::kInfo)
#define XPLAIN_WARN XPLAIN_LOG(::xplain::util::LogLevel::kWarn)
#define XPLAIN_ERROR XPLAIN_LOG(::xplain::util::LogLevel::kError)
