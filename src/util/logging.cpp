#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace xplain::util {

namespace {
// Intentionally racy config flag, NOT a synchronization point: a thread
// observing a stale level for a few messages is harmless, so every access
// is memory_order_relaxed — the atomic exists to keep the race defined
// (TSan-clean), not to order anything.
// xplain-lint: allow(no-raw-mutex) — no mutex here at all, by design.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

double elapsed_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& msg) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::fprintf(stderr, "[%8.3f] %s %s\n", elapsed_seconds(), tag(level),
               msg.c_str());
}

}  // namespace xplain::util
