#include "util/random.h"

#include <cassert>

namespace xplain::util {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int Rng::uniform_int(int lo, int hi) {
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::vector<double> Rng::uniform_point(const std::vector<double>& lo,
                                       const std::vector<double>& hi) {
  assert(lo.size() == hi.size());
  std::vector<double> p(lo.size());
  for (std::size_t i = 0; i < lo.size(); ++i) p[i] = uniform(lo[i], hi[i]);
  return p;
}

Rng Rng::fork() {
  // SplitMix-style decorrelation of the child seed.
  std::uint64_t s = engine_();
  s ^= s >> 30;
  s *= 0xBF58476D1CE4E5B9ull;
  s ^= s >> 27;
  return Rng(s);
}

}  // namespace xplain::util
