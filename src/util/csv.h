// Tiny CSV writer used by benches to dump reproducible series (one file per
// paper figure). Values are written with enough precision to round-trip.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace xplain::util {

class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);

  /// Appends one row; must match the header arity.
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with %.10g.
  void row_numeric(const std::vector<double>& cells);

  bool ok() const { return static_cast<bool>(out_); }

 private:
  std::ofstream out_;
  std::size_t arity_;
};

/// Formats a double compactly (%.10g).
std::string format_double(double v);

}  // namespace xplain::util
