// A minimal JSON value: build, dump, parse.  Just enough machinery for the
// repo's machine-readable outputs (the experiment engine's ExperimentResult
// serialization, BENCH_*.json) to be written AND read back — round-trips
// are testable, and tools/bench_compare.py's consumers stay in sync with
// one producer.
//
// Deliberately small: ordered object members (deterministic output),
// doubles printed with max_digits10 so numeric round-trips are exact,
// UTF-8 strings passed through with standard escapes.  Not a general JSON
// library — no comments, no NaN/Inf (serialized as null), no \u surrogate
// pairs on output.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace xplain::util {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(double v) : kind_(Kind::kNumber), num_(v) {}
  Json(int v) : kind_(Kind::kNumber), num_(v) {}
  Json(long v) : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  Json(const char* s) : kind_(Kind::kString), str_(s) {}
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}

  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Scalar accessors with defaults (wrong-kind access yields the default —
  /// consumers validate shape via find()/size() first).
  bool as_bool(bool dflt = false) const {
    return kind_ == Kind::kBool ? bool_ : dflt;
  }
  double as_num(double dflt = 0.0) const {
    return kind_ == Kind::kNumber ? num_ : dflt;
  }
  const std::string& as_str() const { return str_; }

  /// Array access.
  void push(Json v) { arr_.push_back(std::move(v)); }
  std::size_t size() const { return arr_.size(); }
  const Json& at(std::size_t i) const { return arr_[i]; }
  const std::vector<Json>& items() const { return arr_; }

  /// Object access (insertion-ordered; set() appends or overwrites).
  void set(const std::string& key, Json v);
  const Json* find(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return obj_;
  }

  /// Serializes; indent > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 2) const;

  /// Parses a JSON document; std::nullopt on any syntax error or trailing
  /// garbage.
  static std::optional<Json> parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace xplain::util
