// Clang thread-safety analysis surface for XPlain's concurrent state.
//
// The determinism contract (util/parallel.h) and every mutex in the tree
// were, until this header, defended by convention and review only.  These
// macros let clang's -Wthread-safety prove the lock discipline at compile
// time: every shared member is declared XPLAIN_GUARDED_BY(its mutex), every
// function that needs a lock held declares XPLAIN_REQUIRES(it), and the CI
// clang job turns violations into build errors.  Under gcc (the default
// local toolchain) everything expands to nothing, so the annotations cost
// zero and the tree stays buildable everywhere.
//
// libstdc++'s std::mutex carries no capability attributes, so the analysis
// cannot see through it: locking a raw std::mutex never discharges a
// guarded_by obligation.  util::Mutex / util::MutexLock below are the
// thinnest possible annotated wrappers (the Abseil/Chromium idiom) — they
// ARE a std::mutex / lock_guard at runtime, but the capability attributes
// make them visible to the analysis.  xplain_lint's `no-raw-mutex` rule
// bans std::mutex members in src/ so new shared state cannot silently opt
// out of checking.
#pragma once

#include <mutex>

// Attribute plumbing.  The capability attributes exist only on clang; the
// __has_attribute probe (rather than a bare __clang__ test) keeps the
// header honest on any future compiler that grows or drops them.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define XPLAIN_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef XPLAIN_THREAD_ANNOTATION
#define XPLAIN_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Declares a type to be a lockable capability ("mutex").
#define XPLAIN_CAPABILITY(x) XPLAIN_THREAD_ANNOTATION(capability(x))
/// Declares an RAII type that acquires in its ctor / releases in its dtor.
#define XPLAIN_SCOPED_CAPABILITY XPLAIN_THREAD_ANNOTATION(scoped_lockable)

/// Data member is protected by the given mutex: every read/write must hold
/// it (reads: shared; writes: exclusive).
#define XPLAIN_GUARDED_BY(x) XPLAIN_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose *pointee* is protected by the given mutex.
#define XPLAIN_PT_GUARDED_BY(x) XPLAIN_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the caller to already hold the mutex(es).
#define XPLAIN_REQUIRES(...) \
  XPLAIN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the mutex(es) and returns with them held.
#define XPLAIN_ACQUIRE(...) \
  XPLAIN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the mutex(es) the caller held on entry.
#define XPLAIN_RELEASE(...) \
  XPLAIN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires on success (first argument is the success value).
#define XPLAIN_TRY_ACQUIRE(...) \
  XPLAIN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Caller must NOT hold the mutex(es) — documents non-reentrancy and lets
/// the analysis reject self-deadlock.
#define XPLAIN_EXCLUDES(...) \
  XPLAIN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the given mutex (accessor pattern).
#define XPLAIN_RETURN_CAPABILITY(x) XPLAIN_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: function body is not analyzed.  Use only with a comment
/// explaining why the analysis cannot model the pattern.
#define XPLAIN_NO_THREAD_SAFETY_ANALYSIS \
  XPLAIN_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace xplain::util {

/// std::mutex with capability attributes: same size, same semantics, but
/// clang's analysis can pair lock()/unlock() with XPLAIN_GUARDED_BY
/// obligations.  All mutex members in src/ use this type (enforced by
/// xplain_lint's no-raw-mutex rule).
class XPLAIN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() XPLAIN_ACQUIRE() { mu_.lock(); }
  void unlock() XPLAIN_RELEASE() { mu_.unlock(); }
  bool try_lock() XPLAIN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for util::Mutex (std::lock_guard is as invisible to the
/// analysis as std::mutex is).  Takes a pointer so the call site reads
/// MutexLock lock(&mu_) — harder to accidentally copy a mutex.
class XPLAIN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) XPLAIN_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() XPLAIN_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

}  // namespace xplain::util
