// Deterministic RNG wrapper. Every stochastic component in XPlain takes an
// explicit Rng so experiments are reproducible bit-for-bit from a seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace xplain::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);

  /// Standard normal scaled by (mean, stddev).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli with probability p of true.
  bool bernoulli(double p);

  /// A point uniform in the axis-aligned box [lo_i, hi_i) per dimension.
  std::vector<double> uniform_point(const std::vector<double>& lo,
                                    const std::vector<double>& hi);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(
          uniform_int(0, static_cast<int>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Fork a child RNG with a decorrelated seed (for per-component streams).
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace xplain::util
