// Deterministic RNG wrapper. Every stochastic component in XPlain takes an
// explicit Rng so experiments are reproducible bit-for-bit from a seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace xplain::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);

  /// Standard normal scaled by (mean, stddev).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli with probability p of true.
  bool bernoulli(double p);

  /// A point uniform in the axis-aligned box [lo_i, hi_i) per dimension.
  std::vector<double> uniform_point(const std::vector<double>& lo,
                                    const std::vector<double>& hi);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(
          uniform_int(0, static_cast<int>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Fork a child RNG with a decorrelated seed (for per-component streams).
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

  /// Derives the seed for an index-addressed work slot from a base seed.
  /// A slot's stream depends only on (base, index), which is what makes
  /// the parallel sampling loops bitwise deterministic for any worker
  /// count.  The combiner MIXES rather than offsets: run_batch's
  /// per-instance salts are themselves golden-ratio offsets of one seed,
  /// and a purely additive (base, index) scheme would hand (instance i,
  /// slot s+1) and (instance i+1, slot s) the same stream.
  static std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
    std::uint64_t z = base ^ (0x9E3779B97F4A7C15ull * (index + 1));
    z ^= z >> 30;
    z *= 0xBF58476D1CE4E5B9ull;
    z ^= z >> 27;
    z *= 0x94D049BB133111EBull;
    z ^= z >> 31;
    return z;
  }

 private:
  std::mt19937_64 engine_;
};

/// Tiny splitmix64 stream for per-slot sampling.  Standing up a fresh
/// mt19937_64 costs ~2.4us of state initialization — far too heavy for one
/// RNG per sample slot; splitmix64 initializes for free, passes the
/// statistical bar for uniform box sampling, and keeps the slot-stream
/// purity (value sequence is a pure function of the seed) the parallel
/// determinism contract needs.
class SlotRng {
 public:
  /// The seed is passed through a full mixing finalizer as defense in
  /// depth: a caller seeding with raw golden-ratio offsets (the stride
  /// splitmix64 uses internally) would otherwise make adjacent slots'
  /// streams one-step-shifted copies of each other.
  explicit SlotRng(std::uint64_t seed) {
    seed ^= seed >> 33;
    seed *= 0xFF51AFD7ED558CCDull;
    seed ^= seed >> 33;
    seed *= 0xC4CEB9FE1A85EC53ull;
    seed ^= seed >> 33;
    state_ = seed;
  }

  std::uint64_t next() {
    state_ += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state_;
    z ^= z >> 30;
    z *= 0xBF58476D1CE4E5B9ull;
    z ^= z >> 27;
    z *= 0x94D049BB133111EBull;
    z ^= z >> 31;
    return z;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    const double u = static_cast<double>(next() >> 11) * 0x1.0p-53;
    return lo + (hi - lo) * u;
  }

  /// A point uniform in the axis-aligned box [lo_i, hi_i) per dimension.
  std::vector<double> uniform_point(const std::vector<double>& lo,
                                    const std::vector<double>& hi) {
    std::vector<double> p(lo.size());
    for (std::size_t i = 0; i < lo.size(); ++i) p[i] = uniform(lo[i], hi[i]);
    return p;
  }

 private:
  std::uint64_t state_;
};

}  // namespace xplain::util
