// Fixed-width ASCII table printer: benches use it to print the same rows the
// paper's figures/tables report.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "util/csv.h"  // format_double, used by callers formatting cells

namespace xplain::util {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);
  void add_row_numeric(const std::vector<double>& cells);

  /// Renders with a header rule and per-column padding.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace xplain::util
