#include "util/table.h"

#include <algorithm>
#include <cassert>

#include "util/csv.h"

namespace xplain::util {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> s;
  s.reserve(cells.size());
  for (double v : cells) s.push_back(format_double(v));
  add_row(std::move(s));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << row[c]
         << std::string(width[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit(columns_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace xplain::util
