#include "util/csv.h"

#include <cassert>
#include <cstdio>

namespace xplain::util {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : out_(path), arity_(columns.size()) {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << columns[i];
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  assert(cells.size() == arity_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
}

void CsvWriter::row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> s;
  s.reserve(cells.size());
  for (double v : cells) s.push_back(format_double(v));
  row(s);
}

}  // namespace xplain::util
