// Derivative-free search analyzer.
//
// MetaOpt's exact bi-level rewriting does not scale past small instances,
// and the paper notes plain random search "may not even find an adversarial
// point" — this analyzer sits in between: multi-start coordinate pattern
// search (adaptive step halving) over the evaluator's quantized input box,
// seeded from structured corners (threshold values, capacity fractions)
// plus random restarts.  It is the scalable backend; the MILP analyzers
// cross-validate it on small instances.
#pragma once

#include "analyzer/analyzer.h"
#include "util/random.h"

namespace xplain::analyzer {

struct SearchOptions {
  int restarts = 24;          // multi-start count
  int max_iters = 400;        // pattern-search evaluations per start
  double init_step_frac = 0.25;  // initial step as a fraction of box width
  double min_step_frac = 1e-3;
  std::uint64_t seed = 1234;
  /// Structured seed values tried in every dimension (fractions of the box
  /// width) in addition to random starts; heuristic thresholds live at such
  /// fractions, which is where DP/FF break.
  std::vector<double> seed_fracs = {0.01, 0.26, 0.49, 0.5, 0.51, 0.99};
  /// Random presample whose best points become extra starts — this makes
  /// the pattern search dominate the pure-random baseline by construction.
  int presamples = 300;
  int presample_starts = 4;
  /// Worker threads for the presample scoring loop; <= 0 = one per
  /// hardware thread.  Presample points are drawn sequentially from the
  /// analyzer's stream (identical to the single-threaded sequence); only
  /// the gap scoring fans out, into slot-indexed storage: bitwise
  /// deterministic for any worker count.
  int workers = 1;
};

class SearchAnalyzer : public HeuristicAnalyzer {
 public:
  explicit SearchAnalyzer(SearchOptions opts = {}) : opts_(opts) {}

  std::optional<AdversarialExample> find_adversarial(
      const GapEvaluator& eval, double min_gap,
      const std::vector<Box>& excluded) override;

  std::string name() const override { return "pattern_search"; }

  /// Pure random sampling baseline (the strawman the paper dismisses);
  /// exposed for the ablation bench.
  static std::optional<AdversarialExample> random_baseline(
      const GapEvaluator& eval, double min_gap, const std::vector<Box>& excluded,
      int samples, std::uint64_t seed);

 private:
  SearchOptions opts_;
};

}  // namespace xplain::analyzer
