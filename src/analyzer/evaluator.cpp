#include "analyzer/evaluator.h"

#include <algorithm>
#include <sstream>

namespace xplain::analyzer {

bool Box::contains(const std::vector<double>& x, double tol) const {
  if (x.size() != lo.size()) return false;
  for (std::size_t i = 0; i < lo.size(); ++i)
    if (x[i] < lo[i] - tol || x[i] > hi[i] + tol) return false;
  return true;
}

double Box::volume() const {
  double v = 1.0;
  for (std::size_t i = 0; i < lo.size(); ++i)
    v *= std::max(0.0, hi[i] - lo[i]);
  return v;
}

Box Box::intersect(const Box& o) const {
  Box r;
  r.lo.resize(lo.size());
  r.hi.resize(hi.size());
  for (std::size_t i = 0; i < lo.size(); ++i) {
    r.lo[i] = std::max(lo[i], o.lo[i]);
    r.hi[i] = std::min(hi[i], o.hi[i]);
  }
  return r;
}

bool Box::empty() const {
  for (std::size_t i = 0; i < lo.size(); ++i)
    if (lo[i] > hi[i]) return true;
  return lo.empty();
}

std::vector<double> Box::center() const {
  std::vector<double> c(lo.size());
  for (std::size_t i = 0; i < lo.size(); ++i) c[i] = 0.5 * (lo[i] + hi[i]);
  return c;
}

std::string Box::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < lo.size(); ++i) {
    if (i) os << " x ";
    os << "[" << lo[i] << ", " << hi[i] << "]";
  }
  return os.str();
}

std::vector<std::string> GapEvaluator::dim_names() const {
  std::vector<std::string> names(dim());
  for (int i = 0; i < dim(); ++i) names[i] = "x" + std::to_string(i);
  return names;
}

}  // namespace xplain::analyzer
