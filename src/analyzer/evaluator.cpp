#include "analyzer/evaluator.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace xplain::analyzer {

bool Box::contains(const std::vector<double>& x, double tol) const {
  if (x.size() != lo.size()) return false;
  for (std::size_t i = 0; i < lo.size(); ++i)
    if (x[i] < lo[i] - tol || x[i] > hi[i] + tol) return false;
  return true;
}

double Box::volume() const {
  double v = 1.0;
  for (std::size_t i = 0; i < lo.size(); ++i)
    v *= std::max(0.0, hi[i] - lo[i]);
  return v;
}

Box Box::intersect(const Box& o) const {
  Box r;
  r.lo.resize(lo.size());
  r.hi.resize(hi.size());
  for (std::size_t i = 0; i < lo.size(); ++i) {
    r.lo[i] = std::max(lo[i], o.lo[i]);
    r.hi[i] = std::min(hi[i], o.hi[i]);
  }
  return r;
}

bool Box::empty() const {
  for (std::size_t i = 0; i < lo.size(); ++i)
    if (lo[i] > hi[i]) return true;
  return lo.empty();
}

std::vector<double> Box::center() const {
  std::vector<double> c(lo.size());
  for (std::size_t i = 0; i < lo.size(); ++i) c[i] = 0.5 * (lo[i] + hi[i]);
  return c;
}

std::string Box::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < lo.size(); ++i) {
    if (i) os << " x ";
    os << "[" << lo[i] << ", " << hi[i] << "]";
  }
  return os.str();
}

std::vector<std::string> GapEvaluator::dim_names() const {
  std::vector<std::string> names(dim());
  for (int i = 0; i < dim(); ++i) names[i] = "x" + std::to_string(i);
  return names;
}

// ---------------------------------------------------------------------------
// Demand pinning.
// ---------------------------------------------------------------------------

DpGapEvaluator::DpGapEvaluator(te::TeInstance inst, te::DpConfig cfg,
                               double quantum)
    : inst_(std::move(inst)), cfg_(cfg), quantum_(quantum) {}

int DpGapEvaluator::dim() const { return inst_.num_pairs(); }

Box DpGapEvaluator::input_box() const {
  Box b;
  b.lo.assign(dim(), 0.0);
  b.hi.assign(dim(), inst_.d_max);
  return b;
}

double DpGapEvaluator::gap(const std::vector<double>& x) const {
  return te::dp_gap(inst_, cfg_, x);
}

std::vector<double> DpGapEvaluator::quantize(
    const std::vector<double>& x) const {
  std::vector<double> q(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    q[i] = std::clamp(std::round(x[i] / quantum_) * quantum_, 0.0,
                      inst_.d_max);
  return q;
}

std::vector<std::string> DpGapEvaluator::dim_names() const {
  std::vector<std::string> names;
  names.reserve(inst_.num_pairs());
  for (const auto& p : inst_.pairs) names.push_back("d[" + p.name() + "]");
  return names;
}

// ---------------------------------------------------------------------------
// Vector bin packing.
// ---------------------------------------------------------------------------

VbpGapEvaluator::VbpGapEvaluator(vbp::VbpInstance inst, vbp::VbpHeuristic h,
                                 double quantum)
    : inst_(std::move(inst)), h_(h), quantum_(quantum) {}

int VbpGapEvaluator::dim() const { return inst_.input_dim(); }

Box VbpGapEvaluator::input_box() const {
  Box b;
  b.lo.assign(dim(), 0.0);
  b.hi.assign(dim(), inst_.capacity);
  return b;
}

double VbpGapEvaluator::gap(const std::vector<double>& x) const {
  return vbp::vbp_gap(inst_, x, h_);
}

std::vector<double> VbpGapEvaluator::quantize(
    const std::vector<double>& x) const {
  std::vector<double> q(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    q[i] = std::clamp(std::round(x[i] / quantum_) * quantum_, 0.0,
                      inst_.capacity);
  return q;
}

std::vector<std::string> VbpGapEvaluator::dim_names() const {
  std::vector<std::string> names;
  for (int b = 0; b < inst_.num_balls; ++b)
    for (int t = 0; t < inst_.dims; ++t) {
      std::string n = "Y[" + std::to_string(b) + "]";
      if (inst_.dims > 1) n += "[" + std::to_string(t) + "]";
      names.push_back(std::move(n));
    }
  return names;
}

std::string VbpGapEvaluator::name() const {
  return std::string("vbp_") + vbp::to_string(h_);
}

}  // namespace xplain::analyzer
