// HeuristicAnalyzer: the MetaOpt-shaped interface (paper §2).
//
// Given a gap evaluator and a set of already-found adversarial subspaces to
// exclude, an analyzer returns one input instance where the heuristic
// underperforms — exactly the contract XPlain's adversarial subspace
// generator builds on (find -> expand -> exclude -> repeat, §5.2).
#pragma once

#include <optional>
#include <vector>

#include "analyzer/evaluator.h"

namespace xplain::analyzer {

struct AdversarialExample {
  std::vector<double> input;
  double gap = 0.0;
};

class HeuristicAnalyzer {
 public:
  virtual ~HeuristicAnalyzer() = default;

  /// Finds an input with gap >= min_gap outside every box in `excluded`;
  /// nullopt when no such input is found (search exhausted / proven none).
  virtual std::optional<AdversarialExample> find_adversarial(
      const GapEvaluator& eval, double min_gap,
      const std::vector<Box>& excluded) = 0;

  virtual std::string name() const = 0;
};

}  // namespace xplain::analyzer
