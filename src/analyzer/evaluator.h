// GapEvaluator: the function the whole XPlain pipeline revolves around.
//
// An evaluator wraps a (heuristic, benchmark, problem instance) triple and
// exposes gap(input) = how much worse the heuristic performs than the
// benchmark at that input point.  The subspace generator samples it, the
// search analyzer maximizes it, and the significance checker tests it.
//
// This layer is heuristic-agnostic: concrete evaluators live with their
// case studies under src/cases (cases adapt themselves to this interface,
// never the other way around).
#pragma once

#include <string>
#include <vector>

namespace xplain::analyzer {

/// Axis-aligned input box.
struct Box {
  std::vector<double> lo, hi;

  int dim() const { return static_cast<int>(lo.size()); }
  bool contains(const std::vector<double>& x, double tol = 0.0) const;
  double volume() const;
  /// Intersection; empty result boxes have lo > hi in some dimension.
  Box intersect(const Box& o) const;
  bool empty() const;
  std::vector<double> center() const;
  std::string to_string() const;
};

class GapEvaluator {
 public:
  virtual ~GapEvaluator() = default;

  /// Input dimensionality.
  virtual int dim() const = 0;
  /// The input space the analyzer searches.
  virtual Box input_box() const = 0;
  /// Heuristic-vs-benchmark gap at `x` (>= 0 in the usual case; 0 for
  /// points the heuristic cannot run on).
  virtual double gap(const std::vector<double>& x) const = 0;
  /// Snaps a point to the evaluator's input quantization (identity when the
  /// input space is continuous).  The MILP analyzers only certify points on
  /// their grid.
  virtual std::vector<double> quantize(const std::vector<double>& x) const {
    return x;
  }
  /// Names for each input dimension (for explanations and trees).
  virtual std::vector<std::string> dim_names() const;
  virtual std::string name() const = 0;
};

}  // namespace xplain::analyzer
