// GapEvaluator: the function the whole XPlain pipeline revolves around.
//
// An evaluator wraps a (heuristic, benchmark, problem instance) triple and
// exposes gap(input) = how much worse the heuristic performs than the
// benchmark at that input point.  The subspace generator samples it, the
// search analyzer maximizes it, and the significance checker tests it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "te/demand_pinning.h"
#include "vbp/optimal.h"

namespace xplain::analyzer {

/// Axis-aligned input box.
struct Box {
  std::vector<double> lo, hi;

  int dim() const { return static_cast<int>(lo.size()); }
  bool contains(const std::vector<double>& x, double tol = 0.0) const;
  double volume() const;
  /// Intersection; empty result boxes have lo > hi in some dimension.
  Box intersect(const Box& o) const;
  bool empty() const;
  std::vector<double> center() const;
  std::string to_string() const;
};

class GapEvaluator {
 public:
  virtual ~GapEvaluator() = default;

  /// Input dimensionality.
  virtual int dim() const = 0;
  /// The input space the analyzer searches.
  virtual Box input_box() const = 0;
  /// Heuristic-vs-benchmark gap at `x` (>= 0 in the usual case; 0 for
  /// points the heuristic cannot run on).
  virtual double gap(const std::vector<double>& x) const = 0;
  /// Snaps a point to the evaluator's input quantization (identity when the
  /// input space is continuous).  The MILP analyzers only certify points on
  /// their grid.
  virtual std::vector<double> quantize(const std::vector<double>& x) const {
    return x;
  }
  /// Names for each input dimension (for explanations and trees).
  virtual std::vector<std::string> dim_names() const;
  virtual std::string name() const = 0;
};

/// Demand Pinning vs optimal max-flow on a TE instance.
class DpGapEvaluator : public GapEvaluator {
 public:
  DpGapEvaluator(te::TeInstance inst, te::DpConfig cfg,
                 double quantum = 1.0);

  int dim() const override;
  Box input_box() const override;
  double gap(const std::vector<double>& x) const override;
  std::vector<double> quantize(const std::vector<double>& x) const override;
  std::vector<std::string> dim_names() const override;
  std::string name() const override { return "demand_pinning"; }

  const te::TeInstance& instance() const { return inst_; }
  const te::DpConfig& config() const { return cfg_; }

 private:
  te::TeInstance inst_;
  te::DpConfig cfg_;
  double quantum_;
};

/// A VBP heuristic vs exact optimal packing.
class VbpGapEvaluator : public GapEvaluator {
 public:
  VbpGapEvaluator(vbp::VbpInstance inst,
                  vbp::VbpHeuristic h = vbp::VbpHeuristic::kFirstFit,
                  double quantum = 0.01);

  int dim() const override;
  Box input_box() const override;
  double gap(const std::vector<double>& x) const override;
  std::vector<double> quantize(const std::vector<double>& x) const override;
  std::vector<std::string> dim_names() const override;
  std::string name() const override;

  const vbp::VbpInstance& instance() const { return inst_; }
  vbp::VbpHeuristic heuristic() const { return h_; }

 private:
  vbp::VbpInstance inst_;
  vbp::VbpHeuristic h_;
  double quantum_;
};

}  // namespace xplain::analyzer
