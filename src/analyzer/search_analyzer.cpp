#include "analyzer/search_analyzer.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/parallel.h"

namespace xplain::analyzer {

namespace {

bool excluded_point(const std::vector<Box>& excluded,
                    const std::vector<double>& x) {
  for (const auto& b : excluded)
    if (b.contains(x)) return true;
  return false;
}

// Gap with exclusion: excluded points score -inf so the search leaves them.
double score(const GapEvaluator& eval, const std::vector<Box>& excluded,
             const std::vector<double>& x) {
  if (excluded_point(excluded, x))
    return -std::numeric_limits<double>::infinity();
  return eval.gap(x);
}

}  // namespace

std::optional<AdversarialExample> SearchAnalyzer::find_adversarial(
    const GapEvaluator& eval, double min_gap, const std::vector<Box>& excluded) {
  const Box box = eval.input_box();
  const int n = box.dim();
  util::Rng rng(opts_.seed);

  AdversarialExample best;
  best.gap = -std::numeric_limits<double>::infinity();

  // Starting points: (1) the best few of a random presample, (2) structured
  // seeds (box-width fractions, where heuristic thresholds live), (3) random
  // restarts.
  std::vector<std::vector<double>> starts;
  {
    // The points are drawn sequentially from the analyzer's stream (cheap,
    // and keeps the sample sequence identical to the single-threaded code);
    // only the expensive gap scoring fans out.  Scores land in slot-indexed
    // storage, so the chosen starts are bitwise identical for any worker
    // count.
    std::vector<std::pair<double, std::vector<double>>> pre;
    pre.reserve(opts_.presamples);
    for (int s = 0; s < opts_.presamples; ++s)
      pre.emplace_back(0.0, eval.quantize(rng.uniform_point(box.lo, box.hi)));
    util::parallel_chunks(
        pre.size(), opts_.workers,
        [&](std::size_t begin, std::size_t end, int) {
          for (std::size_t s = begin; s < end; ++s)
            pre[s].first = score(eval, excluded, pre[s].second);
        });
    std::partial_sort(pre.begin(),
                      pre.begin() + std::min<std::size_t>(
                                        pre.size(), opts_.presample_starts),
                      pre.end(), [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
    for (int s = 0;
         s < opts_.presample_starts && s < static_cast<int>(pre.size()); ++s)
      starts.push_back(std::move(pre[s].second));
  }
  for (double fa : opts_.seed_fracs) {
    for (double fb : opts_.seed_fracs) {
      std::vector<double> x(n);
      for (int i = 0; i < n; ++i) {
        const double f = (i % 2 == 0) ? fa : fb;
        x[i] = box.lo[i] + f * (box.hi[i] - box.lo[i]);
      }
      starts.push_back(eval.quantize(x));
      if (static_cast<int>(starts.size()) >= 3 * opts_.restarts / 4) break;
    }
    if (static_cast<int>(starts.size()) >= 3 * opts_.restarts / 4) break;
  }
  while (static_cast<int>(starts.size()) < opts_.restarts)
    starts.push_back(eval.quantize(rng.uniform_point(box.lo, box.hi)));

  for (const auto& start : starts) {
    std::vector<double> x = start;
    double fx = score(eval, excluded, x);
    double step = opts_.init_step_frac;
    int iters = 0;
    while (step >= opts_.min_step_frac && iters < opts_.max_iters) {
      bool improved = false;
      for (int i = 0; i < n && iters < opts_.max_iters; ++i) {
        const double width = box.hi[i] - box.lo[i];
        if (width <= 0) continue;
        for (double dir : {+1.0, -1.0}) {
          std::vector<double> y = x;
          y[i] = std::clamp(y[i] + dir * step * width, box.lo[i], box.hi[i]);
          y = eval.quantize(y);
          if (y[i] == x[i]) continue;
          ++iters;
          const double fy = score(eval, excluded, y);
          if (fy > fx + 1e-12) {
            x = std::move(y);
            fx = fy;
            improved = true;
            break;
          }
        }
      }
      if (!improved) step *= 0.5;
    }
    if (fx > best.gap) {
      best.gap = fx;
      best.input = x;
    }
  }

  if (!std::isfinite(best.gap) || best.gap < min_gap) return std::nullopt;
  XPLAIN_DEBUG << "search analyzer: gap " << best.gap;
  return best;
}

std::optional<AdversarialExample> SearchAnalyzer::random_baseline(
    const GapEvaluator& eval, double min_gap, const std::vector<Box>& excluded,
    int samples, std::uint64_t seed) {
  const Box box = eval.input_box();
  util::Rng rng(seed);
  AdversarialExample best;
  best.gap = -std::numeric_limits<double>::infinity();
  for (int s = 0; s < samples; ++s) {
    auto x = eval.quantize(rng.uniform_point(box.lo, box.hi));
    const double g = score(eval, excluded, x);
    if (g > best.gap) {
      best.gap = g;
      best.input = std::move(x);
    }
  }
  if (!std::isfinite(best.gap) || best.gap < min_gap) return std::nullopt;
  return best;
}

}  // namespace xplain::analyzer
