#include "subspace/regression_tree.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <sstream>

namespace xplain::subspace {

namespace {

struct SplitChoice {
  int feature = -1;
  double threshold = 0.0;
  double sse_after = 0.0;
};

double sse_of(const std::vector<const LabeledSample*>& items) {
  if (items.empty()) return 0.0;
  double m = 0.0;
  for (auto* s : items) m += s->gap;
  m /= static_cast<double>(items.size());
  double sse = 0.0;
  for (auto* s : items) sse += (s->gap - m) * (s->gap - m);
  return sse;
}

}  // namespace

RegressionTree fit_regression_tree(const std::vector<LabeledSample>& samples,
                                   const TreeOptions& opts) {
  RegressionTree tree;
  if (samples.empty()) {
    tree.nodes_.push_back({});
    return tree;
  }
  tree.dim_ = static_cast<int>(samples[0].x.size());

  std::vector<const LabeledSample*> all;
  all.reserve(samples.size());
  for (const auto& s : samples) all.push_back(&s);

  std::function<int(std::vector<const LabeledSample*>, int)> build =
      [&](std::vector<const LabeledSample*> items, int depth) -> int {
    RegressionTree::Node node;
    node.count = static_cast<int>(items.size());
    double mean = 0.0;
    for (auto* s : items) mean += s->gap;
    node.value = mean / std::max<std::size_t>(items.size(), 1);

    const int id = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back(node);

    if (depth >= opts.max_depth ||
        static_cast<int>(items.size()) < 2 * opts.min_samples_leaf)
      return id;

    const double parent_sse = sse_of(items);
    if (parent_sse <= 1e-12) return id;  // pure leaf

    SplitChoice best;
    best.sse_after = parent_sse - 1e-9;  // must strictly improve
    for (int f = 0; f < tree.dim_; ++f) {
      std::vector<double> vals;
      vals.reserve(items.size());
      for (auto* s : items) vals.push_back(s->x[f]);
      std::sort(vals.begin(), vals.end());
      vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
      if (vals.size() < 2) continue;
      // Candidate thresholds: midpoints, thinned to max_thresholds.
      std::vector<double> cuts;
      const std::size_t stride =
          std::max<std::size_t>(1, (vals.size() - 1) / opts.max_thresholds);
      for (std::size_t i = 0; i + 1 < vals.size(); i += stride)
        cuts.push_back(0.5 * (vals[i] + vals[i + 1]));
      for (double t : cuts) {
        std::vector<const LabeledSample*> l, r;
        for (auto* s : items) (s->x[f] <= t ? l : r).push_back(s);
        if (static_cast<int>(l.size()) < opts.min_samples_leaf ||
            static_cast<int>(r.size()) < opts.min_samples_leaf)
          continue;
        const double sse = sse_of(l) + sse_of(r);
        if (sse < best.sse_after) {
          best.sse_after = sse;
          best.feature = f;
          best.threshold = t;
        }
      }
    }
    if (best.feature < 0) return id;

    std::vector<const LabeledSample*> l, r;
    for (auto* s : items)
      (s->x[best.feature] <= best.threshold ? l : r).push_back(s);
    tree.nodes_[id].feature = best.feature;
    tree.nodes_[id].threshold = best.threshold;
    const int left = build(std::move(l), depth + 1);
    tree.nodes_[id].left = left;
    const int right = build(std::move(r), depth + 1);
    tree.nodes_[id].right = right;
    return id;
  };

  build(std::move(all), 0);
  return tree;
}

int RegressionTree::leaf_of(const std::vector<double>& x) const {
  int id = 0;
  while (nodes_[id].feature >= 0)
    id = (x[nodes_[id].feature] <= nodes_[id].threshold) ? nodes_[id].left
                                                         : nodes_[id].right;
  return id;
}

double RegressionTree::predict(const std::vector<double>& x) const {
  return nodes_[leaf_of(x)].value;
}

int RegressionTree::depth() const {
  std::function<int(int)> go = [&](int id) -> int {
    if (nodes_[id].feature < 0) return 0;
    return 1 + std::max(go(nodes_[id].left), go(nodes_[id].right));
  };
  return nodes_.empty() ? 0 : go(0);
}

std::vector<Halfspace> RegressionTree::path_predicates(
    const std::vector<double>& x) const {
  std::vector<Halfspace> preds;
  int id = 0;
  while (nodes_[id].feature >= 0) {
    const auto& n = nodes_[id];
    Halfspace h;
    h.a.assign(dim_, 0.0);
    if (x[n.feature] <= n.threshold) {
      h.a[n.feature] = 1.0;   //  x_f <= t
      h.b = n.threshold;
      id = n.left;
    } else {
      h.a[n.feature] = -1.0;  //  x_f >= t  ->  -x_f <= -t
      h.b = -n.threshold;
      id = n.right;
    }
    preds.push_back(std::move(h));
  }
  return preds;
}

std::string RegressionTree::to_string(
    const std::vector<std::string>& dim_names) const {
  std::ostringstream os;
  std::function<void(int, int)> go = [&](int id, int indent) {
    const auto& n = nodes_[id];
    os << std::string(indent * 2, ' ');
    if (n.feature < 0) {
      os << "leaf: gap=" << n.value << " (n=" << n.count << ")\n";
      return;
    }
    os << dim_names[n.feature] << " <= " << n.threshold << "?\n";
    go(n.left, indent + 1);
    os << std::string(indent * 2, ' ') << "else\n";
    go(n.right, indent + 1);
  };
  if (!nodes_.empty()) go(0, 0);
  return os.str();
}

}  // namespace xplain::subspace
