#include "subspace/significance.h"

#include "stats/descriptive.h"
#include "util/parallel.h"

namespace xplain::subspace {

SignificanceReport check_significance(const analyzer::GapEvaluator& eval,
                                      const Polytope& region,
                                      const SignificanceOptions& opts) {
  SignificanceReport rep;
  util::Rng rng(opts.seed);
  const Box limit = eval.input_box();
  const Box shell_box = inflate(region.box, opts.shell_frac, limit);

  // Phase 1 (sequential, cheap): rejection-sample the paired points from
  // the checker's single stream — geometry tests only, no gap evaluations,
  // so the drawn sequence matches the single-threaded code exactly.
  std::vector<std::pair<std::vector<double>, std::vector<double>>> pairs;
  pairs.reserve(opts.pairs);
  for (int p = 0; p < opts.pairs; ++p) {
    // Inside draw: rejection-sample the polytope within its box.
    std::vector<double> xin;
    for (int attempt = 0; attempt < 128; ++attempt) {
      auto cand = eval.quantize(rng.uniform_point(region.box.lo,
                                                  region.box.hi));
      if (region.contains(cand, 1e-9)) {
        xin = std::move(cand);
        break;
      }
    }
    if (xin.empty()) continue;
    // Paired outside draw: the matching point from the surrounding shell.
    std::vector<double> xout;
    for (int attempt = 0; attempt < 128; ++attempt) {
      auto cand = eval.quantize(rng.uniform_point(shell_box.lo, shell_box.hi));
      if (!region.contains(cand, 1e-9)) {
        xout = std::move(cand);
        break;
      }
    }
    if (xout.empty()) continue;
    pairs.emplace_back(std::move(xin), std::move(xout));
  }

  // Phase 2 (parallel): the expensive gap evaluations, two per pair, into
  // slot-indexed storage — bitwise identical for any worker count.
  std::vector<double> inside_gaps(pairs.size()), outside_gaps(pairs.size());
  util::parallel_chunks(
      pairs.size(), opts.workers, [&](std::size_t begin, std::size_t end, int) {
        for (std::size_t p = begin; p < end; ++p) {
          inside_gaps[p] = eval.gap(pairs[p].first);
          outside_gaps[p] = eval.gap(pairs[p].second);
        }
      });

  rep.pairs_collected = static_cast<int>(inside_gaps.size());
  if (rep.pairs_collected == 0) return rep;
  rep.mean_gap_inside = stats::mean(inside_gaps);
  rep.mean_gap_outside = stats::mean(outside_gaps);
  rep.test = stats::wilcoxon_signed_rank(inside_gaps, outside_gaps);
  rep.significant = rep.test.p_value < opts.p_threshold;
  return rep;
}

}  // namespace xplain::subspace
