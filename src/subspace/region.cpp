#include "subspace/region.h"

#include <sstream>

#include "util/csv.h"

namespace xplain::subspace {

bool Halfspace::satisfied(const std::vector<double>& x, double tol) const {
  double lhs = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) lhs += a[i] * x[i];
  return lhs <= b + tol;
}

std::string Halfspace::to_string(
    const std::vector<std::string>& dim_names) const {
  std::ostringstream os;
  bool first = true;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0.0) continue;
    if (!first) os << " + ";
    if (a[i] == 1.0)
      os << dim_names[i];
    else if (a[i] == -1.0)
      os << "-" << dim_names[i];
    else
      os << util::format_double(a[i]) << "*" << dim_names[i];
    first = false;
  }
  if (first) os << "0";
  os << " <= " << util::format_double(b);
  return os.str();
}

bool Polytope::contains(const std::vector<double>& x, double tol) const {
  if (!box.contains(x, tol)) return false;
  for (const auto& h : halfspaces)
    if (!h.satisfied(x, tol)) return false;
  return true;
}

std::string Polytope::to_string(
    const std::vector<std::string>& dim_names) const {
  std::ostringstream os;
  os << "box: " << box.to_string();
  for (const auto& h : halfspaces)
    os << "\n  and " << h.to_string(dim_names);
  return os.str();
}

std::string Polytope::to_matrix_form() const {
  // Fig. 5c prints [A; T] X <= [C; V]: A = [I; -I] encodes the box, T the
  // tree predicates.
  std::ostringstream os;
  const int n = box.dim();
  os << "A (box rows, I then -I), C:\n";
  for (int i = 0; i < n; ++i) os << "  x[" << i << "] <= "
                                 << util::format_double(box.hi[i]) << "\n";
  for (int i = 0; i < n; ++i) os << " -x[" << i << "] <= "
                                 << util::format_double(-box.lo[i]) << "\n";
  os << "T (tree rows), V:\n";
  for (const auto& h : halfspaces) {
    os << "  [";
    for (int i = 0; i < n; ++i)
      os << (i ? " " : "") << util::format_double(h.a[i]);
    os << "] x <= " << util::format_double(h.b) << "\n";
  }
  return os.str();
}

}  // namespace xplain::subspace
