#include "subspace/sampler.h"

#include <algorithm>

namespace xplain::subspace {

std::vector<LabeledSample> sample_box(const GapEvaluator& eval, const Box& box,
                                      std::size_t count, util::Rng& rng) {
  Box b = box.intersect(eval.input_box());
  std::vector<LabeledSample> out;
  if (b.empty()) return out;
  out.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    LabeledSample ls;
    ls.x = eval.quantize(rng.uniform_point(b.lo, b.hi));
    ls.gap = eval.gap(ls.x);
    out.push_back(std::move(ls));
  }
  return out;
}

std::vector<LabeledSample> sample_shell(const GapEvaluator& eval,
                                        const Box& box, const Box& inner,
                                        std::size_t count, util::Rng& rng) {
  Box b = box.intersect(eval.input_box());
  std::vector<LabeledSample> out;
  if (b.empty()) return out;
  out.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      auto x = eval.quantize(rng.uniform_point(b.lo, b.hi));
      if (inner.contains(x)) continue;
      out.push_back({x, eval.gap(x)});
      break;
    }
  }
  return out;
}

double bad_density(const std::vector<LabeledSample>& samples,
                   double threshold) {
  if (samples.empty()) return 0.0;
  std::size_t bad = 0;
  for (const auto& s : samples)
    if (s.gap >= threshold) ++bad;
  return static_cast<double>(bad) / static_cast<double>(samples.size());
}

Box inflate(const Box& box, double frac, const Box& limit) {
  Box out = box;
  for (int i = 0; i < box.dim(); ++i) {
    const double w = std::max(box.hi[i] - box.lo[i], 1e-9);
    out.lo[i] = std::max(limit.lo[i], box.lo[i] - frac * w);
    out.hi[i] = std::min(limit.hi[i], box.hi[i] + frac * w);
  }
  return out;
}

}  // namespace xplain::subspace
