// Adversarial-subspace representations (paper Fig. 5c): a subspace is the
// intersection of a rough box (the slice-expansion output) with the
// halfspace predicates read off the regression-tree path — exactly the
// { x : A [T] x <= [C V] } form the paper prints for FF's D0.
#pragma once

#include <string>
#include <vector>

#include "analyzer/evaluator.h"

namespace xplain::subspace {

using analyzer::Box;

/// One halfspace a'x <= b (tree predicates produce axis-aligned a).
struct Halfspace {
  std::vector<double> a;
  double b = 0.0;

  bool satisfied(const std::vector<double>& x, double tol = 1e-9) const;
  std::string to_string(const std::vector<std::string>& dim_names) const;
};

/// Box /\ halfspaces.
struct Polytope {
  Box box;
  std::vector<Halfspace> halfspaces;

  bool contains(const std::vector<double>& x, double tol = 1e-9) const;
  std::string to_string(const std::vector<std::string>& dim_names) const;

  /// Renders the paper's Fig. 5c matrix form: rows of [A; T] x <= [C; V].
  std::string to_matrix_form() const;
};

/// A validated adversarial subspace with its statistics.
struct AdversarialSubspace {
  Polytope region;
  /// The analyzer point the subspace grew from.
  std::vector<double> seed;
  double seed_gap = 0.0;
  double mean_gap_inside = 0.0;
  double mean_gap_outside = 0.0;
  double p_value = 1.0;
  int samples_inside = 0;
  bool significant = false;
};

}  // namespace xplain::subspace
