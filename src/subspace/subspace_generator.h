// The adversarial subspace generator (paper §5.2, Fig. 5):
//
//   1. ask the heuristic analyzer for an adversarial example;
//   2. grow a rough box around it, slice by slice: expand in each direction
//      only while the density of bad samples in the new slice stays high
//      (sample counts per slice from the DKW inequality);
//   3. refine the box with the predicates on the regression-tree path to
//      the seed's leaf (Fig. 5b);
//   4. validate with the Wilcoxon significance checker;
//   5. exclude the region and repeat until the analyzer finds nothing new.
#pragma once

#include <vector>

#include "analyzer/analyzer.h"
#include "subspace/regression_tree.h"
#include "subspace/significance.h"

namespace xplain::subspace {

struct SubspaceOptions {
  /// A sample is "bad" when gap >= bad_gap_fraction * seed gap.
  double bad_gap_fraction = 0.5;
  /// Keep expanding a direction while the slice's bad density is >= this.
  /// 0.6 keeps boxes tight enough that non-axis-aligned adversarial sets
  /// (FF's diagonal slabs) still validate as significant.
  double density_threshold = 0.6;
  /// DKW accuracy/confidence for the per-slice density estimate.
  double dkw_eps = 0.10;
  double dkw_delta = 0.05;
  /// Initial cube half-width and per-step slice thickness, as fractions of
  /// the input box width ("how big we pick our slices ... influences how
  /// many false positives fall into the subspace", §5.2).
  double init_half_width_frac = 0.03;
  double slice_frac = 0.08;
  int max_expansion_rounds = 12;
  /// Regression-tree refinement.
  TreeOptions tree;
  int tree_samples = 400;
  double tree_inflate_frac = 0.35;
  /// Significance checking.
  SignificanceOptions significance;
  /// Outer loop.
  int max_subspaces = 8;
  std::uint64_t seed = 2024;
  /// Keep statistically insignificant subspaces in the output (marked
  /// significant=false) instead of dropping them.
  bool keep_insignificant = false;
};

struct GenerationTrace {
  int analyzer_calls = 0;
  long gap_evaluations = 0;   // approximate (sampling only)
  int rejected_insignificant = 0;

  GenerationTrace& operator+=(const GenerationTrace& o) {
    analyzer_calls += o.analyzer_calls;
    gap_evaluations += o.gap_evaluations;
    rejected_insignificant += o.rejected_insignificant;
    return *this;
  }
};

class SubspaceGenerator {
 public:
  SubspaceGenerator(analyzer::HeuristicAnalyzer& analyzer,
                    SubspaceOptions opts = {})
      : analyzer_(analyzer), opts_(opts) {}

  /// Runs the full loop; returns the validated subspaces.
  std::vector<AdversarialSubspace> generate(const analyzer::GapEvaluator& eval,
                                            double min_gap);

  const GenerationTrace& trace() const { return trace_; }

  /// Exposed for tests/benches: grow the rough box around one seed.
  Box grow_rough_box(const analyzer::GapEvaluator& eval,
                     const std::vector<double>& seed, double bad_threshold,
                     util::Rng& rng);

 private:
  analyzer::HeuristicAnalyzer& analyzer_;
  SubspaceOptions opts_;
  GenerationTrace trace_;
};

}  // namespace xplain::subspace
