// CART regression tree for subspace refinement (paper §5.2 / Fig. 5b,
// following the failure-diagnosis idea of Chen et al. [13]): train a tree
// that predicts the performance gap around the rough subspace, then read
// the predicates on the path to the leaf containing the initial adversarial
// point — those predicates describe the subspace more accurately than the
// sampled box.
#pragma once

#include <string>
#include <vector>

#include "subspace/region.h"
#include "subspace/sampler.h"

namespace xplain::subspace {

struct TreeOptions {
  int max_depth = 5;
  int min_samples_leaf = 12;
  /// Candidate thresholds per feature (quantile cuts) when a feature has
  /// many distinct values.
  int max_thresholds = 32;
};

class RegressionTree {
 public:
  struct Node {
    int feature = -1;      // -1: leaf
    double threshold = 0;  // goes left when x[feature] <= threshold
    int left = -1, right = -1;
    double value = 0.0;    // mean gap at this node
    int count = 0;
  };

  double predict(const std::vector<double>& x) const;
  int leaf_of(const std::vector<double>& x) const;
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int depth() const;
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Halfspace conjunction on the root->leaf path for `x` (Fig. 5b: the
  /// predicates that more accurately describe the subspace).
  std::vector<Halfspace> path_predicates(const std::vector<double>& x) const;

  /// Pretty-print (tests, benches, Fig. 5b-style output).
  std::string to_string(const std::vector<std::string>& dim_names) const;

  friend RegressionTree fit_regression_tree(
      const std::vector<LabeledSample>& samples, const TreeOptions& opts);

 private:
  std::vector<Node> nodes_;
  int dim_ = 0;
};

RegressionTree fit_regression_tree(const std::vector<LabeledSample>& samples,
                                   const TreeOptions& opts = {});

}  // namespace xplain::subspace
