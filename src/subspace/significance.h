// Significance checker (paper §5.2): validates that points inside a
// candidate subspace produce higher gaps than points immediately outside,
// using the Wilcoxon signed-rank test on paired (inside, outside) samples
// — the pairing reflects that the subspace fully determines membership, so
// the two pools are dependent.
#pragma once

#include "stats/wilcoxon.h"
#include "subspace/region.h"
#include "subspace/sampler.h"

namespace xplain::subspace {

struct SignificanceOptions {
  int pairs = 100;          // paired samples
  double p_threshold = 0.05;
  double shell_frac = 0.4;  // shell width as a fraction of the region box
  std::uint64_t seed = 7;
  /// Worker threads for the paired gap evaluations; <= 0 = one per
  /// hardware thread.  The paired points are drawn sequentially from one
  /// stream (geometry only — identical to the single-threaded sequence);
  /// only the expensive gap scoring fans out, into slot-indexed storage:
  /// bitwise deterministic for any worker count.
  int workers = 1;
};

struct SignificanceReport {
  stats::WilcoxonResult test;
  double mean_gap_inside = 0.0;
  double mean_gap_outside = 0.0;
  int pairs_collected = 0;
  bool significant = false;
};

/// Tests `region` against its immediate surroundings.
SignificanceReport check_significance(const analyzer::GapEvaluator& eval,
                                      const Polytope& region,
                                      const SignificanceOptions& opts = {});

}  // namespace xplain::subspace
