// Sampling utilities for the adversarial subspace generator: labeled gap
// samples inside boxes, slices, and shells, with DKW-derived sample counts.
#pragma once

#include <vector>

#include "analyzer/evaluator.h"
#include "util/random.h"

namespace xplain::subspace {

using analyzer::Box;
using analyzer::GapEvaluator;

struct LabeledSample {
  std::vector<double> x;
  double gap = 0.0;
};

/// Uniform quantized samples in `box` (intersected with the evaluator's
/// input box), labeled with their gap.
std::vector<LabeledSample> sample_box(const GapEvaluator& eval, const Box& box,
                                      std::size_t count, util::Rng& rng);

/// Samples from `box` \ `inner` (the shell immediately outside a subspace)
/// by rejection; gives up on a draw after 64 tries (degenerate geometry).
std::vector<LabeledSample> sample_shell(const GapEvaluator& eval,
                                        const Box& box, const Box& inner,
                                        std::size_t count, util::Rng& rng);

/// Fraction of samples with gap >= threshold.
double bad_density(const std::vector<LabeledSample>& samples,
                   double threshold);

/// Expands `box` by `frac` of its width on every side, clipped to `limit`.
Box inflate(const Box& box, double frac, const Box& limit);

}  // namespace xplain::subspace
