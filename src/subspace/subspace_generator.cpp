#include "subspace/subspace_generator.h"

#include <algorithm>
#include <cmath>

#include "stats/dkw.h"
#include "util/logging.h"

namespace xplain::subspace {

Box SubspaceGenerator::grow_rough_box(const analyzer::GapEvaluator& eval,
                                      const std::vector<double>& seed,
                                      double bad_threshold, util::Rng& rng) {
  const Box limit = eval.input_box();
  const int n = limit.dim();
  const std::size_t slice_samples =
      stats::dkw_sample_count(opts_.dkw_eps, opts_.dkw_delta);

  // Initial cube around the seed.
  Box box;
  box.lo.resize(n);
  box.hi.resize(n);
  for (int i = 0; i < n; ++i) {
    const double w = limit.hi[i] - limit.lo[i];
    box.lo[i] = std::max(limit.lo[i], seed[i] - opts_.init_half_width_frac * w);
    box.hi[i] = std::min(limit.hi[i], seed[i] + opts_.init_half_width_frac * w);
  }

  // Slice-by-slice expansion (Fig. 5a): each direction grows independently
  // while its *new slice* keeps a high density of bad samples — the
  // adversarial region need not be uniform around the seed.
  for (int round = 0; round < opts_.max_expansion_rounds; ++round) {
    bool grew = false;
    for (int i = 0; i < n; ++i) {
      const double w = limit.hi[i] - limit.lo[i];
      const double step = opts_.slice_frac * w;
      // Up-slice: [hi_i, hi_i + step], all other dims at the current box.
      if (box.hi[i] < limit.hi[i] - 1e-12) {
        Box slice = box;
        slice.lo[i] = box.hi[i];
        slice.hi[i] = std::min(limit.hi[i], box.hi[i] + step);
        auto samples = sample_box(eval, slice, slice_samples, rng);
        trace_.gap_evaluations += static_cast<long>(samples.size());
        if (bad_density(samples, bad_threshold) >= opts_.density_threshold) {
          box.hi[i] = slice.hi[i];
          grew = true;
        }
      }
      // Down-slice.
      if (box.lo[i] > limit.lo[i] + 1e-12) {
        Box slice = box;
        slice.hi[i] = box.lo[i];
        slice.lo[i] = std::max(limit.lo[i], box.lo[i] - step);
        auto samples = sample_box(eval, slice, slice_samples, rng);
        trace_.gap_evaluations += static_cast<long>(samples.size());
        if (bad_density(samples, bad_threshold) >= opts_.density_threshold) {
          box.lo[i] = slice.lo[i];
          grew = true;
        }
      }
    }
    if (!grew) break;
  }
  return box;
}

std::vector<AdversarialSubspace> SubspaceGenerator::generate(
    const analyzer::GapEvaluator& eval, double min_gap) {
  std::vector<AdversarialSubspace> result;
  std::vector<Box> excluded;
  util::Rng rng(opts_.seed);
  trace_ = {};

  for (int iter = 0; iter < opts_.max_subspaces; ++iter) {
    ++trace_.analyzer_calls;
    auto ex = analyzer_.find_adversarial(eval, min_gap, excluded);
    if (!ex) break;  // no adversarial example outside known subspaces
    XPLAIN_INFO << "subspace " << iter << ": seed gap " << ex->gap;

    const double bad_threshold = opts_.bad_gap_fraction * ex->gap;
    Box rough = grow_rough_box(eval, ex->input, bad_threshold, rng);

    // Tree refinement (Fig. 5b): fit on a neighborhood slightly larger than
    // the rough box so the tree sees both sides of the boundary.
    const Box tree_box = inflate(rough, opts_.tree_inflate_frac,
                                 eval.input_box());
    auto samples = sample_box(eval, tree_box, opts_.tree_samples, rng);
    trace_.gap_evaluations += static_cast<long>(samples.size());
    auto tree = fit_regression_tree(samples, opts_.tree);

    AdversarialSubspace sub;
    sub.seed = ex->input;
    sub.seed_gap = ex->gap;
    sub.region.box = rough;
    sub.region.halfspaces = tree.path_predicates(ex->input);

    // Validation (§5.2: report only low-p subspaces as adversarial).
    SignificanceOptions sopts = opts_.significance;
    sopts.seed = rng.engine()();
    auto rep = check_significance(eval, sub.region, sopts);
    trace_.gap_evaluations += 2L * rep.pairs_collected;
    sub.mean_gap_inside = rep.mean_gap_inside;
    sub.mean_gap_outside = rep.mean_gap_outside;
    sub.p_value = rep.test.p_value;
    sub.samples_inside = rep.pairs_collected;
    sub.significant = rep.significant;

    // Exclude the rough box either way (otherwise the analyzer would hand
    // the same seed back and we would loop forever; the paper notes users
    // must bound re-examinations of insignificant regions — we re-examine
    // zero times).
    excluded.push_back(rough);

    if (sub.significant || opts_.keep_insignificant) {
      result.push_back(std::move(sub));
    } else {
      ++trace_.rejected_insignificant;
      XPLAIN_INFO << "subspace " << iter << " rejected (p=" << sub.p_value
                  << ")";
    }
  }
  return result;
}

}  // namespace xplain::subspace
