// MetaOpt-style helper combinators (the functions the paper shows in
// Fig. 1b/1c: ForceToZeroIfLeq, AllLeq, AllEq, AND, IfThenElse), implemented
// as big-M encodings over `Model`.
//
// Indicator semantics use a strictness margin `eps`: z=1 <=> expr <= t and
// z=0 <=> expr >= t + eps.  Expressions landing strictly inside (t, t+eps)
// are cut off by the encoding; callers that need exactness (the analyzers)
// quantize their inputs to a grid coarser than eps.
#pragma once

#include <utility>
#include <vector>

#include "model/model.h"

namespace xplain::model {

struct HelperConfig {
  double big_m = 1e4;  // must dominate the range of every expr passed in
  double eps = 1e-2;   // strictness margin for indicator boundaries
};
// Invariant the solver relies on: eps / big_m must stay well above the MILP
// integrality tolerance, or the "off" branch of an indicator can sit at a
// fractional z the solver mistakes for 0 (kept: 1e-2 / 1e4 = 1e-6 >> 1e-7).

/// Binary z with z=1 <=> expr <= threshold.
Var indicator_leq(Model& m, const LinExpr& expr, double threshold,
                  const HelperConfig& cfg = {});

/// Binary z with z=1 <=> expr >= threshold.
Var indicator_geq(Model& m, const LinExpr& expr, double threshold,
                  const HelperConfig& cfg = {});

/// Binary z with z=1 <=> expr == value (within eps).
Var indicator_eq(Model& m, const LinExpr& expr, double value,
                 const HelperConfig& cfg = {});

/// Binary AND / OR / NOT over binary vars.
Var logic_and(Model& m, const std::vector<Var>& vs);
Var logic_or(Model& m, const std::vector<Var>& vs);
Var logic_not(Model& m, Var v);

/// MetaOpt's ForceToZeroIfLeq(target, value, T): when value <= T, constrain
/// target == 0.  Returns the "value <= T" indicator.
Var force_to_zero_if_leq(Model& m, const LinExpr& target, const LinExpr& value,
                         double threshold, const HelperConfig& cfg = {});

/// MetaOpt's AllLeq(exprs, rhs): binary 1 <=> every expr <= rhs.
Var all_leq(Model& m, const std::vector<LinExpr>& exprs, double rhs,
            const HelperConfig& cfg = {});

/// MetaOpt's AllEq(exprs, value): binary 1 <=> every expr == value.
Var all_eq(Model& m, const std::vector<LinExpr>& exprs, double value,
           const HelperConfig& cfg = {});

/// MetaOpt's IfThenElse(cond, then, else): when cond==1 enforce var==expr for
/// every (var, expr) pair in `then_assign`, otherwise in `else_assign`.
void if_then_else(Model& m, Var cond,
                  const std::vector<std::pair<Var, LinExpr>>& then_assign,
                  const std::vector<std::pair<Var, LinExpr>>& else_assign,
                  const HelperConfig& cfg = {});

/// Exact product w = z * x for binary z and bounded x in [0, x_max]
/// (McCormick envelope, tight at binary z).  Returns w.
Var product_binary_continuous(Model& m, Var z, const LinExpr& x, double x_max);

/// Exact product of two binaries.
Var product_binary_binary(Model& m, Var a, Var b);

}  // namespace xplain::model
