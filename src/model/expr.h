// Linear-expression algebra for the modeling layer.
//
// `Var` is a lightweight handle into a `Model`; `LinExpr` is an affine
// expression over vars.  Comparisons build `LinConstraint`s that
// `Model::add` accepts, so heuristic encodings read close to the math in
// the paper (Fig. 1b/1c).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "solver/lp.h"

namespace xplain::model {

struct Var {
  int index = -1;
  bool valid() const { return index >= 0; }
};

class LinExpr {
 public:
  LinExpr() = default;
  /*implicit*/ LinExpr(double c) : constant_(c) {}
  /*implicit*/ LinExpr(Var v) { terms_[v.index] = 1.0; }

  double constant() const { return constant_; }
  const std::map<int, double>& terms() const { return terms_; }

  LinExpr& operator+=(const LinExpr& o);
  LinExpr& operator-=(const LinExpr& o);
  LinExpr& operator*=(double k);

  /// Evaluates against a full solution vector.
  double eval(const std::vector<double>& x) const;

  std::string to_string() const;

 private:
  double constant_ = 0.0;
  std::map<int, double> terms_;  // var index -> coefficient
};

LinExpr operator+(LinExpr a, const LinExpr& b);
LinExpr operator-(LinExpr a, const LinExpr& b);
LinExpr operator-(LinExpr a);
LinExpr operator*(double k, LinExpr e);
LinExpr operator*(LinExpr e, double k);

inline LinExpr operator+(Var a, Var b) { return LinExpr(a) + LinExpr(b); }
inline LinExpr operator-(Var a, Var b) { return LinExpr(a) - LinExpr(b); }
inline LinExpr operator*(double k, Var v) { return k * LinExpr(v); }
inline LinExpr operator*(Var v, double k) { return k * LinExpr(v); }

struct LinConstraint {
  LinExpr lhs;  // compared against zero: lhs (sense) 0
  solver::RowSense sense = solver::RowSense::kLe;
};

inline LinConstraint operator<=(const LinExpr& a, const LinExpr& b) {
  return {a - b, solver::RowSense::kLe};
}
inline LinConstraint operator>=(const LinExpr& a, const LinExpr& b) {
  return {a - b, solver::RowSense::kGe};
}
inline LinConstraint operator==(const LinExpr& a, const LinExpr& b) {
  return {a - b, solver::RowSense::kEq};
}

/// Sum of a collection of vars or exprs.
LinExpr sum(const std::vector<Var>& vs);
LinExpr sum(const std::vector<LinExpr>& es);

}  // namespace xplain::model
