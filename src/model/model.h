// `Model` is the Gurobi-like front end over the solver: named variables,
// operator-built constraints, and solve entry points.  The XPlain DSL
// compiler, the MetaOpt-style analyzers, and the hand-written baselines all
// emit into a Model.
#pragma once

#include <string>
#include <vector>

#include "model/expr.h"
#include "solver/milp.h"
#include "solver/simplex.h"

namespace xplain::model {

class Model {
 public:
  Var add_var(double lo, double hi, bool integer = false,
              std::string name = {});
  Var add_continuous(double lo, double hi, std::string name = {}) {
    return add_var(lo, hi, false, std::move(name));
  }
  Var add_binary(std::string name = {}) {
    return add_var(0.0, 1.0, true, std::move(name));
  }

  /// Adds `c.lhs (sense) 0` as a row.
  void add(const LinConstraint& c, std::string name = {});

  void set_objective(solver::Sense sense, const LinExpr& objective);
  const LinExpr& objective() const { return objective_; }
  solver::Sense sense() const { return problem_.sense; }

  /// Objective constant is carried outside the LpProblem and re-added here.
  solver::LpSolution solve_lp(const solver::SimplexOptions& opts = {}) const;
  solver::MilpResult solve(const solver::MilpOptions& opts = {}) const;

  int num_vars() const { return problem_.num_cols(); }
  int num_constraints() const { return problem_.num_rows(); }
  const solver::LpProblem& lp() const { return problem_; }
  solver::LpProblem& lp() { return problem_; }

  double value(const std::vector<double>& x, Var v) const { return x[v.index]; }
  double value(const std::vector<double>& x, const LinExpr& e) const {
    return e.eval(x);
  }

 private:
  solver::LpProblem problem_;
  LinExpr objective_;
};

}  // namespace xplain::model
