#include "model/model.h"

namespace xplain::model {

Var Model::add_var(double lo, double hi, bool integer, std::string name) {
  return Var{problem_.add_col(lo, hi, 0.0, integer, std::move(name))};
}

void Model::add(const LinConstraint& c, std::string name) {
  std::vector<std::pair<int, double>> coef;
  coef.reserve(c.lhs.terms().size());
  for (const auto& [j, v] : c.lhs.terms()) coef.emplace_back(j, v);
  problem_.add_row(std::move(coef), c.sense, -c.lhs.constant(),
                   std::move(name));
}

void Model::set_objective(solver::Sense sense, const LinExpr& objective) {
  objective_ = objective;
  problem_.sense = sense;
  for (int j = 0; j < problem_.num_cols(); ++j) problem_.set_obj(j, 0.0);
  for (const auto& [j, v] : objective.terms()) problem_.set_obj(j, v);
}

solver::LpSolution Model::solve_lp(const solver::SimplexOptions& opts) const {
  auto s = solver::solve_lp(problem_, opts);
  if (s.status == solver::Status::kOptimal) s.obj += objective_.constant();
  return s;
}

solver::MilpResult Model::solve(const solver::MilpOptions& opts) const {
  if (!problem_.is_mip()) {
    auto s = solve_lp(opts.lp);
    solver::MilpResult r;
    r.status = s.status;
    r.obj = s.obj;
    r.x = std::move(s.x);
    r.best_bound = r.obj;
    r.nodes = 1;
    r.lp_solves = 1;
    r.lp_iterations = s.iterations;
    return r;
  }
  auto r = solver::solve_milp(problem_, opts);
  if (r.status == solver::Status::kOptimal || r.status == solver::Status::kLimit) {
    r.obj += objective_.constant();
    r.best_bound += objective_.constant();
  }
  return r;
}

}  // namespace xplain::model
