#include "model/helpers.h"

namespace xplain::model {

Var indicator_leq(Model& m, const LinExpr& expr, double threshold,
                  const HelperConfig& cfg) {
  Var z = m.add_binary();
  // z=1 -> expr <= threshold.
  m.add(expr <= LinExpr(threshold + cfg.big_m) - cfg.big_m * z);
  // z=0 -> expr >= threshold + eps.
  m.add(expr + cfg.big_m * z >= threshold + cfg.eps);
  return z;
}

Var indicator_geq(Model& m, const LinExpr& expr, double threshold,
                  const HelperConfig& cfg) {
  return indicator_leq(m, -expr, -threshold, cfg);
}

Var indicator_eq(Model& m, const LinExpr& expr, double value,
                 const HelperConfig& cfg) {
  Var le = indicator_leq(m, expr, value + cfg.eps / 4, cfg);
  Var ge = indicator_geq(m, expr, value - cfg.eps / 4, cfg);
  return logic_and(m, {le, ge});
}

Var logic_and(Model& m, const std::vector<Var>& vs) {
  Var z = m.add_binary();
  LinExpr total;
  for (Var v : vs) {
    m.add(LinExpr(z) <= LinExpr(v));
    total += LinExpr(v);
  }
  m.add(LinExpr(z) >= total - LinExpr(static_cast<double>(vs.size()) - 1.0));
  return z;
}

Var logic_or(Model& m, const std::vector<Var>& vs) {
  Var z = m.add_binary();
  LinExpr total;
  for (Var v : vs) {
    m.add(LinExpr(z) >= LinExpr(v));
    total += LinExpr(v);
  }
  m.add(LinExpr(z) <= total);
  return z;
}

Var logic_not(Model& m, Var v) {
  Var z = m.add_binary();
  m.add(LinExpr(z) == LinExpr(1.0) - LinExpr(v));
  return z;
}

Var force_to_zero_if_leq(Model& m, const LinExpr& target, const LinExpr& value,
                         double threshold, const HelperConfig& cfg) {
  Var pinned = indicator_leq(m, value, threshold, cfg);
  // pinned=1 -> target == 0 (two-sided big-M).
  m.add(target <= cfg.big_m * (LinExpr(1.0) - LinExpr(pinned)));
  m.add(target >= -cfg.big_m * (LinExpr(1.0) - LinExpr(pinned)));
  return pinned;
}

Var all_leq(Model& m, const std::vector<LinExpr>& exprs, double rhs,
            const HelperConfig& cfg) {
  std::vector<Var> inds;
  inds.reserve(exprs.size());
  for (const auto& e : exprs) inds.push_back(indicator_leq(m, e, rhs, cfg));
  return logic_and(m, inds);
}

Var all_eq(Model& m, const std::vector<LinExpr>& exprs, double value,
           const HelperConfig& cfg) {
  std::vector<Var> inds;
  inds.reserve(exprs.size());
  for (const auto& e : exprs) inds.push_back(indicator_eq(m, e, value, cfg));
  return logic_and(m, inds);
}

void if_then_else(Model& m, Var cond,
                  const std::vector<std::pair<Var, LinExpr>>& then_assign,
                  const std::vector<std::pair<Var, LinExpr>>& else_assign,
                  const HelperConfig& cfg) {
  const LinExpr on = cfg.big_m * (LinExpr(1.0) - LinExpr(cond));
  for (const auto& [v, e] : then_assign) {
    m.add(LinExpr(v) - e <= on);
    m.add(LinExpr(v) - e >= -1.0 * on);
  }
  const LinExpr off = cfg.big_m * LinExpr(cond);
  for (const auto& [v, e] : else_assign) {
    m.add(LinExpr(v) - e <= off);
    m.add(LinExpr(v) - e >= -1.0 * off);
  }
}

Var product_binary_continuous(Model& m, Var z, const LinExpr& x,
                              double x_max) {
  Var w = m.add_continuous(0.0, x_max);
  m.add(LinExpr(w) <= x_max * LinExpr(z));
  m.add(LinExpr(w) <= x);
  m.add(LinExpr(w) >= x - x_max * (LinExpr(1.0) - LinExpr(z)));
  return w;
}

Var product_binary_binary(Model& m, Var a, Var b) {
  Var w = m.add_binary();
  m.add(LinExpr(w) <= LinExpr(a));
  m.add(LinExpr(w) <= LinExpr(b));
  m.add(LinExpr(w) >= LinExpr(a) + LinExpr(b) - LinExpr(1.0));
  return w;
}

}  // namespace xplain::model
