#include "model/expr.h"

#include <cmath>
#include <sstream>

namespace xplain::model {

LinExpr& LinExpr::operator+=(const LinExpr& o) {
  constant_ += o.constant_;
  for (const auto& [j, v] : o.terms_) {
    double& slot = terms_[j];
    slot += v;
    if (std::abs(slot) < 1e-14) terms_.erase(j);
  }
  return *this;
}

LinExpr& LinExpr::operator-=(const LinExpr& o) {
  constant_ -= o.constant_;
  for (const auto& [j, v] : o.terms_) {
    double& slot = terms_[j];
    slot -= v;
    if (std::abs(slot) < 1e-14) terms_.erase(j);
  }
  return *this;
}

LinExpr& LinExpr::operator*=(double k) {
  constant_ *= k;
  if (k == 0.0) {
    terms_.clear();
    return *this;
  }
  for (auto& [j, v] : terms_) v *= k;
  return *this;
}

double LinExpr::eval(const std::vector<double>& x) const {
  double v = constant_;
  for (const auto& [j, c] : terms_) v += c * x[j];
  return v;
}

std::string LinExpr::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [j, v] : terms_) {
    if (!first) os << " + ";
    os << v << "*v" << j;
    first = false;
  }
  if (constant_ != 0.0 || first) {
    if (!first) os << " + ";
    os << constant_;
  }
  return os.str();
}

LinExpr operator+(LinExpr a, const LinExpr& b) { return a += b; }
LinExpr operator-(LinExpr a, const LinExpr& b) { return a -= b; }
LinExpr operator-(LinExpr a) { return a *= -1.0; }
LinExpr operator*(double k, LinExpr e) { return e *= k; }
LinExpr operator*(LinExpr e, double k) { return e *= k; }

LinExpr sum(const std::vector<Var>& vs) {
  LinExpr e;
  for (Var v : vs) e += LinExpr(v);
  return e;
}

LinExpr sum(const std::vector<LinExpr>& es) {
  LinExpr e;
  for (const auto& x : es) e += x;
  return e;
}

}  // namespace xplain::model
