#include "generalize/generalizer.h"

#include "util/logging.h"

namespace xplain::generalize {

GeneralizerResult generalize(const CaseFactory& factory,
                             const GeneralizerOptions& opts) {
  GeneralizerResult result;
  util::Rng rng(opts.seed);

  for (int i = 0; i < opts.instances; ++i) {
    Case c = factory(rng);
    analyzer::SearchOptions sopts = opts.search;
    sopts.seed = rng.engine()();
    analyzer::SearchAnalyzer an(sopts);
    auto ex = an.find_adversarial(*c.eval, opts.min_gap, {});

    InstanceObservation obs;
    obs.features = std::move(c.features);
    obs.max_gap = ex ? ex->gap : 0.0;
    if (opts.normalize_gap && c.gap_scale > 0) obs.max_gap /= c.gap_scale;
    XPLAIN_DEBUG << "generalizer: instance " << i << " gap " << obs.max_gap;
    result.observations.push_back(std::move(obs));
  }

  result.predicates = mine_predicates(result.observations, opts.grammar);
  return result;
}

CaseFactory dp_case_factory(DpInstanceGenerator gen) {
  return [gen](util::Rng& rng) {
    const DpFamilyParams params = gen.next_params(rng);
    te::TeInstance inst = make_dp_family_instance(params);
    te::DpConfig cfg{params.threshold};
    Case c;
    c.features = dp_instance_features(inst, cfg);
    c.gap_scale = params.d_max;
    c.eval = std::make_unique<analyzer::DpGapEvaluator>(
        std::move(inst), cfg, /*quantum=*/params.d_max / 100.0);
    return c;
  };
}

CaseFactory vbp_case_factory(VbpInstanceGenerator gen) {
  return [gen](util::Rng& rng) {
    vbp::VbpInstance inst = gen.next(rng);
    Case c;
    c.features = vbp_instance_features(inst);
    c.gap_scale = 1.0;
    c.eval = std::make_unique<analyzer::VbpGapEvaluator>(inst);
    return c;
  };
}

}  // namespace xplain::generalize
