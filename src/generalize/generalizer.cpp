#include "generalize/generalizer.h"

#include <algorithm>

#include "util/logging.h"

namespace xplain::generalize {

GeneralizerResult generalize(const CaseFactory& factory,
                             const GeneralizerOptions& opts) {
  GeneralizerResult result;
  util::Rng rng(opts.seed);

  for (int i = 0; i < opts.instances; ++i) {
    Case c = factory(rng);
    analyzer::SearchOptions sopts = opts.search;
    sopts.seed = rng.engine()();
    analyzer::SearchAnalyzer an(sopts);
    auto ex = an.find_adversarial(*c.eval, opts.min_gap, {});

    InstanceObservation obs;
    obs.features = std::move(c.features);
    obs.max_gap = ex ? ex->gap : 0.0;
    if (opts.normalize_gap && c.gap_scale > 0) obs.max_gap /= c.gap_scale;
    XPLAIN_DEBUG << "generalizer: instance " << i << " gap " << obs.max_gap;
    result.observations.push_back(std::move(obs));
  }

  result.predicates = mine_predicates(result.observations, opts.grammar);
  return result;
}

GeneralizerResult generalize_batch(const std::vector<xplain::PipelineResult>& results,
                                   const GrammarOptions& grammar,
                                   bool normalize_gap) {
  GeneralizerResult out;
  out.observations.reserve(results.size());
  for (const auto& r : results) {
    if (r.features.empty()) continue;  // case does not describe its instance
    InstanceObservation obs;
    obs.features = r.features;
    // The raw analyzer signal, not just validated subspaces: an instance
    // whose gaps fell below min_gap still contributes its true best gap
    // instead of a trend-muting zero.
    obs.max_gap = std::max(r.max_gap(), r.best_gap_found);
    if (normalize_gap && r.gap_scale > 0) obs.max_gap /= r.gap_scale;
    out.observations.push_back(std::move(obs));
  }
  out.predicates = mine_predicates(out.observations, grammar);
  return out;
}

// dp_case_factory / vbp_case_factory are defined in the cases layer
// (src/cases/generalize_factories.cpp): the generalizer core stays
// heuristic-agnostic.

}  // namespace xplain::generalize
