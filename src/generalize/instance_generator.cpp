#include "generalize/instance_generator.h"

namespace xplain::generalize {

te::TeInstance make_dp_family_instance(const DpFamilyParams& params) {
  // Nodes 0..L on the main chain; detour 0 -> L via L extra nodes, so the
  // detour (L+1 hops) is *always* strictly longer than the chain (L hops)
  // and the chain stays the pinned demand's shortest path — the detour is
  // the optimal's escape hatch.
  const int L = params.chain_len;
  te::Topology topo(2 * L + 1);
  for (int u = 0; u < L; ++u) topo.add_bidi(u, u + 1, params.main_capacity);
  int prev = 0;
  for (int v = 0; v < L; ++v) {
    const int via = L + 1 + v;
    topo.add_bidi(prev, via, params.detour_capacity);
    prev = via;
  }
  topo.add_bidi(prev, L, params.detour_capacity);

  // Demand pairs: the pinnable end-to-end demand plus one cross demand per
  // chain hop (the paper's Fig. 1a pattern generalized).
  std::vector<std::pair<int, int>> pairs;
  pairs.emplace_back(0, L);
  for (int u = 0; u < L; ++u) pairs.emplace_back(u, u + 1);

  te::TeInstance inst =
      te::TeInstance::make(topo, pairs, /*k_paths=*/2, params.d_max);
  // Cross demands route only on their direct link (as in Fig. 1a).
  for (std::size_t k = 1; k < inst.pairs.size(); ++k)
    inst.pairs[k].paths.resize(1);
  return inst;
}

DpFamilyParams DpInstanceGenerator::next_params(util::Rng& rng) const {
  DpFamilyParams p;
  p.chain_len = rng.uniform_int(ranges_.chain_len_min, ranges_.chain_len_max);
  p.main_capacity = rng.uniform(ranges_.main_cap_min, ranges_.main_cap_max);
  p.detour_capacity =
      rng.uniform(ranges_.detour_cap_min, ranges_.detour_cap_max);
  p.threshold = 0.5 * p.main_capacity;
  p.d_max = p.main_capacity;
  return p;
}

vbp::VbpInstance VbpInstanceGenerator::next(util::Rng& rng) const {
  vbp::VbpInstance inst;
  inst.num_balls = rng.uniform_int(ranges_.balls_min, ranges_.balls_max);
  inst.num_bins = inst.num_balls;
  inst.dims = ranges_.dims;
  inst.capacity = ranges_.capacity;
  return inst;
}

}  // namespace xplain::generalize
