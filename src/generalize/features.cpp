#include "generalize/features.h"

#include <algorithm>
#include <limits>

namespace xplain::generalize {

FeatureMap dp_instance_features(const te::TeInstance& inst,
                                const te::DpConfig& cfg) {
  FeatureMap f;
  double hops_sum = 0.0, hops_max = 0.0;
  double min_cap = std::numeric_limits<double>::infinity();
  double alt_sum = 0.0;
  for (const auto& pair : inst.pairs) {
    const auto& sp = pair.paths[0];
    hops_sum += sp.hops();
    hops_max = std::max<double>(hops_max, sp.hops());
    min_cap = std::min(min_cap, te::bottleneck_capacity(inst.topo, sp));
    alt_sum += static_cast<double>(pair.paths.size()) - 1.0;
  }
  const double n = std::max<std::size_t>(inst.pairs.size(), 1);
  f["pinned_sp_hops"] = hops_sum / n;
  f["pinned_sp_max_hops"] = hops_max;
  f["pinned_sp_min_cap"] = std::isfinite(min_cap) ? min_cap : 0.0;
  f["alt_paths"] = alt_sum / n;
  double global_min_cap = std::numeric_limits<double>::infinity();
  for (const auto& l : inst.topo.links())
    global_min_cap = std::min(global_min_cap, l.capacity);
  f["threshold_ratio"] =
      global_min_cap > 0 ? cfg.threshold / global_min_cap : 0.0;
  f["num_pairs"] = static_cast<double>(inst.num_pairs());
  return f;
}

FeatureMap vbp_instance_features(const vbp::VbpInstance& inst) {
  FeatureMap f;
  f["num_balls"] = inst.num_balls;
  f["num_bins"] = inst.num_bins;
  f["dims"] = inst.dims;
  f["capacity"] = inst.capacity;
  return f;
}

FeatureMap lb_instance_features(const lb::LbInstance& inst) {
  FeatureMap f;
  double paths_sum = 0.0, hops_sum = 0.0, path_count = 0.0;
  std::vector<double> link_degree(inst.topo.num_links(), 0.0);
  for (const auto& c : inst.commodities) {
    paths_sum += static_cast<double>(c.paths.size());
    for (const auto& p : c.paths) {
      hops_sum += p.hops();
      path_count += 1.0;
      for (te::LinkId l : p.links(inst.topo)) link_degree[l.v] += 1.0;
    }
  }
  double degree_sum = 0.0, cap_total = 0.0;
  for (double d : link_degree) degree_sum += d;
  for (const auto& l : inst.topo.links()) cap_total += l.capacity;
  const double k = std::max(inst.num_commodities(), 1);
  const double links = std::max(inst.topo.num_links(), 1);
  f["num_commodities"] = static_cast<double>(inst.num_commodities());
  f["num_links"] = static_cast<double>(inst.topo.num_links());
  f["num_nodes"] = static_cast<double>(inst.topo.num_nodes());
  f["paths_per_commodity"] = paths_sum / k;
  f["path_hops"] = path_count > 0 ? hops_sum / path_count : 0.0;
  f["shared_link_degree"] = degree_sum / links;
  f["demand_cap_ratio"] =
      cap_total > 0 ? k * inst.t_max / cap_total : 0.0;
  f["skew_span"] = inst.has_skew_dim() ? inst.skew_hi - inst.skew_lo : 0.0;
  double skewed_links = 0.0;
  for (bool s : inst.skewed) skewed_links += s ? 1.0 : 0.0;
  f["skewed_links"] = skewed_links;
  return f;
}

}  // namespace xplain::generalize
