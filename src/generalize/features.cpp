#include "generalize/features.h"

#include <algorithm>
#include <limits>

namespace xplain::generalize {

FeatureMap dp_instance_features(const te::TeInstance& inst,
                                const te::DpConfig& cfg) {
  FeatureMap f;
  double hops_sum = 0.0, hops_max = 0.0;
  double min_cap = std::numeric_limits<double>::infinity();
  double alt_sum = 0.0;
  for (const auto& pair : inst.pairs) {
    const auto& sp = pair.paths[0];
    hops_sum += sp.hops();
    hops_max = std::max<double>(hops_max, sp.hops());
    min_cap = std::min(min_cap, te::bottleneck_capacity(inst.topo, sp));
    alt_sum += static_cast<double>(pair.paths.size()) - 1.0;
  }
  const double n = std::max<std::size_t>(inst.pairs.size(), 1);
  f["pinned_sp_hops"] = hops_sum / n;
  f["pinned_sp_max_hops"] = hops_max;
  f["pinned_sp_min_cap"] = std::isfinite(min_cap) ? min_cap : 0.0;
  f["alt_paths"] = alt_sum / n;
  double global_min_cap = std::numeric_limits<double>::infinity();
  for (const auto& l : inst.topo.links())
    global_min_cap = std::min(global_min_cap, l.capacity);
  f["threshold_ratio"] =
      global_min_cap > 0 ? cfg.threshold / global_min_cap : 0.0;
  f["num_pairs"] = static_cast<double>(inst.num_pairs());
  return f;
}

FeatureMap vbp_instance_features(const vbp::VbpInstance& inst) {
  FeatureMap f;
  f["num_balls"] = inst.num_balls;
  f["num_bins"] = inst.num_bins;
  f["dims"] = inst.dims;
  f["capacity"] = inst.capacity;
  return f;
}

}  // namespace xplain::generalize
