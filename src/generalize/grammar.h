// The generalizer's predicate grammar (paper §5.4).  The paper sketches
//   increasing(P): forall a,b in P, |a| >= |b| -> gap(a) >= gap(b)
// as an example predicate; we implement the grammar as monotone-trend
// predicates over instance features, validated by Spearman rank correlation
// with a significance threshold (enumerative-synthesis style: enumerate all
// grammar instantiations, keep the statistically significant ones).
#pragma once

#include <string>
#include <vector>

#include "generalize/features.h"

namespace xplain::generalize {

/// One observation: an instance's features and the worst gap the analyzer
/// found on it.
struct InstanceObservation {
  FeatureMap features;
  double max_gap = 0.0;
};

enum class Trend { kIncreasing, kDecreasing };

struct Predicate {
  std::string feature;
  Trend trend = Trend::kIncreasing;
  double rho = 0.0;      // Spearman correlation of feature vs gap
  double p_value = 1.0;
  int support = 0;       // observations used

  /// "increasing(pinned_sp_hops)" — the paper's presentation style.
  std::string to_string() const;
};

struct GrammarOptions {
  double p_threshold = 0.05;
  double min_abs_rho = 0.3;  // require a non-trivial effect size
};

/// Enumerates increasing()/decreasing() over every feature present in all
/// observations; returns the significant predicates sorted by p-value.
std::vector<Predicate> mine_predicates(
    const std::vector<InstanceObservation>& observations,
    const GrammarOptions& opts = {});

}  // namespace xplain::generalize
