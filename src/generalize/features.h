// Feature extraction for the generalizer (paper §5.4): functions F(I) of
// the problem instance, built from the DSL metadata and the network-flow
// structure, over which the predicate grammar expresses trends like
// increasing(P) where P is the set of pinned shortest paths.
#pragma once

#include <map>
#include <string>

#include "te/demand_pinning.h"
#include "vbp/instance.h"

namespace xplain::generalize {

using FeatureMap = std::map<std::string, double>;

/// DP instance features:
///   pinned_sp_hops      mean shortest-path hop count over pairs (|P| in the
///                       paper's increasing(P) example)
///   pinned_sp_max_hops  max shortest-path hop count
///   pinned_sp_min_cap   min bottleneck capacity among shortest paths
///   alt_paths           mean number of alternate (non-shortest) paths
///   threshold_ratio     pinning threshold / min link capacity
///   num_pairs
FeatureMap dp_instance_features(const te::TeInstance& inst,
                                const te::DpConfig& cfg);

/// VBP instance features: num_balls, num_bins, dims, capacity.
FeatureMap vbp_instance_features(const vbp::VbpInstance& inst);

}  // namespace xplain::generalize
