// Feature extraction for the generalizer (paper §5.4): functions F(I) of
// the problem instance, built from the DSL metadata and the network-flow
// structure, over which the predicate grammar expresses trends like
// increasing(P) where P is the set of pinned shortest paths.
#pragma once

#include <map>
#include <string>

#include "lb/instance.h"
#include "te/demand_pinning.h"
#include "vbp/instance.h"

namespace xplain::generalize {

using FeatureMap = std::map<std::string, double>;

/// DP instance features:
///   pinned_sp_hops      mean shortest-path hop count over pairs (|P| in the
///                       paper's increasing(P) example)
///   pinned_sp_max_hops  max shortest-path hop count
///   pinned_sp_min_cap   min bottleneck capacity among shortest paths
///   alt_paths           mean number of alternate (non-shortest) paths
///   threshold_ratio     pinning threshold / min link capacity
///   num_pairs
FeatureMap dp_instance_features(const te::TeInstance& inst,
                                const te::DpConfig& cfg);

/// VBP instance features: num_balls, num_bins, dims, capacity.
FeatureMap vbp_instance_features(const vbp::VbpInstance& inst);

/// LB instance features:
///   num_commodities, num_links, num_nodes
///   paths_per_commodity   mean candidate-path count
///   path_hops             mean hop count across all candidate paths
///   shared_link_degree    mean number of candidate paths crossing a link
///                         (the contention WCMP's local splits ignore)
///   demand_cap_ratio      num_commodities * t_max / total link capacity
///   skew_span             skew_hi - skew_lo (0: no skew dimension)
///   skewed_links          number of links the skew dimension squeezes
FeatureMap lb_instance_features(const lb::LbInstance& inst);

}  // namespace xplain::generalize
