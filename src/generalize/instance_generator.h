// Instance generator (paper §5.4 / Fig. 3): produces diverse problem
// instances from the problem family description so the generalizer can find
// trends across instances rather than within one.
//
// The DP family is a "chain with detour" generalization of Fig. 1a: a main
// chain of `chain_len` hops carrying the pinnable end-to-end demand (its
// shortest path) plus per-hop cross demands, and a lower-capacity detour
// the optimal can reroute the pinned demand onto.  Sweeping chain_len and
// capacities exercises exactly the Type-3 trends §3 predicts (longer pinned
// paths and lower capacities hurt more).
#pragma once

#include "te/demand_pinning.h"
#include "util/random.h"
#include "vbp/instance.h"

namespace xplain::generalize {

struct DpFamilyParams {
  int chain_len = 2;          // hops on the pinned demand's shortest path
  double main_capacity = 100;
  double detour_capacity = 50;
  double threshold = 50;
  double d_max = 100;
};

/// Builds the chain-with-detour TE instance for the given parameters.
te::TeInstance make_dp_family_instance(const DpFamilyParams& params);

class DpInstanceGenerator {
 public:
  struct Ranges {
    int chain_len_min = 2, chain_len_max = 5;
    double main_cap_min = 60, main_cap_max = 140;
    double detour_cap_min = 30, detour_cap_max = 70;
  };

  DpInstanceGenerator() = default;
  explicit DpInstanceGenerator(Ranges ranges) : ranges_(ranges) {}

  DpFamilyParams next_params(util::Rng& rng) const;

 private:
  Ranges ranges_{};
};

class VbpInstanceGenerator {
 public:
  struct Ranges {
    int balls_min = 3, balls_max = 9;
    int dims = 1;
    double capacity = 1.0;
  };

  VbpInstanceGenerator() = default;
  explicit VbpInstanceGenerator(Ranges ranges) : ranges_(ranges) {}

  vbp::VbpInstance next(util::Rng& rng) const;

 private:
  Ranges ranges_{};
};

}  // namespace xplain::generalize
