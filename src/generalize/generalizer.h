// The generalizer (paper §5.4): runs the analyzer over many generated
// instances, collects (features, worst gap) observations, and mines the
// predicate grammar for statistically significant instance-agnostic
// explanations — the Type-3 output.
#pragma once

#include <functional>
#include <memory>

#include "analyzer/search_analyzer.h"
#include "generalize/grammar.h"
#include "generalize/instance_generator.h"
#include "xplain/pipeline.h"

namespace xplain::generalize {

struct GeneralizerOptions {
  int instances = 24;
  double min_gap = 0.0;   // analyzer cutoff per instance (0: record any)
  GrammarOptions grammar;
  analyzer::SearchOptions search;
  std::uint64_t seed = 31337;
  /// Normalize gaps by d_max (DP) / 1 (VBP) so instances are comparable.
  bool normalize_gap = true;
};

struct GeneralizerResult {
  std::vector<InstanceObservation> observations;
  std::vector<Predicate> predicates;
};

/// A generalization case: an evaluator plus the features describing the
/// instance it wraps.
struct Case {
  std::unique_ptr<analyzer::GapEvaluator> eval;
  FeatureMap features;
  double gap_scale = 1.0;  // divide gaps by this when normalizing
};

using CaseFactory = std::function<Case(util::Rng&)>;

GeneralizerResult generalize(const CaseFactory& factory,
                             const GeneralizerOptions& opts = {});

/// Type-3 over a batch of pipeline runs: every PipelineResult whose case
/// published features() becomes one observation (the best analyzer gap,
/// normalized by the case's gap_scale), and the grammar is mined across
/// them.  xplain::Engine::run calls this automatically over its finished
/// (case x scenario) grid; run with a low PipelineOptions::min_gap so weak
/// instances contribute their true gaps instead of zeros.
GeneralizerResult generalize_batch(
    const std::vector<xplain::PipelineResult>& results,
    const GrammarOptions& grammar = {}, bool normalize_gap = true);

/// Prebuilt factories for the paper's two running examples (defined in the
/// cases layer; link xplain_cases to use them).  These predate the engine:
/// a scenario-capable registered case needs no bespoke factory — an
/// ExperimentSpec grid feeds generalize_batch directly (which is why there
/// is no lb_case_factory: "wcmp" sweeps arrive via Engine::run).
CaseFactory dp_case_factory(DpInstanceGenerator gen = DpInstanceGenerator{});
CaseFactory vbp_case_factory(VbpInstanceGenerator gen = VbpInstanceGenerator{});

}  // namespace xplain::generalize
