#include "generalize/grammar.h"

#include <algorithm>
#include <cmath>

#include "stats/spearman.h"

namespace xplain::generalize {

std::string Predicate::to_string() const {
  return std::string(trend == Trend::kIncreasing ? "increasing" : "decreasing") +
         "(" + feature + ")";
}

std::vector<Predicate> mine_predicates(
    const std::vector<InstanceObservation>& observations,
    const GrammarOptions& opts) {
  std::vector<Predicate> out;
  if (observations.size() < 3) return out;

  // Features present in every observation.
  std::vector<std::string> features;
  for (const auto& [k, v] : observations.front().features) {
    bool everywhere = true;
    for (const auto& obs : observations)
      if (!obs.features.count(k)) everywhere = false;
    if (everywhere) features.push_back(k);
  }

  std::vector<double> gaps;
  gaps.reserve(observations.size());
  for (const auto& obs : observations) gaps.push_back(obs.max_gap);

  for (const auto& f : features) {
    std::vector<double> xs;
    xs.reserve(observations.size());
    for (const auto& obs : observations) xs.push_back(obs.features.at(f));
    auto r = stats::spearman(xs, gaps);
    if (std::fabs(r.rho) < opts.min_abs_rho) continue;
    Predicate p;
    p.feature = f;
    p.support = r.n;
    p.rho = r.rho;
    if (r.rho > 0) {
      p.trend = Trend::kIncreasing;
      p.p_value = r.p_value_positive;
    } else {
      p.trend = Trend::kDecreasing;
      p.p_value = r.p_value_negative;
    }
    if (p.p_value < opts.p_threshold) out.push_back(std::move(p));
  }
  std::sort(out.begin(), out.end(),
            [](const Predicate& a, const Predicate& b) {
              return a.p_value < b.p_value;
            });
  return out;
}

}  // namespace xplain::generalize
