// Graphviz export of a FlowNetwork, optionally colored by an explanation
// heatmap (paper Fig. 4: red = heuristic-only edges, blue = benchmark-only).
#pragma once

#include <map>
#include <string>

#include "flowgraph/network.h"

namespace xplain::flowgraph {

struct DotOptions {
  /// Per-edge heat in [-1, 1]: negative = heuristic-only (red), positive =
  /// benchmark-only (blue), 0 = both/neither (gray).  Keyed by EdgeId::v.
  const std::map<int, double>* edge_heat = nullptr;
  bool show_capacities = true;
};

std::string to_dot(const FlowNetwork& net, const DotOptions& opts = {});

}  // namespace xplain::flowgraph
