// Graphviz export of a FlowNetwork, optionally colored by an explanation
// heatmap (paper Fig. 4: red = heuristic-only edges, blue = benchmark-only).
#pragma once

#include <string>
#include <vector>

#include "flowgraph/network.h"

namespace xplain::flowgraph {

struct DotOptions {
  /// Per-edge heat in [-1, 1]: negative = heuristic-only (red), positive =
  /// benchmark-only (blue), 0 = both/neither (gray).  Indexed by EdgeId::v;
  /// edges beyond the vector's length are left uncolored.
  const std::vector<double>* edge_heat = nullptr;
  bool show_capacities = true;
};

std::string to_dot(const FlowNetwork& net, const DotOptions& opts = {});

}  // namespace xplain::flowgraph
