// Theorem A.1 constructive proof: any linear program (LP or MILP with
// binary integer columns) can be expressed as a FlowNetwork using only the
// split / pick / multiply / all-equal / sink behaviors.
//
// The construction follows App. A of the paper exactly:
//   T1  split coefficient matrices and rhs into positive/negative parts;
//   T2  replace each coefficient*variable term with an auxiliary edge
//       produced by a MULTIPLY node;
//   T3  fan copies of each variable out through an ALL-EQUAL node so every
//       term edge carries the variable's value;
//   S1  one SPLIT node per row enforces the (slackened) row as flow
//       conservation, with constant b+/b- edges;
//   S4  binaries become PICK nodes fed by a constant-1 edge;
//   objective: an extra row p = c'x + K (K an offset keeping p >= 0) and a
//   SINK measuring p.
//
// Requirements checked at runtime: continuous columns need finite lower
// bounds >= 0 is NOT required (finite lowers are shifted), but -inf lowers
// are rejected; integer columns must be binary after shifting.
#pragma once

#include "flowgraph/network.h"
#include "solver/lp.h"

namespace xplain::flowgraph {

struct EncodedLp {
  FlowNetwork net;
  /// Objective offset: true objective = sink inflow - offset (for kMaximize
  /// originals; minimization is encoded by negating costs first).
  double offset = 0.0;
  /// Was the original problem a minimization? (Result must be negated back.)
  bool was_minimize = false;
  /// Edge carrying each original column's value (after lower-bound shift:
  /// edge flow == x_j - lo_j).
  std::vector<EdgeId> var_edge;
  std::vector<double> var_shift;  // x_j = flow + var_shift[j]

  /// Recovers the original-problem objective value from a solved sink value.
  double recover_objective(double sink_inflow) const {
    const double obj = sink_inflow - offset;
    return was_minimize ? -obj : obj;
  }
};

/// Encodes `p` per Theorem A.1.  Throws std::invalid_argument for columns
/// with infinite lower bounds or non-binary integers.
EncodedLp encode_lp(const solver::LpProblem& p);

}  // namespace xplain::flowgraph
