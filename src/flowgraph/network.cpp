#include "flowgraph/network.h"

#include <limits>

namespace xplain::flowgraph {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

const char* to_string(NodeKind k) {
  switch (k) {
    case NodeKind::kSplit: return "split";
    case NodeKind::kPick: return "pick";
    case NodeKind::kMultiply: return "multiply";
    case NodeKind::kAllEqual: return "all_equal";
    case NodeKind::kCopy: return "copy";
    case NodeKind::kSource: return "source";
    case NodeKind::kSink: return "sink";
  }
  return "?";
}

NodeId FlowNetwork::add_node(std::string name, NodeKind kind) {
  NodeId id{num_nodes()};
  Node n;
  n.name = std::move(name);
  n.kind = kind;
  nodes_.push_back(std::move(n));
  in_.emplace_back();
  out_.emplace_back();
  return id;
}

EdgeId FlowNetwork::add_edge(NodeId from, NodeId to, std::string name) {
  EdgeId id{num_edges()};
  Edge e;
  e.from = from.v;
  e.to = to.v;
  e.capacity = kInf;
  if (name.empty())
    name = nodes_[from.v].name + "->" + nodes_[to.v].name;
  e.name = std::move(name);
  edges_.push_back(std::move(e));
  out_[from.v].push_back(id);
  in_[to.v].push_back(id);
  return id;
}

void FlowNetwork::set_capacity(EdgeId e, double cap) {
  edges_[e.v].capacity = cap;
}
void FlowNetwork::set_fixed(EdgeId e, double value) {
  edges_[e.v].fixed = value;
}
void FlowNetwork::set_multiplier(NodeId n, double c) {
  nodes_[n.v].multiplier = c;
}
void FlowNetwork::set_source_behavior(NodeId n, NodeKind behavior) {
  nodes_[n.v].source_behavior = behavior;
}
void FlowNetwork::set_injection(NodeId n, double value) {
  nodes_[n.v].injection_lo = value;
  nodes_[n.v].injection_hi = value;
  nodes_[n.v].is_input = false;
}
void FlowNetwork::set_injection_range(NodeId n, double lo, double hi,
                                      bool is_input) {
  nodes_[n.v].injection_lo = lo;
  nodes_[n.v].injection_hi = hi;
  nodes_[n.v].is_input = is_input;
}
void FlowNetwork::set_node_meta(NodeId n, const std::string& k,
                                const std::string& v) {
  nodes_[n.v].metadata[k] = v;
}
void FlowNetwork::set_edge_meta(EdgeId e, const std::string& k,
                                const std::string& v) {
  edges_[e.v].metadata[k] = v;
}

void FlowNetwork::set_objective(NodeId sink, bool maximize) {
  objective_sink_ = sink;
  objective_maximize_ = maximize;
}

std::vector<NodeId> FlowNetwork::input_sources() const {
  std::vector<NodeId> out;
  for (int i = 0; i < num_nodes(); ++i)
    if (nodes_[i].kind == NodeKind::kSource && nodes_[i].is_input)
      out.push_back(NodeId{i});
  return out;
}

NodeId FlowNetwork::find_node(const std::string& name) const {
  for (int i = 0; i < num_nodes(); ++i)
    if (nodes_[i].name == name) return NodeId{i};
  return NodeId{};
}

EdgeId FlowNetwork::find_edge(const std::string& name) const {
  for (int i = 0; i < num_edges(); ++i)
    if (edges_[i].name == name) return EdgeId{i};
  return EdgeId{};
}

std::vector<std::string> FlowNetwork::validate() const {
  std::vector<std::string> errs;
  for (int i = 0; i < num_nodes(); ++i) {
    const Node& n = nodes_[i];
    const auto ins = in_[i].size(), outs = out_[i].size();
    switch (n.kind) {
      case NodeKind::kMultiply:
        if (ins != 1 || outs != 1)
          errs.push_back("multiply node '" + n.name +
                         "' must have exactly one incoming and one outgoing "
                         "edge");
        break;
      case NodeKind::kSink:
        if (outs != 0)
          errs.push_back("sink node '" + n.name + "' has outgoing edges");
        break;
      case NodeKind::kSource:
        if (ins != 0)
          errs.push_back("source node '" + n.name + "' has incoming edges");
        if (outs == 0)
          errs.push_back("source node '" + n.name + "' has no outgoing edges");
        if (n.source_behavior != NodeKind::kSplit &&
            n.source_behavior != NodeKind::kPick)
          errs.push_back("source node '" + n.name +
                         "' behavior must be split or pick");
        if (n.injection_lo > n.injection_hi)
          errs.push_back("source node '" + n.name + "' has empty range");
        break;
      case NodeKind::kPick:
        if (outs == 0)
          errs.push_back("pick node '" + n.name + "' has no outgoing edges");
        break;
      default:
        break;
    }
  }
  if (objective_sink_.valid()) {
    if (nodes_[objective_sink_.v].kind != NodeKind::kSink)
      errs.push_back("objective node '" + nodes_[objective_sink_.v].name +
                     "' is not a sink");
  }
  for (int e = 0; e < num_edges(); ++e) {
    const Edge& ed = edges_[e];
    if (ed.fixed && (*ed.fixed < 0 || *ed.fixed > ed.capacity))
      errs.push_back("edge '" + ed.name + "' fixed value outside [0, cap]");
    if (ed.capacity < 0)
      errs.push_back("edge '" + ed.name + "' has negative capacity");
  }
  return errs;
}

}  // namespace xplain::flowgraph
