#include "flowgraph/builder.h"

#include <stdexcept>

namespace xplain::flowgraph {

NodeId NetworkBuilder::require_node(const std::string& name) const {
  NodeId id = net_.find_node(name);
  if (!id.valid())
    throw std::invalid_argument("builder: unknown node '" + name + "'");
  return id;
}

NetworkBuilder& NetworkBuilder::source(const std::string& name) {
  cur_node_ = net_.add_node(name, NodeKind::kSource);
  cur_edge_ = EdgeId{};
  return *this;
}

NetworkBuilder& NetworkBuilder::sink(const std::string& name) {
  cur_node_ = net_.add_node(name, NodeKind::kSink);
  cur_edge_ = EdgeId{};
  return *this;
}

NetworkBuilder& NetworkBuilder::node(const std::string& name, NodeKind kind) {
  cur_node_ = net_.add_node(name, kind);
  cur_edge_ = EdgeId{};
  return *this;
}

NetworkBuilder& NetworkBuilder::edge(const std::string& from,
                                     const std::string& to,
                                     const std::string& name) {
  cur_edge_ = net_.add_edge(require_node(from), require_node(to), name);
  cur_node_ = NodeId{};
  return *this;
}

NetworkBuilder& NetworkBuilder::split() {
  net_.set_source_behavior(cur_node_, NodeKind::kSplit);
  return *this;
}

NetworkBuilder& NetworkBuilder::pick() {
  net_.set_source_behavior(cur_node_, NodeKind::kPick);
  return *this;
}

NetworkBuilder& NetworkBuilder::range(double lo, double hi) {
  net_.set_injection_range(cur_node_, lo, hi, /*is_input=*/true);
  return *this;
}

NetworkBuilder& NetworkBuilder::injection(double value) {
  net_.set_injection(cur_node_, value);
  return *this;
}

NetworkBuilder& NetworkBuilder::multiplier(double c) {
  net_.set_multiplier(cur_node_, c);
  return *this;
}

NetworkBuilder& NetworkBuilder::node_meta(const std::string& k,
                                          const std::string& v) {
  net_.set_node_meta(cur_node_, k, v);
  return *this;
}

NetworkBuilder& NetworkBuilder::cap(double capacity) {
  net_.set_capacity(cur_edge_, capacity);
  return *this;
}

NetworkBuilder& NetworkBuilder::fixed(double value) {
  net_.set_fixed(cur_edge_, value);
  return *this;
}

NetworkBuilder& NetworkBuilder::edge_meta(const std::string& k,
                                          const std::string& v) {
  net_.set_edge_meta(cur_edge_, k, v);
  return *this;
}

NetworkBuilder& NetworkBuilder::objective(const std::string& sink_name,
                                          bool maximize) {
  net_.set_objective(require_node(sink_name), maximize);
  return *this;
}

FlowNetwork NetworkBuilder::build() const {
  auto errs = net_.validate();
  if (!errs.empty()) {
    std::string msg = "builder: invalid network:";
    for (const auto& e : errs) msg += "\n  " + e;
    throw std::invalid_argument(msg);
  }
  return net_;
}

}  // namespace xplain::flowgraph
