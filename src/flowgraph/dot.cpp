#include "flowgraph/dot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace xplain::flowgraph {

namespace {

const char* shape_for(NodeKind k) {
  switch (k) {
    case NodeKind::kSource: return "invtriangle";
    case NodeKind::kSink: return "doublecircle";
    case NodeKind::kPick: return "diamond";
    case NodeKind::kMultiply: return "box";
    case NodeKind::kAllEqual: return "hexagon";
    case NodeKind::kCopy: return "trapezium";
    case NodeKind::kSplit: return "ellipse";
  }
  return "ellipse";
}

// Heat in [-1,1] -> #RRGGBB: -1 = strong red, +1 = strong blue, 0 = gray.
std::string heat_color(double h) {
  h = std::clamp(h, -1.0, 1.0);
  const double mag = std::abs(h);
  const int base = 176;  // gray level at zero heat
  int r = base, g = base, b = base;
  if (h < 0) {
    r = base + static_cast<int>((255 - base) * mag);
    g = static_cast<int>(base * (1 - mag));
    b = static_cast<int>(base * (1 - mag));
  } else if (h > 0) {
    b = base + static_cast<int>((255 - base) * mag);
    g = static_cast<int>(base * (1 - mag));
    r = static_cast<int>(base * (1 - mag));
  }
  char buf[8];
  std::snprintf(buf, sizeof(buf), "#%02X%02X%02X", r, g, b);
  return buf;
}

}  // namespace

std::string to_dot(const FlowNetwork& net, const DotOptions& opts) {
  std::ostringstream os;
  os << "digraph \"" << net.name() << "\" {\n  rankdir=TB;\n";
  for (int i = 0; i < net.num_nodes(); ++i) {
    const Node& n = net.node(NodeId{i});
    os << "  n" << i << " [label=\"" << n.name << "\" shape="
       << shape_for(n.kind);
    if (net.objective_sink().valid() && net.objective_sink().v == i)
      os << " style=bold";
    os << "];\n";
  }
  for (int e = 0; e < net.num_edges(); ++e) {
    const Edge& ed = net.edge(EdgeId{e});
    os << "  n" << ed.from << " -> n" << ed.to << " [label=\"" << ed.name;
    if (opts.show_capacities && std::isfinite(ed.capacity))
      os << " (cap " << ed.capacity << ")";
    if (ed.fixed) os << " (=" << *ed.fixed << ")";
    os << "\"";
    if (opts.edge_heat && e < static_cast<int>(opts.edge_heat->size())) {
      const double h = (*opts.edge_heat)[e];
      os << " color=\"" << heat_color(h) << "\" penwidth="
         << 1.0 + 3.0 * std::abs(h);
    }
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace xplain::flowgraph
