#include "flowgraph/compiler.h"

#include <limits>
#include <stdexcept>

namespace xplain::flowgraph {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

using model::LinExpr;
using model::Var;

LinExpr sum_flows(const CompiledNetwork& c, const std::vector<EdgeId>& es) {
  LinExpr total;
  for (EdgeId e : es) total += LinExpr(c.edge_flow[e.v]);
  return total;
}
}  // namespace

std::vector<double> CompiledNetwork::flows(const std::vector<double>& x) const {
  std::vector<double> f(edge_flow.size());
  for (std::size_t e = 0; e < edge_flow.size(); ++e)
    f[e] = x[edge_flow[e].index];
  return f;
}

CompiledNetwork compile(const FlowNetwork& net, const CompileOptions& opts) {
  {
    auto errs = net.validate();
    if (!errs.empty()) {
      std::string msg = "invalid flow network '" + net.name() + "':";
      for (const auto& e : errs) msg += "\n  " + e;
      throw std::invalid_argument(msg);
    }
  }

  CompiledNetwork c;
  c.edge_flow.reserve(net.num_edges());
  c.injection.assign(net.num_nodes(), Var{});
  c.pick_choice.assign(net.num_nodes(), {});

  // Edge flow variables with capacity/fixed bounds.
  for (int e = 0; e < net.num_edges(); ++e) {
    const Edge& ed = net.edge(EdgeId{e});
    double lo = 0.0, hi = ed.capacity;
    if (ed.fixed) lo = hi = *ed.fixed;
    c.edge_flow.push_back(c.model.add_continuous(lo, hi, "f_" + ed.name));
  }

  auto add_pick_one_hot = [&](NodeId id) {
    const auto& outs = net.out_edges(id);
    LinExpr choice_sum;
    auto& choices = c.pick_choice[id.v];
    for (EdgeId e : outs) {
      Var b = c.model.add_binary("pick_" + net.edge(e).name);
      choices.push_back(b);
      choice_sum += LinExpr(b);
      const double cap = net.edge(e).capacity;
      const double m = (cap == kInf) ? opts.big_m : cap;
      c.model.add(LinExpr(c.edge_flow[e.v]) <= m * LinExpr(b),
                  "pickcap_" + net.edge(e).name);
    }
    c.model.add(choice_sum == LinExpr(1.0), "pick1_" + net.node(id).name);
  };

  for (int i = 0; i < net.num_nodes(); ++i) {
    const NodeId id{i};
    const Node& n = net.node(id);
    const auto& ins = net.in_edges(id);
    const auto& outs = net.out_edges(id);
    switch (n.kind) {
      case NodeKind::kSplit:
        c.model.add(sum_flows(c, ins) == sum_flows(c, outs),
                    "cons_" + n.name);
        break;
      case NodeKind::kPick:
        c.model.add(sum_flows(c, ins) == sum_flows(c, outs),
                    "cons_" + n.name);
        add_pick_one_hot(id);
        break;
      case NodeKind::kMultiply:
        c.model.add(LinExpr(c.edge_flow[outs[0].v]) ==
                        n.multiplier * LinExpr(c.edge_flow[ins[0].v]),
                    "mult_" + n.name);
        break;
      case NodeKind::kAllEqual: {
        // All incident edges carry the same flow as the first one.
        Var ref;
        for (EdgeId e : ins) {
          if (!ref.valid()) {
            ref = c.edge_flow[e.v];
            continue;
          }
          c.model.add(LinExpr(c.edge_flow[e.v]) == LinExpr(ref),
                      "alleq_" + net.edge(e).name);
        }
        for (EdgeId e : outs) {
          if (!ref.valid()) {
            ref = c.edge_flow[e.v];
            continue;
          }
          c.model.add(LinExpr(c.edge_flow[e.v]) == LinExpr(ref),
                      "alleq_" + net.edge(e).name);
        }
        break;
      }
      case NodeKind::kCopy: {
        const LinExpr in_total = sum_flows(c, ins);
        for (EdgeId e : outs)
          c.model.add(LinExpr(c.edge_flow[e.v]) == in_total,
                      "copy_" + net.edge(e).name);
        break;
      }
      case NodeKind::kSource: {
        Var inj = c.model.add_continuous(n.injection_lo, n.injection_hi,
                                         "inj_" + n.name);
        c.injection[i] = inj;
        c.model.add(sum_flows(c, outs) == LinExpr(inj), "src_" + n.name);
        if (n.source_behavior == NodeKind::kPick) add_pick_one_hot(id);
        break;
      }
      case NodeKind::kSink:
        break;  // objective handled below
    }
  }

  if (net.objective_sink().valid()) {
    const LinExpr inflow = sum_flows(c, net.in_edges(net.objective_sink()));
    c.model.set_objective(net.objective_maximize() ? solver::Sense::kMaximize
                                                   : solver::Sense::kMinimize,
                          inflow);
  }
  return c;
}

}  // namespace xplain::flowgraph
