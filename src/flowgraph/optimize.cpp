#include "flowgraph/optimize.h"

#include <algorithm>
#include <limits>

namespace xplain::flowgraph {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Mutable working copy.
struct Work {
  struct WEdge {
    Edge data;
    bool alive = true;
    // original edges folded into this one (for edge_map)
    std::vector<int> origins;
  };
  std::vector<Node> nodes;
  std::vector<bool> node_alive;
  std::vector<WEdge> edges;
  int objective_node = -1;
  bool maximize = true;

  std::vector<int> in_of(int n) const {
    std::vector<int> r;
    for (int e = 0; e < static_cast<int>(edges.size()); ++e)
      if (edges[e].alive && edges[e].data.to == n) r.push_back(e);
    return r;
  }
  std::vector<int> out_of(int n) const {
    std::vector<int> r;
    for (int e = 0; e < static_cast<int>(edges.size()); ++e)
      if (edges[e].alive && edges[e].data.from == n) r.push_back(e);
    return r;
  }
};

bool conserving(NodeKind k) {
  return k == NodeKind::kSplit || k == NodeKind::kPick;
}

// Pass 1: edges that cannot carry flow.
bool prune_dead_edges(Work& w) {
  bool changed = false;
  for (auto& e : w.edges) {
    if (!e.alive) continue;
    const bool zero_cap = e.data.capacity <= 0.0;
    const bool zero_fixed = e.data.fixed && *e.data.fixed == 0.0;
    if (zero_cap || zero_fixed) {
      e.alive = false;
      changed = true;
    }
  }
  return changed;
}

// Pass 2: contract pass-through conserving nodes.
bool contract_chains(Work& w) {
  bool changed = false;
  for (int n = 0; n < static_cast<int>(w.nodes.size()); ++n) {
    if (!w.node_alive[n]) continue;
    const Node& node = w.nodes[n];
    const bool contractible = (node.kind == NodeKind::kSplit ||
                               node.kind == NodeKind::kAllEqual) &&
                              n != w.objective_node;
    if (!contractible) continue;
    auto ins = w.in_of(n), outs = w.out_of(n);
    if (ins.size() != 1 || outs.size() != 1) continue;
    Work::WEdge& a = w.edges[ins[0]];
    Work::WEdge& b = w.edges[outs[0]];
    if (a.data.from == n || b.data.to == n) continue;  // self loop
    if (a.data.fixed && b.data.fixed && *a.data.fixed != *b.data.fixed)
      continue;  // contradictory; leave for the solver to report infeasible
    // Merge b into a: a now runs from a.from to b.to.
    a.data.to = b.data.to;
    a.data.capacity = std::min(a.data.capacity, b.data.capacity);
    if (b.data.fixed) a.data.fixed = b.data.fixed;
    if (a.data.fixed)
      a.data.capacity = std::max(a.data.capacity, *a.data.fixed);
    a.data.name += "+" + b.data.name;
    for (const auto& [k, v] : b.data.metadata) a.data.metadata.emplace(k, v);
    a.origins.insert(a.origins.end(), b.origins.begin(), b.origins.end());
    b.alive = false;
    w.node_alive[n] = false;
    changed = true;
  }
  return changed;
}

// Pass 3: conserving nodes with no outlet (or no inlet, for non-sources)
// force their incident flows to zero.
bool prune_dangling(Work& w) {
  bool changed = false;
  for (int n = 0; n < static_cast<int>(w.nodes.size()); ++n) {
    if (!w.node_alive[n]) continue;
    const Node& node = w.nodes[n];
    if (node.kind == NodeKind::kSink || n == w.objective_node) continue;
    auto ins = w.in_of(n), outs = w.out_of(n);
    if (ins.empty() && outs.empty()) {
      if (node.kind != NodeKind::kSource) {
        w.node_alive[n] = false;
        changed = true;
      }
      continue;
    }
    if (!conserving(node.kind) && node.kind != NodeKind::kCopy) continue;
    if (node.kind == NodeKind::kSource) continue;
    if (outs.empty() && !ins.empty()) {
      // Conservation forces all in-flows to zero.
      for (int e : ins) {
        if (w.edges[e].data.fixed && *w.edges[e].data.fixed > 0) continue;
        w.edges[e].data.capacity = 0.0;
        changed = true;
      }
    }
    if (ins.empty() && !outs.empty()) {
      for (int e : outs) {
        if (w.edges[e].data.fixed && *w.edges[e].data.fixed > 0) continue;
        w.edges[e].data.capacity = 0.0;
        changed = true;
      }
    }
  }
  return changed;
}

}  // namespace

OptimizeResult optimize(const FlowNetwork& input) {
  Work w;
  w.nodes = input.nodes();
  w.node_alive.assign(w.nodes.size(), true);
  w.edges.reserve(input.num_edges());
  for (int e = 0; e < input.num_edges(); ++e) {
    Work::WEdge we;
    we.data = input.edge(EdgeId{e});
    we.origins = {e};
    w.edges.push_back(std::move(we));
  }
  if (input.objective_sink().valid())
    w.objective_node = input.objective_sink().v;
  w.maximize = input.objective_maximize();

  const std::size_t nodes_before =
      static_cast<std::size_t>(input.num_nodes());
  int contracted = 0;
  for (bool changed = true; changed;) {
    changed = false;
    changed |= prune_dead_edges(w);
    const int alive_before = static_cast<int>(
        std::count(w.node_alive.begin(), w.node_alive.end(), true));
    if (contract_chains(w)) {
      changed = true;
      contracted += alive_before -
                    static_cast<int>(std::count(w.node_alive.begin(),
                                                w.node_alive.end(), true));
    }
    changed |= prune_dangling(w);
  }

  // Rebuild a clean network.
  OptimizeResult res;
  res.contracted_nodes = contracted;
  FlowNetwork out(input.name() + "_opt");
  std::vector<int> node_map(w.nodes.size(), -1);
  for (int n = 0; n < static_cast<int>(w.nodes.size()); ++n) {
    if (!w.node_alive[n]) continue;
    NodeId id = out.add_node(w.nodes[n].name, w.nodes[n].kind);
    out.node(id) = w.nodes[n];
    node_map[n] = id.v;
  }
  res.edge_map.assign(input.num_edges(), -1);
  for (const auto& we : w.edges) {
    if (!we.alive) {
      res.removed_edges++;
      continue;
    }
    NodeId from{node_map[we.data.from]}, to{node_map[we.data.to]};
    EdgeId id = out.add_edge(from, to, we.data.name);
    Edge& stored = out.edge(id);
    stored.capacity = we.data.capacity;
    stored.fixed = we.data.fixed;
    stored.metadata = we.data.metadata;
    for (int orig : we.origins) res.edge_map[orig] = id.v;
  }
  if (w.objective_node >= 0 && node_map[w.objective_node] >= 0)
    out.set_objective(NodeId{node_map[w.objective_node]}, w.maximize);
  res.pruned_nodes = static_cast<int>(nodes_before) - out.num_nodes() -
                     res.contracted_nodes;
  res.net = std::move(out);
  return res;
}

}  // namespace xplain::flowgraph
