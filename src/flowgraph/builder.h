// LINQ-style fluent builder for FlowNetwork (the paper implements its DSL
// "in a LINQ-style language"; this is the C++ equivalent).
//
//   FlowNetwork net = NetworkBuilder("dp")
//       .source("d12").range(0, 100).split()
//       .source("d13").range(0, 100).split()
//       .node("path_1_2", NodeKind::kCopy)
//       .sink("met")
//       .edge("d12", "path_1_2").cap(100)
//       .objective("met", /*maximize=*/true)
//       .build();
//
// Builder methods return the builder, so heuristic descriptions read as one
// declarative chain.  `source/node/sink/edge` set the "current" element that
// the modifier methods (range, cap, fixed, meta, ...) apply to.
#pragma once

#include <string>

#include "flowgraph/network.h"

namespace xplain::flowgraph {

class NetworkBuilder {
 public:
  explicit NetworkBuilder(std::string name) : net_(std::move(name)) {}

  NetworkBuilder& source(const std::string& name);
  NetworkBuilder& sink(const std::string& name);
  NetworkBuilder& node(const std::string& name, NodeKind kind);
  NetworkBuilder& edge(const std::string& from, const std::string& to,
                       const std::string& name = {});

  // --- Modifiers for the current node. ---
  NetworkBuilder& split();  // source behavior
  NetworkBuilder& pick();   // source behavior
  NetworkBuilder& range(double lo, double hi);     // input injection range
  NetworkBuilder& injection(double value);         // constant injection
  NetworkBuilder& multiplier(double c);
  NetworkBuilder& node_meta(const std::string& k, const std::string& v);

  // --- Modifiers for the current edge. ---
  NetworkBuilder& cap(double capacity);
  NetworkBuilder& fixed(double value);
  NetworkBuilder& edge_meta(const std::string& k, const std::string& v);

  NetworkBuilder& objective(const std::string& sink_name, bool maximize);

  /// Finalizes; throws std::invalid_argument when validation fails.
  FlowNetwork build() const;

 private:
  NodeId require_node(const std::string& name) const;

  FlowNetwork net_;
  NodeId cur_node_;
  EdgeId cur_edge_;
};

}  // namespace xplain::flowgraph
