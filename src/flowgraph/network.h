// The XPlain domain-specific language (paper §5.1, App. A).
//
// A FlowNetwork is a directed graph whose edges carry non-negative flow and
// whose nodes impose "behaviors" on the flows around them:
//
//   SPLIT     flow conservation (sum in == sum out), optional edge caps
//   PICK      conservation + exactly one outgoing edge carries flow
//   MULTIPLY  single-in single-out, out = C * in
//   ALL_EQUAL every incident edge carries the same flow
//   COPY      every outgoing edge carries the full incoming sum
//   SOURCE    produces traffic (the problem *input*), with split or pick
//             behavior over its outgoing edges
//   SINK      consumes traffic; a designated sink is the objective
//
// Nodes and edges carry free-form metadata (the paper uses it to improve
// explanations and to drive the generalizer's feature extraction).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace xplain::flowgraph {

enum class NodeKind {
  kSplit,
  kPick,
  kMultiply,
  kAllEqual,
  kCopy,
  kSource,
  kSink,
};

const char* to_string(NodeKind k);

struct NodeId {
  int v = -1;
  bool valid() const { return v >= 0; }
  friend bool operator==(NodeId a, NodeId b) { return a.v == b.v; }
};

struct EdgeId {
  int v = -1;
  bool valid() const { return v >= 0; }
  friend bool operator==(EdgeId a, EdgeId b) { return a.v == b.v; }
};

struct Node {
  std::string name;
  NodeKind kind = NodeKind::kSplit;
  /// For kSource: the conservation behavior enforced over outgoing edges.
  NodeKind source_behavior = NodeKind::kSplit;
  /// For kMultiply: the constant C.
  double multiplier = 1.0;
  /// For kSource: injection range [lo, hi]; lo == hi pins it. A source whose
  /// range is marked `is_input` is one dimension of the analyzer's input
  /// space (MetaOpt's OuterVar).
  double injection_lo = 0.0;
  double injection_hi = 0.0;
  bool is_input = false;
  std::map<std::string, std::string> metadata;
};

struct Edge {
  std::string name;
  int from = -1;
  int to = -1;
  /// Upper bound on flow (capacity constraint); infinity when absent.
  double capacity;
  /// When set, the edge must carry exactly this flow (constant edges in the
  /// App. A construction).
  std::optional<double> fixed;
  std::map<std::string, std::string> metadata;
};

class FlowNetwork {
 public:
  explicit FlowNetwork(std::string name = "net") : name_(std::move(name)) {}

  NodeId add_node(std::string name, NodeKind kind);
  EdgeId add_edge(NodeId from, NodeId to, std::string name = {});

  void set_capacity(EdgeId e, double cap);
  void set_fixed(EdgeId e, double value);
  void set_multiplier(NodeId n, double c);
  void set_source_behavior(NodeId n, NodeKind behavior);
  /// Fixed injection (a constant input).
  void set_injection(NodeId n, double value);
  /// Ranged injection; `is_input` marks it as an analyzer input dimension.
  void set_injection_range(NodeId n, double lo, double hi,
                           bool is_input = true);
  void set_node_meta(NodeId n, const std::string& k, const std::string& v);
  void set_edge_meta(EdgeId e, const std::string& k, const std::string& v);

  /// Chooses which sink's total inflow is the objective and the direction.
  void set_objective(NodeId sink, bool maximize);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const Node& node(NodeId n) const { return nodes_[n.v]; }
  const Edge& edge(EdgeId e) const { return edges_[e.v]; }
  Node& node(NodeId n) { return nodes_[n.v]; }
  Edge& edge(EdgeId e) { return edges_[e.v]; }
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }

  const std::vector<EdgeId>& in_edges(NodeId n) const { return in_[n.v]; }
  const std::vector<EdgeId>& out_edges(NodeId n) const { return out_[n.v]; }

  NodeId objective_sink() const { return objective_sink_; }
  bool objective_maximize() const { return objective_maximize_; }

  /// All source nodes marked as input dimensions, in id order. The vector of
  /// their injections is the analyzer's input point.
  std::vector<NodeId> input_sources() const;

  /// Finds a node/edge by name; invalid id when absent.
  NodeId find_node(const std::string& name) const;
  EdgeId find_edge(const std::string& name) const;

  /// Structural validation; returns human-readable problems (empty == ok).
  std::vector<std::string> validate() const;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> in_, out_;
  NodeId objective_sink_;
  bool objective_maximize_ = true;
};

}  // namespace xplain::flowgraph
