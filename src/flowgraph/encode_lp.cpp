#include "flowgraph/encode_lp.h"

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace xplain::flowgraph {

namespace {

// A row normalized to:  sum_j a_j * v_j <= b  over shifted variables v >= 0.
struct NormRow {
  std::vector<std::pair<int, double>> coef;
  double rhs = 0.0;
};

}  // namespace

EncodedLp encode_lp(const solver::LpProblem& p) {
  const int n = p.num_cols();
  EncodedLp enc;
  enc.was_minimize = (p.sense == solver::Sense::kMinimize);
  enc.var_shift.resize(n);
  enc.var_edge.resize(n);

  // --- Normalize columns: v_j = x_j - lo_j in [0, U_j]. ---
  std::vector<double> U(n), cost(n);
  std::vector<bool> binary(n, false);
  double obj_const = 0.0;  // from shifting: c'x = c'v + c'lo
  for (int j = 0; j < n; ++j) {
    const double lo = p.lo(j), hi = p.hi(j);
    if (!std::isfinite(lo))
      throw std::invalid_argument(
          "encode_lp: column '" + p.col_name(j) +
          "' has an infinite lower bound; shift it first");
    if (!std::isfinite(hi))
      throw std::invalid_argument(
          "encode_lp: column '" + p.col_name(j) +
          "' needs a finite upper bound for the flow encoding");
    enc.var_shift[j] = lo;
    U[j] = hi - lo;
    const double c = enc.was_minimize ? -p.obj(j) : p.obj(j);
    cost[j] = c;
    obj_const += c * lo;
    if (p.integer(j)) {
      if (std::abs(U[j] - 1.0) > 1e-12 && U[j] != 0.0)
        throw std::invalid_argument(
            "encode_lp: integer column '" + p.col_name(j) +
            "' is not binary after shifting (split general integers into "
            "binaries first)");
      binary[j] = U[j] != 0.0;
    }
  }

  // --- Normalize rows to <=. ---
  std::vector<NormRow> rows;
  auto push_le = [&](const std::vector<std::pair<int, double>>& coef,
                     double rhs, double scale) {
    NormRow r;
    r.rhs = rhs * scale;
    for (const auto& [j, a] : coef) {
      r.coef.emplace_back(j, a * scale);
      r.rhs -= a * scale * enc.var_shift[j];  // shift into rhs... (see below)
    }
    rows.push_back(std::move(r));
  };
  // Note: row over x becomes row over v: sum a_j (v_j + lo_j) <= b, i.e.
  // sum a_j v_j <= b - sum a_j lo_j.  push_le folds the shift into rhs.
  for (const auto& row : p.rows()) {
    switch (row.sense) {
      case solver::RowSense::kLe: push_le(row.coef, row.rhs, 1.0); break;
      case solver::RowSense::kGe: push_le(row.coef, row.rhs, -1.0); break;
      case solver::RowSense::kEq:
        push_le(row.coef, row.rhs, 1.0);
        push_le(row.coef, row.rhs, -1.0);
        break;
    }
  }

  // --- Objective row p = c'v + K (two inequalities), K keeps p >= 0. ---
  double K = 1.0;
  for (int j = 0; j < n; ++j)
    if (cost[j] < 0) K += -cost[j] * U[j];
  double p_max = K;
  for (int j = 0; j < n; ++j)
    if (cost[j] > 0) p_max += cost[j] * U[j];
  enc.offset = K - obj_const;  // sink measures c'v + K = obj' - c'lo + K

  // --- Build the network. ---
  FlowNetwork net("thmA1(" + std::to_string(n) + "x" +
                  std::to_string(p.num_rows()) + ")");
  NodeId const_src = net.add_node("const_src", NodeKind::kSource);
  net.set_injection_range(const_src, 0, solver::kInf, /*is_input=*/false);
  NodeId slack_src = net.add_node("slack_src", NodeKind::kSource);
  net.set_injection_range(slack_src, 0, solver::kInf, /*is_input=*/false);
  NodeId const_sink = net.add_node("const_sink", NodeKind::kSink);
  NodeId waste_sink = net.add_node("waste_sink", NodeKind::kSink);
  NodeId obj_sink = net.add_node("objective", NodeKind::kSink);

  // Variable sources and their ALL-EQUAL fan-out nodes (S4 + T3).
  std::vector<NodeId> alleq(n);
  for (int j = 0; j < n; ++j) {
    const std::string vn = p.col_name(j);
    alleq[j] = net.add_node("alleq_" + vn, NodeKind::kAllEqual);
    if (binary[j]) {
      NodeId src = net.add_node("bin_" + vn, NodeKind::kSource);
      net.set_source_behavior(src, NodeKind::kPick);
      net.set_injection(src, 1.0);
      EdgeId ve = net.add_edge(src, alleq[j], "x_" + vn);
      net.set_capacity(ve, 1.0);
      net.add_edge(src, waste_sink, "not_" + vn);
      enc.var_edge[j] = ve;
    } else {
      NodeId src = net.add_node("var_" + vn, NodeKind::kSource);
      net.set_injection_range(src, 0.0, U[j], /*is_input=*/false);
      enc.var_edge[j] = net.add_edge(src, alleq[j], "x_" + vn);
    }
  }
  // The objective variable p gets the same treatment plus a sink tap.
  NodeId alleq_p = net.add_node("alleq_p", NodeKind::kAllEqual);
  {
    NodeId src = net.add_node("var_p", NodeKind::kSource);
    net.set_injection_range(src, 0.0, p_max, /*is_input=*/false);
    net.add_edge(src, alleq_p, "x_p");
    net.add_edge(alleq_p, obj_sink, "p_measure");
  }
  const int p_col = n;  // pseudo-column index for p in objective rows

  // Objective equality p - c'v = K as two <= rows.
  {
    std::vector<std::pair<int, double>> coef;
    coef.emplace_back(p_col, 1.0);
    for (int j = 0; j < n; ++j)
      if (cost[j] != 0.0) coef.emplace_back(j, -cost[j]);
    NormRow r1;
    r1.coef = coef;
    r1.rhs = K;
    rows.push_back(r1);
    NormRow r2;
    for (auto [j, a] : coef) r2.coef.emplace_back(j, -a);
    r2.rhs = -K;
    rows.push_back(r2);
  }

  // S1/S2/S3: one split node per row; multiply nodes per term.
  auto alleq_of = [&](int j) { return j == p_col ? alleq_p : alleq[j]; };
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const NormRow& r = rows[i];
    const std::string rn = "r" + std::to_string(i);
    NodeId split = net.add_node("split_" + rn, NodeKind::kSplit);
    for (const auto& [j, a] : r.coef) {
      if (a == 0.0) continue;
      const std::string tn = rn + "_" + (j == p_col ? "p" : p.col_name(j));
      if (a > 0) {
        NodeId mul = net.add_node("mul+_" + tn, NodeKind::kMultiply);
        net.set_multiplier(mul, a);
        net.add_edge(alleq_of(j), mul, "xp_" + tn);
        net.add_edge(mul, split, "u+_" + tn);
      } else {
        NodeId mul = net.add_node("mul-_" + tn, NodeKind::kMultiply);
        net.set_multiplier(mul, 1.0 / (-a));
        net.add_edge(split, mul, "u-_" + tn);
        net.add_edge(mul, alleq_of(j), "xm_" + tn);
      }
    }
    if (r.rhs > 0) {
      EdgeId e = net.add_edge(split, const_sink, "b+_" + rn);
      net.set_fixed(e, r.rhs);
    } else if (r.rhs < 0) {
      EdgeId e = net.add_edge(const_src, split, "b-_" + rn);
      net.set_fixed(e, -r.rhs);
    }
    net.add_edge(slack_src, split, "f_" + rn);
  }

  net.set_objective(obj_sink, /*maximize=*/true);
  enc.net = std::move(net);
  return enc;
}

}  // namespace xplain::flowgraph
