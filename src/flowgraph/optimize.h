// Redundancy elimination over FlowNetworks (paper §5.1: "our DSL allows us
// to find redundant constraints and variables", which is where the compiled
// DSL's speedup over hand-written models comes from).
//
// Passes (applied to fixpoint):
//   1. dead-edge pruning    — capacity-0 / fixed-0 edges disappear;
//   2. chain contraction    — a conserving pass-through node (split/all-eq
//                             with one in- and one out-edge) merges its two
//                             edges into one variable;
//   3. dangling-node pruning— conserving nodes with no outlet force their
//                             in-flows to zero, which cascades into pass 1.
//
// Unlike a solver presolve (the paper's footnote about Gurobi), the passes
// preserve the network *vocabulary*: `edge_map` links every original edge to
// the surviving variable so explanations can still name user-level edges.
#pragma once

#include <vector>

#include "flowgraph/network.h"

namespace xplain::flowgraph {

struct OptimizeResult {
  FlowNetwork net;
  /// old edge id -> new edge id (-1 when the edge was removed as dead).
  std::vector<int> edge_map;
  int removed_edges = 0;
  int contracted_nodes = 0;
  int pruned_nodes = 0;
};

OptimizeResult optimize(const FlowNetwork& input);

}  // namespace xplain::flowgraph
