// Compiles a FlowNetwork into an optimization model (paper Fig. 3: the
// "Compiler" box).  One flow variable per edge; one constraint block per
// node behavior; the designated sink's inflow becomes the objective.
//
// Domain rule modules (e.g. demand pinning, first-fit) take the returned
// CompiledNetwork and append their heuristic-decision constraints on top of
// the structural ones — mirroring how the paper layers heuristic "rules"
// over the flow abstraction.
#pragma once

#include <vector>

#include "flowgraph/network.h"
#include "model/model.h"

namespace xplain::flowgraph {

struct CompileOptions {
  /// Big-M used for pick-node one-hot constraints on uncapacitated edges.
  double big_m = 1e4;
};

struct CompiledNetwork {
  model::Model model;
  /// Flow variable per edge (index = EdgeId::v).
  std::vector<model::Var> edge_flow;
  /// Injection variable per node (valid only for sources).
  std::vector<model::Var> injection;
  /// For pick nodes (and pick-behavior sources): one binary per outgoing
  /// edge, aligned with FlowNetwork::out_edges order.
  std::vector<std::vector<model::Var>> pick_choice;

  model::Var flow(EdgeId e) const { return edge_flow[e.v]; }

  /// Extracts per-edge flows from a solution vector.
  std::vector<double> flows(const std::vector<double>& x) const;
};

/// Compiles `net`; throws std::invalid_argument when validate() fails.
CompiledNetwork compile(const FlowNetwork& net,
                        const CompileOptions& opts = {});

}  // namespace xplain::flowgraph
