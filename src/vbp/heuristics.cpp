#include "vbp/heuristics.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace xplain::vbp {

const char* to_string(VbpHeuristic h) {
  switch (h) {
    case VbpHeuristic::kFirstFit: return "first_fit";
    case VbpHeuristic::kBestFit: return "best_fit";
    case VbpHeuristic::kFirstFitDecreasing: return "first_fit_decreasing";
    case VbpHeuristic::kNextFit: return "next_fit";
  }
  return "?";
}

namespace {

class Bins {
 public:
  Bins(const VbpInstance& inst) : inst_(inst) {
    load_.assign(static_cast<std::size_t>(inst.num_bins) * inst.dims, 0.0);
  }

  bool fits(int bin, const std::vector<double>& sizes, int ball) const {
    for (int t = 0; t < inst_.dims; ++t)
      if (load_[bin * inst_.dims + t] + inst_.size(sizes, ball, t) >
          inst_.capacity + 1e-12)
        return false;
    return true;
  }

  void place(int bin, const std::vector<double>& sizes, int ball) {
    for (int t = 0; t < inst_.dims; ++t)
      load_[bin * inst_.dims + t] += inst_.size(sizes, ball, t);
  }

  double residual_total(int bin) const {
    double r = 0.0;
    for (int t = 0; t < inst_.dims; ++t)
      r += inst_.capacity - load_[bin * inst_.dims + t];
    return r;
  }

  bool empty(int bin) const {
    for (int t = 0; t < inst_.dims; ++t)
      if (load_[bin * inst_.dims + t] > 0.0) return false;
    return true;
  }

 private:
  const VbpInstance& inst_;
  std::vector<double> load_;
};

Packing pack_in_order(const VbpInstance& inst, const std::vector<double>& sizes,
                      const std::vector<int>& order, bool best) {
  Packing pk;
  pk.assignment.assign(inst.num_balls, -1);
  Bins bins(inst);
  // "Opened" is assignment-based, not load-based: a zero-size ball occupies
  // a bin without adding load, and must not re-open it for the next ball.
  std::vector<bool> opened(inst.num_bins, false);
  int used = 0;
  for (int ball : order) {
    int chosen = -1;
    double best_residual = std::numeric_limits<double>::infinity();
    for (int j = 0; j < inst.num_bins; ++j) {
      if (!bins.fits(j, sizes, ball)) continue;
      if (!best) {
        chosen = j;
        break;
      }
      // Best-fit: prefer the tightest *opened* feasible bin; open a new bin
      // only when no opened bin fits.
      const double score = opened[j] ? bins.residual_total(j) : 1e9 + j;
      if (score < best_residual) {
        best_residual = score;
        chosen = j;
      }
    }
    if (chosen < 0) {
      pk.complete = false;
      continue;
    }
    if (!opened[chosen]) {
      opened[chosen] = true;
      ++used;
    }
    bins.place(chosen, sizes, ball);
    pk.assignment[ball] = chosen;
  }
  pk.bins_used = used;
  return pk;
}

}  // namespace

Packing first_fit(const VbpInstance& inst, const std::vector<double>& sizes) {
  std::vector<int> order(inst.num_balls);
  std::iota(order.begin(), order.end(), 0);
  return pack_in_order(inst, sizes, order, /*best=*/false);
}

Packing best_fit(const VbpInstance& inst, const std::vector<double>& sizes) {
  std::vector<int> order(inst.num_balls);
  std::iota(order.begin(), order.end(), 0);
  return pack_in_order(inst, sizes, order, /*best=*/true);
}

Packing first_fit_decreasing(const VbpInstance& inst,
                             const std::vector<double>& sizes) {
  std::vector<int> order(inst.num_balls);
  std::iota(order.begin(), order.end(), 0);
  auto total = [&](int b) {
    double s = 0.0;
    for (int t = 0; t < inst.dims; ++t) s += inst.size(sizes, b, t);
    return s;
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return total(a) > total(b); });
  return pack_in_order(inst, sizes, order, /*best=*/false);
}

Packing next_fit(const VbpInstance& inst, const std::vector<double>& sizes) {
  Packing pk;
  pk.assignment.assign(inst.num_balls, -1);
  Bins bins(inst);
  std::vector<bool> opened(inst.num_bins, false);
  int cur = 0;
  int used = 0;
  for (int ball = 0; ball < inst.num_balls; ++ball) {
    while (cur < inst.num_bins && !bins.fits(cur, sizes, ball)) ++cur;
    if (cur >= inst.num_bins) {
      pk.complete = false;
      continue;
    }
    if (!opened[cur]) {
      opened[cur] = true;
      ++used;
    }
    bins.place(cur, sizes, ball);
    pk.assignment[ball] = cur;
  }
  pk.bins_used = used;
  return pk;
}

Packing run_heuristic(VbpHeuristic h, const VbpInstance& inst,
                      const std::vector<double>& sizes) {
  switch (h) {
    case VbpHeuristic::kFirstFit: return first_fit(inst, sizes);
    case VbpHeuristic::kBestFit: return best_fit(inst, sizes);
    case VbpHeuristic::kFirstFitDecreasing:
      return first_fit_decreasing(inst, sizes);
    case VbpHeuristic::kNextFit: return next_fit(inst, sizes);
  }
  return {};
}

}  // namespace xplain::vbp
