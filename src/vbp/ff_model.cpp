#include "vbp/ff_model.h"

#include <cassert>
#include <stdexcept>

namespace xplain::vbp {

using model::LinExpr;
using model::Var;

FfNetwork build_ff_network(const VbpInstance& inst) {
  if (inst.dims != 1)
    throw std::invalid_argument(
        "build_ff_network: the DSL face models 1-D instances (the paper's "
        "figures); use the simulation path for multi-dimensional VBP");
  using namespace flowgraph;
  FfNetwork ff;
  FlowNetwork& net = ff.net;
  net = FlowNetwork("first_fit_vbp");

  NodeId occ = net.add_node("occupancy", NodeKind::kSink);
  ff.bin_nodes.resize(inst.num_bins);
  ff.occupancy_edges.resize(inst.num_bins);
  for (int j = 0; j < inst.num_bins; ++j) {
    ff.bin_nodes[j] = net.add_node("bin_" + std::to_string(j),
                                   NodeKind::kSplit);
    net.set_node_meta(ff.bin_nodes[j], "kind", "bin");
    net.set_node_meta(ff.bin_nodes[j], "index", std::to_string(j));
    EdgeId e = net.add_edge(ff.bin_nodes[j], occ,
                            "occ_bin" + std::to_string(j));
    net.set_capacity(e, inst.capacity);
    net.set_edge_meta(e, "kind", "bin_capacity");
    ff.occupancy_edges[j] = e;
  }
  ff.ball_nodes.resize(inst.num_balls);
  ff.ball_bin_edges.assign(inst.num_balls, {});
  for (int i = 0; i < inst.num_balls; ++i) {
    NodeId b = net.add_node("ball_" + std::to_string(i), NodeKind::kSource);
    net.set_source_behavior(b, NodeKind::kPick);
    net.set_injection_range(b, 0.0, inst.capacity, /*is_input=*/true);
    net.set_node_meta(b, "kind", "ball");
    net.set_node_meta(b, "index", std::to_string(i));
    ff.ball_nodes[i] = b;
    for (int j = 0; j < inst.num_bins; ++j) {
      EdgeId e = net.add_edge(b, ff.bin_nodes[j],
                              "B" + std::to_string(i) + "->bin" +
                                  std::to_string(j));
      net.set_capacity(e, inst.capacity);
      net.set_edge_meta(e, "kind", "placement");
      net.set_edge_meta(e, "ball", std::to_string(i));
      net.set_edge_meta(e, "bin", std::to_string(j));
      ff.ball_bin_edges[i].push_back(e);
    }
  }
  net.set_objective(occ, /*maximize=*/true);
  return ff;
}

std::vector<std::vector<Var>> add_first_fit_rule(
    flowgraph::CompiledNetwork& c, const FfNetwork& ff, const VbpInstance& inst,
    const model::HelperConfig& hcfg) {
  const int n = inst.num_balls, m = inst.num_bins;
  std::vector<std::vector<Var>> alpha(n);
  for (int i = 0; i < n; ++i) {
    const LinExpr y_i = LinExpr(c.injection[ff.ball_nodes[i].v]);
    LinExpr alpha_sum;
    Var gamma_prev;  // "not placed in any bin < j", built incrementally
    for (int j = 0; j < m; ++j) {
      // r_ij = C - Y_i - sum_{u<i} x_uj  (residual if i lands in j).
      LinExpr r = LinExpr(inst.capacity) - y_i;
      for (int u = 0; u < i; ++u)
        r -= LinExpr(c.flow(ff.ball_bin_edges[u][j]));
      // f_ij = AllLeq([-r], 0): ball fits.
      Var fit = model::all_leq(c.model, {-1.0 * r}, 0.0, hcfg);
      // gamma_ij = AllEq([x_ik]_{k<j}, 0): not placed in an earlier bin.
      // Built incrementally (gamma_ij = gamma_i,j-1 AND x_i,j-1 == 0) so the
      // encoding stays linear in the number of bins, matching the paper's
      // claim that the DSL compiler avoids redundant auxiliary variables.
      Var gamma;
      if (j == 0) {
        gamma = model::logic_and(c.model, {});  // vacuously true
      } else {
        Var prev_zero = model::indicator_eq(
            c.model, LinExpr(c.flow(ff.ball_bin_edges[i][j - 1])), 0.0, hcfg);
        gamma = model::logic_and(c.model, {gamma_prev, prev_zero});
      }
      gamma_prev = gamma;
      // alpha_ij = AND(f_ij, gamma_ij).
      Var a = model::logic_and(c.model, {fit, gamma});
      // IfThenElse(alpha, [(x_ij, Y_i)], [(x_ij, 0)]).
      model::if_then_else(c.model, a,
                          {{c.flow(ff.ball_bin_edges[i][j]), y_i}},
                          {{c.flow(ff.ball_bin_edges[i][j]), LinExpr(0.0)}},
                          hcfg);
      alpha[i].push_back(a);
      alpha_sum += LinExpr(a);
    }
    // Every ball has exactly one first-fitting bin (the paper's
    // sum_j alpha_ij = 1 constraint); infeasible inputs (ball fits nowhere)
    // are thereby excluded from the analyzer's search space.
    c.model.add(alpha_sum == LinExpr(1.0));
  }
  return alpha;
}

void fix_sizes(flowgraph::CompiledNetwork& c, const FfNetwork& ff,
               const std::vector<double>& sizes) {
  assert(sizes.size() == ff.ball_nodes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const Var inj = c.injection[ff.ball_nodes[i].v];
    c.model.lp().set_bounds(inj.index, sizes[i], sizes[i]);
  }
}

std::vector<double> ff_network_flows(const FfNetwork& ff,
                                     const VbpInstance& inst,
                                     const std::vector<double>& sizes,
                                     const Packing& packing) {
  std::vector<double> flows(ff.net.num_edges(), 0.0);
  std::vector<double> load(inst.num_bins, 0.0);
  for (int i = 0; i < inst.num_balls; ++i) {
    const int j = packing.assignment[i];
    if (j < 0 || j >= inst.num_bins) continue;
    flows[ff.ball_bin_edges[i][j].v] = sizes[i];
    load[j] += sizes[i];
  }
  for (int j = 0; j < inst.num_bins; ++j)
    flows[ff.occupancy_edges[j].v] = load[j];
  return flows;
}

}  // namespace xplain::vbp
