#include "vbp/optimal.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "model/model.h"

namespace xplain::vbp {

namespace {

// DFS bin-completion search for 1-D packing.
struct Bnb {
  const std::vector<double>& sizes;  // sorted descending
  const std::vector<int>& order;     // original indices, same sort
  double capacity;
  int best = 0;
  std::vector<int> best_assign;      // by sorted position
  std::vector<double> load;          // open bin loads
  std::vector<int> assign;
  std::vector<double> suffix;        // suffix[i] = sum of sizes[i..)
  double open_residual = 0.0;        // sum over open bins of (capacity-load)

  Bnb(const std::vector<double>& s, const std::vector<int>& o, double cap)
      : sizes(s), order(o), capacity(cap) {
    // Suffix sums turn the per-node remaining-volume bound from O(n) into
    // O(1); the open-bin residual is maintained incrementally the same way.
    suffix.assign(s.size() + 1, 0.0);
    for (std::size_t i = s.size(); i > 0; --i)
      suffix[i - 1] = suffix[i] + s[i - 1];
  }

  void dfs(int i) {
    if (static_cast<int>(load.size()) >= best) return;  // can only grow
    if (i == static_cast<int>(sizes.size())) {
      best = static_cast<int>(load.size());
      best_assign = assign;
      return;
    }
    // Lower bound: open bins + extra bins forced by remaining volume beyond
    // the open bins' residual capacity.
    const double residual = open_residual;
    const double rem = suffix[i];
    const int lb = static_cast<int>(load.size()) +
                   std::max(0, static_cast<int>(std::ceil(
                                   (rem - residual) / capacity - 1e-12)));
    if (lb >= best) return;

    // Try existing bins with distinct loads (equal-load bins are symmetric).
    double last_load = -1.0;
    for (std::size_t j = 0; j < load.size(); ++j) {
      if (load[j] == last_load) continue;
      last_load = load[j];
      if (load[j] + sizes[i] > capacity + 1e-12) continue;
      load[j] += sizes[i];
      open_residual -= sizes[i];
      assign.push_back(static_cast<int>(j));
      dfs(i + 1);
      assign.pop_back();
      open_residual += sizes[i];
      load[j] -= sizes[i];
    }
    // Open a new bin.
    load.push_back(sizes[i]);
    open_residual += capacity - sizes[i];
    assign.push_back(static_cast<int>(load.size()) - 1);
    dfs(i + 1);
    assign.pop_back();
    open_residual -= capacity - sizes[i];
    load.pop_back();
  }
};

}  // namespace

OptimalResult optimal_packing_bnb_1d(const VbpInstance& inst,
                                     const std::vector<double>& sizes) {
  OptimalResult res;
  std::vector<int> order(inst.num_balls);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return sizes[a] > sizes[b]; });
  std::vector<double> sorted(inst.num_balls);
  for (int i = 0; i < inst.num_balls; ++i) sorted[i] = sizes[order[i]];

  Bnb bnb(sorted, order, inst.capacity);
  // First-fit-decreasing gives the initial incumbent (upper bound).
  VbpInstance wide = inst;
  wide.num_bins = std::max(inst.num_balls, 1);
  Packing ffd = first_fit_decreasing(wide, sizes);
  bnb.best = ffd.bins_used + 1;  // strict improvement target
  bnb.dfs(0);

  res.bins = std::min(bnb.best, ffd.bins_used);
  res.packing.assignment.assign(inst.num_balls, -1);
  if (bnb.best <= ffd.bins_used && !bnb.best_assign.empty()) {
    for (int i = 0; i < inst.num_balls; ++i)
      res.packing.assignment[order[i]] = bnb.best_assign[i];
  } else {
    res.packing = ffd;
  }
  res.packing.bins_used = res.bins;
  res.packing.complete = true;
  return res;
}

OptimalResult optimal_packing_milp(const VbpInstance& inst,
                                   const std::vector<double>& sizes) {
  using model::LinExpr;
  using model::Var;
  model::Model m;
  const int max_bins = inst.num_balls;  // never need more than one per ball
  // x[b][j]: ball b in bin j (restricted to j <= b: ball b opens at most
  // bin b — classic symmetry breaking).
  std::vector<std::vector<Var>> x(inst.num_balls);
  std::vector<Var> used(max_bins);
  for (int j = 0; j < max_bins; ++j) used[j] = m.add_binary();
  for (int b = 0; b < inst.num_balls; ++b) {
    LinExpr one;
    for (int j = 0; j <= b && j < max_bins; ++j) {
      Var v = m.add_binary();
      x[b].push_back(v);
      one += LinExpr(v);
      m.add(LinExpr(v) <= LinExpr(used[j]));
    }
    m.add(one == LinExpr(1.0));
  }
  for (int j = 0; j < max_bins; ++j) {
    for (int t = 0; t < inst.dims; ++t) {
      LinExpr lhs;
      for (int b = j; b < inst.num_balls; ++b)
        lhs += inst.size(sizes, b, t) * LinExpr(x[b][j]);
      m.add(lhs <= inst.capacity * LinExpr(used[j]));
    }
    if (j + 1 < max_bins)
      m.add(LinExpr(used[j + 1]) <= LinExpr(used[j]));  // ordered usage
  }
  LinExpr total;
  for (int j = 0; j < max_bins; ++j) total += LinExpr(used[j]);
  m.set_objective(solver::Sense::kMinimize, total);

  solver::MilpOptions opts;
  opts.time_limit_s = 60.0;
  auto r = m.solve(opts);
  OptimalResult res;
  res.proven = (r.status == solver::Status::kOptimal);
  res.bins = static_cast<int>(std::lround(r.obj));
  res.packing.assignment.assign(inst.num_balls, -1);
  if (!r.x.empty()) {
    for (int b = 0; b < inst.num_balls; ++b)
      for (std::size_t j = 0; j < x[b].size(); ++j)
        if (r.x[x[b][j].index] > 0.5)
          res.packing.assignment[b] = static_cast<int>(j);
  }
  res.packing.bins_used = res.bins;
  return res;
}

OptimalResult optimal_packing(const VbpInstance& inst,
                              const std::vector<double>& sizes) {
  if (inst.dims == 1) return optimal_packing_bnb_1d(inst, sizes);
  return optimal_packing_milp(inst, sizes);
}

double vbp_gap(const VbpInstance& inst, const std::vector<double>& sizes,
               VbpHeuristic h) {
  // Clamp sizes into [0, capacity] so a packing always exists.
  std::vector<double> s = sizes;
  for (double& v : s) v = std::clamp(v, 0.0, inst.capacity);
  VbpInstance wide = inst;
  wide.num_bins = std::max(inst.num_balls, 1);
  Packing heur = run_heuristic(h, wide, s);
  OptimalResult opt = optimal_packing(wide, s);
  return static_cast<double>(heur.bins_used - opt.bins);
}

}  // namespace xplain::vbp
