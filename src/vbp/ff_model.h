// First-Fit's DSL face (paper Fig. 4b) and its MetaOpt encoding (Fig. 1c).
//
// The network: one pick-behavior source per ball (a ball goes to exactly one
// bin), one split node per bin whose edge into the "occupancy" sink carries
// the bin capacity.  The first-fit *rule* (Fig. 1c: r_ij / f_ij / gamma_ij /
// alpha_ij / IfThenElse) is appended onto the compiled network, which turns
// "some valid assignment" into "exactly the assignment FF produces".
//
// The DSL face supports dims == 1 (the paper's figures are 1-D); the
// simulation/gap path in heuristics.cpp supports arbitrary dims.
#pragma once

#include <vector>

#include "flowgraph/compiler.h"
#include "flowgraph/network.h"
#include "model/helpers.h"
#include "vbp/instance.h"

namespace xplain::vbp {

struct FfNetwork {
  flowgraph::FlowNetwork net;
  std::vector<flowgraph::NodeId> ball_nodes;  // per ball (pick sources)
  std::vector<flowgraph::NodeId> bin_nodes;   // per bin (split)
  /// ball_bin_edges[i][j]: edge ball i -> bin j (flow = Y_i iff placed).
  std::vector<std::vector<flowgraph::EdgeId>> ball_bin_edges;
  std::vector<flowgraph::EdgeId> occupancy_edges;  // bin j -> occupancy sink
};

/// Builds the Fig. 4b network (requires inst.dims == 1).
FfNetwork build_ff_network(const VbpInstance& inst);

/// Appends the Fig. 1c first-fit rule.  Returns alpha[i][j] ("bin j is the
/// first bin ball i fits in") indicator variables.
std::vector<std::vector<model::Var>> add_first_fit_rule(
    flowgraph::CompiledNetwork& c, const FfNetwork& ff, const VbpInstance& inst,
    const model::HelperConfig& hcfg = {});

/// Fixes the ball-size injections to a concrete input vector.
void fix_sizes(flowgraph::CompiledNetwork& c, const FfNetwork& ff,
               const std::vector<double>& sizes);

/// Maps a packing onto network edge flows (for the explainer).
std::vector<double> ff_network_flows(const FfNetwork& ff,
                                     const VbpInstance& inst,
                                     const std::vector<double>& sizes,
                                     const Packing& packing);

}  // namespace xplain::vbp
