#include "vbp/instance.h"

namespace xplain::vbp {

bool Packing::valid(const VbpInstance& inst,
                    const std::vector<double>& sizes) const {
  std::vector<double> load(
      static_cast<std::size_t>(inst.num_bins) * inst.dims, 0.0);
  for (int b = 0; b < inst.num_balls; ++b) {
    const int bin = assignment[b];
    if (bin < 0) continue;
    if (bin >= inst.num_bins) return false;
    for (int t = 0; t < inst.dims; ++t) {
      load[bin * inst.dims + t] += inst.size(sizes, b, t);
      if (load[bin * inst.dims + t] > inst.capacity + 1e-9) return false;
    }
  }
  return true;
}

}  // namespace xplain::vbp
