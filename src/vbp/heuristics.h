// Classic VBP heuristics.  First-Fit is the paper's analyzed heuristic;
// Best-Fit / First-Fit-Decreasing / Next-Fit are the baselines §2 mentions
// ("harder in FF and other VBP heuristics, such as best fit or first fit
// decreasing").
#pragma once

#include <vector>

#include "vbp/instance.h"

namespace xplain::vbp {

enum class VbpHeuristic { kFirstFit, kBestFit, kFirstFitDecreasing, kNextFit };

const char* to_string(VbpHeuristic h);

/// Greedy first-fit: each ball (in arrival order) goes to the lowest-index
/// bin where it fits in every dimension.
Packing first_fit(const VbpInstance& inst, const std::vector<double>& sizes);

/// Best-fit: the feasible bin with the least total residual capacity.
Packing best_fit(const VbpInstance& inst, const std::vector<double>& sizes);

/// First-fit after sorting balls by decreasing total size.
Packing first_fit_decreasing(const VbpInstance& inst,
                             const std::vector<double>& sizes);

/// Next-fit: keeps one open bin; opens the next when the ball does not fit.
Packing next_fit(const VbpInstance& inst, const std::vector<double>& sizes);

Packing run_heuristic(VbpHeuristic h, const VbpInstance& inst,
                      const std::vector<double>& sizes);

}  // namespace xplain::vbp
