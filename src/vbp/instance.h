// Vector bin packing (VBP), the paper's second running example (§2, Fig. 2).
//
// An *instance* fixes the number of balls, bins, dimensions and the bin
// capacity; the analyzer's *input* is the flattened vector of ball sizes
// (MetaOpt's OuterVar Y in Fig. 1c).
#pragma once

#include <cassert>
#include <vector>

namespace xplain::vbp {

struct VbpInstance {
  int num_balls = 0;
  int num_bins = 0;   // bins available to the heuristic
  int dims = 1;       // d-dimensional balls/bins
  double capacity = 1.0;  // per-dimension bin capacity (equal bins)

  /// Input dimensionality: one size per (ball, dim).
  int input_dim() const { return num_balls * dims; }

  /// size of ball b in dimension t from a flattened input vector.
  static double size_of(const std::vector<double>& y, int b, int t, int dims) {
    return y[b * dims + t];
  }
  double size(const std::vector<double>& y, int b, int t) const {
    assert(static_cast<int>(y.size()) == input_dim());
    return size_of(y, b, t, dims);
  }
};

/// A packing: assignment[b] = bin index of ball b, or -1 when the heuristic
/// could not place it (it ran out of bins).
struct Packing {
  std::vector<int> assignment;
  int bins_used = 0;
  bool complete = true;  // every ball placed

  /// Validates against capacities; true when every placed ball fits.
  bool valid(const VbpInstance& inst, const std::vector<double>& sizes) const;
};

}  // namespace xplain::vbp
