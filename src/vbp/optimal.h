// Exact optimal bin packing — the benchmark OPT in the paper's VBP example.
//
// 1-D instances use a bin-completion branch-and-bound (fast to ~20 balls);
// multi-dimensional instances fall back to a MILP with symmetry breaking.
#pragma once

#include <vector>

#include "vbp/heuristics.h"
#include "vbp/instance.h"

namespace xplain::vbp {

struct OptimalResult {
  int bins = 0;
  Packing packing;
  bool proven = true;  // false when the MILP hit a limit
};

/// Minimum number of bins needed to pack everything (assumes every single
/// ball fits in an empty bin; callers clamp sizes to [0, capacity]).
OptimalResult optimal_packing(const VbpInstance& inst,
                              const std::vector<double>& sizes);

/// Branch-and-bound specialized for 1-D (dims must be 1).
OptimalResult optimal_packing_bnb_1d(const VbpInstance& inst,
                                     const std::vector<double>& sizes);

/// MILP formulation (any dimension): assignment binaries + used-bin
/// indicators, lexicographic symmetry breaking.
OptimalResult optimal_packing_milp(const VbpInstance& inst,
                                   const std::vector<double>& sizes);

/// Heuristic bins minus optimal bins, evaluated with enough bins that the
/// heuristic always completes (bins = num_balls).  This is the VBP
/// performance gap the analyzer maximizes.
double vbp_gap(const VbpInstance& inst, const std::vector<double>& sizes,
               VbpHeuristic h = VbpHeuristic::kFirstFit);

}  // namespace xplain::vbp
