#include "scenario/scenario.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>
#include <utility>

#include "util/random.h"

namespace xplain::scenario {

namespace {

// Fat-tree node-id layout, shared by the builder and the endpoint pool:
// cores first, then per pod k/2 aggregation + k/2 edge switches.
int fat_tree_cores(int k) { return (k / 2) * (k / 2); }
int fat_tree_agg_id(int k, int pod, int j) {
  return fat_tree_cores(k) + pod * k + j;
}
int fat_tree_edge_id(int k, int pod, int j) {
  return fat_tree_cores(k) + pod * k + k / 2 + j;
}

te::Topology fat_tree(int k, double edge_capacity) {
  assert(k >= 2 && k % 2 == 0);
  const int half = k / 2;
  te::Topology t(fat_tree_cores(k) + k * k);
  for (int pod = 0; pod < k; ++pod) {
    for (int e = 0; e < half; ++e)
      for (int a = 0; a < half; ++a)
        t.add_bidi(fat_tree_edge_id(k, pod, e), fat_tree_agg_id(k, pod, a),
                   edge_capacity);
    // Aggregation switch j uplinks to core group j; uplinks carry 2x the
    // edge capacity (this is the tier the LB skew dimension squeezes).
    for (int a = 0; a < half; ++a)
      for (int c = 0; c < half; ++c)
        t.add_bidi(fat_tree_agg_id(k, pod, a), a * half + c,
                   2.0 * edge_capacity);
  }
  return t;
}

te::Topology waxman(const ScenarioSpec& spec) {
  const int n = spec.size;
  util::Rng rng(util::Rng::derive_seed(spec.seed, /*index=*/0));
  std::vector<double> px(n), py(n);
  for (int i = 0; i < n; ++i) {
    px[i] = rng.uniform(0.0, 1.0);
    py[i] = rng.uniform(0.0, 1.0);
  }
  auto cap = [&]() { return rng.uniform(0.5 * spec.capacity, spec.capacity); };
  te::Topology t(n);
  // Random spanning tree first (guarantees connectivity) ...
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);
  for (int i = 1; i < n; ++i) {
    const int parent = order[rng.uniform_int(0, i - 1)];
    t.add_bidi(order[i], parent, cap());
  }
  // ... then Waxman-probability extra links: nearby nodes link more often.
  const double scale = spec.waxman_beta * std::sqrt(2.0);
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b) {
      const double dist = std::hypot(px[a] - px[b], py[a] - py[b]);
      const double p = spec.waxman_alpha * std::exp(-dist / scale);
      const bool link = rng.bernoulli(p);
      if (link && !t.find_link(a, b).valid()) t.add_bidi(a, b, cap());
    }
  return t;
}

te::Topology star(int n, double capacity) {
  te::Topology t(n);
  for (int i = 1; i < n; ++i) t.add_bidi(0, i, capacity);
  return t;
}

/// Candidate endpoints for demand/commodity selection: the edge tier for
/// fat-trees (inter-rack traffic), every node otherwise.
std::vector<int> endpoint_pool(const ScenarioSpec& spec,
                               const te::Topology& topo) {
  std::vector<int> pool;
  if (spec.kind == TopologyKind::kFatTree) {
    const int k = spec.size;
    for (int pod = 0; pod < k; ++pod)
      for (int j = 0; j < k / 2; ++j)
        pool.push_back(fat_tree_edge_id(k, pod, j));
  } else {
    for (int i = 0; i < topo.num_nodes(); ++i) pool.push_back(i);
  }
  return pool;
}

/// `count` distinct ordered (src, dst) pairs, seed-deterministically drawn
/// from the pool (a different stream than topology construction uses).
std::vector<std::pair<int, int>> pick_pairs(const ScenarioSpec& spec,
                                            const std::vector<int>& pool,
                                            int count) {
  util::Rng rng(util::Rng::derive_seed(spec.seed, /*index=*/1));
  std::vector<std::pair<int, int>> pairs;
  std::set<std::pair<int, int>> seen;
  const int n = static_cast<int>(pool.size());
  const long max_distinct = static_cast<long>(n) * (n - 1);
  for (int attempts = 0;
       static_cast<int>(pairs.size()) < count &&
       static_cast<long>(pairs.size()) < max_distinct && attempts < 64 * count;
       ++attempts) {
    const int src = pool[rng.uniform_int(0, n - 1)];
    const int dst = pool[rng.uniform_int(0, n - 1)];
    if (src == dst) continue;
    if (!seen.insert({src, dst}).second) continue;
    pairs.emplace_back(src, dst);
  }
  return pairs;
}

/// The spec's failure dimensions, applied to the healthy topology: remove
/// `failed_links` physical (bidirectional) links — candidates drawn
/// seed-deterministically from their own stream (index 2, disjoint from
/// topology=0 and endpoints=1), accepting one only if the surviving graph
/// stays connected, so shapes made of bridges (lines, stars) lose fewer or
/// none — then scale every surviving capacity by `capacity_degradation`.
/// The survivors are re-added in original link-id order, so the result is a
/// pure function of the spec like everything else here.
te::Topology apply_failures(te::Topology topo, const ScenarioSpec& spec) {
  const bool degrade = spec.capacity_degradation != 1.0;
  if ((spec.failed_links <= 0 && !degrade) || topo.num_nodes() == 0)
    return topo;

  // Physical links as normalized (lo, hi) node pairs, in first-seen order.
  std::vector<std::pair<int, int>> phys;
  std::set<std::pair<int, int>> seen;
  for (const auto& l : topo.links()) {
    const std::pair<int, int> p{std::min(l.from, l.to),
                                std::max(l.from, l.to)};
    if (seen.insert(p).second) phys.push_back(p);
  }

  std::set<std::pair<int, int>> failed;
  if (spec.failed_links > 0) {
    const int n = topo.num_nodes();
    const auto connected_without = [&](const std::set<std::pair<int, int>>&
                                           dead) {
      std::vector<std::vector<int>> adj(n);
      for (const auto& p : phys) {
        if (dead.count(p)) continue;
        adj[p.first].push_back(p.second);
        adj[p.second].push_back(p.first);
      }
      std::vector<char> vis(n, 0);
      std::vector<int> stack{0};
      vis[0] = 1;
      int reached = 1;
      while (!stack.empty()) {
        const int u = stack.back();
        stack.pop_back();
        for (const int v : adj[u])
          if (!vis[v]) {
            vis[v] = 1;
            ++reached;
            stack.push_back(v);
          }
      }
      return reached == n;
    };
    util::Rng rng(util::Rng::derive_seed(spec.seed, /*index=*/2));
    std::vector<std::pair<int, int>> order = phys;
    rng.shuffle(order);
    for (const auto& cand : order) {
      if (static_cast<int>(failed.size()) >= spec.failed_links) break;
      failed.insert(cand);
      if (!connected_without(failed)) failed.erase(cand);
    }
  }

  te::Topology out(topo.num_nodes());
  for (const auto& l : topo.links()) {
    const std::pair<int, int> p{std::min(l.from, l.to),
                                std::max(l.from, l.to)};
    if (failed.count(p)) continue;
    out.add_link(l.from, l.to, l.capacity * spec.capacity_degradation);
  }
  return out;
}

}  // namespace

te::Topology build_topology(const ScenarioSpec& spec) {
  te::Topology healthy = [&] {
    switch (spec.kind) {
      case TopologyKind::kFatTree: return fat_tree(spec.size, spec.capacity);
      case TopologyKind::kWaxman: return waxman(spec);
      case TopologyKind::kLine:
        return te::Topology::line(spec.size, spec.capacity);
      case TopologyKind::kStar: return star(spec.size, spec.capacity);
    }
    return te::Topology(0);
  }();
  return apply_failures(std::move(healthy), spec);
}

te::TeInstance make_te_instance(const ScenarioSpec& spec, int num_pairs,
                                int k_paths, double d_max) {
  te::Topology topo = build_topology(spec);
  if (num_pairs <= 0)
    return te::TeInstance::all_pairs(std::move(topo), k_paths, d_max);
  const auto pairs = pick_pairs(spec, endpoint_pool(spec, topo), num_pairs);
  return te::TeInstance::make(std::move(topo), pairs, k_paths, d_max);
}

lb::LbInstance make_lb_instance(const ScenarioSpec& spec, int num_commodities,
                                int k_paths, double t_max, double skew_lo,
                                double skew_hi) {
  te::Topology topo = build_topology(spec);
  const auto pairs =
      pick_pairs(spec, endpoint_pool(spec, topo), num_commodities);
  lb::LbInstance inst =
      lb::LbInstance::make(std::move(topo), pairs, k_paths, t_max);
  if (skew_hi > skew_lo) inst.skew_top_tier(skew_lo, skew_hi);
  return inst;
}

std::vector<ScenarioSpec> default_corpus() {
  std::vector<ScenarioSpec> corpus;
  // Fat-trees at k = 4, 6, 8, 16: the LB case's home fabric at growing
  // scale.  k=8 is ~80 switches / 512 directed links — the
  // thousands-of-rows LP regime the PR 6 LU factorization targeted; k=16
  // is 320 switches / 4096 directed links, the ~8k-row x 12k-col WCMP
  // probe the partial-pricing + Forrest-Tomlin solver unlocks.
  for (int k : {4, 6, 8, 16}) {
    ScenarioSpec s;
    s.kind = TopologyKind::kFatTree;
    s.size = k;
    corpus.push_back(s);
  }
  {
    ScenarioSpec s;
    s.kind = TopologyKind::kWaxman;
    s.size = 12;
    s.seed = 7;
    corpus.push_back(s);
  }
  {
    ScenarioSpec s;
    s.kind = TopologyKind::kLine;
    s.size = 6;
    corpus.push_back(s);
  }
  {
    ScenarioSpec s;
    s.kind = TopologyKind::kStar;
    s.size = 8;
    corpus.push_back(s);
  }
  return corpus;
}

}  // namespace xplain::scenario
