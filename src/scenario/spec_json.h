// ScenarioSpec <-> util::Json: the one serialization both the xplaind wire
// protocol and the fuzzer's committed discovery corpus use, so a spec
// written anywhere is readable everywhere.
//
// spec_to_json always emits every field in a fixed order (kind, size,
// capacity, waxman_alpha, waxman_beta, seed, failed_links,
// capacity_degradation) with the 64-bit seed as a decimal string (JSON
// numbers clip above 2^53) and doubles via util::Json's max_digits10
// printing — so to -> from -> to round-trips byte-for-byte.  spec_from_json
// is lenient the way the daemon always was: absent fields keep their spec
// defaults; only a malformed shape or an unknown kind is an error.
#pragma once

#include <optional>
#include <string>

#include "scenario/spec.h"
#include "util/json.h"

namespace xplain::scenario {

util::Json spec_to_json(const ScenarioSpec& spec);

/// Parses a spec object; on failure returns std::nullopt and, when `err` is
/// non-null, a human-readable reason.
std::optional<ScenarioSpec> spec_from_json(const util::Json& v,
                                           std::string* err = nullptr);

}  // namespace xplain::scenario
