#include "scenario/spec_json.h"

#include <cerrno>
#include <cstdlib>

namespace xplain::scenario {

namespace {

using util::Json;

double num_or(const Json& obj, const char* key, double dflt) {
  const Json* v = obj.find(key);
  return v && v->kind() == Json::Kind::kNumber ? v->as_num() : dflt;
}

std::uint64_t u64_or(const Json& obj, const char* key, std::uint64_t dflt) {
  const Json* v = obj.find(key);
  if (!v) return dflt;
  if (v->kind() == Json::Kind::kNumber)
    return static_cast<std::uint64_t>(v->as_num());
  if (v->kind() == Json::Kind::kString) {
    errno = 0;
    char* end = nullptr;
    const unsigned long long u = std::strtoull(v->as_str().c_str(), &end, 10);
    if (errno == 0 && end != v->as_str().c_str() && *end == '\0')
      return static_cast<std::uint64_t>(u);
  }
  return dflt;
}

}  // namespace

Json spec_to_json(const ScenarioSpec& spec) {
  Json j = Json::object();
  j.set("kind", to_string(spec.kind));
  j.set("size", spec.size);
  j.set("capacity", spec.capacity);
  j.set("waxman_alpha", spec.waxman_alpha);
  j.set("waxman_beta", spec.waxman_beta);
  j.set("seed", std::to_string(spec.seed));
  j.set("failed_links", spec.failed_links);
  j.set("capacity_degradation", spec.capacity_degradation);
  return j;
}

std::optional<ScenarioSpec> spec_from_json(const Json& v, std::string* err) {
  const auto fail = [&](const std::string& message) {
    if (err) *err = message;
    return std::nullopt;
  };
  if (v.kind() != Json::Kind::kObject) return fail("scenario must be an object");
  ScenarioSpec out;
  const Json* kind = v.find("kind");
  if (kind && kind->kind() == Json::Kind::kString) {
    const std::string& k = kind->as_str();
    if (k == "fat_tree") out.kind = TopologyKind::kFatTree;
    else if (k == "waxman") out.kind = TopologyKind::kWaxman;
    else if (k == "line") out.kind = TopologyKind::kLine;
    else if (k == "star") out.kind = TopologyKind::kStar;
    else return fail("unknown scenario kind \"" + k + "\"");
  }
  out.size = static_cast<int>(num_or(v, "size", out.size));
  out.capacity = num_or(v, "capacity", out.capacity);
  out.waxman_alpha = num_or(v, "waxman_alpha", out.waxman_alpha);
  out.waxman_beta = num_or(v, "waxman_beta", out.waxman_beta);
  out.seed = u64_or(v, "seed", out.seed);
  out.failed_links = static_cast<int>(num_or(v, "failed_links", out.failed_links));
  out.capacity_degradation =
      num_or(v, "capacity_degradation", out.capacity_degradation);
  return out;
}

}  // namespace xplain::scenario
