// ScenarioSpec: the pure-parameter description of one scenario, split out
// of scenario.h so layers that only *name* scenarios (the CaseRegistry's
// spec-parameterized factories, the experiment engine's grid) can include
// it without pulling in the te/ and lb/ generator machinery.  This header
// is deliberately dependency-free: a spec is a POD plus a label — the
// single sanctioned scenario/ include for src/xplain (tools/
// xplain_lint.py pins that, the same way compat.h is pinned).
//
// Generation stays a pure function of the spec (see scenario.h): the same
// spec — including its seed — produces the identical topology and instance
// on any machine and any worker count.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace xplain::scenario {

enum class TopologyKind { kFatTree, kWaxman, kLine, kStar };

inline const char* to_string(TopologyKind k) {
  switch (k) {
    case TopologyKind::kFatTree: return "fat_tree";
    case TopologyKind::kWaxman: return "waxman";
    case TopologyKind::kLine: return "line";
    case TopologyKind::kStar: return "star";
  }
  return "?";
}

struct ScenarioSpec {
  TopologyKind kind = TopologyKind::kFatTree;
  /// Fat-tree arity k (even), or node count for the other shapes.
  int size = 4;
  /// Base link capacity (edge tier for fat-trees; cap range top for Waxman).
  double capacity = 100.0;
  /// Waxman shape parameters (ignored by the deterministic shapes).
  double waxman_alpha = 0.7;
  double waxman_beta = 0.35;
  /// Seed for the randomized shapes AND for instance endpoint selection.
  std::uint64_t seed = 1;
  /// Failure dimensions (the production what-if axis): fail this many
  /// physical (bidirectional) links, chosen seed-deterministically among
  /// non-bridge links so the surviving topology stays connected (shapes
  /// where every link is a bridge — stars, lines — simply lose fewer or
  /// none), and multiply every surviving link capacity by
  /// `capacity_degradation` (a uniform brownout; 1.0 = healthy).
  int failed_links = 0;
  double capacity_degradation = 1.0;

  /// Corpus-stable label, e.g. "fat_tree_k4_s1" / "waxman_n12_s7".  The
  /// seed is always included — it selects instance endpoints for all kinds
  /// (and the topology for Waxman), so two specs differing only by seed are
  /// genuinely different scenarios.
  std::string name() const {
    std::string n = to_string(kind);
    n += kind == TopologyKind::kFatTree ? "_k" : "_n";
    n += std::to_string(size);
    n += "_s" + std::to_string(seed);
    return n;
  }

  /// name() plus compact suffixes for any field name() drops (capacity,
  /// Waxman shape) that differs from the spec defaults, so grid cells that
  /// differ only in those stay distinguishable in job labels and
  /// experiment JSON: "line_n2_s1_c35".  Integral values print as
  /// integers; non-integral ones fall back to the exact bit pattern
  /// (locale-independent, injective, just less pretty).
  std::string display_name() const {
    const ScenarioSpec defaults{};
    std::string n = name();
    if (capacity != defaults.capacity) n += "_c" + compact_double(capacity);
    if (kind == TopologyKind::kWaxman &&
        (waxman_alpha != defaults.waxman_alpha ||
         waxman_beta != defaults.waxman_beta))
      n += "_a" + compact_double(waxman_alpha) + "_b" +
           compact_double(waxman_beta);
    if (failed_links != defaults.failed_links)
      n += "_f" + std::to_string(failed_links);
    if (capacity_degradation != defaults.capacity_degradation)
      n += "_d" + compact_double(capacity_degradation);
    return n;
  }

  /// Injective over every generation-relevant field (name() drops capacity
  /// and the Waxman shape parameters for readability).  This is what the
  /// CaseRegistry keys its scenario-built-case cache on: two specs that
  /// could generate different instances must never share a key — hence
  /// doubles are encoded by their exact bit pattern (std::to_string would
  /// truncate to 6 decimals and alias nearby values).
  std::string cache_key() const {
    const auto bits = [](double v) {
      std::uint64_t u = 0;
      std::memcpy(&u, &v, sizeof(u));
      return std::to_string(u);
    };
    std::string k = name();
    k += "_c" + bits(capacity);
    if (kind == TopologyKind::kWaxman)
      k += "_a" + bits(waxman_alpha) + "_b" + bits(waxman_beta);
    // Failure fields joined the spec after the first committed baselines:
    // appended only when non-default so every healthy spec keeps the exact
    // key (and display name) it always had.  Still injective — the "_f"/"_d"
    // markers cannot appear inside the fixed prefix structure.
    const ScenarioSpec defaults{};
    if (failed_links != defaults.failed_links)
      k += "_f" + std::to_string(failed_links);
    if (capacity_degradation != defaults.capacity_degradation)
      k += "_d" + bits(capacity_degradation);
    return k;
  }

 private:
  static std::string compact_double(double v) {
    // Range check first: float-to-integer conversion outside long long's
    // range is UB.
    if (v > -1e15 && v < 1e15 &&
        v == static_cast<double>(static_cast<long long>(v)))
      return std::to_string(static_cast<long long>(v));
    std::uint64_t u = 0;
    std::memcpy(&u, &v, sizeof(u));
    return "x" + std::to_string(u);
  }
};

}  // namespace xplain::scenario
