// Scenario corpus: parameterized, seed-deterministic topology and instance
// generators, so every registered case (DP, FF/BF, WCMP) can be driven
// across a corpus of scenarios instead of one fixed example.
//
// Scenario generation is a pure function of its ScenarioSpec: the same spec
// (including its seed) produces the identical topology and instance no
// matter where, when, or on how many worker threads it is built — the same
// determinism contract the sampling loops follow (util/parallel.h).
//
// Shapes:
//   kFatTree  k-ary fat-tree switch fabric (k even): (k/2)^2 cores, k pods
//             of k/2 aggregation + k/2 edge switches; aggregation<->core
//             uplinks carry 2x the edge capacity (the tier the LB case's
//             capacity-skew dimension squeezes).
//   kWaxman   Waxman-style random WAN: nodes uniform in the unit square,
//             link probability alpha * exp(-dist / (beta * sqrt(2))), made
//             connected with a random spanning tree first.
//   kLine     path graph: the serialization stress shape (every commodity
//             shares the middle links).
//   kStar     hub-and-spoke: the incast stress shape (everything crosses
//             the hub).
#pragma once

#include <vector>

#include "lb/instance.h"
#include "scenario/spec.h"
#include "te/demand.h"
#include "te/topology.h"

namespace xplain::scenario {

/// Builds the spec's topology (pure function of the spec), including its
/// failure dimensions: `failed_links` non-bridge physical links removed
/// seed-deterministically (the surviving graph stays connected) and every
/// surviving capacity scaled by `capacity_degradation`.
te::Topology build_topology(const ScenarioSpec& spec);

/// A TE instance over the scenario: `num_pairs` distinct demand pairs
/// drawn seed-deterministically from the topology's reachable node pairs
/// (num_pairs <= 0 selects all ordered pairs).
te::TeInstance make_te_instance(const ScenarioSpec& spec, int num_pairs,
                                int k_paths, double d_max);

/// An LB instance over the scenario: `num_commodities` distinct commodities
/// (fat-trees draw endpoints from the edge tier — inter-rack traffic), each
/// with up to k_paths candidates, rates in [0, t_max], and the top capacity
/// tier skewed over [skew_lo, skew_hi] (skew_lo >= skew_hi disables the
/// skew dimension).
lb::LbInstance make_lb_instance(const ScenarioSpec& spec, int num_commodities,
                                int k_paths, double t_max, double skew_lo = 1.0,
                                double skew_hi = 1.0);

/// The default scenario corpus the benches sweep: fat-tree(4), fat-tree(6)
/// and fat-tree(8) fabrics (k=8 is ~80 switches — the thousands-of-rows
/// solver regime), a 12-node Waxman WAN, and the line/star stress shapes.
std::vector<ScenarioSpec> default_corpus();

}  // namespace xplain::scenario
