#include "server/service.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/parallel.h"

namespace xplain::server {

namespace {

/// Runs `f` on scope exit unless disarmed — the unwind arm of the RAII
/// claim guards (release a claimed-but-unpublished entry so waiters can
/// inherit instead of blocking forever).
template <class F>
class ScopeFail {
 public:
  explicit ScopeFail(F f) : f_(std::move(f)) {}
  ~ScopeFail() {
    if (armed_) f_();
  }
  ScopeFail(const ScopeFail&) = delete;
  ScopeFail& operator=(const ScopeFail&) = delete;
  void disarm() { armed_ = false; }

 private:
  F f_;
  bool armed_ = true;
};

CacheOptions cache_options(const ServiceOptions& o) {
  CacheOptions c;
  c.max_bytes = o.cache_max_bytes;
  c.journal_path = o.cache_path;
  c.fail_fast_after = o.cache_fail_fast_after;
  return c;
}

}  // namespace

Service::Service(const ServiceOptions& opts, CaseRegistry& reg)
    : registry_(&reg),
      pool_size_(std::max(1, util::resolve_workers(opts.workers))),
      queue_(opts.queue_capacity),
      cache_(cache_options(opts)) {
  // The pool starts last: by the time a worker can run, every other member
  // is constructed.
  pool_ = std::make_unique<WorkerPool>(
      &queue_, pool_size_, opts.batch_size,
      [this](const QueuedJob& q, int worker) { run_job(q, worker); });
  XPLAIN_INFO << "service: " << pool_size_ << " resident workers, queue "
              << queue_.capacity() << ", batch " << opts.batch_size;
}

Service::~Service() { shutdown(); }

std::uint64_t Service::submit(const ExperimentSpec& spec, JobCallback on_job) {
  auto sub = std::make_shared<Submission>();
  sub->spec = spec;
  sub->jobs = Engine(*registry_).expand(spec);
  sub->on_job = std::move(on_job);
  const int n = static_cast<int>(sub->jobs.size());
  {
    util::MutexLock lock(&sub->mu);
    sub->results.resize(n);
    sub->delivered.assign(n, 0);
    sub->remaining = n;
  }
  {
    util::MutexLock lock(&mu_);
    if (!accepting_) return kRejected;
    sub->id = next_id_++;
    submissions_[sub->id] = sub;
    // Counted under the same lock as the accept check: once drain() sees
    // accepting_ == false, every accepted job is already in pending_jobs_.
    pending_jobs_ += n;
    ++submissions_total_;
    jobs_submitted_ += n;
  }
  for (int i = 0; i < n; ++i) {
    if (queue_.push({sub->id, i})) continue;
    // Unreachable in the sanctioned lifecycle (shutdown() drains before
    // closing the queue, and drain waits for these very jobs) — but a lost
    // job must never strand wait(), so fail it loudly instead.
    JobSummary s;
    s.case_name = sub->jobs[i].case_name;
    s.scenario = sub->jobs[i].scenario ? sub->jobs[i].scenario->display_name()
                                       : std::string();
    s.index = i;
    s.error = "service shut down before the job could be enqueued";
    deliver(*sub, i, s, /*from_cache=*/false);
  }
  return sub->id;
}

ExperimentSummary Service::wait(std::uint64_t id) {
  std::shared_ptr<Submission> sub;
  {
    util::MutexLock lock(&mu_);
    auto it = submissions_.find(id);
    if (it == submissions_.end()) return {};
    sub = it->second;
  }
  ExperimentSummary out;
  sub->mu.lock();
  while (sub->remaining > 0) sub->done_cv.wait(sub->mu);
  out.jobs = sub->results;
  out.wall_seconds = sub->wall_seconds;
  sub->mu.unlock();
  {
    util::MutexLock lock(&mu_);
    submissions_.erase(id);
  }
  // Thread-inclusive per-job LP tallies sum to the submission's exact total
  // (each job's delta was measured on the worker that ran it).
  for (const JobSummary& j : out.jobs) {
    out.lp_solves += j.lp_solves;
    out.lp_iterations += j.lp_iterations;
    out.lp_columns_priced += j.lp_columns_priced;
    out.lp_candidate_refills += j.lp_candidate_refills;
  }
  if (sub->spec.run_generalizer) {
    // The same slim reconstruction Engine::run feeds generalize_batch —
    // the summaries carry everything the generalizer reads (features, best
    // gap, gap scale), so service trends match Engine trends bit for bit.
    std::vector<PipelineResult> slim;
    slim.reserve(out.jobs.size());
    for (const JobSummary& j : out.jobs) {
      if (!j.ok) continue;
      PipelineResult r;
      r.features = j.features;
      r.gap_scale = j.gap_scale;
      r.best_gap_found = std::max(j.max_seed_gap, j.best_gap_found);
      slim.push_back(std::move(r));
    }
    generalize::GeneralizerResult g = generalize::generalize_batch(
        slim, sub->spec.grammar, sub->spec.normalize_gap);
    out.trends = make_trend_summaries(g);
    out.observations = static_cast<int>(g.observations.size());
  }
  return out;
}

ExperimentSummary Service::run(const ExperimentSpec& spec,
                               JobCallback on_job) {
  const std::uint64_t id = submit(spec, std::move(on_job));
  if (id == kRejected) return {};
  return wait(id);
}

void Service::drain() {
  mu_.lock();
  accepting_ = false;
  while (pending_jobs_ > 0) idle_cv_.wait(mu_);
  mu_.unlock();
}

void Service::shutdown() {
  // Sequentially idempotent: drain re-checks pending (0), close and join
  // are no-ops the second time, compaction rewrites an already-compact
  // journal in place.
  drain();
  queue_.close();
  pool_->join();
  // With every worker joined the cache is quiescent: rewrite the journal
  // to exactly the resident entries (drops tombstones and superseded
  // lines) so the next startup replays a minimal file.
  cache_.compact();
}

ServiceStats Service::stats() const {
  ServiceStats s;
  {
    util::MutexLock lock(&mu_);
    s.submissions = submissions_total_;
    s.jobs_submitted = jobs_submitted_;
    s.jobs_completed = jobs_completed_;
    s.jobs_failed = jobs_failed_;
    s.duplicate_deliveries = duplicate_deliveries_;
  }
  {
    util::MutexLock lock(&case_mu_);
    s.case_builds = case_builds_;
  }
  const ResultCache::Stats cs = cache_.stats();
  s.cache_hits = cs.hits;
  s.cache_misses = cs.misses;
  s.cache_inflight_waits = cs.inflight_waits;
  s.cache_fast_fails = cs.fast_fails;
  s.cache_evictions = cs.evictions;
  s.cache_replayed = cs.replayed;
  s.cache_entries = cs.entries;
  s.cache_bytes = cs.bytes;
  return s;
}

void Service::run_job(const QueuedJob& q, int worker) {
  (void)worker;  // per-worker batching state lives in WorkerPool
  std::shared_ptr<Submission> sub;
  {
    util::MutexLock lock(&mu_);
    auto it = submissions_.find(q.submission);
    if (it == submissions_.end()) return;  // defensive; wait() erases only
    sub = it->second;                      // after the last delivery
  }
  const ExperimentJob& job = sub->jobs[q.index];
  // The identical pure derivation Engine::run uses: content depends on
  // (spec, index) only, never on worker or batch placement.
  std::uint64_t seed = 0;
  PipelineOptions o = derived_job_options(sub->spec, q.index, &seed);
  const std::string fp = o.fingerprint();
  const std::string scen_key =
      job.scenario ? job.scenario->cache_key() : std::string();
  const std::string key = ResultCache::key(job.case_name, scen_key, fp, seed);

  JobSummary s;
  const ResultCache::Outcome lookup = cache_.lookup_or_claim(key, &s);
  if (lookup == ResultCache::Outcome::kHit) {
    // Grid position is submission-local, not content — everything else in
    // the cached summary is identical by the key's construction.
    s.index = q.index;
    deliver(*sub, q.index, s, /*from_cache=*/true);
    return;
  }
  JobResult jr;
  jr.job = job;
  jr.seed = seed;
  jr.options_fingerprint = fp;
  if (lookup == ResultCache::Outcome::kFastFail) {
    // Poisoned-key back-off: the same key keeps getting abandoned and one
    // prober is already retrying it — fail this submission immediately
    // instead of joining a convoy behind a job that keeps dying.
    jr.error =
        "job fast-failed: this key was repeatedly abandoned and is being "
        "re-probed (resubmit later)";
    deliver(*sub, q.index, make_job_summary(jr), /*from_cache=*/false);
    return;
  }
  // kClaimed: from here until the claim is resolved, ANY unwind — a
  // throwing case build, pipeline, or summary serialization — must
  // abandon, or every future claimant of the key blocks forever.
  ClaimGuard claim(&cache_, key);
  try {
    const std::shared_ptr<const HeuristicCase> c =
        job.scenario ? scenario_case(job.case_name, *job.scenario, scen_key)
                     : registry_->find(job.case_name);
    if (!c) {
      jr.error = registry_->contains(job.case_name)
                     ? "case cannot build from a scenario "
                       "(default-only registration)"
                     : "unknown case";
    } else {
      // The pool already fans out across jobs; an "auto" explain pool
      // inside every concurrent pipeline would oversubscribe the machine
      // pool-size-fold.  An explicit positive count is respected.
      if (pool_size_ > 1 && o.explain.workers <= 0) o.explain.workers = 1;
      jr.pipeline = run_pipeline(*c, o);
      jr.ok = true;
    }
  } catch (const std::exception& e) {
    jr.ok = false;
    jr.error = std::string("job threw: ") + e.what();
  } catch (...) {
    jr.ok = false;
    jr.error = "job threw a non-standard exception";
  }
  s = make_job_summary(jr);
  if (jr.ok) {
    claim.fulfill(s);
  } else {
    claim.abandon();  // failures are not cached
  }
  deliver(*sub, q.index, s, /*from_cache=*/false);
}

void Service::deliver(Submission& sub, int index, const JobSummary& s,
                      bool from_cache) {
  bool dup = false;
  bool done = false;
  {
    util::MutexLock lock(&sub.mu);
    if (sub.delivered[index]) {
      dup = true;
    } else {
      sub.delivered[index] = 1;
      sub.results[index] = s;
      --sub.remaining;
      if (sub.on_job) sub.on_job(s, from_cache);
      if (sub.remaining == 0) {
        sub.wall_seconds = sub.timer.seconds();
        done = true;
      }
    }
  }
  {
    util::MutexLock lock(&mu_);
    if (dup) {
      ++duplicate_deliveries_;
    } else {
      ++jobs_completed_;
      if (!s.ok) ++jobs_failed_;
      if (--pending_jobs_ == 0) idle_cv_.notify_all();
    }
  }
  // Wake the waiter last, so a wait() that returns sees the service
  // counters already covering this delivery.
  if (done) sub.done_cv.notify_all();
}

std::shared_ptr<const HeuristicCase> Service::scenario_case(
    const std::string& name, const scenario::ScenarioSpec& scen,
    const std::string& scen_key) {
  const std::pair<std::string, std::string> k(name, scen_key);
  case_mu_.lock();
  for (;;) {
    auto it = cases_.find(k);
    if (it == cases_.end()) {
      // Claim and build outside the lock (builds can be expensive and
      // other workers may need DIFFERENT cases meanwhile).
      cases_.emplace(k, CaseEntry{});
      ++case_builds_;
      case_mu_.unlock();
      // A factory that throws must not strand the claim: on unwind, erase
      // the in-flight entry and wake the waiters — the first re-finds
      // nothing, inherits the claim, and retries the build (its own job
      // fails with the same error if the factory keeps throwing).
      ScopeFail claim([&] {
        case_mu_.lock();
        cases_.erase(k);
        case_mu_.unlock();
        case_ready_cv_.notify_all();
      });
      std::shared_ptr<const HeuristicCase> c = registry_->create(name, scen);
      claim.disarm();
      case_mu_.lock();
      CaseEntry& e = cases_[k];
      e.ready = true;
      e.c = c;  // nullptr is cached too: unknown stays unknown
      case_mu_.unlock();
      case_ready_cv_.notify_all();
      return c;
    }
    if (it->second.ready) {
      std::shared_ptr<const HeuristicCase> c = it->second.c;
      case_mu_.unlock();
      return c;
    }
    case_ready_cv_.wait(case_mu_);
  }
}

}  // namespace xplain::server
