#include "server/job_queue.h"

#include <algorithm>

namespace xplain::server {

JobQueue::JobQueue(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  // Storage is allocated once here and never resized: the ring IS the
  // bound.  (Explicit lock()/unlock() rather than MutexLock throughout
  // this file because condition_variable_any::wait needs the lockable
  // itself; clang's analysis tracks the explicit acquire/release fine.)
  ring_.resize(capacity_);
}

bool JobQueue::push(const QueuedJob& job) {
  mu_.lock();
  while (count_ == capacity_ && !closed_) not_full_.wait(mu_);
  if (closed_) {
    mu_.unlock();
    return false;
  }
  ring_[(head_ + count_) % capacity_] = job;
  ++count_;
  mu_.unlock();
  not_empty_.notify_one();
  return true;
}

std::size_t JobQueue::pop_batch(std::vector<QueuedJob>* out,
                                std::size_t max_batch) {
  out->clear();
  mu_.lock();
  while (count_ == 0 && !closed_) not_empty_.wait(mu_);
  const std::size_t n = std::min(count_, std::max<std::size_t>(1, max_batch));
  for (std::size_t i = 0; i < n; ++i) {
    out->push_back(ring_[head_]);
    head_ = (head_ + 1) % capacity_;
  }
  count_ -= n;
  mu_.unlock();
  // More than one producer may be blocked and n slots just freed.
  if (n > 0) not_full_.notify_all();
  return n;
}

void JobQueue::close() {
  mu_.lock();
  closed_ = true;
  mu_.unlock();
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool JobQueue::closed() const {
  util::MutexLock lock(&mu_);
  return closed_;
}

std::size_t JobQueue::size() const {
  util::MutexLock lock(&mu_);
  return count_;
}

}  // namespace xplain::server
