// Bounded MPSC job queue for the resident explanation service (xplaind).
//
// The rxloop/ringbuffer idiom (ndn-dpdk): a fixed-capacity ring of small
// POD descriptors, producers block when it is full (backpressure, not
// unbounded growth), and consumers dequeue in BATCHES into a reusable
// per-worker vector — the persistent workers amortize one lock acquisition
// over up to batch_size jobs instead of spawning a thread or taking a lock
// per job.  The descriptors are (submission id, grid index) pairs: the
// queue never owns job payloads, so enqueue/dequeue is a few word copies.
//
// Ordering: FIFO.  Determinism does not depend on it (every job's content
// is a pure function of its submission's spec + index; see
// derived_job_options in engine/engine.h), but FIFO keeps latency fair
// across submissions.
//
// Shutdown: close() wakes everyone; producers then fail fast (push returns
// false) while consumers continue to drain whatever is buffered —
// pop_batch returns 0 only when the queue is closed AND empty, which is
// each worker's signal to exit.  The service drains *pending work* before
// closing (Service::drain), so a graceful shutdown loses nothing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/thread_annotations.h"

namespace xplain::server {

/// One unit of queued work: which submission, which cell of its grid.
struct QueuedJob {
  std::uint64_t submission = 0;
  int index = 0;
};

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity);

  /// Blocks while the ring is full; false once the queue is closed (the
  /// job was NOT enqueued).
  bool push(const QueuedJob& job) XPLAIN_EXCLUDES(mu_);

  /// Dequeues up to `max_batch` jobs into `*out` (cleared first), blocking
  /// while the queue is open and empty.  Returns the number dequeued; 0
  /// means closed-and-drained — the consumer should exit.
  std::size_t pop_batch(std::vector<QueuedJob>* out, std::size_t max_batch)
      XPLAIN_EXCLUDES(mu_);

  /// Stops intake and wakes all blocked producers/consumers.  Idempotent.
  void close() XPLAIN_EXCLUDES(mu_);

  bool closed() const XPLAIN_EXCLUDES(mu_);
  std::size_t size() const XPLAIN_EXCLUDES(mu_);
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;

  mutable util::Mutex mu_;
  /// condition_variable_any: the std:: condvar only accepts a raw
  /// std::mutex, which xplain_lint bans (invisible to -Wthread-safety);
  /// util::Mutex is BasicLockable, which the _any variant works with.
  std::condition_variable_any not_empty_;
  std::condition_variable_any not_full_;
  /// Fixed ring storage: ring_[(head_ + i) % capacity_] for i < count_.
  std::vector<QueuedJob> ring_ XPLAIN_GUARDED_BY(mu_);
  std::size_t head_ XPLAIN_GUARDED_BY(mu_) = 0;
  std::size_t count_ XPLAIN_GUARDED_BY(mu_) = 0;
  bool closed_ XPLAIN_GUARDED_BY(mu_) = false;
};

}  // namespace xplain::server
