#include "server/result_cache.h"

#include <optional>
#include <utility>

#include "util/json.h"

namespace xplain::server {

std::string ResultCache::key(const std::string& case_name,
                             const std::string& scenario_cache_key,
                             const std::string& options_fingerprint,
                             std::uint64_t seed) {
  // '\n' never occurs in any leg (case names, cache keys and fingerprints
  // are single-line by construction), so the join is injective.
  std::string k = case_name;
  k += '\n';
  k += scenario_cache_key;
  k += '\n';
  k += options_fingerprint;
  k += '\n';
  k += std::to_string(seed);
  return k;
}

bool ResultCache::lookup_or_claim(const std::string& key, JobSummary* out) {
  mu_.lock();
  bool counted_wait = false;
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      // Claim: insert the in-flight marker; we are now the owner.
      entries_.emplace(key, Entry{});
      ++misses_;
      mu_.unlock();
      return false;
    }
    if (it->second.ready) {
      const std::string json = it->second.json;
      ++hits_;
      mu_.unlock();
      // Parse outside the lock: the exact util/json round-trip is the
      // serving path, not just the storage format.
      std::optional<util::Json> v = util::Json::parse(json);
      std::optional<JobSummary> s =
          v ? JobSummary::from_json_value(*v) : std::nullopt;
      if (s) {
        *out = std::move(*s);
        return true;
      }
      // Unparsable entry (cannot happen for values fulfill() wrote):
      // self-heal by dropping it and re-claiming.
      mu_.lock();
      auto bad = entries_.find(key);
      if (bad != entries_.end() && bad->second.ready) entries_.erase(bad);
      continue;
    }
    // In flight on another worker: wait for fulfill (-> hit) or abandon
    // (-> the find above misses and we inherit the claim).
    if (!counted_wait) {
      ++inflight_waits_;
      counted_wait = true;
    }
    ready_cv_.wait(mu_);
  }
}

void ResultCache::fulfill(const std::string& key, const JobSummary& s) {
  std::string json = s.to_json_value().dump(0);
  mu_.lock();
  Entry& e = entries_[key];
  e.ready = true;
  e.json = std::move(json);
  mu_.unlock();
  ready_cv_.notify_all();
}

void ResultCache::abandon(const std::string& key) {
  mu_.lock();
  auto it = entries_.find(key);
  if (it != entries_.end() && !it->second.ready) entries_.erase(it);
  mu_.unlock();
  ready_cv_.notify_all();
}

ResultCache::Stats ResultCache::stats() const {
  util::MutexLock lock(&mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.inflight_waits = inflight_waits_;
  for (const auto& [k, e] : entries_)
    if (e.ready) ++s.entries;
  return s;
}

}  // namespace xplain::server
