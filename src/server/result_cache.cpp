#include "server/result_cache.h"

#include <cstdio>
#include <iterator>
#include <optional>
#include <utility>

#include "util/json.h"

namespace xplain::server {

std::string ResultCache::key(const std::string& case_name,
                             const std::string& scenario_cache_key,
                             const std::string& options_fingerprint,
                             std::uint64_t seed) {
  // 0x1f (unit separator) never occurs in any leg (case names, cache keys
  // and fingerprints are printable single-line strings by construction),
  // so the join is injective — and the composed key contains neither '\n'
  // nor '\t', which keeps the one-line-per-record journal format exact.
  std::string k = case_name;
  k += '\x1f';
  k += scenario_cache_key;
  k += '\x1f';
  k += options_fingerprint;
  k += '\x1f';
  k += std::to_string(seed);
  return k;
}

ResultCache::ResultCache(const CacheOptions& opts) : opts_(opts) {
  if (opts_.journal_path.empty()) return;
  util::MutexLock lock(&mu_);
  replay_journal();
  evict_over_high_water();
  // Startup invariant: the journal equals the resident state (replay of a
  // crashed journal plus the rewrite also discards its truncated tail and
  // tombstones).  compact_locked leaves the journal open for appends.
  compact_locked();
}

ResultCache::~ResultCache() {
  if (opts_.journal_path.empty()) return;
  util::MutexLock lock(&mu_);
  compact_locked();
  journal_.close();
}

ResultCache::Outcome ResultCache::lookup_or_claim(const std::string& key,
                                                  JobSummary* out) {
  mu_.lock();
  bool counted_wait = false;
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      // Claim: insert the in-flight marker; we are now the owner.
      entries_.try_emplace(key);
      ++misses_;
      mu_.unlock();
      return Outcome::kClaimed;
    }
    Entry& e = it->second;
    if (e.state == State::kReady) {
      // Serve: refresh recency, then parse outside the lock — the exact
      // util/json round-trip is the serving path, not just storage.
      lru_.splice(lru_.begin(), lru_, e.lru);
      const std::string json = e.json;
      ++hits_;
      mu_.unlock();
      std::optional<util::Json> v = util::Json::parse(json);
      std::optional<JobSummary> s =
          v ? JobSummary::from_json_value(*v) : std::nullopt;
      if (s) {
        *out = std::move(*s);
        return Outcome::kHit;
      }
      // Unparsable entry (cannot happen for values fulfill() wrote or the
      // replay validated): self-heal by converting it into a claim we own.
      // No erase, so any still-waking waiters are undisturbed.
      mu_.lock();
      auto bad = entries_.find(key);
      if (bad != entries_.end() && bad->second.state == State::kReady) {
        retire_ready(bad);
        bad->second.state = State::kInFlight;
        journal_append(key, "");  // tombstone: never serve it again
        ++misses_;
        mu_.unlock();
        return Outcome::kClaimed;
      }
      continue;  // raced with an eviction/abandon: re-evaluate
    }
    if (e.state == State::kHandoff) {
      // An abandon designated one waiter to inherit; first claimant to get
      // here (usually the woken waiter) converts the entry back to
      // in-flight and recomputes.  Checked BEFORE the fast-fail gate so a
      // poisoned key always keeps exactly one live prober.
      e.state = State::kInFlight;
      ++misses_;
      mu_.unlock();
      return Outcome::kClaimed;
    }
    // In flight on another worker.  A key that keeps getting abandoned is
    // poisoned: fail fast instead of convoying behind the prober.
    if (opts_.fail_fast_after > 0) {
      auto fc = fail_counts_.find(key);
      if (fc != fail_counts_.end() && fc->second >= opts_.fail_fast_after) {
        ++fast_fails_;
        mu_.unlock();
        return Outcome::kFastFail;
      }
    }
    if (!counted_wait) {
      ++inflight_waits_;
      counted_wait = true;
    }
    ++e.waiters;
    e.cv.wait(mu_);
    --e.waiters;
    // Loop: ready -> hit, handoff -> inherit, in-flight -> wait again.
  }
}

void ResultCache::fulfill(const std::string& key, const JobSummary& s) {
  std::string json = s.to_json_value().dump(0);
  mu_.lock();
  auto it = entries_.try_emplace(key).first;  // normally the claim we own
  Entry& e = it->second;
  if (e.state == State::kReady) retire_ready(it);  // defensive overwrite
  install_ready(it, std::move(json));
  fail_counts_.erase(key);  // one success resets the poisoned-key tally
  journal_append(key, e.json);
  evict_over_high_water();
  // Notify under the lock: once mu_ is released another thread could evict
  // a waiterless entry and destroy the condvar out from under a late
  // notify.  Waiters re-take mu_, see kReady, and serve themselves.
  e.cv.notify_all();
  mu_.unlock();
}

void ResultCache::abandon(const std::string& key) {
  mu_.lock();
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.state != State::kInFlight) {
    mu_.unlock();  // not claimed (or already handed off): nothing to release
    return;
  }
  if (opts_.fail_fast_after > 0) ++fail_counts_[key];
  Entry& e = it->second;
  if (e.waiters > 0) {
    // Bounded claim inheritance: designate ONE waiter (directed notify) to
    // inherit; the rest keep sleeping instead of stampeding the mutex.
    e.state = State::kHandoff;
    e.cv.notify_one();
  } else {
    entries_.erase(it);  // key claimable again; failures are never cached
  }
  mu_.unlock();
}

void ResultCache::compact() {
  util::MutexLock lock(&mu_);
  compact_locked();
}

ResultCache::Stats ResultCache::stats() const {
  util::MutexLock lock(&mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.inflight_waits = inflight_waits_;
  s.fast_fails = fast_fails_;
  s.evictions = evictions_;
  s.replayed = replayed_;
  s.entries = ready_count_;
  s.bytes = ready_bytes_;
  return s;
}

ResultCache::Stats ResultCache::recount_stats() const {
  util::MutexLock lock(&mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.inflight_waits = inflight_waits_;
  s.fast_fails = fast_fails_;
  s.evictions = evictions_;
  s.replayed = replayed_;
  for (const auto& [k, e] : entries_) {
    if (e.state != State::kReady) continue;
    ++s.entries;
    s.bytes += e.json.size();
  }
  return s;
}

void ResultCache::install_ready(EntryMap::iterator it, std::string json) {
  Entry& e = it->second;
  e.state = State::kReady;
  e.json = std::move(json);
  e.bytes = e.json.size();
  lru_.push_front(&it->first);
  e.lru = lru_.begin();
  ++ready_count_;
  ready_bytes_ += e.bytes;
}

void ResultCache::retire_ready(EntryMap::iterator it) {
  Entry& e = it->second;
  ready_bytes_ -= e.bytes;
  --ready_count_;
  lru_.erase(e.lru);
  e.json.clear();
  e.bytes = 0;
}

void ResultCache::evict_over_high_water() {
  if (opts_.max_bytes == 0) return;
  auto pos = lru_.end();
  while (ready_bytes_ > opts_.max_bytes && pos != lru_.begin()) {
    auto cur = std::prev(pos);
    if (cur == lru_.begin()) break;  // the MRU entry is never evicted
    auto it = entries_.find(**cur);
    if (it->second.waiters > 0) {
      pos = cur;  // pinned: a woken waiter still references the entry
      continue;
    }
    journal_append(it->first, "");  // tombstone
    retire_ready(it);               // erases cur from lru_; pos stays valid
    entries_.erase(it);
    ++evictions_;
  }
}

void ResultCache::replay_journal() {
  std::ifstream in(opts_.journal_path, std::ios::binary);
  if (!in) return;
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  // One "key \t json" record per line; an empty json is a tombstone.  The
  // LAST action per key wins.  A final line without its terminating '\n'
  // is a crash mid-append: dropped.  (Lines that fail to split or whose
  // value no longer parses are skipped too — only exact util/json
  // documents are ever served.)
  std::map<std::string, std::pair<std::size_t, std::string>> last;
  std::size_t pos = 0, line_no = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) break;  // truncated final line
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    const std::size_t tab = line.find('\t');
    if (tab == std::string::npos) continue;
    last[line.substr(0, tab)] = {line_no++, line.substr(tab + 1)};
  }
  // Reinstall survivors in last-action order: later lines are more recent,
  // and install_ready pushes to the LRU front, so the final head is the
  // newest entry — recency survives the restart.
  std::map<std::size_t, std::pair<const std::string*, const std::string*>>
      order;
  for (const auto& [k, v] : last)
    if (!v.second.empty()) order[v.first] = {&k, &v.second};
  for (const auto& [ln, kv] : order) {
    (void)ln;
    if (!util::Json::parse(*kv.second)) continue;
    auto [it, inserted] = entries_.try_emplace(*kv.first);
    if (!inserted) continue;  // cannot happen: keys are unique in `last`
    install_ready(it, *kv.second);
    ++replayed_;
  }
}

void ResultCache::journal_append(const std::string& key,
                                 const std::string& json) {
  if (!journal_.is_open()) return;
  journal_ << key << '\t' << json << '\n';
  journal_.flush();
}

void ResultCache::compact_locked() {
  if (opts_.journal_path.empty()) return;
  if (journal_.is_open()) journal_.close();
  const std::string tmp = opts_.journal_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    // LRU tail first: replay reads oldest-to-newest and rebuilds the same
    // recency order (the file's last line becomes the MRU head again).
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      const auto e = entries_.find(**it);
      out << e->first << '\t' << e->second.json << '\n';
    }
  }
  std::rename(tmp.c_str(), opts_.journal_path.c_str());
  journal_.open(opts_.journal_path, std::ios::binary | std::ios::app);
}

}  // namespace xplain::server
