#include "server/worker_pool.h"

#include <algorithm>
#include <utility>

namespace xplain::server {

WorkerPool::WorkerPool(JobQueue* queue, int workers, std::size_t batch_size,
                       JobFn fn)
    : queue_(queue),
      batch_size_(std::max<std::size_t>(1, batch_size)),
      fn_(std::move(fn)) {
  const int n = std::max(1, workers);
  stats_.resize(n);
  threads_.reserve(n);
  for (int w = 0; w < n; ++w) threads_.emplace_back([this, w] { run(w); });
}

WorkerPool::~WorkerPool() { join(); }

void WorkerPool::join() {
  if (joined_) return;
  for (auto& t : threads_) t.join();
  joined_ = true;
}

void WorkerPool::run(int worker) {
  // The rxloop: one reusable batch buffer per worker, refilled until the
  // queue reports closed-and-drained.
  std::vector<QueuedJob> batch;
  batch.reserve(batch_size_);
  for (;;) {
    const std::size_t n = queue_->pop_batch(&batch, batch_size_);
    if (n == 0) return;
    for (const QueuedJob& job : batch) fn_(job, worker);
    stats_[worker].jobs += static_cast<long>(n);
    ++stats_[worker].batches;
  }
}

}  // namespace xplain::server
