// Persistent worker pool for the resident explanation service.
//
// Unlike util::parallel_chunks (scoped fork/join over a known index range),
// these workers are resident: they spawn once at Service construction,
// loop on JobQueue::pop_batch (the rxloop idiom — one lock acquisition per
// BATCH, a reusable per-worker buffer, no per-job thread spawn), and exit
// only when the queue is closed and drained.
//
// Determinism: the pool adds nothing to job content.  Each job's result is
// a pure function of (submission spec, grid index) — the job function must
// uphold that (Service::run_job does, via derived_job_options) — so which
// worker runs a job, and in which batch, changes wall clock and completion
// order only.  Per-worker state (the batch buffer, the stats tallies) is
// indexed by worker slot, never by thread id.
//
// LP accounting caveat (solver/lp.h): these are hand-rolled threads, so
// their thread-local solver tallies reach the process-wide retired totals
// only when the workers EXIT (WorkerPool::join).  Per-job deltas measured
// inside a job are still exact; process-level deltas across a service are
// exact only after shutdown.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "server/job_queue.h"

namespace xplain::server {

class WorkerPool {
 public:
  /// Runs one job; `worker` is this worker's slot in [0, size()).
  using JobFn = std::function<void(const QueuedJob&, int worker)>;

  struct WorkerStats {
    long jobs = 0;
    long batches = 0;
  };

  /// Spawns `workers` resident threads immediately.  `queue` and `fn` must
  /// outlive the pool.
  WorkerPool(JobQueue* queue, int workers, std::size_t batch_size, JobFn fn);
  ~WorkerPool();  // joins (close the queue first or this blocks forever)

  /// Blocks until every worker has exited (requires queue->close() to have
  /// been called, or to be called by another thread).  Single-caller;
  /// idempotent from that caller.
  void join();

  int size() const { return static_cast<int>(threads_.size()); }

  /// Per-worker tallies; call only after join() (workers write their own
  /// slot unsynchronized while running — the join is the handoff).
  const std::vector<WorkerStats>& stats() const { return stats_; }

 private:
  void run(int worker);

  JobQueue* queue_;
  const std::size_t batch_size_;
  JobFn fn_;
  /// Slot-per-worker, exclusively written by that worker until join().
  std::vector<WorkerStats> stats_;
  std::vector<std::thread> threads_;
  bool joined_ = false;
};

}  // namespace xplain::server
