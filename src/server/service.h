// xplain::server::Service — the resident explanation service's front door.
//
// The paper's pipeline explains one study per process; the ROADMAP
// north-star serves a query STREAM.  Service keeps an Engine-shaped job
// path resident: submit() expands an ExperimentSpec grid into jobs (the
// same Engine::expand order), enqueues them on the bounded JobQueue, and a
// persistent WorkerPool runs each job through run_pipeline with options
// from derived_job_options — so every job's content is the same pure
// function of (spec, index) that Engine::run computes, bitwise identical
// for any pool size and unaffected by concurrent unrelated jobs (the
// thread-inclusive solver::lp_counters keep each job's LP tallies exact).
//
// Results dedup through the content-addressed ResultCache: a job whose
// (case, scenario.cache_key(), options fingerprint, seed) was already
// computed is served from memory — bitwise identical JSON, zero LP work —
// and concurrent duplicates collapse to one computation (the second
// submitter waits).
//
// Streaming: an optional per-submission callback fires as each job
// finishes (serialized per submission; completion ORDER depends on
// scheduling, job CONTENT does not).  The callback receives the
// JobSummary — the serializable digest — rather than the full JobResult:
// a cache hit has no PipelineResult to resurrect, and the summary is
// exactly what the service can promise to reproduce bit for bit.  Do not
// call back into the Service from the callback (it runs under the
// submission's lock).
//
// Lifecycle: drain() stops intake and blocks until every accepted job has
// finished (workers stay up); shutdown() drains, closes the queue, and
// joins the pool.  The destructor shuts down.  Submissions after drain are
// rejected (submit returns kRejected).
//
// Hardening: every cache claim is held in a RAII ClaimGuard and the whole
// job path runs under a catch-all, so an exception anywhere (case build,
// pipeline, serialization) abandons the claim, fails the job loudly, and
// still delivers — no claimant ever blocks forever on a stranded key.
// ServiceOptions::cache_max_bytes bounds resident cache memory (LRU by
// bytes) and cache_path persists it across restarts; see
// server/result_cache.h for the policy details.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "server/job_queue.h"
#include "server/result_cache.h"
#include "server/worker_pool.h"
#include "util/thread_annotations.h"
#include "util/timer.h"
#include "xplain/case.h"

namespace xplain::server {

struct ServiceOptions {
  /// Worker threads; <= 0 resolves via util::resolve_workers (one per
  /// hardware thread unless XPLAIN_WORKERS overrides).
  int workers = 0;
  /// Job-queue bound (backpressure: submit blocks when full).
  std::size_t queue_capacity = 256;
  /// Jobs per rxloop batch dequeue.
  std::size_t batch_size = 4;
  /// Result-cache high-water mark in summed JSON bytes; fulfills past it
  /// evict least-recently-served entries.  0 = unbounded (the pre-eviction
  /// behavior).
  std::size_t cache_max_bytes = 0;
  /// Result-cache journal replayed at startup and compacted on shutdown;
  /// "" = in-memory only.  A restarted service serves the prior working
  /// set byte-for-byte from this file with zero new LP solves.
  std::string cache_path;
  /// Consecutive failures of one cache key before other submitters
  /// fast-fail instead of queuing behind the re-prober; 0 disables.
  int cache_fail_fast_after = 3;
};

struct ServiceStats {
  long submissions = 0;
  long jobs_submitted = 0;
  long jobs_completed = 0;
  long jobs_failed = 0;  // completed with ok = false (subset of completed)
  /// A slot delivered twice would indicate a scheduling bug; the drain
  /// test asserts this stays 0.
  long duplicate_deliveries = 0;
  long cache_hits = 0;
  long cache_misses = 0;
  long cache_inflight_waits = 0;
  /// Submissions answered with an immediate failure because the key was
  /// repeatedly abandoned (ServiceOptions::cache_fail_fast_after).
  long cache_fast_fails = 0;
  /// Ready entries evicted by the cache_max_bytes LRU policy.
  long cache_evictions = 0;
  /// Ready entries replayed from cache_path at startup.
  long cache_replayed = 0;
  std::size_t cache_entries = 0;
  /// Summed JSON bytes of the resident ready entries (the quantity
  /// cache_max_bytes bounds).
  std::size_t cache_bytes = 0;
  /// Scenario instances this service constructed (once per unique
  /// (case, scenario.cache_key()) across its lifetime — the resident
  /// analogue of ExperimentResult::case_builds).
  long case_builds = 0;
};

class Service {
 public:
  /// Fires per finished job, serialized per submission.  `from_cache` is
  /// true when the summary was served without running the pipeline.
  using JobCallback = std::function<void(const JobSummary&, bool from_cache)>;

  explicit Service(const ServiceOptions& opts = {},
                   CaseRegistry& reg = registry());
  ~Service();  // shutdown()

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// submit() result when the service is draining / shut down.
  static constexpr std::uint64_t kRejected = 0;

  /// Enqueues the spec's full grid; returns a handle for wait(), or
  /// kRejected after drain()/shutdown().  Blocks only for queue
  /// backpressure.  The spec's `workers` field is ignored (the pool is the
  /// service's); everything else — including reseed_jobs, run_generalizer,
  /// grammar — behaves exactly as in Engine::run.
  std::uint64_t submit(const ExperimentSpec& spec, JobCallback on_job = {})
      XPLAIN_EXCLUDES(mu_);

  /// Blocks until every job of `id` finished; returns the submission's
  /// summary (jobs in grid order, trends mined like Engine::run does) and
  /// releases the handle.  A second wait on the same id returns an empty
  /// summary.
  ExperimentSummary wait(std::uint64_t id) XPLAIN_EXCLUDES(mu_);

  /// submit + wait.
  ExperimentSummary run(const ExperimentSpec& spec, JobCallback on_job = {});

  /// Stops intake and blocks until all accepted jobs finished.  Workers
  /// stay resident (more submissions are still rejected).
  void drain() XPLAIN_EXCLUDES(mu_);

  /// drain() + close the queue + join the pool.  Idempotent.
  void shutdown() XPLAIN_EXCLUDES(mu_);

  ServiceStats stats() const XPLAIN_EXCLUDES(mu_);

  int pool_size() const { return pool_size_; }

 private:
  struct Submission {
    // Immutable after submit() registers the entry.
    std::uint64_t id = 0;
    ExperimentSpec spec;
    std::vector<ExperimentJob> jobs;
    JobCallback on_job;
    util::Timer timer;

    util::Mutex mu;
    std::condition_variable_any done_cv;
    std::vector<JobSummary> results XPLAIN_GUARDED_BY(mu);
    std::vector<char> delivered XPLAIN_GUARDED_BY(mu);
    int remaining XPLAIN_GUARDED_BY(mu) = 0;
    double wall_seconds XPLAIN_GUARDED_BY(mu) = 0.0;
  };

  void run_job(const QueuedJob& q, int worker);
  void deliver(Submission& sub, int index, const JobSummary& s,
               bool from_cache) XPLAIN_EXCLUDES(mu_);
  /// The service's resident case memo: one build per unique
  /// (case, scenario.cache_key()), with in-flight dedup like the result
  /// cache.  Never evicted (ROADMAP follow-on).
  std::shared_ptr<const HeuristicCase> scenario_case(
      const std::string& name, const scenario::ScenarioSpec& scen,
      const std::string& scen_key) XPLAIN_EXCLUDES(case_mu_);

  CaseRegistry* registry_;
  const int pool_size_;
  JobQueue queue_;
  ResultCache cache_;
  std::unique_ptr<WorkerPool> pool_;  // constructed last, joined first

  mutable util::Mutex mu_;
  std::condition_variable_any idle_cv_;  // pending_jobs_ hit 0
  bool accepting_ XPLAIN_GUARDED_BY(mu_) = true;
  std::uint64_t next_id_ XPLAIN_GUARDED_BY(mu_) = 1;
  std::map<std::uint64_t, std::shared_ptr<Submission>> submissions_
      XPLAIN_GUARDED_BY(mu_);
  long pending_jobs_ XPLAIN_GUARDED_BY(mu_) = 0;
  long submissions_total_ XPLAIN_GUARDED_BY(mu_) = 0;
  long jobs_submitted_ XPLAIN_GUARDED_BY(mu_) = 0;
  long jobs_completed_ XPLAIN_GUARDED_BY(mu_) = 0;
  long jobs_failed_ XPLAIN_GUARDED_BY(mu_) = 0;
  long duplicate_deliveries_ XPLAIN_GUARDED_BY(mu_) = 0;

  struct CaseEntry {
    bool ready = false;
    std::shared_ptr<const HeuristicCase> c;
  };
  mutable util::Mutex case_mu_;
  std::condition_variable_any case_ready_cv_;
  std::map<std::pair<std::string, std::string>, CaseEntry> cases_
      XPLAIN_GUARDED_BY(case_mu_);
  long case_builds_ XPLAIN_GUARDED_BY(case_mu_) = 0;
};

}  // namespace xplain::server
