// Content-addressed result cache for the resident explanation service.
//
// Key: (case name, scenario.cache_key(), PipelineOptions::fingerprint(),
// derived seed) — every input that can change a job's RESULT, each leg
// injective on its own (the scenario key and the options fingerprint both
// encode doubles by bit pattern).  Worker counts are absent by
// construction: the determinism contract (util/parallel.h) makes them
// wall-clock-only, so a grid re-submitted with a different pool size still
// hits.
//
// Value: the job's JobSummary as util/json TEXT.  Storing the serialized
// form (rather than the struct) makes the cache honest about what it
// serves: a hit re-parses through the exact util::Json round-trip
// (ordered members, max_digits10 doubles), so a repeat submission emits
// job JSON bitwise identical to the first run's — which is also what the
// acceptance test asserts.
//
// In-flight dedup: lookup_or_claim on a key someone else is computing
// BLOCKS until that computation fulfills (then returns the hit) or
// abandons (then the caller inherits the claim and computes).  Failed jobs
// are never cached — abandon() erases the entry so a transient failure
// does not poison the key.  Deadlock-free because every in-flight entry
// has exactly one live owner that will fulfill or abandon it.
//
// No eviction: the resident server retains its working set for the
// process lifetime (the same policy as CaseRegistry's keyed cache); an
// eviction policy is a tracked ROADMAP follow-on.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <map>
#include <string>

#include "engine/engine.h"
#include "util/thread_annotations.h"

namespace xplain::server {

class ResultCache {
 public:
  struct Stats {
    long hits = 0;
    long misses = 0;
    /// lookup_or_claim calls that blocked on someone else's computation
    /// (each counts once, whether it ended in a hit or an inherited claim).
    long inflight_waits = 0;
    std::size_t entries = 0;  // ready entries resident right now
  };

  /// Composes the cache key for one job (see file comment).
  static std::string key(const std::string& case_name,
                         const std::string& scenario_cache_key,
                         const std::string& options_fingerprint,
                         std::uint64_t seed);

  /// Hit: returns true with *out filled from the cached JSON.  Miss: (after
  /// waiting out any in-flight computation) claims the key and returns
  /// false — the caller MUST later call fulfill(key, ...) or abandon(key),
  /// or every future lookup of the key blocks forever.
  bool lookup_or_claim(const std::string& key, JobSummary* out)
      XPLAIN_EXCLUDES(mu_);

  /// Publishes a computed summary and wakes waiters.  Only ok results
  /// should be published (failures: abandon).
  void fulfill(const std::string& key, const JobSummary& s)
      XPLAIN_EXCLUDES(mu_);

  /// Releases a claim without publishing (job failed): the entry is erased
  /// and waiters wake, the first of which inherits the claim.
  void abandon(const std::string& key) XPLAIN_EXCLUDES(mu_);

  Stats stats() const XPLAIN_EXCLUDES(mu_);

 private:
  struct Entry {
    bool ready = false;   // false: claimed, computation in flight
    std::string json;     // JobSummary::to_json_value().dump (when ready)
  };

  mutable util::Mutex mu_;
  std::condition_variable_any ready_cv_;
  std::map<std::string, Entry> entries_ XPLAIN_GUARDED_BY(mu_);
  long hits_ XPLAIN_GUARDED_BY(mu_) = 0;
  long misses_ XPLAIN_GUARDED_BY(mu_) = 0;
  long inflight_waits_ XPLAIN_GUARDED_BY(mu_) = 0;
};

}  // namespace xplain::server
