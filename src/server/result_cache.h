// Content-addressed result cache for the resident explanation service.
//
// Key: (case name, scenario.cache_key(), PipelineOptions::fingerprint(),
// derived seed) — every input that can change a job's RESULT, each leg
// injective on its own (the scenario key and the options fingerprint both
// encode doubles by bit pattern).  Worker counts are absent by
// construction: the determinism contract (util/parallel.h) makes them
// wall-clock-only, so a grid re-submitted with a different pool size still
// hits.
//
// Value: the job's JobSummary as util/json TEXT.  Storing the serialized
// form (rather than the struct) makes the cache honest about what it
// serves: a hit re-parses through the exact util::Json round-trip
// (ordered members, max_digits10 doubles), so a repeat submission emits
// job JSON bitwise identical to the first run's — which is also what the
// acceptance test asserts.
//
// In-flight dedup: lookup_or_claim on a key someone else is computing
// BLOCKS until that computation fulfills (then returns the hit) or
// abandons.  An abandon hands the claim to exactly ONE waiter (a directed
// per-entry notify, not a herd wake-up): the inheritor returns kClaimed
// and computes; the rest keep waiting on the inherited computation.
// Failed jobs are never cached — a transient failure does not poison the
// key — but a key abandoned `fail_fast_after` times IN A ROW is treated
// as poisoned: while a (single) prober recomputes it, other submitters
// get kFastFail immediately instead of convoying behind a job that keeps
// dying.  One success resets the key.  Deadlock-free because every
// in-flight entry has exactly one live owner that will fulfill or abandon
// it — Service::run_job holds the claim in a RAII guard so even an
// escaped exception abandons rather than strands.
//
// Eviction: LRU by bytes.  Every ready entry's JSON size is tracked and
// `ready_bytes`/`ready_count` are maintained incrementally (stats() is
// O(1), not an O(entries) walk).  When a fulfill would push the total
// past CacheOptions::max_bytes, least-recently-SERVED ready entries are
// evicted (a hit refreshes recency) until the total fits again.  In-flight
// entries are never evicted (they are not ready bytes yet), and neither is
// the most-recently-used entry — so a single oversized result is retained
// rather than thrashed, and a fulfill can never evict the value its
// waiters are about to read.  max_bytes == 0 keeps the old unbounded
// behavior.
//
// Persistence: with CacheOptions::journal_path set, every fulfill appends
// one "key \t json \n" line to the journal (keys join their legs with
// 0x1f and JSON strings escape control characters, so neither contains a
// raw tab or newline), and every eviction appends a tombstone ("key \t
// \n", empty value).  Construction replays the journal — last action per
// key wins, in order, so the LRU order survives a restart — tolerating a
// final line truncated by a crash mid-append.  compact() (also run by the
// destructor, i.e. on clean shutdown and at startup after replay)
// rewrites the journal to exactly the resident entries via a temp file +
// atomic rename, dropping tombstones and superseded lines.  One process
// per journal file: concurrent ResultCaches on the same path are
// unsupported.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <fstream>
#include <list>
#include <map>
#include <string>

#include "engine/engine.h"
#include "util/thread_annotations.h"

namespace xplain::server {

struct CacheOptions {
  /// High-water mark for the summed JSON bytes of ready entries; fulfilling
  /// past it evicts least-recently-served entries.  0 = unbounded.
  std::size_t max_bytes = 0;
  /// Append-only journal replayed at construction; "" = no persistence.
  std::string journal_path;
  /// Consecutive abandons of one key after which other submitters fast-fail
  /// instead of waiting behind the (single) re-prober.  0 disables.
  int fail_fast_after = 3;
};

class ResultCache {
 public:
  struct Stats {
    long hits = 0;
    long misses = 0;
    /// lookup_or_claim calls that blocked on someone else's computation
    /// (each counts once, whether it ended in a hit or an inherited claim).
    long inflight_waits = 0;
    /// lookup_or_claim calls answered kFastFail (poisoned-key back-off).
    long fast_fails = 0;
    /// Ready entries evicted by the max_bytes LRU policy.
    long evictions = 0;
    /// Ready entries loaded from the journal at construction.
    long replayed = 0;
    std::size_t entries = 0;  // ready entries resident right now
    std::size_t bytes = 0;    // their summed JSON sizes
  };

  enum class Outcome {
    kHit,       // *out filled from cache
    kClaimed,   // caller owns the key: MUST fulfill() or abandon()
    kFastFail,  // key is poisoned (repeat abandons); caller should fail fast
  };

  explicit ResultCache(const CacheOptions& opts = {});
  ~ResultCache();  // compact()s the journal (clean-shutdown rewrite)

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Composes the cache key for one job (see file comment).
  static std::string key(const std::string& case_name,
                         const std::string& scenario_cache_key,
                         const std::string& options_fingerprint,
                         std::uint64_t seed);

  /// kHit: *out filled from the cached JSON.  kClaimed: (after waiting out
  /// any in-flight computation) the caller owns the key and MUST later call
  /// fulfill(key, ...) or abandon(key), or every future lookup of the key
  /// blocks forever.  kFastFail: see CacheOptions::fail_fast_after.
  Outcome lookup_or_claim(const std::string& key, JobSummary* out)
      XPLAIN_EXCLUDES(mu_);

  /// Publishes a computed summary, journals it, wakes waiters, and evicts
  /// past max_bytes.  Only ok results should be published (failures:
  /// abandon).
  void fulfill(const std::string& key, const JobSummary& s)
      XPLAIN_EXCLUDES(mu_);

  /// Releases a claim without publishing (job failed).  With waiters
  /// present, exactly one inherits the claim (directed wake); without, the
  /// entry is erased and the key is claimable again.  Counts toward the
  /// key's consecutive-failure tally.
  void abandon(const std::string& key) XPLAIN_EXCLUDES(mu_);

  /// Rewrites the journal to exactly the resident ready entries (temp file
  /// + rename).  No-op without a journal_path.
  void compact() XPLAIN_EXCLUDES(mu_);

  /// O(1): every field is maintained incrementally.
  Stats stats() const XPLAIN_EXCLUDES(mu_);

  /// Debug/test-only O(entries) recount of `entries`/`bytes` from the map
  /// itself; a mismatch with stats() is a counter-maintenance bug.
  Stats recount_stats() const XPLAIN_EXCLUDES(mu_);

 private:
  enum class State {
    kInFlight,  // claimed, computation running
    kHandoff,   // owner abandoned; one woken waiter converts this back to
                // kInFlight and inherits the claim
    kReady,
  };

  struct Entry {
    State state = State::kInFlight;
    std::string json;       // JobSummary::to_json_value().dump(0) when ready
    std::size_t bytes = 0;  // json.size() when ready
    int waiters = 0;        // threads blocked in cv.wait on this entry
    /// Position in lru_ (valid only when ready); front = most recent.
    std::list<const std::string*>::iterator lru;
    /// Per-entry condvar: abandon notifies ONE waiter (claim handoff),
    /// fulfill notifies all.  Entries with waiters are never erased.
    std::condition_variable_any cv;
  };
  using EntryMap = std::map<std::string, Entry>;

  void replay_journal() XPLAIN_REQUIRES(mu_);
  void journal_append(const std::string& key, const std::string& json)
      XPLAIN_REQUIRES(mu_);
  /// Inserts a ready entry (fulfill/replay): counters, LRU front.
  void install_ready(EntryMap::iterator it, std::string json)
      XPLAIN_REQUIRES(mu_);
  /// Removes a ready entry's counter/LRU footprint (evict/self-heal).
  void retire_ready(EntryMap::iterator it) XPLAIN_REQUIRES(mu_);
  /// Evicts LRU-tail entries until bytes fit under max_bytes, skipping the
  /// MRU head and entries with waiters; journals a tombstone per eviction.
  void evict_over_high_water() XPLAIN_REQUIRES(mu_);
  void compact_locked() XPLAIN_REQUIRES(mu_);

  const CacheOptions opts_;

  mutable util::Mutex mu_;
  EntryMap entries_ XPLAIN_GUARDED_BY(mu_);
  /// Ready keys, most-recently-served first (pointers into entries_ keys,
  /// which std::map keeps stable).
  std::list<const std::string*> lru_ XPLAIN_GUARDED_BY(mu_);
  /// Consecutive abandons per key; erased on fulfill.  Only keys whose
  /// latest outcome was a failure stay resident here.
  std::map<std::string, int> fail_counts_ XPLAIN_GUARDED_BY(mu_);
  std::ofstream journal_ XPLAIN_GUARDED_BY(mu_);
  long hits_ XPLAIN_GUARDED_BY(mu_) = 0;
  long misses_ XPLAIN_GUARDED_BY(mu_) = 0;
  long inflight_waits_ XPLAIN_GUARDED_BY(mu_) = 0;
  long fast_fails_ XPLAIN_GUARDED_BY(mu_) = 0;
  long evictions_ XPLAIN_GUARDED_BY(mu_) = 0;
  long replayed_ XPLAIN_GUARDED_BY(mu_) = 0;
  std::size_t ready_count_ XPLAIN_GUARDED_BY(mu_) = 0;
  std::size_t ready_bytes_ XPLAIN_GUARDED_BY(mu_) = 0;
};

/// RAII ownership of a kClaimed key: abandons on destruction unless the
/// claim was resolved through fulfill()/abandon() — the guard that keeps an
/// exception anywhere on the job path from stranding every future claimant
/// of the key (Service::run_job holds one across the pipeline run).
class ClaimGuard {
 public:
  ClaimGuard(ResultCache* cache, const std::string& key)
      : cache_(cache), key_(&key) {}
  ~ClaimGuard() {
    if (cache_) cache_->abandon(*key_);
  }
  ClaimGuard(const ClaimGuard&) = delete;
  ClaimGuard& operator=(const ClaimGuard&) = delete;

  void fulfill(const JobSummary& s) {
    cache_->fulfill(*key_, s);
    cache_ = nullptr;
  }
  void abandon() {
    cache_->abandon(*key_);
    cache_ = nullptr;
  }

 private:
  ResultCache* cache_;
  const std::string* key_;
};

}  // namespace xplain::server
