#include "lb/network.h"

#include <algorithm>
#include <string>

namespace xplain::lb {

LbNetwork build_lb_network(const LbInstance& inst) {
  using namespace flowgraph;
  LbNetwork lbn;
  FlowNetwork& net = lbn.net;
  net = FlowNetwork("wcmp_load_balancing");

  NodeId met = net.add_node("met_traffic", NodeKind::kSink);
  NodeId unmet = net.add_node("unmet_traffic", NodeKind::kSink);

  std::vector<NodeId> link_nodes(inst.topo.num_links());
  lbn.link_edges.resize(inst.topo.num_links());
  for (int l = 0; l < inst.topo.num_links(); ++l) {
    const std::string ln = inst.topo.link_name(te::LinkId{l});
    link_nodes[l] = net.add_node("link_" + ln, NodeKind::kSplit);
    net.set_node_meta(link_nodes[l], "kind", "link");
    const bool is_skewed =
        l < static_cast<int>(inst.skewed.size()) && inst.skewed[l];
    net.set_node_meta(link_nodes[l], "skewed", is_skewed ? "yes" : "no");
    EdgeId e = net.add_edge(link_nodes[l], met, "cap_" + ln);
    net.set_capacity(e, inst.topo.link(te::LinkId{l}).capacity);
    net.set_edge_meta(e, "kind", "link_capacity");
    net.set_edge_meta(e, "skewed", is_skewed ? "yes" : "no");
    lbn.link_edges[l] = e;
  }

  lbn.path_edges.resize(inst.num_commodities());
  lbn.path_link_edges.resize(inst.num_commodities());
  lbn.commodity_nodes.resize(inst.num_commodities());
  lbn.unmet_edges.resize(inst.num_commodities());
  for (int k = 0; k < inst.num_commodities(); ++k) {
    const LbCommodity& c = inst.commodities[k];
    NodeId src = net.add_node("traffic_" + c.name(), NodeKind::kSource);
    net.set_injection_range(src, 0.0, inst.t_max, /*is_input=*/true);
    net.set_node_meta(src, "kind", "commodity");
    net.set_node_meta(src, "pair", c.name());
    lbn.commodity_nodes[k] = src;

    for (std::size_t p = 0; p < c.paths.size(); ++p) {
      const te::Path& path = c.paths[p];
      NodeId pn = net.add_node("path_" + path.name(), NodeKind::kCopy);
      net.set_node_meta(pn, "kind", "path");
      net.set_node_meta(pn, "hops", std::to_string(path.hops()));
      EdgeId de = net.add_edge(src, pn, c.name() + " via " + path.name());
      net.set_edge_meta(de, "kind", "commodity_path");
      net.set_edge_meta(de, "pair", c.name());
      net.set_edge_meta(de, "path", path.name());
      net.set_edge_meta(de, "shortest", p == 0 ? "yes" : "no");
      lbn.path_edges[k].push_back(de);
      std::vector<EdgeId> pls;
      for (te::LinkId l : path.links(inst.topo)) {
        EdgeId pe = net.add_edge(pn, link_nodes[l.v],
                                 path.name() + " on " +
                                     inst.topo.link_name(l));
        net.set_edge_meta(pe, "kind", "path_link");
        pls.push_back(pe);
      }
      lbn.path_link_edges[k].push_back(std::move(pls));
    }
    EdgeId ue = net.add_edge(src, unmet, c.name() + " unmet");
    net.set_edge_meta(ue, "kind", "unmet");
    lbn.unmet_edges[k] = ue;
  }

  net.set_objective(unmet, /*maximize=*/false);
  return lbn;
}

std::vector<double> lb_network_flows(
    const LbNetwork& lbn, const LbInstance& inst, const std::vector<double>& x,
    const std::vector<std::vector<double>>& path_flows) {
  std::vector<double> flows(lbn.net.num_edges(), 0.0);
  std::vector<double> link_total(inst.topo.num_links(), 0.0);
  for (int k = 0; k < inst.num_commodities(); ++k) {
    double routed = 0.0;
    for (std::size_t p = 0; p < lbn.path_edges[k].size(); ++p) {
      const double f = p < path_flows[k].size() ? path_flows[k][p] : 0.0;
      flows[lbn.path_edges[k][p].v] = f;
      routed += f;
      for (flowgraph::EdgeId pl : lbn.path_link_edges[k][p])
        flows[pl.v] = f;  // copy node: full path flow on every link edge
      for (te::LinkId l : inst.commodities[k].paths[p].links(inst.topo))
        link_total[l.v] += f;
    }
    flows[lbn.unmet_edges[k].v] = std::max(0.0, x[k] - routed);
  }
  for (int l = 0; l < inst.topo.num_links(); ++l)
    flows[lbn.link_edges[l].v] = link_total[l];
  return flows;
}

}  // namespace xplain::lb
