// The optimal benchmark for the load-balancing case: maximum splittable
// routing over the candidate path sets, encoded through the model layer
// (model::Model -> solver).  With the default options the encoding is a
// pure LP — splittable routing needs no integrality — and is exact; capping
// the number of active paths per commodity (hardware WCMP tables hold only
// a few next-hop groups) adds binary activation variables and turns the
// same encoding into an exact MILP solved by branch-and-bound.
#pragma once

#include <vector>

#include "lb/instance.h"
#include "solver/milp.h"

namespace xplain::lb {

struct LbOptimalOptions {
  /// Max candidate paths a commodity may use (0 = unlimited: pure LP).
  int max_paths_per_commodity = 0;
  /// Branch-and-bound knobs for the path-limited MILP variant.
  solver::MilpOptions milp;
};

struct LbOptimalResult {
  bool feasible = false;
  double total = 0.0;
  /// flow[k][p]: optimal rate of commodity k on its candidate path p.
  std::vector<std::vector<double>> flow;
};

/// Solves the optimal splittable routing at analyzer input `x` (rates plus
/// the optional capacity-skew dimension).
LbOptimalResult solve_lb_optimal(const LbInstance& inst,
                                 const std::vector<double>& x,
                                 const LbOptimalOptions& opts = {});

/// Hot-loop twin of solve_lb_optimal's default (pure-LP, unlimited paths)
/// configuration, built like te::MaxFlowSolver: the LP structure is built
/// once per instance and every solve only moves row right-hand sides
/// (demands and skewed capacities), warm-starting from a fixed
/// center-of-box reference basis.  Pure function of `x` — history cannot
/// change results, preserving parallel determinism with per-thread
/// instances (see the cache in cases/lb_case.cpp).  Not thread-safe.
class LbOptimalSolver {
 public:
  explicit LbOptimalSolver(const LbInstance& inst);

  /// Total only (the flow extraction solve_lb_optimal offers is not needed
  /// on the gap path).  Negative on solver failure (never in practice: the
  /// LP is always feasible and bounded).
  double solve_total(const std::vector<double>& x);

  /// The prebuilt LP structure (row/column counts feed the solver-scale
  /// reporting in bench_lb_wcmp — the ROADMAP's LU-factorization note
  /// tracks when instances reach thousands of rows).
  const solver::LpProblem& problem() const { return lp_; }

 private:
  LbInstance inst_;  // own copy: cache entries may outlive their builder
  solver::LpProblem lp_;
  solver::Basis reference_basis_;
  bool has_reference_ = false;
};

/// Optimal splittable total minus WCMP total, reusing a prebuilt solver
/// (the hot path behind lb_gap; see wcmp.h).
double lb_gap_cached(const LbInstance& inst, const std::vector<double>& x,
                     LbOptimalSolver& opt);

}  // namespace xplain::lb
