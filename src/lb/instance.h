// A traffic load-balancing *instance*: topology + commodities (src, dst,
// candidate paths) whose demands are split across multipath routes.  This
// is the fourth problem domain (after te/ demand pinning and vbp/ bin
// packing): the data-plane workload of WCMP/ECMP-style load balancers.
//
// The analyzer input is the vector of per-commodity traffic rates plus one
// trailing *capacity-skew* dimension: a multiplier applied to the marked
// subset of links (e.g. the core uplinks of a fat-tree).  Sweeping the skew
// is how the subspace generator localizes "WCMP breaks when the high-tier
// capacities sag below X" — a failure axis per-commodity demands alone
// cannot express.
#pragma once

#include <string>
#include <vector>

#include "te/paths.h"
#include "te/topology.h"

namespace xplain::lb {

struct LbCommodity {
  int src = -1;
  int dst = -1;
  /// Candidate paths; paths[0] is the shortest.
  std::vector<te::Path> paths;

  std::string name() const {
    return std::to_string(src + 1) + "~>" + std::to_string(dst + 1);
  }
};

struct LbInstance {
  te::Topology topo;
  std::vector<LbCommodity> commodities;
  /// Upper bound on each commodity rate (demand dims span [0, t_max]).
  double t_max = 0.0;
  /// skewed[l]: link l's capacity is multiplied by the skew input.  Empty
  /// means no link is skewed (the skew dimension is omitted entirely).
  std::vector<bool> skewed;
  /// Range of the capacity-skew input dimension.
  double skew_lo = 1.0;
  double skew_hi = 1.0;

  int num_commodities() const { return static_cast<int>(commodities.size()); }

  /// True when the instance carries a live capacity-skew input dimension.
  bool has_skew_dim() const;

  /// Analyzer input dimensionality: one rate per commodity, plus the skew
  /// dimension when present.
  int input_dim() const { return num_commodities() + (has_skew_dim() ? 1 : 0); }

  /// The skew value encoded in input `x` (1.0 when there is no skew dim).
  double skew_of(const std::vector<double>& x) const;

  /// Per-link capacities with the skew applied to the marked links.
  std::vector<double> effective_capacities(double skew) const;

  /// Builds an instance: up to `k_paths` candidate paths per commodity;
  /// commodities with no path are dropped.
  static LbInstance make(te::Topology topo,
                         const std::vector<std::pair<int, int>>& pairs,
                         int k_paths, double t_max);

  /// Marks every link whose capacity equals the topology's maximum as
  /// skewed over [skew_lo, skew_hi] — on a fat-tree that is the core
  /// uplink tier; on a uniform topology it is a global capacity scale.
  void skew_top_tier(double lo, double hi);
};

}  // namespace xplain::lb
