#include "lb/optimal.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

#include "lb/wcmp.h"
#include "model/model.h"
#include "solver/simplex.h"

namespace xplain::lb {

LbOptimalResult solve_lb_optimal(const LbInstance& inst,
                                 const std::vector<double>& x,
                                 const LbOptimalOptions& opts) {
  assert(static_cast<int>(x.size()) == inst.input_dim());
  const int K = inst.num_commodities();
  const std::vector<double> caps =
      inst.effective_capacities(inst.skew_of(x));

  model::Model m;
  // f[k][p]: rate of commodity k on candidate path p.  The per-path upper
  // bound (demand) keeps the LP's implicit box tight for the solver.
  std::vector<std::vector<model::Var>> f(K);
  std::vector<model::LinExpr> link_load(inst.topo.num_links());
  model::LinExpr total;
  for (int k = 0; k < K; ++k) {
    const auto& paths = inst.commodities[k].paths;
    const double demand = std::clamp(x[k], 0.0, inst.t_max);
    model::LinExpr routed;
    for (std::size_t p = 0; p < paths.size(); ++p) {
      model::Var v = m.add_continuous(0.0, demand);
      f[k].push_back(v);
      routed += v;
      total += v;
      for (te::LinkId l : paths[p].links(inst.topo)) link_load[l.v] += v;
    }
    m.add(routed <= model::LinExpr(demand));
  }
  for (int l = 0; l < inst.topo.num_links(); ++l)
    m.add(link_load[l] <= model::LinExpr(caps[l]));

  // Hardware-table variant: commodity k may activate at most `max_paths`
  // of its candidates.  Binary y gates each path's flow (big-M = demand),
  // making the encoding an exact MILP.
  const int max_paths = opts.max_paths_per_commodity;
  if (max_paths > 0) {
    for (int k = 0; k < K; ++k) {
      if (static_cast<int>(f[k].size()) <= max_paths) continue;
      const double demand = std::clamp(x[k], 0.0, inst.t_max);
      model::LinExpr active;
      for (model::Var v : f[k]) {
        model::Var y = m.add_binary();
        active += y;
        m.add(model::LinExpr(v) <= demand * model::LinExpr(y));
      }
      m.add(active <= model::LinExpr(static_cast<double>(max_paths)));
    }
  }

  m.set_objective(solver::Sense::kMaximize, total);

  LbOptimalResult res;
  std::vector<double> sol;
  if (m.lp().is_mip()) {
    auto s = m.solve(opts.milp);
    if (s.status != solver::Status::kOptimal) return res;
    res.total = s.obj;
    sol = std::move(s.x);
  } else {
    auto s = m.solve_lp();
    if (s.status != solver::Status::kOptimal) return res;
    res.total = s.obj;
    sol = std::move(s.x);
  }
  res.feasible = true;
  res.flow.resize(K);
  for (int k = 0; k < K; ++k) {
    res.flow[k].reserve(f[k].size());
    for (model::Var v : f[k]) res.flow[k].push_back(m.value(sol, v));
  }
  return res;
}

LbOptimalSolver::LbOptimalSolver(const LbInstance& inst) : inst_(inst) {
  // Same LP solve_lb_optimal's default configuration reaches through the
  // model layer, assembled directly: row k is commodity k's demand row,
  // row K + l is link l's capacity row; only those rhs move per sample.
  const int K = inst.num_commodities();
  lp_.sense = solver::Sense::kMaximize;
  int nflows = 0;
  for (const auto& c : inst.commodities)
    nflows += static_cast<int>(c.paths.size());
  lp_.reserve(nflows, K + inst.topo.num_links());
  std::vector<std::vector<std::pair<int, double>>> link_load(
      inst.topo.num_links());
  std::vector<std::pair<int, double>> routed;
  for (int k = 0; k < K; ++k) {
    const auto& paths = inst.commodities[k].paths;
    routed.clear();
    for (std::size_t p = 0; p < paths.size(); ++p) {
      const int v = lp_.add_col(0, solver::kInf, 1.0);
      routed.emplace_back(v, 1.0);
      for (te::LinkId l : paths[p].links(inst.topo))
        link_load[l.v].emplace_back(v, 1.0);
    }
    lp_.add_row(routed, solver::RowSense::kLe, 0.5 * inst.t_max);
  }
  const std::vector<double> center_caps = inst.effective_capacities(
      inst.has_skew_dim() ? 0.5 * (inst.skew_lo + inst.skew_hi) : 1.0);
  for (int l = 0; l < inst.topo.num_links(); ++l)
    lp_.add_row(std::move(link_load[l]), solver::RowSense::kLe,
                center_caps[l]);

  // Fixed reference basis from a cold solve at the input-box center.
  solver::SimplexOptions sopts;
  sopts.want_duals = false;
  auto ref = solver::solve_lp(lp_, sopts);
  if (ref.status == solver::Status::kOptimal && !ref.basis.empty()) {
    reference_basis_ = std::move(ref.basis);
    has_reference_ = true;
  }
}

double LbOptimalSolver::solve_total(const std::vector<double>& x) {
  const LbInstance& inst = inst_;
  assert(static_cast<int>(x.size()) == inst.input_dim());
  const int K = inst.num_commodities();
  for (int k = 0; k < K; ++k)
    lp_.set_row_rhs(k, std::clamp(x[k], 0.0, inst.t_max));
  const std::vector<double> caps =
      inst.effective_capacities(inst.skew_of(x));
  for (int l = 0; l < inst.topo.num_links(); ++l)
    lp_.set_row_rhs(K + l, std::max(0.0, caps[l]));
  solver::SimplexOptions sopts;
  sopts.want_duals = false;
  sopts.want_basis = false;
  auto s = solver::solve_lp(lp_, sopts,
                            has_reference_ ? &reference_basis_ : nullptr);
  return s.status == solver::Status::kOptimal ? s.obj : -1.0;
}

double lb_gap_cached(const LbInstance& inst, const std::vector<double>& x,
                     LbOptimalSolver& opt) {
  const double opt_total = opt.solve_total(x);
  if (opt_total < 0.0) return 0.0;
  return std::max(0.0, opt_total - wcmp_split(inst, x).total);
}

}  // namespace xplain::lb
