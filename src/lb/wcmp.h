// WCMP-style local-greedy weighted traffic splitting (the heuristic under
// study in the load-balancing case).
//
// Real WCMP switches program per-destination weights locally: each ingress
// splits its traffic across candidate paths in proportion to how much
// headroom it *currently sees*, with no coordination across ingresses.  We
// model exactly that flaw: commodities are processed in a fixed order, each
// splits its rate proportionally to the residual bottleneck capacity of its
// candidate paths, each path's share is clamped to what actually fits, and
// whatever remains is dropped.  The routing is always capacity-feasible, so
// the optimal splittable routing (lb::solve_lb_optimal) upper-bounds it and
// gap = OPT - WCMP is >= 0 everywhere — the shape the XPlain analyzers
// need.
#pragma once

#include <vector>

#include "lb/instance.h"

namespace xplain::lb {

struct WcmpResult {
  double total = 0.0;
  /// flow[k][p]: rate commodity k sends on its candidate path p.
  std::vector<std::vector<double>> flow;
  /// Aggregate load per topology link.
  std::vector<double> link_load;
  /// Rate dropped per commodity (demand that found no residual capacity).
  std::vector<double> unmet;
};

/// Runs the WCMP split on analyzer input `x` (per-commodity rates plus the
/// optional trailing capacity-skew dimension — see LbInstance).
WcmpResult wcmp_split(const LbInstance& inst, const std::vector<double>& x);

/// Optimal splittable total minus WCMP total (>= 0 up to LP tolerance).
double lb_gap(const LbInstance& inst, const std::vector<double>& x);

}  // namespace xplain::lb
