#include "lb/wcmp.h"

#include <algorithm>
#include <cassert>

#include "lb/optimal.h"

namespace xplain::lb {

namespace {

double bottleneck(const te::Topology& topo, const te::Path& path,
                  const std::vector<double>& residual) {
  double b = 1e300;
  for (te::LinkId l : path.links(topo)) b = std::min(b, residual[l.v]);
  return std::max(0.0, b);
}

}  // namespace

WcmpResult wcmp_split(const LbInstance& inst, const std::vector<double>& x) {
  assert(static_cast<int>(x.size()) == inst.input_dim());
  const int K = inst.num_commodities();
  WcmpResult res;
  res.flow.resize(K);
  res.unmet.assign(K, 0.0);
  std::vector<double> residual = inst.effective_capacities(inst.skew_of(x));

  std::vector<double> weight;
  for (int k = 0; k < K; ++k) {
    const auto& paths = inst.commodities[k].paths;
    res.flow[k].assign(paths.size(), 0.0);
    const double demand = std::max(0.0, x[k]);
    if (demand <= 0.0) continue;

    // Local view: weight each candidate path by the residual headroom of
    // its bottleneck link, as left behind by the commodities before us.
    weight.assign(paths.size(), 0.0);
    double total_weight = 0.0;
    for (std::size_t p = 0; p < paths.size(); ++p) {
      weight[p] = bottleneck(inst.topo, paths[p], residual);
      total_weight += weight[p];
    }
    if (total_weight <= 1e-12) {
      res.unmet[k] = demand;
      continue;
    }

    // One proportional pass, no recourse: the share aimed at each path is
    // clamped to what still fits at send time.  Paths sharing a link eat
    // each other's headroom — the local decision the optimal avoids.
    double routed = 0.0;
    for (std::size_t p = 0; p < paths.size(); ++p) {
      const double desired = demand * weight[p] / total_weight;
      const double fits = bottleneck(inst.topo, paths[p], residual);
      const double f = std::min(desired, fits);
      if (f <= 0.0) continue;
      res.flow[k][p] = f;
      routed += f;
      for (te::LinkId l : paths[p].links(inst.topo)) residual[l.v] -= f;
    }
    res.unmet[k] = demand - routed;
    res.total += routed;
  }

  res.link_load = inst.effective_capacities(inst.skew_of(x));
  for (std::size_t l = 0; l < res.link_load.size(); ++l)
    res.link_load[l] -= residual[l];
  return res;
}

double lb_gap(const LbInstance& inst, const std::vector<double>& x) {
  const WcmpResult heur = wcmp_split(inst, x);
  const LbOptimalResult opt = solve_lb_optimal(inst, x);
  if (!opt.feasible) return 0.0;
  return std::max(0.0, opt.total - heur.total);
}

}  // namespace xplain::lb
