#include "lb/instance.h"

#include <algorithm>
#include <cassert>

namespace xplain::lb {

bool LbInstance::has_skew_dim() const {
  if (skew_hi <= skew_lo) return false;
  for (bool s : skewed)
    if (s) return true;
  return false;
}

double LbInstance::skew_of(const std::vector<double>& x) const {
  if (!has_skew_dim()) return 1.0;
  assert(static_cast<int>(x.size()) == input_dim());
  return x[num_commodities()];
}

std::vector<double> LbInstance::effective_capacities(double skew) const {
  std::vector<double> caps(topo.num_links());
  for (int l = 0; l < topo.num_links(); ++l) {
    const double base = topo.link(te::LinkId{l}).capacity;
    const bool apply = l < static_cast<int>(skewed.size()) && skewed[l];
    caps[l] = apply ? base * skew : base;
  }
  return caps;
}

LbInstance LbInstance::make(te::Topology topo,
                            const std::vector<std::pair<int, int>>& pairs,
                            int k_paths, double t_max) {
  LbInstance inst;
  inst.t_max = t_max;
  for (const auto& [src, dst] : pairs) {
    LbCommodity c;
    c.src = src;
    c.dst = dst;
    c.paths = te::k_shortest_paths(topo, src, dst, k_paths);
    if (c.paths.empty()) continue;
    inst.commodities.push_back(std::move(c));
  }
  inst.topo = std::move(topo);
  return inst;
}

void LbInstance::skew_top_tier(double lo, double hi) {
  double max_cap = 0.0;
  for (const auto& l : topo.links()) max_cap = std::max(max_cap, l.capacity);
  skewed.assign(topo.num_links(), false);
  for (int l = 0; l < topo.num_links(); ++l)
    if (topo.link(te::LinkId{l}).capacity >= max_cap - 1e-12) skewed[l] = true;
  skew_lo = lo;
  skew_hi = hi;
}

}  // namespace xplain::lb
