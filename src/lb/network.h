// DSL face of the load-balancing case: the flow network Type-2 heatmaps
// are rendered on.  Same construction family as the DP Fig. 4a network —
// commodity sources (analyzer inputs) -> per-candidate-path copy nodes ->
// per-link split nodes capped into a "met" sink, plus an "unmet" spill edge
// per commodity — so heatmaps from all four cases read the same way:
// intense blue where only the optimal routes, intense red where only WCMP
// does.
#pragma once

#include <vector>

#include "flowgraph/network.h"
#include "lb/instance.h"
#include "lb/wcmp.h"

namespace xplain::lb {

/// Handles into the LB network so oracle- and explanation-code can find its
/// pieces without string lookups.
struct LbNetwork {
  flowgraph::FlowNetwork net;
  std::vector<flowgraph::NodeId> commodity_nodes;  // per commodity
  std::vector<flowgraph::EdgeId> unmet_edges;      // per commodity
  /// path_edges[k][p]: commodity k -> path-node edge for candidate path p.
  std::vector<std::vector<flowgraph::EdgeId>> path_edges;
  /// path_link_edges[k][p]: the path-node -> link-node edges of that path.
  std::vector<std::vector<std::vector<flowgraph::EdgeId>>> path_link_edges;
  std::vector<flowgraph::EdgeId> link_edges;       // per topology link
};

/// Builds the LB network.  Link-capacity edges carry the *base* (skew = 1)
/// capacities; the capacity-skew input only exists in the evaluator/oracle,
/// which compute flows against the skewed capacities.
LbNetwork build_lb_network(const LbInstance& inst);

/// Maps per-(commodity, path) flows (from wcmp_split or solve_lb_optimal)
/// onto the LB network's edges.  Returns one flow value per EdgeId.
std::vector<double> lb_network_flows(
    const LbNetwork& lbn, const LbInstance& inst, const std::vector<double>& x,
    const std::vector<std::vector<double>>& path_flows);

}  // namespace xplain::lb
