// The experiment engine — the system's front door (ISSUE 4 / api_redesign).
//
// The paper's pipeline explains one (heuristic, benchmark, instance) study
// at a time; the ROADMAP north-star sweeps *many* scenarios per heuristic.
// xplain::ExperimentSpec describes such a sweep declaratively — case names
// x a ScenarioSpec grid x PipelineOptions x a seed — and xplain::Engine
// turns it into results:
//
//   * expand() multiplies the grid into (case, scenario) jobs in a fixed
//     order (cases outer, scenarios inner; an empty grid yields one
//     default-instance job per case);
//   * run() shards the jobs across a worker pool with the repo's
//     slot-determinism contract (util/parallel.h): every job's options are
//     a pure function of (spec, job index), results land in slot-indexed
//     storage, so the output is bitwise identical for ANY worker count /
//     XPLAIN_WORKERS setting;
//   * each finished job streams through an optional callback (serialized
//     under a mutex; completion ORDER depends on scheduling, job CONTENT
//     does not);
//   * the batch is piped into generalize::generalize_batch automatically —
//     Type-3 trends fall out of every multi-instance experiment without a
//     bespoke per-domain CaseFactory adapter.
//
// ExperimentResult keeps the full per-job PipelineResults and carries a
// JSON serialization (ExperimentSummary / to_json / from_json, built on
// util::Json) — the single machine-readable output format the benches emit
// through tools/bench_json.
//
// The engine lives above generalize/ and drives cases through the
// CaseRegistry only — never through a concrete case include — so it stays
// as heuristic-agnostic as the core pipeline (tools/lint/xplain_lint.py).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "generalize/generalizer.h"
#include "scenario/spec.h"
#include "util/json.h"
#include "xplain/case.h"
#include "xplain/pipeline.h"

namespace xplain {

/// A declarative experiment: which cases, over which scenarios, with which
/// pipeline knobs.  Everything downstream is a pure function of this.
struct ExperimentSpec {
  /// CaseRegistry keys, e.g. {"demand_pinning", "wcmp"}.
  std::vector<std::string> cases;
  /// Scenario grid; empty runs each case once on its default instance.
  std::vector<scenario::ScenarioSpec> scenarios;
  /// Per-job pipeline configuration (seeds are re-derived per job).
  PipelineOptions options;
  /// Optional third grid axis (the ROADMAP's "pipeline-option sweeps"):
  /// when non-empty the grid is cases x scenarios x these variants —
  /// variants INNERMOST, so a job's variant is index % option_variants.size()
  /// and derived_job_options stays a pure function of (spec, index) — and
  /// `options` above is ignored.  Each variant's fingerprint() already
  /// disambiguates result-cache keys.  This is how ablation sweeps (sample
  /// budgets, significance thresholds, analyzer on/off) and the fuzzer's
  /// cheap-probe-then-deep-run split ride one Engine grid.
  std::vector<PipelineOptions> option_variants;
  /// Experiment-level seed, folded into every job's RNG streams: two
  /// experiments differing only in seed are decorrelated replications.
  std::uint64_t seed = 0;
  /// On (default): every job's RNG streams derive from (seed, job index),
  /// decorrelating grid cells.  Off: every job runs with `options`' seeds
  /// verbatim — a single-job experiment then reproduces a bare
  /// run_pipeline(case, options) call bit for bit (grids become seed-
  /// correlated; leave on for real sweeps).
  bool reseed_jobs = true;
  /// Worker threads; <= 0 resolves via util::resolve_workers (one per
  /// hardware thread unless XPLAIN_WORKERS overrides).
  int workers = 0;
  /// Mine Type-3 trends across the finished jobs (generalize_batch).
  bool run_generalizer = true;
  generalize::GrammarOptions grammar;
  /// Normalize per-job gaps by the case's gap_scale() before mining.
  bool normalize_gap = true;
};

/// One cell of the expanded grid.
struct ExperimentJob {
  std::string case_name;
  /// Empty: the case's registry default instance.
  std::optional<scenario::ScenarioSpec> scenario;
  /// Position in the expanded grid (drives the job's derived seeds).
  int index = 0;
  /// Position in spec.option_variants; -1 when the spec's single `options`
  /// value applies (no option axis).
  int option_index = -1;

  /// "wcmp@fat_tree_k4_s1" / "demand_pinning@default".  Uses the spec's
  /// display_name(), which appends capacity / Waxman suffixes when they
  /// differ from the defaults — grid cells that differ only in those
  /// fields keep distinct labels (e.g. "...@line_n2_s1_c35").  Option-axis
  /// cells get a "#o<variant>" suffix for the same reason.
  std::string label() const {
    std::string l =
        case_name + "@" + (scenario ? scenario->display_name() : "default");
    if (option_index >= 0) l += "#o" + std::to_string(option_index);
    return l;
  }
};

struct JobResult {
  ExperimentJob job;
  /// False when the case is unknown or cannot build from the scenario
  /// (default-only registration); `error` says which.
  bool ok = false;
  std::string error;
  PipelineResult pipeline;
  /// The seed salt this job's RNG streams derived from (spec.seed mixed
  /// with the grid index when reseed_jobs is on; spec.options.seed_salt
  /// verbatim otherwise) — see derived_job_options.
  std::uint64_t seed = 0;
  /// fingerprint() of the job's fully-derived PipelineOptions: together
  /// with (case, scenario.cache_key()) this content-addresses the job —
  /// the server's result cache keys on exactly this triple.
  std::string options_fingerprint;
};

/// The JSON-serializable digest of one job — exactly what to_json writes.
struct JobSummary {
  std::string case_name;
  std::string scenario;  // "" = default instance
  int index = 0;
  bool ok = false;
  std::string error;
  int subspaces = 0;
  int significant = 0;
  double best_gap_found = 0.0;
  double max_seed_gap = 0.0;
  double gap_scale = 1.0;
  double wall_seconds = 0.0;
  /// Exact even under concurrent workers: solver::lp_counters is
  /// thread-inclusive, so each job's delta counts precisely the LP work its
  /// worker (and any pools it joined) performed.
  long lp_solves = 0;
  long lp_iterations = 0;
  long lp_columns_priced = 0;
  long lp_candidate_refills = 0;
  std::map<std::string, double> features;
  /// Replication provenance (JobResult::seed / ::options_fingerprint).
  /// `seed` serializes as a decimal STRING: derived salts use all 64 bits
  /// and a JSON number (double) would corrupt values above 2^53.
  std::uint64_t seed = 0;
  std::string options_fingerprint;

  bool operator==(const JobSummary& o) const;

  /// One job as a JSON value / parsed back (std::nullopt on malformed
  /// input).  ExperimentSummary::to_json/from_json are built on these; the
  /// server's result cache serializes cached jobs through the same pair so
  /// repeat queries are bitwise identical to the original emission.
  util::Json to_json_value() const;
  static std::optional<JobSummary> from_json_value(const util::Json& v);
};

struct TrendSummary {
  std::string predicate;  // "increasing(pinned_sp_hops)"
  std::string feature;
  bool increasing = true;
  double rho = 0.0;
  double p_value = 1.0;
  int support = 0;

  bool operator==(const TrendSummary& o) const;
};

/// The machine-readable face of an ExperimentResult: round-trips through
/// JSON bit-exactly (doubles are printed with max_digits10).
struct ExperimentSummary {
  std::vector<JobSummary> jobs;
  std::vector<TrendSummary> trends;
  int observations = 0;  // instances the generalizer mined over
  double wall_seconds = 0.0;
  long lp_solves = 0;
  long lp_iterations = 0;
  long lp_columns_priced = 0;
  long lp_candidate_refills = 0;

  bool operator==(const ExperimentSummary& o) const;

  std::string to_json(int indent = 2) const;
  /// std::nullopt on malformed input.
  static std::optional<ExperimentSummary> from_json(const std::string& text);
};

struct ExperimentResult {
  /// Grid order (== Engine::expand order), regardless of scheduling.
  std::vector<JobResult> jobs;
  /// Type-3 output over the ok jobs (empty when run_generalizer is off).
  generalize::GeneralizerResult trends;
  /// Merged accounting; lp counters are exact experiment-level snapshots.
  subspace::GenerationTrace trace;
  StageTimes stages;
  double wall_seconds = 0.0;
  /// Scenario-parameterized case constructions this run performed: one per
  /// UNIQUE (case, scenario.cache_key()) pair, not per job — a 10-seed
  /// replication grid builds each instance once (bench_service measures
  /// this).  Not serialized: it is an execution statistic, not a result.
  int case_builds = 0;

  int total_subspaces() const;
  ExperimentSummary summary() const;
  std::string to_json(int indent = 2) const { return summary().to_json(indent); }
};

class Engine {
 public:
  /// The engine resolves case names against `reg` (default: the process
  /// registry the built-in cases self-register into).
  explicit Engine(CaseRegistry& reg = registry()) : registry_(&reg) {}

  /// Invoked as each job finishes (serialized; nondeterministic order,
  /// deterministic content).
  using JobCallback = std::function<void(const JobResult&)>;

  /// The (case x scenario x option-variant) grid in its canonical order:
  /// cases outer, scenarios inner, option variants innermost.
  std::vector<ExperimentJob> expand(const ExperimentSpec& spec) const;

  /// Runs the experiment.  Bitwise-deterministic for any worker count.
  ExperimentResult run(const ExperimentSpec& spec,
                       const JobCallback& on_job = {}) const;

 private:
  CaseRegistry* registry_;
};

/// The per-job options derivation Engine::run uses, exposed so other
/// drivers (the xplain::Service worker pool) reproduce a grid job bit for
/// bit: a pure function of (spec, index).  `seed_out`, when non-null,
/// receives the salt the streams derived from (== JobResult::seed).
PipelineOptions derived_job_options(const ExperimentSpec& spec, int index,
                                    std::uint64_t* seed_out = nullptr);

/// The JobResult -> JobSummary digest ExperimentResult::summary() applies
/// per job, exposed for drivers that stream summaries job by job.
JobSummary make_job_summary(const JobResult& r);

/// The GeneralizerResult -> TrendSummary digest summary() applies, exposed
/// for drivers that mine trends themselves (the server's Service::wait).
std::vector<TrendSummary> make_trend_summaries(
    const generalize::GeneralizerResult& g);

}  // namespace xplain
