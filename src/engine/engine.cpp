#include "engine/engine.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>

#include "generalize/grammar.h"
#include "solver/lp.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/random.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace xplain {

namespace {

/// Serializes the user's JobCallback across pool workers.  A named class
/// (not a lambda-captured local mutex) so clang's thread-safety analysis
/// sees the callback/mutex pairing: user callbacks are not required to be
/// re-entrant, and the annotation machine-checks that every invocation
/// goes through emit().  Completion ORDER still depends on scheduling;
/// job CONTENT does not (slot determinism).
class CallbackStream {
 public:
  explicit CallbackStream(const Engine::JobCallback& cb)
      : has_cb_(static_cast<bool>(cb)), cb_(cb) {}

  void emit(const JobResult& jr) XPLAIN_EXCLUDES(mu_) {
    util::MutexLock lock(&mu_);
    cb_(jr);
  }

  explicit operator bool() const { return has_cb_; }

 private:
  const bool has_cb_;  // immutable after construction: safe to read unlocked
  util::Mutex mu_;
  /// The callback itself is immutable; mu_ guards its *invocation* — what
  /// GUARDED_BY expresses here is "calls are mutually excluded".
  const Engine::JobCallback& cb_ XPLAIN_GUARDED_BY(mu_);
};

int count_significant(const PipelineResult& r) {
  int n = 0;
  for (const auto& s : r.subspaces) n += s.significant;
  return n;
}

}  // namespace

PipelineOptions derived_job_options(const ExperimentSpec& spec, int index,
                                    std::uint64_t* seed_out) {
  // Every job's RNG streams derive purely from (spec seed, base options,
  // grid index): decorrelated across jobs and experiments, identical for
  // any worker count.  With an option axis the variant is recovered from
  // the index alone (variants are the innermost expand() loop), keeping
  // this a pure function of (spec, index) — the contract the server's
  // worker pool replays jobs through.
  const std::size_t n_variants = spec.option_variants.size();
  const PipelineOptions& base =
      n_variants == 0
          ? spec.options
          : spec.option_variants[static_cast<std::size_t>(index) % n_variants];
  if (!spec.reseed_jobs) {
    if (seed_out) *seed_out = base.seed_salt;
    return base;
  }
  const std::uint64_t salt = util::Rng::derive_seed(spec.seed, index + 1);
  if (seed_out) *seed_out = salt;
  return apply_seed_salt(base, salt);
}

bool JobSummary::operator==(const JobSummary& o) const {
  return case_name == o.case_name && scenario == o.scenario &&
         index == o.index && ok == o.ok && error == o.error &&
         subspaces == o.subspaces && significant == o.significant &&
         best_gap_found == o.best_gap_found &&
         max_seed_gap == o.max_seed_gap && gap_scale == o.gap_scale &&
         wall_seconds == o.wall_seconds && lp_solves == o.lp_solves &&
         lp_iterations == o.lp_iterations &&
         lp_columns_priced == o.lp_columns_priced &&
         lp_candidate_refills == o.lp_candidate_refills &&
         features == o.features && seed == o.seed &&
         options_fingerprint == o.options_fingerprint;
}

bool TrendSummary::operator==(const TrendSummary& o) const {
  return predicate == o.predicate && feature == o.feature &&
         increasing == o.increasing && rho == o.rho &&
         p_value == o.p_value && support == o.support;
}

bool ExperimentSummary::operator==(const ExperimentSummary& o) const {
  return jobs == o.jobs && trends == o.trends &&
         observations == o.observations && wall_seconds == o.wall_seconds &&
         lp_solves == o.lp_solves && lp_iterations == o.lp_iterations &&
         lp_columns_priced == o.lp_columns_priced &&
         lp_candidate_refills == o.lp_candidate_refills;
}

util::Json JobSummary::to_json_value() const {
  util::Json jj = util::Json::object();
  jj.set("case", case_name);
  jj.set("scenario", scenario.empty() ? util::Json() : util::Json(scenario));
  jj.set("index", index);
  jj.set("ok", ok);
  if (!error.empty()) jj.set("error", error);
  jj.set("subspaces", subspaces);
  jj.set("significant", significant);
  jj.set("best_gap_found", best_gap_found);
  jj.set("max_seed_gap", max_seed_gap);
  jj.set("gap_scale", gap_scale);
  jj.set("wall_seconds", wall_seconds);
  jj.set("lp_solves", lp_solves);
  jj.set("lp_iterations", lp_iterations);
  jj.set("lp_columns_priced", lp_columns_priced);
  jj.set("lp_candidate_refills", lp_candidate_refills);
  // All 64 bits of the salt survive only as a string (doubles clip at
  // 2^53); from_json_value parses it back with strtoull.
  jj.set("seed", std::to_string(seed));
  jj.set("options_fingerprint", options_fingerprint);
  util::Json feats = util::Json::object();
  for (const auto& [k, v] : features) feats.set(k, v);
  jj.set("features", std::move(feats));
  return jj;
}

std::optional<JobSummary> JobSummary::from_json_value(const util::Json& jj) {
  if (jj.kind() != util::Json::Kind::kObject) return std::nullopt;
  const auto num = [&](const char* key) {
    const util::Json* v = jj.find(key);
    return v ? v->as_num() : 0.0;
  };
  const auto str = [&](const char* key) {
    const util::Json* v = jj.find(key);
    return v ? v->as_str() : std::string();
  };
  JobSummary j;
  j.case_name = str("case");
  j.scenario = str("scenario");  // null -> "" (the default instance)
  j.index = static_cast<int>(num("index"));
  const util::Json* ok = jj.find("ok");
  j.ok = ok && ok->as_bool();
  j.error = str("error");
  j.subspaces = static_cast<int>(num("subspaces"));
  j.significant = static_cast<int>(num("significant"));
  j.best_gap_found = num("best_gap_found");
  j.max_seed_gap = num("max_seed_gap");
  j.gap_scale = num("gap_scale");
  j.wall_seconds = num("wall_seconds");
  j.lp_solves = static_cast<long>(num("lp_solves"));
  j.lp_iterations = static_cast<long>(num("lp_iterations"));
  j.lp_columns_priced = static_cast<long>(num("lp_columns_priced"));
  j.lp_candidate_refills = static_cast<long>(num("lp_candidate_refills"));
  const std::string seed_str = str("seed");
  if (!seed_str.empty()) {
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(seed_str.c_str(), &end, 10);
    if (errno != 0 || end == seed_str.c_str() || *end != '\0')
      return std::nullopt;
    j.seed = static_cast<std::uint64_t>(v);
  }
  j.options_fingerprint = str("options_fingerprint");
  if (const util::Json* feats = jj.find("features"))
    for (const auto& [k, v] : feats->members()) j.features[k] = v.as_num();
  return j;
}

std::string ExperimentSummary::to_json(int indent) const {
  util::Json root = util::Json::object();
  util::Json job_arr = util::Json::array();
  for (const auto& j : jobs) job_arr.push(j.to_json_value());
  root.set("jobs", std::move(job_arr));

  util::Json trend_arr = util::Json::array();
  for (const auto& t : trends) {
    util::Json tj = util::Json::object();
    tj.set("predicate", t.predicate);
    tj.set("feature", t.feature);
    tj.set("trend", t.increasing ? "increasing" : "decreasing");
    tj.set("rho", t.rho);
    tj.set("p_value", t.p_value);
    tj.set("support", t.support);
    trend_arr.push(std::move(tj));
  }
  root.set("trends", std::move(trend_arr));
  root.set("observations", observations);
  root.set("wall_seconds", wall_seconds);
  root.set("lp_solves", lp_solves);
  root.set("lp_iterations", lp_iterations);
  root.set("lp_columns_priced", lp_columns_priced);
  root.set("lp_candidate_refills", lp_candidate_refills);
  return root.dump(indent);
}

std::optional<ExperimentSummary> ExperimentSummary::from_json(
    const std::string& text) {
  const auto parsed = util::Json::parse(text);
  if (!parsed || parsed->kind() != util::Json::Kind::kObject)
    return std::nullopt;
  const util::Json* jobs = parsed->find("jobs");
  const util::Json* trends = parsed->find("trends");
  if (!jobs || jobs->kind() != util::Json::Kind::kArray || !trends ||
      trends->kind() != util::Json::Kind::kArray)
    return std::nullopt;

  const auto num = [](const util::Json& obj, const char* key) {
    const util::Json* v = obj.find(key);
    return v ? v->as_num() : 0.0;
  };
  const auto str = [](const util::Json& obj, const char* key) {
    const util::Json* v = obj.find(key);
    return v ? v->as_str() : std::string();
  };

  ExperimentSummary out;
  for (const auto& jj : jobs->items()) {
    std::optional<JobSummary> j = JobSummary::from_json_value(jj);
    if (!j) return std::nullopt;
    out.jobs.push_back(std::move(*j));
  }
  for (const auto& tj : trends->items()) {
    if (tj.kind() != util::Json::Kind::kObject) return std::nullopt;
    TrendSummary t;
    t.predicate = str(tj, "predicate");
    t.feature = str(tj, "feature");
    t.increasing = str(tj, "trend") != "decreasing";
    t.rho = num(tj, "rho");
    t.p_value = num(tj, "p_value");
    t.support = static_cast<int>(num(tj, "support"));
    out.trends.push_back(std::move(t));
  }
  out.observations = static_cast<int>(num(*parsed, "observations"));
  out.wall_seconds = num(*parsed, "wall_seconds");
  out.lp_solves = static_cast<long>(num(*parsed, "lp_solves"));
  out.lp_iterations = static_cast<long>(num(*parsed, "lp_iterations"));
  out.lp_columns_priced =
      static_cast<long>(num(*parsed, "lp_columns_priced"));
  out.lp_candidate_refills =
      static_cast<long>(num(*parsed, "lp_candidate_refills"));
  return out;
}

int ExperimentResult::total_subspaces() const {
  int n = 0;
  for (const auto& j : jobs) n += static_cast<int>(j.pipeline.subspaces.size());
  return n;
}

JobSummary make_job_summary(const JobResult& j) {
  JobSummary s;
  s.case_name = j.job.case_name;
  s.scenario = j.job.scenario ? j.job.scenario->display_name() : std::string();
  s.index = j.job.index;
  s.ok = j.ok;
  s.error = j.error;
  s.subspaces = static_cast<int>(j.pipeline.subspaces.size());
  s.significant = count_significant(j.pipeline);
  s.best_gap_found = j.pipeline.best_gap_found;
  s.max_seed_gap = j.pipeline.max_gap();
  s.gap_scale = j.pipeline.gap_scale;
  s.wall_seconds = j.pipeline.wall_seconds;
  s.lp_solves = j.pipeline.stages.lp_solves;
  s.lp_iterations = j.pipeline.stages.lp_iterations;
  s.lp_columns_priced = j.pipeline.stages.lp_columns_priced;
  s.lp_candidate_refills = j.pipeline.stages.lp_candidate_refills;
  s.features = j.pipeline.features;
  s.seed = j.seed;
  s.options_fingerprint = j.options_fingerprint;
  return s;
}

std::vector<TrendSummary> make_trend_summaries(
    const generalize::GeneralizerResult& g) {
  std::vector<TrendSummary> out;
  out.reserve(g.predicates.size());
  for (const auto& p : g.predicates) {
    TrendSummary t;
    t.predicate = p.to_string();
    t.feature = p.feature;
    t.increasing = p.trend == generalize::Trend::kIncreasing;
    t.rho = p.rho;
    t.p_value = p.p_value;
    t.support = p.support;
    out.push_back(std::move(t));
  }
  return out;
}

ExperimentSummary ExperimentResult::summary() const {
  ExperimentSummary out;
  out.jobs.reserve(jobs.size());
  for (const auto& j : jobs) out.jobs.push_back(make_job_summary(j));
  out.trends = make_trend_summaries(trends);
  out.observations = static_cast<int>(trends.observations.size());
  out.wall_seconds = wall_seconds;
  out.lp_solves = stages.lp_solves;
  out.lp_iterations = stages.lp_iterations;
  out.lp_columns_priced = stages.lp_columns_priced;
  out.lp_candidate_refills = stages.lp_candidate_refills;
  return out;
}

std::vector<ExperimentJob> Engine::expand(const ExperimentSpec& spec) const {
  // Variants are the INNERMOST axis so derived_job_options can recover the
  // variant as index % n_variants without seeing the job list.
  const int n_variants =
      std::max(1, static_cast<int>(spec.option_variants.size()));
  const bool has_variants = !spec.option_variants.empty();
  std::vector<ExperimentJob> jobs;
  jobs.reserve(spec.cases.size() *
               std::max<std::size_t>(1, spec.scenarios.size()) *
               static_cast<std::size_t>(n_variants));
  const auto push_cell = [&](const std::string& name,
                             const scenario::ScenarioSpec* scen) {
    for (int v = 0; v < n_variants; ++v) {
      ExperimentJob job;
      job.case_name = name;
      if (scen) job.scenario = *scen;
      job.index = static_cast<int>(jobs.size());
      if (has_variants) job.option_index = v;
      jobs.push_back(std::move(job));
    }
  };
  for (const auto& name : spec.cases) {
    if (spec.scenarios.empty()) {
      push_cell(name, nullptr);
      continue;
    }
    for (const auto& scen : spec.scenarios) push_cell(name, &scen);
  }
  return jobs;
}

ExperimentResult Engine::run(const ExperimentSpec& spec,
                             const JobCallback& on_job) const {
  util::Timer timer;
  const solver::LpCounters lp0 = solver::lp_counters();
  ExperimentResult out;

  const std::vector<ExperimentJob> jobs = expand(spec);
  out.jobs.resize(jobs.size());

  const int workers =
      std::max(1, std::min<int>(util::resolve_workers(spec.workers),
                                static_cast<int>(jobs.size())));
  CallbackStream stream(on_job);

  // Hoist scenario builds: a replication grid lists the same scenario cell
  // many times (the spec's seed decorrelates the jobs, not the instance),
  // and building the instance per JOB repeats identical topology/demand
  // construction.  Build each UNIQUE (case, scenario.cache_key()) pair
  // once, share it across its jobs, and drop it when its last job retires
  // (refcount below) so peak memory stays one instance per distinct cell.
  // Built fresh (create, not the registry's keyed cache): caching every
  // cell in the registry would retain it for the process lifetime.
  // Default jobs keep going through the registry's one-per-name default.
  struct HoistedCase {
    const std::string* name = nullptr;
    const scenario::ScenarioSpec* scen = nullptr;
    std::shared_ptr<const HeuristicCase> c;
    std::string error;
    std::atomic<int> remaining{0};
  };
  std::map<std::pair<std::string, std::string>, HoistedCase> built;
  std::vector<HoistedCase*> job_case(jobs.size(), nullptr);
  std::vector<HoistedCase*> build_list;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!jobs[i].scenario) continue;
    auto [it, fresh] = built.try_emplace(
        {jobs[i].case_name, jobs[i].scenario->cache_key()});
    if (fresh) {
      it->second.name = &jobs[i].case_name;
      it->second.scen = &*jobs[i].scenario;
      build_list.push_back(&it->second);
    }
    it->second.remaining.fetch_add(1, std::memory_order_relaxed);
    job_case[i] = &it->second;
  }
  out.case_builds = static_cast<int>(build_list.size());
  if (!build_list.empty()) {
    util::parallel_chunks(
        build_list.size(),
        std::min<int>(workers, static_cast<int>(build_list.size())),
        [&](std::size_t begin, std::size_t end, int) {
          for (std::size_t i = begin; i < end; ++i) {
            HoistedCase& h = *build_list[i];
            h.c = registry_->create(*h.name, *h.scen);
            if (!h.c) {
              h.error = registry_->contains(*h.name)
                            ? "case cannot build from a scenario "
                              "(default-only registration)"
                            : "unknown case";
            }
          }
        });
  }

  // Slot-determinism (util/parallel.h): each job's result lands in its grid
  // slot and depends only on (registry content, spec, index) — scheduling
  // changes wall clock and callback order, never content.  out.jobs is the
  // slot store: resized before the pool starts, each slot written by exactly
  // one worker, read by others only after the parallel_chunks join — no
  // mutex, by design (annotating it GUARDED_BY would claim a lock that
  // deliberately does not exist; TSan checks this handoff instead).
  util::parallel_chunks(
      jobs.size(), workers, [&](std::size_t begin, std::size_t end, int) {
        for (std::size_t i = begin; i < end; ++i) {
          JobResult jr;
          jr.job = jobs[i];
          HoistedCase* h = job_case[i];
          // Copying the shared_ptr is safe against the release below: every
          // job copies before decrementing, so the last decrement — the
          // only reset — happens after all copies.
          std::shared_ptr<const HeuristicCase> c =
              h ? h->c : registry_->find(jr.job.case_name);
          if (!c) {
            jr.error = h ? h->error
                         : (registry_->contains(jr.job.case_name)
                                ? "case cannot build from a scenario "
                                  "(default-only registration)"
                                : "unknown case");
          } else {
            std::uint64_t seed = 0;
            PipelineOptions o = derived_job_options(spec, jr.job.index, &seed);
            jr.seed = seed;
            jr.options_fingerprint = o.fingerprint();
            // The grid already fans out across jobs; an "auto" explain pool
            // inside every concurrent pipeline would oversubscribe the
            // machine workers-fold.  An explicit positive count is
            // respected.
            if (workers > 1 && o.explain.workers <= 0) o.explain.workers = 1;
            jr.pipeline = run_pipeline(*c, o);
            jr.ok = true;
          }
          c.reset();
          if (h && h->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
            h->c.reset();  // last job out drops the hoisted instance
          out.jobs[i] = std::move(jr);
          if (stream) stream.emit(out.jobs[i]);
        }
      });

  for (const auto& j : out.jobs) {
    out.trace += j.pipeline.trace;
    out.stages += j.pipeline.stages;
  }
  // Thread-inclusive counters (lp.h): per-job deltas are exact, and this
  // experiment-level snapshot is too — the pool joined above, flushing
  // every worker's counts.
  const solver::LpCounters lp1 = solver::lp_counters();
  out.stages.lp_solves = lp1.solves - lp0.solves;
  out.stages.lp_iterations = lp1.iterations - lp0.iterations;
  out.stages.lp_columns_priced = lp1.columns_priced - lp0.columns_priced;
  out.stages.lp_candidate_refills =
      lp1.candidate_refills - lp0.candidate_refills;

  if (spec.run_generalizer) {
    // generalize_batch only reads (features, best gap, gap_scale); strip
    // each job down to those instead of deep-copying subspaces and
    // per-edge explanation heatmaps.  max_gap() is folded into
    // best_gap_found, which generalize_batch maxes with it anyway.
    std::vector<PipelineResult> ok_results;
    ok_results.reserve(out.jobs.size());
    for (const auto& j : out.jobs) {
      if (!j.ok) continue;
      PipelineResult slim;
      slim.features = j.pipeline.features;
      slim.gap_scale = j.pipeline.gap_scale;
      slim.best_gap_found =
          std::max(j.pipeline.max_gap(), j.pipeline.best_gap_found);
      ok_results.push_back(std::move(slim));
    }
    out.trends = generalize::generalize_batch(ok_results, spec.grammar,
                                              spec.normalize_gap);
  }

  out.wall_seconds = timer.seconds();
  XPLAIN_INFO << "engine: " << jobs.size() << " jobs ("
              << spec.cases.size() << " cases x "
              << std::max<std::size_t>(1, spec.scenarios.size())
              << " scenarios), " << out.total_subspaces() << " subspaces, "
              << out.trends.predicates.size() << " trends, " << workers
              << " workers, " << out.wall_seconds << "s";
  return out;
}

}  // namespace xplain
