#include "engine/engine.h"

#include <algorithm>

#include "generalize/grammar.h"
#include "solver/lp.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/random.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace xplain {

namespace {

/// Every job's RNG streams derive purely from (spec seed, base options,
/// grid index): decorrelated across jobs and experiments, identical for
/// any worker count.
PipelineOptions job_options(const ExperimentSpec& spec, int index) {
  if (!spec.reseed_jobs) return spec.options;
  return apply_seed_salt(spec.options,
                         util::Rng::derive_seed(spec.seed, index + 1));
}

/// Serializes the user's JobCallback across pool workers.  A named class
/// (not a lambda-captured local mutex) so clang's thread-safety analysis
/// sees the callback/mutex pairing: user callbacks are not required to be
/// re-entrant, and the annotation machine-checks that every invocation
/// goes through emit().  Completion ORDER still depends on scheduling;
/// job CONTENT does not (slot determinism).
class CallbackStream {
 public:
  explicit CallbackStream(const Engine::JobCallback& cb)
      : has_cb_(static_cast<bool>(cb)), cb_(cb) {}

  void emit(const JobResult& jr) XPLAIN_EXCLUDES(mu_) {
    util::MutexLock lock(&mu_);
    cb_(jr);
  }

  explicit operator bool() const { return has_cb_; }

 private:
  const bool has_cb_;  // immutable after construction: safe to read unlocked
  util::Mutex mu_;
  /// The callback itself is immutable; mu_ guards its *invocation* — what
  /// GUARDED_BY expresses here is "calls are mutually excluded".
  const Engine::JobCallback& cb_ XPLAIN_GUARDED_BY(mu_);
};

int count_significant(const PipelineResult& r) {
  int n = 0;
  for (const auto& s : r.subspaces) n += s.significant;
  return n;
}

}  // namespace

bool JobSummary::operator==(const JobSummary& o) const {
  return case_name == o.case_name && scenario == o.scenario &&
         index == o.index && ok == o.ok && error == o.error &&
         subspaces == o.subspaces && significant == o.significant &&
         best_gap_found == o.best_gap_found &&
         max_seed_gap == o.max_seed_gap && gap_scale == o.gap_scale &&
         wall_seconds == o.wall_seconds && lp_solves == o.lp_solves &&
         lp_iterations == o.lp_iterations &&
         lp_columns_priced == o.lp_columns_priced &&
         lp_candidate_refills == o.lp_candidate_refills &&
         features == o.features;
}

bool TrendSummary::operator==(const TrendSummary& o) const {
  return predicate == o.predicate && feature == o.feature &&
         increasing == o.increasing && rho == o.rho &&
         p_value == o.p_value && support == o.support;
}

bool ExperimentSummary::operator==(const ExperimentSummary& o) const {
  return jobs == o.jobs && trends == o.trends &&
         observations == o.observations && wall_seconds == o.wall_seconds &&
         lp_solves == o.lp_solves && lp_iterations == o.lp_iterations &&
         lp_columns_priced == o.lp_columns_priced &&
         lp_candidate_refills == o.lp_candidate_refills;
}

std::string ExperimentSummary::to_json(int indent) const {
  util::Json root = util::Json::object();
  util::Json job_arr = util::Json::array();
  for (const auto& j : jobs) {
    util::Json jj = util::Json::object();
    jj.set("case", j.case_name);
    jj.set("scenario", j.scenario.empty() ? util::Json() : util::Json(j.scenario));
    jj.set("index", j.index);
    jj.set("ok", j.ok);
    if (!j.error.empty()) jj.set("error", j.error);
    jj.set("subspaces", j.subspaces);
    jj.set("significant", j.significant);
    jj.set("best_gap_found", j.best_gap_found);
    jj.set("max_seed_gap", j.max_seed_gap);
    jj.set("gap_scale", j.gap_scale);
    jj.set("wall_seconds", j.wall_seconds);
    jj.set("lp_solves", j.lp_solves);
    jj.set("lp_iterations", j.lp_iterations);
    jj.set("lp_columns_priced", j.lp_columns_priced);
    jj.set("lp_candidate_refills", j.lp_candidate_refills);
    util::Json feats = util::Json::object();
    for (const auto& [k, v] : j.features) feats.set(k, v);
    jj.set("features", std::move(feats));
    job_arr.push(std::move(jj));
  }
  root.set("jobs", std::move(job_arr));

  util::Json trend_arr = util::Json::array();
  for (const auto& t : trends) {
    util::Json tj = util::Json::object();
    tj.set("predicate", t.predicate);
    tj.set("feature", t.feature);
    tj.set("trend", t.increasing ? "increasing" : "decreasing");
    tj.set("rho", t.rho);
    tj.set("p_value", t.p_value);
    tj.set("support", t.support);
    trend_arr.push(std::move(tj));
  }
  root.set("trends", std::move(trend_arr));
  root.set("observations", observations);
  root.set("wall_seconds", wall_seconds);
  root.set("lp_solves", lp_solves);
  root.set("lp_iterations", lp_iterations);
  root.set("lp_columns_priced", lp_columns_priced);
  root.set("lp_candidate_refills", lp_candidate_refills);
  return root.dump(indent);
}

std::optional<ExperimentSummary> ExperimentSummary::from_json(
    const std::string& text) {
  const auto parsed = util::Json::parse(text);
  if (!parsed || parsed->kind() != util::Json::Kind::kObject)
    return std::nullopt;
  const util::Json* jobs = parsed->find("jobs");
  const util::Json* trends = parsed->find("trends");
  if (!jobs || jobs->kind() != util::Json::Kind::kArray || !trends ||
      trends->kind() != util::Json::Kind::kArray)
    return std::nullopt;

  const auto num = [](const util::Json& obj, const char* key) {
    const util::Json* v = obj.find(key);
    return v ? v->as_num() : 0.0;
  };
  const auto str = [](const util::Json& obj, const char* key) {
    const util::Json* v = obj.find(key);
    return v ? v->as_str() : std::string();
  };

  ExperimentSummary out;
  for (const auto& jj : jobs->items()) {
    if (jj.kind() != util::Json::Kind::kObject) return std::nullopt;
    JobSummary j;
    j.case_name = str(jj, "case");
    j.scenario = str(jj, "scenario");  // null -> "" (the default instance)
    j.index = static_cast<int>(num(jj, "index"));
    const util::Json* ok = jj.find("ok");
    j.ok = ok && ok->as_bool();
    j.error = str(jj, "error");
    j.subspaces = static_cast<int>(num(jj, "subspaces"));
    j.significant = static_cast<int>(num(jj, "significant"));
    j.best_gap_found = num(jj, "best_gap_found");
    j.max_seed_gap = num(jj, "max_seed_gap");
    j.gap_scale = num(jj, "gap_scale");
    j.wall_seconds = num(jj, "wall_seconds");
    j.lp_solves = static_cast<long>(num(jj, "lp_solves"));
    j.lp_iterations = static_cast<long>(num(jj, "lp_iterations"));
    j.lp_columns_priced = static_cast<long>(num(jj, "lp_columns_priced"));
    j.lp_candidate_refills =
        static_cast<long>(num(jj, "lp_candidate_refills"));
    if (const util::Json* feats = jj.find("features"))
      for (const auto& [k, v] : feats->members()) j.features[k] = v.as_num();
    out.jobs.push_back(std::move(j));
  }
  for (const auto& tj : trends->items()) {
    if (tj.kind() != util::Json::Kind::kObject) return std::nullopt;
    TrendSummary t;
    t.predicate = str(tj, "predicate");
    t.feature = str(tj, "feature");
    t.increasing = str(tj, "trend") != "decreasing";
    t.rho = num(tj, "rho");
    t.p_value = num(tj, "p_value");
    t.support = static_cast<int>(num(tj, "support"));
    out.trends.push_back(std::move(t));
  }
  out.observations = static_cast<int>(num(*parsed, "observations"));
  out.wall_seconds = num(*parsed, "wall_seconds");
  out.lp_solves = static_cast<long>(num(*parsed, "lp_solves"));
  out.lp_iterations = static_cast<long>(num(*parsed, "lp_iterations"));
  out.lp_columns_priced =
      static_cast<long>(num(*parsed, "lp_columns_priced"));
  out.lp_candidate_refills =
      static_cast<long>(num(*parsed, "lp_candidate_refills"));
  return out;
}

int ExperimentResult::total_subspaces() const {
  int n = 0;
  for (const auto& j : jobs) n += static_cast<int>(j.pipeline.subspaces.size());
  return n;
}

ExperimentSummary ExperimentResult::summary() const {
  ExperimentSummary out;
  out.jobs.reserve(jobs.size());
  for (const auto& j : jobs) {
    JobSummary s;
    s.case_name = j.job.case_name;
    s.scenario =
        j.job.scenario ? j.job.scenario->display_name() : std::string();
    s.index = j.job.index;
    s.ok = j.ok;
    s.error = j.error;
    s.subspaces = static_cast<int>(j.pipeline.subspaces.size());
    s.significant = count_significant(j.pipeline);
    s.best_gap_found = j.pipeline.best_gap_found;
    s.max_seed_gap = j.pipeline.max_gap();
    s.gap_scale = j.pipeline.gap_scale;
    s.wall_seconds = j.pipeline.wall_seconds;
    s.lp_solves = j.pipeline.stages.lp_solves;
    s.lp_iterations = j.pipeline.stages.lp_iterations;
    s.lp_columns_priced = j.pipeline.stages.lp_columns_priced;
    s.lp_candidate_refills = j.pipeline.stages.lp_candidate_refills;
    s.features = j.pipeline.features;
    out.jobs.push_back(std::move(s));
  }
  out.trends.reserve(trends.predicates.size());
  for (const auto& p : trends.predicates) {
    TrendSummary t;
    t.predicate = p.to_string();
    t.feature = p.feature;
    t.increasing = p.trend == generalize::Trend::kIncreasing;
    t.rho = p.rho;
    t.p_value = p.p_value;
    t.support = p.support;
    out.trends.push_back(std::move(t));
  }
  out.observations = static_cast<int>(trends.observations.size());
  out.wall_seconds = wall_seconds;
  out.lp_solves = stages.lp_solves;
  out.lp_iterations = stages.lp_iterations;
  out.lp_columns_priced = stages.lp_columns_priced;
  out.lp_candidate_refills = stages.lp_candidate_refills;
  return out;
}

std::vector<ExperimentJob> Engine::expand(const ExperimentSpec& spec) const {
  std::vector<ExperimentJob> jobs;
  jobs.reserve(spec.cases.size() *
               std::max<std::size_t>(1, spec.scenarios.size()));
  for (const auto& name : spec.cases) {
    if (spec.scenarios.empty()) {
      ExperimentJob job;
      job.case_name = name;
      job.index = static_cast<int>(jobs.size());
      jobs.push_back(std::move(job));
      continue;
    }
    for (const auto& scen : spec.scenarios) {
      ExperimentJob job;
      job.case_name = name;
      job.scenario = scen;
      job.index = static_cast<int>(jobs.size());
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

ExperimentResult Engine::run(const ExperimentSpec& spec,
                             const JobCallback& on_job) const {
  util::Timer timer;
  const solver::LpCounters lp0 = solver::lp_counters();
  ExperimentResult out;

  const std::vector<ExperimentJob> jobs = expand(spec);
  out.jobs.resize(jobs.size());

  const int workers =
      std::max(1, std::min<int>(util::resolve_workers(spec.workers),
                                static_cast<int>(jobs.size())));
  CallbackStream stream(on_job);

  // Slot-determinism (util/parallel.h): each job's result lands in its grid
  // slot and depends only on (registry content, spec, index) — scheduling
  // changes wall clock and callback order, never content.  out.jobs is the
  // slot store: resized before the pool starts, each slot written by exactly
  // one worker, read by others only after the parallel_chunks join — no
  // mutex, by design (annotating it GUARDED_BY would claim a lock that
  // deliberately does not exist; TSan checks this handoff instead).
  util::parallel_chunks(
      jobs.size(), workers, [&](std::size_t begin, std::size_t end, int) {
        for (std::size_t i = begin; i < end; ++i) {
          JobResult jr;
          jr.job = jobs[i];
          // Scenario cells build fresh (create): a grid visits each cell
          // once, and pumping every cell into the registry's keyed cache
          // would retain one full instance per cell for the process
          // lifetime.  Default jobs share the registry's (bounded,
          // one-per-name) cached default.
          std::shared_ptr<const HeuristicCase> c =
              jr.job.scenario ? registry_->create(jr.job.case_name,
                                                  *jr.job.scenario)
                              : registry_->find(jr.job.case_name);
          if (!c) {
            jr.error = registry_->contains(jr.job.case_name)
                           ? "case cannot build from a scenario "
                             "(default-only registration)"
                           : "unknown case";
          } else {
            PipelineOptions o = job_options(spec, jr.job.index);
            // The grid already fans out across jobs; an "auto" explain pool
            // inside every concurrent pipeline would oversubscribe the
            // machine workers-fold.  An explicit positive count is
            // respected.
            if (workers > 1 && o.explain.workers <= 0) o.explain.workers = 1;
            jr.pipeline = run_pipeline(*c, o);
            jr.ok = true;
          }
          out.jobs[i] = std::move(jr);
          if (stream) stream.emit(out.jobs[i]);
        }
      });

  for (const auto& j : out.jobs) {
    out.trace += j.pipeline.trace;
    out.stages += j.pipeline.stages;
  }
  // Thread-inclusive counters (lp.h): per-job deltas are exact, and this
  // experiment-level snapshot is too — the pool joined above, flushing
  // every worker's counts.
  const solver::LpCounters lp1 = solver::lp_counters();
  out.stages.lp_solves = lp1.solves - lp0.solves;
  out.stages.lp_iterations = lp1.iterations - lp0.iterations;
  out.stages.lp_columns_priced = lp1.columns_priced - lp0.columns_priced;
  out.stages.lp_candidate_refills =
      lp1.candidate_refills - lp0.candidate_refills;

  if (spec.run_generalizer) {
    // generalize_batch only reads (features, best gap, gap_scale); strip
    // each job down to those instead of deep-copying subspaces and
    // per-edge explanation heatmaps.  max_gap() is folded into
    // best_gap_found, which generalize_batch maxes with it anyway.
    std::vector<PipelineResult> ok_results;
    ok_results.reserve(out.jobs.size());
    for (const auto& j : out.jobs) {
      if (!j.ok) continue;
      PipelineResult slim;
      slim.features = j.pipeline.features;
      slim.gap_scale = j.pipeline.gap_scale;
      slim.best_gap_found =
          std::max(j.pipeline.max_gap(), j.pipeline.best_gap_found);
      ok_results.push_back(std::move(slim));
    }
    out.trends = generalize::generalize_batch(ok_results, spec.grammar,
                                              spec.normalize_gap);
  }

  out.wall_seconds = timer.seconds();
  XPLAIN_INFO << "engine: " << jobs.size() << " jobs ("
              << spec.cases.size() << " cases x "
              << std::max<std::size_t>(1, spec.scenarios.size())
              << " scenarios), " << out.total_subspaces() << " subspaces, "
              << out.trends.predicates.size() << " trends, " << workers
              << " workers, " << out.wall_seconds << "s";
  return out;
}

}  // namespace xplain
