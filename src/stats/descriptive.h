// Descriptive statistics used across the subspace generator and the
// significance checker.
#pragma once

#include <vector>

namespace xplain::stats {

double mean(const std::vector<double>& xs);
double variance(const std::vector<double>& xs);  // sample variance (n-1)
double stddev(const std::vector<double>& xs);
double median(std::vector<double> xs);
double quantile(std::vector<double> xs, double q);  // q in [0,1], linear interp

/// Empirical CDF value P(X <= x).
double ecdf(const std::vector<double>& xs, double x);

/// Ranks with ties averaged (1-based), the ranking Wilcoxon/Spearman use.
std::vector<double> ranks_with_ties(const std::vector<double>& xs);

/// Standard normal CDF.
double normal_cdf(double z);

}  // namespace xplain::stats
