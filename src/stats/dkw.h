// Dvoretzky–Kiefer–Wolfowitz sample-size bound (paper §5.2: "we pick the
// number of samples we use based on the DKW inequality", citing Massart's
// tight constant).
//
// DKW with Massart's constant: P(sup_x |F_n(x) - F(x)| > eps) <= 2 e^{-2 n
// eps^2}; so estimating the density of adversarial samples in a slice to
// within eps with confidence 1-delta needs n >= ln(2/delta) / (2 eps^2).
#pragma once

#include <cstddef>

namespace xplain::stats {

/// Minimum sample count for accuracy `eps` at confidence `1 - delta`.
std::size_t dkw_sample_count(double eps, double delta);

/// The deviation bound achievable with `n` samples at confidence `1-delta`.
double dkw_epsilon(std::size_t n, double delta);

}  // namespace xplain::stats
