#include "stats/descriptive.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace xplain::stats {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double median(std::vector<double> xs) { return quantile(std::move(xs), 0.5); }

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double ecdf(const std::vector<double>& xs, double x) {
  if (xs.empty()) return 0.0;
  std::size_t count = 0;
  for (double v : xs)
    if (v <= x) ++count;
  return static_cast<double>(count) / static_cast<double>(xs.size());
}

std::vector<double> ranks_with_ties(const std::vector<double>& xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[idx[j + 1]] == xs[idx[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 +
                       1.0;  // 1-based average rank
    for (std::size_t k = i; k <= j; ++k) ranks[idx[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

}  // namespace xplain::stats
