#include "stats/dkw.h"

#include <cassert>
#include <cmath>

namespace xplain::stats {

std::size_t dkw_sample_count(double eps, double delta) {
  assert(eps > 0 && delta > 0 && delta < 1);
  return static_cast<std::size_t>(
      std::ceil(std::log(2.0 / delta) / (2.0 * eps * eps)));
}

double dkw_epsilon(std::size_t n, double delta) {
  assert(n > 0 && delta > 0 && delta < 1);
  return std::sqrt(std::log(2.0 / delta) / (2.0 * static_cast<double>(n)));
}

}  // namespace xplain::stats
