// Wilcoxon signed-rank test — the significance checker's test (paper §5.2:
// "we use the Wilcoxon signed-rank test, which allows for dependent
// samples").  One-sided alternative: the first sample tends to be larger.
//
// Exact null distribution for n <= 25 pairs; normal approximation with
// continuity and tie corrections above.
#pragma once

#include <vector>

namespace xplain::stats {

struct WilcoxonResult {
  double w_plus = 0.0;    // sum of ranks of positive differences
  double w_minus = 0.0;
  int n_effective = 0;    // pairs with nonzero difference
  double p_value = 1.0;   // one-sided: P(inside > outside)
  bool exact = false;     // exact distribution vs normal approximation
};

/// Paired test on (a_i, b_i); alternative: a > b.
WilcoxonResult wilcoxon_signed_rank(const std::vector<double>& a,
                                    const std::vector<double>& b);

/// Same test on precomputed differences d_i = a_i - b_i.
WilcoxonResult wilcoxon_signed_rank_diffs(const std::vector<double>& diffs);

}  // namespace xplain::stats
