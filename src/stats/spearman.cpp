#include "stats/spearman.h"

#include <cassert>
#include <cmath>

#include "stats/descriptive.h"

namespace xplain::stats {

namespace {

// Student-t upper tail via the regularized incomplete beta function
// (continued fraction, Lentz's algorithm).
double betacf(double a, double b, double x) {
  const int kMaxIter = 200;
  const double eps = 3e-12, fpmin = 1e-300;
  double qab = a + b, qap = a + 1.0, qam = a - 1.0;
  double c = 1.0, d = 1.0 - qab * x / qap;
  if (std::fabs(d) < fpmin) d = fpmin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < fpmin) d = fpmin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < fpmin) c = fpmin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < fpmin) d = fpmin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < fpmin) c = fpmin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < eps) break;
  }
  return h;
}

double ibeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_beta =
      std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b);
  const double front = std::exp(ln_beta + a * std::log(x) +
                                b * std::log(1.0 - x));
  if (x < (a + 1.0) / (a + b + 2.0)) return front * betacf(a, b, x) / a;
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

// P(T_nu > t), one-sided.
double student_t_upper(double t, double nu) {
  const double x = nu / (nu + t * t);
  const double p = 0.5 * ibeta(nu / 2.0, 0.5, x);
  return t > 0 ? p : 1.0 - p;
}

}  // namespace

SpearmanResult spearman(const std::vector<double>& x,
                        const std::vector<double>& y) {
  assert(x.size() == y.size());
  SpearmanResult res;
  res.n = static_cast<int>(x.size());
  if (res.n < 3) return res;

  const auto rx = ranks_with_ties(x);
  const auto ry = ranks_with_ties(y);
  // Pearson correlation of the ranks (handles ties correctly).
  const double mx = mean(rx), my = mean(ry);
  double sxy = 0, sxx = 0, syy = 0;
  for (int i = 0; i < res.n; ++i) {
    sxy += (rx[i] - mx) * (ry[i] - my);
    sxx += (rx[i] - mx) * (rx[i] - mx);
    syy += (ry[i] - my) * (ry[i] - my);
  }
  if (sxx <= 0 || syy <= 0) return res;  // a constant series: no evidence
  res.rho = sxy / std::sqrt(sxx * syy);

  const double nu = res.n - 2;
  const double denom = 1.0 - res.rho * res.rho;
  if (denom <= 1e-15) {
    res.p_value_positive = res.rho > 0 ? 0.0 : 1.0;
    res.p_value_negative = res.rho < 0 ? 0.0 : 1.0;
    return res;
  }
  const double t = res.rho * std::sqrt(nu / denom);
  res.p_value_positive = student_t_upper(t, nu);
  res.p_value_negative = student_t_upper(-t, nu);
  return res;
}

}  // namespace xplain::stats
