// Spearman rank correlation with a one/two-sided significance test — the
// generalizer's statistical backend for `increasing(P)`-style predicates
// (paper §5.4: "check if the predicates in the grammar are statistically
// significant").
#pragma once

#include <vector>

namespace xplain::stats {

struct SpearmanResult {
  double rho = 0.0;
  /// One-sided p-value for the alternative rho > 0 (use 1-p for rho < 0),
  /// from the t-approximation (n >= ~10 recommended).
  double p_value_positive = 1.0;
  double p_value_negative = 1.0;
  int n = 0;
};

SpearmanResult spearman(const std::vector<double>& x,
                        const std::vector<double>& y);

}  // namespace xplain::stats
