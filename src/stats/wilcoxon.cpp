#include "stats/wilcoxon.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>

#include "stats/descriptive.h"

namespace xplain::stats {

namespace {

// Exact tail probability P(W+ >= w) under H0 for n untied nonzero pairs:
// dynamic program over the 2^n sign assignments, counting by achievable
// rank-sum.  Valid when ranks are the integers 1..n (no ties).
double exact_upper_tail(int n, double w) {
  const int max_sum = n * (n + 1) / 2;
  std::vector<double> counts(max_sum + 1, 0.0);
  counts[0] = 1.0;
  for (int r = 1; r <= n; ++r)
    for (int s = max_sum; s >= r; --s) counts[s] += counts[s - r];
  double total = std::ldexp(1.0, n);  // 2^n
  double tail = 0.0;
  const int wi = static_cast<int>(std::ceil(w - 1e-9));
  for (int s = wi; s <= max_sum; ++s) tail += counts[s];
  return tail / total;
}

}  // namespace

WilcoxonResult wilcoxon_signed_rank_diffs(const std::vector<double>& diffs) {
  WilcoxonResult res;
  std::vector<double> nonzero;
  nonzero.reserve(diffs.size());
  for (double d : diffs)
    if (d != 0.0) nonzero.push_back(d);
  const int n = static_cast<int>(nonzero.size());
  res.n_effective = n;
  if (n == 0) return res;  // p = 1: no evidence

  std::vector<double> abs(n);
  bool has_ties = false;
  for (int i = 0; i < n; ++i) abs[i] = std::fabs(nonzero[i]);
  std::vector<double> rk = ranks_with_ties(abs);
  for (double r : rk)
    if (r != std::floor(r)) has_ties = true;
  // Detect integer-valued but tied ranks too (two equal magnitudes an even
  // count apart average to an integer).
  {
    std::vector<double> sorted = abs;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i + 1 < n; ++i)
      if (sorted[i] == sorted[i + 1]) has_ties = true;
  }

  double tie_correction = 0.0;
  {
    std::vector<double> sorted = abs;
    std::sort(sorted.begin(), sorted.end());
    int i = 0;
    while (i < n) {
      int j = i;
      while (j + 1 < n && sorted[j + 1] == sorted[i]) ++j;
      const double t = j - i + 1;
      tie_correction += t * t * t - t;
      i = j + 1;
    }
  }

  for (int i = 0; i < n; ++i) {
    if (nonzero[i] > 0)
      res.w_plus += rk[i];
    else
      res.w_minus += rk[i];
  }

  if (n <= 25 && !has_ties) {
    res.exact = true;
    res.p_value = exact_upper_tail(n, res.w_plus);
  } else {
    const double mu = n * (n + 1) / 4.0;
    const double var =
        n * (n + 1) * (2 * n + 1) / 24.0 - tie_correction / 48.0;
    if (var <= 0) {
      res.p_value = res.w_plus > mu ? 0.0 : 1.0;
      return res;
    }
    // Continuity-corrected one-sided p for W+ large.  Extremely
    // significant subspaces (the paper reports 2e-60) can underflow the
    // erfc tail to exactly 0; clamp to the smallest representable scale so
    // callers can still order and log p-values.
    const double z = (res.w_plus - mu - 0.5) / std::sqrt(var);
    res.p_value = 1.0 - normal_cdf(z);
    if (res.p_value == 0.0) res.p_value = 1e-300;
  }
  return res;
}

WilcoxonResult wilcoxon_signed_rank(const std::vector<double>& a,
                                    const std::vector<double>& b) {
  assert(a.size() == b.size());
  std::vector<double> diffs(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) diffs[i] = a[i] - b[i];
  return wilcoxon_signed_rank_diffs(diffs);
}

}  // namespace xplain::stats
