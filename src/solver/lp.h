// Linear / mixed-integer program container.
//
// This is the solver-facing representation every higher layer compiles down
// to (the modeling layer in `src/model` and the XPlain DSL compiler both
// target it). It plays the role Gurobi's model object plays for MetaOpt.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace xplain::solver {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Sense { kMinimize, kMaximize };
enum class RowSense { kLe, kGe, kEq };

enum class Status {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kLimit,   // iteration / node / time limit hit; best-known returned
  kError,
};

const char* to_string(Status s);

/// A sparse LP/MILP: minimize or maximize obj'x subject to rows and bounds.
class LpProblem {
 public:
  struct Row {
    std::vector<std::pair<int, double>> coef;  // (column, coefficient)
    RowSense sense = RowSense::kLe;
    double rhs = 0.0;
    std::string name;
  };

  Sense sense = Sense::kMinimize;

  /// Adds a column; returns its index.
  int add_col(double lo, double hi, double obj, bool integer = false,
              std::string name = {});

  /// Adds a row; duplicate column entries are merged.
  void add_row(std::vector<std::pair<int, double>> coef, RowSense sense,
               double rhs, std::string name = {});

  int num_cols() const { return static_cast<int>(obj_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }
  bool is_mip() const;

  double obj(int j) const { return obj_[j]; }
  double lo(int j) const { return lo_[j]; }
  double hi(int j) const { return hi_[j]; }
  bool integer(int j) const { return integer_[j] != 0; }
  /// The column's given name, or a generated "c<j>" placeholder.  Default
  /// names are materialized lazily: the sampling hot loops build thousands
  /// of throwaway models whose names nobody reads.
  std::string col_name(int j) const {
    return col_names_[j].empty() ? "c" + std::to_string(j) : col_names_[j];
  }
  const Row& row(int i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Pre-sizes the column/row storage (model builders that know their
  /// shape avoid reallocation churn).
  void reserve(int cols, int rows) {
    obj_.reserve(cols);
    lo_.reserve(cols);
    hi_.reserve(cols);
    integer_.reserve(cols);
    col_names_.reserve(cols);
    rows_.reserve(rows);
  }

  void set_obj(int j, double c) { obj_[j] = c; }
  void set_bounds(int j, double lo, double hi) {
    lo_[j] = lo;
    hi_[j] = hi;
  }
  /// Moves a row's right-hand side in place (coefficients and sense stay).
  /// Callers that re-solve a structurally identical problem with fresh
  /// rhs/bounds (te::MaxFlowSolver) mutate instead of rebuilding; a basis
  /// from a previous solve stays warm-startable across rhs moves just as
  /// across bound moves (see solve_lp).
  void set_row_rhs(int i, double rhs) { rows_[i].rhs = rhs; }

  /// Whole bound vectors, for callers (branch-and-bound) that snapshot and
  /// restore bounds without copying the rows.
  const std::vector<double>& lower_bounds() const { return lo_; }
  const std::vector<double>& upper_bounds() const { return hi_; }
  void set_all_bounds(const std::vector<double>& lo,
                      const std::vector<double>& hi) {
    lo_ = lo;  // copy-assign: reuses the existing buffers' capacity
    hi_ = hi;
  }

  /// Objective value of a point (no feasibility check).
  double eval_obj(const std::vector<double>& x) const;

  /// True if `x` satisfies all rows and bounds to within `tol`
  /// (and integrality for integer columns).
  bool feasible(const std::vector<double>& x, double tol = 1e-6) const;

  /// Human-readable dump (small models only; used in error paths/tests).
  std::string to_string() const;

 private:
  std::vector<double> obj_, lo_, hi_;
  std::vector<std::uint8_t> integer_;
  std::vector<std::string> col_names_;
  std::vector<Row> rows_;
};

/// A simplex basis over the columns of an LpProblem plus one slack per row
/// (slack of row i has variable index num_cols + i).  Because the revised
/// simplex handles column bounds natively, a basis stays meaningful across
/// bound changes on the same rows — that is what makes warm starts work.
struct Basis {
  std::vector<int> basic;               // size num_rows: variable basic in row i
  std::vector<std::uint8_t> at_upper;   // size num_cols + num_rows: nonbasic
                                        // variable rests at its upper bound
  bool empty() const { return basic.empty() && at_upper.empty(); }
};

struct LpSolution {
  Status status = Status::kError;
  double obj = 0.0;
  std::vector<double> x;  // primal values, one per column
  std::vector<double> y;  // dual values, one per row (sign: for the stated
                          // sense; empty for MILP solves)
  long iterations = 0;
  /// Successful basis refactorizations performed during the solve
  /// (meaningful on kOptimal; diagnostic for the SimplexOptions refactor
  /// triggers).
  long refactorizations = 0;
  /// Optimal basis (populated on kOptimal); feed back into solve_lp as a
  /// warm start after bound tightenings.
  Basis basis;
};

/// LP accounting, incremented by every solve_lp call.  Counters are
/// *thread-inclusive*: each thread accumulates its own solves without
/// synchronization and flushes them to a process-wide retired total when it
/// exits, so on any thread the delta of lp_counters() across a region is
/// exactly the work performed by that thread plus any worker pools it
/// joined inside the region (util::parallel_chunks hands each worker's
/// tallies to the spawning thread at join).  That makes per-job deltas
/// exact even under concurrent Engine workers, and process-wide totals
/// exact whenever no pool is mid-flight.  The one limitation: a thread
/// never sees work still in flight on a thread it did not spawn through
/// parallel_chunks — e.g. a hand-rolled std::thread's tallies reach the
/// retired total (and other threads' view) only when that thread exits.
struct LpCounters {
  long solves = 0;
  long iterations = 0;
  long warm_solves = 0;  // solves that started from a caller basis
  /// Reduced costs evaluated by primal pricing (both Dantzig full scans
  /// and partial-pricing bucket passes + refill scans) — the per-pivot
  /// cost partial pricing exists to shrink.
  long columns_priced = 0;
  /// Partial-pricing candidate-bucket refills (each one is a full scan;
  /// zero under pricing=dantzig).
  long candidate_refills = 0;
};
LpCounters lp_counters();

}  // namespace xplain::solver
