// Linear / mixed-integer program container.
//
// This is the solver-facing representation every higher layer compiles down
// to (the modeling layer in `src/model` and the XPlain DSL compiler both
// target it). It plays the role Gurobi's model object plays for MetaOpt.
#pragma once

#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace xplain::solver {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Sense { kMinimize, kMaximize };
enum class RowSense { kLe, kGe, kEq };

enum class Status {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kLimit,   // iteration / node / time limit hit; best-known returned
  kError,
};

const char* to_string(Status s);

/// A sparse LP/MILP: minimize or maximize obj'x subject to rows and bounds.
class LpProblem {
 public:
  struct Row {
    std::vector<std::pair<int, double>> coef;  // (column, coefficient)
    RowSense sense = RowSense::kLe;
    double rhs = 0.0;
    std::string name;
  };

  Sense sense = Sense::kMinimize;

  /// Adds a column; returns its index.
  int add_col(double lo, double hi, double obj, bool integer = false,
              std::string name = {});

  /// Adds a row; duplicate column entries are merged.
  void add_row(std::vector<std::pair<int, double>> coef, RowSense sense,
               double rhs, std::string name = {});

  int num_cols() const { return static_cast<int>(obj_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }
  bool is_mip() const;

  double obj(int j) const { return obj_[j]; }
  double lo(int j) const { return lo_[j]; }
  double hi(int j) const { return hi_[j]; }
  bool integer(int j) const { return integer_[j] != 0; }
  const std::string& col_name(int j) const { return col_names_[j]; }
  const Row& row(int i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  void set_obj(int j, double c) { obj_[j] = c; }
  void set_bounds(int j, double lo, double hi) {
    lo_[j] = lo;
    hi_[j] = hi;
  }

  /// Objective value of a point (no feasibility check).
  double eval_obj(const std::vector<double>& x) const;

  /// True if `x` satisfies all rows and bounds to within `tol`
  /// (and integrality for integer columns).
  bool feasible(const std::vector<double>& x, double tol = 1e-6) const;

  /// Human-readable dump (small models only; used in error paths/tests).
  std::string to_string() const;

 private:
  std::vector<double> obj_, lo_, hi_;
  std::vector<std::uint8_t> integer_;
  std::vector<std::string> col_names_;
  std::vector<Row> rows_;
};

struct LpSolution {
  Status status = Status::kError;
  double obj = 0.0;
  std::vector<double> x;  // primal values, one per column
  std::vector<double> y;  // dual values, one per row (sign: for the stated
                          // sense; empty for MILP solves)
  long iterations = 0;
};

}  // namespace xplain::solver
