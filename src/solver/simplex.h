// Bounded-variable revised simplex.
//
// The production LP solver: column bounds are handled natively (no bound
// rows, no variable splitting — on the FF/DP MILP encodings this roughly
// halves the row count versus the old dense tableau), constraint rows are
// stored sparsely, and the optimal basis is returned in LpSolution so
// callers can warm-start the next solve.  Warm starts restore the caller's
// basis and, when bound tightenings broke primal feasibility, repair it
// with a dual-simplex phase — the classic branch-and-bound re-solve, which
// typically needs a handful of pivots instead of a from-scratch solve.
//
// Pricing is partial (candidate-list) by default with a full-scan
// optimality proof — see PricingRule; small LPs (below
// partial_pricing_min_cols columns) keep the plain Dantzig scan, where a
// full scan costs no more than a refill.  Anti-cycling is a Bland's-rule
// fallback after a run of degenerate pivots, which always full-scans.  The
// basis representation is refactorized periodically for numerical hygiene.
//
// Scope note: this is the Gurobi stand-in for the XPlain reproduction.  It
// is exact; the basis is kept as a sparse LU factorization with
// Forrest-Tomlin updates and hyper-sparse BTRAN (solver/lu.h; a dense LU
// handles tiny bases, and a product-form eta mode remains as a baseline),
// so FTRAN/BTRAN and pivots cost O(nnz) instead of the dense O(m^2) the
// pre-PR-6 inverse paid — the trade that matters once scenario instances
// reach fat-tree(16) scale (~8k rows).
#pragma once

#include <cstdint>

#include "solver/lp.h"

namespace xplain::solver {

/// Primal pricing rule (see SimplexOptions::pricing).
enum class PricingRule : std::uint8_t {
  /// Full Dantzig scan: every nonbasic column priced every pivot.  Exact
  /// and simple, but O(n) reduced costs per pivot dominates once
  /// instances reach fat-tree(16) scale (~20k columns).
  kDantzig,
  /// Partial (candidate-list) pricing: a bucket of violating columns is
  /// re-priced each pivot; when it runs dry, a rotating cyclic scan
  /// (resuming where the previous refill stopped) collects the next
  /// bucketful.  The rotation spreads entering candidates across the
  /// whole column range — a top-K-by-violation bucket collapses into
  /// Bland's rule on degenerate LPs where thousands of columns tie at the
  /// same reduced cost — and lets most refills stop early.  Optimality is
  /// only ever declared after a refill wraps the full column range and
  /// finds no violation, so results are exactly as optimal as Dantzig —
  /// only the pivot path differs.
  kPartial,
};

struct SimplexOptions {
  long max_iterations = 200'000;
  double feas_tol = 1e-7;   // primal feasibility / phase-1 residual
  double pivot_tol = 1e-9;  // minimum admissible pivot magnitude
  double cost_tol = 1e-9;   // reduced-cost optimality threshold
  /// Refactorize the basis every this many pivots (the blind trigger; the
  /// two bounds below fire earlier when the eta file grows fat).
  int refactor_every = 96;
  /// Refactorize when the eta file holds at least this many nonzeros
  /// (absolute backstop on accumulated fill; <= 0 disables).
  long refactor_eta_nnz = 65'536;
  /// Refactorize when the eta file's nonzeros exceed this multiple of the
  /// factorization's own size (nnz(L) + nnz(U), diagonal included):
  /// dense-ish spike columns then trigger an early refactorization instead
  /// of taxing every subsequent FTRAN/BTRAN (<= 0 disables).
  double refactor_fill_ratio = 8.0;
  /// Primal pricing rule.  Partial pricing is the default: it changes the
  /// pivot path, never the answer (Bland's anti-cycling rule bypasses the
  /// bucket entirely and full-scans, exactly as under kDantzig).
  PricingRule pricing = PricingRule::kPartial;
  /// kPartial prices with a plain full Dantzig scan while the column count
  /// (structurals + logicals) is at most this.  Scanning a thousand
  /// reduced costs is microseconds — the candidate list only pays once
  /// scans dominate pivots (thousands of columns) — while the rotation's
  /// path perturbation, its whole point at scale, just lengthens the pivot
  /// path on small LPs (the DP MILP sampling loops pivot ~40% more under
  /// unconditional partial pricing).  <= 0 engages the list everywhere.
  int partial_pricing_min_cols = 1024;
  /// Bases with at most this many rows use a dense LU with partial
  /// pivoting (plus product-form etas) instead of the sparse machinery —
  /// the sampling loops solve millions of LPs with a handful of rows,
  /// where sparse index juggling costs more than contiguous O(m^2) flops.
  /// <= 0 forces the sparse path everywhere.
  int dense_basis_dim = 50;
  /// Keep the sparse factorization fresh with Forrest-Tomlin updates
  /// (default); false falls back to the plain product-form eta file —
  /// retained as a differential baseline and for A/B benches.
  bool ft_updates = true;
  /// Test-only failure injection: the Nth refactorization attempt of a
  /// solve_lp call reports failure (1-based; 0 disables).  Exercises the
  /// stale-representation fallbacks — warm solves restart cold, cold solves
  /// report kError instead of an unverified optimum.
  int fail_refactor_at = 0;
  /// Test-only failure injection: the Nth basis-update attempt of a
  /// solve_lp call is treated as rejected (1-based; 0 disables), forcing
  /// the Forrest-Tomlin rejection -> refactorize path.
  int fail_update_at = 0;
  /// Skip computing row duals / exporting the optimal basis on kOptimal.
  /// Sampling-loop callers that use neither shave the extraction work from
  /// every one of their millions of tiny solves.
  bool want_duals = true;
  bool want_basis = true;
};

/// Solves the relaxation of `p` (integrality markers are ignored).
///
/// On kOptimal the solution carries primal values for every column, dual
/// values for every row with the convention y_i = d(obj)/d(rhs_i) for the
/// problem's stated sense, and the optimal Basis.
///
/// `warm`, when non-null, must be a basis returned by a previous solve of a
/// problem with the *same structure* — identical columns and row
/// coefficients; bounds AND row right-hand sides may differ.  (Bound moves
/// are the branch-and-bound situation; rhs moves are the resampling
/// situation, e.g. te::MaxFlowSolver.  Both only perturb primal
/// feasibility, which the dual-simplex repair phase restores — dual
/// feasibility of a basis never depends on bounds or rhs.)  The solver
/// re-installs the basis, repairs, and falls back to a cold solve if the
/// basis is stale or singular.  Warm starts never change the answer, only
/// the path to it.
LpSolution solve_lp(const LpProblem& p, const SimplexOptions& opts = {},
                    const Basis* warm = nullptr);

/// The old dense two-phase tableau implementation, retained as a reference
/// oracle for tests (exact but slow; no bounds handling beyond row
/// encodings, no warm starts).
LpSolution solve_lp_tableau(const LpProblem& p, const SimplexOptions& opts = {});

}  // namespace xplain::solver
