// Bounded-variable revised simplex.
//
// The production LP solver: column bounds are handled natively (no bound
// rows, no variable splitting — on the FF/DP MILP encodings this roughly
// halves the row count versus the old dense tableau), constraint rows are
// stored sparsely, and the optimal basis is returned in LpSolution so
// callers can warm-start the next solve.  Warm starts restore the caller's
// basis and, when bound tightenings broke primal feasibility, repair it
// with a dual-simplex phase — the classic branch-and-bound re-solve, which
// typically needs a handful of pivots instead of a from-scratch solve.
//
// Anti-cycling is Dantzig pricing with a Bland's-rule fallback after a run
// of degenerate pivots; the basis representation is refactorized
// periodically for numerical hygiene.
//
// Scope note: this is the Gurobi stand-in for the XPlain reproduction.  It
// is exact; the basis is kept as a sparse LU factorization with eta-file
// (product-form) updates (solver/lu.h), so FTRAN/BTRAN and pivots cost
// O(nnz) instead of the dense O(m^2) the pre-PR-6 inverse paid — the trade
// that matters once scenario instances reach thousands of rows.
#pragma once

#include "solver/lp.h"

namespace xplain::solver {

struct SimplexOptions {
  long max_iterations = 200'000;
  double feas_tol = 1e-7;   // primal feasibility / phase-1 residual
  double pivot_tol = 1e-9;  // minimum admissible pivot magnitude
  double cost_tol = 1e-9;   // reduced-cost optimality threshold
  /// Refactorize the basis every this many pivots (the blind trigger; the
  /// two bounds below fire earlier when the eta file grows fat).
  int refactor_every = 96;
  /// Refactorize when the eta file holds at least this many nonzeros
  /// (absolute backstop on accumulated fill; <= 0 disables).
  long refactor_eta_nnz = 65'536;
  /// Refactorize when the eta file's nonzeros exceed this multiple of the
  /// factorization's own size (nnz(L) + nnz(U), diagonal included):
  /// dense-ish spike columns then trigger an early refactorization instead
  /// of taxing every subsequent FTRAN/BTRAN (<= 0 disables).
  double refactor_fill_ratio = 8.0;
  /// Test-only failure injection: the Nth refactorization attempt of a
  /// solve_lp call reports failure (1-based; 0 disables).  Exercises the
  /// stale-representation fallbacks — warm solves restart cold, cold solves
  /// report kError instead of an unverified optimum.
  int fail_refactor_at = 0;
  /// Skip computing row duals / exporting the optimal basis on kOptimal.
  /// Sampling-loop callers that use neither shave the extraction work from
  /// every one of their millions of tiny solves.
  bool want_duals = true;
  bool want_basis = true;
};

/// Solves the relaxation of `p` (integrality markers are ignored).
///
/// On kOptimal the solution carries primal values for every column, dual
/// values for every row with the convention y_i = d(obj)/d(rhs_i) for the
/// problem's stated sense, and the optimal Basis.
///
/// `warm`, when non-null, must be a basis returned by a previous solve of a
/// problem with the *same structure* — identical columns and row
/// coefficients; bounds AND row right-hand sides may differ.  (Bound moves
/// are the branch-and-bound situation; rhs moves are the resampling
/// situation, e.g. te::MaxFlowSolver.  Both only perturb primal
/// feasibility, which the dual-simplex repair phase restores — dual
/// feasibility of a basis never depends on bounds or rhs.)  The solver
/// re-installs the basis, repairs, and falls back to a cold solve if the
/// basis is stale or singular.  Warm starts never change the answer, only
/// the path to it.
LpSolution solve_lp(const LpProblem& p, const SimplexOptions& opts = {},
                    const Basis* warm = nullptr);

/// The old dense two-phase tableau implementation, retained as a reference
/// oracle for tests (exact but slow; no bounds handling beyond row
/// encodings, no warm starts).
LpSolution solve_lp_tableau(const LpProblem& p, const SimplexOptions& opts = {});

}  // namespace xplain::solver
