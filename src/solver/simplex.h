// Two-phase dense tableau simplex.
//
// Handles general column bounds (finite lowers are shifted out, finite
// uppers become explicit bound rows, free columns are split), maximization,
// and equality/inequality rows.  Anti-cycling is Dantzig pricing with a
// Bland's-rule fallback after a run of degenerate pivots.
//
// Scope note: this is the Gurobi stand-in for the XPlain reproduction.  It
// is exact and deliberately simple (dense tableau); the models the paper's
// analyses generate are small (tens to a few hundred rows), where density
// is not a bottleneck.
#pragma once

#include "solver/lp.h"

namespace xplain::solver {

struct SimplexOptions {
  long max_iterations = 200'000;
  double feas_tol = 1e-7;   // primal feasibility / phase-1 residual
  double pivot_tol = 1e-9;  // minimum admissible pivot magnitude
  double cost_tol = 1e-9;   // reduced-cost optimality threshold
};

/// Solves the relaxation of `p` (integrality markers are ignored).
///
/// On kOptimal the solution carries primal values for every column and dual
/// values for every row with the convention y_i = d(obj)/d(rhs_i) for the
/// problem's stated sense.
LpSolution solve_lp(const LpProblem& p, const SimplexOptions& opts = {});

}  // namespace xplain::solver
