// Bound-propagation presolve for the MILP solver.
//
// Iterates constraint-activity propagation to a fixpoint: every row's
// minimum/maximum activity implies bounds on each of its columns, and
// integer columns round those bounds inward.  On models built from big-M
// indicator chains (everything the MetaOpt-style encodings produce), fixing
// the input columns lets propagation cascade and fix most binaries before
// any LP is solved — without it, branch-and-bound on a constant objective
// degenerates into blind enumeration.
#pragma once

#include "solver/lp.h"

namespace xplain::solver {

struct PropagateResult {
  bool feasible = true;   // false: a row or an empty domain proves infeasible
  int tightened = 0;      // number of bound changes applied
  int rounds = 0;
};

/// Tightens `p`'s column bounds in place.  Safe: only *implied* bounds are
/// added, so the feasible set (and the MILP optimum) is unchanged.
PropagateResult propagate_bounds(LpProblem& p, int max_rounds = 50,
                                 double tol = 1e-9);

}  // namespace xplain::solver
