// The pre-revised-simplex dense two-phase tableau, kept verbatim as a
// reference oracle: exact, slow, and independent of the production solver's
// code paths.  Tests cross-check solve_lp against it; nothing on the hot
// path calls it.
#include "solver/simplex.h"

#include <algorithm>
#include <cassert>
#include <climits>
#include <cmath>
#include <vector>

#include "util/logging.h"

namespace xplain::solver {

namespace {

// How one original column maps into standard-form columns.
enum class SubstKind {
  kShift,     // x = shift + t          (finite lower bound)
  kNegShift,  // x = shift - t          (lower = -inf, finite upper)
  kSplit,     // x = t1 - t2            (free)
};

struct Subst {
  SubstKind kind;
  int col1 = -1;
  int col2 = -1;
  double shift = 0.0;
};

struct Standard {
  // Dense tableau data, row-major: m rows of (ncols + 1); last entry is rhs.
  int m = 0;
  int ncols = 0;  // structural + slack/surplus + artificial
  std::vector<double> tab;
  std::vector<int> basis;           // basis[i] = column basic in row i
  std::vector<double> cost;         // phase-2 cost per column
  std::vector<char> artificial;     // per column
  std::vector<int> identity_col;    // per row: initial identity column
  std::vector<double> row_scale;    // +1 or -1: sign applied to original row
  int num_original_rows = 0;        // rows before appended bound rows
  double obj_offset = 0.0;          // constant from lower-bound shifts
  double obj_scale = 1.0;           // -1 when original sense was maximize
  std::vector<Subst> subst;         // per original column
};

double& at(Standard& s, int r, int c) { return s.tab[r * (s.ncols + 1) + c]; }
double& rhs(Standard& s, int r) { return s.tab[r * (s.ncols + 1) + s.ncols]; }

// Builds the standard-form tableau: min c't, A t (=) b, t >= 0, b >= 0,
// with an initial identity basis of slacks/artificials.
Standard build_standard(const LpProblem& p) {
  Standard s;
  s.obj_scale = (p.sense == Sense::kMaximize) ? -1.0 : 1.0;
  const int n0 = p.num_cols();

  // --- Column substitutions. ---
  int next_col = 0;
  std::vector<double> struct_cost;
  s.subst.resize(n0);
  struct UpperRow {
    int col;
    double cap;
  };
  std::vector<UpperRow> upper_rows;
  for (int j = 0; j < n0; ++j) {
    const double lo = p.lo(j), hi = p.hi(j);
    const double c = s.obj_scale * p.obj(j);
    if (lo > hi + 1e-12) {
      // Empty box: encode as an infeasible bound row below via shift + cap<0.
      s.subst[j] = {SubstKind::kShift, next_col++, -1, lo};
      struct_cost.push_back(c);
      s.obj_offset += c * lo;
      upper_rows.push_back({s.subst[j].col1, hi - lo});  // cap < 0
      continue;
    }
    if (lo != -kInf) {
      s.subst[j] = {SubstKind::kShift, next_col++, -1, lo};
      struct_cost.push_back(c);
      s.obj_offset += c * lo;
      if (hi != kInf && hi - lo < kInf)
        upper_rows.push_back({s.subst[j].col1, hi - lo});
    } else if (hi != kInf) {
      s.subst[j] = {SubstKind::kNegShift, next_col++, -1, hi};
      struct_cost.push_back(-c);
      s.obj_offset += c * hi;
    } else {
      s.subst[j] = {SubstKind::kSplit, next_col, next_col + 1, 0.0};
      next_col += 2;
      struct_cost.push_back(c);
      struct_cost.push_back(-c);
    }
  }
  const int nstruct = next_col;

  // --- Row assembly (original rows then bound rows). ---
  struct RawRow {
    std::vector<std::pair<int, double>> coef;  // on structural columns
    RowSense sense;
    double rhs;
  };
  std::vector<RawRow> raws;
  raws.reserve(p.num_rows() + upper_rows.size());
  for (const auto& row : p.rows()) {
    RawRow rr;
    rr.sense = row.sense;
    rr.rhs = row.rhs;
    for (const auto& [j, v] : row.coef) {
      const Subst& sub = s.subst[j];
      switch (sub.kind) {
        case SubstKind::kShift:
          rr.coef.emplace_back(sub.col1, v);
          rr.rhs -= v * sub.shift;
          break;
        case SubstKind::kNegShift:
          rr.coef.emplace_back(sub.col1, -v);
          rr.rhs -= v * sub.shift;
          break;
        case SubstKind::kSplit:
          rr.coef.emplace_back(sub.col1, v);
          rr.coef.emplace_back(sub.col2, -v);
          break;
      }
    }
    raws.push_back(std::move(rr));
  }
  s.num_original_rows = static_cast<int>(raws.size());
  for (const auto& ur : upper_rows)
    raws.push_back({{{ur.col, 1.0}}, RowSense::kLe, ur.cap});

  s.m = static_cast<int>(raws.size());
  s.row_scale.assign(s.m, 1.0);

  // Count auxiliary columns: one slack/surplus per inequality row, one
  // artificial per row whose slack cannot start basic.
  int nslack = 0, nart = 0;
  std::vector<int> slack_col(s.m, -1), art_col(s.m, -1);
  for (int i = 0; i < s.m; ++i) {
    if (raws[i].rhs < 0) {
      s.row_scale[i] = -1.0;
      raws[i].rhs = -raws[i].rhs;
      for (auto& [j, v] : raws[i].coef) v = -v;
      if (raws[i].sense == RowSense::kLe)
        raws[i].sense = RowSense::kGe;
      else if (raws[i].sense == RowSense::kGe)
        raws[i].sense = RowSense::kLe;
    }
    if (raws[i].sense != RowSense::kEq) ++nslack;
    if (raws[i].sense != RowSense::kLe) ++nart;
  }
  s.ncols = nstruct + nslack + nart;
  s.cost.assign(s.ncols, 0.0);
  std::copy(struct_cost.begin(), struct_cost.end(), s.cost.begin());
  s.artificial.assign(s.ncols, 0);
  s.tab.assign(static_cast<std::size_t>(s.m) * (s.ncols + 1), 0.0);
  s.basis.assign(s.m, -1);
  s.identity_col.assign(s.m, -1);

  int aux = nstruct;
  for (int i = 0; i < s.m; ++i) {
    for (const auto& [j, v] : raws[i].coef) at(s, i, j) += v;
    rhs(s, i) = raws[i].rhs;
    if (raws[i].sense == RowSense::kLe) {
      slack_col[i] = aux;
      at(s, i, aux) = 1.0;
      s.basis[i] = aux;
      s.identity_col[i] = aux;
      ++aux;
    } else if (raws[i].sense == RowSense::kGe) {
      slack_col[i] = aux;
      at(s, i, aux) = -1.0;
      ++aux;
    }
  }
  for (int i = 0; i < s.m; ++i) {
    if (s.basis[i] >= 0) continue;  // has a basic slack already
    art_col[i] = aux;
    at(s, i, aux) = 1.0;
    s.artificial[aux] = 1;
    s.basis[i] = aux;
    s.identity_col[i] = aux;
    ++aux;
  }
  assert(aux == s.ncols);
  return s;
}

struct PhaseResult {
  Status status = Status::kOptimal;
  long iterations = 0;
};

// Runs the simplex on `s` minimizing `phase_cost` until optimal, unbounded,
// or the iteration budget is exhausted.  `forbid` marks columns that must
// never enter the basis (phase-2 artificials).
PhaseResult run_phase(Standard& s, const std::vector<double>& phase_cost,
                      const std::vector<char>& forbid,
                      const SimplexOptions& opts, long iter_budget) {
  const int m = s.m, n = s.ncols;
  // Reduced costs: cbar_j = c_j - sum_i c_B[i] * T[i][j].
  std::vector<double> cbar(phase_cost);
  for (int i = 0; i < m; ++i) {
    const double cb = phase_cost[s.basis[i]];
    if (cb == 0.0) continue;
    const double* row = &s.tab[static_cast<std::size_t>(i) * (n + 1)];
    for (int j = 0; j < n; ++j) cbar[j] -= cb * row[j];
  }

  PhaseResult res;
  long degenerate_run = 0;
  bool bland = false;
  for (long iter = 0; iter < iter_budget; ++iter) {
    // Basic columns must show zero reduced cost; clamp drift.
    for (int i = 0; i < m; ++i) cbar[s.basis[i]] = 0.0;

    // --- Pricing. ---
    int enter = -1;
    if (!bland) {
      double best = -opts.cost_tol;
      for (int j = 0; j < n; ++j) {
        if (forbid[j]) continue;
        if (cbar[j] < best) {
          best = cbar[j];
          enter = j;
        }
      }
    } else {
      for (int j = 0; j < n; ++j) {
        if (forbid[j]) continue;
        if (cbar[j] < -opts.cost_tol) {
          enter = j;
          break;
        }
      }
    }
    if (enter < 0) {
      res.iterations = iter;
      return res;  // optimal for this phase
    }

    // --- Ratio test (with the zero-artificial guard). ---
    int leave = -1;
    double best_ratio = kInf, best_pivot = 0.0;
    for (int i = 0; i < m; ++i) {
      const double a = at(s, i, enter);
      const double b = rhs(s, i);
      // Basic artificial stuck at zero: pivot it out on any nonzero entry so
      // it can never become positive again.
      if (s.artificial[s.basis[i]] && std::abs(b) <= opts.feas_tol &&
          std::abs(a) > opts.pivot_tol) {
        leave = i;
        best_ratio = 0.0;
        best_pivot = std::abs(a);
        break;
      }
      if (a > opts.pivot_tol) {
        const double ratio = b / a;
        if (ratio < best_ratio - 1e-12 ||
            (ratio < best_ratio + 1e-12 && std::abs(a) > best_pivot)) {
          best_ratio = ratio;
          best_pivot = std::abs(a);
          leave = i;
        }
      }
    }
    if (leave < 0) {
      res.status = Status::kUnbounded;
      res.iterations = iter;
      return res;
    }
    if (bland) {
      // Bland: among rows achieving the minimum ratio, leave the smallest
      // basis index (recompute strictly).
      double min_ratio = kInf;
      for (int i = 0; i < m; ++i) {
        const double a = at(s, i, enter);
        if (a > opts.pivot_tol) min_ratio = std::min(min_ratio, rhs(s, i) / a);
      }
      leave = -1;
      int best_var = INT_MAX;
      for (int i = 0; i < m; ++i) {
        const double a = at(s, i, enter);
        if (a > opts.pivot_tol &&
            rhs(s, i) / a <= min_ratio + opts.feas_tol &&
            s.basis[i] < best_var) {
          best_var = s.basis[i];
          leave = i;
        }
      }
      if (leave < 0) {
        res.status = Status::kUnbounded;
        res.iterations = iter;
        return res;
      }
      best_ratio = min_ratio;
    }

    degenerate_run = (best_ratio <= opts.feas_tol) ? degenerate_run + 1 : 0;
    if (degenerate_run > 2 * (m + n)) bland = true;

    // --- Pivot. ---
    const double piv = at(s, leave, enter);
    double* prow = &s.tab[static_cast<std::size_t>(leave) * (n + 1)];
    const double inv = 1.0 / piv;
    for (int j = 0; j <= n; ++j) prow[j] *= inv;
    for (int i = 0; i < m; ++i) {
      if (i == leave) continue;
      const double f = at(s, i, enter);
      if (f == 0.0) continue;
      double* row = &s.tab[static_cast<std::size_t>(i) * (n + 1)];
      for (int j = 0; j <= n; ++j) row[j] -= f * prow[j];
      row[enter] = 0.0;
    }
    {
      const double f = cbar[enter];
      if (f != 0.0)
        for (int j = 0; j < n; ++j) cbar[j] -= f * prow[j];
      cbar[enter] = 0.0;
    }
    s.basis[leave] = enter;
  }
  res.status = Status::kLimit;
  res.iterations = iter_budget;
  return res;
}

double phase_objective(const Standard& s, const std::vector<double>& cost) {
  double v = 0.0;
  for (int i = 0; i < s.m; ++i)
    v += cost[s.basis[i]] *
         s.tab[static_cast<std::size_t>(i) * (s.ncols + 1) + s.ncols];
  return v;
}

}  // namespace

LpSolution solve_lp_tableau(const LpProblem& p, const SimplexOptions& opts) {
  LpSolution sol;
  Standard s = build_standard(p);
  const int m = s.m, n = s.ncols;

  // --- Phase 1: minimize the sum of artificials. ---
  bool any_art = std::any_of(s.artificial.begin(), s.artificial.end(),
                             [](char a) { return a != 0; });
  long iters = 0;
  if (any_art) {
    std::vector<double> c1(n, 0.0);
    for (int j = 0; j < n; ++j)
      if (s.artificial[j]) c1[j] = 1.0;
    std::vector<char> forbid(n, 0);
    PhaseResult r1 = run_phase(s, c1, forbid, opts, opts.max_iterations);
    iters += r1.iterations;
    if (r1.status == Status::kLimit) {
      sol.status = Status::kLimit;
      sol.iterations = iters;
      return sol;
    }
    // Phase-1 LP is bounded below by 0, so kUnbounded cannot occur here.
    if (phase_objective(s, c1) > 1e2 * opts.feas_tol * (1.0 + m)) {
      sol.status = Status::kInfeasible;
      sol.iterations = iters;
      return sol;
    }
    // Pivot residual zero-valued artificials out of the basis when possible.
    for (int i = 0; i < m; ++i) {
      if (!s.artificial[s.basis[i]]) continue;
      for (int j = 0; j < n; ++j) {
        if (s.artificial[j]) continue;
        if (std::abs(at(s, i, j)) > 1e3 * opts.pivot_tol) {
          const double piv = at(s, i, j);
          double* prow = &s.tab[static_cast<std::size_t>(i) * (n + 1)];
          const double inv = 1.0 / piv;
          for (int k = 0; k <= n; ++k) prow[k] *= inv;
          for (int r = 0; r < m; ++r) {
            if (r == i) continue;
            const double f = at(s, r, j);
            if (f == 0.0) continue;
            double* row = &s.tab[static_cast<std::size_t>(r) * (n + 1)];
            for (int k = 0; k <= n; ++k) row[k] -= f * prow[k];
            row[j] = 0.0;
          }
          s.basis[i] = j;
          break;
        }
      }
    }
  }

  // --- Phase 2. ---
  std::vector<char> forbid(n, 0);
  for (int j = 0; j < n; ++j) forbid[j] = s.artificial[j];
  PhaseResult r2 = run_phase(s, s.cost, forbid, opts,
                             opts.max_iterations - iters);
  iters += r2.iterations;
  sol.iterations = iters;
  if (r2.status == Status::kUnbounded) {
    sol.status = Status::kUnbounded;
    return sol;
  }
  if (r2.status == Status::kLimit) {
    sol.status = Status::kLimit;
    return sol;
  }

  // --- Extraction: primal values. ---
  std::vector<double> t(n, 0.0);
  for (int i = 0; i < m; ++i) t[s.basis[i]] = rhs(s, i);
  sol.x.assign(p.num_cols(), 0.0);
  for (int j = 0; j < p.num_cols(); ++j) {
    const Subst& sub = s.subst[j];
    switch (sub.kind) {
      case SubstKind::kShift: sol.x[j] = sub.shift + t[sub.col1]; break;
      case SubstKind::kNegShift: sol.x[j] = sub.shift - t[sub.col1]; break;
      case SubstKind::kSplit: sol.x[j] = t[sub.col1] - t[sub.col2]; break;
    }
  }
  sol.obj = p.eval_obj(sol.x);

  // --- Duals from the initial-identity columns. ---
  // For row i whose initial identity column is q:  y_i = c_q - cbar_q, where
  // cbar_q = c_q - sum c_B[i'] T[i'][q]; both slack and artificial columns
  // carry zero phase-2 cost, so y_i = sum_i' c_B[i'] * T[i'][q].
  sol.y.assign(s.num_original_rows, 0.0);
  for (int i = 0; i < s.num_original_rows; ++i) {
    const int q = s.identity_col[i];
    double y = 0.0;
    for (int r = 0; r < m; ++r) {
      const double cb = s.cost[s.basis[r]];
      if (cb != 0.0) y += cb * at(s, r, q);
    }
    // Undo row negation; undo the min/max objective flip.
    y *= s.row_scale[i];
    sol.y[i] = s.obj_scale * y;
  }

  sol.status = Status::kOptimal;
  return sol;
}

}  // namespace xplain::solver
