// Simplex basis factorization: sparse LU with Forrest-Tomlin updates, a
// dense fallback for tiny bases, and hyper-sparse BTRAN.
//
// This is the basis engine behind the revised simplex.  The basis matrix B
// (one CSC column per basis slot) is kept in one of two representations:
//
//   * Sparse (the default): P B Q = L U with Markowitz-style pivot
//     selection — columns enter in increasing-sparsity order and, within a
//     column, the pivot row minimizes static row degree among candidates
//     within a threshold of the column's numerical maximum (threshold
//     partial pivoting).  The factorization is built left-looking (sparse
//     triangular solve per column with a depth-first reach, CSparse-style).
//     Pivots apply Forrest-Tomlin updates to U itself: the leaving column
//     is replaced by the entering column's partial FTRAN (the "spike"),
//     moved to the end of a dynamic triangular order, and the broken row is
//     eliminated with row operations recorded in a row-eta file.  Unlike
//     product-form etas, the update file grows with the ROW fill of each
//     update instead of the full spike, so long warm pivot runs (the
//     dp_gap re-solve storms) stay sparse.  An update whose new diagonal is
//     numerically degenerate is REJECTED (update() returns false) and the
//     caller refactorizes.  The U^T pass of BTRAN is hyper-sparse: when the
//     right-hand side has few nonzeros (unit rows in dual ratio tests,
//     phase-2 cost rows with few costed basics), a depth-first reach over
//     the row adjacency of U visits only the columns the solution can
//     touch instead of gathering all of U.
//
//   * Dense (m <= dense threshold, chosen by configure()): a dense LU with
//     partial pivoting and product-form eta updates.  The sampling loops
//     solve millions of LPs with a handful of rows each; for those the
//     sparse machinery's index juggling costs more than O(m^2) flops on a
//     contiguous matrix.
//
// The product-form eta path is also kept for the sparse representation
// (configure(..., forrest_tomlin=false)) as a differential baseline.
//
// Index spaces (shared with RevisedSimplex):
//   * "row"  = constraint row of the LpProblem, 0..m-1;
//   * "slot" = basis position (basis_[slot] is the variable basic in
//     constraint row `slot`), so column `slot` of B is the CSC column of
//     that variable.  FTRAN outputs and BTRAN inputs are slot-indexed;
//     FTRAN inputs and BTRAN outputs are row-indexed.  Product-form etas
//     live purely in slot space.
//   * "step" = pivot order of the factorization; Forrest-Tomlin row etas
//     and the dynamic triangular order live in step space, which is FIXED
//     per factorization (updates reorder steps, they never renumber them).
//
// Everything is deterministic — no randomization, no parallelism, and the
// hyper-sparse/dense-path switch depends only on deterministic nonzero
// counts — so solver results stay pure functions of the problem,
// preserving the repo's bitwise parallel determinism contract.
#pragma once

#include <vector>

namespace xplain::solver {

class LuFactorization {
 public:
  /// Chooses the representation and update strategy for subsequent
  /// factorize() calls: `dense` selects the dense tiny-basis path (which
  /// always uses product-form etas); otherwise `forrest_tomlin` selects FT
  /// updates over the product-form eta file.  Takes effect at the next
  /// factorize(); the active representation is never reshaped in place.
  void configure(bool dense, bool forrest_tomlin) {
    cfg_dense_ = dense;
    cfg_ft_ = forrest_tomlin;
  }

  /// Factorizes the m x m basis whose slot-k column is CSC column
  /// `basis_cols[k]` of (cp, ci, cx).  Returns false on numerical
  /// singularity; the previous factorization (and its update file) is left
  /// untouched so callers can keep operating on the stale representation.
  /// On success the update file is cleared.
  bool factorize(int m, const std::vector<int>& cp, const std::vector<int>& ci,
                 const std::vector<double>& cx,
                 const std::vector<int>& basis_cols);

  /// Solves B x = b in place: on entry `x` holds b (row-indexed), on exit
  /// the solution (slot-indexed).  Applies the update file.
  void ftran(std::vector<double>& x) const;

  /// Solves B^T y = c in place: on entry `y` holds c (slot-indexed), on
  /// exit the solution (row-indexed).  Applies the update file.  The U^T
  /// pass goes hyper-sparse when c has few nonzeros.
  void btran(std::vector<double>& y) const;

  /// Applies the basis change after a pivot in slot `leave_slot` with
  /// alpha = B^-1 A_enter (the FTRAN of the entering column, slot-indexed;
  /// the caller guarantees |alpha[leave_slot]| is an admissible pivot, and
  /// that this call directly follows the ftran() of the entering column —
  /// the Forrest-Tomlin spike is stashed there).  Returns false when the
  /// update is numerically rejected (degenerate new diagonal); the
  /// representation is then unusable and the caller MUST refactorize.
  bool update(int leave_slot, const std::vector<double>& alpha);

  /// Number of updates absorbed since the last successful factorize
  /// (== pivots applied without refactorizing).
  int update_count() const { return update_count_; }
  /// Total nonzeros in the update file — product-form eta entries, or
  /// Forrest-Tomlin row-eta plus spike entries — the accumulated-fill
  /// measure the refactorization triggers in SimplexOptions bound.
  long update_nnz() const { return update_nnz_; }
  /// Nonzeros in L + U (diagonal included) of the last factorization.
  long factor_nnz() const;

 private:
  bool factorize_dense(int m, const std::vector<int>& cp,
                       const std::vector<int>& ci,
                       const std::vector<double>& cx,
                       const std::vector<int>& basis_cols);
  bool ft_update(int leave_slot, const std::vector<double>& alpha);
  void push_eta(int leave_slot, const std::vector<double>& alpha);
  void apply_etas_ftran(std::vector<double>& x) const;
  void apply_etas_btran(std::vector<double>& y) const;
  void ftran_dense(std::vector<double>& x) const;
  void btran_dense(std::vector<double>& y) const;
  void solve_ut(int nseeds) const;  // U^T pass on step_, dense or DFS reach
  int dfs(int row, int top, const std::vector<int>& lp,
          const std::vector<int>& li);

  int m_ = 0;

  // Mode requested by configure() / published by the last factorize().
  bool cfg_dense_ = false, cfg_ft_ = true;
  bool dense_active_ = false, ft_active_ = false;

  // L: unit lower triangular, stored by pivot step; entries are multipliers
  // (the implicit 1.0 pivot entry is not stored) with ORIGINAL row indices
  // (pinv_ maps original row -> pivot step).  Static across updates.
  std::vector<int> lp_, li_;
  std::vector<double> lx_;
  // U, stored by column in step space; entries' indices are steps EARLIER
  // in the dynamic triangular order, the diagonal is udiag_.  Column k
  // occupies ui_/ux_[ucolp_[k] .. ucolp_[k] + ulen_[k]); Forrest-Tomlin
  // spikes append fresh slices at the end (the stale slice is abandoned
  // until the next refactorization, which rebuilds the arrays anyway).
  std::vector<int> ui_;
  std::vector<double> ux_;
  std::vector<int> ucolp_, ulen_;
  std::vector<double> udiag_;
  // Row adjacency of U: urows_[r] lists the column steps holding an entry
  // at row step r (diagonal excluded) — drives both the FT row elimination
  // and the hyper-sparse BTRAN reach.  Maintained across updates.
  std::vector<std::vector<int>> urows_;
  // Dynamic triangular order: uorder_[p] = step at position p,
  // upos_ = its inverse.  Identity after factorize(); FT updates move the
  // respiked step to the last position.
  std::vector<int> uorder_, upos_;
  std::vector<int> pivrow_;    // step -> original constraint row
  std::vector<int> colorder_;  // step -> basis slot
  std::vector<int> sinv_;      // basis slot -> step (inverse of colorder_)
  std::vector<int> pinv_;      // original row -> step (-1 while factoring)

  // Forrest-Tomlin row-eta file (step space): eta e eliminates row
  // re_t_[e] with multipliers re_val_ against rows re_idx_ over
  // [re_start_[e], re_start_[e+1]).  FTRAN applies them oldest-first
  // between the L and U passes; BTRAN transposes them newest-first.
  std::vector<int> re_start_{0};
  std::vector<int> re_t_;
  std::vector<int> re_idx_;
  std::vector<double> re_val_;
  // Spike stash: ftran() records its step-space intermediate (after L and
  // row etas, before U) — exactly the respiked column of the next update.
  mutable std::vector<double> ftw_;
  mutable bool ftw_valid_ = false;

  // Product-form eta file (slot space; dense and non-FT sparse modes), flat
  // storage: eta e pivots slot eta_slot_[e] with pivot value eta_piv_[e]
  // and off-pivot entries eta_idx_/eta_val_[eta_start_[e]..eta_start_[e+1]).
  std::vector<int> eta_start_{0};
  std::vector<int> eta_slot_;
  std::vector<double> eta_piv_;
  std::vector<int> eta_idx_;
  std::vector<double> eta_val_;

  int update_count_ = 0;
  long update_nnz_ = 0;
  long fnnz_ = 0;  // nnz(L) + nnz(U) + m as of the last factorize

  // Dense representation: column-major m x m holding L (unit, below the
  // diagonal) and U in place, with LAPACK-style row-swap pivoting.
  std::vector<double> dmat_, bdmat_;
  std::vector<int> dipiv_, bdipiv_;

  // Factorization / solve scratch (kept for capacity reuse; the solver is
  // thread_local in solve_lp, so no sharing).
  std::vector<int> border_, bpinv_, bpivrow_, bcolorder_;
  std::vector<int> blp_, bli_, bup_, bui_;
  std::vector<double> blx_, bux_, budiag_;
  std::vector<int> xi_, stack_, pstack_, visited_, rdeg_;
  std::vector<double> xw_;
  std::vector<double> ftwork_;           // FT elimination row accumulator
  mutable std::vector<double> step_;     // step-space intermediate for solves
  mutable std::vector<int> hvis_, hstack_, hpos_, hord_;  // BTRAN reach
};

}  // namespace xplain::solver
