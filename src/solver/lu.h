// Sparse LU factorization of a simplex basis, with eta-file updates.
//
// This replaces the dense O(m^2)-per-operation basis inverse the revised
// simplex carried through PR 3-5: the basis matrix B (one CSC column per
// basis slot) is factorized as P B Q = L U with Markowitz-style pivot
// selection — columns enter in increasing-sparsity order and, within a
// column, the pivot row minimizes static row degree among candidates
// within a threshold of the column's numerical maximum (threshold partial
// pivoting) — and each simplex pivot appends one product-form eta column
// instead of touching the factors.  FTRAN/BTRAN cost O(nnz(L) + nnz(U) +
// nnz(etas) + m) instead of O(m^2).
//
// Index spaces (shared with RevisedSimplex):
//   * "row"  = constraint row of the LpProblem, 0..m-1;
//   * "slot" = basis position (basis_[slot] is the variable basic in
//     constraint row `slot`), so column `slot` of B is the CSC column of
//     that variable.  FTRAN outputs and BTRAN inputs are slot-indexed;
//     FTRAN inputs and BTRAN outputs are row-indexed.  Etas live purely in
//     slot space.
//
// The factorization is built left-looking (sparse triangular solve per
// column with a depth-first reach, CSparse-style), entirely deterministic
// — no randomization, no parallelism — so solver results stay pure
// functions of the problem, preserving the repo's bitwise parallel
// determinism contract.
#pragma once

#include <vector>

namespace xplain::solver {

class LuFactorization {
 public:
  /// Factorizes the m x m basis whose slot-k column is CSC column
  /// `basis_cols[k]` of (cp, ci, cx).  Returns false on numerical
  /// singularity; the previous factorization (and its eta file) is left
  /// untouched so callers can keep operating on the stale representation.
  /// On success the eta file is cleared.
  bool factorize(int m, const std::vector<int>& cp, const std::vector<int>& ci,
                 const std::vector<double>& cx,
                 const std::vector<int>& basis_cols);

  /// Solves B x = b in place: on entry `x` holds b (row-indexed), on exit
  /// the solution (slot-indexed).  Applies the eta file.
  void ftran(std::vector<double>& x) const;

  /// Solves B^T y = c in place: on entry `y` holds c (slot-indexed), on
  /// exit the solution (row-indexed).  Applies the eta file.
  void btran(std::vector<double>& y) const;

  /// Appends a product-form eta after a pivot in slot `leave_slot` with
  /// alpha = B^-1 A_enter (the FTRAN of the entering column, slot-indexed).
  /// The caller guarantees |alpha[leave_slot]| is an admissible pivot.
  void push_eta(int leave_slot, const std::vector<double>& alpha);

  /// Number of etas appended since the last successful factorize (== pivots
  /// applied in product form).
  int eta_count() const { return static_cast<int>(eta_slot_.size()); }
  /// Total nonzeros in the eta file — the accumulated-fill measure the
  /// refactorization triggers in SimplexOptions bound.
  long eta_nnz() const { return static_cast<long>(eta_idx_.size()); }
  /// Nonzeros in L + U (diagonal included) of the last factorization.
  long factor_nnz() const {
    return static_cast<long>(li_.size() + ui_.size()) + m_;
  }

 private:
  int dfs(int row, int top, const std::vector<int>& lp,
          const std::vector<int>& li);

  int m_ = 0;

  // L: unit lower triangular, stored by pivot step; entries are multipliers
  // (the implicit 1.0 pivot entry is not stored) with ORIGINAL row indices
  // (pinv_ maps original row -> pivot step).
  std::vector<int> lp_, li_;
  std::vector<double> lx_;
  // U: upper triangular in step space, stored by column (= pivot step);
  // entries' indices are earlier pivot steps; the diagonal is udiag_.
  std::vector<int> up_, ui_;
  std::vector<double> ux_;
  std::vector<double> udiag_;
  std::vector<int> pivrow_;    // step -> original constraint row
  std::vector<int> colorder_;  // step -> basis slot
  std::vector<int> pinv_;      // original row -> step (-1 while factoring)

  // Eta file (slot space), flat storage: eta e pivots slot eta_slot_[e]
  // with pivot value eta_piv_[e] and off-pivot entries
  // eta_idx_/eta_val_[eta_start_[e] .. eta_start_[e+1]).
  std::vector<int> eta_start_{0};
  std::vector<int> eta_slot_;
  std::vector<double> eta_piv_;
  std::vector<int> eta_idx_;
  std::vector<double> eta_val_;

  // Factorization / solve scratch (kept for capacity reuse; the solver is
  // thread_local in solve_lp, so no sharing).
  std::vector<int> border_, bpinv_, bpivrow_, bcolorder_;
  std::vector<int> blp_, bli_, bup_, bui_;
  std::vector<double> blx_, bux_, budiag_;
  std::vector<int> xi_, stack_, pstack_, visited_, rdeg_;
  std::vector<double> xw_;
  mutable std::vector<double> step_;  // step-space intermediate for solves
};

}  // namespace xplain::solver
