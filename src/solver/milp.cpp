#include "solver/milp.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>
#include <vector>

#include "solver/presolve.h"
#include "util/logging.h"
#include "util/timer.h"

namespace xplain::solver {

namespace {

// Branch decisions live in an arena: each entry holds ONE new bound and a
// link to its parent, so siblings share their common prefix instead of each
// carrying a full copy of the path (the old shared_ptr<Node> scheme copied
// the whole override vector into both children at every branch).
struct BranchArena {
  struct Entry {
    int parent;  // arena index, -1 for the root
    int col;
    double lo, hi;
  };
  std::vector<Entry> pool;

  int add(int parent, int col, double lo, double hi) {
    pool.push_back({parent, col, lo, hi});
    return static_cast<int>(pool.size()) - 1;
  }

  /// Applies the chain of bound intersections ending at `id` to `sub`.
  void apply(int id, LpProblem& sub) const {
    for (; id >= 0; id = pool[id].parent) {
      const Entry& e = pool[id];
      sub.set_bounds(e.col, std::max(e.lo, sub.lo(e.col)),
                     std::min(e.hi, sub.hi(e.col)));
    }
  }
};

struct OpenNode {
  double parent_bound;  // LP bound inherited from the parent (min-sense)
  int depth = 0;
  int branch = -1;  // arena index of the last bound decision
  // The parent's optimal basis; both children share one copy and the LP
  // re-solve repairs it with dual simplex instead of starting cold.
  std::shared_ptr<const Basis> warm;
};

struct NodeCompare {
  // Best-bound first: smaller parent bound (min sense) wins; deeper node
  // breaks ties so plunges finish.
  bool operator()(const OpenNode& a, const OpenNode& b) const {
    if (a.parent_bound != b.parent_bound)
      return a.parent_bound > b.parent_bound;
    return a.depth < b.depth;
  }
};

// Most fractional integer column, or -1 if integral.
int pick_branch_col(const LpProblem& p, const std::vector<double>& x,
                    double int_tol) {
  int best = -1;
  double best_frac_dist = int_tol;
  for (int j = 0; j < p.num_cols(); ++j) {
    if (!p.integer(j)) continue;
    const double f = x[j] - std::floor(x[j]);
    const double dist = std::min(f, 1.0 - f);
    if (dist > best_frac_dist) {
      best_frac_dist = dist;
      best = j;
    }
  }
  return best;
}

}  // namespace

MilpResult solve_milp(const LpProblem& root, const MilpOptions& opts) {
  MilpResult res;
  util::Timer timer;

  // Work on a min-sense copy so bounding logic has one orientation.
  LpProblem p = root;
  const double flip = (root.sense == Sense::kMaximize) ? -1.0 : 1.0;
  if (root.sense == Sense::kMaximize) {
    p.sense = Sense::kMinimize;
    for (int j = 0; j < p.num_cols(); ++j) p.set_obj(j, -p.obj(j));
  }

  double incumbent_obj = kInf;  // min-sense
  std::vector<double> incumbent_x;

  auto try_incumbent = [&](const std::vector<double>& x, double obj) {
    if (obj >= incumbent_obj - 1e-12) return;
    // Snap integer columns first, then verify the *snapped* point: a raw LP
    // point can look integral within tolerance while its rounding violates a
    // tight big-M row.
    std::vector<double> snapped = x;
    for (int j = 0; j < p.num_cols(); ++j)
      if (p.integer(j)) snapped[j] = std::round(snapped[j]);
    if (!root.feasible(snapped, 1e-6)) return;
    incumbent_obj = obj;
    incumbent_x = std::move(snapped);
    if (opts.on_incumbent) opts.on_incumbent(flip * obj, incumbent_x);
    XPLAIN_DEBUG << "milp: incumbent " << flip * obj;
  };

  // Rounding heuristic: snap integer columns of an LP point and re-check.
  auto round_heuristic = [&](const std::vector<double>& x) {
    std::vector<double> r = x;
    for (int j = 0; j < p.num_cols(); ++j)
      if (p.integer(j)) r[j] = std::round(r[j]);
    if (p.feasible(r, 1e-7)) try_incumbent(r, p.eval_obj(r));
  };

  BranchArena arena;
  std::priority_queue<OpenNode, std::vector<OpenNode>, NodeCompare> open;
  open.push(OpenNode{-kInf, 0, -1, nullptr});

  // One scratch problem for every node: rows never change down the tree, so
  // re-solving a node is "restore root bounds, apply the branch chain,
  // propagate" — no LpProblem copy, and the LP warm-starts from the parent
  // basis instead of rebuilding its factorization from scratch.
  LpProblem sub = p;
  const std::vector<double> root_lo = p.lower_bounds();
  const std::vector<double> root_hi = p.upper_bounds();
  // Node LPs need the basis (for the children's warm starts) but never the
  // row duals; skip that extraction on every node.
  SimplexOptions node_lp = opts.lp;
  node_lp.want_duals = false;

  bool hit_limit = false;

  while (!open.empty()) {
    if (res.nodes >= opts.max_nodes || timer.seconds() > opts.time_limit_s) {
      hit_limit = true;
      break;
    }
    OpenNode node = open.top();
    open.pop();
    if (node.parent_bound >= incumbent_obj - opts.gap_tol) continue;  // pruned

    // Apply node bounds, then propagate them through the constraints: on
    // big-M indicator models this fixes most binaries without an LP.
    sub.set_all_bounds(root_lo, root_hi);
    arena.apply(node.branch, sub);
    if (!propagate_bounds(sub).feasible) {
      ++res.nodes;
      continue;
    }

    LpSolution lp = solve_lp(sub, node_lp, node.warm.get());
    ++res.nodes;
    ++res.lp_solves;
    res.lp_iterations += lp.iterations;
    if (lp.status == Status::kInfeasible) continue;
    if (lp.status == Status::kUnbounded) {
      // An unbounded relaxation at the root means the MILP is unbounded (or
      // its integer restriction is; either way we cannot bound it).
      if (node.depth == 0 && !std::isfinite(incumbent_obj)) {
        res.status = Status::kUnbounded;
        return res;
      }
      continue;
    }
    if (lp.status != Status::kOptimal) {
      hit_limit = true;
      continue;
    }
    const double bound = lp.obj;
    if (bound >= incumbent_obj - opts.gap_tol) continue;

    const int bc = pick_branch_col(p, lp.x, opts.int_tol);
    if (bc < 0) {
      try_incumbent(lp.x, bound);
      continue;
    }
    round_heuristic(lp.x);

    const double v = lp.x[bc];
    auto warm = std::make_shared<const Basis>(std::move(lp.basis));
    open.push(OpenNode{bound, node.depth + 1,
                       arena.add(node.branch, bc, -kInf, std::floor(v)),
                       warm});
    open.push(OpenNode{bound, node.depth + 1,
                       arena.add(node.branch, bc, std::ceil(v), kInf),
                       std::move(warm)});
  }

  const bool have_incumbent = std::isfinite(incumbent_obj);
  if (hit_limit) {
    res.status = have_incumbent ? Status::kLimit : Status::kError;
  } else {
    res.status = have_incumbent ? Status::kOptimal : Status::kInfeasible;
  }
  if (have_incumbent) {
    res.obj = flip * incumbent_obj;
    res.x = std::move(incumbent_x);
  }
  // Proven bound: min over remaining open nodes (or the incumbent if solved).
  double open_bound = incumbent_obj;
  if (hit_limit && !open.empty())
    open_bound = std::min(open_bound, open.top().parent_bound);
  res.best_bound = flip * open_bound;
  return res;
}

}  // namespace xplain::solver
