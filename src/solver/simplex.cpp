#include "solver/simplex.h"

#include <algorithm>
#include <atomic>
#include <climits>
#include <cmath>
#include <vector>

#include "solver/lu.h"
#include "util/parallel.h"
#include "util/logging.h"

namespace xplain::solver {

namespace {

// Thread-inclusive LP accounting (see LpCounters in lp.h): the hot path
// bumps plain thread_local longs — no atomic traffic per solve.  Tallies
// flow UP the spawn tree: a util::parallel_chunks worker hands its counts
// to the spawning thread at join (the pool-accumulator hook below), so a
// thread's counters include every pool it ran, transitively — that is what
// makes per-job counter deltas exact even when concurrent Engine/batch
// workers each run their own inner pools.  Threads not spawned by
// parallel_chunks flush to the retired atomics when they exit.
//
// Concurrency note for the static-analysis layer: the retired totals are
// monotone relaxed atomics on purpose — there is no mutex and nothing to
// annotate GUARDED_BY.  lp_counters() sums them with the CALLING thread's
// own tallies, so a concurrent exiting thread can only make a snapshot
// conservatively stale, never torn; per-region deltas on one thread are
// exact (lp.h).  TSan checks the exit-flush handoff; clang thread-safety
// has no obligations here.
std::atomic<long> g_retired_solves{0};
std::atomic<long> g_retired_iterations{0};
std::atomic<long> g_retired_warm_solves{0};
std::atomic<long> g_retired_columns_priced{0};
std::atomic<long> g_retired_candidate_refills{0};

struct ThreadLpCounters {
  long solves = 0;
  long iterations = 0;
  long warm_solves = 0;
  long columns_priced = 0;
  long candidate_refills = 0;
  ~ThreadLpCounters() {
    g_retired_solves.fetch_add(solves, std::memory_order_relaxed);
    g_retired_iterations.fetch_add(iterations, std::memory_order_relaxed);
    g_retired_warm_solves.fetch_add(warm_solves, std::memory_order_relaxed);
    g_retired_columns_priced.fetch_add(columns_priced,
                                       std::memory_order_relaxed);
    g_retired_candidate_refills.fetch_add(candidate_refills,
                                          std::memory_order_relaxed);
  }
};

thread_local ThreadLpCounters t_lp;

void capture_thread_lp(std::vector<long>& out) {
  out.assign({t_lp.solves, t_lp.iterations, t_lp.warm_solves,
              t_lp.columns_priced, t_lp.candidate_refills});
  t_lp.solves = t_lp.iterations = t_lp.warm_solves = 0;  // exit flushes 0
  t_lp.columns_priced = t_lp.candidate_refills = 0;
}

void absorb_thread_lp(const std::vector<long>& in) {
  t_lp.solves += in[0];
  t_lp.iterations += in[1];
  t_lp.warm_solves += in[2];
  t_lp.columns_priced += in[3];
  t_lp.candidate_refills += in[4];
}

// simplex.cpp's object file always links (solve_lp is referenced), so this
// initializer reliably wires the hook before any pool runs.
const bool g_lp_hook_registered =
    (util::register_pool_accumulator(capture_thread_lp, absorb_thread_lp),
     true);

// Variable status.  Nonbasic variables rest at a bound (or at 0 when free);
// fixed variables (lo == hi) are nonbasic-at-lower and never priced.
enum class VStat : std::uint8_t { kBasic, kAtLower, kAtUpper, kFree };

/// Bounded-variable revised simplex over the standardized system
///   A x + I s = b,   lo <= (x, s) <= hi,   minimize c'x,
/// with one slack per row (Le: s in [0, inf), Ge: s in (-inf, 0],
/// Eq: s fixed at 0).  Columns are stored sparsely (CSC); the basis is an
/// LU factorization (solver/lu.h: sparse with Forrest-Tomlin updates, or
/// dense for tiny bases) refreshed per pivot by update() with periodic
/// refactorization — and an immediate refactorization whenever an update
/// is numerically rejected.
class RevisedSimplex {
 public:
  /// Rebinds the solver to a problem.  Instances are reused (thread_local in
  /// solve_lp) so the dozens of internal buffers keep their capacity across
  /// the tiny back-to-back solves the sampling loops issue.
  void reset(const LpProblem& p, const SimplexOptions& opts) {
    p_ = &p;
    opts_ = &opts;
    iters_ = 0;
    bland_ = false;
    factorize_failed_ = false;
    degen_run_ = 0;
    scan_start_ = 0;
    pivots_since_refactor_ = 0;
    refactor_calls_ = 0;
    update_calls_ = 0;
    refactorizations_ = 0;
    build();
  }

  LpSolution run(const Basis* warm);

 private:
  enum class Step { kOptimal, kUnbounded, kLimit, kError };

  void build();
  void add_artificial(int row, double sign);
  bool factorize();
  bool should_refactor() const;
  void set_nonbasic_value(int j);
  void compute_basic_values();
  void ftran(int j, std::vector<double>& out) const;  // out = B^-1 A_j
  void btran_costs(const std::vector<double>& cost,
                   std::vector<double>& y) const;     // y = c_B' B^-1
  void btran_unit(int row, std::vector<double>& out) const;  // e_row' B^-1
  double reduced_cost(int j, const std::vector<double>& y,
                      const std::vector<double>& cost) const;
  void pivot(int enter, int leave_row, const std::vector<double>& alpha);
  void refactorize();

  double violation(int j, const std::vector<double>& cost) const;
  int price_full(const std::vector<double>& cost) const;
  int price_partial(const std::vector<double>& cost);
  int refill_candidates(const std::vector<double>& cost);

  Step primal(const std::vector<double>& cost, long budget);
  Step dual_repair(long budget);
  bool warm_install(const Basis& warm);
  bool dual_feasible(const std::vector<double>& y) const;

  LpSolution extract();
  void export_basis(LpSolution& sol) const;

  bool fixed(int j) const { return lo_[j] == hi_[j]; }

  const LpProblem* p_ = nullptr;
  const SimplexOptions* opts_ = nullptr;

  // Standardized problem (min sense).
  int m_ = 0;        // rows
  int nstruct_ = 0;  // original columns
  int nreal_ = 0;    // nstruct_ + m_ (structural + slacks)
  int ntotal_ = 0;   // nreal_ + artificials
  std::vector<int> cp_;        // CSC column pointers (ntotal_ + 1)
  std::vector<int> ci_;        // CSC row indices
  std::vector<double> cx_;     // CSC values
  std::vector<double> cost_;   // phase-2 cost (min sense)
  std::vector<double> lo_, hi_;
  std::vector<double> b_;
  std::vector<int> art_row_;   // row of each artificial (index - nreal_)
  double obj_scale_ = 1.0;

  // Simplex state.
  std::vector<int> basis_;     // size m_: variable basic in row i
  std::vector<VStat> stat_;    // size ntotal_
  std::vector<double> x_;      // size ntotal_
  LuFactorization lu_;         // sparse basis factorization + eta file
  long iters_ = 0;
  bool bland_ = false;
  bool factorize_failed_ = false;
  long degen_run_ = 0;
  int pivots_since_refactor_ = 0;
  int refactor_calls_ = 0;     // attempts (drives the fail_refactor_at hook)
  int update_calls_ = 0;       // attempts (drives the fail_update_at hook)
  long refactorizations_ = 0;  // successes (reported in LpSolution)

  // Partial-pricing candidate bucket (column indices; cleared whenever the
  // pricing cost vector changes, i.e. at every primal() entry) and the
  // rotating refill cursor (persists across refills within a solve).
  std::vector<int> cand_;
  int scan_start_ = 0;

  // Scratch.
  std::vector<double> y_, alpha_, work_, rho_, resid_;
  std::vector<int> fill_;
};

void RevisedSimplex::build() {
  m_ = p_->num_rows();
  nstruct_ = p_->num_cols();
  nreal_ = nstruct_ + m_;
  ntotal_ = nreal_;
  obj_scale_ = (p_->sense == Sense::kMaximize) ? -1.0 : 1.0;

  std::size_t nnz = 0;
  for (const auto& r : p_->rows()) nnz += r.coef.size();

  // CSC assembly: count per column, then fill.
  cp_.assign(nreal_ + 1, 0);
  for (const auto& r : p_->rows())
    for (const auto& [j, v] : r.coef) {
      (void)v;
      ++cp_[j + 1];
    }
  for (int i = 0; i < m_; ++i) cp_[nstruct_ + i + 1] = 1;  // slack units
  for (int j = 0; j < nreal_; ++j) cp_[j + 1] += cp_[j];
  ci_.resize(nnz + m_);
  cx_.resize(nnz + m_);
  fill_.assign(cp_.begin(), cp_.end() - 1);
  for (int i = 0; i < m_; ++i) {
    for (const auto& [j, v] : p_->row(i).coef) {
      ci_[fill_[j]] = i;
      cx_[fill_[j]] = v;
      ++fill_[j];
    }
  }
  for (int i = 0; i < m_; ++i) {
    ci_[fill_[nstruct_ + i]] = i;
    cx_[fill_[nstruct_ + i]] = 1.0;
  }

  cost_.assign(nreal_, 0.0);
  lo_.resize(nreal_);
  hi_.resize(nreal_);
  for (int j = 0; j < nstruct_; ++j) {
    cost_[j] = obj_scale_ * p_->obj(j);
    lo_[j] = p_->lo(j);
    hi_[j] = p_->hi(j);
  }
  b_.resize(m_);
  for (int i = 0; i < m_; ++i) {
    const auto& row = p_->row(i);
    b_[i] = row.rhs;
    const int s = nstruct_ + i;
    switch (row.sense) {
      case RowSense::kLe: lo_[s] = 0.0; hi_[s] = kInf; break;
      case RowSense::kGe: lo_[s] = -kInf; hi_[s] = 0.0; break;
      case RowSense::kEq: lo_[s] = 0.0; hi_[s] = 0.0; break;
    }
  }
}

void RevisedSimplex::add_artificial(int row, double sign) {
  cp_.push_back(cp_.back() + 1);
  ci_.push_back(row);
  cx_.push_back(sign);
  cost_.push_back(0.0);
  lo_.push_back(0.0);
  hi_.push_back(kInf);
  art_row_.push_back(row);
  stat_.push_back(VStat::kAtLower);
  x_.push_back(0.0);
  ++ntotal_;
}

bool RevisedSimplex::factorize() {
  ++refactor_calls_;
  if (opts_->fail_refactor_at > 0 && refactor_calls_ == opts_->fail_refactor_at)
    return false;  // test-only injected failure (see SimplexOptions)
  // Representation choice: dense for tiny bases, Forrest-Tomlin vs
  // product-form updates for sparse ones (see SimplexOptions).
  lu_.configure(
      opts_->dense_basis_dim > 0 && m_ <= opts_->dense_basis_dim,
      opts_->ft_updates);
  // lu_.factorize builds into scratch and publishes on success only, so a
  // singular basis leaves the previous factorization (+ update file)
  // untouched.
  if (!lu_.factorize(m_, cp_, ci_, cx_, basis_)) return false;
  ++refactorizations_;
  pivots_since_refactor_ = 0;
  return true;
}

bool RevisedSimplex::should_refactor() const {
  if (pivots_since_refactor_ >= opts_->refactor_every) return true;
  const long enz = lu_.update_nnz();
  if (opts_->refactor_eta_nnz > 0 && enz >= opts_->refactor_eta_nnz)
    return true;
  return opts_->refactor_fill_ratio > 0.0 &&
         static_cast<double>(enz) >=
             opts_->refactor_fill_ratio *
                 static_cast<double>(lu_.factor_nnz());
}

void RevisedSimplex::set_nonbasic_value(int j) {
  switch (stat_[j]) {
    case VStat::kAtLower: x_[j] = lo_[j]; break;
    case VStat::kAtUpper: x_[j] = hi_[j]; break;
    case VStat::kFree: x_[j] = 0.0; break;
    case VStat::kBasic: break;
  }
}

void RevisedSimplex::compute_basic_values() {
  // x_B = B^-1 (b - N x_N).
  work_.assign(m_, 0.0);
  for (int i = 0; i < m_; ++i) work_[i] = b_[i];
  for (int j = 0; j < ntotal_; ++j) {
    if (stat_[j] == VStat::kBasic || x_[j] == 0.0) continue;
    const double v = x_[j];
    for (int t = cp_[j]; t < cp_[j + 1]; ++t) work_[ci_[t]] -= cx_[t] * v;
  }
  lu_.ftran(work_);
  for (int i = 0; i < m_; ++i) x_[basis_[i]] = work_[i];
}

void RevisedSimplex::ftran(int j, std::vector<double>& out) const {
  out.assign(m_, 0.0);
  for (int t = cp_[j]; t < cp_[j + 1]; ++t) out[ci_[t]] += cx_[t];
  lu_.ftran(out);
}

void RevisedSimplex::btran_costs(const std::vector<double>& cost,
                                 std::vector<double>& y) const {
  y.assign(m_, 0.0);
  for (int k = 0; k < m_; ++k) y[k] = cost[basis_[k]];
  lu_.btran(y);
}

void RevisedSimplex::btran_unit(int row, std::vector<double>& out) const {
  // rho = e_row' B^-1, the leaving row of the inverse (dual ratio tests and
  // the phase-1 artificial sweep): a unit BTRAN.
  out.assign(m_, 0.0);
  out[row] = 1.0;
  lu_.btran(out);
}

double RevisedSimplex::reduced_cost(int j, const std::vector<double>& y,
                                    const std::vector<double>& cost) const {
  double d = cost[j];
  for (int t = cp_[j]; t < cp_[j + 1]; ++t) d -= y[ci_[t]] * cx_[t];
  return d;
}

void RevisedSimplex::pivot(int enter, int leave_row,
                           const std::vector<double>& alpha) {
  // Apply the basis change to the factorization: a Forrest-Tomlin update
  // (or one product-form eta, mode-dependent) instead of the factors
  // being rebuilt.  The basis bookkeeping is committed FIRST so that a
  // rejected update can refactorize the *new* basis directly.
  basis_[leave_row] = enter;
  stat_[enter] = VStat::kBasic;
  ++pivots_since_refactor_;
  ++update_calls_;
  const bool injected =
      opts_->fail_update_at > 0 && update_calls_ == opts_->fail_update_at;
  if (injected || !lu_.update(leave_row, alpha)) {
    // Numerically rejected update (degenerate new diagonal) or the
    // injected test failure: rebuild from scratch.  refactorize() already
    // handles ITS failure via the stale-representation protocol.
    refactorize();
  }
}

void RevisedSimplex::refactorize() {
  if (!factorize()) {
    // A numerically singular basis; keep going with the stale (eta-updated)
    // factorization but remember it, so extract() reports kError instead of
    // a bogus optimum.
    factorize_failed_ = true;
    pivots_since_refactor_ = 0;
    return;
  }
  for (int j = 0; j < ntotal_; ++j)
    if (stat_[j] != VStat::kBasic) set_nonbasic_value(j);
  compute_basic_values();
}

double RevisedSimplex::violation(int j, const std::vector<double>& cost) const {
  const double d = reduced_cost(j, y_, cost);
  if (stat_[j] == VStat::kAtLower) return -d;
  if (stat_[j] == VStat::kAtUpper) return d;
  return std::abs(d);  // free
}

// Full Dantzig scan (also the Bland's-rule scan: under bland_ the FIRST
// violating column wins, which partial pricing must not short-circuit).
int RevisedSimplex::price_full(const std::vector<double>& cost) const {
  int enter = -1;
  double best = opts_->cost_tol;
  long priced = 0;
  for (int j = 0; j < ntotal_; ++j) {
    if (stat_[j] == VStat::kBasic || fixed(j)) continue;
    ++priced;
    const double viol = violation(j, cost);
    if (viol > best) {
      if (bland_) {
        enter = j;
        break;
      }
      best = viol;
      enter = j;
    }
  }
  t_lp.columns_priced += priced;
  return enter;
}

// Rotating refill: scan cyclically from where the previous refill left
// off, collecting the first `bucket` violating columns, and return the
// most violating of them (-1 only after a FULL fruitless wrap — the exact
// optimality proof partial pricing hands back to primal()).  The rotation
// matters on degenerate LPs: a "top-K by violation" bucket degenerates
// into Bland's rule when thousands of columns tie at the same reduced
// cost (network LPs do exactly that), hammering one low-index cluster
// through entire degenerate plateaus.  Starting each refill where the
// last stopped spreads entering candidates across the whole column range
// — and lets most refills terminate after a fraction of a full scan.
int RevisedSimplex::refill_candidates(const std::vector<double>& cost) {
  ++t_lp.candidate_refills;
  cand_.clear();
  const int bucket = std::clamp(ntotal_ / 8, 32, 1024);
  long priced = 0;
  int enter = -1;
  double best = opts_->cost_tol;
  int j = scan_start_;
  for (int scanned = 0; scanned < ntotal_; ++scanned, ++j) {
    if (j >= ntotal_) j = 0;
    if (stat_[j] == VStat::kBasic || fixed(j)) continue;
    ++priced;
    const double viol = violation(j, cost);
    if (viol > opts_->cost_tol) {
      cand_.push_back(j);
      if (viol > best) {
        best = viol;
        enter = j;
      }
      if (static_cast<int>(cand_.size()) >= bucket) {
        ++j;
        break;
      }
    }
  }
  scan_start_ = (j >= ntotal_) ? 0 : j;
  t_lp.columns_priced += priced;
  return enter;
}

// Partial pricing: re-price only the bucket; on a dry bucket fall back to
// a refill (a full scan), so optimality verdicts are always full-scan
// exact.  Columns that went basic or fixed are compacted out in place.
int RevisedSimplex::price_partial(const std::vector<double>& cost) {
  int enter = -1;
  double best = opts_->cost_tol;
  std::size_t keep = 0;
  long priced = 0;
  for (const int j : cand_) {
    if (stat_[j] == VStat::kBasic || fixed(j)) continue;
    cand_[keep++] = j;
    ++priced;
    const double viol = violation(j, cost);
    if (viol > best || (viol == best && enter >= 0 && j < enter)) {
      best = viol;
      enter = j;
    }
  }
  cand_.resize(keep);
  t_lp.columns_priced += priced;
  if (enter >= 0) return enter;
  return refill_candidates(cost);
}

RevisedSimplex::Step RevisedSimplex::primal(const std::vector<double>& cost,
                                            long budget) {
  cand_.clear();  // the bucket is per-cost-vector (phase 1 vs phase 2)
  for (long it = 0; it < budget; ++it) {
    btran_costs(cost, y_);

    // --- Pricing. ---
    const bool partial = opts_->pricing == PricingRule::kPartial &&
                         ntotal_ > opts_->partial_pricing_min_cols;
    const int enter =
        (bland_ || !partial) ? price_full(cost) : price_partial(cost);
    if (enter < 0) return Step::kOptimal;

    const double d_enter = reduced_cost(enter, y_, cost);
    const double dir =
        (stat_[enter] == VStat::kAtLower ||
         (stat_[enter] == VStat::kFree && d_enter < 0.0))
            ? 1.0
            : -1.0;

    ftran(enter, alpha_);

    // --- Ratio test (with bound flips). ---
    const double range = hi_[enter] - lo_[enter];  // inf when either infinite
    double best_t = std::isfinite(range) ? range : kInf;
    int leave = -1;          // -1 with finite best_t = bound flip
    double best_piv = 0.0;
    for (int i = 0; i < m_; ++i) {
      const double a = dir * alpha_[i];
      const int bj = basis_[i];
      double t = kInf;
      if (a > opts_->pivot_tol) {
        if (lo_[bj] == -kInf) continue;
        t = (x_[bj] - lo_[bj]) / a;
      } else if (a < -opts_->pivot_tol) {
        if (hi_[bj] == kInf) continue;
        t = (hi_[bj] - x_[bj]) / (-a);
      } else {
        continue;
      }
      if (t < 0.0) t = 0.0;  // numerical drift
      if (t < best_t - 1e-12 ||
          (t < best_t + 1e-12 && std::abs(alpha_[i]) > best_piv)) {
        best_t = t;
        best_piv = std::abs(alpha_[i]);
        leave = i;
      }
    }
    if (bland_ && leave >= 0) {
      // Among rows achieving the minimum ratio, leave the smallest variable.
      const double min_t = best_t;
      int best_var = INT_MAX;
      for (int i = 0; i < m_; ++i) {
        const double a = dir * alpha_[i];
        const int bj = basis_[i];
        double t = kInf;
        if (a > opts_->pivot_tol && lo_[bj] != -kInf)
          t = std::max(0.0, (x_[bj] - lo_[bj]) / a);
        else if (a < -opts_->pivot_tol && hi_[bj] != kInf)
          t = std::max(0.0, (hi_[bj] - x_[bj]) / (-a));
        if (t <= min_t + opts_->feas_tol && bj < best_var) {
          best_var = bj;
          leave = i;
        }
      }
    }
    if (!std::isfinite(best_t)) return Step::kUnbounded;

    ++iters_;
    degen_run_ = (best_t <= opts_->feas_tol) ? degen_run_ + 1 : 0;
    if (degen_run_ > 2L * (m_ + ntotal_)) bland_ = true;

    const bool flip =
        leave < 0 || (std::isfinite(range) && range <= best_t + 1e-12);
    if (flip) {
      // The entering variable runs to its opposite bound; basis unchanged.
      for (int i = 0; i < m_; ++i)
        if (alpha_[i] != 0.0) x_[basis_[i]] -= dir * range * alpha_[i];
      stat_[enter] = (dir > 0) ? VStat::kAtUpper : VStat::kAtLower;
      set_nonbasic_value(enter);
      continue;
    }

    const int out_var = basis_[leave];
    for (int i = 0; i < m_; ++i)
      if (alpha_[i] != 0.0) x_[basis_[i]] -= dir * best_t * alpha_[i];
    x_[enter] += dir * best_t;
    stat_[out_var] =
        (dir * alpha_[leave] > 0) ? VStat::kAtLower : VStat::kAtUpper;
    pivot(enter, leave, alpha_);
    set_nonbasic_value(out_var);
    if (should_refactor()) refactorize();
  }
  return Step::kLimit;
}

bool RevisedSimplex::dual_feasible(const std::vector<double>& y) const {
  for (int j = 0; j < ntotal_; ++j) {
    if (stat_[j] == VStat::kBasic || fixed(j)) continue;
    const double d = reduced_cost(j, y, cost_);
    const double tol = 1e-6 * (1.0 + std::abs(cost_[j]));
    if (stat_[j] == VStat::kAtLower && d < -tol) return false;
    if (stat_[j] == VStat::kAtUpper && d > tol) return false;
    if (stat_[j] == VStat::kFree && std::abs(d) > tol) return false;
  }
  return true;
}

RevisedSimplex::Step RevisedSimplex::dual_repair(long budget) {
  for (long it = 0; it < budget; ++it) {
    // --- Leaving: the basic variable most outside its bounds. ---
    int leave = -1;
    double worst = opts_->feas_tol;
    bool below = false;
    for (int i = 0; i < m_; ++i) {
      const int bj = basis_[i];
      const double under = lo_[bj] - x_[bj];
      const double over = x_[bj] - hi_[bj];
      if (under > worst) {
        worst = under;
        leave = i;
        below = true;
      }
      if (over > worst) {
        worst = over;
        leave = i;
        below = false;
      }
    }
    if (leave < 0) return Step::kOptimal;  // primal feasible again

    btran_costs(cost_, y_);
    btran_unit(leave, rho_);

    // --- Entering: bounded-variable dual ratio test. ---
    int enter = -1;
    double best_ratio = kInf, best_piv = 0.0;
    for (int j = 0; j < ntotal_; ++j) {
      if (stat_[j] == VStat::kBasic || fixed(j)) continue;
      double arj = 0.0;
      for (int t = cp_[j]; t < cp_[j + 1]; ++t) arj += rho_[ci_[t]] * cx_[t];
      if (std::abs(arj) <= opts_->pivot_tol) continue;
      // Admissibility: entering must move the leaving variable toward its
      // violated bound while respecting its own allowed direction.
      bool ok = false;
      if (stat_[j] == VStat::kFree) {
        ok = true;
      } else if (below) {  // x_B must increase: delta_j * arj < 0
        ok = (stat_[j] == VStat::kAtLower && arj < 0) ||
             (stat_[j] == VStat::kAtUpper && arj > 0);
      } else {  // x_B must decrease
        ok = (stat_[j] == VStat::kAtLower && arj > 0) ||
             (stat_[j] == VStat::kAtUpper && arj < 0);
      }
      if (!ok) continue;
      const double d = reduced_cost(j, y_, cost_);
      const double ratio = std::abs(d) / std::abs(arj);
      if (ratio < best_ratio - 1e-12 ||
          (ratio < best_ratio + 1e-12 && std::abs(arj) > best_piv)) {
        best_ratio = ratio;
        best_piv = std::abs(arj);
        enter = j;
      }
    }
    if (enter < 0) return Step::kUnbounded;  // dual unbounded = primal infeasible

    ftran(enter, alpha_);
    const double arq = alpha_[leave];
    if (std::abs(arq) <= opts_->pivot_tol) return Step::kError;
    const int out_var = basis_[leave];
    const double target = below ? lo_[out_var] : hi_[out_var];
    const double delta = (x_[out_var] - target) / arq;
    for (int i = 0; i < m_; ++i)
      if (i != leave && alpha_[i] != 0.0) x_[basis_[i]] -= delta * alpha_[i];
    x_[enter] += delta;
    stat_[out_var] = below ? VStat::kAtLower : VStat::kAtUpper;
    pivot(enter, leave, alpha_);
    set_nonbasic_value(out_var);
    ++iters_;
    if (should_refactor()) refactorize();
  }
  return Step::kLimit;
}

bool RevisedSimplex::warm_install(const Basis& warm) {
  if (static_cast<int>(warm.basic.size()) != m_ ||
      static_cast<int>(warm.at_upper.size()) != nreal_)
    return false;
  std::vector<char> used(nreal_, 0);
  for (int j : warm.basic) {
    if (j < 0 || j >= nreal_ || used[j]) return false;
    used[j] = 1;
  }
  basis_ = warm.basic;
  stat_.assign(nreal_, VStat::kAtLower);
  x_.assign(nreal_, 0.0);
  for (int j = 0; j < nreal_; ++j) {
    if (used[j]) {
      stat_[j] = VStat::kBasic;
      continue;
    }
    // Snap nonbasic variables to the (possibly tightened) bounds.
    const bool want_upper = warm.at_upper[j] != 0;
    if (want_upper && hi_[j] != kInf) {
      stat_[j] = VStat::kAtUpper;
    } else if (!want_upper && lo_[j] != -kInf) {
      stat_[j] = VStat::kAtLower;
    } else if (lo_[j] != -kInf) {
      stat_[j] = VStat::kAtLower;
    } else if (hi_[j] != kInf) {
      stat_[j] = VStat::kAtUpper;
    } else {
      stat_[j] = VStat::kFree;
    }
    set_nonbasic_value(j);
  }
  if (!factorize()) return false;
  compute_basic_values();
  btran_costs(cost_, y_);
  // Only repair from a dual-feasible basis: dual simplex verdicts
  // (infeasible = prune) are only trustworthy then.
  return dual_feasible(y_);
}

LpSolution RevisedSimplex::extract() {
  LpSolution sol;
  sol.iterations = iters_;
  sol.refactorizations = refactorizations_;
  sol.x.assign(nstruct_, 0.0);
  for (int j = 0; j < nstruct_; ++j) sol.x[j] = x_[j];
  // A failed mid-run refactorization means every later pivot, the final
  // optimality test, and the duals all used a stale inverse.  A feasibility
  // check could not tell a true optimum from a feasible-but-suboptimal
  // vertex, so the only honest report is kError (callers fall back: the
  // warm path restarts cold, solve_milp treats it as a limit).
  if (factorize_failed_) {
    sol.status = Status::kError;
    return sol;
  }
  sol.obj = p_->eval_obj(sol.x);
  if (opts_->want_duals) {
    btran_costs(cost_, y_);
    sol.y.assign(m_, 0.0);
    for (int i = 0; i < m_; ++i) sol.y[i] = obj_scale_ * y_[i];
  }
  if (opts_->want_basis) export_basis(sol);
  sol.status = Status::kOptimal;
  return sol;
}

void RevisedSimplex::export_basis(LpSolution& sol) const {
  sol.basis.basic.assign(m_, 0);
  for (int i = 0; i < m_; ++i) {
    const int j = basis_[i];
    // A residual basic artificial marks a redundant row; hand the row's
    // slack to the warm-start consumer (re-factorization validates it).
    sol.basis.basic[i] = (j >= nreal_) ? nstruct_ + art_row_[j - nreal_] : j;
  }
  sol.basis.at_upper.assign(nreal_, 0);
  for (int j = 0; j < nreal_; ++j)
    sol.basis.at_upper[j] = (stat_[j] == VStat::kAtUpper) ? 1 : 0;
}

LpSolution RevisedSimplex::run(const Basis* warm) {
  ++t_lp.solves;
  LpSolution sol;

  // Empty variable boxes decide infeasibility before any pivoting.
  for (int j = 0; j < nstruct_; ++j) {
    if (lo_[j] > hi_[j] + 1e-12) {
      sol.status = Status::kInfeasible;
      return sol;
    }
  }

  const long budget = opts_->max_iterations;

  // --- Warm path: reinstall the caller's basis and repair with dual
  // simplex.  Any failure — including a mid-run refactorization failure,
  // whose stale inverse makes every later verdict untrustworthy — falls
  // through to the cold start. ---
  if (warm != nullptr && m_ > 0 && !warm->empty()) {
    if (warm_install(*warm)) {
      ++t_lp.warm_solves;
      const Step ds = dual_repair(budget);
      if (ds == Step::kUnbounded && !factorize_failed_) {
        sol.status = Status::kInfeasible;  // dual unbounded = primal empty
        sol.iterations = iters_;
        t_lp.iterations += iters_;
        return sol;
      }
      if (ds == Step::kOptimal) {
        const Step ps = primal(cost_, budget - iters_);
        if (ps == Step::kOptimal) {
          sol = extract();  // re-verifies the point if factorize_failed_
          if (sol.status == Status::kOptimal) {
            // Count only on return: a fallback to cold reports the
            // cumulative iters_ once at its own exit.
            t_lp.iterations += iters_;
            return sol;
          }
        } else if (ps == Step::kUnbounded && !factorize_failed_) {
          sol.status = Status::kUnbounded;
          sol.iterations = iters_;
          t_lp.iterations += iters_;
          return sol;
        }
      }
      // kLimit / kError / stale-inverse verdict: restart cold below.  The
      // warm attempt's pivots stay in iters_ so max_iterations caps total
      // work per solve and the reported counts include the discarded
      // attempt.
    }
    bland_ = false;
    degen_run_ = 0;
    factorize_failed_ = false;
  }

  // --- Cold start: slack basis; infeasible rows get artificials. ---
  ntotal_ = nreal_;
  cp_.resize(nreal_ + 1);
  ci_.resize(cp_.back());
  cx_.resize(cp_.back());
  cost_.resize(nreal_);
  lo_.resize(nreal_);
  hi_.resize(nreal_);
  art_row_.clear();

  basis_.resize(m_);
  stat_.assign(nreal_, VStat::kAtLower);
  x_.assign(nreal_, 0.0);
  for (int j = 0; j < nstruct_; ++j) {
    if (lo_[j] != -kInf) {
      stat_[j] = VStat::kAtLower;
    } else if (hi_[j] != kInf) {
      stat_[j] = VStat::kAtUpper;
    } else {
      stat_[j] = VStat::kFree;
    }
    set_nonbasic_value(j);
  }
  // Slack-basis values: x_s = b - A x_N (B = I).
  resid_ = b_;
  std::vector<double>& resid = resid_;
  for (int j = 0; j < nstruct_; ++j) {
    if (x_[j] == 0.0) continue;
    for (int t = cp_[j]; t < cp_[j + 1]; ++t) resid[ci_[t]] -= cx_[t] * x_[j];
  }
  bool any_art = false;
  for (int i = 0; i < m_; ++i) {
    const int s = nstruct_ + i;
    const double v = resid[i];
    if (v >= lo_[s] - opts_->feas_tol && v <= hi_[s] + opts_->feas_tol) {
      basis_[i] = s;
      stat_[s] = VStat::kBasic;
      x_[s] = v;
      continue;
    }
    // Slack rests at the nearest bound; an artificial absorbs the residual.
    stat_[s] = (v > hi_[s]) ? VStat::kAtUpper : VStat::kAtLower;
    set_nonbasic_value(s);
    const double rem = v - x_[s];
    add_artificial(i, rem >= 0 ? 1.0 : -1.0);
    const int a = ntotal_ - 1;
    basis_[i] = a;
    stat_[a] = VStat::kBasic;
    x_[a] = std::abs(rem);
    any_art = true;
  }
  // The initial basis is all unit columns (slacks at +1, artificials at
  // +-1): factorizing it is O(m) singleton pivots.  It can only fail via
  // the fail_refactor_at test hook — and then the factorization may still
  // describe a previous basis (or problem), so the only safe verdict is an
  // immediate kError.
  if (!factorize()) {
    sol.status = Status::kError;
    sol.iterations = iters_;
    t_lp.iterations += iters_;
    return sol;
  }

  // --- Phase 1: drive the artificials to zero. ---
  if (any_art) {
    std::vector<double> c1(ntotal_, 0.0);
    for (int j = nreal_; j < ntotal_; ++j) c1[j] = 1.0;
    const Step r1 = primal(c1, budget - iters_);
    if (r1 == Step::kLimit) {
      sol.status = Status::kLimit;
      sol.iterations = iters_;
      t_lp.iterations += iters_;
      return sol;
    }
    double infeas = 0.0;
    for (int j = nreal_; j < ntotal_; ++j) infeas += std::max(0.0, x_[j]);
    if (r1 == Step::kUnbounded ||
        infeas > 1e2 * opts_->feas_tol * (1.0 + m_)) {
      // A stale basis inverse cannot be trusted to prove infeasibility.
      sol.status = factorize_failed_ ? Status::kError : Status::kInfeasible;
      sol.iterations = iters_;
      t_lp.iterations += iters_;
      return sol;
    }
    // Freeze the artificials; pivot residual basic ones out when possible.
    for (int j = nreal_; j < ntotal_; ++j) {
      lo_[j] = hi_[j] = 0.0;
      if (stat_[j] != VStat::kBasic) {
        stat_[j] = VStat::kAtLower;
        x_[j] = 0.0;
      }
    }
    for (int i = 0; i < m_; ++i) {
      if (basis_[i] < nreal_) continue;
      btran_unit(i, rho_);
      for (int j = 0; j < nreal_; ++j) {
        if (stat_[j] == VStat::kBasic || fixed(j)) continue;
        double arj = 0.0;
        for (int t = cp_[j]; t < cp_[j + 1]; ++t) arj += rho_[ci_[t]] * cx_[t];
        if (std::abs(arj) > 1e3 * opts_->pivot_tol) {
          ftran(j, alpha_);
          const int out_var = basis_[i];
          // Status first: a rejected update inside pivot() refactorizes,
          // and the recompute needs out_var already marked nonbasic.
          stat_[out_var] = VStat::kAtLower;
          x_[out_var] = 0.0;
          pivot(j, i, alpha_);  // degenerate pivot: t = 0, values unchanged
          break;
        }
      }
    }
    refactorize();
  }

  // --- Phase 2. ---
  const Step r2 = primal(cost_, budget - iters_);
  sol.iterations = iters_;
  t_lp.iterations += iters_;
  if (r2 == Step::kUnbounded) {
    // Same caveat: unboundedness derived from a stale inverse is not proof.
    sol.status = factorize_failed_ ? Status::kError : Status::kUnbounded;
    return sol;
  }
  if (r2 != Step::kOptimal) {
    sol.status = Status::kLimit;
    return sol;
  }
  sol = extract();
  sol.iterations = iters_;
  return sol;
}

}  // namespace

LpCounters lp_counters() {
  // Retired totals from exited threads plus this thread's live counters:
  // thread-inclusive accounting (see LpCounters in lp.h).
  LpCounters c;
  c.solves = g_retired_solves.load(std::memory_order_relaxed) + t_lp.solves;
  c.iterations =
      g_retired_iterations.load(std::memory_order_relaxed) + t_lp.iterations;
  c.warm_solves =
      g_retired_warm_solves.load(std::memory_order_relaxed) + t_lp.warm_solves;
  c.columns_priced = g_retired_columns_priced.load(std::memory_order_relaxed) +
                     t_lp.columns_priced;
  c.candidate_refills =
      g_retired_candidate_refills.load(std::memory_order_relaxed) +
      t_lp.candidate_refills;
  return c;
}

LpSolution solve_lp(const LpProblem& p, const SimplexOptions& opts,
                    const Basis* warm) {
  // One reusable solver per thread: the sampling hot loops issue hundreds of
  // thousands of tiny solves, and reusing the internal buffers removes every
  // steady-state allocation (thread_local keeps the parallel stages safe).
  thread_local RevisedSimplex solver;
  solver.reset(p, opts);
  return solver.run(warm);
}

}  // namespace xplain::solver
