#include "solver/lu.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace xplain::solver {

namespace {

/// Entries below the column max by more than this factor are inadmissible
/// pivots (threshold partial pivoting): sparser rows may be preferred, but
/// never at more than 10x growth per elimination step.
constexpr double kPivotThreshold = 0.1;
/// Absolute floor below which a column is treated as numerically zero.
constexpr double kSingularTol = 1e-11;
/// A Forrest-Tomlin update is rejected when the new diagonal disagrees
/// with its independently computed value (old diagonal x the FTRAN pivot)
/// by more than this relative drift — catastrophic cancellation in the row
/// elimination shows up exactly there, and a rejected update only costs a
/// refactorization.
constexpr double kFtDriftTol = 1e-6;
/// Forrest-Tomlin growth guards.  The updated diagonal is exactly
/// mu = udiag_t * alpha_slot, so every small-pivot update shrinks a
/// diagonal multiplicatively and the next update's row-elimination
/// multipliers (u_tj / u_jj) grow in step — left unguarded, a ~100-update
/// chain on a degenerate LP drifts the representation by many orders of
/// magnitude (the product-form eta file never compounds like this: its
/// divisor is the fresh FTRAN pivot each time).  An update is therefore
/// rejected — costing one refactorization — when the FTRAN pivot is below
/// kFtMinPivot or any elimination multiplier exceeds kFtMaxMultiplier.
constexpr double kFtMinPivot = 1e-4;
constexpr double kFtMaxMultiplier = 1e5;
/// The BTRAN U^T pass walks the reach of the rhs pattern instead of
/// gathering all of U when the pattern is at least this factor smaller
/// than the dimension.  A pure function of deterministic nonzero counts,
/// so the path choice never breaks bitwise determinism.
constexpr int kHyperSparseFactor = 8;

}  // namespace

// Nonrecursive depth-first search over the partially built L: the reach of
// `row` gives every row whose solution component the triangular solve can
// touch.  Rows are pushed onto xi_[top..m_) in topological order.
int LuFactorization::dfs(int row, int top, const std::vector<int>& lp,
                         const std::vector<int>& li) {
  int head = 0;
  stack_[0] = row;
  while (head >= 0) {
    const int r = stack_[head];
    if (visited_[r] == 0) {
      visited_[r] = 1;
      const int step = bpinv_[r];
      pstack_[head] = (step < 0) ? 0 : lp[step];
    }
    const int step = bpinv_[r];
    const int pend = (step < 0) ? 0 : lp[step + 1];
    bool descended = false;
    for (int p = pstack_[head]; p < pend; ++p) {
      const int child = li[p];
      if (visited_[child] != 0) continue;
      pstack_[head] = p + 1;
      stack_[++head] = child;
      descended = true;
      break;
    }
    if (!descended) {
      xi_[--top] = r;
      --head;
    }
  }
  return top;
}

bool LuFactorization::factorize(int m, const std::vector<int>& cp,
                                const std::vector<int>& ci,
                                const std::vector<double>& cx,
                                const std::vector<int>& basis_cols) {
  if (cfg_dense_) return factorize_dense(m, cp, ci, cx, basis_cols);

  // Build into the b*-scratch so a singular basis leaves the active
  // factorization (and its update file) untouched.
  // Markowitz-style column preorder: sparsest basis columns pivot first.
  // Counting sort by column length (stable, O(m + maxlen)): warm solves
  // factorize on every install, so this runs in the sampling hot loops.
  border_.resize(m);
  int maxlen = 0;
  for (int k = 0; k < m; ++k) {
    const int j = basis_cols[k];
    maxlen = std::max(maxlen, cp[j + 1] - cp[j]);
  }
  rdeg_.assign(maxlen + 2, 0);  // reused as bucket counters first
  for (int k = 0; k < m; ++k) {
    const int j = basis_cols[k];
    ++rdeg_[cp[j + 1] - cp[j] + 1];
  }
  for (int l = 0; l <= maxlen; ++l) rdeg_[l + 1] += rdeg_[l];
  for (int k = 0; k < m; ++k) {
    const int j = basis_cols[k];
    border_[rdeg_[cp[j + 1] - cp[j]]++] = k;
  }
  // Static row degrees of the basis matrix, for the sparsity tie-break.
  rdeg_.assign(m, 0);
  for (int k = 0; k < m; ++k) {
    const int j = basis_cols[k];
    for (int t = cp[j]; t < cp[j + 1]; ++t) ++rdeg_[ci[t]];
  }

  bpinv_.assign(m, -1);
  bpivrow_.assign(m, -1);
  bcolorder_.resize(m);
  blp_.assign(1, 0);
  bli_.clear();
  blx_.clear();
  bup_.assign(1, 0);
  bui_.clear();
  bux_.clear();
  budiag_.resize(m);
  xi_.resize(m);
  stack_.resize(m);
  pstack_.resize(m);
  visited_.assign(m, 0);
  xw_.assign(m, 0.0);

  for (int k = 0; k < m; ++k) {
    const int slot = border_[k];
    const int j = basis_cols[slot];
    bcolorder_[k] = slot;

    // --- Symbolic: reach of column j's rows through the current L. ---
    int top = m;
    for (int t = cp[j]; t < cp[j + 1]; ++t)
      if (visited_[ci[t]] == 0) top = dfs(ci[t], top, blp_, bli_);

    // --- Numeric sparse triangular solve x = L \ B_j. ---
    for (int p = top; p < m; ++p) xw_[xi_[p]] = 0.0;
    for (int t = cp[j]; t < cp[j + 1]; ++t) xw_[ci[t]] += cx[t];
    for (int p = top; p < m; ++p) {
      const int r = xi_[p];
      const int step = bpinv_[r];
      if (step < 0) continue;
      const double xv = xw_[r];
      if (xv == 0.0) continue;
      for (int q = blp_[step]; q < blp_[step + 1]; ++q)
        xw_[bli_[q]] -= blx_[q] * xv;
    }

    // --- Pivot: threshold partial pivoting with a static-degree
    // (Markowitz-style) tie-break among admissible rows. ---
    double xmax = 0.0;
    for (int p = top; p < m; ++p) {
      const int r = xi_[p];
      if (bpinv_[r] < 0) xmax = std::max(xmax, std::abs(xw_[r]));
    }
    if (xmax <= kSingularTol) {
      for (int p = top; p < m; ++p) visited_[xi_[p]] = 0;
      return false;  // structurally or numerically singular
    }
    int pivot_row = -1;
    int pivot_deg = m + 1;
    double pivot_abs = 0.0;
    for (int p = top; p < m; ++p) {
      const int r = xi_[p];
      if (bpinv_[r] >= 0) continue;
      const double a = std::abs(xw_[r]);
      if (a < kPivotThreshold * xmax || a <= kSingularTol) continue;
      if (rdeg_[r] < pivot_deg ||
          (rdeg_[r] == pivot_deg && a > pivot_abs)) {
        pivot_deg = rdeg_[r];
        pivot_abs = a;
        pivot_row = r;
      }
    }
    const double piv = xw_[pivot_row];

    // --- Emit U column k (pivoted rows) and L column k (multipliers). ---
    for (int p = top; p < m; ++p) {
      const int r = xi_[p];
      visited_[r] = 0;  // reset marks for the next column
      const double xv = xw_[r];
      const int step = bpinv_[r];
      if (step >= 0) {
        if (xv != 0.0) {
          bui_.push_back(step);
          bux_.push_back(xv);
        }
      } else if (r != pivot_row) {
        const double f = xv / piv;
        if (f != 0.0) {
          bli_.push_back(r);
          blx_.push_back(f);
        }
      }
    }
    budiag_[k] = piv;
    bpivrow_[k] = pivot_row;
    bpinv_[pivot_row] = k;
    blp_.push_back(static_cast<int>(bli_.size()));
    bup_.push_back(static_cast<int>(bui_.size()));
  }

  // Success: publish the new factors, rebuild the dynamic U structures
  // (identity triangular order, row adjacency), clear the update file.
  m_ = m;
  lp_.swap(blp_);
  li_.swap(bli_);
  lx_.swap(blx_);
  ui_.swap(bui_);
  ux_.swap(bux_);
  udiag_.swap(budiag_);
  pivrow_.swap(bpivrow_);
  colorder_.swap(bcolorder_);
  pinv_.swap(bpinv_);
  ucolp_.resize(m);
  ulen_.resize(m);
  uorder_.resize(m);
  upos_.resize(m);
  sinv_.resize(m);
  if (static_cast<int>(urows_.size()) < m) urows_.resize(m);
  for (int k = 0; k < m; ++k) {
    ucolp_[k] = bup_[k];
    ulen_[k] = bup_[k + 1] - bup_[k];
    uorder_[k] = k;
    upos_[k] = k;
    sinv_[colorder_[k]] = k;
    urows_[k].clear();
  }
  for (int k = 0; k < m; ++k)
    for (int q = ucolp_[k]; q < ucolp_[k] + ulen_[k]; ++q)
      urows_[ui_[q]].push_back(k);
  re_start_.assign(1, 0);
  re_t_.clear();
  re_idx_.clear();
  re_val_.clear();
  ftw_valid_ = false;
  ftwork_.assign(m, 0.0);
  hvis_.assign(m, 0);
  hstack_.resize(m);
  hpos_.resize(m);
  eta_start_.assign(1, 0);
  eta_slot_.clear();
  eta_piv_.clear();
  eta_idx_.clear();
  eta_val_.clear();
  update_count_ = 0;
  update_nnz_ = 0;
  fnnz_ = static_cast<long>(li_.size() + ui_.size()) + m;
  dense_active_ = false;
  ft_active_ = cfg_ft_;
  return true;
}

bool LuFactorization::factorize_dense(int m, const std::vector<int>& cp,
                                      const std::vector<int>& ci,
                                      const std::vector<double>& cx,
                                      const std::vector<int>& basis_cols) {
  // Column-major dense build; columns stay in natural slot order (no
  // sparsity ordering at these sizes), so slot == step throughout.
  bdmat_.assign(static_cast<std::size_t>(m) * m, 0.0);
  for (int k = 0; k < m; ++k) {
    const int j = basis_cols[k];
    for (int t = cp[j]; t < cp[j + 1]; ++t)
      bdmat_[static_cast<std::size_t>(k) * m + ci[t]] += cx[t];
  }
  // LAPACK-style in-place LU with partial pivoting (row swaps recorded as
  // an ipiv sequence); L's unit diagonal is implicit.
  bdipiv_.resize(m);
  for (int k = 0; k < m; ++k) {
    double* kcol = bdmat_.data() + static_cast<std::size_t>(k) * m;
    int piv = k;
    double best = std::abs(kcol[k]);
    for (int r = k + 1; r < m; ++r) {
      const double a = std::abs(kcol[r]);
      if (a > best) {
        best = a;
        piv = r;
      }
    }
    if (best <= kSingularTol) return false;  // previous factors untouched
    bdipiv_[k] = piv;
    if (piv != k)
      for (int c = 0; c < m; ++c)
        std::swap(bdmat_[static_cast<std::size_t>(c) * m + k],
                  bdmat_[static_cast<std::size_t>(c) * m + piv]);
    const double d = kcol[k];
    for (int r = k + 1; r < m; ++r) kcol[r] /= d;
    for (int c = k + 1; c < m; ++c) {
      double* ccol = bdmat_.data() + static_cast<std::size_t>(c) * m;
      const double u = ccol[k];
      if (u == 0.0) continue;
      for (int r = k + 1; r < m; ++r) ccol[r] -= kcol[r] * u;
    }
  }
  m_ = m;
  dmat_.swap(bdmat_);
  dipiv_.swap(bdipiv_);
  eta_start_.assign(1, 0);
  eta_slot_.clear();
  eta_piv_.clear();
  eta_idx_.clear();
  eta_val_.clear();
  update_count_ = 0;
  update_nnz_ = 0;
  fnnz_ = static_cast<long>(m) * m;
  dense_active_ = true;
  ft_active_ = false;
  ftw_valid_ = false;
  return true;
}

long LuFactorization::factor_nnz() const { return fnnz_; }

void LuFactorization::apply_etas_ftran(std::vector<double>& x) const {
  const int etas = static_cast<int>(eta_slot_.size());
  for (int e = 0; e < etas; ++e) {
    const int slot = eta_slot_[e];
    const double t = x[slot] / eta_piv_[e];
    x[slot] = t;
    if (t == 0.0) continue;
    for (int p = eta_start_[e]; p < eta_start_[e + 1]; ++p)
      x[eta_idx_[p]] -= eta_val_[p] * t;
  }
}

void LuFactorization::apply_etas_btran(std::vector<double>& y) const {
  // Eta transposes, newest-first: u^T E_1..E_k = c^T peels E_k off first.
  for (int e = static_cast<int>(eta_slot_.size()) - 1; e >= 0; --e) {
    const int slot = eta_slot_[e];
    double t = y[slot];
    for (int p = eta_start_[e]; p < eta_start_[e + 1]; ++p)
      t -= eta_val_[p] * y[eta_idx_[p]];
    y[slot] = t / eta_piv_[e];
  }
}

void LuFactorization::ftran(std::vector<double>& x) const {
  if (dense_active_) {
    ftran_dense(x);
    return;
  }
  // L-pass (forward, unit diagonal): y_k = (L^-1 P b)_k in step space.
  step_.resize(m_);
  for (int k = 0; k < m_; ++k) {
    const double yk = x[pivrow_[k]];
    step_[k] = yk;
    if (yk == 0.0) continue;
    for (int p = lp_[k]; p < lp_[k + 1]; ++p) x[li_[p]] -= lx_[p] * yk;
  }
  // Forrest-Tomlin row etas, oldest-first: each update's row operations
  // sit between L and the current U in the factor chain.
  const int nre = static_cast<int>(re_t_.size());
  for (int e = 0; e < nre; ++e) {
    double acc = step_[re_t_[e]];
    for (int q = re_start_[e]; q < re_start_[e + 1]; ++q)
      acc -= re_val_[q] * step_[re_idx_[q]];
    step_[re_t_[e]] = acc;
  }
  // This intermediate IS the respiked column of a Forrest-Tomlin update,
  // should the caller pivot on this column next (see update()).
  if (ft_active_) {
    ftw_.assign(step_.begin(), step_.end());
    ftw_valid_ = true;
  }
  // U-pass (backward in the dynamic triangular order, column scatter).
  for (int p = m_ - 1; p >= 0; --p) {
    const int k = uorder_[p];
    const double zk = step_[k] / udiag_[k];
    step_[k] = zk;
    if (zk == 0.0) continue;
    const int h = ucolp_[k], e = h + ulen_[k];
    for (int q = h; q < e; ++q) step_[ui_[q]] -= ux_[q] * zk;
  }
  // Scatter to slot space, then replay product-form etas oldest-first
  // (empty in Forrest-Tomlin mode).
  for (int k = 0; k < m_; ++k) x[colorder_[k]] = step_[k];
  apply_etas_ftran(x);
}

// U^T pass over step_ (in place): either a full gather in the dynamic
// triangular order, or — when the rhs pattern is hyper-sparse — a
// depth-first reach over the row adjacency visiting only the columns the
// solution can touch.  Reached nodes gather their column entries in the
// exact storage order the full pass uses, so both paths produce bitwise
// identical nonzeros (unreached components are exact zeros).
void LuFactorization::solve_ut(int nseeds) const {
  if (static_cast<long>(nseeds) * kHyperSparseFactor >= m_) {
    for (int p = 0; p < m_; ++p) {
      const int k = uorder_[p];
      double acc = step_[k];
      const int h = ucolp_[k], e = h + ulen_[k];
      for (int q = h; q < e; ++q) acc -= ux_[q] * step_[ui_[q]];
      step_[k] = acc / udiag_[k];
    }
    return;
  }
  // Reach: node r feeds every column in urows_[r]; reverse DFS postorder
  // is a topological order (dependencies first).  hvis_ marks are restored
  // to all-zero on the way out.
  hord_.clear();
  for (int s = 0; s < m_; ++s) {
    if (step_[s] == 0.0 || hvis_[s] != 0) continue;
    int head = 0;
    hstack_[0] = s;
    hpos_[0] = 0;
    hvis_[s] = 1;
    while (head >= 0) {
      const int r = hstack_[head];
      const std::vector<int>& adj = urows_[r];
      const int deg = static_cast<int>(adj.size());
      bool descended = false;
      for (int q = hpos_[head]; q < deg; ++q) {
        const int c = adj[q];
        if (hvis_[c] != 0) continue;
        hpos_[head] = q + 1;
        hvis_[c] = 1;
        ++head;
        hstack_[head] = c;
        hpos_[head] = 0;
        descended = true;
        break;
      }
      if (!descended) {
        hord_.push_back(r);
        --head;
      }
    }
  }
  for (int i = static_cast<int>(hord_.size()) - 1; i >= 0; --i) {
    const int k = hord_[i];
    double acc = step_[k];
    const int h = ucolp_[k], e = h + ulen_[k];
    for (int q = h; q < e; ++q) acc -= ux_[q] * step_[ui_[q]];
    step_[k] = acc / udiag_[k];
    hvis_[k] = 0;
  }
}

void LuFactorization::btran(std::vector<double>& y) const {
  if (dense_active_) {
    btran_dense(y);
    return;
  }
  apply_etas_btran(y);  // no-op in Forrest-Tomlin mode
  // Gather to step space, counting the rhs pattern for the U^T path choice.
  step_.resize(m_);
  int nseeds = 0;
  for (int k = 0; k < m_; ++k) {
    const double v = y[colorder_[k]];
    step_[k] = v;
    if (v != 0.0) ++nseeds;
  }
  solve_ut(nseeds);
  // Forrest-Tomlin row etas, transposed, newest-first.
  for (int e = static_cast<int>(re_t_.size()) - 1; e >= 0; --e) {
    const double v = step_[re_t_[e]];
    if (v == 0.0) continue;
    for (int q = re_start_[e]; q < re_start_[e + 1]; ++q)
      step_[re_idx_[q]] -= re_val_[q] * v;
  }
  // L^T-pass (backward, gather): entries of L column k live in rows pivoted
  // at later steps, so their solution components are already final.
  for (int k = m_ - 1; k >= 0; --k) {
    double acc = step_[k];
    for (int p = lp_[k]; p < lp_[k + 1]; ++p)
      acc -= lx_[p] * step_[pinv_[li_[p]]];
    step_[k] = acc;
  }
  for (int k = 0; k < m_; ++k) y[pivrow_[k]] = step_[k];
}

void LuFactorization::ftran_dense(std::vector<double>& x) const {
  step_.resize(m_);
  for (int k = 0; k < m_; ++k) step_[k] = x[k];
  for (int k = 0; k < m_; ++k) std::swap(step_[k], step_[dipiv_[k]]);
  // L forward (unit diagonal, multipliers below the diagonal).
  for (int k = 0; k < m_; ++k) {
    const double v = step_[k];
    if (v == 0.0) continue;
    const double* col = dmat_.data() + static_cast<std::size_t>(k) * m_;
    for (int r = k + 1; r < m_; ++r) step_[r] -= col[r] * v;
  }
  // U backward.
  for (int k = m_ - 1; k >= 0; --k) {
    const double* col = dmat_.data() + static_cast<std::size_t>(k) * m_;
    const double v = step_[k] / col[k];
    step_[k] = v;
    if (v == 0.0) continue;
    for (int r = 0; r < k; ++r) step_[r] -= col[r] * v;
  }
  // Dense columns are in natural slot order: step == slot.
  for (int k = 0; k < m_; ++k) x[k] = step_[k];
  apply_etas_ftran(x);
}

void LuFactorization::btran_dense(std::vector<double>& y) const {
  apply_etas_btran(y);
  step_.resize(m_);
  for (int k = 0; k < m_; ++k) step_[k] = y[k];
  // U^T forward: row k of U^T is column k of the packed factor above the
  // diagonal — a contiguous column-major gather.
  for (int k = 0; k < m_; ++k) {
    const double* col = dmat_.data() + static_cast<std::size_t>(k) * m_;
    double acc = step_[k];
    for (int r = 0; r < k; ++r) acc -= col[r] * step_[r];
    step_[k] = acc / col[k];
  }
  // L^T backward.
  for (int k = m_ - 1; k >= 0; --k) {
    const double* col = dmat_.data() + static_cast<std::size_t>(k) * m_;
    double acc = step_[k];
    for (int r = k + 1; r < m_; ++r) acc -= col[r] * step_[r];
    step_[k] = acc;
  }
  // Undo the pivoting row swaps in reverse order: y = P^T w.
  for (int k = m_ - 1; k >= 0; --k) std::swap(step_[k], step_[dipiv_[k]]);
  for (int k = 0; k < m_; ++k) y[k] = step_[k];
}

bool LuFactorization::update(int leave_slot, const std::vector<double>& alpha) {
  if (dense_active_ || !ft_active_) {
    push_eta(leave_slot, alpha);
    return true;
  }
  return ft_update(leave_slot, alpha);
}

bool LuFactorization::ft_update(int leave_slot,
                                const std::vector<double>& alpha) {
  // The spike w = L^-1 (row etas) P A_enter was stashed by the ftran() of
  // the entering column; without it (defensive — the simplex always pivots
  // straight after that ftran) the only safe move is a refactorization.
  if (!ftw_valid_) return false;
  ftw_valid_ = false;
  // Growth guard #1: mu = udiag_t * alpha_slot, so a small FTRAN pivot
  // shrinks the diagonal multiplicatively — refactorizing is cheaper than
  // the drift a chain of such updates accumulates.
  if (std::abs(alpha[leave_slot]) < kFtMinPivot) return false;
  const int t = sinv_[leave_slot];
  const int pt = upos_[t];

  // --- Eliminate row t against every later row, read-only: multipliers
  // land in the row-eta arrays (rolled back on rejection), fill stays in
  // ftwork_ (self-cleaning: every touched index is at a later position and
  // gets zeroed when its turn comes).  The new diagonal is
  // mu = w_t - sum m_j w_j, because column t of the respiked U holds w. ---
  for (const int c : urows_[t]) {
    const int h = ucolp_[c], e = h + ulen_[c];
    for (int q = h; q < e; ++q) {
      if (ui_[q] == t) {
        ftwork_[c] = ux_[q];
        break;
      }
    }
  }
  const std::size_t re0 = re_idx_.size();
  double mu = ftw_[t];
  double mmax = 0.0;
  for (int p = pt + 1; p < m_; ++p) {
    const int j = uorder_[p];
    const double v = ftwork_[j];
    if (v == 0.0) continue;
    ftwork_[j] = 0.0;
    const double mj = v / udiag_[j];
    mmax = std::max(mmax, std::abs(mj));
    for (const int c : urows_[j]) {
      const int h = ucolp_[c], e = h + ulen_[c];
      for (int q = h; q < e; ++q) {
        if (ui_[q] == j) {
          ftwork_[c] -= mj * ux_[q];
          break;
        }
      }
    }
    mu -= mj * ftw_[j];
    re_idx_.push_back(j);
    re_val_.push_back(mj);
  }

  // --- Stability: mu must match udiag_t * alpha_leave (Cramer's rule gives
  // the identity exactly; FP drift beyond kFtDriftTol means the elimination
  // cancelled catastrophically) and clear the singularity floor. ---
  double wmax = 1.0;
  for (int k = 0; k < m_; ++k) wmax = std::max(wmax, std::abs(ftw_[k]));
  const double expected = udiag_[t] * alpha[leave_slot];
  if (mmax > kFtMaxMultiplier ||  // growth guard #2: elimination blow-up
      !(std::abs(mu) > kSingularTol * wmax) ||
      std::abs(mu - expected) >
          kFtDriftTol * (std::abs(mu) + std::abs(expected) + 1.0)) {
    re_idx_.resize(re0);
    re_val_.resize(re0);
    return false;
  }

  // --- Commit: drop row t from U, abandon the old column t, splice in the
  // spike as the new column t, and move step t to the last position. ---
  for (const int c : urows_[t]) {
    const int h = ucolp_[c];
    int e = h + ulen_[c];
    for (int q = h; q < e; ++q) {
      if (ui_[q] == t) {
        --e;
        ui_[q] = ui_[e];  // order-agnostic removal, still deterministic
        ux_[q] = ux_[e];
        --ulen_[c];
        break;
      }
    }
  }
  urows_[t].clear();
  {
    const int h = ucolp_[t], e = h + ulen_[t];
    for (int q = h; q < e; ++q) {
      std::vector<int>& adj = urows_[ui_[q]];
      for (std::size_t z = 0; z < adj.size(); ++z) {
        if (adj[z] == t) {
          adj[z] = adj.back();
          adj.pop_back();
          break;
        }
      }
    }
  }
  // The stale slice of the old column t is abandoned in place; the next
  // refactorization rebuilds the arrays, so leakage is bounded by the
  // refactorization triggers (exactly like eta-file growth was).
  ucolp_[t] = static_cast<int>(ui_.size());
  int len = 0;
  for (int r = 0; r < m_; ++r) {
    if (r == t) continue;
    const double v = ftw_[r];
    if (v == 0.0) continue;
    ui_.push_back(r);
    ux_.push_back(v);
    urows_[r].push_back(t);
    ++len;
  }
  ulen_[t] = len;
  udiag_[t] = mu;
  re_t_.push_back(t);
  re_start_.push_back(static_cast<int>(re_idx_.size()));
  for (int p = pt; p + 1 < m_; ++p) {
    uorder_[p] = uorder_[p + 1];
    upos_[uorder_[p]] = p;
  }
  uorder_[m_ - 1] = t;
  upos_[t] = m_ - 1;
  ++update_count_;
  update_nnz_ += static_cast<long>(re_idx_.size() - re0) + len;
  return true;
}

void LuFactorization::push_eta(int leave_slot,
                               const std::vector<double>& alpha) {
  eta_slot_.push_back(leave_slot);
  eta_piv_.push_back(alpha[leave_slot]);
  for (int i = 0; i < m_; ++i) {
    if (i == leave_slot || alpha[i] == 0.0) continue;
    eta_idx_.push_back(i);
    eta_val_.push_back(alpha[i]);
  }
  eta_start_.push_back(static_cast<int>(eta_idx_.size()));
  ++update_count_;
  update_nnz_ = static_cast<long>(eta_idx_.size());
}

}  // namespace xplain::solver
