#include "solver/lu.h"

#include <algorithm>
#include <cmath>

namespace xplain::solver {

namespace {

/// Entries below the column max by more than this factor are inadmissible
/// pivots (threshold partial pivoting): sparser rows may be preferred, but
/// never at more than 10x growth per elimination step.
constexpr double kPivotThreshold = 0.1;
/// Absolute floor below which a column is treated as numerically zero.
constexpr double kSingularTol = 1e-11;

}  // namespace

// Nonrecursive depth-first search over the partially built L: the reach of
// `row` gives every row whose solution component the triangular solve can
// touch.  Rows are pushed onto xi_[top..m_) in topological order.
int LuFactorization::dfs(int row, int top, const std::vector<int>& lp,
                         const std::vector<int>& li) {
  int head = 0;
  stack_[0] = row;
  while (head >= 0) {
    const int r = stack_[head];
    if (visited_[r] == 0) {
      visited_[r] = 1;
      const int step = bpinv_[r];
      pstack_[head] = (step < 0) ? 0 : lp[step];
    }
    const int step = bpinv_[r];
    const int pend = (step < 0) ? 0 : lp[step + 1];
    bool descended = false;
    for (int p = pstack_[head]; p < pend; ++p) {
      const int child = li[p];
      if (visited_[child] != 0) continue;
      pstack_[head] = p + 1;
      stack_[++head] = child;
      descended = true;
      break;
    }
    if (!descended) {
      xi_[--top] = r;
      --head;
    }
  }
  return top;
}

bool LuFactorization::factorize(int m, const std::vector<int>& cp,
                                const std::vector<int>& ci,
                                const std::vector<double>& cx,
                                const std::vector<int>& basis_cols) {
  // Build into the b*-scratch so a singular basis leaves the active
  // factorization (and its eta file) untouched.
  // Markowitz-style column preorder: sparsest basis columns pivot first.
  // Counting sort by column length (stable, O(m + maxlen)): warm solves
  // factorize on every install, so this runs in the sampling hot loops.
  border_.resize(m);
  int maxlen = 0;
  for (int k = 0; k < m; ++k) {
    const int j = basis_cols[k];
    maxlen = std::max(maxlen, cp[j + 1] - cp[j]);
  }
  rdeg_.assign(maxlen + 2, 0);  // reused as bucket counters first
  for (int k = 0; k < m; ++k) {
    const int j = basis_cols[k];
    ++rdeg_[cp[j + 1] - cp[j] + 1];
  }
  for (int l = 0; l <= maxlen; ++l) rdeg_[l + 1] += rdeg_[l];
  for (int k = 0; k < m; ++k) {
    const int j = basis_cols[k];
    border_[rdeg_[cp[j + 1] - cp[j]]++] = k;
  }
  // Static row degrees of the basis matrix, for the sparsity tie-break.
  rdeg_.assign(m, 0);
  for (int k = 0; k < m; ++k) {
    const int j = basis_cols[k];
    for (int t = cp[j]; t < cp[j + 1]; ++t) ++rdeg_[ci[t]];
  }

  bpinv_.assign(m, -1);
  bpivrow_.assign(m, -1);
  bcolorder_.resize(m);
  blp_.assign(1, 0);
  bli_.clear();
  blx_.clear();
  bup_.assign(1, 0);
  bui_.clear();
  bux_.clear();
  budiag_.resize(m);
  xi_.resize(m);
  stack_.resize(m);
  pstack_.resize(m);
  visited_.assign(m, 0);
  xw_.assign(m, 0.0);

  for (int k = 0; k < m; ++k) {
    const int slot = border_[k];
    const int j = basis_cols[slot];
    bcolorder_[k] = slot;

    // --- Symbolic: reach of column j's rows through the current L. ---
    int top = m;
    for (int t = cp[j]; t < cp[j + 1]; ++t)
      if (visited_[ci[t]] == 0) top = dfs(ci[t], top, blp_, bli_);

    // --- Numeric sparse triangular solve x = L \ B_j. ---
    for (int p = top; p < m; ++p) xw_[xi_[p]] = 0.0;
    for (int t = cp[j]; t < cp[j + 1]; ++t) xw_[ci[t]] += cx[t];
    for (int p = top; p < m; ++p) {
      const int r = xi_[p];
      const int step = bpinv_[r];
      if (step < 0) continue;
      const double xv = xw_[r];
      if (xv == 0.0) continue;
      for (int q = blp_[step]; q < blp_[step + 1]; ++q)
        xw_[bli_[q]] -= blx_[q] * xv;
    }

    // --- Pivot: threshold partial pivoting with a static-degree
    // (Markowitz-style) tie-break among admissible rows. ---
    double xmax = 0.0;
    for (int p = top; p < m; ++p) {
      const int r = xi_[p];
      if (bpinv_[r] < 0) xmax = std::max(xmax, std::abs(xw_[r]));
    }
    if (xmax <= kSingularTol) {
      for (int p = top; p < m; ++p) visited_[xi_[p]] = 0;
      return false;  // structurally or numerically singular
    }
    int pivot_row = -1;
    int pivot_deg = m + 1;
    double pivot_abs = 0.0;
    for (int p = top; p < m; ++p) {
      const int r = xi_[p];
      if (bpinv_[r] >= 0) continue;
      const double a = std::abs(xw_[r]);
      if (a < kPivotThreshold * xmax || a <= kSingularTol) continue;
      if (rdeg_[r] < pivot_deg ||
          (rdeg_[r] == pivot_deg && a > pivot_abs)) {
        pivot_deg = rdeg_[r];
        pivot_abs = a;
        pivot_row = r;
      }
    }
    const double piv = xw_[pivot_row];

    // --- Emit U column k (pivoted rows) and L column k (multipliers). ---
    for (int p = top; p < m; ++p) {
      const int r = xi_[p];
      visited_[r] = 0;  // reset marks for the next column
      const double xv = xw_[r];
      const int step = bpinv_[r];
      if (step >= 0) {
        if (xv != 0.0) {
          bui_.push_back(step);
          bux_.push_back(xv);
        }
      } else if (r != pivot_row) {
        const double f = xv / piv;
        if (f != 0.0) {
          bli_.push_back(r);
          blx_.push_back(f);
        }
      }
    }
    budiag_[k] = piv;
    bpivrow_[k] = pivot_row;
    bpinv_[pivot_row] = k;
    blp_.push_back(static_cast<int>(bli_.size()));
    bup_.push_back(static_cast<int>(bui_.size()));
  }

  // Success: publish the new factors and clear the eta file.
  m_ = m;
  lp_.swap(blp_);
  li_.swap(bli_);
  lx_.swap(blx_);
  up_.swap(bup_);
  ui_.swap(bui_);
  ux_.swap(bux_);
  udiag_.swap(budiag_);
  pivrow_.swap(bpivrow_);
  colorder_.swap(bcolorder_);
  pinv_.swap(bpinv_);
  eta_start_.assign(1, 0);
  eta_slot_.clear();
  eta_piv_.clear();
  eta_idx_.clear();
  eta_val_.clear();
  return true;
}

void LuFactorization::ftran(std::vector<double>& x) const {
  // L-pass (forward, unit diagonal): y_k = (L^-1 P b)_k in step space.
  step_.resize(m_);
  for (int k = 0; k < m_; ++k) {
    const double yk = x[pivrow_[k]];
    step_[k] = yk;
    if (yk == 0.0) continue;
    for (int p = lp_[k]; p < lp_[k + 1]; ++p) x[li_[p]] -= lx_[p] * yk;
  }
  // U-pass (backward, column-oriented scatter).
  for (int k = m_ - 1; k >= 0; --k) {
    const double zk = step_[k] / udiag_[k];
    step_[k] = zk;
    if (zk == 0.0) continue;
    for (int p = up_[k]; p < up_[k + 1]; ++p) step_[ui_[p]] -= ux_[p] * zk;
  }
  // Scatter to slot space, then replay the eta file oldest-first.
  for (int k = 0; k < m_; ++k) x[colorder_[k]] = step_[k];
  const int etas = eta_count();
  for (int e = 0; e < etas; ++e) {
    const int slot = eta_slot_[e];
    const double t = x[slot] / eta_piv_[e];
    x[slot] = t;
    if (t == 0.0) continue;
    for (int p = eta_start_[e]; p < eta_start_[e + 1]; ++p)
      x[eta_idx_[p]] -= eta_val_[p] * t;
  }
}

void LuFactorization::btran(std::vector<double>& y) const {
  // Eta transposes, newest-first: u^T E_1..E_k = c^T peels E_k off first.
  for (int e = eta_count() - 1; e >= 0; --e) {
    const int slot = eta_slot_[e];
    double t = y[slot];
    for (int p = eta_start_[e]; p < eta_start_[e + 1]; ++p)
      t -= eta_val_[p] * y[eta_idx_[p]];
    y[slot] = t / eta_piv_[e];
  }
  // U^T-pass (forward, gather): column k of U is row k of U^T.
  step_.resize(m_);
  for (int k = 0; k < m_; ++k) {
    double acc = y[colorder_[k]];
    for (int p = up_[k]; p < up_[k + 1]; ++p) acc -= ux_[p] * step_[ui_[p]];
    step_[k] = acc / udiag_[k];
  }
  // L^T-pass (backward, gather): entries of L column k live in rows pivoted
  // at later steps, so their solution components are already final.
  for (int k = m_ - 1; k >= 0; --k) {
    double acc = step_[k];
    for (int p = lp_[k]; p < lp_[k + 1]; ++p)
      acc -= lx_[p] * step_[pinv_[li_[p]]];
    step_[k] = acc;
  }
  for (int k = 0; k < m_; ++k) y[pivrow_[k]] = step_[k];
}

void LuFactorization::push_eta(int leave_slot, const std::vector<double>& alpha) {
  eta_slot_.push_back(leave_slot);
  eta_piv_.push_back(alpha[leave_slot]);
  for (int i = 0; i < m_; ++i) {
    if (i == leave_slot || alpha[i] == 0.0) continue;
    eta_idx_.push_back(i);
    eta_val_.push_back(alpha[i]);
  }
  eta_start_.push_back(static_cast<int>(eta_idx_.size()));
}

}  // namespace xplain::solver
