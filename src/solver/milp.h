// Branch-and-bound MILP solver over the simplex LP relaxation.
//
// Best-bound node selection with a depth-first "plunge" to find incumbents
// early, most-fractional branching, and a rounding primal heuristic.  This
// is the component that lets the MetaOpt-style analyzers solve their
// bi-level rewrites without an external MILP solver.
#pragma once

#include <functional>

#include "solver/lp.h"
#include "solver/simplex.h"

namespace xplain::solver {

struct MilpOptions {
  SimplexOptions lp;
  long max_nodes = 200'000;
  double int_tol = 1e-7;
  /// Absolute optimality gap at which the search stops.
  double gap_tol = 1e-9;
  /// Wall-clock budget; kLimit with the best incumbent when exceeded.
  double time_limit_s = 120.0;
  /// Optional callback invoked on every new incumbent (obj, x).
  std::function<void(double, const std::vector<double>&)> on_incumbent;
};

struct MilpResult {
  Status status = Status::kError;
  double obj = 0.0;            // incumbent objective (valid unless kInfeasible)
  std::vector<double> x;       // incumbent point
  double best_bound = 0.0;     // proven bound on the optimum
  long nodes = 0;
  long lp_solves = 0;          // node relaxations actually solved
  long lp_iterations = 0;      // simplex pivots across all node LPs
};

MilpResult solve_milp(const LpProblem& p, const MilpOptions& opts = {});

}  // namespace xplain::solver
