#include "solver/presolve.h"

#include <cmath>
#include <vector>

namespace xplain::solver {

namespace {

// One propagation sweep; returns -1 on proven infeasibility, else the
// number of tightenings.
int sweep(LpProblem& p, double tol) {
  int tightened = 0;
  const double kBig = 1e17;  // treat anything beyond as infinite

  for (const auto& row : p.rows()) {
    // Row activity bounds.
    double min_act = 0.0, max_act = 0.0;
    int min_inf = 0, max_inf = 0;  // count of infinite contributions
    for (const auto& [j, a] : row.coef) {
      const double lo = p.lo(j), hi = p.hi(j);
      const double cmin = a > 0 ? a * lo : a * hi;
      const double cmax = a > 0 ? a * hi : a * lo;
      if (cmin <= -kBig || std::isinf(cmin))
        ++min_inf;
      else
        min_act += cmin;
      if (cmax >= kBig || std::isinf(cmax))
        ++max_inf;
      else
        max_act += cmax;
    }

    const bool need_upper =
        row.sense == RowSense::kLe || row.sense == RowSense::kEq;
    const bool need_lower =
        row.sense == RowSense::kGe || row.sense == RowSense::kEq;

    // Infeasibility of the row itself.
    const double feas_tol = 1e-7 * (1.0 + std::abs(row.rhs));
    if (need_upper && min_inf == 0 && min_act > row.rhs + feas_tol) return -1;
    if (need_lower && max_inf == 0 && max_act < row.rhs - feas_tol) return -1;

    // Implied per-column bounds.
    for (const auto& [j, a] : row.coef) {
      if (a == 0.0) continue;
      const double lo = p.lo(j), hi = p.hi(j);
      const double cmin = a > 0 ? a * lo : a * hi;
      const double cmax = a > 0 ? a * hi : a * lo;

      // activity bounds excluding column j (only valid if j was the sole
      // infinite contributor or there were none).
      const bool cmin_inf = std::isinf(cmin) || cmin <= -kBig;
      const bool cmax_inf = std::isinf(cmax) || cmax >= kBig;
      const bool min_wo_ok = (min_inf - (cmin_inf ? 1 : 0)) == 0;
      const bool max_wo_ok = (max_inf - (cmax_inf ? 1 : 0)) == 0;
      const double min_wo = min_act - (cmin_inf ? 0.0 : cmin);
      const double max_wo = max_act - (cmax_inf ? 0.0 : cmax);

      double new_lo = lo, new_hi = hi;
      const double slack = 1e-9 * (1.0 + std::abs(row.rhs));
      if (need_upper && min_wo_ok) {
        // a_j * x_j <= rhs - min_wo
        const double bound = (row.rhs - min_wo) / a + (a > 0 ? slack : -slack);
        if (a > 0)
          new_hi = std::min(new_hi, bound);
        else
          new_lo = std::max(new_lo, bound);
      }
      if (need_lower && max_wo_ok) {
        // a_j * x_j >= rhs - max_wo
        const double bound = (row.rhs - max_wo) / a + (a > 0 ? -slack : slack);
        if (a > 0)
          new_lo = std::max(new_lo, bound);
        else
          new_hi = std::min(new_hi, bound);
      }
      if (p.integer(j)) {
        new_lo = std::ceil(new_lo - 1e-6);
        new_hi = std::floor(new_hi + 1e-6);
      }
      if (new_lo > new_hi + 1e-9) return -1;
      if (new_lo > lo + tol || new_hi < hi - tol) {
        p.set_bounds(j, std::max(lo, new_lo), std::min(hi, new_hi));
        ++tightened;
      }
    }
  }
  return tightened;
}

}  // namespace

PropagateResult propagate_bounds(LpProblem& p, int max_rounds, double tol) {
  PropagateResult res;
  for (int r = 0; r < max_rounds; ++r) {
    ++res.rounds;
    const int t = sweep(p, tol);
    if (t < 0) {
      res.feasible = false;
      return res;
    }
    res.tightened += t;
    if (t == 0) break;
  }
  return res;
}

}  // namespace xplain::solver
