#include "solver/lp.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace xplain::solver {

const char* to_string(Status s) {
  switch (s) {
    case Status::kOptimal: return "optimal";
    case Status::kInfeasible: return "infeasible";
    case Status::kUnbounded: return "unbounded";
    case Status::kLimit: return "limit";
    case Status::kError: return "error";
  }
  return "?";
}

int LpProblem::add_col(double lo, double hi, double obj, bool integer,
                       std::string name) {
  int j = num_cols();
  lo_.push_back(lo);
  hi_.push_back(hi);
  obj_.push_back(obj);
  integer_.push_back(integer ? 1 : 0);
  if (name.empty()) name = "c" + std::to_string(j);
  col_names_.push_back(std::move(name));
  return j;
}

void LpProblem::add_row(std::vector<std::pair<int, double>> coef,
                        RowSense sense, double rhs, std::string name) {
  // Merge duplicates and drop zeros so the simplex sees clean columns.
  std::map<int, double> merged;
  for (const auto& [j, v] : coef) merged[j] += v;
  Row r;
  r.sense = sense;
  r.rhs = rhs;
  if (name.empty()) name = "r" + std::to_string(num_rows());
  r.name = std::move(name);
  r.coef.reserve(merged.size());
  for (const auto& [j, v] : merged)
    if (std::abs(v) > 1e-12) r.coef.emplace_back(j, v);
  rows_.push_back(std::move(r));
}

bool LpProblem::is_mip() const {
  return std::any_of(integer_.begin(), integer_.end(),
                     [](std::uint8_t b) { return b != 0; });
}

double LpProblem::eval_obj(const std::vector<double>& x) const {
  double v = 0.0;
  for (int j = 0; j < num_cols(); ++j) v += obj_[j] * x[j];
  return v;
}

bool LpProblem::feasible(const std::vector<double>& x, double tol) const {
  if (static_cast<int>(x.size()) != num_cols()) return false;
  for (int j = 0; j < num_cols(); ++j) {
    if (x[j] < lo_[j] - tol || x[j] > hi_[j] + tol) return false;
    if (integer_[j] && std::abs(x[j] - std::round(x[j])) > tol) return false;
  }
  for (const auto& r : rows_) {
    double lhs = 0.0;
    for (const auto& [j, v] : r.coef) lhs += v * x[j];
    switch (r.sense) {
      case RowSense::kLe:
        if (lhs > r.rhs + tol) return false;
        break;
      case RowSense::kGe:
        if (lhs < r.rhs - tol) return false;
        break;
      case RowSense::kEq:
        if (std::abs(lhs - r.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

std::string LpProblem::to_string() const {
  std::ostringstream os;
  os << (sense == Sense::kMinimize ? "min" : "max");
  for (int j = 0; j < num_cols(); ++j)
    if (obj_[j] != 0.0) os << " + " << obj_[j] << "*" << col_names_[j];
  os << "\n";
  for (const auto& r : rows_) {
    os << "  " << r.name << ":";
    for (const auto& [j, v] : r.coef) os << " + " << v << "*" << col_names_[j];
    os << (r.sense == RowSense::kLe   ? " <= "
           : r.sense == RowSense::kGe ? " >= "
                                      : " == ")
       << r.rhs << "\n";
  }
  for (int j = 0; j < num_cols(); ++j) {
    os << "  " << lo_[j] << " <= " << col_names_[j] << " <= " << hi_[j];
    if (integer_[j]) os << " (int)";
    os << "\n";
  }
  return os.str();
}

}  // namespace xplain::solver
