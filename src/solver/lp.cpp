#include "solver/lp.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace xplain::solver {

const char* to_string(Status s) {
  switch (s) {
    case Status::kOptimal: return "optimal";
    case Status::kInfeasible: return "infeasible";
    case Status::kUnbounded: return "unbounded";
    case Status::kLimit: return "limit";
    case Status::kError: return "error";
  }
  return "?";
}

int LpProblem::add_col(double lo, double hi, double obj, bool integer,
                       std::string name) {
  int j = num_cols();
  lo_.push_back(lo);
  hi_.push_back(hi);
  obj_.push_back(obj);
  integer_.push_back(integer ? 1 : 0);
  col_names_.push_back(std::move(name));  // empty = lazy "c<j>" (col_name())
  return j;
}

void LpProblem::add_row(std::vector<std::pair<int, double>> coef,
                        RowSense sense, double rhs, std::string name) {
  // Merge duplicates and drop zeros so the simplex sees clean columns.
  // Sort + in-place merge: rows arrive as small vectors, and a std::map
  // here costs one node allocation per term during every model build.
  std::sort(coef.begin(), coef.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t out = 0;
  for (std::size_t i = 0; i < coef.size();) {
    int col = coef[i].first;
    double sum = 0.0;
    for (; i < coef.size() && coef[i].first == col; ++i) sum += coef[i].second;
    if (std::abs(sum) > 1e-12) coef[out++] = {col, sum};
  }
  coef.resize(out);
  Row r;
  r.sense = sense;
  r.rhs = rhs;
  r.name = std::move(name);  // empty = lazy "r<i>" in dumps
  r.coef = std::move(coef);
  rows_.push_back(std::move(r));
}

bool LpProblem::is_mip() const {
  return std::any_of(integer_.begin(), integer_.end(),
                     [](std::uint8_t b) { return b != 0; });
}

double LpProblem::eval_obj(const std::vector<double>& x) const {
  double v = 0.0;
  for (int j = 0; j < num_cols(); ++j) v += obj_[j] * x[j];
  return v;
}

bool LpProblem::feasible(const std::vector<double>& x, double tol) const {
  if (static_cast<int>(x.size()) != num_cols()) return false;
  for (int j = 0; j < num_cols(); ++j) {
    if (x[j] < lo_[j] - tol || x[j] > hi_[j] + tol) return false;
    if (integer_[j] && std::abs(x[j] - std::round(x[j])) > tol) return false;
  }
  for (const auto& r : rows_) {
    double lhs = 0.0;
    for (const auto& [j, v] : r.coef) lhs += v * x[j];
    switch (r.sense) {
      case RowSense::kLe:
        if (lhs > r.rhs + tol) return false;
        break;
      case RowSense::kGe:
        if (lhs < r.rhs - tol) return false;
        break;
      case RowSense::kEq:
        if (std::abs(lhs - r.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

std::string LpProblem::to_string() const {
  std::ostringstream os;
  os << (sense == Sense::kMinimize ? "min" : "max");
  for (int j = 0; j < num_cols(); ++j)
    if (obj_[j] != 0.0) os << " + " << obj_[j] << "*" << col_name(j);
  os << "\n";
  for (int i = 0; i < num_rows(); ++i) {
    const Row& r = rows_[i];
    os << "  " << (r.name.empty() ? "r" + std::to_string(i) : r.name) << ":";
    for (const auto& [j, v] : r.coef) os << " + " << v << "*" << col_name(j);
    os << (r.sense == RowSense::kLe   ? " <= "
           : r.sense == RowSense::kGe ? " >= "
                                      : " == ")
       << r.rhs << "\n";
  }
  for (int j = 0; j < num_cols(); ++j) {
    os << "  " << lo_[j] << " <= " << col_name(j) << " <= " << hi_[j];
    if (integer_[j]) os << " (int)";
    os << "\n";
  }
  return os.str();
}

}  // namespace xplain::solver
