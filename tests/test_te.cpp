// Tests for the traffic-engineering substrate: topologies, k-shortest
// paths, optimal max-flow, the Demand Pinning heuristic, and the agreement
// between DP's simulation and its DSL/MILP encoding (Fig. 1b vs Fig. 4a).
#include <gtest/gtest.h>

#include "flowgraph/compiler.h"
#include "te/demand_pinning.h"
#include "te/maxflow.h"
#include "util/random.h"

using namespace xplain::te;
namespace xs = xplain::solver;

TEST(Topology, Fig1aShape) {
  auto t = Topology::fig1a();
  EXPECT_EQ(t.num_nodes(), 5);
  EXPECT_EQ(t.num_links(), 10);  // 5 bidirectional links
  ASSERT_TRUE(t.find_link(0, 1).valid());
  EXPECT_DOUBLE_EQ(t.link(t.find_link(0, 1)).capacity, 100);
  EXPECT_DOUBLE_EQ(t.link(t.find_link(3, 4)).capacity, 50);
  EXPECT_EQ(t.link_name(t.find_link(0, 1)), "1-2");
}

TEST(Topology, GeneratorsProduceExpectedShapes) {
  EXPECT_EQ(Topology::line(4, 10).num_links(), 6);
  EXPECT_EQ(Topology::ring(5, 10).num_links(), 10);
  EXPECT_EQ(Topology::grid(3, 2, 10).num_nodes(), 6);
  EXPECT_EQ(Topology::grid(3, 2, 10).num_links(), 2 * 7);
  xplain::util::Rng rng(1);
  auto t = Topology::random_connected(8, 0.2, 5, 20, rng);
  EXPECT_EQ(t.num_nodes(), 8);
  EXPECT_GE(t.num_links(), 2 * 7);  // at least the spanning tree
}

TEST(Paths, ShortestOnFig1a) {
  auto t = Topology::fig1a();
  Path p = shortest_path(t, 0, 2);  // 1 ~> 3
  EXPECT_EQ(p.name(), "1-2-3");
  EXPECT_EQ(p.hops(), 2);
}

TEST(Paths, KShortestOnFig1a) {
  auto t = Topology::fig1a();
  auto ps = k_shortest_paths(t, 0, 2, 3);
  ASSERT_GE(ps.size(), 2u);
  EXPECT_EQ(ps[0].name(), "1-2-3");
  EXPECT_EQ(ps[1].name(), "1-4-5-3");  // the paper's alternate path
  // Non-decreasing hop counts.
  for (std::size_t i = 1; i < ps.size(); ++i)
    EXPECT_GE(ps[i].hops(), ps[i - 1].hops());
}

TEST(Paths, UnreachableReturnsEmpty) {
  Topology t(3);
  t.add_link(0, 1, 10);  // no path to node 2
  EXPECT_TRUE(shortest_path(t, 0, 2).empty());
  EXPECT_TRUE(k_shortest_paths(t, 0, 2, 3).empty());
}

TEST(Paths, BottleneckCapacity) {
  auto t = Topology::fig1a();
  auto ps = k_shortest_paths(t, 0, 2, 2);
  EXPECT_DOUBLE_EQ(bottleneck_capacity(t, ps[0]), 100);
  EXPECT_DOUBLE_EQ(bottleneck_capacity(t, ps[1]), 50);
}

TEST(Paths, KShortestAreSimpleAndDistinct) {
  xplain::util::Rng rng(7);
  auto t = Topology::random_connected(9, 0.3, 1, 10, rng);
  auto ps = k_shortest_paths(t, 0, 8, 5);
  for (std::size_t a = 0; a < ps.size(); ++a) {
    // Simple: no repeated nodes.
    std::set<int> seen(ps[a].nodes.begin(), ps[a].nodes.end());
    EXPECT_EQ(seen.size(), ps[a].nodes.size());
    // Valid: every hop is a real link.
    for (LinkId l : ps[a].links(t)) EXPECT_TRUE(l.valid());
    for (std::size_t b = a + 1; b < ps.size(); ++b)
      EXPECT_FALSE(ps[a] == ps[b]);
  }
}

// ---------------------------------------------------------------------------
// Fig. 1a numbers: OPT routes 250, DP routes 150 at threshold 50.
// ---------------------------------------------------------------------------

TEST(MaxFlow, Fig1aOptimalIs250) {
  auto inst = TeInstance::fig1a_example();
  std::vector<double> d = {50, 100, 100};  // 1~>3, 1~>2, 2~>3
  auto r = solve_max_flow(inst, d);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.total, 250.0, 1e-6);
  // OPT sends the 1~>3 demand around the detour (paper's table).
  EXPECT_NEAR(r.flow[0][1], 50.0, 1e-6);
}

TEST(MaxFlow, RespectsLinkCapacities) {
  auto inst = TeInstance::fig1a_example();
  std::vector<double> d = {100, 100, 100};
  auto r = solve_max_flow(inst, d);
  ASSERT_TRUE(r.feasible);
  auto util = r.link_utilization(inst);
  for (int l = 0; l < inst.topo.num_links(); ++l)
    EXPECT_LE(util[l], inst.topo.link(LinkId{l}).capacity + 1e-6);
}

TEST(DemandPinning, Fig1aRoutes150) {
  auto inst = TeInstance::fig1a_example();
  DpConfig cfg{50.0};
  std::vector<double> d = {50, 100, 100};
  auto r = run_demand_pinning(inst, cfg, d);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.total, 150.0, 1e-6);
  EXPECT_TRUE(r.pinned[0]);   // 1~>3 at 50 <= T
  EXPECT_FALSE(r.pinned[1]);
  EXPECT_FALSE(r.pinned[2]);
  // Pinned demand occupies the shortest path 1-2-3.
  EXPECT_NEAR(r.flow[0][0], 50.0, 1e-6);
}

TEST(DemandPinning, Fig1aGapIs100) {
  auto inst = TeInstance::fig1a_example();
  EXPECT_NEAR(dp_gap(inst, DpConfig{50.0}, {50, 100, 100}), 100.0, 1e-6);
}

TEST(DemandPinning, NoPinningWhenAllLarge) {
  auto inst = TeInstance::fig1a_example();
  DpConfig cfg{50.0};
  std::vector<double> d = {60, 100, 100};
  auto r = run_demand_pinning(inst, cfg, d);
  ASSERT_TRUE(r.feasible);
  // Nothing pinned: DP == OPT.
  auto opt = solve_max_flow(inst, d);
  EXPECT_NEAR(r.total, opt.total, 1e-6);
  EXPECT_NEAR(dp_gap(inst, cfg, d), 0.0, 1e-6);
}

TEST(DemandPinning, GapIsNonNegativeProperty) {
  auto inst = TeInstance::fig1a_example();
  DpConfig cfg{50.0};
  xplain::util::Rng rng(11);
  for (int it = 0; it < 50; ++it) {
    std::vector<double> d(3);
    for (auto& v : d) v = rng.uniform(0, 100);
    EXPECT_GE(dp_gap(inst, cfg, d), -1e-6);
  }
}

TEST(MaxFlowSolver, MatchesDirectSolveAcrossDemandsResidualsSkips) {
  // The warm-started structure cache must be a drop-in for solve_max_flow
  // under every (d, residual, skip) combination dp_gap exercises.
  auto inst = TeInstance::fig1a_example();
  MaxFlowSolver mf(inst);
  xplain::util::Rng rng(17);
  for (int it = 0; it < 60; ++it) {
    std::vector<double> d(3);
    for (auto& v : d) v = rng.uniform(0, 100);
    std::vector<double> residual(inst.topo.num_links());
    for (int l = 0; l < inst.topo.num_links(); ++l)
      residual[l] = rng.uniform(0.2, 1.0) * inst.topo.link(LinkId{l}).capacity;
    std::vector<bool> skip(3);
    for (int k = 0; k < 3; ++k) skip[k] = rng.bernoulli(0.3);

    const auto direct = solve_max_flow(inst, d);
    const auto cached = mf.solve(d);
    ASSERT_EQ(direct.feasible, cached.feasible);
    EXPECT_NEAR(direct.total, cached.total, 1e-6);

    const auto direct_r = solve_max_flow(inst, d, &residual, &skip);
    const auto cached_r = mf.solve(d, &residual, &skip);
    ASSERT_EQ(direct_r.feasible, cached_r.feasible);
    EXPECT_NEAR(direct_r.total, cached_r.total, 1e-6);
    // Skipped pairs must carry no flow in the cached formulation.
    for (int k = 0; k < 3; ++k) {
      if (!skip[k]) continue;
      for (double f : cached_r.flow[k]) EXPECT_NEAR(f, 0.0, 1e-9);
    }
  }
}

TEST(MaxFlowSolver, DpGapAgreesWithUncachedPath) {
  auto inst = TeInstance::fig1a_example();
  DpConfig cfg{50.0};
  MaxFlowSolver mf(inst);
  xplain::util::Rng rng(23);
  for (int it = 0; it < 50; ++it) {
    std::vector<double> d(3);
    for (auto& v : d) v = rng.uniform(0, 100);
    EXPECT_NEAR(dp_gap(inst, cfg, d), dp_gap(inst, cfg, d, &mf), 1e-6);
  }
}

TEST(MaxFlowSolver, SolveIsAPureFunctionOfItsArguments) {
  // The fixed reference basis means call history cannot change results —
  // the property the per-thread evaluator caches rely on for bitwise
  // parallel determinism.
  auto inst = TeInstance::fig1a_example();
  MaxFlowSolver a(inst), b(inst);
  std::vector<double> d1{90, 80, 70}, d2{10, 95, 40};
  // Drive `a` through extra history before the comparison solves.
  for (int it = 0; it < 5; ++it) a.solve({5.0 * it, 100.0 - it, 50.0});
  const auto ra = a.solve(d1);
  const auto rb = b.solve(d1);
  EXPECT_EQ(ra.total, rb.total);  // bitwise
  EXPECT_EQ(ra.flow, rb.flow);
  const auto ra2 = a.solve(d2);
  const auto rb2 = b.solve(d2);
  EXPECT_EQ(ra2.total, rb2.total);
  EXPECT_EQ(ra2.flow, rb2.flow);
}

TEST(DemandPinning, PinnedOverloadIsInfeasible) {
  // Two parallel demands pinned onto one tiny link exceed its capacity.
  Topology t(2);
  t.add_link(0, 1, 10);
  auto inst = TeInstance::make(t, {{0, 1}, {0, 1}}, 1, 100);
  DpConfig cfg{50.0};
  auto r = run_demand_pinning(inst, cfg, {8, 8});  // 16 > 10 pinned
  EXPECT_FALSE(r.feasible);
  EXPECT_NEAR(dp_gap(inst, cfg, {8, 8}), 0.0, 1e-9);  // excluded point
}

// ---------------------------------------------------------------------------
// DSL face: the Fig. 4a network agrees with the direct formulations.
// ---------------------------------------------------------------------------

TEST(DpNetwork, StructureMatchesFig4a) {
  auto inst = TeInstance::fig1a_example();
  auto dp = build_dp_network(inst);
  EXPECT_TRUE(dp.net.validate().empty());
  EXPECT_EQ(dp.net.input_sources().size(), 3u);
  // 3 demand sources + paths + 10 links + met/unmet sinks.
  EXPECT_EQ(static_cast<int>(dp.demand_nodes.size()), inst.num_pairs());
  for (int k = 0; k < inst.num_pairs(); ++k)
    EXPECT_EQ(dp.path_edges[k].size(), inst.pairs[k].paths.size());
}

TEST(DpNetwork, OptimalViaDslMatchesDirectLp) {
  auto inst = TeInstance::fig1a_example();
  auto dp = build_dp_network(inst);
  xplain::util::Rng rng(5);
  for (int it = 0; it < 5; ++it) {
    std::vector<double> d(3);
    for (auto& v : d) v = rng.uniform(0, 100);
    auto c = xplain::flowgraph::compile(dp.net);
    fix_demands(c, dp, d);
    auto s = c.model.solve();  // min unmet (pure LP: no binaries)
    ASSERT_EQ(s.status, xs::Status::kOptimal);
    auto opt = solve_max_flow(inst, d);
    const double total_demand = d[0] + d[1] + d[2];
    EXPECT_NEAR(s.obj, total_demand - opt.total, 1e-5) << "iter " << it;
  }
}

TEST(DpNetwork, PinningRuleMatchesSimulation) {
  auto inst = TeInstance::fig1a_example();
  auto dp = build_dp_network(inst);
  DpConfig cfg{50.0};
  xplain::model::HelperConfig hcfg;
  hcfg.big_m = 1000;
  hcfg.eps = 0.5;
  xplain::util::Rng rng(6);
  for (int it = 0; it < 5; ++it) {
    std::vector<double> d(3);
    // Integer demands keep us off the indicator's eps boundary.
    for (auto& v : d) v = rng.uniform_int(0, 100);
    auto sim = run_demand_pinning(inst, cfg, d);
    if (!sim.feasible) continue;
    auto c = xplain::flowgraph::compile(dp.net);
    auto pinned = add_pinning_rule(c, dp, cfg, hcfg);
    fix_demands(c, dp, d);
    auto s = c.model.solve();
    ASSERT_EQ(s.status, xs::Status::kOptimal) << "iter " << it;
    const double total_demand = d[0] + d[1] + d[2];
    EXPECT_NEAR(total_demand - s.obj, sim.total, 1e-4)
        << "iter " << it << " d=" << d[0] << "," << d[1] << "," << d[2];
    for (int k = 0; k < 3; ++k)
      EXPECT_NEAR(s.x[pinned[k].index], sim.pinned[k] ? 1 : 0, 1e-6);
  }
}

TEST(DpNetwork, FlowMappingIsConsistent) {
  auto inst = TeInstance::fig1a_example();
  auto dp = build_dp_network(inst);
  std::vector<double> d = {50, 100, 100};
  auto sim = run_demand_pinning(inst, DpConfig{50.0}, d);
  auto flows = dp_network_flows(dp, inst, d, sim.flow);
  ASSERT_EQ(static_cast<int>(flows.size()), dp.net.num_edges());
  // Pinned 1~>3 flow appears on its shortest-path demand edge.
  EXPECT_NEAR(flows[dp.path_edges[0][0].v], 50.0, 1e-9);
  // Unmet accounting: total demand - routed == sum of unmet edges.
  double unmet = 0;
  for (auto e : dp.unmet_edges) unmet += flows[e.v];
  EXPECT_NEAR(unmet, (d[0] + d[1] + d[2]) - sim.total, 1e-6);
}
