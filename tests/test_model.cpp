// Tests for the modeling layer: expression algebra, Model solving, and the
// MetaOpt-style helper combinators (Fig. 1b/1c building blocks).
#include <gtest/gtest.h>

#include "model/helpers.h"
#include "model/model.h"

using namespace xplain::model;
namespace xs = xplain::solver;

TEST(LinExpr, Algebra) {
  Var a{0}, b{1};
  LinExpr e = 2 * a + 3 * b + 5.0;
  EXPECT_DOUBLE_EQ(e.constant(), 5.0);
  EXPECT_DOUBLE_EQ(e.terms().at(0), 2.0);
  EXPECT_DOUBLE_EQ(e.terms().at(1), 3.0);

  LinExpr f = e - 2 * a;
  EXPECT_EQ(f.terms().count(0), 0u);  // canceled terms disappear

  LinExpr g = -(f * 2.0);
  EXPECT_DOUBLE_EQ(g.constant(), -10.0);
  EXPECT_DOUBLE_EQ(g.terms().at(1), -6.0);
}

TEST(LinExpr, Eval) {
  Var a{0}, b{1};
  LinExpr e = 2 * a - 1 * b + 1.0;
  EXPECT_DOUBLE_EQ(e.eval({3.0, 4.0}), 3.0);
}

TEST(Model, SolveLpWithConstantObjective) {
  Model m;
  Var x = m.add_continuous(0, 10, "x");
  m.add(LinExpr(x) <= LinExpr(4.0));
  m.set_objective(xs::Sense::kMaximize, LinExpr(x) + 7.0);
  auto s = m.solve_lp();
  ASSERT_EQ(s.status, xs::Status::kOptimal);
  EXPECT_NEAR(s.obj, 11.0, 1e-8);  // constant folded back in
}

TEST(Model, SolveDispatchesLpWhenNoIntegers) {
  Model m;
  Var x = m.add_continuous(0, 1, "x");
  m.set_objective(xs::Sense::kMaximize, LinExpr(x));
  auto r = m.solve();
  ASSERT_EQ(r.status, xs::Status::kOptimal);
  EXPECT_EQ(r.nodes, 1);
  EXPECT_NEAR(r.obj, 1.0, 1e-9);
}

TEST(Model, ConstraintDirections) {
  Model m;
  Var x = m.add_continuous(0, 100, "x");
  m.add(LinExpr(x) >= LinExpr(3.0));
  m.add(2 * x == LinExpr(10.0));
  m.set_objective(xs::Sense::kMinimize, LinExpr(x));
  auto s = m.solve_lp();
  ASSERT_EQ(s.status, xs::Status::kOptimal);
  EXPECT_NEAR(s.x[x.index], 5.0, 1e-8);
}

// ---------------------------------------------------------------------------
// Helper combinators.  Each test pins the controlled value with bounds and
// checks the indicator/effect the combinator must produce.
// ---------------------------------------------------------------------------

class IndicatorLeq : public ::testing::TestWithParam<double> {};

TEST_P(IndicatorLeq, TracksThreshold) {
  const double v = GetParam();
  Model m;
  Var x = m.add_continuous(v, v, "x");
  HelperConfig cfg;
  cfg.big_m = 1000;
  Var z = indicator_leq(m, LinExpr(x), 50.0, cfg);
  m.set_objective(xs::Sense::kMaximize, LinExpr(0.0));
  auto r = m.solve();
  ASSERT_EQ(r.status, xs::Status::kOptimal) << "x=" << v;
  EXPECT_NEAR(r.x[z.index], v <= 50.0 ? 1.0 : 0.0, 1e-6) << "x=" << v;
}

INSTANTIATE_TEST_SUITE_P(Sweep, IndicatorLeq,
                         ::testing::Values(0.0, 10.0, 49.9, 50.0, 50.1, 80.0,
                                           999.0));

TEST(Helpers, IndicatorGeq) {
  Model m;
  Var x = m.add_continuous(7, 7, "x");
  Var z1 = indicator_geq(m, LinExpr(x), 5.0);
  Var z2 = indicator_geq(m, LinExpr(x), 9.0);
  m.set_objective(xs::Sense::kMaximize, LinExpr(0.0));
  auto r = m.solve();
  ASSERT_EQ(r.status, xs::Status::kOptimal);
  EXPECT_NEAR(r.x[z1.index], 1.0, 1e-6);
  EXPECT_NEAR(r.x[z2.index], 0.0, 1e-6);
}

TEST(Helpers, LogicAndOrNot) {
  Model m;
  Var a = m.add_var(1, 1, true, "a");
  Var b = m.add_var(0, 0, true, "b");
  Var and_ab = logic_and(m, {a, b});
  Var or_ab = logic_or(m, {a, b});
  Var not_b = logic_not(m, b);
  m.set_objective(xs::Sense::kMaximize, LinExpr(0.0));
  auto r = m.solve();
  ASSERT_EQ(r.status, xs::Status::kOptimal);
  EXPECT_NEAR(r.x[and_ab.index], 0.0, 1e-6);
  EXPECT_NEAR(r.x[or_ab.index], 1.0, 1e-6);
  EXPECT_NEAR(r.x[not_b.index], 1.0, 1e-6);
}

TEST(Helpers, ForceToZeroIfLeqPins) {
  // The DP pinning primitive (Fig. 1b): when d <= T the residual d - f must
  // be zero, i.e. f == d.
  Model m;
  Var d = m.add_continuous(30, 30, "d");  // below threshold 50
  Var f = m.add_continuous(0, 100, "f");
  HelperConfig cfg;
  cfg.big_m = 1000;
  force_to_zero_if_leq(m, LinExpr(d) - LinExpr(f), LinExpr(d), 50.0, cfg);
  m.set_objective(xs::Sense::kMinimize, LinExpr(f));
  auto r = m.solve();
  ASSERT_EQ(r.status, xs::Status::kOptimal);
  EXPECT_NEAR(r.x[f.index], 30.0, 1e-5);  // pinned: f == d despite min f
}

TEST(Helpers, ForceToZeroIfLeqDoesNotPinAbove) {
  Model m;
  Var d = m.add_continuous(70, 70, "d");  // above threshold 50
  Var f = m.add_continuous(0, 100, "f");
  HelperConfig cfg;
  cfg.big_m = 1000;
  force_to_zero_if_leq(m, LinExpr(d) - LinExpr(f), LinExpr(d), 50.0, cfg);
  m.set_objective(xs::Sense::kMinimize, LinExpr(f));
  auto r = m.solve();
  ASSERT_EQ(r.status, xs::Status::kOptimal);
  EXPECT_NEAR(r.x[f.index], 0.0, 1e-5);  // free to minimize
}

TEST(Helpers, AllLeq) {
  Model m;
  Var a = m.add_continuous(3, 3, "a");
  Var b = m.add_continuous(4, 4, "b");
  Var z_yes = all_leq(m, {LinExpr(a), LinExpr(b)}, 5.0);
  Var z_no = all_leq(m, {LinExpr(a), LinExpr(b)}, 3.5);
  m.set_objective(xs::Sense::kMaximize, LinExpr(0.0));
  auto r = m.solve();
  ASSERT_EQ(r.status, xs::Status::kOptimal);
  EXPECT_NEAR(r.x[z_yes.index], 1.0, 1e-6);
  EXPECT_NEAR(r.x[z_no.index], 0.0, 1e-6);
}

TEST(Helpers, AllEq) {
  Model m;
  Var a = m.add_continuous(2, 2, "a");
  Var b = m.add_continuous(2, 2, "b");
  Var c = m.add_continuous(3, 3, "c");
  Var z_yes = all_eq(m, {LinExpr(a), LinExpr(b)}, 2.0);
  Var z_no = all_eq(m, {LinExpr(a), LinExpr(c)}, 2.0);
  m.set_objective(xs::Sense::kMaximize, LinExpr(0.0));
  auto r = m.solve();
  ASSERT_EQ(r.status, xs::Status::kOptimal);
  EXPECT_NEAR(r.x[z_yes.index], 1.0, 1e-6);
  EXPECT_NEAR(r.x[z_no.index], 0.0, 1e-6);
}

TEST(Helpers, IfThenElseBothBranches) {
  for (double cond_val : {1.0, 0.0}) {
    Model m;
    Var cond = m.add_var(cond_val, cond_val, true, "cond");
    Var x = m.add_continuous(0, 100, "x");
    HelperConfig cfg;
    cfg.big_m = 1000;
    if_then_else(m, cond, {{x, LinExpr(42.0)}}, {{x, LinExpr(7.0)}}, cfg);
    m.set_objective(xs::Sense::kMaximize, LinExpr(0.0));
    auto r = m.solve();
    ASSERT_EQ(r.status, xs::Status::kOptimal);
    EXPECT_NEAR(r.x[x.index], cond_val == 1.0 ? 42.0 : 7.0, 1e-5);
  }
}

class ProductBinCont : public ::testing::TestWithParam<std::tuple<int, double>> {
};

TEST_P(ProductBinCont, ExactAtBinaries) {
  const auto [zi, xv] = GetParam();
  Model m;
  Var z = m.add_var(zi, zi, true, "z");
  Var x = m.add_continuous(xv, xv, "x");
  Var w = product_binary_continuous(m, z, LinExpr(x), 10.0);
  m.set_objective(xs::Sense::kMaximize, LinExpr(0.0));
  auto r = m.solve();
  ASSERT_EQ(r.status, xs::Status::kOptimal);
  EXPECT_NEAR(r.x[w.index], zi * xv, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProductBinCont,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(0.0, 2.5, 7.0, 10.0)));

TEST(Helpers, ProductBinaryBinary) {
  for (int a = 0; a <= 1; ++a)
    for (int b = 0; b <= 1; ++b) {
      Model m;
      Var va = m.add_var(a, a, true);
      Var vb = m.add_var(b, b, true);
      Var w = product_binary_binary(m, va, vb);
      m.set_objective(xs::Sense::kMaximize, LinExpr(0.0));
      auto r = m.solve();
      ASSERT_EQ(r.status, xs::Status::kOptimal);
      EXPECT_NEAR(r.x[w.index], a * b, 1e-7) << a << "," << b;
    }
}
