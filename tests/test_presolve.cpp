// Tests for the bound-propagation presolve — the component that makes the
// big-M indicator MILPs (every MetaOpt-style encoding) tractable for the
// branch-and-bound solver.
#include <gtest/gtest.h>

#include "solver/milp.h"
#include "solver/presolve.h"
#include "util/random.h"

namespace xs = xplain::solver;
using xs::kInf;
using xs::LpProblem;
using xs::RowSense;

TEST(Presolve, TightensSimpleChain) {
  // x = 3 (fixed), x + y <= 5  =>  y <= 2.
  LpProblem p;
  int x = p.add_col(3, 3, 0, false, "x");
  int y = p.add_col(0, 100, 0, false, "y");
  p.add_row({{x, 1}, {y, 1}}, RowSense::kLe, 5);
  auto r = xs::propagate_bounds(p);
  EXPECT_TRUE(r.feasible);
  EXPECT_GE(r.tightened, 1);
  EXPECT_LE(p.hi(y), 2.0 + 1e-6);
}

TEST(Presolve, CascadesThroughBigMIndicators) {
  // The pattern every helper emits: x fixed at 7; indicator z with
  // x <= 5 + M(1-z) forces z = 0; then w <= M*z forces w = 0.
  const double M = 1000;
  LpProblem p;
  int x = p.add_col(7, 7, 0, false, "x");
  int z = p.add_col(0, 1, 0, true, "z");
  int w = p.add_col(0, 50, 0, false, "w");
  p.add_row({{x, 1}, {z, M}}, RowSense::kLe, 5 + M);
  p.add_row({{w, 1}, {z, -M}}, RowSense::kLe, 0);
  auto r = xs::propagate_bounds(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(p.hi(z), 0.0, 1e-9);  // z fixed to 0
  EXPECT_NEAR(p.hi(w), 0.0, 1e-6);  // and w collapses with it
}

TEST(Presolve, DetectsRowInfeasibility) {
  LpProblem p;
  int x = p.add_col(0, 1, 0, false, "x");
  int y = p.add_col(0, 1, 0, false, "y");
  p.add_row({{x, 1}, {y, 1}}, RowSense::kGe, 3);  // max activity 2 < 3
  EXPECT_FALSE(xs::propagate_bounds(p).feasible);
}

TEST(Presolve, DetectsEmptyIntegerDomain) {
  LpProblem p;
  int z = p.add_col(0, 1, 0, true, "z");
  p.add_row({{z, 1}}, RowSense::kGe, 0.4);
  p.add_row({{z, 1}}, RowSense::kLe, 0.6);
  // z must be in [0.4, 0.6], integral: empty after rounding.
  EXPECT_FALSE(xs::propagate_bounds(p).feasible);
}

TEST(Presolve, RoundsIntegerBounds) {
  LpProblem p;
  int z = p.add_col(0, 10, 0, true, "z");
  p.add_row({{z, 2}}, RowSense::kLe, 7);   // z <= 3.5 -> 3
  p.add_row({{z, 3}}, RowSense::kGe, 4);   // z >= 1.33 -> 2
  auto r = xs::propagate_bounds(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(p.hi(z), 3.0);
  EXPECT_DOUBLE_EQ(p.lo(z), 2.0);
}

TEST(Presolve, HandlesInfiniteBoundsSafely) {
  LpProblem p;
  int x = p.add_col(0, kInf, 0, false, "x");
  int y = p.add_col(0, kInf, 0, false, "y");
  p.add_row({{x, 1}, {y, 1}}, RowSense::kLe, 10);
  auto r = xs::propagate_bounds(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(p.hi(x), 10.0 + 1e-6);
  EXPECT_LE(p.hi(y), 10.0 + 1e-6);
}

TEST(Presolve, EqualityPropagatesBothWays) {
  LpProblem p;
  int x = p.add_col(0, 10, 0, false, "x");
  int y = p.add_col(4, 4, 0, false, "y");
  p.add_row({{x, 1}, {y, 1}}, RowSense::kEq, 9);
  auto r = xs::propagate_bounds(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(p.lo(x), 5.0, 1e-6);
  EXPECT_NEAR(p.hi(x), 5.0, 1e-6);
}

// Property: propagation never changes the MILP optimum (it only adds
// implied bounds).
class PresolvePreservesOptimum : public ::testing::TestWithParam<int> {};

TEST_P(PresolvePreservesOptimum, OnRandomMilps) {
  xplain::util::Rng rng(5150 + GetParam());
  LpProblem p;
  p.sense = xs::Sense::kMaximize;
  const int nb = rng.uniform_int(2, 5), nc = rng.uniform_int(0, 3);
  for (int j = 0; j < nb; ++j) p.add_col(0, 1, rng.uniform(-3, 6), true);
  for (int j = 0; j < nc; ++j) p.add_col(0, 5, rng.uniform(-1, 3), false);
  for (int i = 0, m = rng.uniform_int(1, 4); i < m; ++i) {
    std::vector<std::pair<int, double>> coef;
    for (int j = 0; j < nb + nc; ++j)
      coef.emplace_back(j, rng.uniform(0.0, 2.0));
    p.add_row(std::move(coef), RowSense::kLe, rng.uniform(1.0, 6.0));
  }
  auto before = xs::solve_milp(p);
  LpProblem q = p;
  auto prop = xs::propagate_bounds(q);
  ASSERT_TRUE(prop.feasible);
  auto after = xs::solve_milp(q);
  ASSERT_EQ(before.status, after.status);
  if (before.status == xs::Status::kOptimal)
    EXPECT_NEAR(before.obj, after.obj, 1e-6 * (1 + std::abs(before.obj)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PresolvePreservesOptimum,
                         ::testing::Range(0, 25));

TEST(Presolve, MakesFixedInputIndicatorChainsTrivial) {
  // The production scenario: a chain of K dependent indicators over a fixed
  // input.  Propagation must fix every binary so branch-and-bound needs
  // only the root node.
  const double M = 100;
  LpProblem p;
  const int K = 12;
  int prev = p.add_col(1, 1, 0, false, "x0");
  for (int k = 0; k < K; ++k) {
    int z = p.add_col(0, 1, 0, true);
    // z = 1 <=> prev >= 0.5  (prev alternates 1, 0, 1, ...)
    p.add_row({{prev, -1}, {z, M}}, RowSense::kLe, M - 0.5);
    p.add_row({{prev, -1}, {z, M}}, RowSense::kGe, -0.5 + 0.01);
    // next = 1 - z
    int next = p.add_col(0, 1, 0, false);
    p.add_row({{next, 1}, {z, 1}}, RowSense::kEq, 1);
    prev = next;
  }
  auto r = xs::solve_milp(p);
  ASSERT_EQ(r.status, xs::Status::kOptimal);
  EXPECT_LE(r.nodes, 2) << "propagation should solve this at the root";
}
