// Tests for the scenario fuzzer subsystem (src/search/): mutation is a
// pure function of (parent, seed), coverage bucketing and the archive are
// bitwise deterministic for any worker count, and the committed discovery
// corpus (bench/corpus/discovered.json) replays exactly.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "search/fuzzer.h"

using namespace xplain;
using namespace xplain::search;
using scenario::ScenarioSpec;
using scenario::TopologyKind;

namespace {

ScenarioSpec waxman_parent() {
  ScenarioSpec s;
  s.kind = TopologyKind::kWaxman;
  s.size = 12;
  s.seed = 7;
  return s;
}

ScenarioSpec fat_tree_parent() {
  ScenarioSpec s;
  s.kind = TopologyKind::kFatTree;
  s.size = 4;
  return s;
}

Discovery make_discovery(const std::string& case_name, int size,
                         double norm_gap, const std::string& bucket) {
  Discovery d;
  d.case_name = case_name;
  d.spec = fat_tree_parent();
  d.spec.size = size;
  d.gap = norm_gap * 100.0;
  d.norm_gap = norm_gap;
  d.bucket = bucket;
  d.options_fingerprint = "pf1;test";
  return d;
}

}  // namespace

TEST(Mutator, IsAPureFunctionOfParentAndSeed) {
  const ScenarioSpec parent = waxman_parent();
  for (std::uint64_t seed : {1ull, 42ull, 0xDEADBEEFull, ~0ull}) {
    const Mutant a = mutate(parent, seed);
    const Mutant b = mutate(parent, seed);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.spec.cache_key(), b.spec.cache_key());
  }
  // Different seeds explore: 64 draws must not all collapse to one spec.
  std::set<std::string> keys;
  for (std::uint64_t seed = 0; seed < 64; ++seed)
    keys.insert(mutate(parent, seed).spec.cache_key());
  EXPECT_GT(keys.size(), 8u);
}

TEST(Mutator, EveryMutantLandsInsideTheLimits) {
  MutatorLimits limits;
  std::vector<ScenarioSpec> pool = {waxman_parent(), fat_tree_parent()};
  // Walk a mutation chain so limits are exercised from the boundaries too.
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    const ScenarioSpec& parent = pool[seed % pool.size()];
    const ScenarioSpec m = mutate(parent, seed, limits).spec;
    if (m.kind == TopologyKind::kFatTree) {
      EXPECT_GE(m.size, limits.min_fat_tree_k);
      EXPECT_LE(m.size, limits.max_fat_tree_k);
      EXPECT_EQ(m.size % 2, 0) << "fat-tree k must stay even";
    } else {
      EXPECT_GE(m.size, limits.min_size);
      EXPECT_LE(m.size, limits.max_size);
    }
    EXPECT_GE(m.capacity, limits.min_capacity);
    EXPECT_LE(m.capacity, limits.max_capacity);
    EXPECT_GE(m.failed_links, 0);
    EXPECT_LE(m.failed_links, limits.max_failed_links);
    EXPECT_GE(m.capacity_degradation, limits.min_degradation);
    EXPECT_LE(m.capacity_degradation, 1.0);
    pool.push_back(m);
  }
}

TEST(Mutator, ReachesEveryOperator) {
  // A Waxman parent offers the full menu (shape jitter included).
  std::set<MutationOp> seen;
  for (std::uint64_t seed = 0; seed < 300; ++seed)
    seen.insert(mutate(waxman_parent(), seed).op);
  EXPECT_TRUE(seen.count(MutationOp::kTopologySwap));
  EXPECT_TRUE(seen.count(MutationOp::kSizeStep));
  EXPECT_TRUE(seen.count(MutationOp::kCapacityScale));
  EXPECT_TRUE(seen.count(MutationOp::kSeedReroll));
  EXPECT_TRUE(seen.count(MutationOp::kWaxmanShapeJitter));
  EXPECT_TRUE(seen.count(MutationOp::kLinkFailure));
  EXPECT_TRUE(seen.count(MutationOp::kCapacityDegradation));
  // Non-Waxman parents never draw the Waxman-only operator.
  for (std::uint64_t seed = 0; seed < 300; ++seed)
    EXPECT_NE(mutate(fat_tree_parent(), seed).op,
              MutationOp::kWaxmanShapeJitter);
}

TEST(Coverage, FeatureBucketsAreExactSignedExponents) {
  EXPECT_EQ(feature_bucket(0.0), 0);
  // Same power of two -> same bucket; next power -> different.
  EXPECT_EQ(feature_bucket(40.0), feature_bucket(50.0));
  EXPECT_NE(feature_bucket(40.0), feature_bucket(80.0));
  EXPECT_EQ(feature_bucket(-1.5), -feature_bucket(1.5));
  // Nonzero buckets are odd, so they never collide with the zero bucket.
  for (double v : {0.001, 0.5, 1.0, 3.0, 1e6, -7.25})
    EXPECT_NE(feature_bucket(v) % 2, 0) << v;
  const FeatureMap f = {{"links", 40.0}, {"ratio", 0.75}};
  EXPECT_EQ(bucket_key("wcmp", f),
            "wcmp|links:" + std::to_string(feature_bucket(40.0)) +
                "|ratio:" + std::to_string(feature_bucket(0.75)));
}

TEST(Coverage, OfferKeepsNovelAndClearlyImprovedOnly) {
  CoverageMap cov(/*significant_gap=*/0.15, /*min_gain=*/0.05);
  const FeatureMap f = {{"links", 40.0}};
  EXPECT_TRUE(cov.offer("wcmp", f, 0.10));    // novel bucket
  EXPECT_FALSE(cov.offer("wcmp", f, 0.10));   // same, no gain
  EXPECT_FALSE(cov.offer("wcmp", f, 0.104));  // +4% < min_gain
  EXPECT_TRUE(cov.offer("wcmp", f, 0.20));    // clear improvement
  EXPECT_FALSE(cov.offer("wcmp", f, 0.15));   // worse than incumbent
  EXPECT_TRUE(cov.offer("lb", f, 0.01));      // same features, new case
  EXPECT_EQ(cov.best(bucket_key("wcmp", f)), 0.20);
  const CoverageStats st = cov.stats();
  EXPECT_EQ(st.buckets, 2);
  EXPECT_EQ(st.significant_buckets, 1);  // only wcmp's 0.20 clears 0.15
  EXPECT_EQ(st.offers, 6);
  EXPECT_EQ(st.accepted_novel, 2);
  EXPECT_EQ(st.accepted_improved, 1);
}

TEST(Archive, CanonicalOrderAndByteForByteJson) {
  // Same content, different insertion order -> identical serialization.
  const std::vector<Discovery> ds = {
      make_discovery("wcmp", 4, 1.0, "wcmp|links:13"),
      make_discovery("wcmp", 6, 0.5, "wcmp|links:15"),
      make_discovery("demand_pinning", 4, 0.3, "demand_pinning|links:13"),
  };
  Archive fwd, rev;
  for (const auto& d : ds) fwd.add(d);
  for (auto it = ds.rbegin(); it != ds.rend(); ++it) rev.add(*it);
  EXPECT_EQ(fwd.to_json(), rev.to_json());
  ASSERT_EQ(fwd.size(), 3);
  EXPECT_EQ(fwd.discoveries()[0].case_name, "demand_pinning");

  // Per-(case, bucket) incumbent: only a strictly larger norm_gap replaces.
  Archive a = fwd;
  a.add(make_discovery("wcmp", 8, 0.9, "wcmp|links:13"));
  EXPECT_EQ(a.size(), 3);
  EXPECT_EQ(a.discoveries()[1].spec.size, 4);  // 1.0 incumbent kept
  a.add(make_discovery("wcmp", 8, 1.5, "wcmp|links:13"));
  EXPECT_EQ(a.size(), 3);
  EXPECT_EQ(a.discoveries()[1].spec.size, 8);  // displaced

  // JSON round-trips byte-for-byte (specs, 64-bit seeds, doubles).
  Archive big = fwd;
  Discovery odd = make_discovery("wcmp", 4, 0.625, "wcmp|links:99");
  odd.spec.seed = 0xFFFFFFFFFFFFFFFFull;
  odd.spec.failed_links = 2;
  odd.spec.capacity_degradation = 0.7;
  big.add(odd);
  const std::string once = big.to_json();
  std::string err;
  const auto back = Archive::from_json(once, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->to_json(), once);
  EXPECT_FALSE(Archive::from_json("{\"discoveries\":3}").has_value());
}

TEST(Fuzzer, TinyBudgetFindsTheFatTreeWcmpGap) {
  // Generation 0 alone (the built-in seed corpus) must surface the known
  // fat-tree(4) WCMP gap — the paper's flagship Type-1 example.
  FuzzerOptions opts;
  opts.cases = {"wcmp"};
  opts.budget_evals = 4;
  opts.workers = 1;
  const FuzzResult res = run_fuzzer(opts);
  EXPECT_EQ(res.stats.evals, 4);
  EXPECT_EQ(res.stats.failed_jobs, 0);
  bool found = false;
  for (const Discovery& d : res.archive.discoveries())
    found |= d.case_name == "wcmp" &&
             d.spec.kind == TopologyKind::kFatTree && d.spec.size == 4 &&
             d.norm_gap >= 0.5;
  EXPECT_TRUE(found) << res.archive.to_json();
}

TEST(Fuzzer, ArchiveIsBitwiseIdenticalAcrossWorkerCounts) {
  FuzzerOptions opts;
  opts.cases = {"wcmp", "demand_pinning"};
  opts.budget_evals = 16;
  opts.generation_size = 4;
  opts.seed = 99;
  opts.workers = 1;
  const FuzzResult one = run_fuzzer(opts);
  opts.workers = 4;
  const FuzzResult four = run_fuzzer(opts);
  EXPECT_EQ(one.archive.to_json(), four.archive.to_json());
  EXPECT_EQ(one.stats.evals, four.stats.evals);
  EXPECT_EQ(one.stats.coverage.buckets, four.stats.coverage.buckets);
  EXPECT_GT(one.archive.size(), 0);
}

TEST(Fuzzer, CommittedCorpusReplaysExactly) {
  // The committed discovery corpus is a regression baseline: every entry
  // re-evaluated under its recorded options must reproduce the archived
  // gap bitwise and land in the archived coverage bucket.
  const std::string path =
      std::string(XPLAIN_REPO_ROOT) + "/bench/corpus/discovered.json";
  std::string err;
  const auto archive = Archive::load(path, &err);
  ASSERT_TRUE(archive.has_value()) << err;
  ASSERT_GE(archive->size(), 8);
  for (const Discovery& d : archive->discoveries()) {
    const ReplayOutcome r = replay_discovery(d);
    ASSERT_TRUE(r.ok) << d.case_name << "@" << d.spec.display_name() << ": "
                      << r.error;
    EXPECT_EQ(r.gap, d.gap) << d.case_name << "@" << d.spec.display_name();
    EXPECT_EQ(r.bucket, d.bucket)
        << d.case_name << "@" << d.spec.display_name();
    EXPECT_EQ(r.options_fingerprint, d.options_fingerprint);
  }
}
