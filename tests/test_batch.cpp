// Batched pipeline driver: determinism across worker counts (the
// acceptance criterion: >= 8 instances on 4 workers == the sequential
// loop), merged accounting, and the Type-3 feed into the generalizer.
//
// run_batch is the deprecated pre-Engine shim (xplain/compat.h); this file
// deliberately keeps exercising it so the compatibility surface stays
// honest — hence the suppressed deprecation warnings.
#include <gtest/gtest.h>

#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

#include "cases/dp_case.h"
#include "cases/ff_case.h"
#include "generalize/generalizer.h"
#include "generalize/instance_generator.h"
#include "xplain/pipeline.h"

using namespace xplain;

namespace {

/// 8 instances across two families: 4 DP chain-with-detour WANs of growing
/// pinned-path length, 4 VBP first-fit instances of growing ball count.
CaseList mixed_cases() {
  CaseList cases;
  for (int chain_len = 2; chain_len <= 5; ++chain_len) {
    generalize::DpFamilyParams params;
    params.chain_len = chain_len;
    cases.push_back(std::make_shared<cases::DpCase>(
        generalize::make_dp_family_instance(params),
        te::DpConfig{params.threshold}));
  }
  for (int balls = 3; balls <= 6; ++balls) {
    vbp::VbpInstance inst;
    inst.num_balls = balls;
    inst.num_bins = balls - 1;
    inst.dims = 1;
    inst.capacity = 1.0;
    cases.push_back(std::make_shared<cases::VbpCase>(inst));
  }
  return cases;
}

PipelineOptions fast_opts() {
  PipelineOptions opts;
  opts.min_gap = 1.0;
  opts.subspace.max_subspaces = 1;
  opts.explain.samples = 60;
  return opts;
}

void expect_same_results(const BatchResult& a, const BatchResult& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    const auto& ra = a.results[i];
    const auto& rb = b.results[i];
    EXPECT_EQ(ra.case_name, rb.case_name) << "instance " << i;
    ASSERT_EQ(ra.subspaces.size(), rb.subspaces.size()) << "instance " << i;
    for (std::size_t s = 0; s < ra.subspaces.size(); ++s) {
      const auto& sa = ra.subspaces[s];
      const auto& sb = rb.subspaces[s];
      EXPECT_EQ(sa.seed, sb.seed) << "instance " << i << " subspace " << s;
      EXPECT_DOUBLE_EQ(sa.seed_gap, sb.seed_gap);
      EXPECT_DOUBLE_EQ(sa.p_value, sb.p_value);
      EXPECT_EQ(sa.region.box.lo, sb.region.box.lo);
      EXPECT_EQ(sa.region.box.hi, sb.region.box.hi);
      EXPECT_EQ(sa.significant, sb.significant);
    }
    ASSERT_EQ(ra.explanations.size(), rb.explanations.size());
    for (std::size_t e = 0; e < ra.explanations.size(); ++e) {
      EXPECT_EQ(ra.explanations[e].samples_used,
                rb.explanations[e].samples_used);
      ASSERT_EQ(ra.explanations[e].edges.size(),
                rb.explanations[e].edges.size());
      for (std::size_t k = 0; k < ra.explanations[e].edges.size(); ++k)
        EXPECT_DOUBLE_EQ(ra.explanations[e].edges[k].heat,
                         rb.explanations[e].edges[k].heat);
    }
    EXPECT_EQ(ra.trace.analyzer_calls, rb.trace.analyzer_calls);
    EXPECT_EQ(ra.trace.gap_evaluations, rb.trace.gap_evaluations);
  }
  EXPECT_EQ(a.trace.analyzer_calls, b.trace.analyzer_calls);
  EXPECT_EQ(a.trace.gap_evaluations, b.trace.gap_evaluations);
}

}  // namespace

TEST(Batch, FourWorkersMatchSequentialLoop) {
  auto cases = mixed_cases();
  ASSERT_GE(cases.size(), 8u);
  const auto opts = fast_opts();

  BatchOptions parallel4;
  parallel4.workers = 4;
  BatchOptions sequential;
  sequential.workers = 1;

  auto par = run_batch(cases, opts, parallel4);
  auto seq = run_batch(cases, opts, sequential);
  expect_same_results(par, seq);
}

TEST(Batch, MatchesHandRolledSequentialPipelines) {
  // The batch driver is exactly "run_pipeline per instance": nothing is
  // shared, reordered, or lost across workers.
  auto cases = mixed_cases();
  const auto opts = fast_opts();
  BatchOptions batch;
  batch.workers = 4;
  batch.reseed_per_instance = false;  // compare against opts verbatim
  auto par = run_batch(cases, opts, batch);

  ASSERT_EQ(par.results.size(), cases.size());
  int total = 0;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    auto solo = run_pipeline(*cases[i], opts);
    ASSERT_EQ(par.results[i].subspaces.size(), solo.subspaces.size());
    for (std::size_t s = 0; s < solo.subspaces.size(); ++s) {
      EXPECT_EQ(par.results[i].subspaces[s].seed, solo.subspaces[s].seed);
      EXPECT_DOUBLE_EQ(par.results[i].subspaces[s].seed_gap,
                       solo.subspaces[s].seed_gap);
    }
    total += static_cast<int>(solo.subspaces.size());
  }
  EXPECT_EQ(par.total_subspaces(), total);
}

TEST(Batch, FeedsTypeThreeGeneralization) {
  // DP-only batch over the chain family: the mined predicates must include
  // the paper's increasing(pinned path length) trend.
  CaseList cases;
  for (int chain_len = 2; chain_len <= 5; ++chain_len) {
    for (double detour_cap : {40.0, 50.0}) {
      generalize::DpFamilyParams params;
      params.chain_len = chain_len;
      params.detour_capacity = detour_cap;
      cases.push_back(std::make_shared<cases::DpCase>(
          generalize::make_dp_family_instance(params),
          te::DpConfig{params.threshold}));
    }
  }
  PipelineOptions opts;
  opts.min_gap = 1.0;
  opts.subspace.max_subspaces = 1;
  opts.explain.samples = 0;  // Type-3 only needs the gaps
  BatchOptions batch;
  batch.workers = 4;
  auto res = run_batch(cases, opts, batch);

  generalize::GrammarOptions grammar;
  grammar.p_threshold = 0.2;  // 8 observations: modest power
  auto g = generalize::generalize_batch(res.results, grammar);
  ASSERT_EQ(g.observations.size(), cases.size());
  bool found_hops = false;
  for (const auto& p : g.predicates)
    if ((p.feature == "pinned_sp_hops" || p.feature == "pinned_sp_max_hops") &&
        p.trend == generalize::Trend::kIncreasing)
      found_hops = true;
  EXPECT_TRUE(found_hops)
      << "increasing(pinned path length) should emerge from the batch";
}
