// CaseRegistry semantics (satellite of the HeuristicCase redesign):
// built-in registrations, duplicate handling, unknown lookups, and the
// case-level input-space description.
#include <gtest/gtest.h>

#include <algorithm>

#include "cases/bf_case.h"
#include "cases/dp_case.h"
#include "cases/ff_case.h"
#include "xplain/case.h"

using namespace xplain;

TEST(CaseRegistry, BuiltInCasesAreRegistered) {
  auto names = registry().names();
  for (const char* expected : {"demand_pinning", "first_fit", "best_fit"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), expected) != names.end())
        << expected << " missing from registry";
    EXPECT_TRUE(registry().contains(expected));
  }
}

TEST(CaseRegistry, FindReturnsWorkingCachedCase) {
  auto c = registry().find("demand_pinning");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->name(), "demand_pinning");
  EXPECT_GT(c->network().num_edges(), 0);
  auto eval = c->make_evaluator();
  ASSERT_NE(eval, nullptr);
  EXPECT_EQ(eval->dim(), 3);  // Fig. 1a default
  // find() caches the default instance.
  EXPECT_EQ(c.get(), registry().find("demand_pinning").get());
  // create() hands out fresh instances instead.
  auto fresh = registry().create("demand_pinning");
  ASSERT_NE(fresh, nullptr);
  EXPECT_NE(c.get(), fresh.get());
}

TEST(CaseRegistry, UnknownNameLookupIsNull) {
  EXPECT_EQ(registry().find("no_such_heuristic"), nullptr);
  EXPECT_EQ(registry().create("no_such_heuristic"), nullptr);
  EXPECT_FALSE(registry().contains("no_such_heuristic"));
}

TEST(CaseRegistry, DuplicateRegistrationIsRejected) {
  ASSERT_TRUE(registry().contains("best_fit"));
  const auto before = registry().find("best_fit");
  // Re-registering an existing name fails and keeps the original factory.
  const bool added = registry().add(
      "best_fit", [] { return cases::DpCase::fig1a(); });
  EXPECT_FALSE(added);
  auto after = registry().create("best_fit");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->name(), "best_fit");  // still the Best-Fit case
  EXPECT_EQ(before.get(), registry().find("best_fit").get());
}

TEST(CaseRegistry, UserCasesPlugIn) {
  // The extension path: register a custom configuration under a new name.
  const std::string name = "ffd_5_balls_test_only";
  const bool added = registry().add(name, [] {
    vbp::VbpInstance inst;
    inst.num_balls = 5;
    inst.num_bins = 4;
    inst.dims = 1;
    inst.capacity = 1.0;
    return std::make_shared<cases::VbpCase>(
        inst, vbp::VbpHeuristic::kFirstFitDecreasing);
  });
  EXPECT_TRUE(added);
  auto c = registry().find(name);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->name(), "first_fit_decreasing");
  EXPECT_EQ(c->make_evaluator()->dim(), 5);
}

TEST(HeuristicCase, InputSpaceDescription) {
  auto c = registry().find("best_fit");
  ASSERT_NE(c, nullptr);
  auto box = c->input_box();
  auto names = c->dim_names();
  EXPECT_EQ(box.dim(), 4);
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "Y[0]");
  EXPECT_DOUBLE_EQ(box.lo[0], 0.0);
  EXPECT_DOUBLE_EQ(box.hi[0], 1.0);
  // Features feed the Type-3 generalizer.
  auto f = c->features();
  EXPECT_EQ(f.at("num_balls"), 4.0);
}
