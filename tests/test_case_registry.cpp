// CaseRegistry semantics (satellite of the HeuristicCase redesign):
// built-in registrations, duplicate handling, unknown lookups, and the
// case-level input-space description.
#include <gtest/gtest.h>

#include <algorithm>

#include "cases/bf_case.h"
#include "cases/dp_case.h"
#include "cases/ff_case.h"
#include "cases/lb_case.h"
#include "scenario/spec.h"
#include "xplain/case.h"

using namespace xplain;

namespace {

scenario::ScenarioSpec line_spec(int n) {
  scenario::ScenarioSpec s;
  s.kind = scenario::TopologyKind::kLine;
  s.size = n;
  return s;
}

}  // namespace

TEST(CaseRegistry, BuiltInCasesAreRegistered) {
  auto names = registry().names();
  for (const char* expected : {"demand_pinning", "first_fit", "best_fit"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), expected) != names.end())
        << expected << " missing from registry";
    EXPECT_TRUE(registry().contains(expected));
  }
}

TEST(CaseRegistry, FindReturnsWorkingCachedCase) {
  auto c = registry().find("demand_pinning");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->name(), "demand_pinning");
  EXPECT_GT(c->network().num_edges(), 0);
  auto eval = c->make_evaluator();
  ASSERT_NE(eval, nullptr);
  EXPECT_EQ(eval->dim(), 3);  // Fig. 1a default
  // find() caches the default instance.
  EXPECT_EQ(c.get(), registry().find("demand_pinning").get());
  // create() hands out fresh instances instead.
  auto fresh = registry().create("demand_pinning");
  ASSERT_NE(fresh, nullptr);
  EXPECT_NE(c.get(), fresh.get());
}

TEST(CaseRegistry, UnknownNameLookupIsNull) {
  EXPECT_EQ(registry().find("no_such_heuristic"), nullptr);
  EXPECT_EQ(registry().create("no_such_heuristic"), nullptr);
  EXPECT_EQ(registry().create("no_such_heuristic", line_spec(4)), nullptr);
  EXPECT_FALSE(registry().contains("no_such_heuristic"));
}

TEST(CaseRegistry, ScenarioBuiltCasesNeverPoisonTheDefaultCache) {
  // The stale-cache footgun the spec-parameterized redesign must avoid:
  // find(name, spec) and find(name) are cached under different keys, so a
  // scenario-built case can never be handed out as the default.
  const auto default_before = registry().find("demand_pinning");
  ASSERT_NE(default_before, nullptr);
  EXPECT_EQ(default_before->make_evaluator()->dim(), 3);  // Fig. 1a

  const auto spec = line_spec(6);
  const auto scenario_built = registry().find("demand_pinning", spec);
  ASSERT_NE(scenario_built, nullptr);
  // DP from a scenario: 6 pairs over the generated line topology.
  EXPECT_EQ(scenario_built->make_evaluator()->dim(), 6);
  EXPECT_NE(scenario_built.get(), default_before.get());

  // The default slot is untouched, and the keyed slot is itself cached.
  EXPECT_EQ(registry().find("demand_pinning").get(), default_before.get());
  EXPECT_EQ(registry().find("demand_pinning", spec).get(),
            scenario_built.get());

  // Distinct specs get distinct cache slots — including specs whose
  // human-readable name() collides (capacity is not part of the label).
  auto other = line_spec(6);
  other.capacity = 55.0;
  ASSERT_EQ(other.name(), spec.name());
  ASSERT_NE(other.cache_key(), spec.cache_key());
  const auto other_built = registry().find("demand_pinning", other);
  ASSERT_NE(other_built, nullptr);
  EXPECT_NE(other_built.get(), scenario_built.get());

  // create(name, spec) always hands out fresh instances.
  const auto fresh = registry().create("demand_pinning", spec);
  ASSERT_NE(fresh, nullptr);
  EXPECT_NE(fresh.get(), scenario_built.get());
}

TEST(CaseRegistry, AllBuiltInCasesBuildFromScenarios) {
  const auto spec = line_spec(5);
  for (const char* name :
       {"demand_pinning", "demand_pinning_chain", "first_fit", "best_fit",
        "wcmp"}) {
    const auto c = registry().create(name, spec);
    ASSERT_NE(c, nullptr) << name;
    auto eval = c->make_evaluator();
    ASSERT_NE(eval, nullptr) << name;
    EXPECT_GT(eval->dim(), 0) << name;
    EXPECT_FALSE(c->features().empty()) << name;
  }
  // VBP cases scale their ball count with the scenario size.
  EXPECT_EQ(registry().create("first_fit", spec)->make_evaluator()->dim(), 5);
  EXPECT_EQ(registry().create("best_fit", line_spec(3))
                ->make_evaluator()
                ->dim(),
            3);
}

TEST(CaseRegistry, ZeroArgFactoriesDeclineScenarios) {
  const std::string name = "default_only_test_case";
  registry().add(name, [] {
    return std::make_shared<cases::VbpCase>(cases::VbpCase::paper_instance());
  });
  EXPECT_NE(registry().find(name), nullptr);
  EXPECT_NE(registry().create(name), nullptr);
  // A default-only case refuses scenario-parameterized construction
  // instead of silently running its default under a scenario label.
  EXPECT_EQ(registry().create(name, line_spec(4)), nullptr);
  EXPECT_EQ(registry().find(name, line_spec(4)), nullptr);
  // ... and the failed keyed lookup did not poison the default slot.
  EXPECT_NE(registry().find(name), nullptr);
}

TEST(CaseRegistry, DuplicateRegistrationIsRejected) {
  ASSERT_TRUE(registry().contains("best_fit"));
  const auto before = registry().find("best_fit");
  // Re-registering an existing name fails and keeps the original factory.
  const bool added = registry().add(
      "best_fit", [] { return cases::DpCase::fig1a(); });
  EXPECT_FALSE(added);
  auto after = registry().create("best_fit");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->name(), "best_fit");  // still the Best-Fit case
  EXPECT_EQ(before.get(), registry().find("best_fit").get());
}

TEST(CaseRegistry, UserCasesPlugIn) {
  // The extension path: register a custom configuration under a new name.
  const std::string name = "ffd_5_balls_test_only";
  const bool added = registry().add(name, [] {
    vbp::VbpInstance inst;
    inst.num_balls = 5;
    inst.num_bins = 4;
    inst.dims = 1;
    inst.capacity = 1.0;
    return std::make_shared<cases::VbpCase>(
        inst, vbp::VbpHeuristic::kFirstFitDecreasing);
  });
  EXPECT_TRUE(added);
  auto c = registry().find(name);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->name(), "first_fit_decreasing");
  EXPECT_EQ(c->make_evaluator()->dim(), 5);
}

TEST(HeuristicCase, InputSpaceDescription) {
  auto c = registry().find("best_fit");
  ASSERT_NE(c, nullptr);
  auto box = c->input_box();
  auto names = c->dim_names();
  EXPECT_EQ(box.dim(), 4);
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "Y[0]");
  EXPECT_DOUBLE_EQ(box.lo[0], 0.0);
  EXPECT_DOUBLE_EQ(box.hi[0], 1.0);
  // Features feed the Type-3 generalizer.
  auto f = c->features();
  EXPECT_EQ(f.at("num_balls"), 4.0);
}
