// Bitwise determinism of the parallel sampling stages: explain_subspace,
// check_significance, and the SearchAnalyzer presample must produce
// identical results for any worker count (1 / 2 / 8).  This is the contract
// util::parallel_chunks documents — parallelism changes wall clock, never
// the answer — and it is what keeps run_batch reproducible end to end.
#include <gtest/gtest.h>

#include <cstdlib>

#include "analyzer/search_analyzer.h"
#include "explain/explainer.h"
#include "subspace/significance.h"
#include "util/parallel.h"
#include "xplain/case.h"

namespace {

using namespace xplain;

std::shared_ptr<const HeuristicCase> dp_case() {
  auto c = registry().find("demand_pinning");
  EXPECT_NE(c, nullptr);
  return c;
}

subspace::Polytope central_region(const analyzer::GapEvaluator& eval) {
  // A mid-box region (no halfspaces) so rejection sampling accepts most
  // draws but the contains() path still runs.
  subspace::Polytope region;
  region.box = eval.input_box();
  for (int i = 0; i < region.box.dim(); ++i) {
    const double w = region.box.hi[i] - region.box.lo[i];
    region.box.lo[i] += 0.25 * w;
    region.box.hi[i] -= 0.15 * w;
  }
  return region;
}

}  // namespace

TEST(ParallelDeterminism, ExplainSubspaceBitwiseEqualAcrossWorkerCounts) {
  auto cp = dp_case();
  const HeuristicCase& c = *cp;
  auto eval = c.make_evaluator();
  auto oracle = c.make_oracle();
  const subspace::Polytope region = central_region(*eval);

  explain::ExplainOptions base;
  base.samples = 400;
  base.seed = 12345;

  std::vector<explain::Explanation> runs;
  for (int workers : {1, 2, 8}) {
    explain::ExplainOptions opts = base;
    opts.workers = workers;
    runs.push_back(
        explain::explain_subspace(*eval, region, c.network(), oracle, opts));
  }
  ASSERT_GT(runs[0].samples_used, 0);
  for (std::size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[0].samples_used, runs[r].samples_used);
    ASSERT_EQ(runs[0].edges.size(), runs[r].edges.size());
    for (std::size_t e = 0; e < runs[0].edges.size(); ++e) {
      EXPECT_EQ(runs[0].edges[e].both, runs[r].edges[e].both) << "edge " << e;
      EXPECT_EQ(runs[0].edges[e].benchmark_only, runs[r].edges[e].benchmark_only)
          << "edge " << e;
      EXPECT_EQ(runs[0].edges[e].heuristic_only, runs[r].edges[e].heuristic_only)
          << "edge " << e;
      EXPECT_EQ(runs[0].edges[e].neither, runs[r].edges[e].neither)
          << "edge " << e;
      // Heat is derived from the integer counts: bitwise equality expected.
      EXPECT_EQ(runs[0].edges[e].heat, runs[r].edges[e].heat) << "edge " << e;
    }
  }
}

TEST(ParallelDeterminism, SignificanceBitwiseEqualAcrossWorkerCounts) {
  auto cp = dp_case();
  const HeuristicCase& c = *cp;
  auto eval = c.make_evaluator();
  const subspace::Polytope region = central_region(*eval);

  std::vector<subspace::SignificanceReport> runs;
  for (int workers : {1, 2, 8}) {
    subspace::SignificanceOptions opts;
    opts.pairs = 80;
    opts.seed = 99;
    opts.workers = workers;
    runs.push_back(subspace::check_significance(*eval, region, opts));
  }
  ASSERT_GT(runs[0].pairs_collected, 0);
  for (std::size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[0].pairs_collected, runs[r].pairs_collected);
    EXPECT_EQ(runs[0].mean_gap_inside, runs[r].mean_gap_inside);
    EXPECT_EQ(runs[0].mean_gap_outside, runs[r].mean_gap_outside);
    EXPECT_EQ(runs[0].test.p_value, runs[r].test.p_value);
    EXPECT_EQ(runs[0].significant, runs[r].significant);
  }
}

TEST(ParallelDeterminism, ResolveWorkersHonorsEnvOverride) {
  // RAII guard: whatever happens, leave the env as we found it.
  struct EnvGuard {
    ~EnvGuard() { unsetenv("XPLAIN_WORKERS"); }
  } guard;

  setenv("XPLAIN_WORKERS", "3", 1);
  EXPECT_EQ(util::resolve_workers(0), 3);
  EXPECT_EQ(util::resolve_workers(-1), 3);
  // An explicit positive count always wins over the environment.
  EXPECT_EQ(util::resolve_workers(2), 2);
  // Garbage and non-positive values fall back to the hardware default.
  setenv("XPLAIN_WORKERS", "banana", 1);
  EXPECT_GE(util::resolve_workers(0), 1);
  setenv("XPLAIN_WORKERS", "0", 1);
  EXPECT_GE(util::resolve_workers(0), 1);
  setenv("XPLAIN_WORKERS", "-4", 1);
  EXPECT_GE(util::resolve_workers(0), 1);
}

TEST(ParallelDeterminism, EnvWorkerOverrideDoesNotChangeResults) {
  // workers = 0 resolves through XPLAIN_WORKERS; per the parallel contract
  // the explanation must stay bitwise identical to an explicit pool size.
  auto cp = dp_case();
  const HeuristicCase& c = *cp;
  auto eval = c.make_evaluator();
  auto oracle = c.make_oracle();
  const subspace::Polytope region = central_region(*eval);

  explain::ExplainOptions opts;
  opts.samples = 200;
  opts.seed = 777;
  opts.workers = 4;
  const auto expected =
      explain::explain_subspace(*eval, region, c.network(), oracle, opts);

  struct EnvGuard {
    ~EnvGuard() { unsetenv("XPLAIN_WORKERS"); }
  } guard;
  setenv("XPLAIN_WORKERS", "2", 1);
  opts.workers = 0;  // resolves to the env override
  const auto via_env =
      explain::explain_subspace(*eval, region, c.network(), oracle, opts);

  ASSERT_EQ(expected.samples_used, via_env.samples_used);
  ASSERT_EQ(expected.edges.size(), via_env.edges.size());
  for (std::size_t e = 0; e < expected.edges.size(); ++e) {
    EXPECT_EQ(expected.edges[e].heat, via_env.edges[e].heat) << "edge " << e;
    EXPECT_EQ(expected.edges[e].both, via_env.edges[e].both) << "edge " << e;
  }
}

TEST(ParallelDeterminism, SearchAnalyzerBitwiseEqualAcrossWorkerCounts) {
  auto cp = dp_case();
  const HeuristicCase& c = *cp;
  auto eval = c.make_evaluator();

  std::vector<std::optional<analyzer::AdversarialExample>> runs;
  for (int workers : {1, 2, 8}) {
    analyzer::SearchOptions opts;
    opts.workers = workers;
    analyzer::SearchAnalyzer an(opts);
    runs.push_back(an.find_adversarial(*eval, 1.0, {}));
  }
  ASSERT_TRUE(runs[0].has_value());
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_TRUE(runs[r].has_value());
    EXPECT_EQ(runs[0]->gap, runs[r]->gap);
    EXPECT_EQ(runs[0]->input, runs[r]->input);
  }
}
