// Resident explanation service: job-queue FIFO/close/backpressure
// semantics, result-cache round-trip + in-flight dedup + LRU eviction +
// journal persistence + claim handoff/fast-fail, and the Service
// acceptance criteria — a repeated submission is served bitwise identical
// from cache with ZERO new LP work, results match Engine::run for any pool
// size, drain-under-load neither loses nor duplicates a job, a throwing
// case build strands no claimant, and a restarted service replays the
// journaled working set with zero new LP work.  Runs under TSan in CI with
// XPLAIN_WORKERS=4 (and the persistence cases under ASan).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "scenario/spec.h"
#include "server/job_queue.h"
#include "server/result_cache.h"
#include "server/service.h"
#include "solver/lp.h"

using namespace xplain;
using server::CacheOptions;
using server::JobQueue;
using server::QueuedJob;
using server::ResultCache;
using server::Service;
using server::ServiceOptions;
using server::ServiceStats;
using Outcome = ResultCache::Outcome;

namespace {

scenario::ScenarioSpec line(int n) {
  scenario::ScenarioSpec s;
  s.kind = scenario::TopologyKind::kLine;
  s.size = n;
  return s;
}

/// A cheap 6-job grid (two VBP-ish cases x three line sizes) with the
/// pipeline knobs turned down — the same shape test_engine sweeps.
ExperimentSpec small_grid() {
  ExperimentSpec spec;
  spec.cases = {"first_fit", "demand_pinning_chain"};
  spec.scenarios = {line(3), line(4), line(5)};
  spec.options.min_gap = 1.0;
  spec.options.subspace.max_subspaces = 1;
  spec.options.subspace.tree_samples = 60;
  spec.options.subspace.significance.pairs = 30;
  spec.options.subspace.significance.p_threshold = 0.5;
  spec.options.explain.samples = 40;
  spec.grammar.p_threshold = 0.5;
  return spec;
}

std::string job_json(const JobSummary& s) { return s.to_json_value().dump(0); }

/// Minimal ok summary whose JSON size depends only on the argument LENGTHS
/// — callers pick equal-length names/gaps so LRU byte accounting is exact.
JobSummary tiny(const std::string& name, double gap, std::uint64_t seed) {
  JobSummary s;
  s.case_name = name;
  s.ok = true;
  s.best_gap_found = gap;
  s.seed = seed;
  return s;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Wall time is the one legitimately nondeterministic field of a FRESH
/// run; zero it when comparing service output against Engine output.
ExperimentSummary scrub_wall(ExperimentSummary s) {
  s.wall_seconds = 0.0;
  for (JobSummary& j : s.jobs) j.wall_seconds = 0.0;
  return s;
}

}  // namespace

// ---------------------------------------------------------------- JobQueue

TEST(JobQueue, FifoAcrossBatchDequeues) {
  JobQueue q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push({1, i}));
  EXPECT_EQ(q.size(), 5u);

  // pop_batch clears the (reusable per-worker) output vector each call.
  std::vector<QueuedJob> batch;
  ASSERT_EQ(q.pop_batch(&batch, 2), 2u);
  EXPECT_EQ(batch[0].index, 0);
  EXPECT_EQ(batch[1].index, 1);
  ASSERT_EQ(q.pop_batch(&batch, 8), 3u);  // drains the rest
  ASSERT_EQ(batch.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(batch[i].index, 2 + i) << "slot " << i;
  EXPECT_EQ(q.size(), 0u);
}

TEST(JobQueue, CloseDrainsThenSignalsEnd) {
  JobQueue q(4);
  ASSERT_TRUE(q.push({1, 0}));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push({1, 1})) << "push after close must be refused";

  // Residual jobs still drain; only then does pop_batch report the end.
  std::vector<QueuedJob> batch;
  ASSERT_EQ(q.pop_batch(&batch, 4), 1u);
  EXPECT_EQ(batch[0].index, 0);
  EXPECT_EQ(q.pop_batch(&batch, 4), 0u);
}

TEST(JobQueue, BackpressureProducerUnblocksOnConsumeOrClose) {
  JobQueue q(1);
  ASSERT_TRUE(q.push({1, 0}));  // full

  std::atomic<int> second_push{-1};  // -1 pending, 1 accepted, 0 refused
  std::thread producer(
      [&] { second_push.store(q.push({1, 1}) ? 1 : 0); });
  std::vector<QueuedJob> batch;
  ASSERT_EQ(q.pop_batch(&batch, 1), 1u);  // frees the slot
  producer.join();
  EXPECT_EQ(second_push.load(), 1);
  ASSERT_EQ(q.pop_batch(&batch, 1), 1u);
  EXPECT_EQ(batch[0].index, 1);

  // A producer stuck on a full queue is released (with failure) by close.
  ASSERT_TRUE(q.push({1, 2}));
  std::atomic<int> third_push{-1};
  std::thread blocked(
      [&] { third_push.store(q.push({1, 3}) ? 1 : 0); });
  q.close();
  blocked.join();
  EXPECT_EQ(third_push.load(), 0);
}

// -------------------------------------------------------------- ResultCache

TEST(ResultCache, MissFulfillHitReplaysTheExactJson) {
  ResultCache cache;
  const std::string key = ResultCache::key(
      "wcmp", "fat_tree_k4_s1", "pf1:deadbeef", 0xFEEDFACECAFEBEEFull);

  JobSummary s;
  s.case_name = "wcmp";
  s.scenario = "fat_tree_k4_s1";
  s.ok = true;
  s.subspaces = 2;
  s.significant = 1;
  s.best_gap_found = 0.3251;
  s.gap_scale = 2.0;
  s.wall_seconds = 1.25;
  s.lp_solves = 17;
  s.features["pinned_sp_hops"] = 3.0;
  s.seed = 0xFEEDFACECAFEBEEFull;  // above 2^53: exercises the string path
  s.options_fingerprint = "pf1:deadbeef";

  JobSummary out;
  ASSERT_EQ(cache.lookup_or_claim(key, &out), Outcome::kClaimed)
      << "first lookup is a miss";
  cache.fulfill(key, s);
  ASSERT_EQ(cache.lookup_or_claim(key, &out), Outcome::kHit);
  // The cache serves through the exact to_json_value/from_json_value
  // round-trip — the replay is bitwise identical, wall clock included.
  EXPECT_EQ(job_json(out), job_json(s));
  EXPECT_TRUE(out == s);

  const ResultCache::Stats cs = cache.stats();
  EXPECT_EQ(cs.hits, 1);
  EXPECT_EQ(cs.misses, 1);
  EXPECT_EQ(cs.entries, 1u);
}

TEST(ResultCache, SecondSubmitterWaitsForTheInflightOwner) {
  ResultCache cache;
  const std::string key = ResultCache::key("c", "s", "pf", 7);
  JobSummary mine;
  ASSERT_EQ(cache.lookup_or_claim(key, &mine), Outcome::kClaimed);

  std::atomic<bool> looking{false};
  JobSummary theirs;
  std::atomic<bool> their_hit{false};
  std::thread waiter([&] {
    looking.store(true);
    JobSummary got;
    their_hit.store(cache.lookup_or_claim(key, &got) == Outcome::kHit);
    theirs = got;  // joined before read below
  });
  while (!looking.load()) std::this_thread::yield();

  JobSummary s;
  s.case_name = "c";
  s.ok = true;
  s.best_gap_found = 1.5;
  cache.fulfill(key, s);
  waiter.join();
  EXPECT_TRUE(their_hit.load()) << "the waiter must be served the result";
  EXPECT_EQ(job_json(theirs), job_json(s));
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(ResultCache, AbandonReopensTheKey) {
  ResultCache cache;
  const std::string key = ResultCache::key("c", "", "pf", 1);
  JobSummary out;
  ASSERT_EQ(cache.lookup_or_claim(key, &out), Outcome::kClaimed);
  cache.abandon(key);  // e.g. the job failed — failures are not cached
  ASSERT_EQ(cache.lookup_or_claim(key, &out), Outcome::kClaimed)
      << "key is claimable again";
  JobSummary s;
  s.case_name = "c";
  s.ok = true;
  cache.fulfill(key, s);
  EXPECT_EQ(cache.lookup_or_claim(key, &out), Outcome::kHit);
  const ResultCache::Stats cs = cache.stats();
  EXPECT_EQ(cs.misses, 2);
  EXPECT_EQ(cs.hits, 1);
  EXPECT_EQ(cs.entries, 1u);
}

TEST(ResultCache, LruEvictionPrefersLeastRecentlyServed) {
  // Probe: one entry's exact byte cost (equal-length names/gaps/seeds make
  // every entry in this test the same size).
  ResultCache probe;
  probe.fulfill(ResultCache::key("a", "s", "pf", 1), tiny("a", 0.125, 1));
  const std::size_t one = probe.stats().bytes;
  ASSERT_GT(one, 0u);

  CacheOptions co;
  co.max_bytes = 2 * one;  // room for exactly two entries
  ResultCache cache(co);
  const std::string ka = ResultCache::key("a", "s", "pf", 1);
  const std::string kb = ResultCache::key("b", "s", "pf", 2);
  const std::string kc = ResultCache::key("c", "s", "pf", 3);
  cache.fulfill(ka, tiny("a", 0.125, 1));
  cache.fulfill(kb, tiny("b", 0.375, 2));
  EXPECT_EQ(cache.stats().bytes, 2 * one) << "entries must be equal-sized";

  // Serve A: it becomes most-recent, so the third insert must evict B —
  // least-recently-SERVED, not least-recently-inserted.
  JobSummary out;
  ASSERT_EQ(cache.lookup_or_claim(ka, &out), Outcome::kHit);
  cache.fulfill(kc, tiny("c", 0.625, 3));

  EXPECT_EQ(cache.lookup_or_claim(ka, &out), Outcome::kHit) << "A survived";
  EXPECT_EQ(cache.lookup_or_claim(kc, &out), Outcome::kHit) << "C survived";
  EXPECT_EQ(cache.lookup_or_claim(kb, &out), Outcome::kClaimed)
      << "B was the LRU victim";
  cache.abandon(kb);

  const ResultCache::Stats cs = cache.stats();
  EXPECT_EQ(cs.evictions, 1);
  EXPECT_EQ(cs.entries, 2u);
  EXPECT_LE(cs.bytes, co.max_bytes) << "high-water mark holds";
}

TEST(ResultCache, MruEntryIsNeverEvictedEvenWhenOversized) {
  ResultCache probe;
  probe.fulfill(ResultCache::key("a", "s", "pf", 1), tiny("a", 0.125, 1));
  const std::size_t one = probe.stats().bytes;

  CacheOptions co;
  co.max_bytes = one / 2;  // smaller than any single entry
  ResultCache cache(co);
  const std::string ka = ResultCache::key("a", "s", "pf", 1);
  const std::string kb = ResultCache::key("b", "s", "pf", 2);
  // A single oversized result is retained (not thrashed) — the MRU entry
  // is exempt from eviction by design.
  cache.fulfill(ka, tiny("a", 0.125, 1));
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().evictions, 0);
  // The next fulfill displaces it: A is now the LRU tail and goes.
  cache.fulfill(kb, tiny("b", 0.375, 2));
  JobSummary out;
  EXPECT_EQ(cache.lookup_or_claim(kb, &out), Outcome::kHit);
  EXPECT_EQ(cache.lookup_or_claim(ka, &out), Outcome::kClaimed);
  cache.abandon(ka);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(ResultCache, InflightClaimsAreNeverEvicted) {
  ResultCache probe;
  probe.fulfill(ResultCache::key("a", "s", "pf", 1), tiny("a", 0.125, 1));
  const std::size_t one = probe.stats().bytes;

  CacheOptions co;
  co.max_bytes = 2 * one;
  ResultCache cache(co);
  const std::string kx = ResultCache::key("x", "s", "pf", 9);
  JobSummary out;
  ASSERT_EQ(cache.lookup_or_claim(kx, &out), Outcome::kClaimed);

  // Churn enough ready entries through the cache to evict everything
  // evictable; the in-flight claim must ride it out untouched.
  cache.fulfill(ResultCache::key("a", "s", "pf", 1), tiny("a", 0.125, 1));
  cache.fulfill(ResultCache::key("b", "s", "pf", 2), tiny("b", 0.375, 2));
  cache.fulfill(ResultCache::key("c", "s", "pf", 3), tiny("c", 0.625, 3));
  EXPECT_GE(cache.stats().evictions, 1);

  cache.fulfill(kx, tiny("x", 0.875, 9));
  EXPECT_EQ(cache.lookup_or_claim(kx, &out), Outcome::kHit)
      << "the claim survived the eviction churn and served its value";
}

TEST(ResultCache, StatsCountersMatchTheDebugRecount) {
  ResultCache probe;
  probe.fulfill(ResultCache::key("a", "s", "pf", 1), tiny("a", 0.125, 1));
  CacheOptions co;
  co.max_bytes = 2 * probe.stats().bytes;
  ResultCache cache(co);

  auto check = [&](const char* when) {
    const ResultCache::Stats fast = cache.stats();
    const ResultCache::Stats slow = cache.recount_stats();
    EXPECT_EQ(fast.entries, slow.entries) << when;
    EXPECT_EQ(fast.bytes, slow.bytes) << when;
  };
  check("empty");
  JobSummary out;
  const std::string ka = ResultCache::key("a", "s", "pf", 1);
  ASSERT_EQ(cache.lookup_or_claim(ka, &out), Outcome::kClaimed);
  check("one in-flight claim (zero ready bytes)");
  cache.fulfill(ka, tiny("a", 0.125, 1));
  check("one ready entry");
  cache.fulfill(ResultCache::key("b", "s", "pf", 2), tiny("b", 0.375, 2));
  cache.fulfill(ResultCache::key("c", "s", "pf", 3), tiny("c", 0.625, 3));
  check("after an eviction");
  EXPECT_EQ(cache.lookup_or_claim(ka, &out), Outcome::kClaimed);
  cache.abandon(ka);
  check("after a claim + abandon");
}

TEST(ResultCache, AbandonHandsTheClaimToExactlyOneWaiter) {
  ResultCache cache;
  const std::string key = ResultCache::key("c", "s", "pf", 7);
  JobSummary mine;
  ASSERT_EQ(cache.lookup_or_claim(key, &mine), Outcome::kClaimed);

  const int kWaiters = 3;
  std::atomic<int> claimed{0}, hits{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      JobSummary got;
      const Outcome o = cache.lookup_or_claim(key, &got);
      if (o == Outcome::kClaimed) {
        // The inheritor recomputes and publishes; the others then hit.
        claimed.fetch_add(1);
        cache.fulfill(key, tiny("c", 0.125, 7));
      } else if (o == Outcome::kHit) {
        hits.fetch_add(1);
      }
    });
  }
  // inflight_waits is incremented in the same critical section that parks
  // the waiter, so this rendezvous means all three are actually waiting.
  while (cache.stats().inflight_waits < kWaiters) std::this_thread::yield();

  cache.abandon(key);  // our job "failed": ONE waiter inherits the claim
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(claimed.load(), 1) << "exactly one waiter inherits";
  EXPECT_EQ(hits.load(), kWaiters - 1) << "the rest are served its result";
  JobSummary out;
  EXPECT_EQ(cache.lookup_or_claim(key, &out), Outcome::kHit);
}

TEST(ResultCache, RepeatedAbandonsFastFailOtherClaimants) {
  CacheOptions co;
  co.fail_fast_after = 3;
  ResultCache cache(co);
  const std::string key = ResultCache::key("c", "s", "pf", 1);
  JobSummary out;
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(cache.lookup_or_claim(key, &out), Outcome::kClaimed) << i;
    cache.abandon(key);
  }
  // The key is poisoned.  One prober still gets through (the claim), but
  // anyone else arriving while it is in flight fails fast instead of
  // convoying behind a job that keeps dying.
  ASSERT_EQ(cache.lookup_or_claim(key, &out), Outcome::kClaimed);
  EXPECT_EQ(cache.lookup_or_claim(key, &out), Outcome::kFastFail);
  EXPECT_EQ(cache.stats().fast_fails, 1);

  // One success heals the key completely.
  cache.fulfill(key, tiny("c", 0.125, 1));
  EXPECT_EQ(cache.lookup_or_claim(key, &out), Outcome::kHit);
  EXPECT_EQ(cache.stats().fast_fails, 1) << "no new fast-fails after heal";
}

TEST(ResultCache, JournalReplayServesPriorEntriesByteForByte) {
  const std::string path = "test_server_replay.journal";
  std::remove(path.c_str());
  const std::string ka = ResultCache::key("a", "s", "pf", 1);
  const std::string kb = ResultCache::key("b", "s", "pf", 2);
  const JobSummary a = tiny("a", 0.125, 1), b = tiny("b", 0.375, 2);
  {
    CacheOptions co;
    co.journal_path = path;
    ResultCache cache(co);
    cache.fulfill(ka, a);
    cache.fulfill(kb, b);
  }  // destructor compacts (clean shutdown)
  {
    CacheOptions co;
    co.journal_path = path;
    ResultCache cache(co);
    EXPECT_EQ(cache.stats().replayed, 2);
    JobSummary out;
    ASSERT_EQ(cache.lookup_or_claim(ka, &out), Outcome::kHit);
    EXPECT_EQ(job_json(out), job_json(a)) << "replay is byte-for-byte";
    ASSERT_EQ(cache.lookup_or_claim(kb, &out), Outcome::kHit);
    EXPECT_EQ(job_json(out), job_json(b));
  }
  std::remove(path.c_str());
}

TEST(ResultCache, JournalToleratesTruncationAndGarbage) {
  const std::string path = "test_server_truncated.journal";
  std::remove(path.c_str());
  const std::string ka = ResultCache::key("a", "s", "pf", 1);
  const std::string kb = ResultCache::key("b", "s", "pf", 2);
  {
    CacheOptions co;
    co.journal_path = path;
    ResultCache cache(co);
    cache.fulfill(ka, tiny("a", 0.125, 1));
    cache.fulfill(kb, tiny("b", 0.375, 2));
  }
  {
    // Simulated corruption: a tab-less line, a line whose value is not
    // JSON, and a final append cut off mid-line by a "crash".
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "garbage line without a tab\n";
    out << "kx\tnot json at all\n";
    out << "ky\t{\"trunc";  // no terminating newline
  }
  {
    CacheOptions co;
    co.journal_path = path;
    ResultCache cache(co);
    EXPECT_EQ(cache.stats().replayed, 2) << "only the intact records load";
    JobSummary out;
    EXPECT_EQ(cache.lookup_or_claim(ka, &out), Outcome::kHit);
    EXPECT_EQ(cache.lookup_or_claim(kb, &out), Outcome::kHit);
    EXPECT_EQ(cache.lookup_or_claim("ky\t{\"trunc", &out), Outcome::kClaimed)
        << "the truncated record was dropped, not half-applied";
    cache.abandon("ky\t{\"trunc");
    // Startup compaction already rewrote the journal to the two survivors.
    const std::string text = read_file(path);
    EXPECT_EQ(text.find("garbage"), std::string::npos);
    EXPECT_EQ(text.find("trunc"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(ResultCache, CompactionDropsTombstonesAndKeepsLruOrder) {
  const std::string path = "test_server_compact.journal";
  std::remove(path.c_str());
  ResultCache probe;
  probe.fulfill(ResultCache::key("a", "s", "pf", 1), tiny("a", 0.125, 1));
  const std::size_t one = probe.stats().bytes;

  const std::string ka = ResultCache::key("a", "s", "pf", 1);
  const std::string kb = ResultCache::key("b", "s", "pf", 2);
  const std::string kc = ResultCache::key("c", "s", "pf", 3);
  const JobSummary a = tiny("a", 0.125, 1), c = tiny("c", 0.625, 3);
  {
    CacheOptions co;
    co.journal_path = path;
    co.max_bytes = 2 * one;
    ResultCache cache(co);
    cache.fulfill(ka, a);
    cache.fulfill(kb, tiny("b", 0.375, 2));
    JobSummary out;
    ASSERT_EQ(cache.lookup_or_claim(ka, &out), Outcome::kHit);  // refresh A
    cache.fulfill(kc, c);  // evicts B: a tombstone line in the live journal
    EXPECT_NE(read_file(path).find(kb + "\t\n"), std::string::npos)
        << "the live journal records the eviction as a tombstone";
  }
  // The clean-shutdown compaction rewrites exactly the survivors, oldest
  // first (so replay rebuilds the same recency order: C is the MRU head).
  const std::string expected =
      ka + "\t" + job_json(a) + "\n" + kc + "\t" + job_json(c) + "\n";
  EXPECT_EQ(read_file(path), expected);
  std::remove(path.c_str());
}

// ------------------------------------------------------------------ Service

TEST(Service, RepeatSubmissionIsBitwiseCachedWithZeroNewLpWork) {
  const ExperimentSpec spec = small_grid();
  const int n = static_cast<int>(Engine().expand(spec).size());
  ASSERT_EQ(n, 6);

  // Reference: a service that answers the grid ONCE.  Measured across
  // construction..destruction on this thread: the pool join flushes every
  // worker's thread-inclusive LP tallies, so the delta is exact.
  const solver::LpCounters before_once = solver::lp_counters();
  {
    ServiceOptions o;
    o.workers = 2;
    Service svc(o);
    const ExperimentSummary s = svc.run(spec);
    ASSERT_EQ(s.jobs.size(), static_cast<std::size_t>(n));
  }
  const long solves_once =
      solver::lp_counters().solves - before_once.solves;
  ASSERT_GT(solves_once, 0);

  // The submission under test answers the same grid TWICE.
  const solver::LpCounters before_twice = solver::lp_counters();
  std::vector<std::string> first_json(n), second_json(n);
  ServiceStats stats;
  {
    ServiceOptions o;
    o.workers = 2;
    Service svc(o);
    std::atomic<int> fresh{0}, cached{0};
    const ExperimentSummary s1 =
        svc.run(spec, [&](const JobSummary&, bool from_cache) {
          (from_cache ? cached : fresh).fetch_add(1);
        });
    for (int i = 0; i < n; ++i) first_json[i] = job_json(s1.jobs[i]);
    EXPECT_EQ(fresh.load(), n);
    EXPECT_EQ(cached.load(), 0);

    const ExperimentSummary s2 =
        svc.run(spec, [&](const JobSummary& j, bool from_cache) {
          EXPECT_TRUE(from_cache) << "job " << j.index;
        });
    for (int i = 0; i < n; ++i) second_json[i] = job_json(s2.jobs[i]);
    // Trends are re-mined from identical job digests: identical too.
    EXPECT_TRUE(scrub_wall(s1) == scrub_wall(s2));
    ASSERT_EQ(s1.trends.size(), s2.trends.size());

    stats = svc.stats();
  }
  const long solves_twice =
      solver::lp_counters().solves - before_twice.solves;

  // The replay is byte-for-byte what the first round emitted — including
  // the cached wall_seconds, which the cache preserves by design.
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(first_json[i], second_json[i]) << "job " << i;
  EXPECT_EQ(stats.cache_hits, n);
  EXPECT_EQ(stats.cache_misses, n);
  EXPECT_EQ(stats.cache_entries, static_cast<std::size_t>(n));
  EXPECT_EQ(stats.jobs_completed, 2 * n);
  EXPECT_EQ(stats.duplicate_deliveries, 0);
  // Each (case, scenario) instance was constructed once, not once per job
  // or per submission.
  EXPECT_EQ(stats.case_builds, n);
  // The acceptance criterion: the cached round added NOTHING to the LP
  // tally — running the grid twice cost exactly one grid of solves.
  EXPECT_EQ(solves_twice, solves_once);
}

TEST(Service, MatchesEngineBitwiseForAnyPoolSize) {
  ExperimentSpec spec = small_grid();
  spec.workers = 1;
  const ExperimentSummary reference = scrub_wall(Engine().run(spec).summary());
  ASSERT_GE(reference.jobs.size(), 6u);
  for (const JobSummary& j : reference.jobs)
    ASSERT_TRUE(j.ok) << j.case_name << "@" << j.scenario << ": " << j.error;

  for (const int pool : {1, 2, 4}) {
    ServiceOptions o;
    o.workers = pool;
    Service svc(o);
    EXPECT_EQ(svc.pool_size(), pool);
    // The spec's own workers field is the ENGINE's knob; the service pool
    // is fixed at construction and must not change job content either way.
    spec.workers = 7;
    const ExperimentSummary got = scrub_wall(svc.run(spec));
    ASSERT_EQ(got.jobs.size(), reference.jobs.size()) << "pool " << pool;
    for (std::size_t i = 0; i < reference.jobs.size(); ++i) {
      EXPECT_EQ(job_json(got.jobs[i]), job_json(reference.jobs[i]))
          << "pool " << pool << " job " << i;
    }
    EXPECT_TRUE(got == reference) << "pool " << pool;
    EXPECT_EQ(got.trends.size(), reference.trends.size());
    EXPECT_EQ(got.observations, reference.observations);
    EXPECT_EQ(got.lp_solves, reference.lp_solves);
    EXPECT_EQ(got.lp_iterations, reference.lp_iterations);
  }
}

TEST(Service, DrainUnderLoadLosesAndDuplicatesNothing) {
  ServiceOptions o;
  o.workers = 4;
  o.queue_capacity = 4;  // small bound: submit exercises backpressure
  o.batch_size = 2;
  Service svc(o);

  // Three submissions with distinct experiment seeds: distinct content
  // (reseed_jobs salts every job from spec.seed), so the cache cannot
  // collapse the load away.
  const int kSubs = 3;
  std::vector<std::uint64_t> ids;
  // Per-slot delivery tallies.  Writes happen in the callback (serialized
  // under the submission's lock); the reads below happen only after
  // drain() returns, which orders after every delivery via the service
  // mutex — plain ints are TSan-clean here.
  std::vector<std::vector<int>> delivered(kSubs);
  int jobs_per_sub = 0;
  for (int s = 0; s < kSubs; ++s) {
    ExperimentSpec spec = small_grid();
    spec.seed = 1000 + s;
    jobs_per_sub = static_cast<int>(Engine().expand(spec).size());
    auto& counts = delivered[s];
    counts.assign(jobs_per_sub, 0);
    const std::uint64_t id =
        svc.submit(spec, [&counts](const JobSummary& j, bool) {
          ++counts[j.index];
        });
    ASSERT_NE(id, Service::kRejected);
    ids.push_back(id);
  }

  // Drain while the grids are in flight: it must block until every
  // accepted job is delivered, then reject new intake.
  svc.drain();
  ExperimentSpec late = small_grid();
  EXPECT_EQ(svc.submit(late), Service::kRejected);

  for (int s = 0; s < kSubs; ++s)
    for (int i = 0; i < jobs_per_sub; ++i)
      EXPECT_EQ(delivered[s][i], 1)
          << "submission " << s << " slot " << i;

  // wait() after drain still serves the finished submissions, complete
  // and in grid order.
  for (int s = 0; s < kSubs; ++s) {
    const ExperimentSummary sum = svc.wait(ids[s]);
    ASSERT_EQ(sum.jobs.size(), static_cast<std::size_t>(jobs_per_sub));
    for (int i = 0; i < jobs_per_sub; ++i) {
      EXPECT_EQ(sum.jobs[i].index, i);
      EXPECT_TRUE(sum.jobs[i].ok) << sum.jobs[i].error;
    }
  }

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.jobs_submitted, kSubs * jobs_per_sub);
  EXPECT_EQ(stats.jobs_completed, kSubs * jobs_per_sub);
  EXPECT_EQ(stats.jobs_failed, 0);
  EXPECT_EQ(stats.duplicate_deliveries, 0);
}

TEST(Service, UnknownCaseFailsLoudlyAndIsNeverCached) {
  ExperimentSpec spec;
  spec.cases = {"first_fit", "no_such_case"};
  spec.scenarios = {line(3)};
  spec.options.min_gap = 1.0;
  spec.options.subspace.max_subspaces = 1;
  spec.options.subspace.tree_samples = 60;
  spec.options.subspace.significance.pairs = 30;
  spec.options.explain.samples = 40;

  ServiceOptions o;
  o.workers = 2;
  Service svc(o);
  const ExperimentSummary s1 = svc.run(spec);
  ASSERT_EQ(s1.jobs.size(), 2u);
  EXPECT_TRUE(s1.jobs[0].ok);
  EXPECT_FALSE(s1.jobs[1].ok);
  EXPECT_EQ(s1.jobs[1].error, "unknown case");  // Engine's exact wording

  // Resubmit: the ok job hits, the failed one is recomputed (failures are
  // not cached — a transient condition must not be sticky).
  const ExperimentSummary s2 = svc.run(spec);
  EXPECT_FALSE(s2.jobs[1].ok);
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_EQ(stats.cache_misses, 3);
  EXPECT_EQ(stats.cache_entries, 1u);
  EXPECT_EQ(stats.jobs_failed, 2);
}

TEST(Service, ThrowingCaseBuildStrandsNoClaimant) {
  // A factory that throws exercises every unwind guard on the job path:
  // the case-memo claim (scenario_case), the result-cache claim
  // (ClaimGuard), and the catch-all that still delivers the job.  The test
  // passing AT ALL is the headline assertion — before the guards, the
  // second submission of the same key blocked forever.
  registry().add("test_throwing_case",
                 CaseRegistry::Factory(
                     [](const scenario::ScenarioSpec*)
                         -> std::shared_ptr<HeuristicCase> {
                       throw std::runtime_error("injected case-build failure");
                     }));

  ExperimentSpec spec;
  spec.cases = {"test_throwing_case"};
  spec.scenarios = {line(3)};

  ServiceOptions o;
  o.workers = 4;
  Service svc(o);
  // Three concurrent submissions of the SAME key: the first claims and
  // throws; its abandon must hand the claim on (not strand the waiters),
  // and each inheritor throws in turn.
  const int kSubs = 3;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < kSubs; ++i) {
    const std::uint64_t id = svc.submit(spec);
    ASSERT_NE(id, Service::kRejected);
    ids.push_back(id);
  }
  for (const std::uint64_t id : ids) {
    const ExperimentSummary s = svc.wait(id);
    ASSERT_EQ(s.jobs.size(), 1u);
    EXPECT_FALSE(s.jobs[0].ok);
    EXPECT_EQ(s.jobs[0].error, "job threw: injected case-build failure");
  }
  // A late submission still completes: nothing is stuck in-flight and the
  // failure was never cached.
  const ExperimentSummary late = svc.run(spec);
  ASSERT_EQ(late.jobs.size(), 1u);
  EXPECT_FALSE(late.jobs[0].ok);
  EXPECT_EQ(late.jobs[0].error, "job threw: injected case-build failure");

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.jobs_failed, kSubs + 1);
  EXPECT_EQ(stats.cache_entries, 0u) << "failures are never cached";
}

TEST(Service, RestartReplaysTheJournaledWorkingSetWithZeroLpWork) {
  const std::string path = "test_server_service.journal";
  std::remove(path.c_str());
  const ExperimentSpec spec = small_grid();
  const int n = static_cast<int>(Engine().expand(spec).size());

  ServiceOptions o;
  o.workers = 2;
  o.cache_path = path;
  std::vector<std::string> first_json(n);
  {
    Service svc(o);
    const ExperimentSummary s = svc.run(spec);
    ASSERT_EQ(s.jobs.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) first_json[i] = job_json(s.jobs[i]);
  }  // clean shutdown compacts the journal

  // The restarted service must serve the whole prior working set from the
  // journal: bitwise identical, all from cache, ZERO new LP solves.
  const solver::LpCounters before = solver::lp_counters();
  {
    Service svc(o);
    EXPECT_EQ(svc.stats().cache_replayed, n);
    const ExperimentSummary s =
        svc.run(spec, [](const JobSummary& j, bool from_cache) {
          EXPECT_TRUE(from_cache) << "job " << j.index;
        });
    ASSERT_EQ(s.jobs.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      EXPECT_EQ(job_json(s.jobs[i]), first_json[i]) << "job " << i;
    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.cache_hits, n);
    EXPECT_EQ(stats.cache_misses, 0);
  }
  EXPECT_EQ(solver::lp_counters().solves - before.solves, 0);
  std::remove(path.c_str());
}

TEST(Service, ShutdownIsIdempotentAndTerminal) {
  ServiceOptions o;
  o.workers = 2;
  Service svc(o);
  EXPECT_TRUE(svc.wait(42).jobs.empty()) << "unknown handle: empty summary";
  svc.shutdown();
  svc.shutdown();  // second call is a no-op
  ExperimentSpec spec = small_grid();
  EXPECT_EQ(svc.submit(spec), Service::kRejected);
  EXPECT_TRUE(svc.run(spec).jobs.empty());
  // The destructor's shutdown() is then also a no-op.
}
