// Resident explanation service: job-queue FIFO/close/backpressure
// semantics, result-cache round-trip + in-flight dedup, and the Service
// acceptance criteria — a repeated submission is served bitwise identical
// from cache with ZERO new LP work, results match Engine::run for any pool
// size, and drain-under-load neither loses nor duplicates a job.  Runs
// under TSan in CI with XPLAIN_WORKERS=4.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "scenario/spec.h"
#include "server/job_queue.h"
#include "server/result_cache.h"
#include "server/service.h"
#include "solver/lp.h"

using namespace xplain;
using server::JobQueue;
using server::QueuedJob;
using server::ResultCache;
using server::Service;
using server::ServiceOptions;
using server::ServiceStats;

namespace {

scenario::ScenarioSpec line(int n) {
  scenario::ScenarioSpec s;
  s.kind = scenario::TopologyKind::kLine;
  s.size = n;
  return s;
}

/// A cheap 6-job grid (two VBP-ish cases x three line sizes) with the
/// pipeline knobs turned down — the same shape test_engine sweeps.
ExperimentSpec small_grid() {
  ExperimentSpec spec;
  spec.cases = {"first_fit", "demand_pinning_chain"};
  spec.scenarios = {line(3), line(4), line(5)};
  spec.options.min_gap = 1.0;
  spec.options.subspace.max_subspaces = 1;
  spec.options.subspace.tree_samples = 60;
  spec.options.subspace.significance.pairs = 30;
  spec.options.subspace.significance.p_threshold = 0.5;
  spec.options.explain.samples = 40;
  spec.grammar.p_threshold = 0.5;
  return spec;
}

std::string job_json(const JobSummary& s) { return s.to_json_value().dump(0); }

/// Wall time is the one legitimately nondeterministic field of a FRESH
/// run; zero it when comparing service output against Engine output.
ExperimentSummary scrub_wall(ExperimentSummary s) {
  s.wall_seconds = 0.0;
  for (JobSummary& j : s.jobs) j.wall_seconds = 0.0;
  return s;
}

}  // namespace

// ---------------------------------------------------------------- JobQueue

TEST(JobQueue, FifoAcrossBatchDequeues) {
  JobQueue q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push({1, i}));
  EXPECT_EQ(q.size(), 5u);

  // pop_batch clears the (reusable per-worker) output vector each call.
  std::vector<QueuedJob> batch;
  ASSERT_EQ(q.pop_batch(&batch, 2), 2u);
  EXPECT_EQ(batch[0].index, 0);
  EXPECT_EQ(batch[1].index, 1);
  ASSERT_EQ(q.pop_batch(&batch, 8), 3u);  // drains the rest
  ASSERT_EQ(batch.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(batch[i].index, 2 + i) << "slot " << i;
  EXPECT_EQ(q.size(), 0u);
}

TEST(JobQueue, CloseDrainsThenSignalsEnd) {
  JobQueue q(4);
  ASSERT_TRUE(q.push({1, 0}));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push({1, 1})) << "push after close must be refused";

  // Residual jobs still drain; only then does pop_batch report the end.
  std::vector<QueuedJob> batch;
  ASSERT_EQ(q.pop_batch(&batch, 4), 1u);
  EXPECT_EQ(batch[0].index, 0);
  EXPECT_EQ(q.pop_batch(&batch, 4), 0u);
}

TEST(JobQueue, BackpressureProducerUnblocksOnConsumeOrClose) {
  JobQueue q(1);
  ASSERT_TRUE(q.push({1, 0}));  // full

  std::atomic<int> second_push{-1};  // -1 pending, 1 accepted, 0 refused
  std::thread producer(
      [&] { second_push.store(q.push({1, 1}) ? 1 : 0); });
  std::vector<QueuedJob> batch;
  ASSERT_EQ(q.pop_batch(&batch, 1), 1u);  // frees the slot
  producer.join();
  EXPECT_EQ(second_push.load(), 1);
  ASSERT_EQ(q.pop_batch(&batch, 1), 1u);
  EXPECT_EQ(batch[0].index, 1);

  // A producer stuck on a full queue is released (with failure) by close.
  ASSERT_TRUE(q.push({1, 2}));
  std::atomic<int> third_push{-1};
  std::thread blocked(
      [&] { third_push.store(q.push({1, 3}) ? 1 : 0); });
  q.close();
  blocked.join();
  EXPECT_EQ(third_push.load(), 0);
}

// -------------------------------------------------------------- ResultCache

TEST(ResultCache, MissFulfillHitReplaysTheExactJson) {
  ResultCache cache;
  const std::string key = ResultCache::key(
      "wcmp", "fat_tree_k4_s1", "pf1:deadbeef", 0xFEEDFACECAFEBEEFull);

  JobSummary s;
  s.case_name = "wcmp";
  s.scenario = "fat_tree_k4_s1";
  s.ok = true;
  s.subspaces = 2;
  s.significant = 1;
  s.best_gap_found = 0.3251;
  s.gap_scale = 2.0;
  s.wall_seconds = 1.25;
  s.lp_solves = 17;
  s.features["pinned_sp_hops"] = 3.0;
  s.seed = 0xFEEDFACECAFEBEEFull;  // above 2^53: exercises the string path
  s.options_fingerprint = "pf1:deadbeef";

  JobSummary out;
  ASSERT_FALSE(cache.lookup_or_claim(key, &out)) << "first lookup is a miss";
  cache.fulfill(key, s);
  ASSERT_TRUE(cache.lookup_or_claim(key, &out));
  // The cache serves through the exact to_json_value/from_json_value
  // round-trip — the replay is bitwise identical, wall clock included.
  EXPECT_EQ(job_json(out), job_json(s));
  EXPECT_TRUE(out == s);

  const ResultCache::Stats cs = cache.stats();
  EXPECT_EQ(cs.hits, 1);
  EXPECT_EQ(cs.misses, 1);
  EXPECT_EQ(cs.entries, 1u);
}

TEST(ResultCache, SecondSubmitterWaitsForTheInflightOwner) {
  ResultCache cache;
  const std::string key = ResultCache::key("c", "s", "pf", 7);
  JobSummary mine;
  ASSERT_FALSE(cache.lookup_or_claim(key, &mine));  // we own the claim

  std::atomic<bool> looking{false};
  JobSummary theirs;
  std::atomic<bool> their_hit{false};
  std::thread waiter([&] {
    looking.store(true);
    JobSummary got;
    their_hit.store(cache.lookup_or_claim(key, &got));
    theirs = got;  // joined before read below
  });
  while (!looking.load()) std::this_thread::yield();

  JobSummary s;
  s.case_name = "c";
  s.ok = true;
  s.best_gap_found = 1.5;
  cache.fulfill(key, s);
  waiter.join();
  EXPECT_TRUE(their_hit.load()) << "the waiter must be served the result";
  EXPECT_EQ(job_json(theirs), job_json(s));
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(ResultCache, AbandonReopensTheKey) {
  ResultCache cache;
  const std::string key = ResultCache::key("c", "", "pf", 1);
  JobSummary out;
  ASSERT_FALSE(cache.lookup_or_claim(key, &out));
  cache.abandon(key);  // e.g. the job failed — failures are not cached
  ASSERT_FALSE(cache.lookup_or_claim(key, &out)) << "key is claimable again";
  JobSummary s;
  s.case_name = "c";
  s.ok = true;
  cache.fulfill(key, s);
  EXPECT_TRUE(cache.lookup_or_claim(key, &out));
  const ResultCache::Stats cs = cache.stats();
  EXPECT_EQ(cs.misses, 2);
  EXPECT_EQ(cs.hits, 1);
  EXPECT_EQ(cs.entries, 1u);
}

// ------------------------------------------------------------------ Service

TEST(Service, RepeatSubmissionIsBitwiseCachedWithZeroNewLpWork) {
  const ExperimentSpec spec = small_grid();
  const int n = static_cast<int>(Engine().expand(spec).size());
  ASSERT_EQ(n, 6);

  // Reference: a service that answers the grid ONCE.  Measured across
  // construction..destruction on this thread: the pool join flushes every
  // worker's thread-inclusive LP tallies, so the delta is exact.
  const solver::LpCounters before_once = solver::lp_counters();
  {
    ServiceOptions o;
    o.workers = 2;
    Service svc(o);
    const ExperimentSummary s = svc.run(spec);
    ASSERT_EQ(s.jobs.size(), static_cast<std::size_t>(n));
  }
  const long solves_once =
      solver::lp_counters().solves - before_once.solves;
  ASSERT_GT(solves_once, 0);

  // The submission under test answers the same grid TWICE.
  const solver::LpCounters before_twice = solver::lp_counters();
  std::vector<std::string> first_json(n), second_json(n);
  ServiceStats stats;
  {
    ServiceOptions o;
    o.workers = 2;
    Service svc(o);
    std::atomic<int> fresh{0}, cached{0};
    const ExperimentSummary s1 =
        svc.run(spec, [&](const JobSummary&, bool from_cache) {
          (from_cache ? cached : fresh).fetch_add(1);
        });
    for (int i = 0; i < n; ++i) first_json[i] = job_json(s1.jobs[i]);
    EXPECT_EQ(fresh.load(), n);
    EXPECT_EQ(cached.load(), 0);

    const ExperimentSummary s2 =
        svc.run(spec, [&](const JobSummary& j, bool from_cache) {
          EXPECT_TRUE(from_cache) << "job " << j.index;
        });
    for (int i = 0; i < n; ++i) second_json[i] = job_json(s2.jobs[i]);
    // Trends are re-mined from identical job digests: identical too.
    EXPECT_TRUE(scrub_wall(s1) == scrub_wall(s2));
    ASSERT_EQ(s1.trends.size(), s2.trends.size());

    stats = svc.stats();
  }
  const long solves_twice =
      solver::lp_counters().solves - before_twice.solves;

  // The replay is byte-for-byte what the first round emitted — including
  // the cached wall_seconds, which the cache preserves by design.
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(first_json[i], second_json[i]) << "job " << i;
  EXPECT_EQ(stats.cache_hits, n);
  EXPECT_EQ(stats.cache_misses, n);
  EXPECT_EQ(stats.cache_entries, static_cast<std::size_t>(n));
  EXPECT_EQ(stats.jobs_completed, 2 * n);
  EXPECT_EQ(stats.duplicate_deliveries, 0);
  // Each (case, scenario) instance was constructed once, not once per job
  // or per submission.
  EXPECT_EQ(stats.case_builds, n);
  // The acceptance criterion: the cached round added NOTHING to the LP
  // tally — running the grid twice cost exactly one grid of solves.
  EXPECT_EQ(solves_twice, solves_once);
}

TEST(Service, MatchesEngineBitwiseForAnyPoolSize) {
  ExperimentSpec spec = small_grid();
  spec.workers = 1;
  const ExperimentSummary reference = scrub_wall(Engine().run(spec).summary());
  ASSERT_GE(reference.jobs.size(), 6u);
  for (const JobSummary& j : reference.jobs)
    ASSERT_TRUE(j.ok) << j.case_name << "@" << j.scenario << ": " << j.error;

  for (const int pool : {1, 2, 4}) {
    ServiceOptions o;
    o.workers = pool;
    Service svc(o);
    EXPECT_EQ(svc.pool_size(), pool);
    // The spec's own workers field is the ENGINE's knob; the service pool
    // is fixed at construction and must not change job content either way.
    spec.workers = 7;
    const ExperimentSummary got = scrub_wall(svc.run(spec));
    ASSERT_EQ(got.jobs.size(), reference.jobs.size()) << "pool " << pool;
    for (std::size_t i = 0; i < reference.jobs.size(); ++i) {
      EXPECT_EQ(job_json(got.jobs[i]), job_json(reference.jobs[i]))
          << "pool " << pool << " job " << i;
    }
    EXPECT_TRUE(got == reference) << "pool " << pool;
    EXPECT_EQ(got.trends.size(), reference.trends.size());
    EXPECT_EQ(got.observations, reference.observations);
    EXPECT_EQ(got.lp_solves, reference.lp_solves);
    EXPECT_EQ(got.lp_iterations, reference.lp_iterations);
  }
}

TEST(Service, DrainUnderLoadLosesAndDuplicatesNothing) {
  ServiceOptions o;
  o.workers = 4;
  o.queue_capacity = 4;  // small bound: submit exercises backpressure
  o.batch_size = 2;
  Service svc(o);

  // Three submissions with distinct experiment seeds: distinct content
  // (reseed_jobs salts every job from spec.seed), so the cache cannot
  // collapse the load away.
  const int kSubs = 3;
  std::vector<std::uint64_t> ids;
  // Per-slot delivery tallies.  Writes happen in the callback (serialized
  // under the submission's lock); the reads below happen only after
  // drain() returns, which orders after every delivery via the service
  // mutex — plain ints are TSan-clean here.
  std::vector<std::vector<int>> delivered(kSubs);
  int jobs_per_sub = 0;
  for (int s = 0; s < kSubs; ++s) {
    ExperimentSpec spec = small_grid();
    spec.seed = 1000 + s;
    jobs_per_sub = static_cast<int>(Engine().expand(spec).size());
    auto& counts = delivered[s];
    counts.assign(jobs_per_sub, 0);
    const std::uint64_t id =
        svc.submit(spec, [&counts](const JobSummary& j, bool) {
          ++counts[j.index];
        });
    ASSERT_NE(id, Service::kRejected);
    ids.push_back(id);
  }

  // Drain while the grids are in flight: it must block until every
  // accepted job is delivered, then reject new intake.
  svc.drain();
  ExperimentSpec late = small_grid();
  EXPECT_EQ(svc.submit(late), Service::kRejected);

  for (int s = 0; s < kSubs; ++s)
    for (int i = 0; i < jobs_per_sub; ++i)
      EXPECT_EQ(delivered[s][i], 1)
          << "submission " << s << " slot " << i;

  // wait() after drain still serves the finished submissions, complete
  // and in grid order.
  for (int s = 0; s < kSubs; ++s) {
    const ExperimentSummary sum = svc.wait(ids[s]);
    ASSERT_EQ(sum.jobs.size(), static_cast<std::size_t>(jobs_per_sub));
    for (int i = 0; i < jobs_per_sub; ++i) {
      EXPECT_EQ(sum.jobs[i].index, i);
      EXPECT_TRUE(sum.jobs[i].ok) << sum.jobs[i].error;
    }
  }

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.jobs_submitted, kSubs * jobs_per_sub);
  EXPECT_EQ(stats.jobs_completed, kSubs * jobs_per_sub);
  EXPECT_EQ(stats.jobs_failed, 0);
  EXPECT_EQ(stats.duplicate_deliveries, 0);
}

TEST(Service, UnknownCaseFailsLoudlyAndIsNeverCached) {
  ExperimentSpec spec;
  spec.cases = {"first_fit", "no_such_case"};
  spec.scenarios = {line(3)};
  spec.options.min_gap = 1.0;
  spec.options.subspace.max_subspaces = 1;
  spec.options.subspace.tree_samples = 60;
  spec.options.subspace.significance.pairs = 30;
  spec.options.explain.samples = 40;

  ServiceOptions o;
  o.workers = 2;
  Service svc(o);
  const ExperimentSummary s1 = svc.run(spec);
  ASSERT_EQ(s1.jobs.size(), 2u);
  EXPECT_TRUE(s1.jobs[0].ok);
  EXPECT_FALSE(s1.jobs[1].ok);
  EXPECT_EQ(s1.jobs[1].error, "unknown case");  // Engine's exact wording

  // Resubmit: the ok job hits, the failed one is recomputed (failures are
  // not cached — a transient condition must not be sticky).
  const ExperimentSummary s2 = svc.run(spec);
  EXPECT_FALSE(s2.jobs[1].ok);
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_EQ(stats.cache_misses, 3);
  EXPECT_EQ(stats.cache_entries, 1u);
  EXPECT_EQ(stats.jobs_failed, 2);
}

TEST(Service, ShutdownIsIdempotentAndTerminal) {
  ServiceOptions o;
  o.workers = 2;
  Service svc(o);
  EXPECT_TRUE(svc.wait(42).jobs.empty()) << "unknown handle: empty summary";
  svc.shutdown();
  svc.shutdown();  // second call is a no-op
  ExperimentSpec spec = small_grid();
  EXPECT_EQ(svc.submit(spec), Service::kRejected);
  EXPECT_TRUE(svc.run(spec).jobs.empty());
  // The destructor's shutdown() is then also a no-op.
}
