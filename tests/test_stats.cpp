// Tests for the statistics substrate: descriptive stats, Wilcoxon
// signed-rank (exact + approximate), DKW sample sizes, Spearman.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.h"
#include "stats/dkw.h"
#include "stats/spearman.h"
#include "stats/wilcoxon.h"
#include "util/random.h"

using namespace xplain::stats;

TEST(Descriptive, Basics) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(variance(xs), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
}

TEST(Descriptive, Ecdf) {
  std::vector<double> xs = {1, 2, 2, 3};
  EXPECT_DOUBLE_EQ(ecdf(xs, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf(xs, 2.0), 0.75);
  EXPECT_DOUBLE_EQ(ecdf(xs, 9.0), 1.0);
}

TEST(Descriptive, RanksWithTies) {
  std::vector<double> xs = {10, 20, 20, 30};
  auto r = ranks_with_ties(xs);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Descriptive, NormalCdf) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.959963985), 0.025, 1e-6);
}

// ---------------------------------------------------------------------------
// Wilcoxon signed-rank.
// ---------------------------------------------------------------------------

TEST(Wilcoxon, ExactSmallSample) {
  // n=5, all differences positive: W+ = 15, p = 1/32.
  auto r = wilcoxon_signed_rank_diffs({1, 2, 3, 4, 5});
  EXPECT_TRUE(r.exact);
  EXPECT_DOUBLE_EQ(r.w_plus, 15.0);
  EXPECT_NEAR(r.p_value, 1.0 / 32.0, 1e-12);
}

TEST(Wilcoxon, ExactMixedSigns) {
  // Differences 1, -2, 3: |d| ranks 1,2,3; W+ = 1 + 3 = 4.
  // P(W+ >= 4) under H0: sums {0..6}, counts: 0:1,1:1,2:1,3:2,4:1,5:1,6:1
  // -> P = (1+1+1)/8 = 3/8.
  auto r = wilcoxon_signed_rank_diffs({1, -2, 3});
  EXPECT_TRUE(r.exact);
  EXPECT_DOUBLE_EQ(r.w_plus, 4.0);
  EXPECT_NEAR(r.p_value, 3.0 / 8.0, 1e-12);
}

TEST(Wilcoxon, ZerosAreDropped) {
  auto r = wilcoxon_signed_rank_diffs({0, 0, 1, 2});
  EXPECT_EQ(r.n_effective, 2);
}

TEST(Wilcoxon, PairedInterface) {
  std::vector<double> a = {5, 6, 7};
  std::vector<double> b = {1, 1, 1};
  auto r = wilcoxon_signed_rank(a, b);
  EXPECT_NEAR(r.p_value, 1.0 / 8.0, 1e-12);  // all positive, n=3
}

TEST(Wilcoxon, ApproximationOnLargeSample) {
  // 100 strictly positive differences: p must be astronomically small —
  // this is how the paper gets DP's 2e-60-scale p-values.
  std::vector<double> d(100);
  for (int i = 0; i < 100; ++i) d[i] = 1.0 + i * 0.001;
  auto r = wilcoxon_signed_rank_diffs(d);
  EXPECT_FALSE(r.exact);
  EXPECT_LT(r.p_value, 1e-15);
}

TEST(Wilcoxon, NullIsUniformish) {
  // Symmetric-around-zero differences: p should not be small.
  xplain::util::Rng rng(3);
  std::vector<double> d(60);
  for (auto& v : d) v = rng.normal(0.0, 1.0);
  auto r = wilcoxon_signed_rank_diffs(d);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(Wilcoxon, DetectsShiftedDistribution) {
  xplain::util::Rng rng(4);
  std::vector<double> a(80), b(80);
  for (int i = 0; i < 80; ++i) {
    b[i] = rng.normal(0.0, 1.0);
    a[i] = b[i] + 0.8 + 0.2 * rng.normal();
  }
  auto r = wilcoxon_signed_rank(a, b);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(Wilcoxon, TiesUseCorrectedVariance) {
  // Heavily tied magnitudes still produce a sane p-value in (0, 1).
  std::vector<double> d;
  for (int i = 0; i < 40; ++i) d.push_back(i % 2 ? 1.0 : -1.0);
  auto r = wilcoxon_signed_rank_diffs(d);
  EXPECT_GT(r.p_value, 0.3);
  EXPECT_LT(r.p_value, 0.7);
}

// ---------------------------------------------------------------------------
// DKW.
// ---------------------------------------------------------------------------

TEST(Dkw, KnownValue) {
  // eps=0.05, delta=0.05: n >= ln(40)/(2*0.0025) = 737.8 -> 738.
  EXPECT_EQ(dkw_sample_count(0.05, 0.05), 738u);
}

TEST(Dkw, RoundTrip) {
  for (double eps : {0.01, 0.05, 0.1}) {
    const auto n = dkw_sample_count(eps, 0.05);
    EXPECT_LE(dkw_epsilon(n, 0.05), eps + 1e-12);
    EXPECT_GT(dkw_epsilon(n - 1, 0.05), eps - 1e-4);
  }
}

TEST(Dkw, MonotoneInEpsAndDelta) {
  EXPECT_GT(dkw_sample_count(0.01, 0.05), dkw_sample_count(0.05, 0.05));
  EXPECT_GT(dkw_sample_count(0.05, 0.01), dkw_sample_count(0.05, 0.10));
}

TEST(Dkw, EmpiricallyValid) {
  // Check the bound holds on uniform samples: deviation <= eps w.h.p.
  xplain::util::Rng rng(9);
  const double eps = 0.08, delta = 0.05;
  const auto n = dkw_sample_count(eps, delta);
  int violations = 0;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> xs(n);
    for (auto& v : xs) v = rng.uniform(0, 1);
    double worst = 0.0;
    for (double t = 0.05; t < 1.0; t += 0.05)
      worst = std::max(worst, std::fabs(ecdf(xs, t) - t));
    if (worst > eps) ++violations;
  }
  EXPECT_LE(violations, 2);  // delta = 5%, 20 trials: ~1 expected
}

// ---------------------------------------------------------------------------
// Spearman.
// ---------------------------------------------------------------------------

TEST(Spearman, PerfectMonotone) {
  std::vector<double> x = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<double> y = {2, 4, 5, 7, 11, 12, 14, 20};
  auto r = spearman(x, y);
  EXPECT_NEAR(r.rho, 1.0, 1e-12);
  EXPECT_LT(r.p_value_positive, 0.01);
}

TEST(Spearman, PerfectDecreasing) {
  std::vector<double> x = {1, 2, 3, 4, 5, 6};
  std::vector<double> y = {9, 7, 6, 4, 2, 0};
  auto r = spearman(x, y);
  EXPECT_NEAR(r.rho, -1.0, 1e-12);
  EXPECT_LT(r.p_value_negative, 0.05);
  EXPECT_GT(r.p_value_positive, 0.9);
}

TEST(Spearman, NoCorrelation) {
  xplain::util::Rng rng(17);
  std::vector<double> x(200), y(200);
  for (int i = 0; i < 200; ++i) {
    x[i] = rng.uniform(0, 1);
    y[i] = rng.uniform(0, 1);
  }
  auto r = spearman(x, y);
  EXPECT_LT(std::fabs(r.rho), 0.2);
  EXPECT_GT(r.p_value_positive, 0.01);
}

TEST(Spearman, NoisyMonotoneDetected) {
  xplain::util::Rng rng(21);
  std::vector<double> x(100), y(100);
  for (int i = 0; i < 100; ++i) {
    x[i] = i;
    y[i] = i + rng.normal(0, 20);
  }
  auto r = spearman(x, y);
  EXPECT_GT(r.rho, 0.5);
  EXPECT_LT(r.p_value_positive, 1e-6);
}

TEST(Spearman, ConstantSeriesGivesNoEvidence) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {7, 7, 7, 7};
  auto r = spearman(x, y);
  EXPECT_DOUBLE_EQ(r.rho, 0.0);
  EXPECT_DOUBLE_EQ(r.p_value_positive, 1.0);
}
