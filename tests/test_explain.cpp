// Tests for the Type-2 explainer: the Fig. 4a / Fig. 4b heatmap sign
// patterns the paper reports, plus rendering round-trips.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "cases/dp_case.h"
#include "cases/ff_case.h"
#include "explain/explainer.h"
#include "explain/heatmap.h"

using namespace xplain;
using namespace xplain::explain;

namespace {

// The adversarial subspace of the Fig. 1a example: pinnable 1~>3 demand
// (just under threshold), saturating 1~>2 / 2~>3 demands.
subspace::Polytope fig1a_hot_region() {
  subspace::Polytope p;
  // The adversarial core: pinnable 1~>3 demand, direct paths (nearly)
  // saturated — only then is the optimal *forced* onto the detour, which is
  // what makes the Fig. 4a red/blue pattern unambiguous (below saturation
  // the optimum is degenerate and either routing is optimal).
  p.box.lo = {30, 95, 95};
  p.box.hi = {50, 100, 100};
  return p;
}

}  // namespace

TEST(Explainer, Fig4aSignPattern) {
  auto inst = te::TeInstance::fig1a_example();
  te::DpConfig cfg{50.0};
  auto dp = te::build_dp_network(inst);
  cases::DpGapEvaluator eval(inst, cfg);
  auto oracle = cases::make_dp_oracle(dp, inst, cfg);

  ExplainOptions opts;
  opts.samples = 400;  // plenty for a sign check
  // Count only meaningful flows: the optimal routes a few units of leftover
  // 1~>3 demand on the direct path when the big demands do not saturate it
  // (an LP-degenerate choice); the Fig. 4a signal is about where the *bulk*
  // of the demand goes.
  opts.flow_eps = 20.0;
  auto ex = explain_subspace(eval, fig1a_hot_region(), dp.net, oracle, opts);
  ASSERT_GT(ex.samples_used, 200);

  // Paper Fig. 4a: DP insists on the shortest path 1-2-3 for the pinnable
  // demand (red), the optimal reroutes it onto 1-4-5-3 (blue).
  const double heat_shortest = ex.edges[dp.path_edges[0][0].v].heat;
  const double heat_detour = ex.edges[dp.path_edges[0][1].v].heat;
  EXPECT_LT(heat_shortest, -0.5) << "heuristic-only => strongly red";
  EXPECT_GT(heat_detour, 0.5) << "benchmark-only => strongly blue";

  // The unmet edges are red-ish too: only the heuristic leaves demand unmet.
  double unmet_heat = 0;
  for (auto e : dp.unmet_edges) unmet_heat += ex.edges[e.v].heat;
  EXPECT_LT(unmet_heat, 0.0);
}

TEST(Explainer, Fig4bCascadePattern) {
  vbp::VbpInstance inst;
  inst.num_balls = 4;
  inst.num_bins = 3;
  inst.dims = 1;
  inst.capacity = 1.0;
  auto ffn = vbp::build_ff_network(inst);
  cases::VbpGapEvaluator eval(inst);
  auto oracle = cases::make_ff_oracle(ffn, inst);

  // Around the paper's 1%,49%,51%,51% adversarial instance.
  subspace::Polytope region;
  region.box.lo = {0.01, 0.40, 0.51, 0.51};
  region.box.hi = {0.08, 0.49, 0.60, 0.60};

  ExplainOptions opts;
  opts.samples = 400;
  auto ex = explain_subspace(eval, region, ffn.net, oracle, opts);
  ASSERT_GT(ex.samples_used, 200);

  // FF places ball 1 (0.4-0.49) into bin 0 next to ball 0 — the greedy
  // choice that cascades (Fig. 4b "FF places a large ball in the first bin,
  // causing it to have to place the last ball differently").  OPT avoids
  // it: ball 1 pairs with a 0.51 ball instead.
  const double heat_b1_bin0 = ex.edges[ffn.ball_bin_edges[1][0].v].heat;
  EXPECT_LT(heat_b1_bin0, -0.5);
  // The last ball lands in the overflow bin 2 only under FF.
  const double heat_b3_bin2 = ex.edges[ffn.ball_bin_edges[3][2].v].heat;
  EXPECT_LT(heat_b3_bin2, -0.5);
}

TEST(Explainer, InfeasiblePointsAreSkipped) {
  auto inst = te::TeInstance::fig1a_example();
  te::DpConfig cfg{50.0};
  auto dp = te::build_dp_network(inst);
  cases::DpGapEvaluator eval(inst, cfg);
  int calls = 0;
  FlowOracle flaky = [&](const std::vector<double>& x,
                         std::vector<double>& h, std::vector<double>& b) {
    ++calls;
    if (calls % 2 == 0) return false;  // every other point "infeasible"
    h.assign(dp.net.num_edges(), 0.0);
    b.assign(dp.net.num_edges(), 0.0);
    (void)x;
    return true;
  };
  ExplainOptions opts;
  opts.samples = 50;
  auto ex = explain_subspace(eval, fig1a_hot_region(), dp.net, flaky, opts);
  EXPECT_EQ(ex.samples_used, 50);  // skipping, not failing
  EXPECT_GT(calls, 50);
}

TEST(Heatmap, TextCsvAndDotRender) {
  auto inst = te::TeInstance::fig1a_example();
  te::DpConfig cfg{50.0};
  auto dp = te::build_dp_network(inst);
  cases::DpGapEvaluator eval(inst, cfg);
  auto oracle = cases::make_dp_oracle(dp, inst, cfg);
  ExplainOptions opts;
  opts.samples = 100;
  auto ex = explain_subspace(eval, fig1a_hot_region(), dp.net, oracle, opts);

  std::ostringstream os;
  print_heatmap(os, dp.net, ex);
  EXPECT_NE(os.str().find("Type-2 explanation"), std::string::npos);
  EXPECT_NE(os.str().find("heat"), std::string::npos);

  const std::string dot = heatmap_dot(dp.net, ex);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("color="), std::string::npos);

  const std::string path = "/tmp/xplain_test_heatmap.csv";
  write_heatmap_csv(path, dp.net, ex);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "edge,heat,benchmark_only,heuristic_only,both,neither");
}
