// Tests for the XPlain DSL: node behaviors (App. A semantics), the builder,
// the compiler, redundancy elimination, and the Theorem A.1 encoder.
#include <gtest/gtest.h>

#include <cmath>

#include "flowgraph/builder.h"
#include "flowgraph/compiler.h"
#include "flowgraph/dot.h"
#include "flowgraph/encode_lp.h"
#include "flowgraph/network.h"
#include "flowgraph/optimize.h"
#include "util/random.h"

using namespace xplain::flowgraph;
namespace xs = xplain::solver;

namespace {

// Solves a compiled network and returns (status, objective, edge flows).
struct Solved {
  xs::Status status;
  double obj;
  std::vector<double> flows;
  std::vector<double> x;
};

Solved solve_net(const FlowNetwork& net) {
  auto c = compile(net);
  auto r = c.model.solve();
  Solved s;
  s.status = r.status;
  s.obj = r.obj;
  if (r.status == xs::Status::kOptimal) {
    s.flows = c.flows(r.x);
    s.x = r.x;
  }
  return s;
}

}  // namespace

TEST(Network, ValidationCatchesBadMultiply) {
  FlowNetwork net;
  auto a = net.add_node("a", NodeKind::kSource);
  auto m = net.add_node("m", NodeKind::kMultiply);
  auto s = net.add_node("s", NodeKind::kSink);
  net.add_edge(a, m);
  net.add_edge(a, m);  // second incoming: invalid
  net.add_edge(m, s);
  auto errs = net.validate();
  ASSERT_FALSE(errs.empty());
  EXPECT_NE(errs[0].find("multiply"), std::string::npos);
}

TEST(Network, ValidationCatchesSinkWithOutgoing) {
  FlowNetwork net;
  auto s = net.add_node("s", NodeKind::kSink);
  auto t = net.add_node("t", NodeKind::kSink);
  net.add_edge(s, t);
  EXPECT_FALSE(net.validate().empty());
}

TEST(Compiler, SplitConservesAndRespectsCapacity) {
  // source(10) -> split -> two edges (cap 3 and 100) -> sink; max inflow.
  FlowNetwork net;
  auto src = net.add_node("src", NodeKind::kSource);
  net.set_injection_range(src, 0, 10);
  auto sp = net.add_node("sp", NodeKind::kSplit);
  auto snk = net.add_node("snk", NodeKind::kSink);
  net.add_edge(src, sp);
  auto e1 = net.add_edge(sp, snk, "narrow");
  net.set_capacity(e1, 3);
  auto e2 = net.add_edge(sp, snk, "wide");
  net.set_capacity(e2, 100);
  net.set_objective(snk, true);
  auto s = solve_net(net);
  ASSERT_EQ(s.status, xs::Status::kOptimal);
  EXPECT_NEAR(s.obj, 10.0, 1e-7);
  EXPECT_LE(s.flows[e1.v], 3.0 + 1e-7);
}

TEST(Compiler, PickAllowsOnlyOneOutgoingEdge) {
  FlowNetwork net;
  auto src = net.add_node("src", NodeKind::kSource);
  net.set_source_behavior(src, NodeKind::kPick);
  net.set_injection_range(src, 0, 10);
  auto snk = net.add_node("snk", NodeKind::kSink);
  auto e1 = net.add_edge(src, snk, "a");
  net.set_capacity(e1, 4);
  auto e2 = net.add_edge(src, snk, "b");
  net.set_capacity(e2, 6);
  net.set_objective(snk, true);
  auto s = solve_net(net);
  ASSERT_EQ(s.status, xs::Status::kOptimal);
  // Best single edge carries 6; the other must be exactly zero.
  EXPECT_NEAR(s.obj, 6.0, 1e-6);
  EXPECT_NEAR(s.flows[e1.v], 0.0, 1e-6);
  EXPECT_NEAR(s.flows[e2.v], 6.0, 1e-6);
}

TEST(Compiler, MultiplyScalesFlow) {
  FlowNetwork net;
  auto src = net.add_node("src", NodeKind::kSource);
  net.set_injection_range(src, 0, 5);
  auto mul = net.add_node("x3", NodeKind::kMultiply);
  net.set_multiplier(mul, 3.0);
  auto snk = net.add_node("snk", NodeKind::kSink);
  net.add_edge(src, mul);
  net.add_edge(mul, snk);
  net.set_objective(snk, true);
  auto s = solve_net(net);
  ASSERT_EQ(s.status, xs::Status::kOptimal);
  EXPECT_NEAR(s.obj, 15.0, 1e-7);
}

TEST(Compiler, AllEqualForcesEquality) {
  // Two sources feed an all-equal node; flows must match the smaller range.
  FlowNetwork net;
  auto a = net.add_node("a", NodeKind::kSource);
  net.set_injection_range(a, 0, 10);
  auto b = net.add_node("b", NodeKind::kSource);
  net.set_injection_range(b, 0, 4);
  auto eq = net.add_node("eq", NodeKind::kAllEqual);
  auto snk = net.add_node("snk", NodeKind::kSink);
  net.add_edge(a, eq);
  net.add_edge(b, eq);
  auto out = net.add_edge(eq, snk);
  net.set_objective(snk, true);
  auto s = solve_net(net);
  ASSERT_EQ(s.status, xs::Status::kOptimal);
  EXPECT_NEAR(s.obj, 4.0, 1e-7);  // out edge equals both inputs
  EXPECT_NEAR(s.flows[out.v], 4.0, 1e-7);
}

TEST(Compiler, CopyDuplicatesInflow) {
  FlowNetwork net;
  auto src = net.add_node("src", NodeKind::kSource);
  net.set_injection_range(src, 0, 7);
  auto cp = net.add_node("cp", NodeKind::kCopy);
  auto s1 = net.add_node("s1", NodeKind::kSink);
  auto s2 = net.add_node("s2", NodeKind::kSink);
  net.add_edge(src, cp);
  auto o1 = net.add_edge(cp, s1);
  auto o2 = net.add_edge(cp, s2);
  net.set_objective(s1, true);
  auto s = solve_net(net);
  ASSERT_EQ(s.status, xs::Status::kOptimal);
  EXPECT_NEAR(s.flows[o1.v], 7.0, 1e-7);
  EXPECT_NEAR(s.flows[o2.v], 7.0, 1e-7);  // copy, not split
}

TEST(Compiler, CopyEqualsSplitPlusAllEq) {
  // Fig. 7: COPY == SPLIT -> ALL_EQUAL composition. Build both, compare.
  auto build = [](bool use_copy) {
    FlowNetwork net;
    auto a = net.add_node("a", NodeKind::kSource);
    net.set_injection_range(a, 0, 3);
    auto b = net.add_node("b", NodeKind::kSource);
    net.set_injection_range(b, 0, 2);
    auto snk = net.add_node("snk", NodeKind::kSink);
    auto other = net.add_node("other", NodeKind::kSink);
    if (use_copy) {
      auto cp = net.add_node("cp", NodeKind::kCopy);
      net.add_edge(a, cp);
      net.add_edge(b, cp);
      net.add_edge(cp, snk);
      net.add_edge(cp, other);
    } else {
      // Fig. 7: the split's single outgoing edge (carrying the full inflow)
      // enters an all-equal node whose outgoing edges are the copies.
      auto sp = net.add_node("sp", NodeKind::kSplit);
      auto eq = net.add_node("eq", NodeKind::kAllEqual);
      net.add_edge(a, sp);
      net.add_edge(b, sp);
      net.add_edge(sp, eq);
      net.add_edge(eq, snk);
      net.add_edge(eq, other);
    }
    net.set_objective(snk, true);
    return solve_net(net);
  };
  auto with_copy = build(true);
  auto with_split = build(false);
  ASSERT_EQ(with_copy.status, xs::Status::kOptimal);
  ASSERT_EQ(with_split.status, xs::Status::kOptimal);
  EXPECT_NEAR(with_copy.obj, with_split.obj, 1e-6);  // both: 5
  EXPECT_NEAR(with_copy.obj, 5.0, 1e-6);
}

TEST(Compiler, FixedEdgesAreRespected) {
  FlowNetwork net;
  auto src = net.add_node("src", NodeKind::kSource);
  net.set_injection_range(src, 0, 100);
  auto snk = net.add_node("snk", NodeKind::kSink);
  auto e = net.add_edge(src, snk);
  net.set_fixed(e, 42.0);
  net.set_objective(snk, true);
  auto s = solve_net(net);
  ASSERT_EQ(s.status, xs::Status::kOptimal);
  EXPECT_NEAR(s.obj, 42.0, 1e-7);
}

TEST(Compiler, MinimizeObjective) {
  FlowNetwork net;
  auto src = net.add_node("src", NodeKind::kSource);
  net.set_injection_range(src, 5, 10);  // at least 5 must flow
  auto snk = net.add_node("snk", NodeKind::kSink);
  net.add_edge(src, snk);
  net.set_objective(snk, false);
  auto s = solve_net(net);
  ASSERT_EQ(s.status, xs::Status::kOptimal);
  EXPECT_NEAR(s.obj, 5.0, 1e-7);
}

TEST(Builder, FluentChain) {
  FlowNetwork net = NetworkBuilder("demo")
                        .source("d").range(0, 9).split()
                        .node("relay", NodeKind::kSplit)
                        .sink("t")
                        .edge("d", "relay").cap(8)
                        .edge("relay", "t")
                        .objective("t", true)
                        .build();
  auto s = solve_net(net);
  ASSERT_EQ(s.status, xs::Status::kOptimal);
  EXPECT_NEAR(s.obj, 8.0, 1e-7);
}

TEST(Builder, ThrowsOnUnknownNode) {
  NetworkBuilder b("bad");
  b.source("a").range(0, 1);
  EXPECT_THROW(b.edge("a", "nope"), std::invalid_argument);
}

TEST(Builder, MetadataRoundTrip) {
  FlowNetwork net = NetworkBuilder("meta")
                        .source("d").range(0, 1).node_meta("kind", "demand")
                        .sink("t")
                        .edge("d", "t").edge_meta("path", "shortest")
                        .objective("t", true)
                        .build();
  EXPECT_EQ(net.node(net.find_node("d")).metadata.at("kind"), "demand");
  EXPECT_EQ(net.edge(net.find_edge("d->t")).metadata.at("path"), "shortest");
}

// ---------------------------------------------------------------------------
// Redundancy elimination.
// ---------------------------------------------------------------------------

TEST(Optimize, ContractsPassThroughChains) {
  // src -> s1 -> s2 -> s3 -> sink: the three pass-through splits contract.
  FlowNetwork net;
  auto src = net.add_node("src", NodeKind::kSource);
  net.set_injection_range(src, 0, 5);
  NodeId prev = src;
  for (int i = 0; i < 3; ++i) {
    auto n = net.add_node("s" + std::to_string(i), NodeKind::kSplit);
    net.add_edge(prev, n);
    prev = n;
  }
  auto snk = net.add_node("snk", NodeKind::kSink);
  auto last = net.add_edge(prev, snk);
  net.set_capacity(last, 4);
  net.set_objective(snk, true);

  auto opt = optimize(net);
  EXPECT_EQ(opt.contracted_nodes, 3);
  EXPECT_EQ(opt.net.num_edges(), 1);
  // Same optimum before and after.
  EXPECT_NEAR(solve_net(net).obj, solve_net(opt.net).obj, 1e-7);
  EXPECT_NEAR(solve_net(opt.net).obj, 4.0, 1e-7);
  // Every original edge maps to the surviving one.
  for (int e = 0; e < net.num_edges(); ++e) EXPECT_EQ(opt.edge_map[e], 0);
}

TEST(Optimize, RemovesDeadEdges) {
  FlowNetwork net;
  auto src = net.add_node("src", NodeKind::kSource);
  net.set_injection_range(src, 0, 5);
  auto snk = net.add_node("snk", NodeKind::kSink);
  net.add_edge(src, snk, "live");
  auto dead = net.add_edge(src, snk, "dead");
  net.set_capacity(dead, 0.0);
  net.set_objective(snk, true);
  auto opt = optimize(net);
  EXPECT_EQ(opt.removed_edges, 1);
  EXPECT_EQ(opt.edge_map[dead.v], -1);
  EXPECT_NEAR(solve_net(opt.net).obj, 5.0, 1e-7);
}

TEST(Optimize, DanglingConservingNodeForcesZero) {
  // src -> split -> (sink, dead-end split): the dead-end branch is pruned.
  FlowNetwork net;
  auto src = net.add_node("src", NodeKind::kSource);
  net.set_injection_range(src, 0, 5);
  auto sp = net.add_node("sp", NodeKind::kSplit);
  auto dead = net.add_node("dead", NodeKind::kSplit);
  auto snk = net.add_node("snk", NodeKind::kSink);
  net.add_edge(src, sp);
  net.add_edge(sp, snk);
  net.add_edge(sp, dead);  // nowhere to go from `dead`
  net.set_objective(snk, true);
  auto opt = optimize(net);
  EXPECT_NEAR(solve_net(net).obj, solve_net(opt.net).obj, 1e-7);
  EXPECT_GE(opt.removed_edges, 1);
}

TEST(Optimize, PreservesObjectiveOnRandomNetworks) {
  // Property: optimization never changes the optimum on random layered
  // split networks.
  for (int seed = 0; seed < 12; ++seed) {
    xplain::util::Rng rng(900 + seed);
    FlowNetwork net;
    auto src = net.add_node("src", NodeKind::kSource);
    net.set_injection_range(src, 0, rng.uniform(5, 20));
    const int layers = rng.uniform_int(1, 3);
    std::vector<NodeId> prev = {src};
    for (int l = 0; l < layers; ++l) {
      const int width = rng.uniform_int(1, 3);
      std::vector<NodeId> cur;
      for (int wdt = 0; wdt < width; ++wdt)
        cur.push_back(net.add_node("n" + std::to_string(l) + "_" +
                                       std::to_string(wdt),
                                   NodeKind::kSplit));
      for (NodeId a : prev) {
        bool connected = false;
        for (NodeId b : cur) {
          if (rng.bernoulli(0.8)) {
            auto e = net.add_edge(a, b);
            if (rng.bernoulli(0.5)) net.set_capacity(e, rng.uniform(1, 15));
            connected = true;
          }
        }
        if (!connected) net.add_edge(a, cur[0]);  // keep the source legal
      }
      prev = cur;
    }
    auto snk = net.add_node("snk", NodeKind::kSink);
    for (NodeId a : prev) net.add_edge(a, snk);
    net.set_objective(snk, true);
    auto base = solve_net(net);
    auto opt = optimize(net);
    auto after = solve_net(opt.net);
    ASSERT_EQ(base.status, after.status) << "seed " << seed;
    if (base.status == xs::Status::kOptimal)
      EXPECT_NEAR(base.obj, after.obj, 1e-6) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Theorem A.1 encoder: encode random LPs/MILPs into the DSL, compile, solve,
// and compare with solving the original directly.
// ---------------------------------------------------------------------------

namespace {

double solve_encoded(const xs::LpProblem& p) {
  auto enc = encode_lp(p);
  auto compiled = compile(enc.net);
  auto r = compiled.model.solve();
  EXPECT_EQ(r.status, xs::Status::kOptimal);
  return enc.recover_objective(r.obj);
}

}  // namespace

TEST(ThmA1, EncodesSimpleLp) {
  // max 3x + 5y, x<=4, 2y<=12, 3x+2y<=18 (optimum 36).
  xs::LpProblem p;
  p.sense = xs::Sense::kMaximize;
  int x = p.add_col(0, 10, 3, false, "x");
  int y = p.add_col(0, 10, 5, false, "y");
  p.add_row({{x, 1}}, xs::RowSense::kLe, 4);
  p.add_row({{y, 2}}, xs::RowSense::kLe, 12);
  p.add_row({{x, 3}, {y, 2}}, xs::RowSense::kLe, 18);
  EXPECT_NEAR(solve_encoded(p), 36.0, 1e-5);
}

TEST(ThmA1, EncodesMinimization) {
  // min 2x + 3y, x + y >= 10 (x,y <= 20): optimum 20 at x=10.
  xs::LpProblem p;
  p.sense = xs::Sense::kMinimize;
  int x = p.add_col(0, 20, 2, false, "x");
  int y = p.add_col(0, 20, 3, false, "y");
  p.add_row({{x, 1}, {y, 1}}, xs::RowSense::kGe, 10);
  EXPECT_NEAR(solve_encoded(p), 20.0, 1e-5);
}

TEST(ThmA1, EncodesNegativeCoefficientsAndShiftedBounds) {
  // max x - y with -3 <= x <= 5, 1 <= y <= 4, x - y <= 2: optimum 2.
  xs::LpProblem p;
  p.sense = xs::Sense::kMaximize;
  int x = p.add_col(-3, 5, 1, false, "x");
  int y = p.add_col(1, 4, -1, false, "y");
  p.add_row({{x, 1}, {y, -1}}, xs::RowSense::kLe, 2);
  EXPECT_NEAR(solve_encoded(p), 2.0, 1e-5);
}

TEST(ThmA1, EncodesEqualityRows) {
  // max x + y, x + y = 3, x <= 2: optimum 3.
  xs::LpProblem p;
  p.sense = xs::Sense::kMaximize;
  int x = p.add_col(0, 2, 1, false, "x");
  int y = p.add_col(0, 10, 1, false, "y");
  p.add_row({{x, 1}, {y, 1}}, xs::RowSense::kEq, 3);
  EXPECT_NEAR(solve_encoded(p), 3.0, 1e-5);
}

TEST(ThmA1, EncodesBinaries) {
  // Knapsack: max 10a + 13b + 7c, 3a + 4b + 2c <= 6 (optimum 20).
  xs::LpProblem p;
  p.sense = xs::Sense::kMaximize;
  int a = p.add_col(0, 1, 10, true, "a");
  int b = p.add_col(0, 1, 13, true, "b");
  int c = p.add_col(0, 1, 7, true, "c");
  p.add_row({{a, 3}, {b, 4}, {c, 2}}, xs::RowSense::kLe, 6);
  EXPECT_NEAR(solve_encoded(p), 20.0, 1e-5);
}

TEST(ThmA1, RejectsInfiniteBounds) {
  xs::LpProblem p;
  p.add_col(0, xs::kInf, 1, false, "x");
  EXPECT_THROW(encode_lp(p), std::invalid_argument);
  xs::LpProblem q;
  q.add_col(-xs::kInf, 3, 1, false, "x");
  EXPECT_THROW(encode_lp(q), std::invalid_argument);
}

class ThmA1Random : public ::testing::TestWithParam<int> {};

TEST_P(ThmA1Random, MatchesDirectSolve) {
  xplain::util::Rng rng(4200 + GetParam());
  const int n = rng.uniform_int(2, 4);
  const int nb = rng.uniform_int(0, 2);
  xs::LpProblem p;
  p.sense = rng.bernoulli(0.5) ? xs::Sense::kMaximize : xs::Sense::kMinimize;
  for (int j = 0; j < n; ++j)
    p.add_col(0, rng.uniform(1, 6), rng.uniform(-3, 5), false);
  for (int j = 0; j < nb; ++j) p.add_col(0, 1, rng.uniform(-4, 6), true);
  const int m = rng.uniform_int(1, 3);
  for (int i = 0; i < m; ++i) {
    std::vector<std::pair<int, double>> coef;
    for (int j = 0; j < n + nb; ++j) {
      if (rng.bernoulli(0.7)) coef.emplace_back(j, rng.uniform(-2, 3));
    }
    if (coef.empty()) coef.emplace_back(0, 1.0);
    // Keep feasible: rhs no smaller than value at origin (= 0) for <=.
    p.add_row(std::move(coef), xs::RowSense::kLe, rng.uniform(0.5, 10));
  }
  auto direct = xs::solve_milp(p);
  ASSERT_EQ(direct.status, xs::Status::kOptimal);
  EXPECT_NEAR(solve_encoded(p), direct.obj,
              1e-4 * (1 + std::abs(direct.obj)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ThmA1Random, ::testing::Range(0, 20));

TEST(Dot, RendersHeatAndStructure) {
  FlowNetwork net = NetworkBuilder("dotdemo")
                        .source("d").range(0, 1)
                        .sink("t")
                        .edge("d", "t").cap(5)
                        .objective("t", true)
                        .build();
  std::vector<double> heat{-0.8};
  DotOptions opts;
  opts.edge_heat = &heat;
  const std::string dot = to_dot(net, opts);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("cap 5"), std::string::npos);
  EXPECT_NE(dot.find("color="), std::string::npos);
  EXPECT_NE(dot.find("invtriangle"), std::string::npos);  // source shape
}
