// Unit and property tests for the LP (two-phase simplex) and MILP
// (branch-and-bound) solvers in src/solver.
#include <gtest/gtest.h>

#include <cmath>

#include "solver/milp.h"
#include "solver/simplex.h"
#include "util/random.h"

namespace xs = xplain::solver;
using xs::kInf;
using xs::LpProblem;
using xs::RowSense;
using xs::Sense;
using xs::Status;

namespace {

LpProblem textbook_max() {
  // max 3x + 5y  s.t.  x <= 4;  2y <= 12;  3x + 2y <= 18;  x,y >= 0.
  // Optimum (2, 6) with objective 36 (Dantzig's classic).
  LpProblem p;
  p.sense = Sense::kMaximize;
  int x = p.add_col(0, kInf, 3, false, "x");
  int y = p.add_col(0, kInf, 5, false, "y");
  p.add_row({{x, 1}}, RowSense::kLe, 4);
  p.add_row({{y, 2}}, RowSense::kLe, 12);
  p.add_row({{x, 3}, {y, 2}}, RowSense::kLe, 18);
  return p;
}

}  // namespace

TEST(Simplex, TextbookMaximization) {
  auto p = textbook_max();
  auto s = xs::solve_lp(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.obj, 36.0, 1e-8);
  EXPECT_NEAR(s.x[0], 2.0, 1e-8);
  EXPECT_NEAR(s.x[1], 6.0, 1e-8);
}

TEST(Simplex, TextbookDuals) {
  auto p = textbook_max();
  auto s = xs::solve_lp(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  // Known duals: y = (0, 3/2, 1); strong duality: y'b = 36.
  EXPECT_NEAR(s.y[0], 0.0, 1e-8);
  EXPECT_NEAR(s.y[1], 1.5, 1e-8);
  EXPECT_NEAR(s.y[2], 1.0, 1e-8);
  EXPECT_NEAR(s.y[0] * 4 + s.y[1] * 12 + s.y[2] * 18, 36.0, 1e-8);
}

TEST(Simplex, Minimization) {
  // min 2x + 3y s.t. x + y >= 10, x - y <= 4, x,y >= 0. Optimum x=7,y=3? No:
  // cost pushes y down, x up: try x=10,y=0 violates x-y<=4; x=7,y=3 -> 23.
  LpProblem p;
  int x = p.add_col(0, kInf, 2, false, "x");
  int y = p.add_col(0, kInf, 3, false, "y");
  p.add_row({{x, 1}, {y, 1}}, RowSense::kGe, 10);
  p.add_row({{x, 1}, {y, -1}}, RowSense::kLe, 4);
  auto s = xs::solve_lp(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.obj, 23.0, 1e-8);
  EXPECT_NEAR(s.x[0], 7.0, 1e-8);
  EXPECT_NEAR(s.x[1], 3.0, 1e-8);
}

TEST(Simplex, EqualityRows) {
  // min x + 2y + 3z  s.t. x + y + z = 6, y + z = 4. Optimum x=2,y=4,z=0 -> 10.
  LpProblem p;
  int x = p.add_col(0, kInf, 1, false, "x");
  int y = p.add_col(0, kInf, 2, false, "y");
  int z = p.add_col(0, kInf, 3, false, "z");
  p.add_row({{x, 1}, {y, 1}, {z, 1}}, RowSense::kEq, 6);
  p.add_row({{y, 1}, {z, 1}}, RowSense::kEq, 4);
  auto s = xs::solve_lp(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.obj, 10.0, 1e-8);
}

TEST(Simplex, UpperBounds) {
  // max x + y with x <= 2.5, y <= 1.5 via column bounds.
  LpProblem p;
  p.sense = Sense::kMaximize;
  p.add_col(0, 2.5, 1, false, "x");
  p.add_col(0, 1.5, 1, false, "y");
  p.add_row({{0, 1}, {1, 1}}, RowSense::kLe, 100);
  auto s = xs::solve_lp(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.obj, 4.0, 1e-8);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x subject to x >= -5 (bound) and x + y = 0, y <= 3.
  LpProblem p;
  int x = p.add_col(-5, kInf, 1, false, "x");
  int y = p.add_col(-kInf, 3, 0, false, "y");
  p.add_row({{x, 1}, {y, 1}}, RowSense::kEq, 0);
  auto s = xs::solve_lp(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[0], -3.0, 1e-8);  // limited by y <= 3
  EXPECT_NEAR(s.obj, -3.0, 1e-8);
}

TEST(Simplex, FreeVariables) {
  // min |style| free var: min x + y, x free, y >= 0, x + y >= 2, x >= -7.
  LpProblem p;
  int x = p.add_col(-kInf, kInf, 1, false, "x");
  int y = p.add_col(0, kInf, 1, false, "y");
  p.add_row({{x, 1}, {y, 1}}, RowSense::kGe, 2);
  auto s = xs::solve_lp(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.obj, 2.0, 1e-8);
}

TEST(Simplex, DetectsInfeasible) {
  LpProblem p;
  int x = p.add_col(0, kInf, 1, false, "x");
  p.add_row({{x, 1}}, RowSense::kGe, 5);
  p.add_row({{x, 1}}, RowSense::kLe, 3);
  EXPECT_EQ(xs::solve_lp(p).status, Status::kInfeasible);
}

TEST(Simplex, DetectsInfeasibleBounds) {
  LpProblem p;
  p.add_col(5, 3, 1, false, "x");  // empty box
  p.add_row({{0, 1}}, RowSense::kLe, 100);
  EXPECT_EQ(xs::solve_lp(p).status, Status::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LpProblem p;
  p.sense = Sense::kMaximize;
  int x = p.add_col(0, kInf, 1, false, "x");
  p.add_row({{x, -1}}, RowSense::kLe, 0);
  EXPECT_EQ(xs::solve_lp(p).status, Status::kUnbounded);
}

TEST(Simplex, DegenerateProblem) {
  // Classic degeneracy (Beale-like): must not cycle.
  LpProblem p;
  p.sense = Sense::kMinimize;
  int x1 = p.add_col(0, kInf, -0.75, false);
  int x2 = p.add_col(0, kInf, 150, false);
  int x3 = p.add_col(0, kInf, -0.02, false);
  int x4 = p.add_col(0, kInf, 6, false);
  p.add_row({{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, RowSense::kLe, 0);
  p.add_row({{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, RowSense::kLe, 0);
  p.add_row({{x3, 1}}, RowSense::kLe, 1);
  auto s = xs::solve_lp(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.obj, -0.05, 1e-8);
}

TEST(Simplex, ZeroRowsProblem) {
  LpProblem p;
  p.add_col(1.0, 4.0, 1.0, false, "x");
  auto s = xs::solve_lp(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.obj, 1.0, 1e-9);
}

TEST(Simplex, FixedVariables) {
  LpProblem p;
  int x = p.add_col(2, 2, 1, false, "x");
  int y = p.add_col(0, kInf, 1, false, "y");
  p.add_row({{x, 1}, {y, 1}}, RowSense::kGe, 5);
  auto s = xs::solve_lp(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 3.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Property tests: random feasible LPs must satisfy weak/strong duality and
// the returned point must be primal feasible.
// ---------------------------------------------------------------------------

class RandomLpProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpProperty, StrongDualityAndFeasibility) {
  xplain::util::Rng rng(1234 + GetParam());
  const int n = rng.uniform_int(2, 8);
  const int m = rng.uniform_int(1, 6);
  LpProblem p;
  p.sense = Sense::kMaximize;
  for (int j = 0; j < n; ++j)
    p.add_col(0, kInf, rng.uniform(-2.0, 5.0), false);
  // Rows a'x <= b with a >= 0 and b > 0 keep the region nonempty (0 feasible)
  // and bounded in every improving direction with prob ~1 when some a_j > 0.
  for (int i = 0; i < m; ++i) {
    std::vector<std::pair<int, double>> coef;
    for (int j = 0; j < n; ++j) coef.emplace_back(j, rng.uniform(0.1, 3.0));
    p.add_row(std::move(coef), RowSense::kLe, rng.uniform(1.0, 20.0));
  }
  auto s = xs::solve_lp(p);
  bool improving = false;
  for (int j = 0; j < n; ++j) improving |= p.obj(j) > 0;
  if (!improving) {
    ASSERT_EQ(s.status, Status::kOptimal);
    EXPECT_NEAR(s.obj, 0.0, 1e-7);
    return;
  }
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_TRUE(p.feasible(s.x, 1e-6)) << p.to_string();
  // Strong duality for max{c'x : Ax<=b, x>=0}: obj == y'b with y >= 0 and
  // A'y >= c.
  double yb = 0.0;
  for (int i = 0; i < m; ++i) {
    EXPECT_GE(s.y[i], -1e-7);
    yb += s.y[i] * p.row(i).rhs;
  }
  EXPECT_NEAR(yb, s.obj, 1e-6 * (1 + std::abs(s.obj)));
  for (int j = 0; j < n; ++j) {
    double aty = 0.0;
    for (int i = 0; i < m; ++i)
      for (const auto& [col, v] : p.row(i).coef)
        if (col == j) aty += v * s.y[i];
    EXPECT_GE(aty, p.obj(j) - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomLpProperty, ::testing::Range(0, 40));

// ---------------------------------------------------------------------------
// Revised simplex vs. the retained dense-tableau oracle, and warm-start
// equivalence: warm solves must agree with cold solves in status and
// optimum on LPs with tightened bounds (the branch-and-bound situation).
// ---------------------------------------------------------------------------

namespace {

// Random LP exercising every bound shape (finite/infinite/negative lowers,
// finite uppers, free and fixed columns) and every row sense.
LpProblem random_bounded_lp(xplain::util::Rng& rng) {
  LpProblem p;
  p.sense = rng.bernoulli(0.5) ? Sense::kMaximize : Sense::kMinimize;
  const int n = rng.uniform_int(2, 7);
  for (int j = 0; j < n; ++j) {
    const int shape = rng.uniform_int(0, 4);
    double lo = 0.0, hi = kInf;
    if (shape == 0) {            // [0, u]
      hi = rng.uniform(0.5, 8.0);
    } else if (shape == 1) {     // [-l, u]
      lo = -rng.uniform(0.5, 5.0);
      hi = rng.uniform(0.5, 8.0);
    } else if (shape == 2) {     // (-inf, u]
      lo = -kInf;
      hi = rng.uniform(0.0, 6.0);
    } else if (shape == 3) {     // fixed
      lo = hi = rng.uniform(-2.0, 2.0);
    }                            // else [0, inf)
    p.add_col(lo, hi, rng.uniform(-3.0, 3.0));
  }
  const int m = rng.uniform_int(1, 5);
  for (int i = 0; i < m; ++i) {
    std::vector<std::pair<int, double>> coef;
    for (int j = 0; j < n; ++j)
      if (rng.bernoulli(0.7)) coef.emplace_back(j, rng.uniform(-2.0, 3.0));
    if (coef.empty()) coef.emplace_back(rng.uniform_int(0, n - 1), 1.0);
    const int s = rng.uniform_int(0, 5);
    const RowSense sense = s <= 2   ? RowSense::kLe
                           : s <= 4 ? RowSense::kGe
                                    : RowSense::kEq;
    p.add_row(std::move(coef), sense, rng.uniform(-4.0, 12.0));
  }
  return p;
}

void expect_agreement(const LpProblem& p, const xs::LpSolution& a,
                      const xs::LpSolution& b, const char* what) {
  ASSERT_EQ(a.status, b.status) << what << "\n" << p.to_string();
  if (a.status != Status::kOptimal) return;
  EXPECT_NEAR(a.obj, b.obj, 1e-6 * (1.0 + std::abs(b.obj)))
      << what << "\n" << p.to_string();
  EXPECT_TRUE(p.feasible(a.x, 1e-6)) << what << "\n" << p.to_string();
}

}  // namespace

TEST(SimplexOracle, NamedCasesMatchTableau) {
  std::vector<LpProblem> cases;
  cases.push_back(textbook_max());
  {
    LpProblem p;
    int x = p.add_col(0, kInf, 2, false, "x");
    int y = p.add_col(0, kInf, 3, false, "y");
    p.add_row({{x, 1}, {y, 1}}, RowSense::kGe, 10);
    p.add_row({{x, 1}, {y, -1}}, RowSense::kLe, 4);
    cases.push_back(p);
  }
  {
    LpProblem p;
    p.sense = Sense::kMaximize;
    p.add_col(0, 2.5, 1, false, "x");
    p.add_col(0, 1.5, 1, false, "y");
    p.add_row({{0, 1}, {1, 1}}, RowSense::kLe, 100);
    cases.push_back(p);
  }
  {
    LpProblem p;
    int x = p.add_col(-5, kInf, 1, false, "x");
    int y = p.add_col(-kInf, 3, 0, false, "y");
    p.add_row({{x, 1}, {y, 1}}, RowSense::kEq, 0);
    cases.push_back(p);
  }
  for (const auto& p : cases)
    expect_agreement(p, xs::solve_lp(p), xs::solve_lp_tableau(p), "named");
}

class RandomLpOracle : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpOracle, MatchesTableau) {
  xplain::util::Rng rng(4242 + GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    LpProblem p = random_bounded_lp(rng);
    expect_agreement(p, xs::solve_lp(p), xs::solve_lp_tableau(p), "random");
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomLpOracle, ::testing::Range(0, 25));

TEST(SimplexWarmStart, WarmEqualsColdUnderBoundTightenings) {
  xplain::util::Rng rng(20240715);
  int solved = 0;
  for (int trial = 0; trial < 1200 && solved < 250; ++trial) {
    LpProblem p = random_bounded_lp(rng);
    auto cold = xs::solve_lp(p);
    if (cold.status != Status::kOptimal) continue;
    // Tighten 1-3 random column boxes the way branch-and-bound would:
    // around (or away from) the optimal point.
    LpProblem q = p;
    const int cuts = rng.uniform_int(1, 3);
    for (int c = 0; c < cuts; ++c) {
      const int j = rng.uniform_int(0, p.num_cols() - 1);
      const double x = cold.x[j];
      if (rng.bernoulli(0.5)) {
        q.set_bounds(j, q.lo(j), std::min(q.hi(j), x - rng.uniform(0.0, 1.5)));
      } else {
        q.set_bounds(j, std::max(q.lo(j), x + rng.uniform(0.0, 1.5)), q.hi(j));
      }
    }
    auto warm = xs::solve_lp(q, {}, &cold.basis);
    auto fresh = xs::solve_lp(q);
    ASSERT_EQ(warm.status, fresh.status)
        << p.to_string() << "--- tightened ---\n" << q.to_string();
    if (warm.status == Status::kOptimal) {
      EXPECT_NEAR(warm.obj, fresh.obj, 1e-6 * (1.0 + std::abs(fresh.obj)))
          << q.to_string();
      EXPECT_TRUE(q.feasible(warm.x, 1e-6)) << q.to_string();
    }
    ++solved;
  }
  // The generator must actually exercise the warm path.
  EXPECT_GE(solved, 200);
}

// ---------------------------------------------------------------------------
// Refactorization triggers: besides the blind pivot-count trigger
// (refactor_every), the eta-file nonzero bound and the fill-ratio bound
// must both fire and be exposed with sane defaults.
// ---------------------------------------------------------------------------

TEST(SimplexRefactor, KnobDefaultsAreSane) {
  const xs::SimplexOptions opts;
  EXPECT_GT(opts.refactor_every, 0);
  EXPECT_GT(opts.refactor_eta_nnz, 0);
  EXPECT_GT(opts.refactor_fill_ratio, 0.0);
  EXPECT_EQ(opts.fail_refactor_at, 0);  // failure injection off by default
  EXPECT_EQ(opts.fail_update_at, 0);
  // The PR-8 performance posture: partial pricing and Forrest-Tomlin
  // updates on by default, with the dense fallback covering tiny bases and
  // the size gate keeping tiny LPs on the plain Dantzig scan.
  EXPECT_EQ(opts.pricing, xs::PricingRule::kPartial);
  EXPECT_TRUE(opts.ft_updates);
  EXPECT_GT(opts.dense_basis_dim, 0);
  EXPECT_GT(opts.partial_pricing_min_cols, 0);
}

namespace {

// Enough pivots (and eta fill) that the tight triggers below actually fire.
LpProblem refactor_mill() {
  xplain::util::Rng rng(99);
  LpProblem p;
  p.sense = Sense::kMaximize;
  const int n = 10;
  for (int j = 0; j < n; ++j) p.add_col(0, 3.0, rng.uniform(0.5, 2.0));
  for (int i = 0; i < 6; ++i) {
    std::vector<std::pair<int, double>> coef;
    for (int j = 0; j < n; ++j)
      if (rng.bernoulli(0.6)) coef.emplace_back(j, rng.uniform(0.2, 1.5));
    if (coef.empty()) coef.emplace_back(0, 1.0);
    p.add_row(std::move(coef), RowSense::kLe, rng.uniform(2.0, 6.0));
  }
  return p;
}

}  // namespace

TEST(SimplexRefactor, EtaNnzBoundTriggersEarlyRefactorization) {
  const LpProblem p = refactor_mill();
  const auto lazy = xs::solve_lp(p);  // defaults: pivot trigger only
  ASSERT_EQ(lazy.status, Status::kOptimal);
  ASSERT_GE(lazy.iterations, 3);

  xs::SimplexOptions eager;
  eager.refactor_eta_nnz = 1;  // any eta fill at all forces a refactor
  const auto tight = xs::solve_lp(p, eager);
  ASSERT_EQ(tight.status, Status::kOptimal);
  EXPECT_NEAR(tight.obj, lazy.obj, 1e-8 * (1.0 + std::abs(lazy.obj)));
  EXPECT_GT(tight.refactorizations, lazy.refactorizations);
}

TEST(SimplexRefactor, FillRatioBoundTriggersEarlyRefactorization) {
  const LpProblem p = refactor_mill();
  const auto lazy = xs::solve_lp(p);
  ASSERT_EQ(lazy.status, Status::kOptimal);

  xs::SimplexOptions eager;
  eager.refactor_eta_nnz = 0;       // isolate the ratio trigger
  eager.refactor_fill_ratio = 1e-9; // any fill exceeds the ratio
  const auto tight = xs::solve_lp(p, eager);
  ASSERT_EQ(tight.status, Status::kOptimal);
  EXPECT_NEAR(tight.obj, lazy.obj, 1e-8 * (1.0 + std::abs(lazy.obj)));
  EXPECT_GT(tight.refactorizations, lazy.refactorizations);
}

TEST(SimplexRefactor, DisabledBoundsFallBackToPivotTrigger) {
  const LpProblem p = refactor_mill();
  xs::SimplexOptions opts;
  opts.refactor_eta_nnz = 0;
  opts.refactor_fill_ratio = 0.0;
  const auto s = xs::solve_lp(p, opts);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.obj, xs::solve_lp(p).obj, 1e-8);
}

// ---------------------------------------------------------------------------
// MILP tests.
// ---------------------------------------------------------------------------

TEST(Milp, SimpleKnapsack) {
  // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binaries. Optimum: a+c = 17?
  // a,c: w=5 v=17; b+c: w=6 v=20. Optimum 20.
  LpProblem p;
  p.sense = Sense::kMaximize;
  int a = p.add_col(0, 1, 10, true, "a");
  int b = p.add_col(0, 1, 13, true, "b");
  int c = p.add_col(0, 1, 7, true, "c");
  p.add_row({{a, 3}, {b, 4}, {c, 2}}, RowSense::kLe, 6);
  auto r = xs::solve_milp(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.obj, 20.0, 1e-7);
  EXPECT_NEAR(r.x[b], 1.0, 1e-6);
  EXPECT_NEAR(r.x[c], 1.0, 1e-6);
}

TEST(Milp, IntegerRounding) {
  // min x subject to 2x >= 7, x integer -> x = 4.
  LpProblem p;
  int x = p.add_col(0, kInf, 1, true, "x");
  p.add_row({{x, 2}}, RowSense::kGe, 7);
  auto r = xs::solve_milp(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.x[x], 4.0, 1e-7);
}

TEST(Milp, InfeasibleIntegerProblem) {
  // 0.4 <= x <= 0.6, x integer.
  LpProblem p;
  p.add_col(0.4, 0.6, 1, true, "x");
  auto r = xs::solve_milp(p);
  EXPECT_EQ(r.status, Status::kInfeasible);
}

TEST(Milp, MixedIntegerContinuous) {
  // max 2x + y, x integer, x + y <= 3.5, y <= 1.2, x <= 2.9.
  // x=2 (int), y=1.2 -> 5.2.
  LpProblem p;
  p.sense = Sense::kMaximize;
  int x = p.add_col(0, 2.9, 2, true, "x");
  int y = p.add_col(0, 1.2, 1, false, "y");
  p.add_row({{x, 1}, {y, 1}}, RowSense::kLe, 3.5);
  auto r = xs::solve_milp(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.obj, 5.2, 1e-7);
}

TEST(Milp, EqualityWithBinaries) {
  // Choose exactly 2 of 4 binaries minimizing cost.
  LpProblem p;
  std::vector<double> cost = {5, 1, 3, 2};
  std::vector<std::pair<int, double>> sum;
  for (int j = 0; j < 4; ++j)
    sum.emplace_back(p.add_col(0, 1, cost[j], true), 1.0);
  p.add_row(sum, RowSense::kEq, 2);
  auto r = xs::solve_milp(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.obj, 3.0, 1e-7);  // picks costs 1 and 2
}

TEST(Milp, BigMIndicatorPattern) {
  // The big-M pattern used throughout the analyzers: z=1 <=> x <= t.
  // Here force x = 7, t = 5: z must be 0.
  const double M = 100;
  LpProblem p;
  int x = p.add_col(7, 7, 0, false, "x");
  int z = p.add_col(0, 1, -1, true, "z");  // min -z pushes z up
  // x <= t + M(1-z) ; x >= t + eps - M z  with t=5, eps=0.01
  p.add_row({{x, 1}, {z, M}}, RowSense::kLe, 5 + M);
  p.add_row({{x, 1}, {z, M}}, RowSense::kGe, 5.01);
  auto r = xs::solve_milp(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.x[z], 0.0, 1e-7);
}

class RandomMilpProperty : public ::testing::TestWithParam<int> {};

// Cross-validates branch-and-bound against brute-force enumeration of the
// binary columns (continuous part solved by LP for each assignment).
TEST_P(RandomMilpProperty, MatchesBruteForce) {
  xplain::util::Rng rng(777 + GetParam());
  const int nb = rng.uniform_int(2, 6);  // binaries
  const int nc = rng.uniform_int(0, 3);  // continuous
  LpProblem p;
  p.sense = Sense::kMaximize;
  for (int j = 0; j < nb; ++j) p.add_col(0, 1, rng.uniform(-3, 8), true);
  for (int j = 0; j < nc; ++j) p.add_col(0, 4, rng.uniform(-1, 3), false);
  const int m = rng.uniform_int(1, 4);
  for (int i = 0; i < m; ++i) {
    std::vector<std::pair<int, double>> coef;
    for (int j = 0; j < nb + nc; ++j)
      coef.emplace_back(j, rng.uniform(0.0, 2.0));
    p.add_row(std::move(coef), RowSense::kLe, rng.uniform(1.0, 8.0));
  }
  auto r = xs::solve_milp(p);
  ASSERT_EQ(r.status, Status::kOptimal);

  // Brute force over binary assignments.
  double best = -kInf;
  for (int mask = 0; mask < (1 << nb); ++mask) {
    LpProblem q = p;
    for (int j = 0; j < nb; ++j) {
      const double v = (mask >> j) & 1;
      q.set_bounds(j, v, v);
    }
    auto s = xs::solve_lp(q);
    if (s.status == Status::kOptimal) best = std::max(best, s.obj);
  }
  ASSERT_TRUE(std::isfinite(best));
  EXPECT_NEAR(r.obj, best, 1e-6 * (1 + std::abs(best)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomMilpProperty, ::testing::Range(0, 30));

TEST(Milp, RespectsNodeLimit) {
  xplain::util::Rng rng(42);
  LpProblem p;
  p.sense = Sense::kMaximize;
  const int n = 30;
  std::vector<std::pair<int, double>> row;
  for (int j = 0; j < n; ++j) {
    row.emplace_back(p.add_col(0, 1, rng.uniform(1.0, 2.0), true),
                     rng.uniform(1.0, 2.0));
  }
  p.add_row(row, RowSense::kLe, n * 0.61);
  xs::MilpOptions opts;
  opts.max_nodes = 5;
  auto r = xs::solve_milp(p, opts);
  EXPECT_LE(r.nodes, 6);
  // With so few nodes we may or may not have an incumbent; status must be
  // kLimit (found something) or kError (nothing proven yet).
  EXPECT_TRUE(r.status == Status::kLimit || r.status == Status::kError);
}

TEST(Milp, BestBoundIsValid) {
  LpProblem p;
  p.sense = Sense::kMaximize;
  int a = p.add_col(0, 1, 3, true);
  int b = p.add_col(0, 1, 2, true);
  p.add_row({{a, 1}, {b, 1}}, RowSense::kLe, 1);
  auto r = xs::solve_milp(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.obj, 3.0, 1e-7);
  EXPECT_GE(r.best_bound, r.obj - 1e-7);
}
