// Experiment engine: grid expansion semantics, bitwise determinism across
// XPLAIN_WORKERS settings (the acceptance criterion: a >= 6-job grid is
// identical for any worker count), ExperimentResult JSON round-trips, the
// wcmp-over-corpus Type-3 path, and loud failure for jobs that cannot
// build.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "cases/ff_case.h"
#include "engine/engine.h"
#include "scenario/scenario.h"
#include "util/json.h"

using namespace xplain;

namespace {

scenario::ScenarioSpec line(int n) {
  scenario::ScenarioSpec s;
  s.kind = scenario::TopologyKind::kLine;
  s.size = n;
  return s;
}

scenario::ScenarioSpec star(int n) {
  scenario::ScenarioSpec s;
  s.kind = scenario::TopologyKind::kStar;
  s.size = n;
  return s;
}

scenario::ScenarioSpec fat_tree(int k, std::uint64_t seed = 1) {
  scenario::ScenarioSpec s;
  s.kind = scenario::TopologyKind::kFatTree;
  s.size = k;
  s.seed = seed;
  return s;
}

/// A cheap >= 6-job grid: two VBP cases and the DP chain family over three
/// scenario sizes (small instances, analyzer-dominated cost).
ExperimentSpec small_grid() {
  ExperimentSpec spec;
  spec.cases = {"first_fit", "demand_pinning_chain"};
  spec.scenarios = {line(3), line(4), line(5)};
  spec.options.min_gap = 1.0;
  spec.options.subspace.max_subspaces = 1;
  spec.options.explain.samples = 60;
  spec.grammar.p_threshold = 0.5;
  return spec;
}

void expect_same_results(const ExperimentResult& a, const ExperimentResult& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const auto& ra = a.jobs[i];
    const auto& rb = b.jobs[i];
    EXPECT_EQ(ra.job.label(), rb.job.label()) << "job " << i;
    EXPECT_EQ(ra.ok, rb.ok);
    EXPECT_EQ(ra.error, rb.error);
    EXPECT_DOUBLE_EQ(ra.pipeline.best_gap_found, rb.pipeline.best_gap_found);
    ASSERT_EQ(ra.pipeline.subspaces.size(), rb.pipeline.subspaces.size())
        << "job " << i;
    for (std::size_t s = 0; s < ra.pipeline.subspaces.size(); ++s) {
      const auto& sa = ra.pipeline.subspaces[s];
      const auto& sb = rb.pipeline.subspaces[s];
      EXPECT_EQ(sa.seed, sb.seed) << "job " << i << " subspace " << s;
      EXPECT_DOUBLE_EQ(sa.seed_gap, sb.seed_gap);
      EXPECT_DOUBLE_EQ(sa.p_value, sb.p_value);
      EXPECT_EQ(sa.region.box.lo, sb.region.box.lo);
      EXPECT_EQ(sa.region.box.hi, sb.region.box.hi);
      EXPECT_EQ(sa.significant, sb.significant);
    }
    ASSERT_EQ(ra.pipeline.explanations.size(), rb.pipeline.explanations.size());
    for (std::size_t e = 0; e < ra.pipeline.explanations.size(); ++e) {
      EXPECT_EQ(ra.pipeline.explanations[e].samples_used,
                rb.pipeline.explanations[e].samples_used);
      ASSERT_EQ(ra.pipeline.explanations[e].edges.size(),
                rb.pipeline.explanations[e].edges.size());
      for (std::size_t k = 0; k < ra.pipeline.explanations[e].edges.size(); ++k)
        EXPECT_DOUBLE_EQ(ra.pipeline.explanations[e].edges[k].heat,
                         rb.pipeline.explanations[e].edges[k].heat);
    }
    EXPECT_EQ(ra.pipeline.features, rb.pipeline.features);
  }
  EXPECT_EQ(a.trace.analyzer_calls, b.trace.analyzer_calls);
  EXPECT_EQ(a.trace.gap_evaluations, b.trace.gap_evaluations);
  ASSERT_EQ(a.trends.predicates.size(), b.trends.predicates.size());
  for (std::size_t p = 0; p < a.trends.predicates.size(); ++p) {
    EXPECT_EQ(a.trends.predicates[p].to_string(),
              b.trends.predicates[p].to_string());
    EXPECT_DOUBLE_EQ(a.trends.predicates[p].rho, b.trends.predicates[p].rho);
    EXPECT_DOUBLE_EQ(a.trends.predicates[p].p_value,
                     b.trends.predicates[p].p_value);
  }
}

struct EnvGuard {
  ~EnvGuard() { unsetenv("XPLAIN_WORKERS"); }
};

}  // namespace

TEST(Engine, ExpandIsTheCanonicalGridOrder) {
  ExperimentSpec spec;
  spec.cases = {"a", "b"};
  spec.scenarios = {line(3), star(4)};
  const auto jobs = Engine().expand(spec);
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_EQ(jobs[0].label(), "a@line_n3_s1");
  EXPECT_EQ(jobs[1].label(), "a@star_n4_s1");
  EXPECT_EQ(jobs[2].label(), "b@line_n3_s1");
  EXPECT_EQ(jobs[3].label(), "b@star_n4_s1");
  for (int i = 0; i < 4; ++i) EXPECT_EQ(jobs[i].index, i);

  // Empty grid: one default-instance job per case.
  spec.scenarios.clear();
  const auto defaults = Engine().expand(spec);
  ASSERT_EQ(defaults.size(), 2u);
  EXPECT_EQ(defaults[0].label(), "a@default");
  EXPECT_FALSE(defaults[0].scenario.has_value());
}

TEST(Engine, ExpandPutsOptionVariantsInnermost) {
  ExperimentSpec spec;
  spec.cases = {"a", "b"};
  spec.scenarios = {line(3)};
  spec.option_variants.resize(2);
  spec.option_variants[0].subspace.max_subspaces = 1;
  spec.option_variants[1].subspace.max_subspaces = 3;
  const auto jobs = Engine().expand(spec);
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_EQ(jobs[0].label(), "a@line_n3_s1#o0");
  EXPECT_EQ(jobs[1].label(), "a@line_n3_s1#o1");
  EXPECT_EQ(jobs[2].label(), "b@line_n3_s1#o0");
  EXPECT_EQ(jobs[3].label(), "b@line_n3_s1#o1");
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(jobs[i].index, i);
    EXPECT_EQ(jobs[i].option_index, i % 2);
    // The variant is recoverable from the index alone — the purity property
    // the server's job replay leans on.
    std::uint64_t seed = 0;
    const PipelineOptions o = derived_job_options(spec, jobs[i].index, &seed);
    ExperimentSpec base = spec;
    base.options = spec.option_variants[i % 2];
    base.option_variants.clear();
    EXPECT_EQ(o.fingerprint(),
              derived_job_options(base, jobs[i].index).fingerprint())
        << "job " << i;
  }
  // No variants: no #o suffix and option_index stays -1.
  spec.option_variants.clear();
  const auto flat = Engine().expand(spec);
  ASSERT_EQ(flat.size(), 2u);
  EXPECT_EQ(flat[0].label(), "a@line_n3_s1");
  EXPECT_EQ(flat[0].option_index, -1);
  // Variants also multiply default-instance jobs (empty scenario grid).
  spec.scenarios.clear();
  spec.option_variants.resize(3);
  EXPECT_EQ(Engine().expand(spec).size(), 6u);
}

TEST(Engine, OptionAxisRunsEveryVariant) {
  // One case, one scenario, two variants: analyzer budget 1 vs 2 subspaces
  // and explainer off vs on — the fuzzer's cheap-probe/deep-run split in
  // miniature.
  ExperimentSpec spec;
  spec.cases = {"demand_pinning_chain"};
  spec.scenarios = {line(4)};
  spec.run_generalizer = false;
  spec.option_variants.resize(2);
  spec.option_variants[0].subspace.max_subspaces = 1;
  spec.option_variants[0].explain.samples = 0;
  spec.option_variants[1].subspace.max_subspaces = 2;
  spec.option_variants[1].explain.samples = 60;
  const auto res = Engine().run(spec);
  ASSERT_EQ(res.jobs.size(), 2u);
  for (const auto& j : res.jobs) EXPECT_TRUE(j.ok) << j.error;
  // Each job carries its own variant's fingerprint (distinct cache keys).
  EXPECT_EQ(res.jobs[0].options_fingerprint,
            apply_seed_salt(spec.option_variants[0], res.jobs[0].seed)
                .fingerprint());
  EXPECT_EQ(res.jobs[1].options_fingerprint,
            apply_seed_salt(spec.option_variants[1], res.jobs[1].seed)
                .fingerprint());
  EXPECT_NE(res.jobs[0].options_fingerprint, res.jobs[1].options_fingerprint);
  // The probe variant (samples=0) measures gaps without sampling stories.
  for (const auto& e : res.jobs[0].pipeline.explanations)
    EXPECT_EQ(e.samples_used, 0);
  EXPECT_LE(res.jobs[0].pipeline.subspaces.size(), 1u);
  // Both probed the same instance, so both report identical features.
  EXPECT_EQ(res.jobs[0].pipeline.features, res.jobs[1].pipeline.features);
  // The scenario instance is built once and shared across the variant axis.
  EXPECT_EQ(res.case_builds, 1);
}

TEST(Engine, GridIsBitwiseDeterministicAcrossWorkerCounts) {
  const auto spec = small_grid();  // workers = 0: resolves via env
  ASSERT_GE(Engine().expand(spec).size(), 6u);

  EnvGuard guard;
  setenv("XPLAIN_WORKERS", "1", 1);
  const auto sequential = Engine().run(spec);
  setenv("XPLAIN_WORKERS", "4", 1);
  const auto parallel4 = Engine().run(spec);
  expect_same_results(sequential, parallel4);

  // An explicit worker count gives the same results again.
  unsetenv("XPLAIN_WORKERS");
  ExperimentSpec explicit_spec = spec;
  explicit_spec.workers = 3;
  expect_same_results(sequential, Engine().run(explicit_spec));
}

TEST(Engine, PerJobLpCountersAreExactUnderConcurrentWorkers) {
  // Per-job lp_solves / lp_iterations come from thread-inclusive counter
  // deltas (solver::lp_counters): with one worker per job slot they must be
  // identical to the sequential run — no bleed between concurrent jobs —
  // and nonzero for any job that actually solved LPs.
  const auto spec = small_grid();

  EnvGuard guard;
  setenv("XPLAIN_WORKERS", "1", 1);
  const auto sequential = Engine().run(spec).summary();
  setenv("XPLAIN_WORKERS", "4", 1);
  const auto parallel4 = Engine().run(spec).summary();

  ASSERT_EQ(sequential.jobs.size(), parallel4.jobs.size());
  long total_solves = 0;
  long total_priced = 0;
  for (std::size_t i = 0; i < sequential.jobs.size(); ++i) {
    EXPECT_EQ(sequential.jobs[i].lp_solves, parallel4.jobs[i].lp_solves)
        << "job " << i;
    EXPECT_EQ(sequential.jobs[i].lp_iterations,
              parallel4.jobs[i].lp_iterations)
        << "job " << i;
    EXPECT_EQ(sequential.jobs[i].lp_columns_priced,
              parallel4.jobs[i].lp_columns_priced)
        << "job " << i;
    EXPECT_EQ(sequential.jobs[i].lp_candidate_refills,
              parallel4.jobs[i].lp_candidate_refills)
        << "job " << i;
    total_solves += sequential.jobs[i].lp_solves;
    total_priced += sequential.jobs[i].lp_columns_priced;
  }
  EXPECT_GT(total_solves, 0);
  // Any pivot prices at least one column, so the pricing tally is live.
  EXPECT_GT(total_priced, 0);
  // The experiment-level snapshot equals the per-job sum: nothing leaked
  // into (or out of) the job windows.
  EXPECT_EQ(sequential.lp_solves, total_solves);
  EXPECT_EQ(sequential.lp_columns_priced, total_priced);
  long parallel_total = 0;
  long parallel_priced = 0;
  for (const auto& j : parallel4.jobs) {
    parallel_total += j.lp_solves;
    parallel_priced += j.lp_columns_priced;
  }
  EXPECT_EQ(parallel4.lp_solves, parallel_total);
  EXPECT_EQ(parallel4.lp_columns_priced, parallel_priced);
}

TEST(Engine, StreamsEveryJobThroughTheCallback) {
  const auto spec = small_grid();
  std::vector<std::string> labels;
  auto res = Engine().run(spec, [&](const JobResult& j) {
    labels.push_back(j.job.label());
  });
  ASSERT_EQ(labels.size(), res.jobs.size());
  // Completion order is scheduling-dependent; the set of labels is not.
  std::sort(labels.begin(), labels.end());
  std::vector<std::string> expected;
  for (const auto& j : res.jobs) expected.push_back(j.job.label());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(labels, expected);
}

TEST(Engine, SeedDecorrelatesReplications) {
  auto spec = small_grid();
  spec.cases = {"demand_pinning_chain"};
  const auto a = Engine().run(spec);
  auto spec_b = spec;
  spec_b.seed = 99;
  const auto b = Engine().run(spec_b);
  // Same grid, different experiment seed: at least one job's analyzer
  // trace must differ (the RNG streams are decorrelated).
  bool any_difference = false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i)
    if (a.jobs[i].pipeline.trace.gap_evaluations !=
        b.jobs[i].pipeline.trace.gap_evaluations)
      any_difference = true;
  EXPECT_TRUE(any_difference);
}

TEST(Engine, WcmpOverCorpusFeedsTypeThree) {
  // The generic factory path: WCMP sweeps scenarios with no bespoke
  // lb_case_factory adapter — features flow into generalize_batch inside
  // Engine::run.
  ExperimentSpec spec;
  spec.cases = {"wcmp"};
  spec.scenarios = {fat_tree(4), line(6), star(8)};
  spec.options.min_gap = 1.0;
  spec.options.subspace.max_subspaces = 1;
  spec.options.explain.samples = 0;  // Type-3 only needs the gaps
  spec.grammar.p_threshold = 1.1;    // keep every mined trend: smoke only
  auto res = Engine().run(spec);

  ASSERT_EQ(res.jobs.size(), 3u);
  for (const auto& j : res.jobs) {
    EXPECT_TRUE(j.ok) << j.job.label() << ": " << j.error;
    EXPECT_FALSE(j.pipeline.features.empty()) << j.job.label();
    EXPECT_GT(j.pipeline.features.at("num_commodities"), 0.0);
  }
  // Every ok job with features becomes one Type-3 observation.
  EXPECT_EQ(res.trends.observations.size(), 3u);
  // The fat-tree job must show a real WCMP-vs-optimal gap.
  EXPECT_GT(res.jobs[0].pipeline.best_gap_found, 0.0);
}

TEST(Engine, UnknownAndDefaultOnlyCasesFailLoudly) {
  const std::string name = "engine_default_only_case";
  registry().add(name, [] {
    vbp::VbpInstance inst;
    inst.num_balls = 3;
    inst.num_bins = 2;
    inst.dims = 1;
    inst.capacity = 1.0;
    return std::make_shared<cases::VbpCase>(inst);
  });

  ExperimentSpec spec;
  spec.cases = {"no_such_case", name};
  spec.scenarios = {line(4)};
  spec.options.explain.samples = 0;
  spec.run_generalizer = false;
  auto res = Engine().run(spec);
  ASSERT_EQ(res.jobs.size(), 2u);
  EXPECT_FALSE(res.jobs[0].ok);
  EXPECT_EQ(res.jobs[0].error, "unknown case");
  EXPECT_FALSE(res.jobs[1].ok);
  EXPECT_NE(res.jobs[1].error.find("default-only"), std::string::npos);
  // The same case still runs fine on its default instance.
  ExperimentSpec default_spec;
  default_spec.cases = {name};
  default_spec.options.explain.samples = 0;
  default_spec.run_generalizer = false;
  auto ok_res = Engine().run(default_spec);
  ASSERT_EQ(ok_res.jobs.size(), 1u);
  EXPECT_TRUE(ok_res.jobs[0].ok);
}

TEST(Engine, ExperimentSummaryJsonRoundTripsExactly) {
  // Synthetic summary with adversarial content: quotes, newlines,
  // non-representable-in-decimal doubles, empty and missing fields.
  ExperimentSummary s;
  JobSummary j;
  j.case_name = "wcmp";
  j.scenario = "fat_tree_k4_s1";
  j.index = 0;
  j.ok = true;
  j.subspaces = 2;
  j.significant = 1;
  j.best_gap_found = 1.0 / 3.0;
  j.max_seed_gap = 66.04357334190792;
  j.gap_scale = 100.0;
  j.wall_seconds = 0.123456789123456789;
  j.lp_solves = 12345;
  j.lp_iterations = 987654321;
  j.lp_columns_priced = 31415926535;
  j.lp_candidate_refills = 271828;
  j.features = {{"num_commodities", 8.0}, {"skew_span", 0.75}};
  s.jobs.push_back(j);
  JobSummary bad;
  bad.case_name = "odd \"name\"\nwith newline";
  bad.index = 1;
  bad.ok = false;
  bad.error = "case cannot build from a scenario (default-only registration)";
  s.jobs.push_back(bad);
  TrendSummary t;
  t.predicate = "increasing(pinned_sp_hops)";
  t.feature = "pinned_sp_hops";
  t.increasing = true;
  t.rho = 0.9784922871473329;
  t.p_value = 1.7481490558e-08;
  t.support = 12;
  s.trends.push_back(t);
  s.observations = 12;
  s.wall_seconds = 7.739930840000001;
  s.lp_solves = 112202;
  s.lp_iterations = 713712;
  s.lp_columns_priced = 8675309;
  s.lp_candidate_refills = 424242;

  const std::string json = s.to_json();
  const auto parsed = ExperimentSummary::from_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(s == *parsed);
  // And the serialization itself is stable under a round trip.
  EXPECT_EQ(json, parsed->to_json());
}

TEST(Engine, RealExperimentJsonRoundTrips) {
  auto spec = small_grid();
  spec.cases = {"first_fit"};
  const auto res = Engine().run(spec);
  const auto summary = res.summary();
  const auto parsed = ExperimentSummary::from_json(res.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(summary == *parsed);
}

TEST(UtilJson, NumbersRoundTripIncludingExtremes) {
  // 1e19 exceeds long long range (the integer fast path must range-check
  // before casting); the others stress shortest-form round-tripping.
  for (double v : {1e19, -1e19, 1.0 / 3.0, 5e-324, 1.7976931348623157e308,
                   0.1, -0.0, 1e15}) {
    const util::Json j(v);
    const auto parsed = util::Json::parse(j.dump());
    ASSERT_TRUE(parsed.has_value()) << v;
    EXPECT_EQ(parsed->as_num(), v) << v;
  }
  // Non-finite values serialize as null (JSON has no NaN/Inf) and bare
  // inf/nan tokens are rejected on input.
  EXPECT_EQ(util::Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_FALSE(util::Json::parse("inf").has_value());
  EXPECT_FALSE(util::Json::parse("nan").has_value());
}

TEST(UtilJson, ParseRejectsMalformedDocuments) {
  using util::Json;
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("[1, 2,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\": 1} trailing").has_value());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
  ASSERT_TRUE(Json::parse("  {\"a\": [1, 2.5e3, true, null]} ").has_value());
}
