// Solver torture-test suite (ISSUE 6): the sparse-LU revised simplex is
// differential-tested against the retained dense-tableau oracle on ~200+
// seeded LPs — scenario-corpus instances with randomized rhs/bounds plus
// adversarial random constructions (degenerate, rank-deficient, unbounded,
// infeasible) — and the warm-start path is metamorphic-tested: a warm
// re-solve after the rhs/bound moves MaxFlowSolver and solve_milp perform
// must agree with a cold solve, and an injected mid-run refactorization
// failure must fall back to a cold restart instead of reporting an
// unverified optimum.
//
// The pricing axis (ISSUE 8): every solve here honors XPLAIN_TEST_PRICING
// so CI runs the whole suite under both pricing rules, the partial-vs-
// Dantzig differential is asserted directly on the corpus and random
// families, and the Forrest-Tomlin machinery gets its own metamorphic
// coverage (warm == cold with the dense fallback disabled, plus an
// injected update rejection that must cost a refactorization, never the
// answer).
//
// Every LP here derives from a fixed seed set: a failure reproduces
// identically on any machine and worker count.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "lb/optimal.h"
#include "scenario/scenario.h"
#include "solver/simplex.h"
#include "util/random.h"

namespace xs = xplain::solver;
using xs::kInf;
using xs::LpProblem;
using xs::RowSense;
using xs::Sense;
using xs::Status;
using xplain::util::Rng;

namespace {

// Per-family LP counts; CoversAtLeast200Lps sums these (order- and
// filter-independent — no global mutable tally).
constexpr int kRandomLps = 60;
constexpr int kDegenerateLps = 25;
constexpr int kRankDeficientLps = 25;
constexpr int kUnboundedLps = 20;
constexpr int kInfeasibleLps = 20;

/// Baseline options for every solve in this suite.  XPLAIN_TEST_PRICING
/// re-runs the whole file under a chosen pricing rule — CI's sanitizer job
/// invokes it once per mode — so both pivot paths get the full torture
/// treatment: "dantzig" forces the full scan, "partial" engages the
/// candidate list even below the partial_pricing_min_cols size gate (most
/// LPs here are tiny), anything else (including unset) keeps the defaults.
xs::SimplexOptions fuzz_opts() {
  xs::SimplexOptions opts;
  const char* mode = std::getenv("XPLAIN_TEST_PRICING");
  if (mode != nullptr && std::strcmp(mode, "dantzig") == 0)
    opts.pricing = xs::PricingRule::kDantzig;
  if (mode != nullptr && std::strcmp(mode, "partial") == 0) {
    opts.pricing = xs::PricingRule::kPartial;
    opts.partial_pricing_min_cols = 0;
  }
  return opts;
}

void expect_oracle_agreement(const LpProblem& p, const char* what,
                             long tag) {
  const auto lu = xs::solve_lp(p, fuzz_opts());
  const auto oracle = xs::solve_lp_tableau(p);
  ASSERT_EQ(lu.status, oracle.status)
      << what << " #" << tag << "\n"
      << (p.num_rows() <= 12 ? p.to_string() : std::string("(large LP)"));
  if (lu.status != Status::kOptimal) return;
  EXPECT_NEAR(lu.obj, oracle.obj, 1e-6 * (1.0 + std::abs(oracle.obj)))
      << what << " #" << tag;
  EXPECT_TRUE(p.feasible(lu.x, 1e-6)) << what << " #" << tag;
}

/// Random LP exercising every bound shape and row sense (the
/// test_solver.cpp generator, with occasional empty coefficient rows and
/// larger shapes mixed in).
LpProblem random_lp(Rng& rng, int max_cols = 9, int max_rows = 7) {
  LpProblem p;
  p.sense = rng.bernoulli(0.5) ? Sense::kMaximize : Sense::kMinimize;
  const int n = rng.uniform_int(2, max_cols);
  for (int j = 0; j < n; ++j) {
    const int shape = rng.uniform_int(0, 4);
    double lo = 0.0, hi = kInf;
    if (shape == 0) {
      hi = rng.uniform(0.5, 8.0);
    } else if (shape == 1) {
      lo = -rng.uniform(0.5, 5.0);
      hi = rng.uniform(0.5, 8.0);
    } else if (shape == 2) {
      lo = -kInf;
      hi = rng.uniform(0.0, 6.0);
    } else if (shape == 3) {
      lo = hi = rng.uniform(-2.0, 2.0);
    }
    p.add_col(lo, hi, rng.uniform(-3.0, 3.0));
  }
  const int m = rng.uniform_int(1, max_rows);
  for (int i = 0; i < m; ++i) {
    std::vector<std::pair<int, double>> coef;
    for (int j = 0; j < n; ++j)
      if (rng.bernoulli(0.6)) coef.emplace_back(j, rng.uniform(-2.0, 3.0));
    if (coef.empty()) coef.emplace_back(rng.uniform_int(0, n - 1), 1.0);
    const int s = rng.uniform_int(0, 5);
    const RowSense sense = s <= 2   ? RowSense::kLe
                           : s <= 4 ? RowSense::kGe
                                    : RowSense::kEq;
    p.add_row(std::move(coef), sense, rng.uniform(-4.0, 12.0));
  }
  return p;
}

/// The scenario-corpus LPs: one optimal-routing problem per corpus
/// scenario, rhs-randomized per seed the way LbOptimalSolver moves them.
/// Bigger scenarios get fewer seeds (the dense oracle is O(m^2) per
/// pivot); the seed budget keeps the whole suite in ctest territory.
/// `max_rows` drops scenarios above it: the default excludes only the
/// fat-tree(16) entry (~4k rows — far past dense-oracle territory); the
/// pricing differential, which runs the sparse solver on both sides,
/// passes a higher cap to cover it too.
std::vector<std::pair<LpProblem, long>> corpus_lps(int max_rows = 600) {
  std::vector<std::pair<LpProblem, long>> out;
  long tag = 0;
  for (const auto& spec : xplain::scenario::default_corpus()) {
    const auto inst = xplain::scenario::make_lb_instance(
        spec, /*num_commodities=*/6, /*k_paths=*/2, /*t_max=*/50.0,
        /*skew_lo=*/0.5, /*skew_hi=*/1.0);
    xplain::lb::LbOptimalSolver solver(inst);
    const LpProblem& base = solver.problem();
    if (base.num_rows() > max_rows) continue;
    const int seeds = base.num_rows() > 400 ? 2 : base.num_rows() > 150 ? 4 : 20;
    Rng rng(0xC0FFEE ^ spec.seed ^ static_cast<std::uint64_t>(base.num_rows()));
    for (int s = 0; s < seeds; ++s) {
      LpProblem p = base;
      // Move every rhs multiplicatively (demands and capacities both), and
      // occasionally to exactly zero — the skip-commodity encoding.
      for (int i = 0; i < p.num_rows(); ++i) {
        const double f = rng.bernoulli(0.1) ? 0.0 : rng.uniform(0.2, 1.2);
        p.set_row_rhs(i, f * std::max(1.0, std::abs(p.row(i).rhs)));
      }
      out.emplace_back(std::move(p), tag++);
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Differential fuzz vs the tableau oracle.
// ---------------------------------------------------------------------------

TEST(SolverFuzz, CorpusLpsMatchOracle) {
  for (const auto& [p, tag] : corpus_lps())
    expect_oracle_agreement(p, "corpus", tag);
}

TEST(SolverFuzz, RandomLpsMatchOracle) {
  Rng rng(20260727);
  for (int t = 0; t < kRandomLps; ++t)
    expect_oracle_agreement(random_lp(rng), "random", t);
}

TEST(SolverFuzz, DegenerateLpsMatchOracle) {
  // Transportation-style LPs with tied rhs values and duplicated rows: the
  // classic degenerate-pivot mill.
  Rng rng(1111);
  for (int t = 0; t < kDegenerateLps; ++t) {
    LpProblem p;
    p.sense = Sense::kMaximize;
    const int n = rng.uniform_int(3, 6);
    for (int j = 0; j < n; ++j) p.add_col(0, 4.0, rng.uniform(0.5, 2.0));
    const double b = rng.uniform_int(1, 3);  // integral tie-prone rhs
    const int m = rng.uniform_int(2, 5);
    for (int i = 0; i < m; ++i) {
      std::vector<std::pair<int, double>> coef;
      for (int j = 0; j < n; ++j)
        if (rng.bernoulli(0.7)) coef.emplace_back(j, 1.0);
      if (coef.empty()) coef.emplace_back(0, 1.0);
      p.add_row(coef, RowSense::kLe, b);
      if (rng.bernoulli(0.4)) p.add_row(coef, RowSense::kLe, b);  // duplicate
    }
    expect_oracle_agreement(p, "degenerate", t);
  }
}

TEST(SolverFuzz, RankDeficientLpsMatchOracle) {
  // row3 = row1 + row2 as equalities: consistent rhs leaves a redundant row
  // (a residual basic artificial the basis export must survive);
  // inconsistent rhs is infeasible.
  Rng rng(2222);
  for (int t = 0; t < kRankDeficientLps; ++t) {
    LpProblem p;
    const int n = rng.uniform_int(3, 6);
    for (int j = 0; j < n; ++j)
      p.add_col(0, rng.uniform(2.0, 8.0), rng.uniform(-2.0, 2.0));
    std::vector<std::pair<int, double>> r1, r2, r3;
    double b1 = 0, b2 = 0;
    for (int j = 0; j < n; ++j) {
      const double a1 = rng.bernoulli(0.7) ? rng.uniform(-2.0, 2.0) : 0.0;
      const double a2 = rng.bernoulli(0.7) ? rng.uniform(-2.0, 2.0) : 0.0;
      if (a1 != 0.0) r1.emplace_back(j, a1);
      if (a2 != 0.0) r2.emplace_back(j, a2);
      if (a1 + a2 != 0.0) r3.emplace_back(j, a1 + a2);
    }
    if (r1.empty()) r1.emplace_back(0, 1.0);
    if (r2.empty()) r2.emplace_back(1, 1.0);
    if (r3.empty()) r3 = r1;
    b1 = rng.uniform(0.0, 5.0);
    b2 = rng.uniform(0.0, 5.0);
    const bool consistent = rng.bernoulli(0.6);
    p.add_row(r1, RowSense::kEq, b1);
    p.add_row(r2, RowSense::kEq, b2);
    p.add_row(r3, RowSense::kEq, consistent ? b1 + b2 : b1 + b2 + 1.0);
    expect_oracle_agreement(p, "rank_deficient", t);
  }
}

TEST(SolverFuzz, UnboundedLpsMatchOracle) {
  Rng rng(3333);
  for (int t = 0; t < kUnboundedLps; ++t) {
    LpProblem p;
    p.sense = Sense::kMaximize;
    const int n = rng.uniform_int(2, 5);
    for (int j = 0; j < n; ++j)
      p.add_col(rng.bernoulli(0.3) ? -kInf : 0.0, kInf,
                rng.uniform(0.1, 2.0));
    // Rows with a nonpositive coefficient per column leave the all-positive
    // objective an escape ray.
    const int m = rng.uniform_int(1, 3);
    for (int i = 0; i < m; ++i) {
      std::vector<std::pair<int, double>> coef;
      for (int j = 0; j < n; ++j)
        if (rng.bernoulli(0.6)) coef.emplace_back(j, -rng.uniform(0.1, 2.0));
      if (coef.empty()) coef.emplace_back(0, -1.0);
      p.add_row(std::move(coef), RowSense::kLe, rng.uniform(0.0, 5.0));
    }
    expect_oracle_agreement(p, "unbounded", t);
  }
}

TEST(SolverFuzz, InfeasibleLpsMatchOracle) {
  Rng rng(4444);
  for (int t = 0; t < kInfeasibleLps; ++t) {
    LpProblem p = random_lp(rng);
    // Pin a contradiction on a random column inside its bounds.
    const int j = rng.uniform_int(0, p.num_cols() - 1);
    p.add_row({{j, 1.0}}, RowSense::kGe, 50.0);
    p.add_row({{j, 1.0}}, RowSense::kLe, -50.0);
    expect_oracle_agreement(p, "infeasible", t);
  }
}

// ---------------------------------------------------------------------------
// Pricing-mode differential: partial pricing changes the pivot path, never
// the verdict.  Both sides run the production sparse solver, so — unlike
// the oracle tests above — the fat-tree(16) corpus entry is affordable and
// gets direct coverage here.
// ---------------------------------------------------------------------------

namespace {

void expect_pricing_agreement(const LpProblem& p, const char* what,
                              long tag) {
  xs::SimplexOptions dantzig, partial;
  dantzig.pricing = xs::PricingRule::kDantzig;
  partial.pricing = xs::PricingRule::kPartial;
  partial.partial_pricing_min_cols = 0;  // candidate list even on tiny LPs
  const auto a = xs::solve_lp(p, dantzig);
  const auto b = xs::solve_lp(p, partial);
  ASSERT_EQ(a.status, b.status) << what << " #" << tag;
  if (a.status != Status::kOptimal) return;
  EXPECT_NEAR(a.obj, b.obj, 1e-6 * (1.0 + std::abs(a.obj)))
      << what << " #" << tag;
  EXPECT_TRUE(p.feasible(b.x, 1e-6)) << what << " #" << tag;
}

}  // namespace

TEST(SolverPricing, ModesAgreeOnCorpus) {
  for (const auto& [p, tag] : corpus_lps(/*max_rows=*/1 << 20))
    expect_pricing_agreement(p, "corpus", tag);
}

TEST(SolverPricing, ModesAgreeOnRandomLps) {
  // A distinct seed from RandomLpsMatchOracle: fresh LPs, not a re-check.
  Rng rng(20260807);
  for (int t = 0; t < kRandomLps; ++t)
    expect_pricing_agreement(random_lp(rng), "random", t);
}

TEST(SolverPricing, ModesAgreeUnderForcedSparsePath) {
  // dense_basis_dim=0 pushes even tiny LPs through the sparse FT machinery,
  // so the partial-pricing/FT interaction is exercised where the default
  // dense fallback would otherwise hide it.
  Rng rng(20260808);
  for (int t = 0; t < 30; ++t) {
    const LpProblem p = random_lp(rng);
    xs::SimplexOptions dantzig, partial;
    dantzig.pricing = xs::PricingRule::kDantzig;
    dantzig.dense_basis_dim = 0;
    partial.pricing = xs::PricingRule::kPartial;
    partial.partial_pricing_min_cols = 0;
    partial.dense_basis_dim = 0;
    const auto a = xs::solve_lp(p, dantzig);
    const auto b = xs::solve_lp(p, partial);
    ASSERT_EQ(a.status, b.status) << "sparse #" << t;
    if (a.status != Status::kOptimal) continue;
    EXPECT_NEAR(a.obj, b.obj, 1e-6 * (1.0 + std::abs(a.obj))) << "sparse #" << t;
    EXPECT_TRUE(p.feasible(b.x, 1e-6)) << "sparse #" << t;
  }
}

// The acceptance criterion's floor: the suite covers >= 200 distinct
// seeded LPs.  Computed from the family sizes (corpus_lps() regenerates
// deterministically), not from a global execution tally, so the check is
// immune to --gtest_filter / --gtest_shuffle.
TEST(SolverFuzz, CoversAtLeast200Lps) {
  const int total = static_cast<int>(corpus_lps().size()) + kRandomLps +
                    kDegenerateLps + kRankDeficientLps + kUnboundedLps +
                    kInfeasibleLps;
  EXPECT_GE(total, 200);
}

// ---------------------------------------------------------------------------
// Warm-start metamorphic tests: warm == cold after the rhs/bound moves the
// real callers make.
// ---------------------------------------------------------------------------

namespace {

void expect_warm_equals_cold(const LpProblem& q, const xs::Basis& warm_basis,
                             const char* what, long tag,
                             const xs::SimplexOptions& opts = fuzz_opts()) {
  const auto warm = xs::solve_lp(q, opts, &warm_basis);
  const auto cold = xs::solve_lp(q, opts);
  ASSERT_EQ(warm.status, cold.status) << what << " #" << tag;
  if (warm.status != Status::kOptimal) return;
  EXPECT_NEAR(warm.obj, cold.obj, 1e-7 * (1.0 + std::abs(cold.obj)))
      << what << " #" << tag;
  EXPECT_TRUE(q.feasible(warm.x, 1e-6)) << what << " #" << tag;
}

}  // namespace

TEST(SolverWarmMetamorphic, RhsMovesLikeMaxFlowSolver) {
  // The MaxFlowSolver pattern: fixed structure, every solve moves rhs only,
  // warm from one reference basis.
  long warm_engaged = 0;
  for (const auto& spec : xplain::scenario::default_corpus()) {
    const auto inst = xplain::scenario::make_lb_instance(spec, 6, 2, 50.0,
                                                         0.5, 1.0);
    xplain::lb::LbOptimalSolver solver(inst);
    LpProblem p = solver.problem();
    if (p.num_rows() > 150) continue;  // keep the cold re-solves cheap
    const auto ref = xs::solve_lp(p);
    ASSERT_EQ(ref.status, Status::kOptimal) << spec.name();
    Rng rng(0xABCD ^ spec.seed);
    for (int t = 0; t < 10; ++t) {
      LpProblem q = p;
      for (int i = 0; i < q.num_rows(); ++i)
        q.set_row_rhs(i, rng.uniform(0.0, 1.1) *
                             std::max(1.0, std::abs(q.row(i).rhs)));
      const long before = xs::lp_counters().warm_solves;
      expect_warm_equals_cold(q, ref.basis, spec.name().c_str(), t);
      warm_engaged += xs::lp_counters().warm_solves - before;
    }
  }
  // The dual-repair path must actually engage for most perturbations.
  EXPECT_GE(warm_engaged, 20);
}

TEST(SolverWarmMetamorphic, BoundMovesLikeSolveMilp) {
  // The branch-and-bound pattern: tighten column boxes around the parent
  // optimum, warm from the parent basis.
  Rng rng(55555);
  int solved = 0;
  for (int trial = 0; trial < 600 && solved < 120; ++trial) {
    LpProblem p = random_lp(rng);
    const auto parent = xs::solve_lp(p);
    if (parent.status != Status::kOptimal) continue;
    LpProblem q = p;
    const int cuts = rng.uniform_int(1, 3);
    for (int c = 0; c < cuts; ++c) {
      const int j = rng.uniform_int(0, p.num_cols() - 1);
      const double v = parent.x[j];
      if (rng.bernoulli(0.5)) {
        q.set_bounds(j, q.lo(j), std::min(q.hi(j), std::floor(v)));
      } else {
        q.set_bounds(j, std::max(q.lo(j), std::ceil(v)), q.hi(j));
      }
    }
    expect_warm_equals_cold(q, parent.basis, "bound_move", trial);
    ++solved;
  }
  EXPECT_GE(solved, 100);
}

TEST(SolverWarmMetamorphic, WarmEqualsColdUnderForcedSparseFt) {
  // dense_basis_dim=0 disables the tiny-LP dense fallback, so every warm
  // install, dual repair, and pivot below runs on the sparse
  // Forrest-Tomlin representation the fat-tree(16) instances use — the
  // dense path must not be the only one honoring warm == cold.
  xs::SimplexOptions opts = fuzz_opts();
  opts.dense_basis_dim = 0;
  ASSERT_TRUE(opts.ft_updates);  // the default: FT, not the eta baseline
  Rng rng(66666);
  int checked = 0;
  for (int trial = 0; trial < 400 && checked < 80; ++trial) {
    const LpProblem p = random_lp(rng);
    const auto parent = xs::solve_lp(p, opts);
    if (parent.status != Status::kOptimal) continue;
    LpProblem q = p;
    for (int i = 0; i < q.num_rows(); ++i)
      q.set_row_rhs(i, rng.uniform(0.0, 1.1) *
                           std::max(1.0, std::abs(q.row(i).rhs)));
    expect_warm_equals_cold(q, parent.basis, "sparse_ft", trial, opts);
    ++checked;
  }
  EXPECT_GE(checked, 80);
}

// ---------------------------------------------------------------------------
// Injected refactorization failure (SimplexOptions::fail_refactor_at): the
// stale-representation verdicts must stay honest.
// ---------------------------------------------------------------------------

namespace {

/// A mid-size LP with enough pivots that refactor_every=1 forces several
/// refactorizations per solve.
LpProblem pivot_mill(Rng& rng) {
  LpProblem p;
  p.sense = Sense::kMaximize;
  const int n = 12;
  std::vector<std::pair<int, double>> sum;
  for (int j = 0; j < n; ++j) {
    const int c = p.add_col(0, rng.uniform(1.0, 3.0), rng.uniform(0.5, 2.0));
    sum.emplace_back(c, rng.uniform(0.5, 1.5));
  }
  for (int i = 0; i < 6; ++i) {
    std::vector<std::pair<int, double>> coef;
    for (int j = 0; j < n; ++j)
      if (rng.bernoulli(0.5)) coef.emplace_back(j, rng.uniform(0.2, 1.5));
    if (coef.empty()) coef = sum;
    p.add_row(std::move(coef), RowSense::kLe, rng.uniform(2.0, 6.0));
  }
  p.add_row(sum, RowSense::kLe, 8.0);
  return p;
}

}  // namespace

TEST(SolverRefactorFailure, ColdSolveReportsErrorNotBogusOptimum) {
  Rng rng(777);
  int injected = 0;
  for (int t = 0; t < 20; ++t) {
    LpProblem p = pivot_mill(rng);
    const auto clean = xs::solve_lp(p);
    ASSERT_EQ(clean.status, Status::kOptimal);
    // With refactor_every=1 below, refactorization calls ~= 1 (initial) +
    // pivots; the injected 3rd call needs a few pivots to be reached.
    if (clean.iterations < 4) continue;
    xs::SimplexOptions opts;
    opts.refactor_every = 1;
    opts.fail_refactor_at = 3;  // initial factorize is call 1
    const auto hurt = xs::solve_lp(p, opts);
    // Every verdict derived from the stale representation must be kError —
    // never a silently wrong optimum.
    EXPECT_EQ(hurt.status, Status::kError) << "trial " << t;
    ++injected;
  }
  EXPECT_GE(injected, 5);
}

TEST(SolverRefactorFailure, WarmSolveFallsBackToColdRestart) {
  Rng rng(888);
  int injected = 0;
  for (int t = 0; t < 40 && injected < 8; ++t) {
    LpProblem p = pivot_mill(rng);
    const auto parent = xs::solve_lp(p);
    ASSERT_EQ(parent.status, Status::kOptimal);
    LpProblem q = p;
    for (int j = 0; j < q.num_cols(); ++j)
      if (rng.bernoulli(0.4))
        q.set_bounds(j, q.lo(j), std::max(q.lo(j), q.hi(j) * 0.5));
    const auto cold = xs::solve_lp(q);

    xs::SimplexOptions opts;
    opts.refactor_every = 1;

    // Probe without injection: count this trial only if the warm path
    // engaged AND pivoted.  With refactor_every=1 the first pivot
    // immediately refactorizes, and the injected run below is bitwise
    // identical up to that call — so the probe proves factorize call #2
    // really fires there.
    const long warm_before = xs::lp_counters().warm_solves;
    const auto probe = xs::solve_lp(q, opts, &parent.basis);
    const bool engaged = xs::lp_counters().warm_solves - warm_before == 1;
    if (!engaged || probe.iterations < 1) continue;

    // Call 1 is warm_install's factorize; call 2 is the first mid-repair
    // refactorization.  Its failure poisons the warm attempt, which must
    // restart cold (whose own factorize then succeeds).
    opts.fail_refactor_at = 2;
    const auto warm = xs::solve_lp(q, opts, &parent.basis);
    ASSERT_EQ(warm.status, cold.status) << "trial " << t;
    if (warm.status == Status::kOptimal) {
      EXPECT_NEAR(warm.obj, cold.obj, 1e-7 * (1.0 + std::abs(cold.obj)));
      EXPECT_TRUE(q.feasible(warm.x, 1e-6));
    }
    ++injected;
  }
  EXPECT_GE(injected, 8);
}

// ---------------------------------------------------------------------------
// Injected Forrest-Tomlin rejection (SimplexOptions::fail_update_at): a
// rejected update is the designed fallback — it costs one refactorization
// and must never change the answer.  (The real rejections fire on small
// FTRAN pivots or elimination blow-up; the hook makes the path
// deterministic instead of waiting for a numerically nasty basis.)
// ---------------------------------------------------------------------------

TEST(SolverFtRejection, RejectedUpdateRefactorizesAndMatchesCleanSolve) {
  Rng rng(9090);
  int injected = 0;
  for (int t = 0; t < 30; ++t) {
    const LpProblem p = pivot_mill(rng);
    xs::SimplexOptions opts = fuzz_opts();
    opts.dense_basis_dim = 0;  // force the sparse FT path
    const auto clean = xs::solve_lp(p, opts);
    ASSERT_EQ(clean.status, Status::kOptimal) << "trial " << t;
    // fail_update_at=2 needs a second basis-update attempt to exist.
    if (clean.iterations < 3) continue;
    xs::SimplexOptions inj = opts;
    inj.fail_update_at = 2;
    const auto hurt = xs::solve_lp(p, inj);
    // Unlike a refactorization failure (which poisons the representation),
    // a rejected update recovers in-solve: same verdict, same optimum, one
    // extra refactorization on the books.
    ASSERT_EQ(hurt.status, Status::kOptimal) << "trial " << t;
    EXPECT_NEAR(hurt.obj, clean.obj, 1e-7 * (1.0 + std::abs(clean.obj)))
        << "trial " << t;
    EXPECT_TRUE(p.feasible(hurt.x, 1e-6)) << "trial " << t;
    EXPECT_GE(hurt.refactorizations, clean.refactorizations) << "trial " << t;
    ++injected;
  }
  EXPECT_GE(injected, 10);
}
