// Tests for the heuristic analyzers: evaluators, pattern search, and the
// exact MetaOpt-style MILP analyzers (DP bi-level rewrite, FF encoding).
#include <gtest/gtest.h>

#include <cmath>

#include "analyzer/search_analyzer.h"
#include "cases/dp_case.h"
#include "cases/dp_milp_analyzer.h"
#include "cases/ff_case.h"
#include "cases/ff_milp_analyzer.h"
#include "vbp/optimal.h"

using namespace xplain::analyzer;
using xplain::cases::DpGapEvaluator;
using xplain::cases::DpMilpAnalyzer;
using xplain::cases::DpMilpOptions;
using xplain::cases::FfMilpAnalyzer;
using xplain::cases::VbpGapEvaluator;
namespace te = xplain::te;
namespace vbp = xplain::vbp;

namespace {

DpGapEvaluator fig1a_eval() {
  return DpGapEvaluator(te::TeInstance::fig1a_example(), te::DpConfig{50.0},
                        /*quantum=*/1.0);
}

vbp::VbpInstance vbp4x3() {
  vbp::VbpInstance inst;
  inst.num_balls = 4;
  inst.num_bins = 3;
  inst.dims = 1;
  inst.capacity = 1.0;
  return inst;
}

}  // namespace

TEST(Box, ContainsIntersectVolume) {
  Box a{{0, 0}, {2, 2}};
  Box b{{1, 1}, {3, 3}};
  EXPECT_TRUE(a.contains({1, 1}));
  EXPECT_FALSE(a.contains({3, 1}));
  auto c = a.intersect(b);
  EXPECT_FALSE(c.empty());
  EXPECT_DOUBLE_EQ(c.volume(), 1.0);
  Box d{{5, 5}, {6, 6}};
  EXPECT_TRUE(a.intersect(d).empty());
}

TEST(Evaluator, DpGapAtPaperPoint) {
  auto eval = fig1a_eval();
  EXPECT_EQ(eval.dim(), 3);
  EXPECT_NEAR(eval.gap({50, 100, 100}), 100.0, 1e-6);
  EXPECT_NEAR(eval.gap({60, 100, 100}), 0.0, 1e-6);  // above threshold
}

TEST(Evaluator, QuantizeSnapsToGrid) {
  auto eval = fig1a_eval();
  auto q = eval.quantize({49.4, 100.2, -3.0});
  EXPECT_DOUBLE_EQ(q[0], 49.0);
  EXPECT_DOUBLE_EQ(q[1], 100.0);
  EXPECT_DOUBLE_EQ(q[2], 0.0);
}

TEST(Evaluator, DimNamesAreHumanReadable) {
  auto eval = fig1a_eval();
  auto names = eval.dim_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "d[1~>3]");
  VbpGapEvaluator veval(vbp4x3());
  EXPECT_EQ(veval.dim_names()[2], "Y[2]");
}

TEST(SearchAnalyzer, FindsDpAdversarialInput) {
  auto eval = fig1a_eval();
  SearchAnalyzer an;
  auto ex = an.find_adversarial(eval, /*min_gap=*/50.0, {});
  ASSERT_TRUE(ex.has_value());
  EXPECT_GE(ex->gap, 50.0);
  // The found demand must actually reproduce the gap.
  EXPECT_NEAR(eval.gap(ex->input), ex->gap, 1e-9);
}

TEST(SearchAnalyzer, FindsFfAdversarialInput) {
  VbpGapEvaluator eval(vbp4x3());
  SearchAnalyzer an;
  auto ex = an.find_adversarial(eval, /*min_gap=*/1.0, {});
  ASSERT_TRUE(ex.has_value());
  EXPECT_GE(ex->gap, 1.0);  // FF uses at least one extra bin
}

TEST(SearchAnalyzer, RespectsExclusionBoxes) {
  auto eval = fig1a_eval();
  SearchAnalyzer an;
  auto first = an.find_adversarial(eval, 50.0, {});
  ASSERT_TRUE(first.has_value());
  // Exclude the entire input box: nothing can be found.
  std::vector<Box> all = {eval.input_box()};
  EXPECT_FALSE(an.find_adversarial(eval, 50.0, all).has_value());
}

TEST(SearchAnalyzer, BeatsRandomBaseline) {
  // The paper's premise: random search is much weaker at equal budget.
  auto eval = fig1a_eval();
  SearchAnalyzer an;
  auto guided = an.find_adversarial(eval, 0.0, {});
  auto random = SearchAnalyzer::random_baseline(eval, 0.0, {}, 500, 99);
  ASSERT_TRUE(guided.has_value());
  ASSERT_TRUE(random.has_value());
  EXPECT_GE(guided->gap, random->gap - 1e-9);
}

TEST(SearchAnalyzer, NoFalsePositiveWhenHeuristicIsOptimal) {
  // Single demand on a single path: DP == OPT everywhere; no gap exists.
  te::Topology t(2);
  t.add_link(0, 1, 100);
  auto inst = te::TeInstance::make(t, {{0, 1}}, 1, 100);
  DpGapEvaluator eval(inst, te::DpConfig{50.0});
  SearchAnalyzer an;
  EXPECT_FALSE(an.find_adversarial(eval, 1.0, {}).has_value());
}

// ---------------------------------------------------------------------------
// Exact MILP analyzers.
// ---------------------------------------------------------------------------

TEST(DpMilp, FindsTheFullGapOnFig1a) {
  auto eval = fig1a_eval();
  DpMilpOptions opts;
  opts.quantum = 25.0;  // coarse grid keeps the MILP small in tests
  DpMilpAnalyzer an(te::TeInstance::fig1a_example(), te::DpConfig{50.0}, opts);
  auto ex = an.find_adversarial(eval, 50.0, {});
  ASSERT_TRUE(ex.has_value());
  // The known worst case (d = {50, 100, 100}) has gap 100; the MILP must
  // find a gap of at least that on the 25-grid (which contains the point).
  EXPECT_NEAR(ex->gap, 100.0, 1e-6);
  EXPECT_NEAR(eval.gap(ex->input), ex->gap, 1e-6);
}

TEST(DpMilp, AgreesWithSearchOnSmallInstance) {
  auto inst = te::TeInstance::fig1a_example();
  auto eval = fig1a_eval();
  DpMilpOptions opts;
  opts.quantum = 25.0;
  DpMilpAnalyzer milp(inst, te::DpConfig{50.0}, opts);
  SearchAnalyzer search;
  auto a = milp.find_adversarial(eval, 1.0, {});
  auto b = search.find_adversarial(eval, 1.0, {});
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  // The exact analyzer cannot be worse than search (up to grid resolution).
  EXPECT_GE(a->gap, b->gap - 25.0);
}

TEST(DpMilp, ExclusionForcesNewRegion) {
  auto eval = fig1a_eval();
  DpMilpOptions opts;
  opts.quantum = 25.0;
  DpMilpAnalyzer an(te::TeInstance::fig1a_example(), te::DpConfig{50.0}, opts);
  auto first = an.find_adversarial(eval, 10.0, {});
  ASSERT_TRUE(first.has_value());
  // Exclude a box around the first point; the next answer must differ.
  Box around;
  around.lo = first->input;
  around.hi = first->input;
  for (auto& v : around.lo) v -= 20.0;
  for (auto& v : around.hi) v += 20.0;
  auto second = an.find_adversarial(eval, 10.0, {around});
  if (second.has_value()) {
    EXPECT_FALSE(around.contains(second->input, 1e-9));
  }
}

TEST(FfMilp, FindsOneExtraBinOn4Balls3Bins) {
  VbpGapEvaluator eval(vbp4x3());
  FfMilpAnalyzer an(vbp4x3());
  auto ex = an.find_adversarial(eval, 1.0, {});
  ASSERT_TRUE(ex.has_value());
  EXPECT_GE(ex->gap, 1.0);
  // Sanity: simulated FF really is one bin worse than OPT at that input.
  EXPECT_NEAR(eval.gap(ex->input), ex->gap, 1e-9);
}

TEST(FfMilp, EncodingMatchesSimulationAtItsOwnPoint) {
  FfMilpAnalyzer an(vbp4x3());
  auto ex = an.solve({});
  ASSERT_TRUE(ex.has_value());
  auto inst = vbp4x3();
  inst.num_bins = inst.num_balls;
  std::vector<double> y = ex->input;
  for (auto& v : y) v = std::clamp(v, 0.0, 1.0);
  auto ff = vbp::first_fit(inst, y);
  auto opt = vbp::optimal_packing(inst, y);
  EXPECT_NEAR(static_cast<double>(ff.bins_used - opt.bins), ex->gap, 1e-9);
}

