// Tests for the VBP substrate: heuristics, exact optimal packing, and the
// agreement between the FF simulation and its Fig. 1c MILP encoding.
#include <gtest/gtest.h>

#include <cmath>

#include "flowgraph/compiler.h"
#include "util/random.h"
#include "vbp/ff_model.h"
#include "vbp/heuristics.h"
#include "vbp/optimal.h"

using namespace xplain::vbp;
namespace xs = xplain::solver;

namespace {
VbpInstance small(int balls, int bins) {
  VbpInstance inst;
  inst.num_balls = balls;
  inst.num_bins = bins;
  inst.dims = 1;
  inst.capacity = 1.0;
  return inst;
}
}  // namespace

TEST(Heuristics, PaperSection2Example) {
  // Ball sizes 1%, 49%, 51%, 51% with 3 unit bins: FF uses 3, OPT uses 2.
  auto inst = small(4, 3);
  std::vector<double> y = {0.01, 0.49, 0.51, 0.51};
  auto ff = first_fit(inst, y);
  EXPECT_TRUE(ff.complete);
  EXPECT_EQ(ff.bins_used, 3);
  EXPECT_TRUE(ff.valid(inst, y));
  auto opt = optimal_packing(inst, y);
  EXPECT_EQ(opt.bins, 2);
  EXPECT_NEAR(vbp_gap(inst, y), 1.0, 1e-12);
}

TEST(Heuristics, FirstFitPlacesGreedily) {
  auto inst = small(3, 3);
  std::vector<double> y = {0.5, 0.5, 0.5};
  auto ff = first_fit(inst, y);
  EXPECT_EQ(ff.assignment[0], 0);
  EXPECT_EQ(ff.assignment[1], 0);  // fits exactly
  EXPECT_EQ(ff.assignment[2], 1);
  EXPECT_EQ(ff.bins_used, 2);
}

TEST(Heuristics, FirstFitDecreasingBeatsFirstFitHere) {
  auto inst = small(4, 4);
  std::vector<double> y = {0.01, 0.49, 0.51, 0.51};
  EXPECT_EQ(first_fit_decreasing(inst, y).bins_used, 2);
  EXPECT_EQ(first_fit(inst, y).bins_used, 3);
}

TEST(Heuristics, BestFitPicksTightestBin) {
  auto inst = small(4, 4);
  // 0.6 opens bin 0; 0.55 cannot join it and opens bin 1; 0.4 fits both and
  // best-fits bin 0 (residual 0.4 < 0.45); 0.39 then only fits bin 1.
  std::vector<double> y = {0.6, 0.55, 0.4, 0.39};
  auto bf = best_fit(inst, y);
  EXPECT_EQ(bf.assignment[2], 0);
  EXPECT_EQ(bf.assignment[3], 1);
  EXPECT_EQ(bf.bins_used, 2);
}

TEST(Heuristics, NextFitNeverLooksBack) {
  auto inst = small(4, 4);
  std::vector<double> y = {0.6, 0.6, 0.1, 0.6};
  auto nf = next_fit(inst, y);
  // 0.6 | 0.6+0.1 | 0.6 — next-fit cannot return to bin 0 for the 0.1.
  EXPECT_EQ(nf.bins_used, 3);
  EXPECT_EQ(nf.assignment[2], 1);
}

TEST(Heuristics, ZeroSizeBallsShareOneBin) {
  // Regression: zero-size balls must not "re-open" bins (bin usage is
  // assignment-based, not load-based) — otherwise the gap evaluator reports
  // a phantom gap at the origin of the input space.
  auto inst = small(5, 5);
  std::vector<double> zeros(5, 0.0);
  for (auto h : {VbpHeuristic::kFirstFit, VbpHeuristic::kBestFit,
                 VbpHeuristic::kFirstFitDecreasing, VbpHeuristic::kNextFit}) {
    auto pk = run_heuristic(h, inst, zeros);
    EXPECT_EQ(pk.bins_used, 1) << to_string(h);
  }
  EXPECT_NEAR(vbp_gap(inst, zeros), 0.0, 1e-12);
}

TEST(Heuristics, IncompleteWhenOutOfBins) {
  auto inst = small(3, 1);
  std::vector<double> y = {0.9, 0.9, 0.9};
  auto ff = first_fit(inst, y);
  EXPECT_FALSE(ff.complete);
  EXPECT_EQ(ff.assignment[1], -1);
}

TEST(Heuristics, MultiDimensionalFitChecksEveryDim) {
  VbpInstance inst;
  inst.num_balls = 2;
  inst.num_bins = 2;
  inst.dims = 2;
  inst.capacity = 1.0;
  // Ball 0 = (0.9, 0.1), ball 1 = (0.05, 0.95): dim 1 overflows if共 placed
  // together (0.1 + 0.95 > 1).
  std::vector<double> y = {0.9, 0.1, 0.05, 0.95};
  auto ff = first_fit(inst, y);
  EXPECT_EQ(ff.assignment[0], 0);
  EXPECT_EQ(ff.assignment[1], 1);
}

TEST(Optimal, MatchesMilpOnRandomInstances) {
  xplain::util::Rng rng(100);
  for (int it = 0; it < 10; ++it) {
    const int n = rng.uniform_int(2, 6);
    auto inst = small(n, n);
    std::vector<double> y(n);
    for (auto& v : y) v = rng.uniform(0.05, 0.95);
    auto bnb = optimal_packing_bnb_1d(inst, y);
    auto milp = optimal_packing_milp(inst, y);
    ASSERT_TRUE(milp.proven);
    EXPECT_EQ(bnb.bins, milp.bins) << "iter " << it;
    EXPECT_TRUE(bnb.packing.valid(inst, y));
  }
}

TEST(Optimal, NeverWorseThanAnyHeuristicProperty) {
  xplain::util::Rng rng(200);
  for (int it = 0; it < 25; ++it) {
    const int n = rng.uniform_int(2, 9);
    auto inst = small(n, n);
    std::vector<double> y(n);
    for (auto& v : y) v = rng.uniform(0.0, 1.0);
    auto opt = optimal_packing(inst, y);
    for (auto h : {VbpHeuristic::kFirstFit, VbpHeuristic::kBestFit,
                   VbpHeuristic::kFirstFitDecreasing, VbpHeuristic::kNextFit}) {
      auto pk = run_heuristic(h, inst, y);
      ASSERT_TRUE(pk.complete);
      ASSERT_TRUE(pk.valid(inst, y)) << to_string(h);
      EXPECT_LE(opt.bins, pk.bins_used) << to_string(h) << " iter " << it;
    }
    // Volume lower bound.
    double vol = 0;
    for (double v : y) vol += v;
    EXPECT_GE(opt.bins, static_cast<int>(std::ceil(vol - 1e-9)));
  }
}

TEST(Optimal, GapNonNegativeAndBoundedProperty) {
  xplain::util::Rng rng(300);
  for (int it = 0; it < 20; ++it) {
    const int n = rng.uniform_int(2, 8);
    auto inst = small(n, n);
    std::vector<double> y(n);
    for (auto& v : y) v = rng.uniform(0.0, 1.2);  // clamp path exercised
    const double g = vbp_gap(inst, y);
    EXPECT_GE(g, 0.0);
    EXPECT_LE(g, n);  // can't use more than n bins
  }
}

// ---------------------------------------------------------------------------
// DSL face (Fig. 4b network + Fig. 1c rule).
// ---------------------------------------------------------------------------

TEST(FfNetwork, StructureMatchesFig4b) {
  auto inst = small(4, 3);
  auto ff = build_ff_network(inst);
  EXPECT_TRUE(ff.net.validate().empty());
  EXPECT_EQ(ff.net.input_sources().size(), 4u);  // one per ball
  EXPECT_EQ(ff.ball_bin_edges.size(), 4u);
  EXPECT_EQ(ff.ball_bin_edges[0].size(), 3u);
  // Ball sources enforce pick behavior (a ball goes to one bin).
  for (auto b : ff.ball_nodes)
    EXPECT_EQ(ff.net.node(b).source_behavior,
              xplain::flowgraph::NodeKind::kPick);
}

TEST(FfNetwork, RejectsMultiDim) {
  VbpInstance inst;
  inst.num_balls = 2;
  inst.num_bins = 2;
  inst.dims = 2;
  EXPECT_THROW(build_ff_network(inst), std::invalid_argument);
}

TEST(FfNetwork, FirstFitRuleMatchesSimulation) {
  auto inst = small(4, 4);
  xplain::model::HelperConfig hcfg;
  hcfg.big_m = 10;
  hcfg.eps = 1e-3;
  xplain::util::Rng rng(42);
  for (int it = 0; it < 6; ++it) {
    std::vector<double> y(inst.num_balls);
    // Centi-grid sizes stay clear of the eps boundary.
    for (auto& v : y) v = rng.uniform_int(1, 99) / 100.0;
    auto sim = first_fit(inst, y);
    ASSERT_TRUE(sim.complete);

    auto ffn = build_ff_network(inst);
    auto c = xplain::flowgraph::compile(ffn.net);
    auto alpha = add_first_fit_rule(c, ffn, inst, hcfg);
    fix_sizes(c, ffn, y);
    auto r = c.model.solve();
    ASSERT_EQ(r.status, xs::Status::kOptimal) << "iter " << it;
    for (int i = 0; i < inst.num_balls; ++i)
      for (int j = 0; j < inst.num_bins; ++j) {
        const double placed = r.x[c.flow(ffn.ball_bin_edges[i][j]).index];
        const double expect = sim.assignment[i] == j ? y[i] : 0.0;
        EXPECT_NEAR(placed, expect, 1e-4)
            << "iter " << it << " ball " << i << " bin " << j;
      }
    // alpha is one-hot per ball and matches the simulated assignment.
    for (int i = 0; i < inst.num_balls; ++i) {
      double total = 0;
      for (int j = 0; j < inst.num_bins; ++j) {
        total += r.x[alpha[i][j].index];
        if (sim.assignment[i] == j)
          EXPECT_NEAR(r.x[alpha[i][j].index], 1.0, 1e-6);
      }
      EXPECT_NEAR(total, 1.0, 1e-6);
    }
  }
}

TEST(FfNetwork, PackingToFlowsRoundTrip) {
  auto inst = small(4, 3);
  std::vector<double> y = {0.01, 0.49, 0.51, 0.51};
  auto ffn = build_ff_network(inst);
  auto pk = first_fit(inst, y);
  auto flows = ff_network_flows(ffn, inst, y, pk);
  ASSERT_EQ(static_cast<int>(flows.size()), ffn.net.num_edges());
  // Bin 0 holds balls 0 and 1: occupancy edge carries 0.50.
  EXPECT_NEAR(flows[ffn.occupancy_edges[0].v], 0.50, 1e-12);
  EXPECT_NEAR(flows[ffn.ball_bin_edges[0][0].v], 0.01, 1e-12);
  EXPECT_NEAR(flows[ffn.ball_bin_edges[2][1].v], 0.51, 1e-12);
}
