// Box geometry edge cases (satellite of the HeuristicCase redesign):
// empty intersections, boundary tolerance, zero-volume boxes.
#include <gtest/gtest.h>

#include "analyzer/evaluator.h"

using xplain::analyzer::Box;

TEST(BoxGeometry, IntersectDisjointIsEmpty) {
  Box a{{0, 0}, {1, 1}};
  Box b{{2, 2}, {3, 3}};
  auto c = a.intersect(b);
  EXPECT_TRUE(c.empty());
  EXPECT_DOUBLE_EQ(c.volume(), 0.0);
}

TEST(BoxGeometry, IntersectPartialOverlapPerDimension) {
  // Overlaps in dim 0 but not in dim 1: still empty.
  Box a{{0, 0}, {2, 1}};
  Box b{{1, 5}, {3, 6}};
  auto c = a.intersect(b);
  EXPECT_TRUE(c.empty());
  // The overlapping dimension is still computed correctly.
  EXPECT_DOUBLE_EQ(c.lo[0], 1.0);
  EXPECT_DOUBLE_EQ(c.hi[0], 2.0);
}

TEST(BoxGeometry, IntersectTouchingFacesIsZeroVolumeNotEmpty) {
  // Shared face: lo == hi in one dimension — a degenerate but non-empty box.
  Box a{{0, 0}, {1, 1}};
  Box b{{1, 0}, {2, 1}};
  auto c = a.intersect(b);
  EXPECT_FALSE(c.empty());
  EXPECT_DOUBLE_EQ(c.volume(), 0.0);
  EXPECT_TRUE(c.contains({1.0, 0.5}));
}

TEST(BoxGeometry, ContainsToleranceAtBoundary) {
  Box a{{0, 0}, {1, 1}};
  EXPECT_TRUE(a.contains({1.0, 1.0}));           // boundary is inside
  EXPECT_FALSE(a.contains({1.0 + 1e-9, 0.5}));   // just outside, no tol
  EXPECT_TRUE(a.contains({1.0 + 1e-9, 0.5}, 1e-8));   // inside with tol
  EXPECT_FALSE(a.contains({1.0 + 1e-7, 0.5}, 1e-8));  // beyond tol
  EXPECT_TRUE(a.contains({-1e-9, 0.5}, 1e-8));        // low side symmetric
}

TEST(BoxGeometry, ContainsRejectsDimensionMismatch) {
  Box a{{0, 0}, {1, 1}};
  EXPECT_FALSE(a.contains({0.5}));
  EXPECT_FALSE(a.contains({0.5, 0.5, 0.5}));
}

TEST(BoxGeometry, ZeroVolumeBoxBehaves) {
  // A point box: contains exactly itself, zero volume, center == the point.
  Box p{{0.5, 0.5}, {0.5, 0.5}};
  EXPECT_FALSE(p.empty());
  EXPECT_DOUBLE_EQ(p.volume(), 0.0);
  EXPECT_TRUE(p.contains({0.5, 0.5}));
  EXPECT_FALSE(p.contains({0.5, 0.500001}));
  auto c = p.center();
  EXPECT_DOUBLE_EQ(c[0], 0.5);
  EXPECT_DOUBLE_EQ(c[1], 0.5);
}

TEST(BoxGeometry, EmptyZeroDimBox) {
  // The default box has no dimensions: empty by convention.
  Box none;
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(none.dim(), 0);
  // Volume of the empty product is 1.0 by convention, but it is unusable:
  // contains() rejects every point of positive dimension.
  EXPECT_FALSE(none.contains({0.0}));
}

TEST(BoxGeometry, IntersectWithSelfIsIdentity) {
  Box a{{0, 1, 2}, {3, 4, 5}};
  auto c = a.intersect(a);
  EXPECT_EQ(c.lo, a.lo);
  EXPECT_EQ(c.hi, a.hi);
  EXPECT_DOUBLE_EQ(c.volume(), a.volume());
}

TEST(BoxGeometry, InvertedBoxIsEmptyAndVolumeClamps) {
  Box inv{{1, 0}, {0, 1}};  // lo > hi in dim 0
  EXPECT_TRUE(inv.empty());
  EXPECT_DOUBLE_EQ(inv.volume(), 0.0);  // negative extents clamp to 0
}
