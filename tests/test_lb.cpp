// Tests for the load-balancing domain: instance plumbing (skew dimension),
// the WCMP local-greedy split, the model-layer optimal routing (LP and
// path-limited MILP), and WCMP-vs-optimal exactness on instances where the
// heuristic is provably optimal.
#include <gtest/gtest.h>

#include "analyzer/evaluator.h"
#include "lb/network.h"
#include "lb/optimal.h"
#include "lb/wcmp.h"
#include "scenario/scenario.h"
#include "util/random.h"

using namespace xplain;
using namespace xplain::lb;

namespace {

/// Two commodities with fully disjoint single paths: WCMP routes each on
/// its only path up to capacity, which is exactly what the optimal does.
LbInstance disjoint_instance() {
  te::Topology t(6);
  t.add_bidi(0, 1, 100);  // path of commodity A
  t.add_bidi(2, 3, 100);  // path of commodity B
  t.add_bidi(4, 5, 100);  // unused
  return LbInstance::make(std::move(t), {{0, 1}, {2, 3}}, /*k_paths=*/2,
                          /*t_max=*/150.0);
}

/// The canonical WCMP failure, hand-built: commodity A (1->2) has the
/// shared link 1-2 plus a private detour 1-3-2; commodity B (0->2) can
/// only go through the shared link.  A's proportional split wastes half
/// of the shared link although its detour could carry everything, so B
/// drops traffic the optimal routes.
LbInstance contended_instance() {
  te::Topology t(4);
  t.add_bidi(0, 1, 100);
  t.add_bidi(1, 2, 100);  // the shared link
  t.add_bidi(1, 3, 100);
  t.add_bidi(3, 2, 100);  // A's private detour
  LbInstance inst;
  inst.topo = std::move(t);
  inst.t_max = 100.0;
  LbCommodity a;
  a.src = 1;
  a.dst = 2;
  a.paths = {te::Path{{1, 2}}, te::Path{{1, 3, 2}}};
  LbCommodity b;
  b.src = 0;
  b.dst = 2;
  b.paths = {te::Path{{0, 1, 2}}};  // no alternative
  inst.commodities = {a, b};
  return inst;
}

}  // namespace

TEST(LbInstance, MakeComputesPathsAndDropsUnreachable) {
  te::Topology t(4);
  t.add_bidi(0, 1, 10);
  t.add_bidi(1, 2, 10);
  // Node 3 is isolated: the 0~>3 commodity must be dropped.
  auto inst = LbInstance::make(std::move(t), {{0, 2}, {0, 3}}, 3, 50.0);
  ASSERT_EQ(inst.num_commodities(), 1);
  EXPECT_EQ(inst.commodities[0].dst, 2);
  EXPECT_FALSE(inst.has_skew_dim());
  EXPECT_EQ(inst.input_dim(), 1);
}

TEST(LbInstance, SkewDimensionAndEffectiveCapacities) {
  te::Topology t(3);
  t.add_bidi(0, 1, 100);
  t.add_bidi(1, 2, 200);  // top tier
  auto inst = LbInstance::make(std::move(t), {{0, 2}}, 2, 50.0);
  inst.skew_top_tier(0.5, 1.0);
  ASSERT_TRUE(inst.has_skew_dim());
  EXPECT_EQ(inst.input_dim(), 2);
  // Only the 200-capacity links are marked.
  const auto caps = inst.effective_capacities(0.5);
  for (int l = 0; l < inst.topo.num_links(); ++l) {
    const double base = inst.topo.link(te::LinkId{l}).capacity;
    EXPECT_DOUBLE_EQ(caps[l], base == 200.0 ? 100.0 : base);
  }
  EXPECT_DOUBLE_EQ(inst.skew_of({25.0, 0.75}), 0.75);
}

TEST(Wcmp, RoutesEverythingOnDisjointPaths) {
  auto inst = disjoint_instance();
  const std::vector<double> x{80.0, 120.0};
  auto res = wcmp_split(inst, x);
  EXPECT_NEAR(res.total, 180.0, 1e-9);
  EXPECT_NEAR(res.unmet[0], 0.0, 1e-9);
  EXPECT_NEAR(res.unmet[1], 20.0, 1e-9);  // 120 offered on a 100 link
}

TEST(Wcmp, NeverExceedsCapacitiesProperty) {
  scenario::ScenarioSpec spec;
  spec.kind = scenario::TopologyKind::kFatTree;
  spec.size = 4;
  auto inst = scenario::make_lb_instance(spec, 8, 3, 100.0, 0.25, 1.0);
  util::Rng rng(5);
  analyzer::Box box;
  box.lo.assign(inst.input_dim(), 0.0);
  box.hi.assign(inst.input_dim(), inst.t_max);
  box.lo.back() = inst.skew_lo;
  box.hi.back() = inst.skew_hi;
  for (int it = 0; it < 30; ++it) {
    const auto x = rng.uniform_point(box.lo, box.hi);
    const auto res = wcmp_split(inst, x);
    const auto caps = inst.effective_capacities(inst.skew_of(x));
    for (std::size_t l = 0; l < caps.size(); ++l)
      EXPECT_LE(res.link_load[l], caps[l] + 1e-6) << "link " << l;
  }
}

TEST(LbOptimal, MatchesWcmpOnProvablyOptimalInstances) {
  // Disjoint single paths: WCMP is exactly optimal, so the gap is 0 across
  // the whole input box (the WCMP-vs-MILP exactness check).
  auto inst = disjoint_instance();
  util::Rng rng(7);
  for (int it = 0; it < 40; ++it) {
    std::vector<double> x(2);
    for (auto& v : x) v = rng.uniform(0.0, inst.t_max);
    const auto heur = wcmp_split(inst, x);
    const auto opt = solve_lb_optimal(inst, x);
    ASSERT_TRUE(opt.feasible);
    EXPECT_NEAR(heur.total, opt.total, 1e-6) << "at it " << it;
    EXPECT_NEAR(lb_gap(inst, x), 0.0, 1e-6);
  }
}

TEST(LbOptimal, GapIsNonNegativeProperty) {
  auto inst = contended_instance();
  util::Rng rng(9);
  for (int it = 0; it < 40; ++it) {
    std::vector<double> x(inst.input_dim());
    for (auto& v : x) v = rng.uniform(0.0, inst.t_max);
    EXPECT_GE(lb_gap(inst, x), -1e-6);
  }
}

TEST(LbOptimal, ContentionProducesAPositiveGap) {
  // At full rates: A splits 50/50 across its two equal-headroom paths,
  // leaving B only 50 on the shared link; the optimal sends A entirely on
  // the detour and routes everything.  WCMP 150 vs OPT 200.
  auto inst = contended_instance();
  std::vector<double> x(inst.input_dim(), inst.t_max);
  const auto heur = wcmp_split(inst, x);
  const auto opt = solve_lb_optimal(inst, x);
  EXPECT_NEAR(heur.total, 150.0, 1e-6);
  EXPECT_NEAR(opt.total, 200.0, 1e-6);
  EXPECT_NEAR(lb_gap(inst, x), 50.0, 1e-6);
}

TEST(LbOptimalSolver, MatchesModelLayerSolveAndIsPure) {
  // The warm-started structure cache must agree with the model-layer
  // encoding everywhere, and history must not change its answers (the
  // property the per-thread evaluator cache relies on).
  scenario::ScenarioSpec spec;
  spec.kind = scenario::TopologyKind::kFatTree;
  spec.size = 4;
  auto inst = scenario::make_lb_instance(spec, 6, 3, 100.0, 0.25, 1.0);
  LbOptimalSolver cached(inst), fresh(inst);
  util::Rng rng(13);
  analyzer::Box box;
  box.lo.assign(inst.input_dim(), 0.0);
  box.hi.assign(inst.input_dim(), inst.t_max);
  box.lo.back() = inst.skew_lo;
  box.hi.back() = inst.skew_hi;
  for (int it = 0; it < 25; ++it) {
    const auto x = rng.uniform_point(box.lo, box.hi);
    const auto reference = solve_lb_optimal(inst, x);
    ASSERT_TRUE(reference.feasible);
    EXPECT_NEAR(cached.solve_total(x), reference.total, 1e-6) << "it " << it;
    EXPECT_NEAR(lb_gap_cached(inst, x, cached), lb_gap(inst, x), 1e-6);
  }
  // Purity: a solver with different history answers bitwise identically.
  const std::vector<double> probe = rng.uniform_point(box.lo, box.hi);
  EXPECT_EQ(cached.solve_total(probe), fresh.solve_total(probe));
}

TEST(LbOptimal, PathLimitedMilpIsExactAndBounded) {
  auto inst = contended_instance();
  const std::vector<double> x{60.0, 60.0};
  const auto unrestricted = solve_lb_optimal(inst, x);
  LbOptimalOptions limited;
  limited.max_paths_per_commodity = 1;
  const auto restricted = solve_lb_optimal(inst, x, limited);
  ASSERT_TRUE(unrestricted.feasible);
  ASSERT_TRUE(restricted.feasible);
  // Restricting active paths can only lose routed traffic.
  EXPECT_LE(restricted.total, unrestricted.total + 1e-6);
  // Each commodity really uses at most one path.
  for (const auto& flows : restricted.flow) {
    int active = 0;
    for (double f : flows) active += f > 1e-6;
    EXPECT_LE(active, 1);
  }
}

TEST(LbNetwork, StructureAndFlowMapping) {
  auto inst = contended_instance();
  auto lbn = build_lb_network(inst);
  // Sinks (met/unmet) + link nodes + per-commodity source + path nodes.
  int paths = 0;
  for (const auto& c : inst.commodities) paths += static_cast<int>(c.paths.size());
  EXPECT_EQ(lbn.net.num_nodes(),
            2 + inst.topo.num_links() + inst.num_commodities() + paths);
  const auto problems = lbn.net.validate();
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems[0]);

  const std::vector<double> x{80.0, 40.0};
  const auto res = wcmp_split(inst, x);
  const auto flows = lb_network_flows(lbn, inst, x, res.flow);
  ASSERT_EQ(static_cast<int>(flows.size()), lbn.net.num_edges());
  // Unmet edges carry offered - routed.
  for (int k = 0; k < inst.num_commodities(); ++k)
    EXPECT_NEAR(flows[lbn.unmet_edges[k].v], res.unmet[k], 1e-9);
  // Link edges aggregate the per-path loads.
  for (int l = 0; l < inst.topo.num_links(); ++l)
    EXPECT_NEAR(flows[lbn.link_edges[l].v], res.link_load[l], 1e-9);
}
