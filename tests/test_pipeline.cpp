// End-to-end pipeline tests (Fig. 3 wiring): both case studies produce
// significant subspaces with coherent explanations.
#include <gtest/gtest.h>

#include "xplain/pipeline.h"

using namespace xplain;

TEST(Pipeline, DpEndToEnd) {
  auto inst = te::TeInstance::fig1a_example();
  PipelineOptions opts;
  opts.min_gap = 40.0;
  opts.subspace.max_subspaces = 2;
  opts.explain.samples = 250;
  auto out = run_dp_pipeline(inst, te::DpConfig{50.0}, opts);

  ASSERT_GE(out.result.subspaces.size(), 1u);
  ASSERT_EQ(out.result.explanations.size(), out.result.subspaces.size());
  const auto& sub = out.result.subspaces[0];
  EXPECT_TRUE(sub.significant);
  EXPECT_LT(sub.p_value, 0.05);
  EXPECT_GE(sub.seed_gap, 40.0);
  EXPECT_GT(sub.mean_gap_inside, sub.mean_gap_outside);

  // Type-1 sanity: the pinnable demand's dimension is bounded by ~T inside
  // the subspace (DP only misbehaves when it can pin).
  EXPECT_LE(sub.region.box.lo[0], 50.0 + 1e-6);

  // Type-2 sanity: somewhere the benchmark-only signal exists.
  const auto& ex = out.result.explanations[0];
  double max_heat = -1, min_heat = 1;
  for (const auto& e : ex.edges) {
    max_heat = std::max(max_heat, e.heat);
    min_heat = std::min(min_heat, e.heat);
  }
  EXPECT_GT(max_heat, 0.3) << "some edge must be benchmark-preferred";
  EXPECT_LT(min_heat, -0.3) << "some edge must be heuristic-only";
  EXPECT_GT(out.result.wall_seconds, 0.0);
}

TEST(Pipeline, FfEndToEnd) {
  vbp::VbpInstance inst;
  inst.num_balls = 4;
  inst.num_bins = 3;
  inst.dims = 1;
  inst.capacity = 1.0;
  PipelineOptions opts;
  opts.min_gap = 1.0;
  opts.subspace.max_subspaces = 2;
  opts.explain.samples = 200;
  auto out = run_ff_pipeline(inst, opts);

  ASSERT_GE(out.result.subspaces.size(), 1u);
  const auto& sub = out.result.subspaces[0];
  EXPECT_TRUE(sub.significant);
  EXPECT_GE(sub.seed_gap, 1.0);  // at least one extra bin
  EXPECT_GE(out.result.explanations[0].samples_used, 50);
}

TEST(Pipeline, TraceAccountsForWork) {
  auto inst = te::TeInstance::fig1a_example();
  PipelineOptions opts;
  opts.min_gap = 40.0;
  opts.subspace.max_subspaces = 1;
  opts.explain.samples = 50;
  auto out = run_dp_pipeline(inst, te::DpConfig{50.0}, opts);
  EXPECT_GE(out.result.trace.analyzer_calls, 1);
  EXPECT_GT(out.result.trace.gap_evaluations, 100);
}
