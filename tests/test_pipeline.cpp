// End-to-end pipeline tests (Fig. 3 wiring) through the HeuristicCase API:
// all three registered case studies produce significant subspaces with
// coherent explanations, stage timings are populated, and the deprecated
// DP/FF shims still work.
#include <gtest/gtest.h>

#include "cases/dp_case.h"
#include "xplain/pipeline.h"

using namespace xplain;

TEST(Pipeline, DpEndToEndViaRegistry) {
  auto c = registry().find("demand_pinning");
  ASSERT_NE(c, nullptr);
  PipelineOptions opts;
  opts.min_gap = 40.0;
  opts.subspace.max_subspaces = 2;
  opts.explain.samples = 250;
  auto result = run_pipeline(*c, opts);

  EXPECT_EQ(result.case_name, "demand_pinning");
  ASSERT_GE(result.subspaces.size(), 1u);
  ASSERT_EQ(result.explanations.size(), result.subspaces.size());
  const auto& sub = result.subspaces[0];
  EXPECT_TRUE(sub.significant);
  EXPECT_LT(sub.p_value, 0.05);
  EXPECT_GE(sub.seed_gap, 40.0);
  EXPECT_GT(sub.mean_gap_inside, sub.mean_gap_outside);

  // Type-1 sanity: the pinnable demand's dimension is bounded by ~T inside
  // the subspace (DP only misbehaves when it can pin).
  EXPECT_LE(sub.region.box.lo[0], 50.0 + 1e-6);

  // Type-2 sanity: somewhere the benchmark-only signal exists.
  const auto& ex = result.explanations[0];
  double max_heat = -1, min_heat = 1;
  for (const auto& e : ex.edges) {
    max_heat = std::max(max_heat, e.heat);
    min_heat = std::min(min_heat, e.heat);
  }
  EXPECT_GT(max_heat, 0.3) << "some edge must be benchmark-preferred";
  EXPECT_LT(min_heat, -0.3) << "some edge must be heuristic-only";
  EXPECT_GT(result.wall_seconds, 0.0);
}

TEST(Pipeline, FfEndToEndViaRegistry) {
  auto c = registry().find("first_fit");
  ASSERT_NE(c, nullptr);
  PipelineOptions opts;
  opts.min_gap = 1.0;
  opts.subspace.max_subspaces = 2;
  opts.explain.samples = 200;
  auto result = run_pipeline(*c, opts);

  ASSERT_GE(result.subspaces.size(), 1u);
  const auto& sub = result.subspaces[0];
  EXPECT_TRUE(sub.significant);
  EXPECT_GE(sub.seed_gap, 1.0);  // at least one extra bin
  EXPECT_GE(result.explanations[0].samples_used, 50);
}

TEST(Pipeline, BestFitThirdCaseEndToEnd) {
  // The extensibility acceptance: Best-Fit runs through the identical
  // pipeline, purely via its registration in src/cases/bf_case.cpp.
  auto c = registry().find("best_fit");
  ASSERT_NE(c, nullptr);
  PipelineOptions opts;
  opts.min_gap = 1.0;
  opts.subspace.max_subspaces = 2;
  opts.explain.samples = 200;
  auto result = run_pipeline(*c, opts);

  ASSERT_GE(result.subspaces.size(), 1u);
  EXPECT_TRUE(result.subspaces[0].significant);
  EXPECT_GE(result.subspaces[0].seed_gap, 1.0);
  ASSERT_EQ(result.explanations.size(), result.subspaces.size());
  EXPECT_GE(result.explanations[0].samples_used, 50);
}

TEST(Pipeline, WcmpFourthCaseEndToEnd) {
  // The new-subsystem acceptance: the WCMP load-balancing case — a domain
  // from a different family than DP/FF/BF, on a generated fat-tree(4)
  // scenario — runs the identical pipeline purely via its registration in
  // src/cases/lb_case.cpp.
  auto c = registry().find("wcmp");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->input_box().dim(), 9);  // 8 commodity rates + cap_skew
  PipelineOptions opts;
  opts.min_gap = 20.0;
  opts.subspace.max_subspaces = 1;
  opts.explain.samples = 150;
  auto result = run_pipeline(*c, opts);

  EXPECT_EQ(result.case_name, "wcmp");
  ASSERT_GE(result.subspaces.size(), 1u);
  const auto& sub = result.subspaces[0];
  EXPECT_TRUE(sub.significant);
  EXPECT_GE(sub.seed_gap, 20.0);
  EXPECT_GT(sub.mean_gap_inside, sub.mean_gap_outside);
  ASSERT_EQ(result.explanations.size(), result.subspaces.size());
  EXPECT_GE(result.explanations[0].samples_used, 50);
  // Type-2 sanity: under contention some edge must be benchmark-preferred
  // (the optimal's detours) — the WCMP analogue of the DP heat check.
  double max_heat = -1;
  for (const auto& e : result.explanations[0].edges)
    max_heat = std::max(max_heat, e.heat);
  EXPECT_GT(max_heat, 0.3);
  // Type-3 feed is wired: LB features are exported.
  EXPECT_EQ(result.features.count("shared_link_degree"), 1u);
  EXPECT_EQ(result.features.count("skew_span"), 1u);
}

TEST(Pipeline, StageTimesArePopulated) {
  auto c = registry().find("demand_pinning");
  ASSERT_NE(c, nullptr);
  PipelineOptions opts;
  opts.min_gap = 40.0;
  opts.subspace.max_subspaces = 1;
  opts.explain.samples = 50;
  auto result = run_pipeline(*c, opts);
  EXPECT_GE(result.trace.analyzer_calls, 1);
  EXPECT_GT(result.trace.gap_evaluations, 100);
  EXPECT_GT(result.stages.analyze_seconds, 0.0);
  EXPECT_GT(result.stages.subspace_seconds, 0.0);
  EXPECT_GT(result.stages.explain_seconds, 0.0);
  EXPECT_LE(result.stages.total(), result.wall_seconds + 1e-6);
}

TEST(Pipeline, CustomCaseInstanceWithoutRegistry) {
  // Cases are plain objects too: a custom instance bypasses the registry.
  auto inst = te::TeInstance::fig1a_example();
  cases::DpCase c(inst, te::DpConfig{50.0});
  PipelineOptions opts;
  opts.min_gap = 40.0;
  opts.subspace.max_subspaces = 1;
  opts.explain.samples = 100;
  auto result = run_pipeline(c, opts);
  ASSERT_GE(result.subspaces.size(), 1u);
  EXPECT_FALSE(result.features.empty());
  EXPECT_DOUBLE_EQ(result.gap_scale, inst.d_max);
}

// The shims are [[deprecated]] by design; this test is their one sanctioned
// caller.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(PipelineCompat, DeprecatedDpFfShimsStillRun) {
  auto inst = te::TeInstance::fig1a_example();
  PipelineOptions opts;
  opts.min_gap = 40.0;
  opts.subspace.max_subspaces = 1;
  opts.explain.samples = 50;
  auto dp = run_dp_pipeline(inst, te::DpConfig{50.0}, opts);
  ASSERT_GE(dp.result.subspaces.size(), 1u);
  EXPECT_GT(dp.network.net.num_edges(), 0);

  vbp::VbpInstance vinst;
  vinst.num_balls = 4;
  vinst.num_bins = 3;
  vinst.dims = 1;
  vinst.capacity = 1.0;
  PipelineOptions ff_opts = opts;
  ff_opts.min_gap = 1.0;  // FF gaps are whole bins, not demand units
  auto ff = run_ff_pipeline(vinst, ff_opts);
  ASSERT_GE(ff.result.subspaces.size(), 1u);
  EXPECT_GT(ff.network.net.num_edges(), 0);
}
#pragma GCC diagnostic pop
