// Tests for the scenario corpus: generated shapes have the expected
// structure, and generation is a pure function of the ScenarioSpec — the
// same spec yields bitwise-identical topologies and instances no matter
// how many worker threads are building scenarios concurrently.
#include <gtest/gtest.h>

#include <vector>

#include "scenario/scenario.h"
#include "scenario/spec_json.h"
#include "te/paths.h"
#include "util/parallel.h"

using namespace xplain;
using namespace xplain::scenario;

namespace {

bool same_topology(const te::Topology& a, const te::Topology& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_links() != b.num_links())
    return false;
  for (int l = 0; l < a.num_links(); ++l) {
    const auto& la = a.link(te::LinkId{l});
    const auto& lb = b.link(te::LinkId{l});
    if (la.from != lb.from || la.to != lb.to || la.capacity != lb.capacity)
      return false;  // capacity compared bitwise on purpose
  }
  return true;
}

}  // namespace

TEST(Scenario, FatTreeShape) {
  ScenarioSpec spec;
  spec.kind = TopologyKind::kFatTree;
  spec.size = 4;
  auto t = build_topology(spec);
  // k=4: 4 cores + 4 pods x (2 agg + 2 edge) = 20 switches; each pod has
  // 4 edge-agg links + 4 agg-core links, bidirectional.
  EXPECT_EQ(t.num_nodes(), 20);
  EXPECT_EQ(t.num_links(), 2 * (4 * 4 + 4 * 4));
  // Every edge switch reaches every other — no partitions.
  auto inst = make_te_instance(spec, /*num_pairs=*/6, /*k_paths=*/2, 100.0);
  EXPECT_EQ(inst.num_pairs(), 6);
  // Inter-pod edge pairs see multiple candidate paths (ECMP diversity).
  for (const auto& pair : inst.pairs) EXPECT_GE(pair.paths.size(), 1u);
}

TEST(Scenario, WaxmanIsConnectedAndCapacitiesInRange) {
  ScenarioSpec spec;
  spec.kind = TopologyKind::kWaxman;
  spec.size = 14;
  spec.seed = 9;
  auto t = build_topology(spec);
  EXPECT_EQ(t.num_nodes(), 14);
  EXPECT_GE(t.num_links(), 2 * 13);  // at least the spanning tree
  for (const auto& l : t.links()) {
    EXPECT_GE(l.capacity, 0.5 * spec.capacity);
    EXPECT_LE(l.capacity, spec.capacity);
  }
  for (int v = 1; v < t.num_nodes(); ++v)
    EXPECT_FALSE(te::shortest_path(t, 0, v).empty()) << "node " << v;
}

TEST(Scenario, LineAndStarShapes) {
  ScenarioSpec line;
  line.kind = TopologyKind::kLine;
  line.size = 6;
  EXPECT_EQ(build_topology(line).num_links(), 2 * 5);
  ScenarioSpec star;
  star.kind = TopologyKind::kStar;
  star.size = 8;
  auto t = build_topology(star);
  EXPECT_EQ(t.num_links(), 2 * 7);
  // Every spoke pair routes through the hub: path length 2.
  EXPECT_EQ(te::shortest_path(t, 1, 7).hops(), 2);
}

TEST(Scenario, SameSeedSameTopologyAcrossWorkerCounts) {
  // Build the same randomized spec on 1 and 8 concurrent workers; every
  // copy must be bitwise identical (generation derives all randomness from
  // the spec alone).
  ScenarioSpec spec;
  spec.kind = TopologyKind::kWaxman;
  spec.size = 16;
  spec.seed = 1234;
  const te::Topology reference = build_topology(spec);
  for (int workers : {1, 8}) {
    std::vector<te::Topology> built(16);
    util::parallel_chunks(built.size(), workers,
                          [&](std::size_t begin, std::size_t end, int) {
                            for (std::size_t i = begin; i < end; ++i)
                              built[i] = build_topology(spec);
                          });
    for (const auto& t : built) EXPECT_TRUE(same_topology(reference, t));
  }
}

TEST(Scenario, DifferentSeedsDifferentTopologies) {
  ScenarioSpec a, b;
  a.kind = b.kind = TopologyKind::kWaxman;
  a.size = b.size = 16;
  a.seed = 1;
  b.seed = 2;
  EXPECT_FALSE(same_topology(build_topology(a), build_topology(b)));
}

TEST(Scenario, LbInstanceIsDeterministicAndSkewed) {
  ScenarioSpec spec;
  spec.kind = TopologyKind::kFatTree;
  spec.size = 4;
  auto a = make_lb_instance(spec, 8, 3, 100.0, 0.25, 1.0);
  auto b = make_lb_instance(spec, 8, 3, 100.0, 0.25, 1.0);
  ASSERT_EQ(a.num_commodities(), b.num_commodities());
  EXPECT_EQ(a.num_commodities(), 8);
  for (int k = 0; k < a.num_commodities(); ++k) {
    EXPECT_EQ(a.commodities[k].src, b.commodities[k].src);
    EXPECT_EQ(a.commodities[k].dst, b.commodities[k].dst);
    ASSERT_EQ(a.commodities[k].paths.size(), b.commodities[k].paths.size());
    for (std::size_t p = 0; p < a.commodities[k].paths.size(); ++p)
      EXPECT_EQ(a.commodities[k].paths[p], b.commodities[k].paths[p]);
  }
  // The skewed tier is the agg-core uplinks (2x the edge capacity).
  ASSERT_TRUE(a.has_skew_dim());
  for (int l = 0; l < a.topo.num_links(); ++l)
    EXPECT_EQ(a.skewed[l],
              a.topo.link(te::LinkId{l}).capacity == 2.0 * spec.capacity);
  EXPECT_EQ(a.input_dim(), 9);
}

TEST(Scenario, FailureSpecsGenerateDeterministically) {
  ScenarioSpec spec;
  spec.kind = TopologyKind::kFatTree;
  spec.size = 4;
  spec.failed_links = 2;
  spec.capacity_degradation = 0.7;
  const te::Topology healthy = build_topology([&] {
    ScenarioSpec h = spec;
    h.failed_links = 0;
    h.capacity_degradation = 1.0;
    return h;
  }());
  const te::Topology reference = build_topology(spec);
  // Two physical links fail = four directed links gone; survivors keep
  // exactly 0.7x their healthy capacity, and the fabric stays connected.
  EXPECT_EQ(reference.num_links(), healthy.num_links() - 2 * 2);
  for (const auto& l : reference.links()) {
    const bool edge_tier = l.capacity == 0.7 * spec.capacity;
    const bool core_tier = l.capacity == 0.7 * (2.0 * spec.capacity);
    EXPECT_TRUE(edge_tier || core_tier) << l.capacity;
  }
  for (int v = 1; v < reference.num_nodes(); ++v)
    EXPECT_FALSE(te::shortest_path(reference, 0, v).empty()) << "node " << v;
  // Bitwise identical on any worker count, like every other generator.
  for (int workers : {1, 8}) {
    std::vector<te::Topology> built(16);
    util::parallel_chunks(built.size(), workers,
                          [&](std::size_t begin, std::size_t end, int) {
                            for (std::size_t i = begin; i < end; ++i)
                              built[i] = build_topology(spec);
                          });
    for (const auto& t : built) EXPECT_TRUE(same_topology(reference, t));
  }
  // The failure dimensions flow through to the instances.
  auto lb = make_lb_instance(spec, 8, 3, 100.0, 0.25, 1.0);
  EXPECT_GT(lb.num_commodities(), 0);
  EXPECT_EQ(lb.topo.num_links(), reference.num_links());
  auto t = make_te_instance(spec, 6, 2, 100.0);
  EXPECT_EQ(t.topo.num_links(), reference.num_links());
}

TEST(Scenario, FailuresNeverDisconnect) {
  // Every star link is a bridge: requesting failures must remove nothing.
  ScenarioSpec star;
  star.kind = TopologyKind::kStar;
  star.size = 8;
  star.failed_links = 3;
  EXPECT_EQ(build_topology(star).num_links(), 2 * 7);
  // A Waxman WAN loses at most the requested count and stays connected.
  ScenarioSpec wax;
  wax.kind = TopologyKind::kWaxman;
  wax.size = 12;
  wax.seed = 7;
  wax.failed_links = 3;
  const te::Topology t = build_topology(wax);
  for (int v = 1; v < t.num_nodes(); ++v)
    EXPECT_FALSE(te::shortest_path(t, 0, v).empty()) << "node " << v;
}

TEST(Scenario, FailureFieldsExtendKeysOnlyWhenActive) {
  // Healthy specs keep the exact pre-failure-dimension key and label (the
  // committed bench baselines embed them).
  ScenarioSpec healthy;
  healthy.kind = TopologyKind::kFatTree;
  healthy.size = 4;
  EXPECT_EQ(healthy.display_name(), "fat_tree_k4_s1");
  EXPECT_EQ(healthy.cache_key().find("_f"), std::string::npos);
  ScenarioSpec failed = healthy;
  failed.failed_links = 2;
  failed.capacity_degradation = 0.5;
  EXPECT_NE(failed.cache_key(), healthy.cache_key());
  EXPECT_NE(failed.display_name(), healthy.display_name());
  EXPECT_NE(failed.display_name().find("_f2"), std::string::npos);
  EXPECT_NE(failed.display_name().find("_d"), std::string::npos);
  ScenarioSpec degraded_only = healthy;
  degraded_only.capacity_degradation = 0.5;
  EXPECT_NE(degraded_only.cache_key(), healthy.cache_key());
  EXPECT_NE(degraded_only.cache_key(), failed.cache_key());
}

TEST(Scenario, SpecJsonRoundTripsByteForByte) {
  ScenarioSpec spec;
  spec.kind = TopologyKind::kWaxman;
  spec.size = 11;
  spec.capacity = 137.25;
  spec.waxman_alpha = 0.625;
  spec.waxman_beta = 0.4;
  spec.seed = 0xFFFFFFFFFFFFFFFFull;  // above 2^53: must survive as string
  spec.failed_links = 2;
  spec.capacity_degradation = 0.7;
  const std::string once = spec_to_json(spec).dump(2);
  const auto parsed = util::Json::parse(once);
  ASSERT_TRUE(parsed.has_value());
  const auto back = spec_from_json(*parsed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, spec.kind);
  EXPECT_EQ(back->size, spec.size);
  EXPECT_EQ(back->capacity, spec.capacity);
  EXPECT_EQ(back->seed, spec.seed);
  EXPECT_EQ(back->failed_links, spec.failed_links);
  EXPECT_EQ(back->capacity_degradation, spec.capacity_degradation);
  EXPECT_EQ(back->cache_key(), spec.cache_key());
  EXPECT_EQ(spec_to_json(*back).dump(2), once);
  // Unknown kinds are an error, not a silent default.
  std::string err;
  const auto bad = spec_from_json(*util::Json::parse("{\"kind\":\"torus\"}"),
                                  &err);
  EXPECT_FALSE(bad.has_value());
  EXPECT_NE(err.find("torus"), std::string::npos);
}

TEST(Scenario, DefaultCorpusCoversAllShapes) {
  const auto corpus = default_corpus();
  ASSERT_GE(corpus.size(), 4u);
  bool fat = false, wax = false, line = false, star = false;
  for (const auto& spec : corpus) {
    fat |= spec.kind == TopologyKind::kFatTree;
    wax |= spec.kind == TopologyKind::kWaxman;
    line |= spec.kind == TopologyKind::kLine;
    star |= spec.kind == TopologyKind::kStar;
    // Every corpus entry must yield a usable LB instance.
    auto inst = make_lb_instance(spec, 4, 2, 100.0);
    EXPECT_GT(inst.num_commodities(), 0) << spec.name();
  }
  EXPECT_TRUE(fat && wax && line && star);
}
