// Tests for the adversarial subspace generator: regions, sampling, the
// regression tree, significance checking, and the full generate() loop on
// a synthetic evaluator with *known planted* adversarial regions.
#include <gtest/gtest.h>

#include <cmath>

#include "analyzer/search_analyzer.h"
#include "subspace/subspace_generator.h"

using namespace xplain::subspace;
using namespace xplain::analyzer;

namespace {

// Synthetic evaluator with two planted adversarial boxes in [0,1]^2:
//   A = [0.1,0.3] x [0.6,0.9]  with gap 10,
//   B = [0.7,0.9] x [0.1,0.3]  with gap 6,
// and gap 0 elsewhere.  Ground truth for the generator.
class PlantedEvaluator : public GapEvaluator {
 public:
  int dim() const override { return 2; }
  Box input_box() const override { return Box{{0, 0}, {1, 1}}; }
  double gap(const std::vector<double>& x) const override {
    if (a_.contains(x)) return 10.0;
    if (b_.contains(x)) return 6.0;
    return 0.0;
  }
  std::string name() const override { return "planted"; }

  Box a_{{0.1, 0.6}, {0.3, 0.9}};
  Box b_{{0.7, 0.1}, {0.9, 0.3}};
};

}  // namespace

TEST(Region, HalfspaceAndPolytope) {
  Halfspace h{{1.0, -1.0}, 0.5};  // x0 - x1 <= 0.5
  EXPECT_TRUE(h.satisfied({0.6, 0.2}));
  EXPECT_FALSE(h.satisfied({0.9, 0.1}));
  Polytope p;
  p.box = Box{{0, 0}, {1, 1}};
  p.halfspaces.push_back(h);
  EXPECT_TRUE(p.contains({0.5, 0.5}));
  EXPECT_FALSE(p.contains({0.9, 0.1}));
  EXPECT_FALSE(p.contains({1.5, 0.5}));  // outside the box
  const std::string s = p.to_string({"a", "b"});
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(p.to_matrix_form().find("T (tree rows)"), std::string::npos);
}

TEST(Sampler, SamplesStayInBoxAndShellAvoidsInner) {
  PlantedEvaluator eval;
  xplain::util::Rng rng(1);
  Box box{{0.2, 0.2}, {0.4, 0.4}};
  auto samples = sample_box(eval, box, 100, rng);
  ASSERT_EQ(samples.size(), 100u);
  for (const auto& s : samples) EXPECT_TRUE(box.contains(s.x, 1e-12));

  Box inner{{0.25, 0.25}, {0.35, 0.35}};
  auto shell = sample_shell(eval, box, inner, 100, rng);
  for (const auto& s : shell) {
    EXPECT_TRUE(box.contains(s.x, 1e-12));
    EXPECT_FALSE(inner.contains(s.x));
  }
}

TEST(Sampler, BadDensityCountsThreshold) {
  std::vector<LabeledSample> ss = {{{0}, 1.0}, {{0}, 5.0}, {{0}, 0.0}};
  EXPECT_NEAR(bad_density(ss, 1.0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(bad_density(ss, 6.0), 0.0, 1e-12);
}

TEST(Tree, FitsStepFunction) {
  // y = 10 for x <= 0.5, else 0: one split suffices.
  std::vector<LabeledSample> samples;
  xplain::util::Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    double x = rng.uniform(0, 1);
    samples.push_back({{x}, x <= 0.5 ? 10.0 : 0.0});
  }
  auto tree = fit_regression_tree(samples);
  EXPECT_NEAR(tree.predict({0.2}), 10.0, 1e-9);
  EXPECT_NEAR(tree.predict({0.8}), 0.0, 1e-9);
  // The learned threshold is near 0.5.
  ASSERT_GE(tree.num_nodes(), 3);
  EXPECT_NEAR(tree.nodes()[0].threshold, 0.5, 0.05);
}

TEST(Tree, PathPredicatesDescribeLeafRegion) {
  std::vector<LabeledSample> samples;
  xplain::util::Rng rng(3);
  for (int i = 0; i < 600; ++i) {
    double x = rng.uniform(0, 1), y = rng.uniform(0, 1);
    const bool in = x > 0.4 && y <= 0.6;
    samples.push_back({{x, y}, in ? 5.0 : 0.0});
  }
  auto tree = fit_regression_tree(samples);
  std::vector<double> probe = {0.7, 0.3};  // inside the hot region
  auto preds = tree.path_predicates(probe);
  ASSERT_FALSE(preds.empty());
  // Every predicate on the path must hold at the probe...
  for (const auto& h : preds) EXPECT_TRUE(h.satisfied(probe));
  // ...and the leaf must predict the hot value.
  EXPECT_NEAR(tree.predict(probe), 5.0, 1.0);
}

TEST(Tree, RespectsDepthAndLeafLimits) {
  std::vector<LabeledSample> samples;
  xplain::util::Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    double x = rng.uniform(0, 1);
    samples.push_back({{x}, std::sin(20 * x)});  // wiggly: wants many splits
  }
  TreeOptions opts;
  opts.max_depth = 3;
  opts.min_samples_leaf = 40;
  auto tree = fit_regression_tree(samples, opts);
  EXPECT_LE(tree.depth(), 3);
  for (const auto& n : tree.nodes()) {
    if (n.feature < 0) {
      EXPECT_GE(n.count, 40);
    }
  }
}

TEST(Tree, EmptyAndConstantInputs) {
  EXPECT_EQ(fit_regression_tree({}).num_nodes(), 1);
  std::vector<LabeledSample> constant(50, {{0.5}, 3.0});
  auto tree = fit_regression_tree(constant);
  EXPECT_EQ(tree.depth(), 0);
  EXPECT_NEAR(tree.predict({0.1}), 3.0, 1e-12);
}

TEST(Significance, AcceptsPlantedRegionRejectsEmptyOne) {
  PlantedEvaluator eval;
  Polytope hot;
  hot.box = eval.a_;
  auto rep_hot = check_significance(eval, hot);
  EXPECT_TRUE(rep_hot.significant);
  EXPECT_LT(rep_hot.test.p_value, 0.05);
  EXPECT_GT(rep_hot.mean_gap_inside, rep_hot.mean_gap_outside);

  Polytope cold;
  cold.box = Box{{0.4, 0.4}, {0.55, 0.55}};  // nothing planted here
  auto rep_cold = check_significance(eval, cold);
  EXPECT_FALSE(rep_cold.significant);
}

TEST(Generator, RoughBoxCoversPlantedRegion) {
  PlantedEvaluator eval;
  SearchAnalyzer an;
  SubspaceOptions opts;
  SubspaceGenerator gen(an, opts);
  xplain::util::Rng rng(5);
  Box rough = gen.grow_rough_box(eval, {0.2, 0.75}, 5.0, rng);
  // The rough box must substantially overlap region A and not swallow the
  // whole input space.
  EXPECT_TRUE(rough.contains({0.2, 0.75}));
  EXPECT_LT(rough.volume(), 0.5);
  Box overlap = rough.intersect(eval.a_);
  EXPECT_FALSE(overlap.empty());
  EXPECT_GT(overlap.volume() / eval.a_.volume(), 0.3);
}

TEST(Generator, FindsBothPlantedSubspaces) {
  PlantedEvaluator eval;
  SearchAnalyzer an;
  SubspaceOptions opts;
  opts.max_subspaces = 6;
  SubspaceGenerator gen(an, opts);
  auto subs = gen.generate(eval, /*min_gap=*/3.0);
  ASSERT_GE(subs.size(), 2u);
  // Each planted region is hit by some subspace seed.
  bool hit_a = false, hit_b = false;
  for (const auto& s : subs) {
    if (eval.a_.contains(s.seed)) hit_a = true;
    if (eval.b_.contains(s.seed)) hit_b = true;
    EXPECT_TRUE(s.significant);
    EXPECT_LT(s.p_value, 0.05);
    EXPECT_TRUE(s.region.contains(s.seed, 1e-6));
  }
  EXPECT_TRUE(hit_a);
  EXPECT_TRUE(hit_b);
}

TEST(Generator, TerminatesWhenNothingIsAdversarial) {
  // Constant-zero gap: the analyzer finds nothing; generate returns empty.
  class ZeroEval : public GapEvaluator {
   public:
    int dim() const override { return 2; }
    Box input_box() const override { return Box{{0, 0}, {1, 1}}; }
    double gap(const std::vector<double>&) const override { return 0.0; }
    std::string name() const override { return "zero"; }
  } eval;
  SearchAnalyzer an;
  SubspaceGenerator gen(an, {});
  auto subs = gen.generate(eval, 1.0);
  EXPECT_TRUE(subs.empty());
  EXPECT_EQ(gen.trace().analyzer_calls, 1);
}

TEST(Generator, ExclusionPreventsRediscovery) {
  PlantedEvaluator eval;
  SearchAnalyzer an;
  SubspaceOptions opts;
  opts.max_subspaces = 8;
  SubspaceGenerator gen(an, opts);
  auto subs = gen.generate(eval, 3.0);
  // No two subspace seeds may land in the same already-found rough box.
  for (std::size_t i = 0; i < subs.size(); ++i)
    for (std::size_t j = 0; j < i; ++j)
      EXPECT_FALSE(subs[j].region.box.contains(subs[i].seed))
          << "seed " << i << " rediscovered region " << j;
}
