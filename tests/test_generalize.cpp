// Tests for the Type-3 generalizer: grammar mining on controlled data and
// the end-to-end DP trend the paper predicts (increasing pinned-path
// length => larger gap).
#include <gtest/gtest.h>

#include "generalize/generalizer.h"

using namespace xplain::generalize;

TEST(Grammar, DetectsPlantedMonotoneTrend) {
  std::vector<InstanceObservation> obs;
  xplain::util::Rng rng(8);
  for (int i = 0; i < 40; ++i) {
    InstanceObservation o;
    const double f = rng.uniform(0, 10);
    o.features["grows"] = f;
    o.features["shrinks"] = f;
    o.features["noise"] = rng.uniform(0, 10);
    o.max_gap = f + rng.normal(0, 0.5);
    obs.push_back(std::move(o));
  }
  // Make "shrinks" anti-correlated by flipping it.
  for (auto& o : obs) o.features["shrinks"] = 10.0 - o.features["shrinks"];

  auto preds = mine_predicates(obs);
  ASSERT_GE(preds.size(), 2u);
  bool found_inc = false, found_dec = false, found_noise = false;
  for (const auto& p : preds) {
    if (p.feature == "grows" && p.trend == Trend::kIncreasing)
      found_inc = true;
    if (p.feature == "shrinks" && p.trend == Trend::kDecreasing)
      found_dec = true;
    if (p.feature == "noise") found_noise = true;
  }
  EXPECT_TRUE(found_inc);
  EXPECT_TRUE(found_dec);
  EXPECT_FALSE(found_noise) << "uncorrelated features must not pass";
}

TEST(Grammar, PredicateToStringMatchesPaperStyle) {
  Predicate p;
  p.feature = "pinned_sp_hops";
  p.trend = Trend::kIncreasing;
  EXPECT_EQ(p.to_string(), "increasing(pinned_sp_hops)");
  p.trend = Trend::kDecreasing;
  EXPECT_EQ(p.to_string(), "decreasing(pinned_sp_hops)");
}

TEST(Grammar, NeedsEnoughObservations) {
  std::vector<InstanceObservation> two(2);
  EXPECT_TRUE(mine_predicates(two).empty());
}

TEST(InstanceGenerator, DpFamilyShape) {
  DpFamilyParams params;
  params.chain_len = 4;
  auto inst = make_dp_family_instance(params);
  // Pinned demand 0~>4 has a 4-hop shortest path and a detour.
  ASSERT_GE(inst.pairs.size(), 5u);
  EXPECT_EQ(inst.pairs[0].paths[0].hops(), 4);
  EXPECT_GE(inst.pairs[0].paths.size(), 2u);
  // Cross demands are single-path.
  for (std::size_t k = 1; k < inst.pairs.size(); ++k)
    EXPECT_EQ(inst.pairs[k].paths.size(), 1u);
}

TEST(InstanceGenerator, FeaturesTrackParameters) {
  DpFamilyParams a, b;
  a.chain_len = 2;
  b.chain_len = 5;
  xplain::te::DpConfig cfg{50};
  auto fa = dp_instance_features(make_dp_family_instance(a), cfg);
  auto fb = dp_instance_features(make_dp_family_instance(b), cfg);
  EXPECT_LT(fa.at("pinned_sp_max_hops"), fb.at("pinned_sp_max_hops"));
}

TEST(Generalizer, DpProducesIncreasingPathLengthPredicate) {
  // The §5.4 headline result: across generated instances the generalizer
  // emits increasing(P) — gap grows with the pinned shortest-path length.
  GeneralizerOptions opts;
  opts.instances = 16;
  opts.seed = 77;
  opts.search.restarts = 10;
  opts.search.presamples = 120;
  auto res = generalize(dp_case_factory(), opts);
  ASSERT_EQ(res.observations.size(), 16u);

  bool found = false;
  for (const auto& p : res.predicates) {
    if ((p.feature == "pinned_sp_hops" || p.feature == "pinned_sp_max_hops") &&
        p.trend == Trend::kIncreasing)
      found = true;
  }
  EXPECT_TRUE(found) << "expected increasing(pinned_sp_hops); got "
                     << res.predicates.size() << " predicates";
}

TEST(Generalizer, VbpEmitsNoSpuriousTrendOnFlatGaps) {
  // The pattern-search analyzer finds a 1-bin FF gap at every instance size
  // (multi-bin gaps need adversarial constructions beyond local search — the
  // paper's §5.2 scaling open question).  With a flat gap series the
  // generalizer's guardrail matters: it must NOT fabricate a trend.
  GeneralizerOptions opts;
  opts.instances = 14;
  opts.seed = 99;
  opts.search.restarts = 8;
  opts.search.presamples = 100;
  opts.normalize_gap = false;  // bin-count gaps are already comparable
  auto res = generalize(vbp_case_factory(), opts);
  // Every instance yields an adversarial input (FF always loses a bin
  // somewhere)...
  for (const auto& obs : res.observations) EXPECT_GE(obs.max_gap, 1.0);
  // ...and no significant num_balls trend is claimed from the flat series.
  for (const auto& p : res.predicates)
    EXPECT_NE(p.feature, "num_balls") << p.to_string();
}
