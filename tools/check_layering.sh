#!/usr/bin/env bash
# Layering / include-direction check for the XPlain tree.
#
# The HeuristicCase redesign inverted the old dependency: the core layers
# (analyzer, subspace, explain, flowgraph, model, solver, stats, util,
# xplain) must never include a concrete case-study header — cases adapt
# themselves to the core interfaces, not vice versa.  This script fails the
# build if anyone reintroduces such an include, and also rejects include
# cycles between src/ subdirectories by checking every #include against a
# fixed topological order.
#
# Run from the repo root:  bash tools/check_layering.sh
set -u
cd "$(dirname "$0")/.."

fail=0

err() {
  echo "LAYERING VIOLATION: $*" >&2
  fail=1
}

# --- Rule 1: core layers never include case-study or higher-layer headers.
# Two sanctioned exceptions:
#   * xplain/compat.h declares the deprecated run_dp_pipeline /
#     run_ff_pipeline / run_batch shims, whose signatures need te/ and vbp/
#     types (their definitions live in the cases library);
#   * src/xplain may include scenario/spec.h — the dependency-free
#     ScenarioSpec POD the spec-parameterized CaseRegistry factories and
#     the experiment engine's grids are expressed in.  The scenario
#     *generators* (scenario/scenario.h, which pulls te/ and lb/) remain
#     off-limits to the core.
core_dirs="analyzer subspace explain flowgraph model solver stats util"
for dir in $core_dirs; do
  hits=$(grep -n '#include "\(te\|vbp\|lb\|scenario\|cases\|generalize\|xplain\|engine\)/' \
      src/$dir/*.h src/$dir/*.cpp 2>/dev/null)
  if [ -n "$hits" ]; then
    err "src/$dir must not include te/, vbp/, lb/, scenario/, cases/,
generalize/, xplain/ or engine/:
$hits"
  fi
done

xplain_hits=$(grep -n '#include "\(te\|vbp\|lb\|scenario\|cases\|generalize\|engine\)/' \
    src/xplain/*.h src/xplain/*.cpp 2>/dev/null \
    | grep -v '^src/xplain/compat.h:' \
    | grep -v '#include "scenario/spec.h"')
if [ -n "$xplain_hits" ]; then
  err "src/xplain must not include te/, vbp/, lb/, cases/, generalize/,
engine/ or scenario/ beyond scenario/spec.h (compat.h is the deprecated-shim
exception):
$xplain_hits"
fi

# --- Rule 2 (acceptance criterion): analyzer/evaluator.h specifically.
ev_hits=$(grep -n '#include "\(te\|vbp\)/' src/analyzer/evaluator.h)
if [ -n "$ev_hits" ]; then
  err "src/analyzer/evaluator.h includes case-study headers:
$ev_hits"
fi

# --- Rule 3: no include cycles across src/ subdirectories.  Every
# cross-directory include must point to a strictly lower layer in this
# topological order (= the CMake library dependency order).
rank_of() {
  case "$1" in
    util) echo 0 ;;
    solver) echo 1 ;;
    model) echo 2 ;;
    stats) echo 3 ;;
    flowgraph) echo 4 ;;
    te|vbp) echo 5 ;;
    lb) echo 6 ;;
    scenario) echo 7 ;;
    analyzer) echo 8 ;;
    subspace) echo 9 ;;
    explain) echo 10 ;;
    xplain) echo 11 ;;
    generalize) echo 12 ;;
    # engine and cases share the top rank: the experiment engine drives
    # cases through the registry at runtime, never through an include, and
    # cases never reach up into the engine — equal ranks reject both.
    engine|cases) echo 13 ;;
    *) echo 99 ;;
  esac
}

for f in src/*/*.h src/*/*.cpp; do
  from_dir=$(basename "$(dirname "$f")")
  from_rank=$(rank_of "$from_dir")
  while read -r inc; do
    [ -z "$inc" ] && continue
    to_dir=${inc%%/*}
    [ "$to_dir" = "$from_dir" ] && continue
    to_rank=$(rank_of "$to_dir")
    [ "$to_rank" = 99 ] && continue  # not a src/ subdir include
    # compat.h is the sanctioned shim exception (rule 1).
    [ "$f" = "src/xplain/compat.h" ] && continue
    if [ "$to_rank" -ge "$from_rank" ]; then
      err "$f includes \"$inc\" — $from_dir (rank $from_rank) may only include layers below it ($to_dir has rank $to_rank)"
    fi
  done <<EOF
$(sed -n 's/^#include "\([^"]*\)".*/\1/p' "$f")
EOF
done

if [ "$fail" -ne 0 ]; then
  echo "check_layering: FAILED" >&2
  exit 1
fi
echo "check_layering: OK (core layers are case-agnostic, include graph is acyclic)"
