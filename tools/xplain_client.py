#!/usr/bin/env python3
"""xplain_client: submit experiment grids to a running xplaind and tail the
result stream.

xplaind speaks newline-delimited JSON on stdin/stdout (see tools/xplaind.cpp
and the README's "Explanation as a service" section).  This client spawns
the daemon (or talks to any command given via --daemon), submits the same
spec --repeat times, verifies the protocol invariants, and prints a
per-submission digest:

  * one "job" event per grid cell plus a final "done" summary,
  * on repeat submissions, every job served from cache with job JSON
    bitwise identical to the first round's (the content-addressed cache's
    exact util/json round-trip makes that a hard guarantee, not a hope).

Examples:
  # two cases x one scenario, submitted twice (second round: all hits)
  tools/xplain_client.py --daemon build/xplaind \\
      --case first_fit --case demand_pinning_chain \\
      --scenario kind=line,size=3,seed=1 --repeat 2

  # pass a full spec document instead of flags
  tools/xplain_client.py --daemon build/xplaind --spec-json spec.json

  # crash-safe persistence: restart the daemon between rounds and verify
  # the journal replays the working set bitwise identically
  tools/xplain_client.py --daemon build/xplaind --cache-path /tmp/x.journal \\
      --restart-between-rounds --case first_fit \\
      --scenario kind=line,size=3,seed=1 --repeat 2
"""

import argparse
import json
import subprocess
import sys


def parse_scenario(text):
    """'kind=line,size=3,seed=1,capacity=35' -> scenario spec object."""
    scen = {}
    for part in text.split(","):
        if not part:
            continue
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        if key == "kind":
            scen[key] = value
        elif key in ("size", "seed", "failed_links"):
            scen[key] = int(value)
        elif key in ("capacity", "waxman_alpha", "waxman_beta",
                     "capacity_degradation"):
            scen[key] = float(value)
        else:
            raise ValueError(f"unknown scenario field {key!r}")
    return scen


def build_spec(args):
    if args.spec_json:
        with open(args.spec_json, encoding="utf-8") as f:
            return json.load(f)
    if not args.case:
        raise SystemExit("need --case (or --spec-json)")
    spec = {"cases": args.case, "seed": args.seed}
    if args.scenario:
        spec["scenarios"] = [parse_scenario(s) for s in args.scenario]
    options = {}
    if args.min_gap is not None:
        options["min_gap"] = args.min_gap
    if args.max_subspaces is not None:
        options.setdefault("subspace", {})["max_subspaces"] = \
            args.max_subspaces
    if args.explain_samples is not None:
        options.setdefault("explain", {})["samples"] = args.explain_samples
    if options:
        spec["options"] = options
    return spec


class Daemon:
    """One xplaind process; request/response over NDJSON pipes."""

    def __init__(self, argv):
        self.proc = subprocess.Popen(
            argv, stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True)

    def request(self, obj):
        self.proc.stdin.write(json.dumps(obj) + "\n")
        self.proc.stdin.flush()

    def events(self):
        for line in self.proc.stdout:
            line = line.strip()
            if line:
                yield json.loads(line)

    def close(self):
        try:
            self.request({"op": "shutdown"})
        except (BrokenPipeError, ValueError):
            pass
        self.proc.stdin.close()
        self.proc.wait(timeout=120)


def stat_int(stats, key):
    """Daemon counters arrive as decimal strings (exact past 2^53)."""
    try:
        return int(stats.get(key, 0))
    except (TypeError, ValueError):
        return 0


def submit_and_tail(daemon, events, spec, request_id, verbose):
    """Submits once; returns (job_json_lines_by_index, done_event)."""
    daemon.request({"op": "submit", "id": request_id, "spec": spec})
    jobs = {}
    cached = 0
    for ev in events:
        kind = ev.get("event")
        if kind == "error":
            raise SystemExit(f"xplaind error: {ev.get('message')}")
        if kind == "accepted":
            continue
        if kind == "job":
            job = ev["job"]
            # Canonical re-dump with sorted=False keeps the daemon's member
            # order — identity is compared on this exact serialization.
            jobs[job["index"]] = json.dumps(job)
            cached += 1 if ev.get("cached") else 0
            if verbose:
                status = "cache" if ev.get("cached") else "fresh"
                print(f"  job {job['index']:3d} [{status}] "
                      f"{job['case']}@{job.get('scenario') or 'default'} "
                      f"gap={job.get('best_gap_found', 0):.4g}")
            continue
        if kind == "done":
            ev["_cached_jobs"] = cached
            return jobs, ev
    raise SystemExit("xplaind stream ended before the done event")


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--daemon", default="build/xplaind", nargs="+",
                    help="xplaind command (default: build/xplaind)")
    ap.add_argument("--case", action="append", default=[],
                    help="case name (repeatable)")
    ap.add_argument("--scenario", action="append", default=[],
                    help="scenario as k=v pairs, e.g. kind=line,size=3,seed=1"
                         " (repeatable)")
    ap.add_argument("--seed", type=int, default=0, help="experiment seed")
    ap.add_argument("--min-gap", type=float, default=None)
    ap.add_argument("--max-subspaces", type=int, default=None)
    ap.add_argument("--explain-samples", type=int, default=None)
    ap.add_argument("--spec-json", default=None,
                    help="file with a full spec object (overrides flags)")
    ap.add_argument("--repeat", type=int, default=1,
                    help="submit the same spec N times (default 1)")
    ap.add_argument("--cache-path", default=None,
                    help="persist the daemon's result cache to this journal "
                         "file (passed through as xplaind --cache-path)")
    ap.add_argument("--restart-between-rounds", action="store_true",
                    help="shut the daemon down and respawn it between repeat "
                         "rounds; with --cache-path, repeat rounds must still "
                         "be fully cached and bitwise identical (the journal "
                         "carries the working set across the restart)")
    ap.add_argument("-q", "--quiet", action="store_true",
                    help="suppress per-job lines")
    args = ap.parse_args()

    spec = build_spec(args)
    if args.restart_between_rounds and args.repeat < 2:
        raise SystemExit("--restart-between-rounds needs --repeat >= 2")
    daemon_argv = list(args.daemon)
    if args.cache_path:
        daemon_argv += ["--cache-path", args.cache_path]
    daemon = Daemon(daemon_argv)
    events = daemon.events()
    status = 0
    first_jobs = None
    try:
        for round_no in range(1, args.repeat + 1):
            if round_no > 1 and args.restart_between_rounds:
                # Clean shutdown compacts the journal; the fresh daemon
                # replays it, so round N must serve round 1's bytes.
                daemon.close()
                print("  (daemon restarted)")
                daemon = Daemon(daemon_argv)
                events = daemon.events()
            print(f"submission {round_no}/{args.repeat}:")
            jobs, done = submit_and_tail(
                daemon, events, spec, round_no, not args.quiet)
            stats = done.get("stats", {})
            print(f"  done: {done.get('jobs')} jobs, "
                  f"{done['_cached_jobs']} from cache "
                  f"(service totals: hits={stat_int(stats, 'cache_hits')}, "
                  f"misses={stat_int(stats, 'cache_misses')}, "
                  f"replayed={stat_int(stats, 'cache_replayed')}, "
                  f"case_builds={stat_int(stats, 'case_builds')})")
            if first_jobs is None:
                first_jobs = jobs
                continue
            # Repeat rounds: every job must hit the cache and replay the
            # identical JSON.
            mismatched = [i for i, line in jobs.items()
                          if first_jobs.get(i) != line]
            if mismatched:
                print(f"  FAIL: job JSON diverged from round 1 at indices "
                      f"{mismatched}", file=sys.stderr)
                status = 1
            elif done["_cached_jobs"] != len(jobs):
                print(f"  FAIL: only {done['_cached_jobs']}/{len(jobs)} "
                      f"jobs served from cache", file=sys.stderr)
                status = 1
            else:
                print(f"  repeat OK: {len(jobs)} jobs bitwise identical, "
                      f"all from cache")
    finally:
        daemon.close()
    return status


if __name__ == "__main__":
    sys.exit(main())
