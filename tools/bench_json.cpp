#include "bench_json.h"

#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "solver/lp.h"
#include "util/timer.h"

namespace xplain::tools {

struct BenchReport::Impl {
  std::string name;
  util::Timer timer;
  solver::LpCounters start;
  std::vector<std::pair<std::string, double>> extra;
  std::vector<std::pair<std::string, std::string>> raw;
  bool written = false;
};

BenchReport::BenchReport(std::string name) : impl_(new Impl) {
  impl_->name = std::move(name);
  impl_->start = solver::lp_counters();
}

BenchReport::~BenchReport() {
  write();
  delete impl_;
}

void BenchReport::metric(const std::string& key, double value) {
  impl_->extra.emplace_back(key, value);
}

void BenchReport::raw(const std::string& key, std::string json_value) {
  impl_->raw.emplace_back(key, std::move(json_value));
}

void BenchReport::write() {
  if (impl_->written) return;
  impl_->written = true;
  const double wall = impl_->timer.seconds();
  const solver::LpCounters end = solver::lp_counters();
  std::ostringstream os;
  os.precision(9);
  os << "{\n"
     << "  \"bench\": \"" << impl_->name << "\",\n"
     << "  \"wall_seconds\": " << wall << ",\n"
     << "  \"lp_solves\": " << end.solves - impl_->start.solves << ",\n"
     << "  \"lp_iterations\": " << end.iterations - impl_->start.iterations
     << ",\n"
     << "  \"lp_warm_solves\": "
     << end.warm_solves - impl_->start.warm_solves << ",\n"
     << "  \"lp_columns_priced\": "
     << end.columns_priced - impl_->start.columns_priced << ",\n"
     << "  \"lp_candidate_refills\": "
     << end.candidate_refills - impl_->start.candidate_refills;
  for (const auto& [k, v] : impl_->extra) os << ",\n  \"" << k << "\": " << v;
  for (const auto& [k, v] : impl_->raw) os << ",\n  \"" << k << "\": " << v;
  os << "\n}\n";
  std::ofstream out("BENCH_" + impl_->name + ".json");
  out << os.str();
}

}  // namespace xplain::tools
