// Machine-readable bench reporting.
//
// Every bench_* binary declares one BenchReport at the top of main(); on
// destruction it writes BENCH_<name>.json next to the working directory
// with the end-to-end wall time and the LP solver work (solves, simplex
// iterations, warm-started solves) the run triggered.  CI uploads these as
// artifacts, giving the repo a perf trajectory instead of eyeballed logs.
#pragma once

#include <string>

namespace xplain::tools {

class BenchReport {
 public:
  /// `name` names the output file: BENCH_<name>.json.
  explicit BenchReport(std::string name);
  ~BenchReport();

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  /// Attaches an extra numeric datum (e.g. a bench-specific count).
  void metric(const std::string& key, double value);

  /// Attaches a pre-serialized JSON value verbatim (e.g. an
  /// xplain::ExperimentResult::to_json() document), making the experiment's
  /// structured output part of the bench's machine-readable report.
  void raw(const std::string& key, std::string json_value);

  /// Writes the JSON now (also called by the destructor; idempotent).
  void write();

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace xplain::tools
