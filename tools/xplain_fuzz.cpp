// xplain_fuzz — budgeted coverage-guided search over scenario space.
//
//   xplain_fuzz [--budget-evals N] [--seed S] [--deep] [--case NAME]...
//               [--generation-size N] [--min-norm-gap X] [--workers N]
//               [--out FILE] [--merge]
//
// Runs the fuzzer (src/search/fuzzer.h) and prints the discovery archive;
// --out writes it as JSON (the committed regression corpus
// bench/corpus/discovered.json is produced exactly this way), --merge
// loads an existing archive from --out first so repeated runs accumulate
// (per-bucket incumbents keep the larger normalized gap).  --deep confirms
// every survivor with a full-pipeline run before archiving — the mode to
// use when promoting specs into the committed corpus with full Type-1/2
// output behind them.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "search/fuzzer.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--budget-evals N] [--seed S] [--deep] [--case NAME]...\n"
         "       [--generation-size N] [--min-norm-gap X] [--workers N]\n"
         "       [--out FILE] [--merge]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  xplain::search::FuzzerOptions opts;
  std::vector<std::string> cases;
  std::string out_path;
  bool merge = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--budget-evals") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.budget_evals = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--deep") {
      opts.deep = true;
    } else if (arg == "--case") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cases.push_back(v);
    } else if (arg == "--generation-size") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.generation_size = std::atoi(v);
    } else if (arg == "--min-norm-gap") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.significant_gap = std::atof(v);
    } else if (arg == "--workers") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.workers = std::atoi(v);
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      out_path = v;
    } else if (arg == "--merge") {
      merge = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return usage(argv[0]);
    }
  }
  if (!cases.empty()) opts.cases = std::move(cases);

  xplain::search::FuzzResult result = xplain::search::run_fuzzer(opts);

  if (merge && !out_path.empty()) {
    std::string err;
    if (const auto existing = xplain::search::Archive::load(out_path, &err)) {
      for (const auto& d : existing->discoveries()) result.archive.add(d);
    } else {
      std::cerr << "merge: " << err << " (writing fresh archive)\n";
    }
  }

  xplain::util::Table table(
      {"case", "scenario", "norm_gap", "gap", "gen", "bucket"});
  for (const auto& d : result.archive.discoveries()) {
    // Buckets are long; the tail (after the case prefix) is the useful part.
    std::string bucket = d.bucket;
    if (bucket.size() > 48) bucket = "..." + bucket.substr(bucket.size() - 45);
    table.add_row({d.case_name, d.spec.display_name(),
                   xplain::util::format_double(d.norm_gap),
                   xplain::util::format_double(d.gap),
                   std::to_string(d.generation), bucket});
  }
  table.print(std::cout);

  const auto& st = result.stats;
  std::cout << "\nfuzz: " << st.evals << " evals over " << st.generations
            << " generations (" << st.deep_runs << " deep runs, "
            << st.failed_jobs << " failed jobs)\n"
            << "coverage: " << st.coverage.buckets << " buckets, "
            << st.coverage.significant_buckets << " significant, "
            << st.coverage.accepted_novel << " novel + "
            << st.coverage.accepted_improved << " improved accepts of "
            << st.coverage.offers << " offers\n"
            << "archive: " << result.archive.size() << " discoveries\n";

  if (!out_path.empty()) {
    if (!result.archive.save(out_path)) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}
