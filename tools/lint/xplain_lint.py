#!/usr/bin/env python3
"""xplain_lint: repo-specific determinism / concurrency / layering linter.

XPlain's verdicts are only credible if the pipeline is bitwise-deterministic
for any worker count (util/parallel.h spells out the contract).  This linter
machine-checks the source-level rules that contract rests on, as a ctest
entry (`xplain_lint`) so CI fails on violations:

  no-std-rand            std::rand / srand / rand() outside util/random —
                         unseeded libc RNG breaks seed-reproducibility.
  no-random-device       std::random_device anywhere outside util/random:
                         entropy that cannot be replayed from a seed.
  no-wall-clock          C time() / std::chrono::system_clock in logic —
                         wall-clock values leak nondeterminism into results
                         (steady_clock elapsed-time *reporting* is fine and
                         not matched).
  no-thread-id           std::this_thread::get_id in logic: scheduling-
                         dependent identity, forbidden by slot determinism.
  no-unordered-in-results
                         std::unordered_* in result/serialization/feature
                         layers (hash iteration order is unspecified and
                         varies across libstdc++ versions); elsewhere only
                         *iteration* over an unordered container is flagged.
  no-raw-mutex           std::mutex family in src/ — use util::Mutex
                         (util/thread_annotations.h), which clang's
                         -Wthread-safety can see through; a raw std::mutex
                         silently opts its guarded state out of analysis.
  mutex-annotation       a util::Mutex member whose file never uses
                         XPLAIN_GUARDED_BY guards nothing the analysis can
                         check — annotate the shared state.
  layering               the include-direction DAG (subsumes the retired
                         tools/check_layering.sh): cross-directory includes
                         must point strictly down the layer order, and core
                         layers never include the concrete case studies.

Suppression: append `// xplain-lint: allow(<rule>[, <rule>...])` to the
offending line, or place it alone on the line directly above.  Suppressions
are deliberate, reviewable statements ("yes, this is intentionally racy /
intentionally unordered") — the linter's job is making the exception loud.

Self-test: `xplain_lint.py --self-test` runs every file in
tools/lint/testdata/ (committed known-bad corpus) under the same rules.
Each planted violation carries `// expect-lint: <rule>` on its line; the
self-test fails unless expected and actual findings match *exactly* both
ways — every rule is proven to fire, and to not over-fire.  Testdata files
declare the path they should be linted as via a `// lint-as: <path>` header
line (the layering and path-scoped rules depend on location).

Usage:
  xplain_lint.py [--root DIR]            # lint src/ and tools/ under DIR
  xplain_lint.py --self-test [--root DIR]
"""

import argparse
import re
import sys
from pathlib import Path

# ---------------------------------------------------------------------------
# Layering model (mirrors the CMake library graph; see CMakeLists.txt).
# Cross-directory includes must point to a strictly lower rank.  engine and
# cases share the top rank: the engine drives cases through the CaseRegistry
# at runtime, never via an include — equal ranks reject both directions.
LAYER_RANK = {
    "util": 0,
    "solver": 1,
    "model": 2,
    "stats": 3,
    "flowgraph": 4,
    "te": 5,
    "vbp": 5,
    "lb": 6,
    "scenario": 7,
    "analyzer": 8,
    "subspace": 9,
    "explain": 10,
    "xplain": 11,
    "generalize": 12,
    "engine": 13,
    "cases": 13,
    "server": 14,
    "search": 14,
}

# Core layers stay case-agnostic: the rank order alone would let analyzer
# (rank 8) include te (rank 5), but cases adapt themselves to the core
# interfaces, never vice versa.
CORE_DIRS = {"analyzer", "subspace", "explain", "flowgraph", "model",
             "solver", "stats", "util"}
DOMAIN_DIRS = {"te", "vbp", "lb", "scenario", "cases", "generalize",
               "xplain", "engine", "server", "search"}
# The service sits above the engine but stays heuristic-agnostic exactly
# the way the engine does: cases are driven through the CaseRegistry at
# runtime, never via an include.  Rank alone cannot enforce this (cases is
# rank 13, below server's 14), so the ban is explicit.
SERVER_FORBIDDEN = {"cases"}
# The fuzzer (search) shares server's rank — it is a peer consumer of the
# engine, so search<->server includes are rejected in both directions by
# the equal-rank rule — and it probes cases the same registry-driven way,
# so the cases ban is explicit here too.
SEARCH_FORBIDDEN = {"cases"}
# src/xplain is core too, with two sanctioned exceptions: compat.h (the
# deprecated shim header whose signatures need te/vbp types) and
# scenario/spec.h (the dependency-free ScenarioSpec POD).
XPLAIN_FORBIDDEN = DOMAIN_DIRS - {"xplain"}
XPLAIN_ALLOWED_INCLUDES = {"scenario/spec.h"}

# Layers where container iteration order reaches results, serialized output
# or Type-3 feature vectors: any std::unordered_* use is banned here.
RESULT_DIRS = {"analyzer", "stats", "subspace", "explain", "xplain",
               "generalize", "engine", "cases", "server", "search"}

# The sanctioned RNG wrapper sources (the only place entropy may enter).
RANDOM_WRAPPER = re.compile(r"src/util/random\.(h|cpp)$")
# The annotation header itself wraps std::mutex — that is its whole job.
ANNOTATIONS_HEADER = re.compile(r"src/util/thread_annotations\.h$")

SUPPRESS_RE = re.compile(r"//\s*xplain-lint:\s*allow\(([^)]*)\)")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:xplain::)?(?:util::)?Mutex\s+\w+\s*;")
RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|recursive_mutex|recursive_timed_mutex|timed_mutex|"
    r"shared_mutex)\b")
UNORDERED_RE = re.compile(
    r"\bstd::unordered_\w+|#\s*include\s*<unordered_\w+>")
# Name declared as an unordered container ("std::unordered_map<K, V> idx;")
# — range-fors over such names are flagged even outside the result layers.
UNORDERED_DECL_NAME_RE = re.compile(
    r"std::unordered_\w+\s*<[^;{]*>\s*[&*]?\s*(\w+)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^:;]*:\s*&?\s*([\w.>-]+)\s*\)")
UNORDERED_ITER_RE = re.compile(r"\bfor\s*\(.*:.*unordered")
RAND_RE = re.compile(r"\bstd::rand\b|\bsrand\s*\(|[^\w.]rand\s*\(")
RANDOM_DEVICE_RE = re.compile(r"\brandom_device\b")
WALL_CLOCK_RE = re.compile(r"[^\w.]time\s*\(|\bsystem_clock\b")
THREAD_ID_RE = re.compile(r"\bthis_thread::get_id\b")


class Finding:
    def __init__(self, path, line_no, rule, message):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def strip_line_comment(line):
    """Code portion of a line (string-literal-naive, fine for this tree)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def suppressions_for(lines, i):
    """Rules allowed on line i (0-based): same-line or line-above marker."""
    allowed = set()
    for j in (i, i - 1):
        if 0 <= j < len(lines):
            m = SUPPRESS_RE.search(lines[j])
            if m:
                allowed.update(r.strip() for r in m.group(1).split(","))
    return allowed


def src_subdir(virtual_path):
    """The src/ layer a path belongs to, or None ('src/solver/lp.h' ->
    'solver')."""
    parts = Path(virtual_path).parts
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


def lint_file(virtual_path, text):
    """All findings for one file, given the path its rules apply under."""
    findings = []
    lines = text.splitlines()
    vpath = str(virtual_path).replace("\\", "/")
    layer = src_subdir(vpath)
    is_random_wrapper = bool(RANDOM_WRAPPER.search(vpath))
    is_annotations_header = bool(ANNOTATIONS_HEADER.search(vpath))
    in_block_comment = False
    mutex_member_lines = []
    unordered_names = set()  # identifiers declared as unordered containers
    has_guarded_by = False  # set from CODE lines only, not comments

    def add(i, rule, message):
        if rule not in suppressions_for(lines, i):
            findings.append(Finding(vpath, i + 1, rule, message))

    for i, raw in enumerate(lines):
        # Keep comment-only lines out of the pattern rules (block comments
        # are tracked coarsely: a line inside /* */ is skipped entirely).
        if in_block_comment:
            if "*/" in raw:
                in_block_comment = False
            continue
        code = strip_line_comment(raw)
        if "/*" in code and "*/" not in code:
            in_block_comment = True
            code = code[: code.index("/*")]
        if not code.strip():
            continue
        if "XPLAIN_GUARDED_BY" in code:
            has_guarded_by = True

        # --- determinism escape hatches -----------------------------------
        if not is_random_wrapper:
            if RAND_RE.search(code):
                add(i, "no-std-rand",
                    "libc rand()/srand() is not seed-reproducible; draw "
                    "from util::Rng / util::SlotRng (src/util/random.h)")
            if RANDOM_DEVICE_RE.search(code):
                add(i, "no-random-device",
                    "std::random_device entropy cannot be replayed from a "
                    "seed; derive streams via util::Rng::derive_seed")
        if WALL_CLOCK_RE.search(code):
            add(i, "no-wall-clock",
                "wall-clock time in logic breaks replay determinism; use "
                "explicit seeds (steady_clock elapsed-time reporting via "
                "util::Timer is fine)")
        if THREAD_ID_RE.search(code):
            add(i, "no-thread-id",
                "thread identity is scheduling-dependent; index per-worker "
                "state by the parallel_chunks worker argument instead")

        # --- unordered containers -----------------------------------------
        for m_decl in UNORDERED_DECL_NAME_RE.finditer(code):
            unordered_names.add(m_decl.group(1))
        iterates_unordered = bool(UNORDERED_ITER_RE.search(code))
        if not iterates_unordered:
            m_for = RANGE_FOR_RE.search(code)
            if m_for:
                # "obj.idx_" / "this->idx_" -> "idx_"
                target = re.split(r"\.|->", m_for.group(1))[-1]
                iterates_unordered = target in unordered_names
        if layer in RESULT_DIRS and UNORDERED_RE.search(code):
            add(i, "no-unordered-in-results",
                f"std::unordered_* in src/{layer}/ (a result/serialization/"
                "feature path): hash iteration order is unspecified — use "
                "std::map/std::set or a sorted vector")
        elif iterates_unordered:
            add(i, "no-unordered-in-results",
                "iterating an unordered container feeds unspecified order "
                "into downstream state; iterate a sorted view instead")

        # --- mutexes --------------------------------------------------------
        if not is_annotations_header and RAW_MUTEX_RE.search(code):
            add(i, "no-raw-mutex",
                "std::mutex is invisible to clang -Wthread-safety; use "
                "util::Mutex + util::MutexLock "
                "(src/util/thread_annotations.h)")
        if MUTEX_MEMBER_RE.search(code):
            mutex_member_lines.append(i)

        # --- layering -------------------------------------------------------
        m = INCLUDE_RE.match(code)
        if m and layer is not None:
            inc = m.group(1)
            inc_dir = inc.split("/", 1)[0]
            if inc_dir in LAYER_RANK and inc_dir != layer:
                basename = Path(vpath).name
                is_compat_shim = vpath.endswith("src/xplain/compat.h") or (
                    layer == "xplain" and basename == "compat.h")
                if layer == "xplain" and inc_dir in XPLAIN_FORBIDDEN \
                        and not is_compat_shim \
                        and inc not in XPLAIN_ALLOWED_INCLUDES:
                    add(i, "layering",
                        f'src/xplain must not include "{inc}" — the core '
                        "pipeline stays case-agnostic (compat.h and "
                        "scenario/spec.h are the sanctioned exceptions)")
                elif layer == "server" and inc_dir in SERVER_FORBIDDEN:
                    add(i, "layering",
                        f'src/server must not include "{inc}" — the service '
                        "drives cases through the CaseRegistry at runtime, "
                        "exactly like the engine")
                elif layer == "search" and inc_dir in SEARCH_FORBIDDEN:
                    add(i, "layering",
                        f'src/search must not include "{inc}" — the fuzzer '
                        "probes cases through Engine grids (CaseRegistry at "
                        "runtime), never via an include")
                elif layer in CORE_DIRS and inc_dir in DOMAIN_DIRS:
                    add(i, "layering",
                        f'src/{layer} (core) must not include "{inc}" — '
                        "cases adapt to the core interfaces, never vice "
                        "versa")
                elif not is_compat_shim and \
                        LAYER_RANK[inc_dir] >= LAYER_RANK[layer]:
                    add(i, "layering",
                        f'src/{layer} (rank {LAYER_RANK[layer]}) may only '
                        f'include layers strictly below it; "{inc}" is '
                        f"rank {LAYER_RANK[inc_dir]}")

    # A file that declares Mutex members but never uses XPLAIN_GUARDED_BY is
    # locking nothing the analysis can check.
    if mutex_member_lines and not has_guarded_by \
            and not is_annotations_header:
        for i in mutex_member_lines:
            add(i, "mutex-annotation",
                "util::Mutex member but no XPLAIN_GUARDED_BY anywhere in "
                "this file — annotate the state this mutex protects")

    return findings


# ---------------------------------------------------------------------------
def iter_tree_files(root):
    for top in ("src", "tools"):
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".h", ".cpp", ".cc", ".hpp"):
                continue
            rel = path.relative_to(root)
            if rel.parts[:3] == ("tools", "lint", "testdata"):
                continue  # the known-bad corpus is bad on purpose
            yield path, rel


def run_tree(root):
    findings = []
    n_files = 0
    for path, rel in iter_tree_files(root):
        n_files += 1
        findings.extend(lint_file(rel, path.read_text(encoding="utf-8")))
    for f in findings:
        print(f, file=sys.stderr)
    if findings:
        print(f"xplain_lint: FAILED ({len(findings)} finding(s) across "
              f"{n_files} files)", file=sys.stderr)
        return 1
    print(f"xplain_lint: OK ({n_files} files clean)")
    return 0


# ---------------------------------------------------------------------------
LINT_AS_RE = re.compile(r"//\s*lint-as:\s*(\S+)")
EXPECT_RE = re.compile(r"//\s*expect-lint:\s*([\w-]+(?:\s*,\s*[\w-]+)*)")


def run_self_test(root):
    corpus = root / "tools" / "lint" / "testdata"
    files = sorted(p for p in corpus.iterdir()
                   if p.suffix in (".h", ".cpp", ".cc", ".hpp"))
    if not files:
        print(f"xplain_lint --self-test: no corpus under {corpus}",
              file=sys.stderr)
        return 1
    failures = []
    total_expected = 0
    for path in files:
        text = path.read_text(encoding="utf-8")
        lines = text.splitlines()
        m = LINT_AS_RE.search(text)
        virtual = m.group(1) if m else f"src/xplain/{path.name}"
        expected = set()
        for i, line in enumerate(lines):
            em = EXPECT_RE.search(line)
            if em:
                for rule in em.group(1).split(","):
                    expected.add((i + 1, rule.strip()))
        total_expected += len(expected)
        actual = {(f.line_no, f.rule) for f in lint_file(virtual, text)}
        for line_no, rule in sorted(expected - actual):
            failures.append(f"{path.name}:{line_no}: expected [{rule}] "
                            f"to fire (as {virtual}) but it did not")
        for line_no, rule in sorted(actual - expected):
            failures.append(f"{path.name}:{line_no}: [{rule}] fired but no "
                            f"expect-lint marker claims it (as {virtual})")
    for msg in failures:
        print(msg, file=sys.stderr)
    if failures:
        print(f"xplain_lint --self-test: FAILED ({len(failures)} "
              f"mismatch(es))", file=sys.stderr)
        return 1
    print(f"xplain_lint --self-test: OK ({len(files)} corpus files, "
          f"{total_expected} planted violations all fired, no over-fires)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawTextHelpFormatter)
    ap.add_argument("--root", type=Path, default=Path(__file__).resolve()
                    .parent.parent.parent,
                    help="repository root (default: two dirs up from here)")
    ap.add_argument("--self-test", action="store_true",
                    help="check the known-bad corpus fires every rule")
    args = ap.parse_args()
    root = args.root.resolve()
    return run_self_test(root) if args.self_test else run_tree(root)


if __name__ == "__main__":
    sys.exit(main())
