// lint-as: src/solver/bad_layering.cpp
// Known-bad corpus: include-direction violations.  solver (rank 1) reaching
// up into model (rank 2) is a cycle-in-waiting; a core layer including a
// case-study domain header breaks the cases-adapt-to-core inversion.
#include "model/model.h"      // expect-lint: layering
#include "te/topology.h"      // expect-lint: layering
#include "xplain/case.h"      // expect-lint: layering
#include "util/logging.h"     // downward: OK

namespace xplain::solver_bad {

int uses_upper_layers() { return 0; }

}  // namespace xplain::solver_bad
