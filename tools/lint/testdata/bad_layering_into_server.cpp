// lint-as: src/engine/bad_layering_into_server.cpp
// Known-bad corpus: a lower layer including the resident service.  The
// engine (rank 13) is the service's substrate, not its client — an upward
// include would make the job path depend on the queue/cache machinery that
// wraps it.
#include "server/service.h"   // expect-lint: layering
#include "xplain/pipeline.h"  // downward: OK

namespace xplain::engine_bad {

int calls_back_up_into_the_service() { return 0; }

}  // namespace xplain::engine_bad
