// lint-as: src/subspace/bad_rand.cpp
// Known-bad corpus: unseeded / unreplayable entropy sources in a sampling
// layer.  Every line marked expect-lint MUST fire in --self-test.
#include <cstdlib>
#include <random>

namespace xplain::subspace {

double draw_sample() {
  std::srand(42);                         // expect-lint: no-std-rand
  int a = std::rand();                    // expect-lint: no-std-rand
  int b = (rand() % 7);                   // expect-lint: no-std-rand
  std::random_device rd;                  // expect-lint: no-random-device
  std::mt19937_64 engine(rd());
  return static_cast<double>(a + b) + static_cast<double>(engine());
}

}  // namespace xplain::subspace
