// lint-as: src/xplain/bad_layering_xplain.cpp
// Known-bad corpus: src/xplain case-agnosticism.  The core pipeline may see
// the dependency-free ScenarioSpec POD (scenario/spec.h) but never the
// scenario *generators* or any concrete domain — those arrive through the
// CaseRegistry at runtime.
#include "scenario/spec.h"        // sanctioned exception: OK
#include "scenario/scenario.h"    // expect-lint: layering
#include "vbp/instance.h"         // expect-lint: layering
#include "generalize/features.h"  // expect-lint: layering

namespace xplain {

int core_peeking_at_cases() { return 0; }

}  // namespace xplain
