// lint-as: src/generalize/bad_clock.cpp
// Known-bad corpus: wall-clock and scheduling-dependent values feeding
// logic — both vary run to run, so any result touching them is unreplayable.
#include <chrono>
#include <ctime>
#include <thread>

namespace xplain::generalize {

std::uint64_t nondeterministic_seed() {
  std::uint64_t seed = std::time(nullptr);            // expect-lint: no-wall-clock
  auto now = std::chrono::system_clock::now();        // expect-lint: no-wall-clock
  seed ^= static_cast<std::uint64_t>(
      now.time_since_epoch().count());
  seed ^= std::hash<std::thread::id>{}(
      std::this_thread::get_id());                    // expect-lint: no-thread-id
  return seed;
}

}  // namespace xplain::generalize
