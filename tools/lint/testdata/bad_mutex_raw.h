// lint-as: src/explain/bad_mutex_raw.h
// Known-bad corpus: a raw std::mutex member.  libstdc++'s std::mutex has no
// capability attributes, so clang -Wthread-safety cannot pair its
// lock()/unlock() with GUARDED_BY obligations — the cache below is
// effectively unchecked shared state.
#pragma once

#include <map>
#include <mutex>
#include <string>

namespace xplain::explain_bad {

class ScoreCache {
 public:
  double lookup(const std::string& key);

 private:
  mutable std::mutex mu_;  // expect-lint: no-raw-mutex
  std::map<std::string, double> cache_;
};

}  // namespace xplain::explain_bad
