// lint-as: src/engine/bad_unordered.cpp
// Known-bad corpus: hash containers in a result/serialization layer.  The
// iteration order of std::unordered_* is unspecified (and differs across
// libstdc++ versions), so serializing or accumulating over one makes the
// output depend on the standard library build.
#include <string>
#include <unordered_map>                  // expect-lint: no-unordered-in-results

namespace xplain::engine_bad {

struct Summary {
  std::unordered_map<std::string, double> features;  // expect-lint: no-unordered-in-results

  std::string serialize() const {
    std::string out;
    for (const auto& [k, v] : features) {  // expect-lint: no-unordered-in-results
      out += k + "=" + std::to_string(v) + ",";
    }
    return out;
  }
};

}  // namespace xplain::engine_bad
