// lint-as: src/engine/suppressed_ok.cpp
// Known-bad corpus, suppression leg: every violation here carries an
// `xplain-lint: allow(...)` marker, so --self-test asserts that NOTHING
// fires — proving the suppression syntax works on the same line, on the
// line above, and with multiple rules in one marker.
#include <cstdlib>
#include <ctime>
// xplain-lint: allow(no-unordered-in-results)
#include <unordered_map>

namespace xplain::engine_suppressed {

// xplain-lint: allow(no-unordered-in-results)
using FastIndex = std::unordered_map<long, int>;

std::uint64_t sanctioned_wall_seed() {
  // A deliberate, documented exception reads as: reviewed and intended.
  std::uint64_t s = std::time(nullptr);  // xplain-lint: allow(no-wall-clock)
  // xplain-lint: allow(no-std-rand, no-wall-clock)
  s ^= static_cast<std::uint64_t>(std::rand()) ^ std::time(nullptr);
  return s;
}

}  // namespace xplain::engine_suppressed
