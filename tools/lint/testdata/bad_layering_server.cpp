// lint-as: src/server/bad_layering_server.cpp
// Known-bad corpus: the service layer reaching into a concrete case study.
// server sits at the top of the rank order, so only the explicit
// SERVER_FORBIDDEN ban catches this — the service must stay as
// heuristic-agnostic as the engine and resolve cases through the
// CaseRegistry at runtime.
#include "cases/ff_case.h"    // expect-lint: layering
#include "engine/engine.h"    // downward: OK
#include "xplain/case.h"      // downward: OK (the registry interface)

namespace xplain::server_bad {

int builds_a_concrete_case() { return 0; }

}  // namespace xplain::server_bad
