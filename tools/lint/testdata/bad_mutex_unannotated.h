// lint-as: src/explain/bad_mutex_unannotated.h
// Known-bad corpus: the right mutex type but no XPLAIN_GUARDED_BY anywhere
// in the file — the analysis has nothing to check, so the lock discipline
// is still convention-only.
#pragma once

#include <map>
#include <string>

#include "util/thread_annotations.h"

namespace xplain::explain_bad {

class UnannotatedCache {
 public:
  double lookup(const std::string& key);

 private:
  mutable util::Mutex mu_;  // expect-lint: mutex-annotation
  std::map<std::string, double> cache_;  // which state does mu_ guard?
};

}  // namespace xplain::explain_bad
