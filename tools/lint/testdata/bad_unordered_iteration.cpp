// lint-as: src/te/bad_unordered_iteration.cpp
// Known-bad corpus: outside the result layers an unordered container is
// fine as a lookup index (te::Topology::link_index_ is the sanctioned
// example), but ITERATING one still feeds unspecified order downstream.
#include <cstdint>
#include <unordered_map>

namespace xplain::te_bad {

struct Index {
  std::unordered_map<std::uint64_t, int> link_index_;  // lookup only: OK

  int find(std::uint64_t key) const {
    auto it = link_index_.find(key);  // point lookup: order-independent, OK
    return it == link_index_.end() ? -1 : it->second;
  }

  long sum_in_hash_order() const {
    long total = 0;
    for (const auto& [k, v] : link_index_) {  // expect-lint: no-unordered-in-results
      total = total * 31 + v + static_cast<long>(k);
    }
    return total;
  }
};

}  // namespace xplain::te_bad
