// lint-as: src/search/bad_layering_search.cpp
// Known-bad corpus: the fuzzer reaching into a concrete case study and
// into its rank peer, the resident service.  search probes candidates
// through Engine grids (cases resolved via the CaseRegistry at runtime),
// so the cases ban is the explicit SEARCH_FORBIDDEN rule; server shares
// search's rank, so that include falls to the equal-rank rejection.
#include "cases/ff_case.h"      // expect-lint: layering
#include "server/service.h"     // expect-lint: layering
#include "engine/engine.h"      // downward: OK (the probe substrate)
#include "scenario/spec.h"      // downward: OK (the mutation target)

namespace xplain::search_bad {

int builds_a_concrete_case() { return 0; }

}  // namespace xplain::search_bad
