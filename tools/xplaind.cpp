// xplaind — the resident explanation service behind a stdin/stdout
// newline-delimited-JSON protocol (tools/xplain_client.py is the matching
// client; the README's "Explanation as a service" section documents the
// protocol).
//
// One request per line on stdin, one or more events per line on stdout:
//
//   {"op":"submit","id":<any>,"spec":{...}}
//       -> {"event":"accepted","id":...,"jobs":N}
//       -> {"event":"job","id":...,"cached":bool,"job":{<JobSummary>}}  xN
//       -> {"event":"done","id":...,"summary":{...},"stats":{...}}
//   {"op":"stats"}     -> {"event":"stats", ...cumulative counters...}
//   {"op":"drain"}     -> {"event":"drained"}   (intake stays closed)
//   {"op":"shutdown"}  -> {"event":"bye"}       (graceful; also on EOF)
//
// Stats counters are decimal strings (exact past 2^53 — see stats_json).
//
// Flags: --cache-path FILE persists the result cache across restarts
// (journal replayed at startup, compacted on shutdown); --cache-max-bytes N
// bounds resident cache memory (LRU eviction; 0 = unbounded).
//
// Requests are processed sequentially (the job-level parallelism lives in
// the service's resident worker pool, sized by XPLAIN_WORKERS or one per
// hardware thread); "id" is echoed verbatim so clients can correlate.
//
// The spec object mirrors xplain::ExperimentSpec: cases (array of registry
// names), scenarios (array of {kind,size,capacity,waxman_alpha,waxman_beta,
// seed,failed_links,capacity_degradation} — the shared scenario/spec_json.h
// codec), seed, reseed_jobs, run_generalizer, normalize_gap, options
// covering every result-bearing PipelineOptions knob (min_gap, subspace.*,
// subspace.tree.*, subspace.significance.*, explain.*), and
// option_variants (array of options objects, each an overlay on the base
// options; the grid crosses them innermost — labels gain "#o<i>").  64-bit
// seeds are accepted as JSON numbers or decimal strings (numbers lose
// precision above 2^53 — use strings for salted seeds).
#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "engine/engine.h"
#include "scenario/spec_json.h"
#include "server/service.h"
#include "util/json.h"

namespace {

using xplain::util::Json;

double num_or(const Json& obj, const char* key, double dflt) {
  const Json* v = obj.find(key);
  return v && v->kind() == Json::Kind::kNumber ? v->as_num() : dflt;
}

int int_or(const Json& obj, const char* key, int dflt) {
  return static_cast<int>(num_or(obj, key, dflt));
}

bool bool_or(const Json& obj, const char* key, bool dflt) {
  const Json* v = obj.find(key);
  return v && v->kind() == Json::Kind::kBool ? v->as_bool() : dflt;
}

std::uint64_t u64_or(const Json& obj, const char* key, std::uint64_t dflt) {
  const Json* v = obj.find(key);
  if (!v) return dflt;
  if (v->kind() == Json::Kind::kNumber)
    return static_cast<std::uint64_t>(v->as_num());
  if (v->kind() == Json::Kind::kString) {
    errno = 0;
    char* end = nullptr;
    const unsigned long long u = std::strtoull(v->as_str().c_str(), &end, 10);
    if (errno == 0 && end != v->as_str().c_str() && *end == '\0')
      return static_cast<std::uint64_t>(u);
  }
  return dflt;
}

void parse_pipeline_options(const Json& v, xplain::PipelineOptions* o) {
  o->min_gap = num_or(v, "min_gap", o->min_gap);
  o->seed_salt = u64_or(v, "seed_salt", o->seed_salt);
  if (const Json* s = v.find("subspace")) {
    auto& sub = o->subspace;
    sub.bad_gap_fraction = num_or(*s, "bad_gap_fraction", sub.bad_gap_fraction);
    sub.density_threshold =
        num_or(*s, "density_threshold", sub.density_threshold);
    sub.dkw_eps = num_or(*s, "dkw_eps", sub.dkw_eps);
    sub.dkw_delta = num_or(*s, "dkw_delta", sub.dkw_delta);
    sub.init_half_width_frac =
        num_or(*s, "init_half_width_frac", sub.init_half_width_frac);
    sub.slice_frac = num_or(*s, "slice_frac", sub.slice_frac);
    sub.max_expansion_rounds =
        int_or(*s, "max_expansion_rounds", sub.max_expansion_rounds);
    sub.tree_samples = int_or(*s, "tree_samples", sub.tree_samples);
    sub.tree_inflate_frac =
        num_or(*s, "tree_inflate_frac", sub.tree_inflate_frac);
    sub.max_subspaces = int_or(*s, "max_subspaces", sub.max_subspaces);
    sub.seed = u64_or(*s, "seed", sub.seed);
    sub.keep_insignificant =
        bool_or(*s, "keep_insignificant", sub.keep_insignificant);
    if (const Json* t = s->find("tree")) {
      sub.tree.max_depth = int_or(*t, "max_depth", sub.tree.max_depth);
      sub.tree.min_samples_leaf =
          int_or(*t, "min_samples_leaf", sub.tree.min_samples_leaf);
      sub.tree.max_thresholds =
          int_or(*t, "max_thresholds", sub.tree.max_thresholds);
    }
    if (const Json* g = s->find("significance")) {
      sub.significance.pairs = int_or(*g, "pairs", sub.significance.pairs);
      sub.significance.p_threshold =
          num_or(*g, "p_threshold", sub.significance.p_threshold);
      sub.significance.shell_frac =
          num_or(*g, "shell_frac", sub.significance.shell_frac);
      sub.significance.seed = u64_or(*g, "seed", sub.significance.seed);
      sub.significance.workers =
          int_or(*g, "workers", sub.significance.workers);
    }
  }
  if (const Json* e = v.find("explain")) {
    o->explain.samples = int_or(*e, "samples", o->explain.samples);
    o->explain.flow_eps = num_or(*e, "flow_eps", o->explain.flow_eps);
    o->explain.seed = u64_or(*e, "seed", o->explain.seed);
    o->explain.attempts_per_sample =
        int_or(*e, "attempts_per_sample", o->explain.attempts_per_sample);
    o->explain.workers = int_or(*e, "workers", o->explain.workers);
  }
}

bool parse_spec(const Json& v, xplain::ExperimentSpec* spec,
                std::string* err) {
  if (v.kind() != Json::Kind::kObject) {
    *err = "spec must be an object";
    return false;
  }
  const Json* cases = v.find("cases");
  if (!cases || cases->kind() != Json::Kind::kArray || cases->size() == 0) {
    *err = "spec.cases must be a non-empty array of case names";
    return false;
  }
  for (const Json& c : cases->items()) {
    if (c.kind() != Json::Kind::kString) {
      *err = "spec.cases entries must be strings";
      return false;
    }
    spec->cases.push_back(c.as_str());
  }
  if (const Json* scens = v.find("scenarios")) {
    if (scens->kind() != Json::Kind::kArray) {
      *err = "spec.scenarios must be an array";
      return false;
    }
    for (const Json& s : scens->items()) {
      // The shared scenario JSON codec (scenario/spec_json.h) — the same
      // parser the fuzzer's discovery archive uses, so the daemon accepts
      // failed_links / capacity_degradation and string seeds for free.
      const auto scen = xplain::scenario::spec_from_json(s, err);
      if (!scen) return false;
      spec->scenarios.push_back(*scen);
    }
  }
  spec->seed = u64_or(v, "seed", spec->seed);
  spec->reseed_jobs = bool_or(v, "reseed_jobs", spec->reseed_jobs);
  spec->run_generalizer = bool_or(v, "run_generalizer", spec->run_generalizer);
  spec->normalize_gap = bool_or(v, "normalize_gap", spec->normalize_gap);
  if (const Json* o = v.find("options")) parse_pipeline_options(*o, &spec->options);
  // The option axis: each entry starts from the parsed base options and
  // applies its own overrides; the grid crosses cases x scenarios x
  // variants with variants innermost (ExperimentSpec::option_variants).
  if (const Json* vars = v.find("option_variants")) {
    if (vars->kind() != Json::Kind::kArray) {
      *err = "spec.option_variants must be an array of options objects";
      return false;
    }
    for (const Json& ov : vars->items()) {
      if (ov.kind() != Json::Kind::kObject) {
        *err = "spec.option_variants entries must be objects";
        return false;
      }
      xplain::PipelineOptions variant = spec->options;
      parse_pipeline_options(ov, &variant);
      spec->option_variants.push_back(variant);
    }
  }
  return true;
}

void emit(const Json& event) { std::cout << event.dump(0) << "\n" << std::flush; }

void emit_error(const Json* id, const std::string& message) {
  Json e = Json::object();
  e.set("event", "error");
  if (id) e.set("id", *id);
  e.set("message", message);
  emit(e);
}

// Counters are emitted as decimal STRINGS, not JSON numbers: the util/json
// number is a double, and a long-lived daemon's cumulative counters (or a
// cache_bytes high-water on a big box) can exceed 2^53 — the same
// precision convention PR 9 established for 64-bit seeds.  Clients parse
// the strings back to exact integers (tools/xplain_client.py does).
Json stats_json(const xplain::server::ServiceStats& s) {
  Json j = Json::object();
  j.set("submissions", std::to_string(s.submissions));
  j.set("jobs_submitted", std::to_string(s.jobs_submitted));
  j.set("jobs_completed", std::to_string(s.jobs_completed));
  j.set("jobs_failed", std::to_string(s.jobs_failed));
  j.set("duplicate_deliveries", std::to_string(s.duplicate_deliveries));
  j.set("cache_hits", std::to_string(s.cache_hits));
  j.set("cache_misses", std::to_string(s.cache_misses));
  j.set("cache_inflight_waits", std::to_string(s.cache_inflight_waits));
  j.set("cache_fast_fails", std::to_string(s.cache_fast_fails));
  j.set("cache_evictions", std::to_string(s.cache_evictions));
  j.set("cache_replayed", std::to_string(s.cache_replayed));
  j.set("cache_entries", std::to_string(s.cache_entries));
  j.set("cache_bytes", std::to_string(s.cache_bytes));
  j.set("case_builds", std::to_string(s.case_builds));
  return j;
}

void handle_submit(xplain::server::Service& service, const Json& req) {
  const Json* id = req.find("id");
  const Json* spec_json = req.find("spec");
  if (!spec_json) {
    emit_error(id, "submit requires a \"spec\" object");
    return;
  }
  xplain::ExperimentSpec spec;
  std::string err;
  if (!parse_spec(*spec_json, &spec, &err)) {
    emit_error(id, err);
    return;
  }
  {
    Json a = Json::object();
    a.set("event", "accepted");
    if (id) a.set("id", *id);
    a.set("jobs",
          static_cast<double>(xplain::Engine().expand(spec).size()));
    emit(a);
  }
  // The callback runs on worker threads, serialized per submission; the
  // main thread blocks in wait() meanwhile, so stdout has one writer.
  const std::uint64_t handle = service.submit(
      spec, [id](const xplain::JobSummary& s, bool from_cache) {
        Json e = Json::object();
        e.set("event", "job");
        if (id) e.set("id", *id);
        e.set("cached", from_cache);
        e.set("job", s.to_json_value());
        emit(e);
      });
  if (handle == xplain::server::Service::kRejected) {
    emit_error(id, "service is draining; submission rejected");
    return;
  }
  const xplain::ExperimentSummary summary = service.wait(handle);
  Json d = Json::object();
  d.set("event", "done");
  if (id) d.set("id", *id);
  d.set("jobs", static_cast<double>(summary.jobs.size()));
  std::optional<Json> sj = Json::parse(summary.to_json(0));
  d.set("summary", sj ? std::move(*sj) : Json());
  d.set("stats", stats_json(service.stats()));
  emit(d);
}

}  // namespace

int main(int argc, char** argv) {
  std::ios::sync_with_stdio(false);
  xplain::server::ServiceOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "xplaind: " << flag << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--cache-path") {
      opts.cache_path = value("--cache-path");
    } else if (arg == "--cache-max-bytes") {
      errno = 0;
      char* end = nullptr;
      const char* v = value("--cache-max-bytes");
      const unsigned long long n = std::strtoull(v, &end, 10);
      if (errno != 0 || end == v || *end != '\0') {
        std::cerr << "xplaind: --cache-max-bytes wants a byte count, got \""
                  << v << "\"\n";
        return 2;
      }
      opts.cache_max_bytes = static_cast<std::size_t>(n);
    } else {
      std::cerr << "xplaind: unknown flag \"" << arg
                << "\" (want --cache-path FILE | --cache-max-bytes N)\n";
      return 2;
    }
  }
  xplain::server::Service service(opts);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    std::optional<Json> req = Json::parse(line);
    if (!req || req->kind() != Json::Kind::kObject) {
      emit_error(nullptr, "malformed request (want one JSON object per line)");
      continue;
    }
    const Json* op = req->find("op");
    const std::string opname =
        op && op->kind() == Json::Kind::kString ? op->as_str() : "";
    if (opname == "submit") {
      handle_submit(service, *req);
    } else if (opname == "stats") {
      Json e = stats_json(service.stats());
      e.set("event", "stats");
      emit(e);
    } else if (opname == "drain") {
      service.drain();
      Json e = Json::object();
      e.set("event", "drained");
      emit(e);
    } else if (opname == "shutdown") {
      Json e = Json::object();
      e.set("event", "bye");
      emit(e);
      break;
    } else {
      emit_error(req->find("id"),
                 "unknown op \"" + opname +
                     "\" (want submit | stats | drain | shutdown)");
    }
  }
  service.shutdown();
  return 0;
}
