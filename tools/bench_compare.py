#!/usr/bin/env python3
"""Diff a fresh BENCH_*.json against a committed baseline.

Usage:
    bench_compare.py FRESH.json BASELINE.json [--max-regression 0.25]
                     [--max-counter-regression 0.25]

Two gates, both exiting non-zero on failure:

* wall_seconds may not regress by more than --max-regression (default 25%).
  Wall time is machine-dependent — baselines are recorded on a developer
  machine, CI runners differ — so CI passes a looser threshold here and
  relies on the counter gate for precision.
* lp_iterations may not regress by more than --max-counter-regression
  (default 25%).  The LP work counters are bitwise deterministic for a
  given code version, so any drift is a real behavior change, not noise;
  this is the machine-independent regression signal.

Additionally, any embedded experiment document (a JSON object member with a
"jobs" array — what xplain::ExperimentResult::to_json emits through
BenchReport::raw) is compared against the baseline's, after dropping
wall-clock and LP-counter fields and rounding floats to 9 significant
digits (absorbing last-ULP libm differences across machines): job labels,
subspace counts and gaps are deterministic engine outputs, so divergence
beyond that is a behavior change.  A document present on only one side is
a failure too — renaming the key must not silently disarm the gate.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def scrub(obj):
    """Normalizes an embedded experiment document for cross-machine
    comparison: drops wall clocks and LP counters (thread-count dependent),
    and rounds floats to 9 significant digits — gaps and trend statistics
    are deterministic for a given build, but libm transcendentals (p-values
    go through lgamma/ibeta) and FP codegen may differ in the last ULPs
    across glibc/compiler versions, which is noise, not behavior."""
    machine_dependent = (
        "seconds",
        "lp_solves",
        "lp_iterations",
        "priced",
        "refills",
        "per_sec",
        "speedup",
    )
    if isinstance(obj, dict):
        return {
            k: scrub(v)
            for k, v in obj.items()
            if not any(tag in k for tag in machine_dependent)
        }
    if isinstance(obj, list):
        return [scrub(v) for v in obj]
    if isinstance(obj, float):
        return float(f"{obj:.9g}")
    return obj


def diff_experiments(fresh, base):
    """Yields failure messages for embedded experiment docs that diverge.

    A document present on only one side is itself a failure: otherwise
    renaming or dropping the BenchReport::raw key would silently disarm
    this gate while CI stays green."""

    def experiment_keys(doc):
        return {
            k for k, v in doc.items() if isinstance(v, dict) and "jobs" in v
        }

    fresh_keys, base_keys = experiment_keys(fresh), experiment_keys(base)
    for key in sorted(fresh_keys ^ base_keys):
        side = "baseline" if key in base_keys else "fresh run"
        yield (
            f"embedded experiment {key!r} exists only in the {side} — the "
            f"exact experiment comparison no longer covers it"
        )
    for key in sorted(fresh_keys & base_keys):
        if scrub(fresh[key]) != scrub(base[key]):
            yield (
                f"embedded experiment {key!r} diverged from the baseline "
                f"(job structure / gaps / trends; timings and LP counters "
                f"are excluded from this comparison)"
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="BENCH_*.json from the current run")
    parser.add_argument("baseline", help="committed baseline BENCH_*.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed relative wall-time increase (default 0.25 = +25%%)",
    )
    parser.add_argument(
        "--max-counter-regression",
        type=float,
        default=0.25,
        help="allowed relative lp_iterations increase (default 0.25)",
    )
    args = parser.parse_args()

    fresh = load(args.fresh)
    base = load(args.baseline)

    if fresh.get("bench") != base.get("bench"):
        print(
            f"bench_compare: bench name mismatch: "
            f"{fresh.get('bench')!r} vs {base.get('bench')!r}",
            file=sys.stderr,
        )
        sys.exit(2)

    name = fresh.get("bench", "?")
    print(f"bench_compare: {name}")
    for key in (
        "lp_solves",
        "lp_iterations",
        "lp_warm_solves",
        "lp_columns_priced",
        "lp_candidate_refills",
    ):
        f, b = fresh.get(key), base.get(key)
        if f is None or b is None:
            continue
        drift = f" ({100.0 * (f - b) / b:+.1f}%)" if b else ""
        print(f"  {key:>15}: {f} vs baseline {b}{drift}")

    failed = []
    failed.extend(diff_experiments(fresh, base))

    # Service/cache accounting is deterministic by construction (hit and
    # miss counts follow from the submission pattern, case builds from the
    # grid's unique instances), so these top-level metrics are gated
    # EXACTLY on every machine — unlike wall time and throughput, which
    # are scrubbed.
    exact_counters = ("cache_", "case_builds", "replay_", "discovered_",
                      "fuzz_evals")
    for key in sorted(set(fresh) & set(base)):
        if not any(tag in key for tag in exact_counters):
            continue
        if fresh[key] != base[key]:
            failed.append(
                f"{key} {fresh[key]} != baseline {base[key]} (deterministic "
                f"service counter: any drift is a behavior change)"
            )

    fi, bi = fresh.get("lp_iterations"), base.get("lp_iterations")
    if fi is not None and bi:
        if args.max_counter_regression == 0.0:
            # Exact gate: the bench is advertised as a bit-exact
            # reproduction target, so an *improvement* is also drift — it
            # means the committed baseline no longer describes the code
            # and must be regenerated.
            if fi != bi:
                failed.append(
                    f"lp_iterations {fi} != baseline {bi} (exact gate: any "
                    f"drift is a behavior change; regenerate the baseline "
                    f"if intentional)"
                )
        elif fi / bi > 1.0 + args.max_counter_regression:
            failed.append(
                f"lp_iterations {fi} is {100.0 * (fi / bi - 1.0):.1f}% above "
                f"baseline {bi} (allowed "
                f"+{100.0 * args.max_counter_regression:.0f}%; this counter "
                f"is deterministic — a real behavior change)"
            )

    fw, bw = fresh.get("wall_seconds"), base.get("wall_seconds")
    if fw is None or bw is None or bw <= 0:
        print("bench_compare: missing/invalid wall_seconds", file=sys.stderr)
        sys.exit(2)
    ratio = fw / bw
    print(f"  {'wall_seconds':>15}: {fw:.4f} vs baseline {bw:.4f} "
          f"({100.0 * (ratio - 1.0):+.1f}%)")
    if ratio > 1.0 + args.max_regression:
        failed.append(
            f"wall_seconds is {100.0 * (ratio - 1.0):.1f}% slower than "
            f"baseline (allowed +{100.0 * args.max_regression:.0f}%)"
        )

    if failed:
        for msg in failed:
            print(f"bench_compare: FAIL — {name}: {msg}", file=sys.stderr)
        sys.exit(1)
    print("bench_compare: OK")


if __name__ == "__main__":
    main()
