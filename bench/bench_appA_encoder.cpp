// E12 — Appendix A / Theorem A.1: any LP/MILP maps into the DSL's node
// behaviors.  We verify objective agreement on random programs and report
// the construction's size growth (nodes/edges per variable and row),
// plus google-benchmark timings of encode+compile+solve vs direct solve.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "flowgraph/compiler.h"
#include "flowgraph/encode_lp.h"
#include "solver/milp.h"
#include "util/random.h"
#include "util/table.h"
#include "bench_json.h"

namespace {

using namespace xplain;
namespace xs = xplain::solver;

xs::LpProblem random_lp(int n, int m, int nb, xplain::util::Rng& rng) {
  xs::LpProblem p;
  p.sense = xs::Sense::kMaximize;
  for (int j = 0; j < n; ++j) p.add_col(0, rng.uniform(1, 5), rng.uniform(-2, 4));
  for (int j = 0; j < nb; ++j) p.add_col(0, 1, rng.uniform(-3, 5), true);
  for (int i = 0; i < m; ++i) {
    std::vector<std::pair<int, double>> coef;
    for (int j = 0; j < n + nb; ++j)
      coef.emplace_back(j, rng.uniform(-1.5, 2.5));
    p.add_row(std::move(coef), xs::RowSense::kLe, rng.uniform(1, 8));
  }
  return p;
}

void BM_DirectSolve(benchmark::State& state) {
  xplain::util::Rng rng(500);
  auto p = random_lp(4, 3, 1, rng);
  for (auto _ : state) benchmark::DoNotOptimize(xs::solve_milp(p).obj);
}
BENCHMARK(BM_DirectSolve);

void BM_EncodeCompileSolve(benchmark::State& state) {
  xplain::util::Rng rng(500);
  auto p = random_lp(4, 3, 1, rng);
  for (auto _ : state) {
    auto enc = flowgraph::encode_lp(p);
    auto c = flowgraph::compile(enc.net);
    benchmark::DoNotOptimize(enc.recover_objective(c.model.solve().obj));
  }
}
BENCHMARK(BM_EncodeCompileSolve);

}  // namespace

int main(int argc, char** argv) {
  xplain::tools::BenchReport bench_report("appA_encoder");
  std::cout << "E12 / App. A — Theorem A.1 encoder validation\n\n";
  xplain::util::Rng rng(4242);
  util::Table t({"cols(+bin)", "rows", "net nodes", "net edges",
                 "direct obj", "encoded obj", "agree"});
  int agreements = 0, total = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const int n = rng.uniform_int(2, 5);
    const int m = rng.uniform_int(1, 4);
    const int nb = rng.uniform_int(0, 2);
    auto p = random_lp(n, m, nb, rng);
    auto direct = xs::solve_milp(p);
    if (direct.status != xs::Status::kOptimal) continue;
    auto enc = flowgraph::encode_lp(p);
    auto c = flowgraph::compile(enc.net);
    auto r = c.model.solve();
    const double encoded = enc.recover_objective(r.obj);
    const bool agree =
        std::abs(encoded - direct.obj) < 1e-4 * (1 + std::abs(direct.obj));
    agreements += agree;
    ++total;
    t.add_row({std::to_string(n) + "+" + std::to_string(nb),
               std::to_string(m), std::to_string(enc.net.num_nodes()),
               std::to_string(enc.net.num_edges()),
               util::format_double(direct.obj), util::format_double(encoded),
               agree ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nAgreement: " << agreements << "/" << total << "\n";
  std::cout << (agreements == total && total > 0 ? "[REPRODUCED]"
                                                 : "[MISMATCH]")
            << "\n\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return agreements == total && total > 0 ? 0 : 1;
}
