// E8 — §5.1 inline claim: "compared to the original MetaOpt implementation,
// the compiled DSL analyzes our DP example 4.3x faster" — the DSL finds
// redundant constraints and variables that hand-written low-level models
// carry around (§4's "auxiliary variable" style).
//
// Setup: the DP network for a chain-with-detour WAN, written the way
// mechanical hand-translation produces it — every demand->path edge spliced
// through a chain of pass-through auxiliary nodes (one per rewrite step).
// We compare the per-solve time of
//   (a) the naive compilation of that padded network, vs
//   (b) the compilation after the DSL's redundancy-elimination pass
// on the benchmark-analysis solve (min unmet demand) that XPlain's
// sampling loops execute thousands of times.  Both models are built once,
// outside the timed region, and verified to agree.
#include <benchmark/benchmark.h>

#include <iostream>

#include "flowgraph/optimize.h"
#include "generalize/instance_generator.h"
#include "te/demand_pinning.h"
#include "util/csv.h"
#include "util/timer.h"
#include "bench_json.h"

namespace {

using namespace xplain;
using namespace xplain::flowgraph;

constexpr int kPadDepth = 10;

struct PaddedDp {
  FlowNetwork net;
  std::vector<NodeId> demand_nodes;
};

// build_dp_network with hand-translation noise: each demand->path edge runs
// through kPadDepth pass-through split nodes (all contractible).
PaddedDp build_padded(const te::TeInstance& inst) {
  PaddedDp out;
  FlowNetwork& net = out.net;
  net = FlowNetwork("dp_padded");
  NodeId met = net.add_node("met", NodeKind::kSink);
  NodeId unmet = net.add_node("unmet", NodeKind::kSink);
  std::vector<NodeId> link_nodes(inst.topo.num_links());
  for (int l = 0; l < inst.topo.num_links(); ++l) {
    link_nodes[l] = net.add_node("link" + std::to_string(l), NodeKind::kSplit);
    EdgeId e = net.add_edge(link_nodes[l], met);
    net.set_capacity(e, inst.topo.link(te::LinkId{l}).capacity);
  }
  for (int k = 0; k < inst.num_pairs(); ++k) {
    NodeId src = net.add_node("demand" + std::to_string(k), NodeKind::kSource);
    net.set_injection_range(src, 0, inst.d_max, true);
    out.demand_nodes.push_back(src);
    for (std::size_t p = 0; p < inst.pairs[k].paths.size(); ++p) {
      NodeId pn = net.add_node(
          "path" + std::to_string(k) + "_" + std::to_string(p),
          NodeKind::kCopy);
      NodeId prev = src;
      for (int d = 0; d < kPadDepth; ++d) {  // the auxiliary chain
        NodeId aux = net.add_node("aux" + std::to_string(k) + "_" +
                                      std::to_string(p) + "_" +
                                      std::to_string(d),
                                  NodeKind::kSplit);
        net.add_edge(prev, aux);
        prev = aux;
      }
      net.add_edge(prev, pn);
      for (te::LinkId l : inst.pairs[k].paths[p].links(inst.topo))
        net.add_edge(pn, link_nodes[l.v]);
    }
    net.add_edge(src, unmet);
  }
  net.set_objective(unmet, /*maximize=*/false);
  return out;
}

const te::TeInstance& instance() {
  static te::TeInstance inst = [] {
    generalize::DpFamilyParams params;
    params.chain_len = 3;
    return generalize::make_dp_family_instance(params);
  }();
  return inst;
}

CompiledNetwork prepare(const FlowNetwork& net, const te::TeInstance& inst) {
  auto c = compile(net);
  // Fix demands to the adversarial pattern (pinned small + saturating).
  for (int k = 0; k < inst.num_pairs(); ++k) {
    NodeId src = net.find_node("demand" + std::to_string(k));
    const double v = (k == 0) ? 50.0 : 100.0;
    c.model.lp().set_bounds(c.injection[src.v].index, v, v);
  }
  return c;
}

void BM_HandWrittenModel(benchmark::State& state) {
  auto padded = build_padded(instance());
  auto c = prepare(padded.net, instance());
  for (auto _ : state) benchmark::DoNotOptimize(c.model.solve_lp().obj);
}
BENCHMARK(BM_HandWrittenModel);

void BM_CompiledDslModel(benchmark::State& state) {
  auto padded = build_padded(instance());
  auto opt = optimize(padded.net);  // once, at compile time — not timed here
  auto c = prepare(opt.net, instance());
  for (auto _ : state) benchmark::DoNotOptimize(c.model.solve_lp().obj);
}
BENCHMARK(BM_CompiledDslModel);

}  // namespace

int main(int argc, char** argv) {
  xplain::tools::BenchReport bench_report("sec51_compile_speedup");
  std::cout << "E8 / §5.1 — compiled-DSL redundancy elimination\n\n";
  auto padded = build_padded(instance());
  auto opt = optimize(padded.net);
  auto naive = prepare(padded.net, instance());
  auto slim = prepare(opt.net, instance());
  std::cout << "model size: " << padded.net.num_edges() << " edges / "
            << naive.model.num_constraints() << " rows  ->  "
            << opt.net.num_edges() << " edges / "
            << slim.model.num_constraints() << " rows ("
            << opt.contracted_nodes << " auxiliary nodes contracted)\n";
  const double a = naive.model.solve_lp().obj;
  const double b = slim.model.solve_lp().obj;
  std::cout << "objective agreement: " << a << " vs " << b
            << (std::abs(a - b) < 1e-6 ? "  [OK]" : "  [BAD]") << "\n";

  // Manual timing for the verdict (google-benchmark output follows).
  auto time_solves = [](const flowgraph::CompiledNetwork& c) {
    util::Timer t;
    int reps = 0;
    while (t.seconds() < 0.5) {
      benchmark::DoNotOptimize(c.model.solve_lp().obj);
      ++reps;
    }
    return t.seconds() / reps;
  };
  const double t_naive = time_solves(naive);
  const double t_slim = time_solves(slim);
  const double speedup = t_naive / t_slim;
  std::cout << "per-solve: hand-written " << t_naive * 1e6
            << "us, compiled DSL " << t_slim * 1e6 << "us  ->  speedup "
            << util::format_double(speedup) << "x (paper: 4.3x on their "
            << "MetaOpt/Gurobi stack)\n";
  std::cout << (speedup > 1.5 && std::abs(a - b) < 1e-6 ? "[REPRODUCED]"
                                                        : "[MISMATCH]")
            << "\n\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return speedup > 1.5 ? 0 : 1;
}
