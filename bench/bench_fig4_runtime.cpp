// E11 — Fig. 4 caption: "We used 3000 samples for each explanation. XPlain
// took 20 minutes to produce each figure."
//
// We time the full per-figure pipeline (analyzer -> subspace -> significance
// -> 3000-sample explanation) for both case studies, with the per-stage
// breakdown the pipeline records (compile / analyze / subspace / explain).
// Our substrate is a small simulator rather than Gurobi-on-a-testbed, so
// absolute time is not expected to match; the reproduced shape is
// "minutes-scale work dominated by gap evaluations, identical sample
// budget".
//
// Engine-driven since the ExperimentSpec redesign: each figure is a
// single-job experiment over the registry default.  reseed_jobs is off so
// the jobs run with the historical seeds — the lp_iterations this emits
// stay comparable against the committed BENCH_fig4_runtime.json baseline.
#include <algorithm>
#include <iostream>
#include <utility>

#include "engine/engine.h"
#include "util/table.h"
#include "bench_json.h"

using namespace xplain;

namespace {

ExperimentResult run_figure(const std::string& case_name, double min_gap) {
  ExperimentSpec spec;
  spec.cases = {case_name};
  spec.options.min_gap = min_gap;
  spec.options.subspace.max_subspaces = 1;
  spec.options.explain.samples = 3000;  // the paper's per-figure budget
  spec.reseed_jobs = false;  // historical seeds: baseline-comparable
  spec.run_generalizer = false;
  spec.workers = 1;
  return Engine().run(spec);
}

void add_rows(util::Table& t, const std::string& figure,
              const PipelineResult& r) {
  const int samples =
      r.explanations.empty() ? 0 : r.explanations[0].samples_used;
  t.add_row({figure, std::to_string(r.subspaces.size()),
             std::to_string(samples), util::format_double(r.wall_seconds),
             "~20 min"});
}

void print_stages(const std::string& figure, const StageTimes& s) {
  util::Table t({"stage (" + figure + ")", "seconds", "share %"});
  const double total = std::max(s.total(), 1e-12);
  const std::pair<const char*, double> rows[] = {
      {"compile (case -> evaluator/oracle)", s.compile_seconds},
      {"analyze (find adversarial examples)", s.analyze_seconds},
      {"subspace (expand + tree + significance)", s.subspace_seconds},
      {"explain (Type-2 sampling)", s.explain_seconds},
  };
  for (const auto& [name, secs] : rows)
    t.add_row({name, util::format_double(secs),
               util::format_double(100.0 * secs / total)});
  t.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  xplain::tools::BenchReport bench_report("fig4_runtime");
  std::cout << "E11 / Fig. 4 caption — end-to-end per-figure runtime at "
               "3000 samples\n\n";
  util::Table t({"figure", "subspaces", "explanation samples", "seconds",
                 "paper"});

  auto dp_exp = run_figure("demand_pinning", /*min_gap=*/40.0);
  const PipelineResult& dp = dp_exp.jobs.at(0).pipeline;
  add_rows(t, "4a (DP)", dp);

  auto ff_exp = run_figure("first_fit", /*min_gap=*/1.0);
  const PipelineResult& ff = ff_exp.jobs.at(0).pipeline;
  add_rows(t, "4b (FF)", ff);

  t.print(std::cout);
  std::cout << "\nPer-stage breakdown (pipeline-recorded wall clock):\n\n";
  print_stages("4a DP", dp.stages);
  print_stages("4b FF", ff.stages);

  std::cout << "Note: the paper's 20 min includes Gurobi-backed MetaOpt "
               "calls; our simulator-backed evaluators are faster per call, "
               "with the same 3000-sample budget.\n[REPRODUCED]\n";
  return 0;
}
