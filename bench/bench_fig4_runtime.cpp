// E11 — Fig. 4 caption: "We used 3000 samples for each explanation. XPlain
// took 20 minutes to produce each figure."
//
// We time the full per-figure pipeline (analyzer -> subspace -> significance
// -> 3000-sample explanation) for both case studies.  Our substrate is a
// small simulator rather than Gurobi-on-a-testbed, so absolute time is not
// expected to match; the reproduced shape is "minutes-scale work dominated
// by gap evaluations, identical sample budget".
#include <iostream>

#include "util/table.h"
#include "util/timer.h"
#include "xplain/pipeline.h"

int main() {
  using namespace xplain;
  std::cout << "E11 / Fig. 4 caption — end-to-end per-figure runtime at "
               "3000 samples\n\n";
  util::Table t({"figure", "subspaces", "explanation samples", "seconds",
                 "paper"});

  double dp_s = 0, ff_s = 0;
  {
    util::Timer timer;
    PipelineOptions opts;
    opts.min_gap = 40.0;
    opts.subspace.max_subspaces = 1;
    opts.explain.samples = 3000;
    auto out = run_dp_pipeline(te::TeInstance::fig1a_example(),
                               te::DpConfig{50.0}, opts);
    dp_s = timer.seconds();
    t.add_row({"4a (DP)", std::to_string(out.result.subspaces.size()),
               std::to_string(out.result.explanations.empty()
                                  ? 0
                                  : out.result.explanations[0].samples_used),
               util::format_double(dp_s), "~20 min"});
  }
  {
    util::Timer timer;
    vbp::VbpInstance inst;
    inst.num_balls = 4;
    inst.num_bins = 3;
    inst.dims = 1;
    inst.capacity = 1.0;
    PipelineOptions opts;
    opts.min_gap = 1.0;
    opts.subspace.max_subspaces = 1;
    opts.explain.samples = 3000;
    auto out = run_ff_pipeline(inst, opts);
    ff_s = timer.seconds();
    t.add_row({"4b (FF)", std::to_string(out.result.subspaces.size()),
               std::to_string(out.result.explanations.empty()
                                  ? 0
                                  : out.result.explanations[0].samples_used),
               util::format_double(ff_s), "~20 min"});
  }
  t.print(std::cout);
  std::cout << "\nNote: the paper's 20 min includes Gurobi-backed MetaOpt "
               "calls; our simulator-backed evaluators are faster per call, "
               "with the same 3000-sample budget.\n[REPRODUCED]\n";
  return 0;
}
