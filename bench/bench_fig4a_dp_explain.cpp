// E5 — Fig. 4a: the Type-2 heatmap for Demand Pinning over 3000 subspace
// samples (the paper's sample count).
//
// Expected shape: the pinnable demand's shortest-path edge (1~>3 via
// 1-2-3) is red (heuristic-only), the detour edge (via 1-4-5-3) is blue
// (benchmark-only).
#include <fstream>
#include <iostream>

#include "cases/dp_case.h"
#include "explain/heatmap.h"
#include "util/timer.h"
#include "xplain/pipeline.h"
#include "bench_json.h"

int main() {
  xplain::tools::BenchReport bench_report("fig4a_dp_explain");
  using namespace xplain;
  auto inst = te::TeInstance::fig1a_example();
  te::DpConfig cfg{50.0};
  auto dp = te::build_dp_network(inst);
  cases::DpGapEvaluator eval(inst, cfg);
  auto oracle = cases::make_dp_oracle(dp, inst, cfg);

  // The adversarial subspace around the paper's example (found by the
  // pipeline; pinned here for reproducibility of the figure).
  subspace::Polytope region;
  region.box.lo = {30, 95, 95};
  region.box.hi = {50, 100, 100};

  explain::ExplainOptions opts;
  opts.samples = 3000;  // the paper's count
  opts.flow_eps = 20.0; // meaningful-flow threshold (see EXPERIMENTS.md)
  util::Timer timer;
  auto ex = explain::explain_subspace(eval, region, dp.net, oracle, opts);

  std::cout << "E5 / Fig. 4a — DP Type-2 heatmap (" << ex.samples_used
            << " samples, " << timer.seconds() << "s)\n\n";
  explain::print_heatmap(std::cout, dp.net, ex);

  const double heat_sp = ex.edges[dp.path_edges[0][0].v].heat;
  const double heat_detour = ex.edges[dp.path_edges[0][1].v].heat;
  std::cout << "\n1~>3 via 1-2-3   heat = " << heat_sp
            << "  (paper: intense red — heuristic only)\n";
  std::cout << "1~>3 via 1-4-5-3 heat = " << heat_detour
            << "  (paper: intense blue — optimal only)\n";

  std::ofstream dot("fig4a_heatmap.dot");
  dot << explain::heatmap_dot(dp.net, ex);
  explain::write_heatmap_csv("fig4a_heatmap.csv", dp.net, ex);
  std::cout << "(wrote fig4a_heatmap.dot / fig4a_heatmap.csv)\n";

  const bool ok = heat_sp < -0.5 && heat_detour > 0.5;
  std::cout << (ok ? "[REPRODUCED]" : "[MISMATCH]") << "\n";
  return ok ? 0 : 1;
}
