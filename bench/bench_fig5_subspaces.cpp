// E7 — Fig. 5: the adversarial subspace generator end to end on FF:
// (a) slice-expansion rough box, (b) regression-tree refinement, (c) the
// polyhedral subspaces printed in the paper's matrix form (D0 with A, T,
// C, V blocks).
#include <iostream>

#include "cases/ff_case.h"
#include "analyzer/search_analyzer.h"
#include "subspace/subspace_generator.h"
#include "bench_json.h"

int main() {
  xplain::tools::BenchReport bench_report("fig5_subspaces");
  using namespace xplain;
  vbp::VbpInstance inst;
  inst.num_balls = 4;
  inst.num_bins = 3;
  inst.dims = 1;
  inst.capacity = 1.0;
  cases::VbpGapEvaluator eval(inst);
  analyzer::SearchAnalyzer an;

  subspace::SubspaceOptions opts;
  opts.max_subspaces = 4;
  subspace::SubspaceGenerator gen(an, opts);
  auto subs = gen.generate(eval, /*min_gap=*/1.0);

  std::cout << "E7 / Fig. 5 — adversarial subspaces for FF (4 balls, 3 "
               "bins)\n\n";
  std::cout << "Found " << subs.size() << " statistically significant "
            << "subspaces (analyzer calls: " << gen.trace().analyzer_calls
            << ", gap evaluations: " << gen.trace().gap_evaluations
            << ")\n\n";
  const auto names = eval.dim_names();
  for (std::size_t i = 0; i < subs.size(); ++i) {
    const auto& s = subs[i];
    std::cout << "D" << i << ": seed gap " << s.seed_gap << ", p-value "
              << s.p_value << ", mean gap inside " << s.mean_gap_inside
              << " vs outside " << s.mean_gap_outside << "\n";
    std::cout << s.region.to_string(names) << "\n";
    std::cout << "Matrix form (paper Fig. 5c):\n"
              << s.region.to_matrix_form() << "\n";
  }

  // Shape check: at least one subspace, all significant, and the paper's
  // {1%,49%,51%,51%}-style point is adversarial in one of them or the
  // regions at least exclude the seed-gap-0 bulk.
  bool ok = !subs.empty();
  for (const auto& s : subs) ok = ok && s.significant;
  std::cout << (ok ? "[REPRODUCED]" : "[MISMATCH]") << "\n";
  return ok ? 0 : 1;
}
